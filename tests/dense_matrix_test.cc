// Unit tests for DenseMatrix and DenseTensor basics, plus the model fit
// helpers in tensor/models.h.

#include "tensor/dense_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/dense_tensor.h"
#include "tensor/models.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

TEST(DenseMatrixBasics, ConstructionAndAccess) {
  DenseMatrix empty;
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.cols(), 0);

  DenseMatrix m(3, 2);
  EXPECT_EQ(m.size(), 6);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
  m(1, 1) = 4.5;
  EXPECT_DOUBLE_EQ(m(1, 1), 4.5);
  EXPECT_DOUBLE_EQ(m.At(1, 1).value(), 4.5);
  EXPECT_TRUE(m.At(3, 0).status().IsOutOfRange());
  EXPECT_TRUE(m.At(0, -1).status().IsOutOfRange());
}

TEST(DenseMatrixBasics, FromRowsAndIdentity) {
  DenseMatrix m = DenseMatrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  DenseMatrix i3 = DenseMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i3.FrobeniusNorm(), std::sqrt(3.0));
}

TEST(DenseMatrixBasics, TransposeAndArithmetic) {
  DenseMatrix m = DenseMatrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_DOUBLE_EQ(t(0, 2), 5.0);
  DenseMatrix a = DenseMatrix::FromRows({{1, 1}, {1, 1}, {1, 1}});
  DenseMatrix sum = m;
  sum.AddInPlace(a);
  EXPECT_DOUBLE_EQ(sum(2, 1), 7.0);
  sum.SubInPlace(a);
  EXPECT_DOUBLE_EQ(sum.MaxAbsDiff(m), 0.0);
  sum.ScaleInPlace(2.0);
  EXPECT_DOUBLE_EQ(sum(0, 1), 4.0);
}

TEST(DenseMatrixBasics, ColumnsAndFill) {
  DenseMatrix m = DenseMatrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Column(1), (std::vector<double>{2, 4}));
  m.SetColumn(0, {7, 8});
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
  m.Fill(0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.5);
}

TEST(DenseMatrixBasics, RandomGenerators) {
  Rng rng(91);
  DenseMatrix u = DenseMatrix::RandomUniform(50, 4, &rng);
  for (double v : u.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  DenseMatrix n = DenseMatrix::RandomNormal(50, 4, &rng);
  double mean = 0.0;
  for (double v : n.data()) mean += v;
  mean /= static_cast<double>(n.size());
  EXPECT_LT(std::fabs(mean), 0.3);
}

TEST(DenseTensorBasics, CreateOffsetsAndNorm) {
  Result<DenseTensor> t = DenseTensor::Create({2, 3, 4});
  ASSERT_OK(t.status());
  EXPECT_EQ(t->size(), 24);
  t->at({1, 2, 3}) = 5.0;
  EXPECT_DOUBLE_EQ(t->at3(1, 2, 3), 5.0);
  EXPECT_DOUBLE_EQ(t->FrobeniusNorm(), 5.0);
  EXPECT_TRUE(DenseTensor::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(DenseTensor::Create({2, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(DenseTensor::Create({100000, 100000, 100000})
                  .status()
                  .IsResourceExhausted());
}

TEST(DenseTensorBasics, SparseRoundTrip) {
  Rng rng(92);
  SparseTensor s = haten2::testing::RandomSparseTensor({6, 5, 4}, 20, &rng);
  DenseTensor d = DenseTensor::FromSparse(s);
  SparseTensor back = d.ToSparse();
  EXPECT_TRUE(back.IdenticalTo(s));
}

TEST(ModelFits, PerfectKruskalModelHasFitOne) {
  Rng rng(93);
  KruskalModel model;
  model.lambda = {2.0, 1.0};
  model.factors.push_back(DenseMatrix::RandomNormal(5, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(4, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(3, 2, &rng));
  Result<DenseTensor> dense =
      ReconstructKruskal(model.lambda, model.FactorPtrs());
  ASSERT_OK(dense.status());
  SparseTensor x = dense->ToSparse();
  Result<double> fit = KruskalFit(x, model);
  ASSERT_OK(fit.status());
  EXPECT_NEAR(*fit, 1.0, 1e-9);
}

TEST(ModelFits, ZeroModelHasFitZero) {
  Rng rng(94);
  SparseTensor x = haten2::testing::RandomSparseTensor({4, 4, 4}, 10, &rng);
  KruskalModel model;
  model.lambda = {0.0};
  model.factors.assign(3, DenseMatrix(4, 1));
  Result<double> fit = KruskalFit(x, model);
  ASSERT_OK(fit.status());
  EXPECT_NEAR(*fit, 0.0, 1e-12);
}

TEST(ModelFits, RejectsZeroTensor) {
  Result<SparseTensor> empty = SparseTensor::Create3(3, 3, 3);
  ASSERT_OK(empty.status());
  KruskalModel km;
  km.lambda = {1.0};
  km.factors.assign(3, DenseMatrix(3, 1));
  EXPECT_TRUE(KruskalFit(*empty, km).status().IsInvalidArgument());
  TuckerModel tm;
  Result<DenseTensor> core = DenseTensor::Create({1, 1, 1});
  ASSERT_OK(core.status());
  tm.core = *core;
  tm.factors.assign(3, DenseMatrix(3, 1));
  EXPECT_TRUE(TuckerFit(*empty, tm).status().IsInvalidArgument());
}

TEST(ModelFits, TuckerFitFromCoreNorm) {
  Rng rng(95);
  SparseTensor x = haten2::testing::RandomSparseTensor({5, 5, 5}, 25, &rng);
  TuckerModel tm;
  Result<DenseTensor> core = DenseTensor::Create({2, 2, 2});
  ASSERT_OK(core.status());
  core->at({0, 0, 0}) = 3.0;
  tm.core = *core;
  tm.factors.assign(3, DenseMatrix(5, 2));
  Result<double> fit = TuckerFit(x, tm);
  ASSERT_OK(fit.status());
  double want =
      1.0 - std::sqrt(std::max(x.SumSquares() - 9.0, 0.0) / x.SumSquares());
  EXPECT_NEAR(*fit, want, 1e-12);
}

}  // namespace
}  // namespace haten2
