// End-to-end determinism: full decompositions must be bitwise identical
// across engine thread counts, across spilling on/off, and across repeated
// runs — the property that makes every experiment in this repository
// reproducible.

#include <gtest/gtest.h>

#include "core/parafac.h"
#include "core/tucker.h"
#include "test_util.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

KruskalModel RunParafac(const ClusterConfig& config, const SparseTensor& x) {
  Engine engine(config);
  Haten2Options options;
  options.max_iterations = 4;
  options.tolerance = 0.0;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 3, options);
  HATEN2_CHECK(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

TuckerModel RunTucker(const ClusterConfig& config, const SparseTensor& x) {
  Engine engine(config);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  Result<TuckerModel> model = Haten2TuckerAls(&engine, x, {2, 3, 2}, options);
  HATEN2_CHECK(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

TEST(Determinism, ParafacIdenticalAcrossThreadCounts) {
  Rng rng(841);
  SparseTensor x = RandomSparseTensor({20, 18, 16}, 400, &rng);
  ClusterConfig base = ClusterConfig::ForTesting();
  base.num_threads = 1;
  KruskalModel reference = RunParafac(base, x);
  for (int threads : {2, 4, 8}) {
    ClusterConfig config = base;
    config.num_threads = threads;
    KruskalModel model = RunParafac(config, x);
    EXPECT_EQ(model.lambda, reference.lambda) << threads << " threads";
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_DOUBLE_EQ(model.factors[m].MaxAbsDiff(reference.factors[m]),
                       0.0)
          << threads << " threads, mode " << m;
    }
  }
}

TEST(Determinism, TuckerIdenticalAcrossThreadCounts) {
  Rng rng(842);
  SparseTensor x = RandomSparseTensor({16, 15, 14}, 300, &rng);
  ClusterConfig base = ClusterConfig::ForTesting();
  base.num_threads = 1;
  TuckerModel reference = RunTucker(base, x);
  for (int threads : {2, 4}) {
    ClusterConfig config = base;
    config.num_threads = threads;
    TuckerModel model = RunTucker(config, x);
    EXPECT_DOUBLE_EQ(model.core.MaxAbsDiff(reference.core), 0.0)
        << threads << " threads";
    EXPECT_DOUBLE_EQ(model.fit, reference.fit);
  }
}

TEST(Determinism, RepeatedRunsAreIdentical) {
  Rng rng(843);
  SparseTensor x = RandomSparseTensor({14, 13, 12}, 250, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  KruskalModel first = RunParafac(config, x);
  KruskalModel second = RunParafac(config, x);
  EXPECT_EQ(first.lambda, second.lambda);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(first.factors[m].MaxAbsDiff(second.factors[m]), 0.0);
  }
}

}  // namespace
}  // namespace haten2
