// Tests for the binary tensor format: round-trips, auto-detection, and
// corruption handling (truncation, bad magic, checksum mismatch).

#include "tensor/tensor_binary_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tensor/tensor_io.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TensorBinaryIo, RoundTripsExactly) {
  Rng rng(811);
  SparseTensor t =
      haten2::testing::RandomSparseTensor({40, 30, 20, 10}, 200, &rng);
  std::string path = TempPath("t.htb");
  ASSERT_OK(WriteTensorBinary(t, path));
  Result<SparseTensor> back = ReadTensorBinary(path);
  ASSERT_OK(back.status());
  EXPECT_TRUE(back->IdenticalTo(t));
  std::remove(path.c_str());
}

TEST(TensorBinaryIo, EmptyTensorRoundTrips) {
  Result<SparseTensor> t = SparseTensor::Create3(5, 6, 7);
  ASSERT_OK(t.status());
  std::string path = TempPath("empty.htb");
  ASSERT_OK(WriteTensorBinary(*t, path));
  Result<SparseTensor> back = ReadTensorBinary(path);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->dims(), t->dims());
  EXPECT_EQ(back->nnz(), 0);
  std::remove(path.c_str());
}

TEST(TensorBinaryIo, AutoDetectsBothFormats) {
  Rng rng(812);
  SparseTensor t = haten2::testing::RandomSparseTensor({10, 10, 10}, 30,
                                                       &rng);
  std::string bin_path = TempPath("auto.htb");
  std::string txt_path = TempPath("auto.tns");
  ASSERT_OK(WriteTensorBinary(t, bin_path));
  ASSERT_OK(WriteTensorText(t, txt_path));
  Result<SparseTensor> from_bin = ReadTensorAuto(bin_path);
  Result<SparseTensor> from_txt = ReadTensorAuto(txt_path);
  ASSERT_OK(from_bin.status());
  ASSERT_OK(from_txt.status());
  EXPECT_TRUE(from_bin->IdenticalTo(t));
  EXPECT_TRUE(from_txt->IdenticalTo(t));
  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
}

TEST(TensorBinaryIo, DetectsCorruption) {
  Rng rng(813);
  SparseTensor t = haten2::testing::RandomSparseTensor({10, 10, 10}, 50,
                                                       &rng);
  std::string path = TempPath("corrupt.htb");
  ASSERT_OK(WriteTensorBinary(t, path));

  // Flip one byte in the middle of the entries.
  {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    char byte;
    f.seekg(100);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(100);
    f.write(&byte, 1);
  }
  Result<SparseTensor> r = ReadTensorBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  std::remove(path.c_str());
}

TEST(TensorBinaryIo, DetectsTruncation) {
  Rng rng(814);
  SparseTensor t = haten2::testing::RandomSparseTensor({10, 10, 10}, 50,
                                                       &rng);
  std::string path = TempPath("trunc.htb");
  ASSERT_OK(WriteTensorBinary(t, path));
  // Rewrite with the last 16 bytes dropped.
  {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(all.data(),
              static_cast<std::streamsize>(all.size() - 16));
  }
  Result<SparseTensor> r = ReadTensorBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(TensorBinaryIo, RejectsWrongMagicAndMissingFile) {
  std::string path = TempPath("notbinary.htb");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a tensor";
  }
  EXPECT_TRUE(ReadTensorBinary(path).status().IsInvalidArgument());
  EXPECT_TRUE(ReadTensorBinary("/nonexistent/t.htb").status().IsIOError());
  EXPECT_TRUE(ReadTensorAuto("/nonexistent/t.htb").status().IsIOError());
  std::remove(path.c_str());
}

TEST(TensorBinaryIo, BinaryIsSmallerThanTextForLargeTensors) {
  // The advantage appears at the paper's billion-scale index widths, where
  // a text record is ~50 characters vs 32 binary bytes.
  Rng rng(815);
  SparseTensor t = haten2::testing::RandomSparseTensor(
      {1000000000, 1000000000, 1000000000}, 5000, &rng);
  std::string bin_path = TempPath("size.htb");
  std::string txt_path = TempPath("size.tns");
  ASSERT_OK(WriteTensorBinary(t, bin_path));
  ASSERT_OK(WriteTensorText(t, txt_path));
  auto file_size = [](const std::string& p) {
    std::ifstream f(p, std::ios::binary | std::ios::ate);
    return static_cast<int64_t>(f.tellg());
  };
  EXPECT_LT(file_size(bin_path), file_size(txt_path));
  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
}

}  // namespace
}  // namespace haten2
