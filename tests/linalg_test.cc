// Unit and property tests for the dense linear-algebra kernels.

#include "linalg/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

TEST(MatMulOp, HandComputedAndShapes) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {3, 4}});
  DenseMatrix b = DenseMatrix::FromRows({{5, 6, 7}, {8, 9, 10}});
  Result<DenseMatrix> c = MatMul(a, b);
  ASSERT_OK(c.status());
  EXPECT_DOUBLE_EQ((*c)(0, 0), 21.0);
  EXPECT_DOUBLE_EQ((*c)(1, 2), 61.0);
  EXPECT_TRUE(MatMul(b, a).status().IsInvalidArgument());
}

TEST(MatMulTransAOp, EqualsExplicitTranspose) {
  Rng rng(41);
  DenseMatrix a = DenseMatrix::RandomNormal(7, 4, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(7, 3, &rng);
  Result<DenseMatrix> fast = MatMulTransA(a, b);
  Result<DenseMatrix> slow = MatMul(a.Transposed(), b);
  ASSERT_OK(fast.status());
  ASSERT_OK(slow.status());
  EXPECT_LT(fast->MaxAbsDiff(*slow), 1e-12);
}

TEST(GramOp, SymmetricAndCorrect) {
  Rng rng(42);
  DenseMatrix a = DenseMatrix::RandomNormal(10, 4, &rng);
  DenseMatrix g = Gram(a);
  Result<DenseMatrix> want = MatMulTransA(a, a);
  ASSERT_OK(want.status());
  EXPECT_LT(g.MaxAbsDiff(*want), 1e-12);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

class QrPropertyTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrPropertyTest, ReconstructsAndOrthonormal) {
  auto [m, n] = GetParam();
  Rng rng(100 + m * 13 + n);
  DenseMatrix a = DenseMatrix::RandomNormal(m, n, &rng);
  Result<QrResult> qr = QrDecompose(a);
  ASSERT_OK(qr.status());
  EXPECT_TRUE(HasOrthonormalColumns(qr->q, 1e-10));
  Result<DenseMatrix> recon = MatMul(qr->q, qr->r);
  ASSERT_OK(recon.status());
  EXPECT_LT(recon->MaxAbsDiff(a), 1e-10);
  // R upper triangular.
  for (int64_t i = 0; i < qr->r.rows(); ++i) {
    for (int64_t j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ(qr->r(i, j), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrPropertyTest,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{5, 5},
                                           std::pair<int, int>{8, 3},
                                           std::pair<int, int>{20, 7},
                                           std::pair<int, int>{50, 10}));

TEST(QrOp, RejectsWideMatrix) {
  Rng rng(43);
  DenseMatrix a = DenseMatrix::RandomNormal(3, 5, &rng);
  EXPECT_TRUE(QrDecompose(a).status().IsInvalidArgument());
}

TEST(QrOp, HandlesRankDeficiency) {
  // Two identical columns.
  DenseMatrix a = DenseMatrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Result<QrResult> qr = QrDecompose(a);
  ASSERT_OK(qr.status());
  Result<DenseMatrix> recon = MatMul(qr->q, qr->r);
  ASSERT_OK(recon.status());
  EXPECT_LT(recon->MaxAbsDiff(a), 1e-10);
}

TEST(SymmetricEigenOp, DiagonalizesKnownMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  DenseMatrix a = DenseMatrix::FromRows({{2, 1}, {1, 2}});
  Result<EigResult> eig = SymmetricEigen(a);
  ASSERT_OK(eig.status());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-10);
  EXPECT_TRUE(HasOrthonormalColumns(eig->eigenvectors, 1e-10));
}

TEST(SymmetricEigenOp, PropertyAVEqualsVLambda) {
  Rng rng(44);
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t n = 3 + trial * 2;
    DenseMatrix b = DenseMatrix::RandomNormal(n + 2, n, &rng);
    DenseMatrix a = Gram(b);  // symmetric PSD
    Result<EigResult> eig = SymmetricEigen(a);
    ASSERT_OK(eig.status());
    Result<DenseMatrix> av = MatMul(a, eig->eigenvectors);
    ASSERT_OK(av.status());
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR((*av)(i, j),
                    eig->eigenvalues[static_cast<size_t>(j)] *
                        eig->eigenvectors(i, j),
                    1e-8)
            << "trial " << trial;
      }
    }
    // Descending order.
    for (int64_t j = 1; j < n; ++j) {
      EXPECT_GE(eig->eigenvalues[static_cast<size_t>(j - 1)],
                eig->eigenvalues[static_cast<size_t>(j)] - 1e-12);
    }
  }
}

TEST(SymmetricEigenOp, RejectsNonSymmetric) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(SymmetricEigen(a).status().IsInvalidArgument());
  DenseMatrix rect(2, 3);
  EXPECT_TRUE(SymmetricEigen(rect).status().IsInvalidArgument());
}

class SvdPropertyTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(SvdPropertyTest, ReconstructsInput) {
  auto [m, n] = GetParam();
  Rng rng(200 + m * 7 + n);
  DenseMatrix a = DenseMatrix::RandomNormal(m, n, &rng);
  Result<SvdResult> svd = Svd(a);
  ASSERT_OK(svd.status());
  // a == u diag(s) vᵀ
  const int64_t k = static_cast<int64_t>(svd->singular.size());
  DenseMatrix us(m, k);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      us(i, j) = svd->u(i, j) * svd->singular[static_cast<size_t>(j)];
    }
  }
  Result<DenseMatrix> recon = MatMul(us, svd->v.Transposed());
  ASSERT_OK(recon.status());
  EXPECT_LT(recon->MaxAbsDiff(a), 1e-8);
  // Singular values descending and nonnegative.
  for (size_t j = 1; j < svd->singular.size(); ++j) {
    EXPECT_GE(svd->singular[j - 1], svd->singular[j] - 1e-12);
    EXPECT_GE(svd->singular[j], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdPropertyTest,
                         ::testing::Values(std::pair<int, int>{4, 4},
                                           std::pair<int, int>{10, 3},
                                           std::pair<int, int>{3, 10},
                                           std::pair<int, int>{25, 6}));

TEST(PseudoInverseOp, SatisfiesPenroseConditions) {
  Rng rng(45);
  DenseMatrix a = DenseMatrix::RandomNormal(6, 4, &rng);
  Result<DenseMatrix> pinv = PseudoInverse(a);
  ASSERT_OK(pinv.status());
  // A A⁺ A == A and A⁺ A A⁺ == A⁺.
  Result<DenseMatrix> ap = MatMul(a, *pinv);
  ASSERT_OK(ap.status());
  Result<DenseMatrix> apa = MatMul(*ap, a);
  ASSERT_OK(apa.status());
  EXPECT_LT(apa->MaxAbsDiff(a), 1e-8);
  Result<DenseMatrix> pa = MatMul(*pinv, a);
  ASSERT_OK(pa.status());
  Result<DenseMatrix> pap = MatMul(*pa, *pinv);
  ASSERT_OK(pap.status());
  EXPECT_LT(pap->MaxAbsDiff(*pinv), 1e-8);
}

TEST(PseudoInverseOp, HandlesSingularMatrix) {
  // Rank-1 matrix.
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {2, 4}});
  Result<DenseMatrix> pinv = PseudoInverse(a);
  ASSERT_OK(pinv.status());
  Result<DenseMatrix> ap = MatMul(a, *pinv);
  ASSERT_OK(ap.status());
  Result<DenseMatrix> apa = MatMul(*ap, a);
  ASSERT_OK(apa.status());
  EXPECT_LT(apa->MaxAbsDiff(a), 1e-10);
}

TEST(LeadingLeftSingularVectorsOp, SpansDominantSubspace) {
  Rng rng(46);
  // Build a matrix with known dominant directions.
  DenseMatrix a = DenseMatrix::RandomNormal(20, 6, &rng);
  Result<DenseMatrix> lead = LeadingLeftSingularVectors(a, 3);
  ASSERT_OK(lead.status());
  EXPECT_TRUE(HasOrthonormalColumns(*lead, 1e-9));
  Result<SvdResult> svd = Svd(a);
  ASSERT_OK(svd.status());
  // Projection of each leading u_j onto span(lead) must be ~1.
  for (int64_t j = 0; j < 3; ++j) {
    double proj = 0.0;
    for (int64_t c = 0; c < 3; ++c) {
      double dot = 0.0;
      for (int64_t i = 0; i < 20; ++i) dot += svd->u(i, j) * (*lead)(i, c);
      proj += dot * dot;
    }
    EXPECT_NEAR(proj, 1.0, 1e-8);
  }
}

TEST(LeadingLeftSingularVectorsOp, CompletesRankDeficientBasis) {
  // Rank-1 matrix, ask for 3 orthonormal columns.
  DenseMatrix a(10, 4);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      a(i, j) = static_cast<double>(i + 1);  // identical columns
    }
  }
  Result<DenseMatrix> lead = LeadingLeftSingularVectors(a, 3);
  ASSERT_OK(lead.status());
  EXPECT_TRUE(HasOrthonormalColumns(*lead, 1e-8));
}

TEST(LeadingLeftSingularVectorsOp, Validation) {
  Rng rng(47);
  DenseMatrix a = DenseMatrix::RandomNormal(4, 3, &rng);
  EXPECT_TRUE(LeadingLeftSingularVectors(a, 0).status().IsInvalidArgument());
  EXPECT_TRUE(LeadingLeftSingularVectors(a, 5).status().IsInvalidArgument());
}

TEST(NormalizeColumnsOp, UnitNormsAndStoredValues) {
  DenseMatrix m = DenseMatrix::FromRows({{3, 0}, {4, 0}});
  std::vector<double> norms;
  NormalizeColumns(&m, &norms);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);  // zero column untouched
  EXPECT_DOUBLE_EQ(m(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.8);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(SolveRightPinvOp, SolvesWellConditionedSystem) {
  Rng rng(48);
  DenseMatrix x_true = DenseMatrix::RandomNormal(5, 3, &rng);
  DenseMatrix basis = DenseMatrix::RandomNormal(3, 3, &rng);
  DenseMatrix a = Gram(basis);  // SPD, invertible w.h.p.
  Result<DenseMatrix> b = MatMul(x_true, a);
  ASSERT_OK(b.status());
  Result<DenseMatrix> solved = SolveRightPinv(*b, a);
  ASSERT_OK(solved.status());
  EXPECT_LT(solved->MaxAbsDiff(x_true), 1e-7);
}

TEST(RelativeErrorOp, ZeroForIdenticalMatrices) {
  Rng rng(49);
  DenseMatrix a = DenseMatrix::RandomNormal(4, 4, &rng);
  Result<double> err = RelativeError(a, a);
  ASSERT_OK(err.status());
  EXPECT_DOUBLE_EQ(*err, 0.0);
  DenseMatrix b(3, 3);
  EXPECT_TRUE(RelativeError(a, b).status().IsInvalidArgument());
}

}  // namespace
}  // namespace haten2
