// Tests for the model-serving subsystem: registry hot-swap under
// concurrent readers, sharded-LRU eviction/hit accounting, batched top-k
// equivalence with direct PredictTopEntries, query-engine semantics, and
// the "haten2-serving-v1" JSON export.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/link_prediction.h"
#include "json_checker.h"
#include "mapreduce/engine.h"
#include "serving/lru_cache.h"
#include "serving/refit_controller.h"
#include "tensor/delta_log.h"
#include "serving/model_registry.h"
#include "serving/query_engine.h"
#include "serving/request_pipeline.h"
#include "serving/serving_stats.h"
#include "test_util.h"

namespace haten2 {
namespace {

using haten2::testing::JsonChecker;
using haten2::testing::RandomSparseTensor;

/// A small deterministic Kruskal model over a {12, 10, 8} tensor.
KruskalModel MakeModel(uint64_t seed) {
  Rng rng(seed);
  KruskalModel model;
  model.lambda = {2.0, 1.0, 0.5};
  model.factors.push_back(DenseMatrix::RandomUniform(12, 3, &rng));
  model.factors.push_back(DenseMatrix::RandomUniform(10, 3, &rng));
  model.factors.push_back(DenseMatrix::RandomUniform(8, 3, &rng));
  return model;
}

std::shared_ptr<const SparseTensor> MakeObserved(uint64_t seed) {
  Rng rng(seed);
  return std::make_shared<const SparseTensor>(
      RandomSparseTensor({12, 10, 8}, 60, &rng));
}

// ---------------------------------------------------------------------------
// Sharded LRU cache.

TEST(ServingLruCache, EvictionAndHitAccounting) {
  ShardedLruCache<int> cache(/*capacity=*/3, /*shards=*/1);
  cache.Insert("a", std::make_shared<const int>(1));
  cache.Insert("b", std::make_shared<const int>(2));
  cache.Insert("c", std::make_shared<const int>(3));
  // Touch "a" so "b" becomes the least recently used.
  ASSERT_NE(cache.Lookup("a"), nullptr);
  cache.Insert("d", std::make_shared<const int>(4));  // evicts "b"

  EXPECT_EQ(cache.Lookup("b"), nullptr);
  std::shared_ptr<const int> a = cache.Lookup("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, 1);
  ASSERT_NE(cache.Lookup("c"), nullptr);
  ASSERT_NE(cache.Lookup("d"), nullptr);

  ShardedLruCache<int>::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 4u);      // a, a, c, d
  EXPECT_EQ(stats.misses, 1u);    // b after eviction
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.inserts, 4u);
  EXPECT_EQ(stats.entries, 3);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 4.0 / 5.0);
}

TEST(ServingLruCache, ReinsertRefreshesInsteadOfDuplicating) {
  ShardedLruCache<int> cache(2, 1);
  cache.Insert("a", std::make_shared<const int>(1));
  cache.Insert("a", std::make_shared<const int>(10));
  std::shared_ptr<const int> a = cache.Lookup("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, 10);
  EXPECT_EQ(cache.GetStats().entries, 1);
  EXPECT_EQ(cache.GetStats().inserts, 1u);
}

TEST(ServingLruCache, EntryOutlivesEviction) {
  // shared_ptr values mean an evicted entry stays valid for holders.
  ShardedLruCache<std::string> cache(1, 1);
  cache.Insert("x", std::make_shared<const std::string>("payload"));
  std::shared_ptr<const std::string> held = cache.Lookup("x");
  cache.Insert("y", std::make_shared<const std::string>("other"));
  EXPECT_EQ(cache.Lookup("x"), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "payload");
}

TEST(ServingLruCache, ConcurrentMixedUseIsSafe) {
  ShardedLruCache<int> cache(64, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < 2000; ++i) {
        std::string key = "k" + std::to_string(rng.UniformInt(128));
        if (rng.Uniform() < 0.5) {
          cache.Insert(key, std::make_shared<const int>(i));
        } else {
          cache.Lookup(key);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ShardedLruCache<int>::Stats stats = cache.GetStats();
  EXPECT_LE(stats.entries, 64 + 8);  // per-shard rounding slack
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(ServingRegistry, InstallGetRemove) {
  ModelRegistry registry;
  EXPECT_TRUE(registry.Get("m").status().IsNotFound());

  Result<int64_t> v1 = registry.InstallKruskal("m", MakeModel(1),
                                               MakeObserved(2));
  ASSERT_OK(v1.status());
  EXPECT_EQ(*v1, 1);

  Result<std::shared_ptr<const ServedModel>> got = registry.Get("m");
  ASSERT_OK(got.status());
  EXPECT_EQ((*got)->name, "m");
  EXPECT_EQ((*got)->version, 1);
  EXPECT_EQ((*got)->kind, ModelKind::kKruskal);
  EXPECT_EQ((*got)->order(), 3);
  EXPECT_EQ((*got)->rank(), 3);
  // Beams were precomputed at install with the registry's options.
  EXPECT_TRUE((*got)->beams.Matches(registry.options().beam_options));
  EXPECT_EQ((*got)->beams.rows.size(), 3u);

  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.Remove("m"));
  EXPECT_FALSE(registry.Remove("m"));
  EXPECT_TRUE(registry.Get("m").status().IsNotFound());
}

TEST(ServingRegistry, RejectsInvalidInstalls) {
  ModelRegistry registry;
  EXPECT_TRUE(registry.InstallKruskal("", MakeModel(1), nullptr)
                  .status()
                  .IsInvalidArgument());
  KruskalModel empty;
  EXPECT_TRUE(registry.InstallKruskal("m", empty, nullptr)
                  .status()
                  .IsInvalidArgument());
  // Observed tensor of the wrong order.
  Rng rng(5);
  auto observed_2d = std::make_shared<const SparseTensor>(
      RandomSparseTensor({12, 10}, 20, &rng));
  EXPECT_TRUE(registry.InstallKruskal("m", MakeModel(1), observed_2d)
                  .status()
                  .IsInvalidArgument());
}

TEST(ServingRegistry, HotSwapUnderConcurrentReaders) {
  ModelRegistry registry;
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(1), MakeObserved(2))
                .status());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> max_seen{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<std::shared_ptr<const ServedModel>> got = registry.Get("m");
        ASSERT_OK(got.status());
        const ServedModel& model = **got;
        // Snapshots are never torn: every field is fully populated no
        // matter how the writer races.
        ASSERT_EQ(model.order(), 3);
        ASSERT_EQ(model.kruskal.lambda.size(), 3u);
        ASSERT_EQ(model.beams.rows.size(), 3u);
        ASSERT_GE(model.version, 1);
        int64_t prev = max_seen.load(std::memory_order_relaxed);
        while (model.version > prev &&
               !max_seen.compare_exchange_weak(prev, model.version,
                                               std::memory_order_relaxed)) {
        }
      }
    });
  }

  int64_t last_version = 1;
  for (int swap = 0; swap < 25; ++swap) {
    Result<int64_t> v = registry.InstallKruskal(
        "m", MakeModel(10 + static_cast<uint64_t>(swap)), MakeObserved(2));
    ASSERT_OK(v.status());
    EXPECT_GT(*v, last_version);  // versions are monotone
    last_version = *v;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  // Readers never saw a version newer than the last install, and the
  // registry now serves exactly that version.
  EXPECT_LE(max_seen.load(), last_version);
  Result<std::shared_ptr<const ServedModel>> final_model = registry.Get("m");
  ASSERT_OK(final_model.status());
  EXPECT_EQ((*final_model)->version, last_version);
}

// ---------------------------------------------------------------------------
// Query engine.

TEST(ServingQueryEngine, TopKMatchesDirectPrediction) {
  ModelRegistry registry;
  KruskalModel model = MakeModel(21);
  std::shared_ptr<const SparseTensor> observed = MakeObserved(22);
  ASSERT_OK(registry.InstallKruskal("m", model, observed).status());
  QueryEngine engine(&registry);

  // Both the cached-beam width (the registry default) and a custom width
  // (forcing the recompute path) must match PredictTopEntries exactly.
  for (int64_t beam : {registry.options().beam_options.beam, int64_t{4}}) {
    Query query;
    query.model = "m";
    query.kind = QueryKind::kTopK;
    query.k = 15;
    query.beam = beam;
    Result<QueryResult> got = engine.Execute(query);
    ASSERT_OK(got.status());

    LinkPredictionOptions options;
    options.beam = beam;
    Result<std::vector<PredictedEntry>> want =
        PredictTopEntries(model, *observed, 15, options);
    ASSERT_OK(want.status());

    ASSERT_EQ(got->entries.size(), want->size()) << "beam " << beam;
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ(got->entries[i].index, (*want)[i].index)
          << "beam " << beam << " entry " << i;
      // Bit-identical scores: both paths run the same code on the same
      // beams, in the same order.
      EXPECT_EQ(got->entries[i].score, (*want)[i].score)
          << "beam " << beam << " entry " << i;
    }
    EXPECT_GT(got->prediction_stats.candidates_enumerated, 0);
    EXPECT_GE(got->prediction_stats.candidates_enumerated,
              got->prediction_stats.candidates_deduped);
    EXPECT_GE(got->prediction_stats.candidates_deduped,
              got->prediction_stats.candidates_scored);
  }
}

TEST(ServingQueryEngine, TopKRequiresObservedTensor) {
  ModelRegistry registry;
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(1), nullptr).status());
  QueryEngine engine(&registry);
  Query query;
  query.model = "m";
  query.kind = QueryKind::kTopK;
  EXPECT_TRUE(engine.Execute(query).status().IsFailedPrecondition());
}

TEST(ServingQueryEngine, NeighborsExcludeAnchorAndAreSorted) {
  ModelRegistry registry;
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(31), nullptr).status());
  QueryEngine engine(&registry);
  Query query;
  query.model = "m";
  query.kind = QueryKind::kNeighbors;
  query.mode = 0;
  query.row = 5;
  query.k = 6;
  Result<QueryResult> got = engine.Execute(query);
  ASSERT_OK(got.status());
  ASSERT_EQ(got->rows.size(), 6u);
  for (size_t i = 0; i < got->rows.size(); ++i) {
    EXPECT_NE(got->rows[i].row, 5);  // anchor excluded
    if (i > 0) EXPECT_GE(got->rows[i - 1].score, got->rows[i].score);
  }
}

TEST(ServingQueryEngine, ConceptsMatchCachedBeamOrdering) {
  ModelRegistry registry;
  KruskalModel model = MakeModel(41);
  ASSERT_OK(registry.InstallKruskal("m", model, nullptr).status());
  QueryEngine engine(&registry);
  Result<std::shared_ptr<const ServedModel>> served = registry.Get("m");
  ASSERT_OK(served.status());

  Query query;
  query.model = "m";
  query.kind = QueryKind::kConcepts;
  query.component = 1;
  query.mode = 2;
  query.k = 5;  // <= beam, so the cached beams answer this
  Result<QueryResult> got = engine.Execute(query);
  ASSERT_OK(got.status());
  ASSERT_EQ(got->rows.size(), 5u);
  const std::vector<int64_t>& beam_rows = (*served)->beams.rows[1][2];
  for (size_t i = 0; i < got->rows.size(); ++i) {
    EXPECT_EQ(got->rows[i].row, beam_rows[i]);
    EXPECT_EQ(got->rows[i].score, model.factors[2](beam_rows[i], 1));
  }
}

TEST(ServingQueryEngine, ValidationErrors) {
  ModelRegistry registry;
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(1), nullptr).status());
  QueryEngine engine(&registry);
  Query query;
  query.model = "absent";
  EXPECT_TRUE(engine.Execute(query).status().IsNotFound());
  query.model = "m";
  query.k = 0;
  EXPECT_TRUE(engine.Execute(query).status().IsInvalidArgument());
  query.k = 5;
  query.kind = QueryKind::kNeighbors;
  query.mode = 7;  // out of range
  EXPECT_TRUE(engine.Execute(query).status().IsInvalidArgument());
  query.mode = 0;
  query.row = 1000;
  EXPECT_TRUE(engine.Execute(query).status().IsInvalidArgument());
  query.row = 0;
  query.kind = QueryKind::kConcepts;
  query.component = 99;
  EXPECT_TRUE(engine.Execute(query).status().IsInvalidArgument());
}

TEST(ServingQueryEngine, CacheKeyDistinguishesQueryAndVersion) {
  Query a;
  a.model = "m";
  a.kind = QueryKind::kNeighbors;
  a.mode = 1;
  a.row = 3;
  Query b = a;
  EXPECT_EQ(QueryEngine::CacheKey(a, 1), QueryEngine::CacheKey(b, 1));
  EXPECT_NE(QueryEngine::CacheKey(a, 1), QueryEngine::CacheKey(a, 2));
  b.row = 4;
  EXPECT_NE(QueryEngine::CacheKey(a, 1), QueryEngine::CacheKey(b, 1));
  b = a;
  b.kind = QueryKind::kConcepts;
  EXPECT_NE(QueryEngine::CacheKey(a, 1), QueryEngine::CacheKey(b, 1));
}

// ---------------------------------------------------------------------------
// Request pipeline.

TEST(ServingPipeline, BatchedTopKMatchesDirectPrediction) {
  ModelRegistry registry;
  KruskalModel model = MakeModel(51);
  std::shared_ptr<const SparseTensor> observed = MakeObserved(52);
  ASSERT_OK(registry.InstallKruskal("m", model, observed).status());
  QueryEngine engine(&registry);
  ServingStats stats;
  PipelineOptions options;
  options.max_batch = 4;
  RequestPipeline pipeline(&engine, &stats, options);

  LinkPredictionOptions lp;
  Result<std::vector<PredictedEntry>> want =
      PredictTopEntries(model, *observed, 10, lp);
  ASSERT_OK(want.status());
  ASSERT_FALSE(want->empty());

  // Many concurrent submissions of the same query — batched, cached, and
  // fanned out — every one must equal the direct call exactly.
  std::vector<std::future<RequestPipeline::Response>> futures;
  for (int i = 0; i < 32; ++i) {
    Query query;
    query.model = "m";
    query.kind = QueryKind::kTopK;
    query.k = 10;
    futures.push_back(pipeline.Submit(query));
  }
  for (auto& f : futures) {
    RequestPipeline::Response response = f.get();
    ASSERT_OK(response.status);
    ASSERT_NE(response.result, nullptr);
    ASSERT_EQ(response.result->entries.size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ(response.result->entries[i].index, (*want)[i].index);
      EXPECT_EQ(response.result->entries[i].score, (*want)[i].score);
    }
  }
  pipeline.Shutdown();
  EXPECT_EQ(stats.ClassCount(ServingQueryClass::kTopK), 32u);
  // The duplicate queries hit the LRU after the first execution; with
  // batching there may be several concurrent first executions, but hits
  // must dominate.
  ShardedLruCache<QueryResult>::Stats cache = pipeline.CacheStats();
  EXPECT_EQ(cache.hits + cache.misses, 32u);
  EXPECT_GT(cache.hits, 0u);
}

TEST(ServingPipeline, CacheHitOnRepeatAndInvalidationOnHotSwap) {
  ModelRegistry registry;
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(61), nullptr).status());
  QueryEngine engine(&registry);
  ServingStats stats;
  RequestPipeline pipeline(&engine, &stats);

  Query query;
  query.model = "m";
  query.kind = QueryKind::kNeighbors;
  query.mode = 1;
  query.row = 2;
  RequestPipeline::Response first = pipeline.Submit(query).get();
  ASSERT_OK(first.status);
  EXPECT_FALSE(first.cache_hit);
  RequestPipeline::Response second = pipeline.Submit(query).get();
  ASSERT_OK(second.status);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result->model_version, first.result->model_version);

  // Hot-swap: the version bump changes the cache key, so the same query
  // misses and answers from the new model.
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(62), nullptr).status());
  RequestPipeline::Response third = pipeline.Submit(query).get();
  ASSERT_OK(third.status);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_GT(third.result->model_version, first.result->model_version);

  pipeline.Shutdown();
  EXPECT_EQ(stats.ClassCacheHits(ServingQueryClass::kNeighbors), 1u);
}

TEST(ServingPipeline, ErrorsPropagateAndAreCounted) {
  ModelRegistry registry;
  QueryEngine engine(&registry);
  ServingStats stats;
  RequestPipeline pipeline(&engine, &stats);
  Query query;
  query.model = "absent";
  RequestPipeline::Response response = pipeline.Submit(query).get();
  EXPECT_TRUE(response.status.IsNotFound());
  EXPECT_EQ(response.result, nullptr);
  pipeline.Shutdown();
  EXPECT_EQ(stats.ClassErrors(ServingQueryClass::kTopK), 1u);
}

TEST(ServingPipeline, SubmitAfterShutdownFailsCleanly) {
  ModelRegistry registry;
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(71), nullptr).status());
  QueryEngine engine(&registry);
  ServingStats stats;
  RequestPipeline pipeline(&engine, &stats);
  pipeline.Shutdown();
  pipeline.Shutdown();  // idempotent
  Query query;
  query.model = "m";
  query.kind = QueryKind::kNeighbors;
  RequestPipeline::Response response = pipeline.Submit(query).get();
  EXPECT_TRUE(response.status.IsAborted());
}

TEST(ServingPipeline, ConcurrentClientsDrainCompletely) {
  ModelRegistry registry;
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(81), nullptr).status());
  QueryEngine engine(&registry);
  ServingStats stats;
  PipelineOptions options;
  options.queue_capacity = 8;  // force backpressure
  options.max_batch = 4;
  options.num_threads = 4;
  RequestPipeline pipeline(&engine, &stats, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 100;
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(200 + static_cast<uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        Query query;
        query.model = "m";
        query.kind = (i % 2 == 0) ? QueryKind::kNeighbors
                                  : QueryKind::kConcepts;
        query.mode = static_cast<int>(rng.UniformInt(3));
        query.row = static_cast<int64_t>(rng.UniformInt(8));
        query.component = static_cast<int64_t>(rng.UniformInt(3));
        query.k = 3;
        RequestPipeline::Response response =
            pipeline.Submit(query).get();
        ASSERT_OK(response.status);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  pipeline.Shutdown();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(stats.TotalQueries(),
            static_cast<uint64_t>(kClients * kPerClient));
}

// ---------------------------------------------------------------------------
// Telemetry.

TEST(ServingStatsTest, HistogramQuantilesBracketRecordedLatency) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1e-3);  // 1 ms
  LatencyHistogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.total_count, 100u);
  // Power-of-two buckets: 1000 us lands in [512, 1024) us, so any
  // quantile reads back the bucket midpoint — within 2x of the truth.
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_GE(snap.Quantile(q), 0.5e-3);
    EXPECT_LE(snap.Quantile(q), 2e-3);
  }
  EXPECT_NEAR(snap.MeanSeconds(), 1e-3, 1e-5);
  EXPECT_EQ(LatencyHistogram().Take().Quantile(0.5), 0.0);  // empty
}

TEST(ServingStatsTest, PerClassCountersAreIndependent) {
  ServingStats stats;
  stats.RecordQuery(ServingQueryClass::kTopK, 1e-3, false, true);
  stats.RecordQuery(ServingQueryClass::kTopK, 2e-3, true, true);
  stats.RecordQuery(ServingQueryClass::kNeighbors, 1e-4, false, false);
  EXPECT_EQ(stats.ClassCount(ServingQueryClass::kTopK), 2u);
  EXPECT_EQ(stats.ClassCacheHits(ServingQueryClass::kTopK), 1u);
  EXPECT_EQ(stats.ClassErrors(ServingQueryClass::kTopK), 0u);
  EXPECT_EQ(stats.ClassCount(ServingQueryClass::kNeighbors), 1u);
  EXPECT_EQ(stats.ClassErrors(ServingQueryClass::kNeighbors), 1u);
  EXPECT_EQ(stats.ClassCount(ServingQueryClass::kConcepts), 0u);
  EXPECT_EQ(stats.TotalQueries(), 3u);
}

TEST(ServingStatsTest, JsonRoundTripsThroughChecker) {
  ServingStats stats;
  stats.RecordQuery(ServingQueryClass::kTopK, 2e-3, false, true);
  stats.RecordQuery(ServingQueryClass::kNeighbors, 5e-4, true, true);
  stats.RecordQuery(ServingQueryClass::kConcepts, 1e-4, false, false);
  stats.RecordBatch(3);
  stats.EndWindow();

  ServingStats::CacheCounters cache;
  cache.hits = 1;
  cache.misses = 2;
  cache.evictions = 0;
  cache.entries = 2;
  cache.hit_rate = 1.0 / 3.0;
  ServingStats::ModelRow row;
  row.name = "m";
  row.kind = "kruskal";
  row.version = 3;
  row.order = 3;
  row.rank = 4;
  std::string json = stats.ToJson("serving_test", cache, {row});

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* key :
       {"\"schema\":\"haten2-serving-v1\"", "\"tool\":\"serving_test\"",
        "\"window_seconds\"", "\"queries\":3", "\"qps\"", "\"cache\"",
        "\"hit_rate\"", "\"batching\"", "\"max_batch_size\":3",
        "\"classes\"", "\"class\":\"topk\"", "\"class\":\"neighbors\"",
        "\"class\":\"concepts\"", "\"latency_ms\"", "\"p50\"", "\"p95\"",
        "\"p99\"", "\"errors\":1", "\"models\"", "\"name\":\"m\"",
        "\"kind\":\"kruskal\"", "\"version\":3"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  // File round-trip stays parseable.
  std::string path =
      std::string(::testing::TempDir()) + "/haten2_serving_stats.json";
  ASSERT_OK(WriteServingStatsJsonFile(json, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string back((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(JsonChecker(back).Valid());
  EXPECT_NE(back.find("haten2-serving-v1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Version-prefix purging (ISSUE 10 satellite: dead-version entries must not
// survive a hot-swap and squeeze the live working set).

TEST(ServingLruCache, PurgeWhereDropsMatchingEntriesAndCounts) {
  ShardedLruCache<int> cache(8, 2);
  cache.Insert("m/v1/a", std::make_shared<const int>(1));
  cache.Insert("m/v1/b", std::make_shared<const int>(2));
  cache.Insert("m/v2/a", std::make_shared<const int>(3));
  cache.Insert("other/v1/a", std::make_shared<const int>(4));

  uint64_t purged = cache.PurgeWhere([](const std::string& key) {
    return key.rfind("m/v1/", 0) == 0;
  });
  EXPECT_EQ(purged, 2u);
  EXPECT_EQ(cache.Lookup("m/v1/a"), nullptr);
  EXPECT_EQ(cache.Lookup("m/v1/b"), nullptr);
  ASSERT_NE(cache.Lookup("m/v2/a"), nullptr);
  ASSERT_NE(cache.Lookup("other/v1/a"), nullptr);

  ShardedLruCache<int>::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.purges, 2u);
  EXPECT_EQ(stats.evictions, 0u);  // purges are accounted separately
  EXPECT_EQ(stats.entries, 2);
}

TEST(ServingPipeline, HotSwapPurgesDeadVersionEntriesInsteadOfEvicting) {
  ModelRegistry registry;
  QueryEngine engine(&registry);
  ServingStats stats;
  PipelineOptions options;
  // Capacity for exactly the live working set: two queries. Before the
  // purge fix, each hot-swap left the old version's entries behind, so
  // re-asking the same two queries overflowed the cache and showed up as
  // evictions of *live* entries.
  options.cache_capacity = 2;
  options.cache_shards = 1;
  RequestPipeline pipeline(&engine, &stats, options);
  registry.SetInstallListener(
      [&pipeline](const std::string& name, int64_t version) {
        pipeline.PurgeModelExcept(name, version);
      });
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(81), nullptr).status());

  auto ask = [&pipeline](int row) {
    Query query;
    query.model = "m";
    query.kind = QueryKind::kNeighbors;
    query.mode = 1;
    query.row = row;
    return pipeline.Submit(query).get();
  };
  ASSERT_OK(ask(1).status);
  ASSERT_OK(ask(2).status);
  ASSERT_EQ(pipeline.CacheStats().entries, 2);

  // Hot-swap. The install listener purges every v1 entry, so the v2
  // working set fits without evicting anything.
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(82), nullptr).status());
  ASSERT_EQ(pipeline.CacheStats().purges, 2u);
  ASSERT_OK(ask(1).status);
  ASSERT_OK(ask(2).status);
  pipeline.Shutdown();

  ShardedLruCache<QueryResult>::Stats cache = pipeline.CacheStats();
  EXPECT_EQ(cache.entries, 2);
  EXPECT_EQ(cache.evictions, 0u)
      << "dead-version entries survived the hot-swap and squeezed out "
         "live ones";
}

TEST(ServingPipeline, PurgeKeepsOtherModelsAndExactPrefixOnly) {
  ModelRegistry registry;
  QueryEngine engine(&registry);
  ServingStats stats;
  RequestPipeline pipeline(&engine, &stats);
  // Names where naive prefix matching would overreach: "m" vs "m2".
  ASSERT_OK(registry.InstallKruskal("m", MakeModel(83), nullptr).status());
  ASSERT_OK(registry.InstallKruskal("m2", MakeModel(84), nullptr).status());

  auto ask = [&pipeline](const std::string& model) {
    Query query;
    query.model = model;
    query.kind = QueryKind::kNeighbors;
    query.mode = 0;
    query.row = 3;
    return pipeline.Submit(query).get();
  };
  ASSERT_OK(ask("m").status);
  ASSERT_OK(ask("m2").status);
  ASSERT_EQ(pipeline.CacheStats().entries, 2);

  // Purging dead versions of "m" must not touch "m2" entries.
  uint64_t purged = pipeline.PurgeModelExcept("m", /*keep_version=*/999);
  EXPECT_EQ(purged, 1u);
  RequestPipeline::Response m2_again = ask("m2");
  ASSERT_OK(m2_again.status);
  EXPECT_TRUE(m2_again.cache_hit);
  pipeline.Shutdown();
}

// ---------------------------------------------------------------------------
// RefitController: the ingest → refit → serve loop end to end.

TEST(RefitControllerTest, BootstrapCatchUpInstallsAndTracksStaleness) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.contraction = "incore";
  ASSERT_OK(config.Validate());
  Engine engine(config);
  ModelRegistry registry;
  Rng rng(91);
  SparseTensor base = RandomSparseTensor({8, 7, 6}, 60, &rng);

  RefitController::Options options;
  options.model_name = "live";
  options.refit.rank = 3;
  options.refit.als.max_iterations = 4;
  options.refit.als.seed = 777;
  RefitController controller(&engine, &registry, base, options);
  ASSERT_OK(controller.Bootstrap());

  Result<std::shared_ptr<const ServedModel>> v1 = registry.Get("live");
  ASSERT_OK(v1.status());
  const int64_t bootstrap_version = (*v1)->version;
  RefitController::Counters after_boot = controller.GetCounters();
  EXPECT_EQ(after_boot.epochs_sealed, 0);
  EXPECT_EQ(after_boot.epochs_installed, 0);
  EXPECT_EQ(after_boot.installed_version, bootstrap_version);

  Result<DeltaLog> log = DeltaLog::Create(base.dims());
  ASSERT_TRUE(log.ok());
  ASSERT_OK(log->Append({1, 2, 3}, 1.0));
  ASSERT_OK(log->SealEpoch().status());
  ASSERT_OK(log->Append({4, 5, 2}, -0.5));
  ASSERT_OK(log->SealEpoch().status());

  Result<int64_t> ingested = controller.CatchUp(*log);
  ASSERT_OK(ingested.status());
  EXPECT_EQ(*ingested, 2);
  // Re-running against the same log ingests nothing new.
  Result<int64_t> again = controller.CatchUp(*log);
  ASSERT_OK(again.status());
  EXPECT_EQ(*again, 0);
  // A later seal is picked up by the next call.
  ASSERT_OK(log->Append({0, 0, 0}, 2.0));
  ASSERT_OK(log->SealEpoch().status());
  Result<int64_t> tail = controller.CatchUp(*log);
  ASSERT_OK(tail.status());
  EXPECT_EQ(*tail, 1);

  RefitController::Counters counters = controller.GetCounters();
  EXPECT_EQ(counters.epochs_sealed, 3);
  EXPECT_EQ(counters.epochs_installed, 3);
  EXPECT_EQ(counters.epochs_behind, 0);  // fully caught up
  EXPECT_GE(counters.max_epochs_behind, 1);
  EXPECT_GT(counters.installed_version, bootstrap_version);
  EXPECT_EQ(counters.refit.epochs, 3);
  EXPECT_EQ(counters.refit.delta_nnz, 3);

  // The registry serves the newest refit with the merged observed tensor.
  Result<std::shared_ptr<const ServedModel>> live = registry.Get("live");
  ASSERT_OK(live.status());
  EXPECT_EQ((*live)->version, counters.installed_version);
  ASSERT_NE((*live)->observed, nullptr);
  EXPECT_EQ((*live)->observed->nnz(), controller.session().tensor().nnz());
}

TEST(RefitControllerTest, MissingWarmStartDirectoryFallsBackToColdStart) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.contraction = "incore";
  ASSERT_OK(config.Validate());
  Engine engine(config);
  ModelRegistry registry;
  Rng rng(92);

  RefitController::Options options;
  options.refit.rank = 2;
  options.refit.als.max_iterations = 2;
  options.warm_start_checkpoint_dir =
      std::string(::testing::TempDir()) + "/refit_ctrl_no_such_dir";
  RefitController controller(&engine, &registry,
                             RandomSparseTensor({5, 5, 5}, 20, &rng), options);
  ASSERT_OK(controller.Bootstrap());
  EXPECT_OK(registry.Get("live").status());
}

TEST(ServingStatsTest, RefitTelemetryIsEmittedWhenPresent) {
  ServingStats stats;
  stats.RecordQuery(ServingQueryClass::kTopK, 1e-3, false, true);
  stats.EndWindow();

  ServingStats::CacheCounters cache;
  cache.purges = 7;
  ServingStats::RefitTelemetry refit;
  refit.epochs_sealed = 5;
  refit.epochs_installed = 4;
  refit.epochs_behind = 1;
  refit.max_epochs_behind = 2;
  refit.installed_version = 6;
  refit.delta_nnz = 1234;
  refit.merge_seconds = 0.25;
  refit.refit_seconds = 1.5;
  refit.refit_iterations = 40;
  refit.last_fit = 0.875;
  std::string json = stats.ToJson("serving_test", cache, {}, &refit);

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* key :
       {"\"purges\":7", "\"refit\"", "\"epochs_sealed\":5",
        "\"epochs_installed\":4", "\"epochs_behind\":1",
        "\"max_epochs_behind\":2", "\"installed_version\":6",
        "\"delta_nnz\":1234", "\"refit_iterations\":40"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Without telemetry the object is absent — the schema addition is purely
  // additive.
  std::string bare = stats.ToJson("serving_test", cache, {});
  EXPECT_TRUE(JsonChecker(bare).Valid()) << bare;
  EXPECT_EQ(bare.find("\"refit\""), std::string::npos);
}

}  // namespace
}  // namespace haten2
