// Validates the benchmark harnesses' "haten2-bench-v1" JSON export — the
// shape the fig8 straggler-ablation cells flow through — against the
// independent JSON syntax checker, including the embedded stats-v5 pipeline
// objects.

#include "bench_json.h"

#include <gtest/gtest.h>

#include <string>

#include "json_checker.h"
#include "mapreduce/engine.h"
#include "test_util.h"

namespace haten2 {
namespace {

// A small real pipeline (one engine job) so the embedded
// PipelineStatsToJson objects carry genuine counters.
PipelineStats SmallPipeline() {
  Engine engine(ClusterConfig::ForTesting());
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "bench_json", 256,
      [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(i % 16, 1);
      },
      [](const int64_t& k, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(k, static_cast<int64_t>(vs.size()));
      });
  EXPECT_OK(result.status());
  return engine.PipelineSnapshot();
}

TEST(BenchJsonTest, LogValidatesAndCarriesV5PipelineFields) {
  bench::BenchJsonLog log("unit_test");
  bench::Measurement m;
  m.simulated_seconds = 12.5;
  m.pipeline = SmallPipeline();
  m.jobs = m.pipeline.NumJobs();
  log.Add("stragglers", "uniform", "HaTen2-DRI-Tucker", m);
  log.Add("stragglers", "hetero+spec", "HaTen2-DRI-Tucker", m);

  std::string json = log.ToJson();
  EXPECT_TRUE(testing::JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"haten2-bench-v1\""), std::string::npos);
  // The embedded pipelines carry the stats-v5 plan aggregate.
  EXPECT_NE(json.find("\"critical_path_with_backoff_seconds\""),
            std::string::npos);
}

TEST(BenchJsonTest, CostGatedSpeculationCountersAppearWithACostModel) {
  // The bench log embeds pipelines without a CostModel (cost-gated keys
  // absent); the CLI export passes one. Both shapes must stay valid JSON.
  PipelineStats pipeline = SmallPipeline();
  ClusterConfig config = ClusterConfig::ForTesting();
  config.speculative_execution = true;
  CostModel cost(config);
  JsonWriter w;
  PipelineStatsToJson(pipeline, &cost, &w);
  std::string json = w.str();
  EXPECT_TRUE(testing::JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"speculated_tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"speculation_won\""), std::string::npos);
  EXPECT_NE(json.find("\"speculation_wasted_seconds\""), std::string::npos);

  JsonWriter bare;
  PipelineStatsToJson(pipeline, /*cost=*/nullptr, &bare);
  EXPECT_EQ(bare.str().find("\"speculated_tasks\""), std::string::npos);
}

}  // namespace
}  // namespace haten2
