// Tests for the single-machine Tensor-Toolbox baseline: algorithmic
// correctness, MET vs naive-chain equivalence, and the memory-budget
// ("o.o.m.") behaviour that defines the Toolbox's failure points in
// Figures 1 and 7.

#include "baseline/toolbox.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/linalg.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

TEST(MetProjectedUnfoldingOp, MatchesTtmChain) {
  Rng rng(61);
  SparseTensor x = RandomSparseTensor({8, 7, 6}, 50, &rng);
  DenseMatrix a = DenseMatrix::RandomNormal(8, 2, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(7, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(6, 2, &rng);
  std::vector<const DenseMatrix*> factors = {&a, &b, &c};
  for (int skip = 0; skip < 3; ++skip) {
    Result<DenseMatrix> met =
        MetProjectedUnfolding(x, factors, skip, nullptr);
    ASSERT_OK(met.status());
    Result<SparseTensor> chain = NaiveTtmChain(x, factors, skip, nullptr);
    ASSERT_OK(chain.status());
    DenseMatrix want = DenseTensor::FromSparse(*chain).Unfold(skip);
    ASSERT_TRUE(met->SameShape(want)) << "skip=" << skip;
    EXPECT_LT(met->MaxAbsDiff(want), 1e-10) << "skip=" << skip;
  }
}

TEST(MetProjectedUnfoldingOp, ChargesMemory) {
  Rng rng(62);
  SparseTensor x = RandomSparseTensor({50, 50, 50}, 100, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(50, 10, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(50, 10, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  // Output would be 50 x 100 doubles = 40000 bytes > budget.
  MemoryTracker tight(10000);
  Result<DenseMatrix> r = MetProjectedUnfolding(x, factors, 0, &tight);
  EXPECT_TRUE(r.status().IsResourceExhausted());
  EXPECT_EQ(tight.used(), 0u);  // rolled back
  MemoryTracker roomy(1 << 20);
  EXPECT_OK(MetProjectedUnfolding(x, factors, 0, &roomy).status());
  EXPECT_EQ(roomy.used(), 0u);  // released on return
}

TEST(NaiveTtmChainOp, ExplodesUnderBudget) {
  Rng rng(63);
  // Dense-ish factor contraction: intermediate is nnz * 10 entries.
  SparseTensor x = RandomSparseTensor({40, 40, 40}, 2000, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(40, 10, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(40, 10, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  MemoryTracker tight(64 * 1024);
  Result<SparseTensor> r = NaiveTtmChain(x, factors, 0, &tight);
  EXPECT_TRUE(r.status().IsResourceExhausted());
  EXPECT_EQ(tight.used(), 0u);
}

TEST(ToolboxParafac, RecoversExactRankTwo) {
  Rng rng(64);
  std::vector<double> lambda = {4.0, 1.0};
  DenseMatrix a = DenseMatrix::RandomNormal(9, 2, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(8, 2, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(7, 2, &rng);
  Result<DenseTensor> dense = ReconstructKruskal(lambda, {&a, &b, &c});
  ASSERT_OK(dense.status());
  SparseTensor x = dense->ToSparse();

  BaselineOptions options;
  options.max_iterations = 100;
  options.tolerance = 1e-12;
  Result<KruskalModel> model = ToolboxParafacAls(x, 2, options);
  ASSERT_OK(model.status());
  EXPECT_GT(model->fit, 0.999);
  // Factors have unit-norm columns.
  for (const DenseMatrix& f : model->factors) {
    std::vector<double> norms;
    DenseMatrix copy = f;
    NormalizeColumns(&copy, &norms);
    for (double n : norms) EXPECT_NEAR(n, 1.0, 1e-9);
  }
}

TEST(ToolboxParafac, NWayTensorsBeyondMrLimit) {
  // 5-way: beyond the MapReduce path's kMaxMrOrder, supported here.
  Rng rng(65);
  SparseTensor x = RandomSparseTensor({4, 4, 4, 4, 4}, 40, &rng);
  BaselineOptions options;
  options.max_iterations = 4;
  Result<KruskalModel> model = ToolboxParafacAls(x, 2, options);
  ASSERT_OK(model.status());
  EXPECT_EQ(model->factors.size(), 5u);
}

TEST(ToolboxParafac, OomUnderSmallBudget) {
  Rng rng(66);
  SparseTensor x = RandomSparseTensor({100, 100, 100}, 3000, &rng);
  MemoryTracker tiny(1024);
  BaselineOptions options;
  options.memory = &tiny;
  Result<KruskalModel> model = ToolboxParafacAls(x, 10, options);
  EXPECT_TRUE(model.status().IsResourceExhausted());
}

TEST(ToolboxParafac, Validation) {
  Rng rng(67);
  SparseTensor x = RandomSparseTensor({5, 5, 5}, 20, &rng);
  EXPECT_TRUE(ToolboxParafacAls(x, 0).status().IsInvalidArgument());
  Result<SparseTensor> empty = SparseTensor::Create3(3, 3, 3);
  ASSERT_OK(empty.status());
  EXPECT_TRUE(ToolboxParafacAls(*empty, 2).status().IsInvalidArgument());
}

TEST(ToolboxTucker, RecoversExactLowMultilinearRank) {
  Rng rng(68);
  Result<DenseTensor> core = DenseTensor::Create({2, 2, 2});
  ASSERT_OK(core.status());
  for (double& v : core->data()) v = rng.Uniform(0.5, 2.0);
  DenseMatrix a = DenseMatrix::RandomUniform(8, 2, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(7, 2, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(6, 2, &rng);
  Result<DenseTensor> dense = ReconstructTucker(*core, {&a, &b, &c});
  ASSERT_OK(dense.status());
  SparseTensor x = dense->ToSparse();

  BaselineOptions options;
  options.max_iterations = 30;
  Result<TuckerModel> model = ToolboxTuckerAls(x, {2, 2, 2}, options);
  ASSERT_OK(model.status());
  EXPECT_GT(model->fit, 0.9999);
  for (const DenseMatrix& f : model->factors) {
    EXPECT_TRUE(HasOrthonormalColumns(f, 1e-8));
  }
}

TEST(ToolboxTucker, MetAndNaiveChainAgree) {
  Rng rng(69);
  SparseTensor x = RandomSparseTensor({9, 8, 7}, 60, &rng);
  BaselineOptions met;
  met.max_iterations = 4;
  met.tolerance = 0.0;
  met.seed = 3;
  BaselineOptions naive = met;
  naive.use_met = false;
  Result<TuckerModel> a = ToolboxTuckerAls(x, {3, 2, 2}, met);
  Result<TuckerModel> b = ToolboxTuckerAls(x, {3, 2, 2}, naive);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_NEAR(a->fit, b->fit, 1e-9);
  EXPECT_LT(a->core.MaxAbsDiff(b->core), 1e-8);
}

TEST(ToolboxTucker, CoreNormMonotonicAndFitConsistent) {
  Rng rng(70);
  SparseTensor x = RandomSparseTensor({12, 10, 9}, 150, &rng);
  BaselineOptions options;
  options.max_iterations = 8;
  options.tolerance = 0.0;
  Result<TuckerModel> model = ToolboxTuckerAls(x, {3, 3, 3}, options);
  ASSERT_OK(model.status());
  for (size_t i = 1; i < model->core_norm_history.size(); ++i) {
    EXPECT_GE(model->core_norm_history[i],
              model->core_norm_history[i - 1] - 1e-9);
  }
  // fit = 1 - sqrt(||X||² - ||G||²)/||X||.
  double want = 1.0 - std::sqrt(x.SumSquares() -
                                std::pow(model->core.FrobeniusNorm(), 2)) /
                          x.FrobeniusNorm();
  EXPECT_NEAR(model->fit, want, 1e-9);
}

TEST(ToolboxTucker, OomUnderSmallBudgetMetVsNoMet) {
  Rng rng(71);
  SparseTensor x = RandomSparseTensor({60, 60, 60}, 4000, &rng);
  // A budget that MET fits in (dense Y: 60 x 100 doubles ≈ 48 KB) but the
  // naive chain (nnz·Q ≈ 40000 entries x 32 B ≈ 1.3 MB) does not — the gap
  // MET was invented for.
  uint64_t budget = x.ApproxBytes() +
                    3 * 60 * 10 * sizeof(double) +  // factors
                    1000 * sizeof(double) +         // core
                    256 * 1024;                     // workspace
  {
    MemoryTracker tracker(budget);
    BaselineOptions options;
    options.memory = &tracker;
    options.max_iterations = 2;
    EXPECT_OK(ToolboxTuckerAls(x, {10, 10, 10}, options).status());
  }
  {
    MemoryTracker tracker(budget);
    BaselineOptions options;
    options.memory = &tracker;
    options.max_iterations = 2;
    options.use_met = false;
    Result<TuckerModel> r = ToolboxTuckerAls(x, {10, 10, 10}, options);
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  }
}

TEST(ToolboxTucker, Validation) {
  Rng rng(72);
  SparseTensor x = RandomSparseTensor({5, 5, 5}, 20, &rng);
  EXPECT_TRUE(ToolboxTuckerAls(x, {2, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(ToolboxTuckerAls(x, {2, 2, 6}).status().IsInvalidArgument());
  EXPECT_TRUE(ToolboxTuckerAls(x, {0, 2, 2}).status().IsInvalidArgument());
}

TEST(ToolboxMttkrpOp, MatchesDirectMttkrp) {
  Rng rng(73);
  SparseTensor x = RandomSparseTensor({7, 6, 5}, 40, &rng);
  DenseMatrix a = DenseMatrix::RandomNormal(7, 3, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(6, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(5, 3, &rng);
  std::vector<const DenseMatrix*> factors = {&a, &b, &c};
  Result<DenseMatrix> guarded = ToolboxMttkrp(x, factors, 1, nullptr);
  Result<DenseMatrix> direct = Mttkrp(x, factors, 1);
  ASSERT_OK(guarded.status());
  ASSERT_OK(direct.status());
  EXPECT_LT(guarded->MaxAbsDiff(*direct), 1e-12);
  EXPECT_TRUE(ToolboxMttkrp(x, factors, 5, nullptr).status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace haten2
