// Unit tests for the util module: Status/Result, string helpers, Rng,
// ThreadPool and MemoryTracker.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "test_util.h"
#include "util/memory_tracker.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace haten2 {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.IsInvalidArgument());
  EXPECT_EQ(err.message(), "bad rank");
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad rank");

  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, EqualityAndCodeNames) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoubleIfPositive(int v) {
  HATEN2_ASSIGN_OR_RETURN(int checked, ParsePositive(v));
  return checked * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);
  EXPECT_EQ(good.value_or(-1), 5);

  Result<int> bad = ParsePositive(-2);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.value_or(-1), -1);

  EXPECT_EQ(DoubleIfPositive(4).value(), 8);
  EXPECT_FALSE(DoubleIfPositive(0).ok());
}

TEST(ResultTest, ConstructingFromOkStatusIsInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(SplitJoinTrimTest, Basics) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitWhitespace("  a\t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(ParseTest, IntegersAndDoubles) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_TRUE(ParseInt64("999999999999999999999999").status().IsOutOfRange());
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(HumanFormatTest, Readable) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.0 GB");
  EXPECT_EQ(HumanCount(950), "950");
  EXPECT_EQ(HumanCount(1500), "1.5K");
  EXPECT_EQ(HumanCount(2500000), "2.5M");
  EXPECT_EQ(HumanCount(3100000000ull), "3.1B");
  EXPECT_EQ(HumanSeconds(0.5), "500.0 ms");
  EXPECT_EQ(HumanSeconds(2.0), "2.00 s");
  EXPECT_EQ(HumanSeconds(300.0), "5.0 min");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(uint64_t{10});
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 100; ++i) {
    int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ZipfSkewsTowardsSmallIndices) {
  Rng rng(2);
  int64_t first_two = 0;
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.2) < 2) ++first_two;
  }
  // With exponent 1.2 the head holds a large share.
  EXPECT_GT(first_two, n / 4);
  EXPECT_EQ(rng.Zipf(0, 1.0), 0u);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
}

TEST(RngTest, BernoulliAndNormalSanity) {
  Rng rng(3);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  // Zero iterations is a no-op; single thread runs inline.
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  ThreadPool single(1);
  int count = 0;
  single.ParallelFor(10, [&count](size_t) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(MemoryTrackerTest, ChargeReleasePeak) {
  MemoryTracker tracker(1000);
  EXPECT_OK(tracker.Charge(400));
  EXPECT_OK(tracker.Charge(500));
  EXPECT_EQ(tracker.used(), 900u);
  Status s = tracker.Charge(200);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(tracker.used(), 900u);  // failed charge rolled back
  tracker.Release(500);
  EXPECT_OK(tracker.Charge(200));
  EXPECT_EQ(tracker.peak(), 900u);
  tracker.Reset();
  EXPECT_EQ(tracker.used(), 0u);
  EXPECT_EQ(tracker.peak(), 0u);
}

TEST(MemoryTrackerTest, UnlimitedNeverFails) {
  MemoryTracker tracker;
  EXPECT_OK(tracker.Charge(uint64_t{1} << 60));
  EXPECT_OK(tracker.Charge(uint64_t{1} << 60));
}

TEST(MemoryTrackerTest, ConcurrentChargesBalance) {
  MemoryTracker tracker(MemoryTracker::kUnlimited);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < 10000; ++i) {
        HATEN2_CHECK_OK(tracker.Charge(16));
        tracker.Release(16);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracker.used(), 0u);
}

TEST(ScopedChargeTest, ReleasesOnDestruction) {
  MemoryTracker tracker(100);
  {
    ScopedCharge charge(&tracker, 60);
    EXPECT_TRUE(charge.ok());
    EXPECT_EQ(tracker.used(), 60u);
    ScopedCharge denied(&tracker, 60);
    EXPECT_FALSE(denied.ok());
    EXPECT_TRUE(denied.status().IsResourceExhausted());
  }
  EXPECT_EQ(tracker.used(), 0u);
  ScopedCharge null_ok(nullptr, 1 << 30);
  EXPECT_TRUE(null_ok.ok());
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  double t0 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GE(timer.ElapsedSeconds(), t0);
  double bucket = 0.0;
  {
    ScopedTimer scoped(&bucket);
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_GE(bucket, 0.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace haten2
