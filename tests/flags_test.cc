// Tests for the command-line flag parser and the dense-matrix text format
// used by the CLI tool.

#include "util/flags.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tensor/tensor_io.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

FlagParser Make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, SeparatesFlagsAndPositionals) {
  FlagParser flags =
      Make({"input.tns", "--rank=5", "--verbose", "second.tns"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.tns", "second.tns"}));
  EXPECT_TRUE(flags.Has("rank"));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("rnak"));
}

TEST(FlagParserTest, TypedGettersWithDefaults) {
  FlagParser flags = Make({"--rank=5", "--tol=1e-3", "--name=x",
                           "--flag=false"});
  EXPECT_EQ(flags.GetInt("rank", 10).value(), 5);
  EXPECT_EQ(flags.GetInt("missing", 10).value(), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("tol", 1.0).value(), 1e-3);
  EXPECT_EQ(flags.GetString("name", "y"), "x");
  EXPECT_EQ(flags.GetString("missing", "y"), "y");
  EXPECT_FALSE(flags.GetBool("flag", true));
  EXPECT_TRUE(flags.GetBool("missing", true));
  FlagParser bare = Make({"--on"});
  EXPECT_TRUE(bare.GetBool("on", false));
}

TEST(FlagParserTest, ParseErrorsSurface) {
  FlagParser flags = Make({"--rank=abc", "--tol=zz"});
  EXPECT_TRUE(flags.GetInt("rank", 1).status().IsInvalidArgument());
  EXPECT_TRUE(flags.GetDouble("tol", 1.0).status().IsInvalidArgument());
}

TEST(FlagParserTest, DimsFlag) {
  FlagParser flags = Make({"--core=4x5x6", "--bad=4xx6"});
  EXPECT_EQ(flags.GetDims("core", {}).value(),
            (std::vector<int64_t>{4, 5, 6}));
  EXPECT_EQ(flags.GetDims("missing", {2, 2}).value(),
            (std::vector<int64_t>{2, 2}));
  EXPECT_TRUE(flags.GetDims("bad", {}).status().IsInvalidArgument());
}

TEST(FlagParserTest, ValidateCatchesTypos) {
  FlagParser flags = Make({"--rank=5", "--croe=3x3x3"});
  EXPECT_OK(flags.Validate({"rank", "croe"}));
  Status s = flags.Validate({"rank", "core"});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("croe"), std::string::npos);
}

TEST(MatrixIo, RoundTrips) {
  Rng rng(501);
  DenseMatrix m = DenseMatrix::RandomNormal(7, 4, &rng);
  std::string path = std::string(::testing::TempDir()) + "/m.txt";
  ASSERT_OK(WriteMatrixText(m, path));
  Result<DenseMatrix> back = ReadMatrixText(path);
  ASSERT_OK(back.status());
  ASSERT_TRUE(back->SameShape(m));
  EXPECT_DOUBLE_EQ(back->MaxAbsDiff(m), 0.0);  // %.17g is exact for doubles
  std::remove(path.c_str());
}

TEST(MatrixIo, Errors) {
  EXPECT_TRUE(ReadMatrixText("/nonexistent/m.txt").status().IsIOError());
  std::string path = std::string(::testing::TempDir()) + "/bad.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("1 2\n3\n", f);  // ragged
    fclose(f);
  }
  EXPECT_TRUE(ReadMatrixText(path).status().IsInvalidArgument());
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("# only a comment\n", f);
    fclose(f);
  }
  EXPECT_TRUE(ReadMatrixText(path).status().IsInvalidArgument());
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("1 x\n", f);
    fclose(f);
  }
  EXPECT_TRUE(ReadMatrixText(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace haten2
