// Tests for model checkpointing: Kruskal and Tucker models must round-trip
// exactly through their on-disk representation.

#include "tensor/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tensor/tensor_io.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

std::string Prefix(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void Cleanup(const std::string& prefix, int order, bool tucker) {
  for (int m = 0; m < order; ++m) {
    std::remove((prefix + ".mode" + std::to_string(m) + ".txt").c_str());
  }
  std::remove((prefix + (tucker ? ".core.txt" : ".lambda.txt")).c_str());
}

TEST(ModelIo, KruskalRoundTrip) {
  Rng rng(701);
  KruskalModel model;
  model.lambda = {3.25, 1.0, 0.125};
  model.factors.push_back(DenseMatrix::RandomNormal(6, 3, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(5, 3, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(4, 3, &rng));

  std::string prefix = Prefix("kruskal");
  ASSERT_OK(SaveKruskalModel(model, prefix));
  Result<KruskalModel> back = LoadKruskalModel(prefix, 3);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->lambda, model.lambda);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(back->factors[m].MaxAbsDiff(model.factors[m]), 0.0);
  }
  Cleanup(prefix, 3, false);
}

TEST(ModelIo, TuckerRoundTripIncludingZeroCoreCells) {
  Rng rng(702);
  TuckerModel model;
  Result<DenseTensor> core = DenseTensor::Create({2, 3, 2});
  ASSERT_OK(core.status());
  model.core = std::move(core).value();
  model.core.at({0, 0, 0}) = 1.5;
  model.core.at({1, 2, 1}) = -2.25;  // everything else stays zero
  model.factors.push_back(DenseMatrix::RandomNormal(7, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(6, 3, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(5, 2, &rng));

  std::string prefix = Prefix("tucker");
  ASSERT_OK(SaveTuckerModel(model, prefix));
  Result<TuckerModel> back = LoadTuckerModel(prefix, 3);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->core.dims(), model.core.dims());
  EXPECT_DOUBLE_EQ(back->core.MaxAbsDiff(model.core), 0.0);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(back->factors[m].MaxAbsDiff(model.factors[m]), 0.0);
  }
  Cleanup(prefix, 3, true);
}

TEST(ModelIo, ReconstructionSurvivesRoundTrip) {
  // The quantity users care about: the model's predictions are unchanged.
  Rng rng(703);
  KruskalModel model;
  model.lambda = {2.0, 1.0};
  model.factors.push_back(DenseMatrix::RandomUniform(5, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomUniform(4, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomUniform(3, 2, &rng));
  Result<DenseTensor> before =
      ReconstructKruskal(model.lambda, model.FactorPtrs());
  ASSERT_OK(before.status());

  std::string prefix = Prefix("recon");
  ASSERT_OK(SaveKruskalModel(model, prefix));
  Result<KruskalModel> loaded = LoadKruskalModel(prefix, 3);
  ASSERT_OK(loaded.status());
  Result<DenseTensor> after =
      ReconstructKruskal(loaded->lambda, loaded->FactorPtrs());
  ASSERT_OK(after.status());
  EXPECT_DOUBLE_EQ(after->MaxAbsDiff(*before), 0.0);
  Cleanup(prefix, 3, false);
}

TEST(ModelIo, AutoOrderKruskalRoundTrip) {
  Rng rng(705);
  KruskalModel model;
  model.lambda = {4.0, 2.0};
  model.factors.push_back(DenseMatrix::RandomNormal(5, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(4, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(3, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(2, 2, &rng));

  std::string prefix = Prefix("auto_kruskal");
  ASSERT_OK(SaveKruskalModel(model, prefix));
  Result<KruskalModel> back = LoadKruskalModelAutoOrder(prefix);
  ASSERT_OK(back.status());
  ASSERT_EQ(back->factors.size(), 4u);  // order inferred from disk
  EXPECT_EQ(back->lambda, model.lambda);
  for (size_t m = 0; m < 4; ++m) {
    EXPECT_DOUBLE_EQ(back->factors[m].MaxAbsDiff(model.factors[m]), 0.0);
  }
  Cleanup(prefix, 4, false);
}

TEST(ModelIo, AutoOrderTuckerRoundTrip) {
  Rng rng(706);
  TuckerModel model;
  Result<DenseTensor> core = DenseTensor::Create({2, 2, 2});
  ASSERT_OK(core.status());
  model.core = std::move(core).value();
  model.core.at({0, 1, 0}) = 3.5;
  model.factors.push_back(DenseMatrix::RandomNormal(5, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(4, 2, &rng));
  model.factors.push_back(DenseMatrix::RandomNormal(3, 2, &rng));

  std::string prefix = Prefix("auto_tucker");
  ASSERT_OK(SaveTuckerModel(model, prefix));
  Result<TuckerModel> back = LoadTuckerModelAutoOrder(prefix);
  ASSERT_OK(back.status());
  ASSERT_EQ(back->factors.size(), 3u);
  EXPECT_DOUBLE_EQ(back->core.MaxAbsDiff(model.core), 0.0);
  Cleanup(prefix, 3, true);
}

TEST(ModelIo, AutoOrderMissingFilesIsNotFound) {
  EXPECT_TRUE(LoadKruskalModelAutoOrder(Prefix("never_saved"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(LoadTuckerModelAutoOrder(Prefix("never_saved"))
                  .status()
                  .IsNotFound());
}

TEST(ModelIo, AutoOrderNonContiguousModesIsInvalidArgument) {
  Rng rng(707);
  KruskalModel model;
  model.lambda = {1.0};
  model.factors.assign(3, DenseMatrix::RandomNormal(3, 1, &rng));
  std::string prefix = Prefix("gap");
  ASSERT_OK(SaveKruskalModel(model, prefix));
  // Punch a hole: mode1 missing while mode2 still exists.
  std::remove((prefix + ".mode1.txt").c_str());
  Result<KruskalModel> back = LoadKruskalModelAutoOrder(prefix);
  EXPECT_TRUE(back.status().IsInvalidArgument());
  EXPECT_NE(back.status().ToString().find("non-contiguous"),
            std::string::npos);
  Cleanup(prefix, 3, false);
}

TEST(ModelIo, Errors) {
  EXPECT_TRUE(LoadKruskalModel("/nonexistent/model", 3).status().IsIOError());
  EXPECT_TRUE(LoadTuckerModel("/nonexistent/model", 3).status().IsIOError());
  KruskalModel empty;
  EXPECT_TRUE(SaveKruskalModel(empty, Prefix("x")).IsInvalidArgument());
  TuckerModel no_factors;
  EXPECT_TRUE(SaveTuckerModel(no_factors, Prefix("x")).IsInvalidArgument());
  EXPECT_TRUE(LoadKruskalModel(Prefix("x"), 0).status().IsInvalidArgument());

  // Mismatched lambda length.
  Rng rng(704);
  KruskalModel model;
  model.lambda = {1.0, 2.0};
  model.factors.assign(2, DenseMatrix::RandomNormal(3, 2, &rng));
  std::string prefix = Prefix("mismatch");
  ASSERT_OK(SaveKruskalModel(model, prefix));
  // Corrupt lambda: overwrite with wrong length.
  DenseMatrix wrong(3, 1);
  ASSERT_OK(WriteMatrixText(wrong, prefix + ".lambda.txt"));
  EXPECT_TRUE(LoadKruskalModel(prefix, 2).status().IsInvalidArgument());
  Cleanup(prefix, 2, false);
}

}  // namespace
}  // namespace haten2
