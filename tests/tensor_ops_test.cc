// Unit and property tests for the direct tensor algebra in
// tensor/tensor_ops.h — the ground-truth layer everything else is verified
// against, so it gets checked against hand-computed values and algebraic
// identities (including Lemma 3's nnz estimate).

#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/linalg.h"
#include "test_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

SparseTensor SmallTensor() {
  Result<SparseTensor> t = SparseTensor::Create3(2, 3, 2);
  HATEN2_CHECK(t.ok());
  // X(0,0,0)=1, X(0,1,1)=2, X(1,2,0)=3, X(1,0,1)=4
  HATEN2_CHECK_OK(t->Append({0, 0, 0}, 1.0));
  HATEN2_CHECK_OK(t->Append({0, 1, 1}, 2.0));
  HATEN2_CHECK_OK(t->Append({1, 2, 0}, 3.0));
  HATEN2_CHECK_OK(t->Append({1, 0, 1}, 4.0));
  t->Canonicalize();
  return std::move(t).value();
}

TEST(Ttv, HandComputed) {
  SparseTensor x = SmallTensor();
  // v over mode 1 (J = 3).
  std::vector<double> v = {1.0, 10.0, 100.0};
  Result<SparseTensor> y = Ttv(x, v, 1);
  ASSERT_OK(y.status());
  EXPECT_EQ(y->dims(), (std::vector<int64_t>{2, 2}));
  EXPECT_DOUBLE_EQ(y->Get({0, 0}), 1.0);         // X(0,0,0)*1
  EXPECT_DOUBLE_EQ(y->Get({0, 1}), 20.0);        // X(0,1,1)*10
  EXPECT_DOUBLE_EQ(y->Get({1, 0}), 300.0);       // X(1,2,0)*100
  EXPECT_DOUBLE_EQ(y->Get({1, 1}), 4.0);         // X(1,0,1)*1
}

TEST(Ttv, RejectsBadArgs) {
  SparseTensor x = SmallTensor();
  std::vector<double> wrong = {1.0, 2.0};
  EXPECT_TRUE(Ttv(x, wrong, 1).status().IsInvalidArgument());
  std::vector<double> v = {1, 1, 1};
  EXPECT_TRUE(Ttv(x, v, 3).status().IsInvalidArgument());
}

TEST(Ttm, AgreesWithDenseComputation) {
  Rng rng(31);
  SparseTensor x = RandomSparseTensor({6, 5, 4}, 25, &rng);
  DenseMatrix u = DenseMatrix::RandomNormal(3, 5, &rng);  // 3 x J
  Result<SparseTensor> y = Ttm(x, u, 1);
  ASSERT_OK(y.status());
  // Check one cell by brute force.
  DenseTensor xd = DenseTensor::FromSparse(x);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t f = 0; f < 3; ++f) {
      for (int64_t k = 0; k < 4; ++k) {
        double want = 0.0;
        for (int64_t j = 0; j < 5; ++j) want += xd.at3(i, j, k) * u(f, j);
        EXPECT_NEAR(y->Get({i, f, k}), want, 1e-12);
      }
    }
  }
}

TEST(TtmTransposed, EqualsTtmOfTranspose) {
  Rng rng(32);
  SparseTensor x = RandomSparseTensor({5, 6, 4}, 30, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(6, 3, &rng);  // J x F
  Result<SparseTensor> via_t = TtmTransposed(x, b, 1);
  Result<SparseTensor> direct = Ttm(x, b.Transposed(), 1);
  ASSERT_OK(via_t.status());
  ASSERT_OK(direct.status());
  EXPECT_TRUE(via_t->IdenticalTo(*direct));
}

TEST(NModeVectorHadamard, ScalesEntriesAlongMode) {
  SparseTensor x = SmallTensor();
  std::vector<double> v = {2.0, 0.0, 5.0};  // mode 1
  Result<SparseTensor> y = NModeVectorHadamard(x, v, 1);
  ASSERT_OK(y.status());
  EXPECT_EQ(y->dims(), x.dims());
  EXPECT_DOUBLE_EQ(y->Get({0, 0, 0}), 2.0);    // *2
  EXPECT_DOUBLE_EQ(y->Get({0, 1, 1}), 0.0);    // *0 dropped
  EXPECT_DOUBLE_EQ(y->Get({1, 2, 0}), 15.0);   // *5
  EXPECT_EQ(y->nnz(), 3);
}

TEST(NModeMatrixHadamard, AddsTrailingMode) {
  SparseTensor x = SmallTensor();
  Rng rng(33);
  DenseMatrix u = DenseMatrix::RandomNormal(2, 3, &rng);  // Q x J
  Result<SparseTensor> y = NModeMatrixHadamard(x, u, 1);
  ASSERT_OK(y.status());
  EXPECT_EQ(y->order(), 4);
  EXPECT_EQ(y->dim(3), 2);
  for (int64_t e = 0; e < x.nnz(); ++e) {
    for (int64_t q = 0; q < 2; ++q) {
      std::vector<int64_t> idx = {x.index(e, 0), x.index(e, 1),
                                  x.index(e, 2), q};
      EXPECT_NEAR(y->Get(idx), x.value(e) * u(q, x.index(e, 1)), 1e-12);
    }
  }
}

TEST(MttkrpOp, MatchesUnfoldingTimesKhatriRao) {
  Rng rng(34);
  SparseTensor x = RandomSparseTensor({6, 5, 4}, 40, &rng);
  DenseMatrix a = DenseMatrix::RandomNormal(6, 3, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(5, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(4, 3, &rng);
  Result<DenseMatrix> m = Mttkrp(x, {&a, &b, &c}, 0);
  ASSERT_OK(m.status());
  // Reference: X_(1) (C ⊙ B) with the matching unfolding convention.
  DenseMatrix x1 = DenseTensor::FromSparse(x).Unfold(0);
  Result<DenseMatrix> kr = KhatriRao(c, b);
  ASSERT_OK(kr.status());
  Result<DenseMatrix> want = MatMul(x1, *kr);
  ASSERT_OK(want.status());
  EXPECT_LT(m->MaxAbsDiff(*want), 1e-10);
}

TEST(MttkrpOp, ValidatesFactors) {
  Rng rng(35);
  SparseTensor x = RandomSparseTensor({4, 4, 4}, 10, &rng);
  DenseMatrix good = DenseMatrix::RandomNormal(4, 2, &rng);
  DenseMatrix bad_rows = DenseMatrix::RandomNormal(5, 2, &rng);
  DenseMatrix bad_rank = DenseMatrix::RandomNormal(4, 3, &rng);
  EXPECT_TRUE(Mttkrp(x, {&good, &good}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      Mttkrp(x, {&good, &bad_rows, &good}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      Mttkrp(x, {&good, &bad_rank, &good}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      Mttkrp(x, {&good, nullptr, &good}, 0).status().IsInvalidArgument());
}

TEST(KhatriRaoOp, HandComputed) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {3, 4}});
  DenseMatrix b = DenseMatrix::FromRows({{5, 6}, {7, 8}, {9, 10}});
  Result<DenseMatrix> kr = KhatriRao(a, b);
  ASSERT_OK(kr.status());
  EXPECT_EQ(kr->rows(), 6);
  EXPECT_EQ(kr->cols(), 2);
  // Row (i*3 + j) = a_i * b_j elementwise.
  EXPECT_DOUBLE_EQ((*kr)(0, 0), 5.0);
  EXPECT_DOUBLE_EQ((*kr)(0, 1), 12.0);
  EXPECT_DOUBLE_EQ((*kr)(2, 0), 9.0);
  EXPECT_DOUBLE_EQ((*kr)(5, 1), 40.0);
  DenseMatrix c = DenseMatrix::FromRows({{1, 2, 3}});
  EXPECT_TRUE(KhatriRao(a, c).status().IsInvalidArgument());
}

TEST(KroneckerOp, HandComputed) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}});
  DenseMatrix b = DenseMatrix::FromRows({{0, 1}, {2, 3}});
  DenseMatrix k = Kronecker(a, b);
  EXPECT_EQ(k.rows(), 2);
  EXPECT_EQ(k.cols(), 4);
  EXPECT_DOUBLE_EQ(k(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(k(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(k(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(k(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(k(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(k(1, 3), 6.0);
}

TEST(ReconstructOps, KruskalRoundTrip) {
  Rng rng(36);
  std::vector<double> lambda = {2.0, 0.5};
  DenseMatrix a = DenseMatrix::RandomNormal(4, 2, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(3, 2, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(5, 2, &rng);
  Result<DenseTensor> t = ReconstructKruskal(lambda, {&a, &b, &c});
  ASSERT_OK(t.status());
  // Check a cell by hand.
  double want = 0.0;
  for (int r = 0; r < 2; ++r) {
    want += lambda[static_cast<size_t>(r)] * a(1, r) * b(2, r) * c(3, r);
  }
  EXPECT_NEAR(t->at({1, 2, 3}), want, 1e-12);
  // Inner product identity: <X, model> == ||X||² when X == model.
  SparseTensor xs = t->ToSparse();
  Result<double> inner = InnerProductKruskal(xs, lambda, {&a, &b, &c});
  ASSERT_OK(inner.status());
  EXPECT_NEAR(*inner, xs.SumSquares(), 1e-9);
  Result<double> norm_sq = KruskalNormSquared(lambda, {&a, &b, &c});
  ASSERT_OK(norm_sq.status());
  EXPECT_NEAR(*norm_sq, xs.SumSquares(), 1e-9);
}

TEST(ReconstructOps, TuckerMatchesUnfoldingIdentity) {
  Rng rng(37);
  Result<DenseTensor> core = DenseTensor::Create({2, 3, 2});
  ASSERT_OK(core.status());
  for (double& v : core->data()) v = rng.Normal();
  DenseMatrix a = DenseMatrix::RandomNormal(4, 2, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(5, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(3, 2, &rng);
  Result<DenseTensor> t = ReconstructTucker(*core, {&a, &b, &c});
  ASSERT_OK(t.status());
  // X_(1) = A · G_(1) · (C ⊗ B)ᵀ.
  DenseMatrix g1 = core->Unfold(0);
  DenseMatrix kron = Kronecker(c, b);
  Result<DenseMatrix> ag1 = MatMul(a, g1);
  ASSERT_OK(ag1.status());
  Result<DenseMatrix> want = MatMul(*ag1, kron.Transposed());
  ASSERT_OK(want.status());
  EXPECT_LT(t->Unfold(0).MaxAbsDiff(*want), 1e-10);
}

TEST(SparseUnfoldOp, MatchesDenseUnfold) {
  Rng rng(38);
  SparseTensor x = RandomSparseTensor({5, 4, 6}, 30, &rng);
  for (int mode = 0; mode < 3; ++mode) {
    Result<SparseTensor> su = SparseUnfold(x, mode);
    ASSERT_OK(su.status());
    DenseMatrix dense_unfold = DenseTensor::FromSparse(x).Unfold(mode);
    for (int64_t e = 0; e < su->nnz(); ++e) {
      EXPECT_DOUBLE_EQ(su->value(e),
                       dense_unfold(su->index(e, 0), su->index(e, 1)))
          << "mode " << mode;
    }
    EXPECT_EQ(su->dim(0), x.dim(mode));
    EXPECT_EQ(su->dim(1), dense_unfold.cols());
  }
}

TEST(FoldUnfold, RoundTripsAllModes) {
  Rng rng(39);
  Result<DenseTensor> t = DenseTensor::Create({3, 4, 2, 3});
  ASSERT_OK(t.status());
  for (double& v : t->data()) v = rng.Normal();
  for (int mode = 0; mode < 4; ++mode) {
    DenseMatrix unfolded = t->Unfold(mode);
    Result<DenseTensor> back = DenseTensor::Fold(unfolded, mode, t->dims());
    ASSERT_OK(back.status());
    EXPECT_LT(back->MaxAbsDiff(*t), 1e-15) << "mode " << mode;
  }
}

// Lemma 3: nnz(X ×₂ B) ≈ nnz(X)·Q for sparse X and fully dense B.
TEST(Lemma3, NnzEstimateHoldsForSparseTensors) {
  Rng rng(40);
  const int64_t dim = 40;
  const int64_t nnz = 200;  // density 200/64000 — sparse
  const int64_t q = 5;
  SparseTensor x = RandomSparseTensor({dim, dim, dim}, nnz, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(q, dim, &rng);  // fully dense
  Result<SparseTensor> y = Ttm(x, b, 1);
  ASSERT_OK(y.status());
  double predicted = static_cast<double>(x.nnz()) * static_cast<double>(q);
  double actual = static_cast<double>(y->nnz());
  // Collisions only reduce nnz; for this density the estimate is tight.
  EXPECT_LE(actual, predicted + 0.5);
  EXPECT_GT(actual, 0.9 * predicted);
}

}  // namespace
}  // namespace haten2
