// Tests for the subprocess backend's worker pool: gang spawn/echo over the
// wire channels, restart accounting (abnormal death vs clean exit vs
// deliberate kill), and the one-shot worker-kill injection latch.

#include "distributed/worker_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "distributed/wire.h"

namespace haten2 {
namespace distributed {
namespace {

TEST(WorkerPoolTest, ClampsToAtLeastOneWorker) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  WorkerPool pool2(-3);
  EXPECT_EQ(pool2.num_workers(), 1);
}

TEST(WorkerPoolTest, GangEchoesFramesAndCountsBytes) {
  WorkerPool pool(2);
  Status s = pool.SpawnGang([](int fd, int worker) {
    WireChannel channel(fd, "coordinator");
    WireFrame frame;
    Status rs = channel.ReadFrame(30.0, &frame);
    if (!rs.ok()) return 1;
    frame.a += 1;
    frame.worker = worker;
    if (!channel.WriteFrame(frame).ok()) return 2;
    return 0;
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(pool.gang_active());

  for (int w = 0; w < pool.num_workers(); ++w) {
    WireFrame frame;
    frame.type = FrameType::kAssignment;
    frame.worker = w;
    frame.a = 10 + w;
    ASSERT_TRUE(pool.channel(w)->WriteFrame(frame).ok());
  }
  for (int w = 0; w < pool.num_workers(); ++w) {
    WireFrame echo;
    Status rs = pool.channel(w)->ReadFrame(30.0, &echo);
    ASSERT_TRUE(rs.ok()) << rs.ToString();
    EXPECT_EQ(echo.a, 11 + w);
    EXPECT_EQ(echo.worker, w);
  }
  pool.NoteTasksCompleted(0, 4);
  pool.FinishGang(/*kill=*/false);
  EXPECT_FALSE(pool.gang_active());

  const std::vector<WorkerStats> stats = pool.StatsSnapshot();
  ASSERT_EQ(stats.size(), 2u);
  for (const WorkerStats& ws : stats) {
    EXPECT_GT(ws.wire_bytes_sent, 0u);
    EXPECT_GT(ws.wire_bytes_received, 0u);
    EXPECT_EQ(ws.restarts, 0);
  }
  EXPECT_EQ(stats[0].tasks, 4);
  EXPECT_EQ(stats[1].tasks, 0);
}

TEST(WorkerPoolTest, AbnormalExitCountsAsRestartOnNextSpawn) {
  WorkerPool pool(2);
  // First gang: every child exits nonzero (abnormal).
  ASSERT_TRUE(pool.SpawnGang([](int, int) { return 5; }).ok());
  pool.FinishGang(/*kill=*/false);

  std::vector<WorkerStats> stats = pool.StatsSnapshot();
  EXPECT_EQ(stats[0].restarts, 0);  // not counted until the slot respawns

  // Second gang respawns both slots: each counts one restart.
  ASSERT_TRUE(pool.SpawnGang([](int, int) { return 0; }).ok());
  pool.FinishGang(/*kill=*/false);
  stats = pool.StatsSnapshot();
  EXPECT_EQ(stats[0].restarts, 1);
  EXPECT_EQ(stats[1].restarts, 1);

  // Third gang after clean exits: no further restarts.
  ASSERT_TRUE(pool.SpawnGang([](int, int) { return 0; }).ok());
  pool.FinishGang(/*kill=*/false);
  stats = pool.StatsSnapshot();
  EXPECT_EQ(stats[0].restarts, 1);
  EXPECT_EQ(stats[1].restarts, 1);
}

TEST(WorkerPoolTest, DeliberateKillIsNotCountedAsRestart) {
  WorkerPool pool(2);
  // Children block waiting for a frame that never comes; FinishGang(true)
  // SIGKILLs them, which is deliberate termination, not an abnormal death.
  ASSERT_TRUE(pool.SpawnGang([](int fd, int) {
                    WireChannel channel(fd, "coordinator");
                    WireFrame frame;
                    (void)channel.ReadFrame(/*timeout_seconds=*/0.0, &frame);
                    return 0;
                  })
                  .ok());
  pool.FinishGang(/*kill=*/true);

  ASSERT_TRUE(pool.SpawnGang([](int, int) { return 0; }).ok());
  pool.FinishGang(/*kill=*/false);
  const std::vector<WorkerStats> stats = pool.StatsSnapshot();
  EXPECT_EQ(stats[0].restarts, 0);
  EXPECT_EQ(stats[1].restarts, 0);
}

TEST(WorkerPoolTest, SpawnFailsWhileGangActive) {
  WorkerPool pool(1);
  ASSERT_TRUE(pool.SpawnGang([](int fd, int) {
                    WireChannel channel(fd, "coordinator");
                    WireFrame frame;
                    (void)channel.ReadFrame(/*timeout_seconds=*/0.0, &frame);
                    return 0;
                  })
                  .ok());
  Status s = pool.SpawnGang([](int, int) { return 0; });
  EXPECT_FALSE(s.ok());
  pool.FinishGang(/*kill=*/true);
}

TEST(WorkerPoolTest, KillInjectionFiresOnceForCumulativeThreshold) {
  WorkerPool pool(2);
  // knob = 5, assignments of 3 tasks each: the first call stays under the
  // threshold, the second crosses it (die after 5 - 3 = 2 of its tasks),
  // and everything after is latched off.
  EXPECT_EQ(pool.PlanKillInjection(5, 3), 0);
  EXPECT_EQ(pool.PlanKillInjection(5, 3), 2);
  EXPECT_EQ(pool.PlanKillInjection(5, 3), 0);
  EXPECT_EQ(pool.PlanKillInjection(5, 100), 0);
}

TEST(WorkerPoolTest, KillInjectionImmediateAndDisabled) {
  WorkerPool pool(1);
  // knob <= 0 disables entirely.
  EXPECT_EQ(pool.PlanKillInjection(0, 10), 0);
  EXPECT_EQ(pool.PlanKillInjection(-1, 10), 0);
  // knob within the very first assignment fires on it.
  EXPECT_EQ(pool.PlanKillInjection(2, 10), 2);
  EXPECT_EQ(pool.PlanKillInjection(2, 10), 0);
}

}  // namespace
}  // namespace distributed
}  // namespace haten2
