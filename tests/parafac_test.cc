// Tests for the HaTen2-PARAFAC driver: convergence invariants, exact
// recovery of planted low-rank tensors, variant equivalence, the
// nonnegative extension, and failure paths.

#include "core/parafac.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "baseline/toolbox.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

// An exactly rank-2 dense-as-sparse tensor that PARAFAC must fit almost
// perfectly. Normal factors keep the two components well separated (uniform
// factors are nearly collinear, which slows ALS to a crawl without being a
// correctness problem).
SparseTensor ExactRank2Tensor(Rng* rng) {
  std::vector<double> lambda = {3.0, 1.5};
  DenseMatrix a = DenseMatrix::RandomNormal(8, 2, rng);
  DenseMatrix b = DenseMatrix::RandomNormal(7, 2, rng);
  DenseMatrix c = DenseMatrix::RandomNormal(6, 2, rng);
  Result<DenseTensor> dense = ReconstructKruskal(lambda, {&a, &b, &c});
  HATEN2_CHECK(dense.ok());
  return dense->ToSparse();
}

TEST(Haten2Parafac, RecoversExactRank2Tensor) {
  Rng rng(11);
  SparseTensor x = ExactRank2Tensor(&rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 100;
  options.tolerance = 1e-12;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 2, options);
  ASSERT_OK(model.status());
  EXPECT_GT(model->fit, 0.999) << "iterations=" << model->iterations;
}

TEST(Haten2Parafac, FitIsNonDecreasingAcrossIterations) {
  Rng rng(12);
  SparseTensor x = RandomSparseTensor({12, 10, 8}, 120, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 12;
  options.tolerance = 0.0;  // run all iterations
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(model.status());
  ASSERT_GE(model->fit_history.size(), 2u);
  for (size_t i = 1; i < model->fit_history.size(); ++i) {
    EXPECT_GE(model->fit_history[i], model->fit_history[i - 1] - 1e-9)
        << "fit decreased at iteration " << i;
  }
}

TEST(Haten2Parafac, AllVariantsProduceTheSameModel) {
  Rng rng(13);
  SparseTensor x = RandomSparseTensor({9, 8, 7}, 80, &rng);
  Haten2Options options;
  options.max_iterations = 4;
  options.tolerance = 0.0;

  std::vector<KruskalModel> models;
  for (Variant v : kAllVariants) {
    Engine engine(ClusterConfig::ForTesting());
    options.variant = v;
    Result<KruskalModel> m = Haten2ParafacAls(&engine, x, 3, options);
    ASSERT_OK(m.status());
    models.push_back(std::move(m).value());
  }
  // Same seed + deterministic updates => identical factors across variants.
  for (size_t v = 1; v < models.size(); ++v) {
    EXPECT_NEAR(models[v].fit, models[0].fit, 1e-8);
    for (size_t m = 0; m < models[v].factors.size(); ++m) {
      EXPECT_LT(models[v].factors[m].MaxAbsDiff(models[0].factors[m]), 1e-7)
          << "variant " << v << " factor " << m;
    }
  }
}

TEST(Haten2Parafac, MatchesToolboxBaseline) {
  Rng rng(14);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 90, &rng);
  Haten2Options mr_options;
  mr_options.max_iterations = 5;
  mr_options.tolerance = 0.0;
  mr_options.seed = 99;
  BaselineOptions tb_options;
  tb_options.max_iterations = 5;
  tb_options.tolerance = 0.0;
  tb_options.seed = 99;

  Engine engine(ClusterConfig::ForTesting());
  Result<KruskalModel> mr = Haten2ParafacAls(&engine, x, 3, mr_options);
  Result<KruskalModel> tb = ToolboxParafacAls(x, 3, tb_options);
  ASSERT_OK(mr.status());
  ASSERT_OK(tb.status());
  EXPECT_NEAR(mr->fit, tb->fit, 1e-8);
  for (size_t m = 0; m < mr->factors.size(); ++m) {
    EXPECT_LT(mr->factors[m].MaxAbsDiff(tb->factors[m]), 1e-7);
  }
}

TEST(Haten2Parafac, FiveWayTensor) {
  Rng rng(19);
  SparseTensor x = RandomSparseTensor({5, 4, 5, 4, 3}, 40, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 3;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 2, options);
  ASSERT_OK(model.status());
  EXPECT_EQ(model->factors.size(), 5u);
  // The direct baseline agrees on the same input and seed.
  BaselineOptions tb;
  tb.max_iterations = 3;
  tb.tolerance = 0.0;
  tb.seed = options.seed;
  options.tolerance = 0.0;
  Engine engine2(ClusterConfig::ForTesting());
  Result<KruskalModel> mr = Haten2ParafacAls(&engine2, x, 2, options);
  Result<KruskalModel> direct = ToolboxParafacAls(x, 2, tb);
  ASSERT_OK(mr.status());
  ASSERT_OK(direct.status());
  EXPECT_NEAR(mr->fit, direct->fit, 1e-8);
}

TEST(Haten2Parafac, FourWayTensor) {
  Rng rng(15);
  SparseTensor x = RandomSparseTensor({6, 5, 4, 7}, 60, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 5;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 2, options);
  ASSERT_OK(model.status());
  EXPECT_EQ(model->factors.size(), 4u);
  EXPECT_GT(model->fit, 0.0);
}

TEST(Haten2Parafac, SeparatesPlantedComponents) {
  LowRankTensorSpec spec;
  spec.dims = {60, 50, 40};
  spec.rank = 3;
  spec.block_size = 10;
  spec.nnz_per_component = 400;
  spec.seed = 7;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  ASSERT_OK(planted.status());

  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 30;
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine, planted->tensor, 3, options);
  ASSERT_OK(model.status());
  // A sparse random block is not rank-1, so the fit stays modest; what must
  // hold is that each component's top-loaded rows recover its planted block.
  for (int mode = 0; mode < 3; ++mode) {
    std::vector<std::vector<int64_t>> groups;
    for (const auto& membership : planted->memberships) {
      groups.push_back(membership[static_cast<size_t>(mode)]);
    }
    const DenseMatrix& f = model->factors[static_cast<size_t>(mode)];
    std::vector<std::vector<int64_t>> topk(static_cast<size_t>(f.cols()));
    for (int64_t r = 0; r < f.cols(); ++r) {
      std::vector<std::pair<double, int64_t>> scored;
      for (int64_t i = 0; i < f.rows(); ++i) {
        scored.emplace_back(std::fabs(f(i, r)), i);
      }
      std::sort(scored.rbegin(), scored.rend());
      for (int64_t k = 0; k < spec.block_size; ++k) {
        topk[static_cast<size_t>(r)].push_back(
            scored[static_cast<size_t>(k)].second);
      }
    }
    // Every planted block should be the top-loaded set of some component.
    int recovered = 0;
    for (const auto& group : groups) {
      std::unordered_set<int64_t> members(group.begin(), group.end());
      for (const auto& top : topk) {
        int64_t hits = 0;
        for (int64_t i : top) hits += members.count(i) > 0 ? 1 : 0;
        if (hits >= static_cast<int64_t>(0.8 * spec.block_size)) {
          ++recovered;
          break;
        }
      }
    }
    EXPECT_GE(recovered, 3) << "mode " << mode;
  }
}

TEST(Haten2Parafac, NonnegativeFactorsStayNonnegative) {
  Rng rng(16);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 10;
  options.nonnegative = true;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(model.status());
  for (const DenseMatrix& f : model->factors) {
    for (double v : f.data()) {
      EXPECT_GE(v, 0.0);
    }
  }
  for (double l : model->lambda) EXPECT_GE(l, 0.0);
  EXPECT_GT(model->fit, 0.0);
}

TEST(Haten2Parafac, NonnegativeFitImprovesOverIterations) {
  LowRankTensorSpec spec;
  spec.dims = {30, 30, 30};
  spec.rank = 2;
  spec.block_size = 8;
  spec.nnz_per_component = 200;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  ASSERT_OK(planted.status());
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 25;
  options.nonnegative = true;
  options.tolerance = 0.0;
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine, planted->tensor, 2, options);
  ASSERT_OK(model.status());
  ASSERT_GE(model->fit_history.size(), 2u);
  EXPECT_GT(model->fit_history.back(), model->fit_history.front());
}

TEST(Haten2Parafac, RejectsBadInput) {
  Rng rng(17);
  SparseTensor x = RandomSparseTensor({5, 5, 5}, 20, &rng);
  Engine engine(ClusterConfig::ForTesting());
  EXPECT_TRUE(Haten2ParafacAls(nullptr, x, 2).status().IsInvalidArgument());
  EXPECT_TRUE(Haten2ParafacAls(&engine, x, 0).status().IsInvalidArgument());
  EXPECT_TRUE(Haten2ParafacAls(&engine, x, -3).status().IsInvalidArgument());
  Result<SparseTensor> empty = SparseTensor::Create3(4, 4, 4);
  ASSERT_OK(empty.status());
  EXPECT_TRUE(
      Haten2ParafacAls(&engine, *empty, 2).status().IsInvalidArgument());
}

TEST(Haten2Parafac, PropagatesOom) {
  Rng rng(18);
  SparseTensor x = RandomSparseTensor({30, 30, 30}, 500, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  config.total_shuffle_memory_bytes = 4 * 1024;  // absurdly small
  Engine engine(config);
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 5);
  ASSERT_FALSE(model.ok());
  EXPECT_TRUE(model.status().IsResourceExhausted())
      << model.status().ToString();
}

}  // namespace
}  // namespace haten2
