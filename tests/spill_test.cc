// Tests for shuffle spilling: output equivalence with and without spills,
// resident-memory bounding, spill counters, interaction with combiners and
// decompositions, and cleanup.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "core/parafac.h"
#include "mapreduce/engine.h"
#include "test_util.h"

namespace haten2 {
namespace {

std::string SpillDir() {
  std::string dir = std::string(::testing::TempDir()) + "/haten2_spills";
  std::filesystem::create_directories(dir);
  return dir;
}

int64_t SpillFilesIn(const std::string& dir) {
  int64_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".spill") ++n;
  }
  return n;
}

std::map<int64_t, int64_t> WordCount(Engine* engine,
                                     const std::vector<int64_t>& words) {
  auto result = engine->Run<int64_t, int64_t, int64_t, int64_t>(
      "wc", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(w, sum);
      });
  HATEN2_CHECK(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> histogram;
  for (auto& [w, c] : *result) histogram[w] = c;
  return histogram;
}

TEST(Spill, OutputIdenticalWithAndWithoutSpilling) {
  std::vector<int64_t> words;
  Rng rng(821);
  for (int i = 0; i < 20000; ++i) {
    words.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{64})));
  }
  ClusterConfig plain = ClusterConfig::ForTesting();
  Engine reference(plain);
  std::map<int64_t, int64_t> want = WordCount(&reference, words);

  ClusterConfig spilling = plain;
  spilling.spill_directory = SpillDir();
  spilling.spill_threshold_records = 64;  // force many spills
  Engine engine(spilling);
  std::map<int64_t, int64_t> got = WordCount(&engine, words);
  EXPECT_EQ(got, want);
  // Spills happened and were counted...
  EXPECT_GT(engine.pipeline().jobs[0].spilled_records, 0);
  EXPECT_EQ(engine.pipeline().jobs[0].map_output_records, 20000);
  // ...and every spill file was removed afterwards.
  EXPECT_EQ(SpillFilesIn(spilling.spill_directory), 0);
}

TEST(Spill, NoSpillBelowThreshold) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 1 << 20;
  Engine engine(config);
  std::vector<int64_t> words(100, 1);
  WordCount(&engine, words);
  EXPECT_EQ(engine.pipeline().jobs[0].spilled_records, 0);
}

TEST(Spill, CombinerAppliesToResidentRecordsOnly) {
  // With spilling, pre-spilled records bypass the end-of-task combiner but
  // the reducer still aggregates them; results are unchanged.
  std::vector<int64_t> words(5000, 42);
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 128;
  Engine engine(config);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "wc-combine", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(w, sum);
      },
      [](const int64_t& a, const int64_t& b) { return a + b; });
  ASSERT_OK(result.status());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].second, 5000);
}

TEST(Spill, SpilledRecordsStillCountAgainstBudget) {
  // Spilling bounds resident memory but not the intermediate-data budget:
  // the o.o.m. semantics (the paper's failure mode) are unchanged.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 64;
  config.total_shuffle_memory_bytes = 16 * 1024;
  Engine engine(config);
  std::vector<int64_t> words(100000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "overflow", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);  // cleaned up
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(Spill, DecompositionUnchangedUnderSpilling) {
  Rng rng(822);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({15, 12, 10}, 300, &rng);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;

  ClusterConfig plain = ClusterConfig::ForTesting();
  Engine reference(plain);
  Result<KruskalModel> want = Haten2ParafacAls(&reference, x, 3, options);
  ASSERT_OK(want.status());

  ClusterConfig spilling = plain;
  spilling.spill_directory = SpillDir();
  spilling.spill_threshold_records = 32;
  Engine engine(spilling);
  Result<KruskalModel> got = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }
  int64_t total_spilled = 0;
  for (const JobStats& j : engine.pipeline().jobs) {
    total_spilled += j.spilled_records;
  }
  EXPECT_GT(total_spilled, 0);
  EXPECT_EQ(SpillFilesIn(spilling.spill_directory), 0);
}

TEST(Spill, AbortedJobCleansUpSpillFiles) {
  // Some tasks spill, another exhausts its retries: the abort path must
  // remove every spill file that was written.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.num_machines = 8;  // several map tasks
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 16;
  config.task_failure_probability = 0.4;
  config.max_task_attempts = 1;  // any sampled failure aborts the job
  config.failure_seed = 5;
  Engine engine(config);
  std::vector<int64_t> words(5000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "abort-spill", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  // With p=0.4 over 8 tasks, an abort is near-certain for this seed.
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsAborted());
  }
  EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(Spill, UnwritableSpillDirectoryFailsLoudly) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = "/nonexistent/spills";
  config.spill_threshold_records = 8;
  Engine engine(config);
  std::vector<int64_t> words(1000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "badspill", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
}

}  // namespace
}  // namespace haten2
