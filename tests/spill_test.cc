// Tests for shuffle spilling: output equivalence with and without spills,
// resident-memory bounding, spill counters, interaction with combiners and
// decompositions, cleanup, torn-write recovery, and the cost model's
// spill-aware disk term.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "core/parafac.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/engine.h"
#include "test_util.h"

namespace haten2 {
namespace {

std::string SpillDir() {
  std::string dir = std::string(::testing::TempDir()) + "/haten2_spills";
  std::filesystem::create_directories(dir);
  return dir;
}

int64_t SpillFilesIn(const std::string& dir) {
  int64_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".spill") ++n;
  }
  return n;
}

std::map<int64_t, int64_t> WordCount(Engine* engine,
                                     const std::vector<int64_t>& words) {
  auto result = engine->Run<int64_t, int64_t, int64_t, int64_t>(
      "wc", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(w, sum);
      });
  HATEN2_CHECK(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> histogram;
  for (auto& [w, c] : *result) histogram[w] = c;
  return histogram;
}

TEST(Spill, OutputIdenticalWithAndWithoutSpilling) {
  std::vector<int64_t> words;
  Rng rng(821);
  for (int i = 0; i < 20000; ++i) {
    words.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{64})));
  }
  ClusterConfig plain = ClusterConfig::ForTesting();
  Engine reference(plain);
  std::map<int64_t, int64_t> want = WordCount(&reference, words);

  ClusterConfig spilling = plain;
  spilling.spill_directory = SpillDir();
  spilling.spill_threshold_records = 64;  // force many spills
  Engine engine(spilling);
  std::map<int64_t, int64_t> got = WordCount(&engine, words);
  EXPECT_EQ(got, want);
  // Spills happened and were counted...
  EXPECT_GT(engine.pipeline().jobs[0].spilled_records, 0);
  EXPECT_EQ(engine.pipeline().jobs[0].map_output_records, 20000);
  // ...and every spill file was removed afterwards.
  EXPECT_EQ(SpillFilesIn(spilling.spill_directory), 0);
}

TEST(Spill, NoSpillBelowThreshold) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 1 << 20;
  Engine engine(config);
  std::vector<int64_t> words(100, 1);
  WordCount(&engine, words);
  EXPECT_EQ(engine.pipeline().jobs[0].spilled_records, 0);
}

TEST(Spill, CombinerAppliesToResidentRecordsOnly) {
  // With spilling, pre-spilled records bypass the end-of-task combiner but
  // the reducer still aggregates them; results are unchanged.
  std::vector<int64_t> words(5000, 42);
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 128;
  Engine engine(config);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "wc-combine", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(w, sum);
      },
      [](const int64_t& a, const int64_t& b) { return a + b; });
  ASSERT_OK(result.status());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].second, 5000);
}

TEST(Spill, SpilledRecordsStillCountAgainstBudget) {
  // Spilling bounds resident memory but not the intermediate-data budget:
  // the o.o.m. semantics (the paper's failure mode) are unchanged.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 64;
  config.total_shuffle_memory_bytes = 16 * 1024;
  Engine engine(config);
  std::vector<int64_t> words(100000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "overflow", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);  // cleaned up
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(Spill, DecompositionUnchangedUnderSpilling) {
  Rng rng(822);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({15, 12, 10}, 300, &rng);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;

  ClusterConfig plain = ClusterConfig::ForTesting();
  Engine reference(plain);
  Result<KruskalModel> want = Haten2ParafacAls(&reference, x, 3, options);
  ASSERT_OK(want.status());

  ClusterConfig spilling = plain;
  spilling.spill_directory = SpillDir();
  spilling.spill_threshold_records = 32;
  Engine engine(spilling);
  Result<KruskalModel> got = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }
  int64_t total_spilled = 0;
  for (const JobStats& j : engine.pipeline().jobs) {
    total_spilled += j.spilled_records;
  }
  EXPECT_GT(total_spilled, 0);
  EXPECT_EQ(SpillFilesIn(spilling.spill_directory), 0);
}

TEST(Spill, AbortedJobCleansUpSpillFiles) {
  // Some tasks spill, another exhausts its retries: the abort path must
  // remove every spill file that was written.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.num_machines = 8;  // several map tasks
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 16;
  config.task_failure_probability = 0.4;
  config.max_task_attempts = 1;  // any sampled failure aborts the job
  config.failure_seed = 5;
  Engine engine(config);
  std::vector<int64_t> words(5000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "abort-spill", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  // With p=0.4 over 8 tasks, an abort is near-certain for this seed.
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsAborted());
  }
  EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(Spill, CostModelChargesNoDiskWithoutSpilledBytes) {
  // Regression: the model used to charge every map task its share of
  // map_output_bytes as disk I/O even when nothing was spilled. The disk
  // term must come from what each task actually wrote.
  ClusterConfig config = ClusterConfig::ForTesting();
  JobStats job;
  job.map_task_records = {1000, 1000};
  job.map_task_attempts = {1, 1};
  job.map_output_bytes = 0;  // isolate the map disk term
  const double base = CostModel(config).SimulateJob(job);
  EXPECT_DOUBLE_EQ(base, 1000 * config.map_seconds_per_record);

  JobStats spilled = job;
  spilled.map_task_spilled_bytes = {1 << 20, 0};
  const double with_disk = CostModel(config).SimulateJob(spilled);
  EXPECT_DOUBLE_EQ(with_disk - base,
                   static_cast<double>(1 << 20) /
                       config.disk_bytes_per_second);
}

TEST(Spill, SimulatedTimeReflectsActualSpillTraffic) {
  // Same workload, spilling off vs on: only the spilling run pays map-side
  // disk time, so its simulated makespan is strictly larger.
  std::vector<int64_t> words;
  Rng rng(823);
  for (int i = 0; i < 20000; ++i) {
    words.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{64})));
  }
  ClusterConfig plain = ClusterConfig::ForTesting();
  Engine in_memory(plain);
  WordCount(&in_memory, words);

  ClusterConfig spilling = plain;
  spilling.spill_directory = SpillDir();
  spilling.spill_threshold_records = 64;
  Engine engine(spilling);
  WordCount(&engine, words);

  EXPECT_EQ(in_memory.pipeline().TotalSpilledCompressedBytes(), 0u);
  EXPECT_GT(engine.pipeline().TotalSpilledCompressedBytes(), 0u);
  const double without_spill =
      CostModel(plain).SimulatePipeline(in_memory.pipeline());
  const double with_spill =
      CostModel(spilling).SimulatePipeline(engine.pipeline());
  EXPECT_GT(with_spill, without_spill);
}

TEST(Spill, CompressionLowersSimulatedTime) {
  // delta_varint shrinks the on-disk runs, and the cost model charges disk
  // bandwidth on actual bytes, so the compressed run simulates faster.
  std::vector<int64_t> words;
  Rng rng(824);
  for (int i = 0; i < 20000; ++i) {
    words.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{64})));
  }
  ClusterConfig raw = ClusterConfig::ForTesting();
  raw.spill_directory = SpillDir();
  raw.spill_threshold_records = 64;
  ClusterConfig packed = raw;
  packed.spill_compression = SpillCompression::kDeltaVarint;

  Engine raw_engine(raw);
  std::map<int64_t, int64_t> want = WordCount(&raw_engine, words);
  Engine packed_engine(packed);
  EXPECT_EQ(WordCount(&packed_engine, words), want);

  EXPECT_LT(packed_engine.pipeline().TotalSpilledCompressedBytes(),
            packed_engine.pipeline().TotalSpilledRawBytes());
  EXPECT_LT(CostModel(packed).SimulatePipeline(packed_engine.pipeline()),
            CostModel(raw).SimulatePipeline(raw_engine.pipeline()));
}

TEST(Spill, TornFirstSpillWriteLeavesNoOrphan) {
  // The very first spill write tears: nothing was ever committed, so the
  // partial file must be removed at failure time — spilled_counts_ is still
  // 0 for that partition and RemoveAllSpills would skip it.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 64;
  config.inject_spill_failure_after_bytes = 1;
  Engine engine(config);
  std::vector<int64_t> words(5000, 7);  // one hot key, one partition file
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "torn-first", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
  EXPECT_NE(result.status().message().find(".spill"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(Spill, TornLaterSpillWriteRollsBackAndCleansUp) {
  // A later append tears after earlier runs committed: the file is rolled
  // back to the committed boundary, the counts survive, and the failure
  // path removes the file. Nothing with partition count 0 is leaked.
  using Record = std::pair<int64_t, int64_t>;
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir();
  config.spill_threshold_records = 64;
  // One committed run per emitter (64 records), tear on the second.
  config.inject_spill_failure_after_bytes =
      static_cast<int64_t>(64 * sizeof(Record) + 1);
  Engine engine(config);
  std::vector<int64_t> words(5000, 7);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "torn-later", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
  EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);
  EXPECT_EQ(engine.memory().used(), 0u);
  // The job post-mortem still reports the committed spill traffic.
  ASSERT_EQ(engine.pipeline().jobs.size(), 1u);
  EXPECT_EQ(engine.pipeline().jobs[0].failure, "io_error");
}

TEST(Spill, DrainSpillSurfacesShortReadWithPathAndOffset) {
  // Truncate a raw spill file behind the emitter's back: DrainSpill must
  // return an IOError naming the file and offset, keep its counts so
  // cleanup still works, and must not invoke the consumer past the tear.
  using Record = std::pair<int64_t, int64_t>;
  std::string prefix = SpillDir() + "/drain_direct";
  ShuffleEmitter<int64_t, int64_t> em(/*num_partitions=*/1, nullptr, prefix,
                                      /*spill_threshold=*/4);
  for (int64_t i = 0; i < 8; ++i) em.Emit(1, i);  // two runs of 4
  ASSERT_EQ(em.SpilledRecords(0), 8);
  const std::string path = em.SpillPath(0);
  std::filesystem::resize_file(path, 6 * sizeof(Record) + 3);

  int64_t consumed = 0;
  Status status = em.DrainSpill(0, [&consumed](const Record&) { ++consumed; });
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError());
  EXPECT_NE(status.message().find(path), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("offset"), std::string::npos);
  EXPECT_EQ(consumed, 6);
  // Counts survive the error, so cleanup still removes the file.
  EXPECT_EQ(em.SpilledRecords(0), 8);
  em.RemoveAllSpills();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Spill, DrainSpillRejectsCorruptCompressedBlock) {
  std::string prefix = SpillDir() + "/drain_corrupt";
  ShuffleEmitter<int64_t, int64_t> em(
      /*num_partitions=*/1, nullptr, prefix, /*spill_threshold=*/4,
      SpillCompression::kDeltaVarint);
  for (int64_t i = 0; i < 4; ++i) em.Emit(1, i);
  ASSERT_EQ(em.SpilledRecords(0), 4);
  const std::string path = em.SpillPath(0);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.put(static_cast<char>(0x5A));  // clobber the block magic
  }
  Status status = em.DrainSpill(
      0, [](const std::pair<int64_t, int64_t>&) {});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError());
  EXPECT_NE(status.message().find(path), std::string::npos);
  EXPECT_NE(status.message().find("offset 0"), std::string::npos)
      << status.ToString();
  em.RemoveAllSpills();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Spill, UnwritableSpillDirectoryFailsLoudly) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = "/nonexistent/spills";
  config.spill_threshold_records = 8;
  Engine engine(config);
  std::vector<int64_t> words(1000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "badspill", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
}

}  // namespace
}  // namespace haten2
