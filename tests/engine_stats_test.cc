// Tests for the engine's observability layer: per-phase wall times, skew
// summaries, failure-path accounting (o.o.m. / abort / spills), the
// "haten2-stats-v9" JSON export, and the spill-filename race regression
// (concurrent Run calls on one engine).

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/parafac.h"
#include "json_checker.h"
#include "mapreduce/engine.h"
#include "mapreduce/stats_json.h"
#include "test_util.h"

namespace haten2 {
namespace {

// Per-test spill directory: ctest runs each TEST as its own process in
// parallel, so tests that assert "no .spill files remain" must not share a
// directory with tests that are actively spilling.
std::string SpillDir(const std::string& test) {
  std::string dir =
      std::string(::testing::TempDir()) + "/haten2_stats_spills_" + test;
  std::filesystem::create_directories(dir);
  return dir;
}

int64_t SpillFilesIn(const std::string& dir) {
  int64_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".spill") ++n;
  }
  return n;
}

/// Runs word count and returns the histogram; asserts success.
std::map<int64_t, int64_t> WordCount(Engine* engine,
                                     const std::vector<int64_t>& words,
                                     const std::string& name = "wc") {
  auto result = engine->Run<int64_t, int64_t, int64_t, int64_t>(
      name, static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(w, sum);
      });
  HATEN2_CHECK(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> histogram;
  for (auto& [w, c] : *result) histogram[w] = c;
  return histogram;
}

std::vector<int64_t> RandomWords(int n, uint64_t seed, uint64_t vocab = 64) {
  std::vector<int64_t> words;
  words.reserve(static_cast<size_t>(n));
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    words.push_back(static_cast<int64_t>(rng.UniformInt(vocab)));
  }
  return words;
}

using haten2::testing::JsonChecker;

// ---------------------------------------------------------------------------
// Phase times.

TEST(EngineStats, PhaseTimesPopulatedAndSumToWall) {
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "phases", 50000,
      [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(i % 97, 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(w, sum);
      },
      [](const int64_t& a, const int64_t& b) { return a + b; });
  ASSERT_OK(result.status());
  ASSERT_EQ(engine.pipeline().NumJobs(), 1);
  const JobStats& job = engine.pipeline().jobs[0];
  EXPECT_GE(job.phases.map_seconds, 0.0);
  EXPECT_GE(job.phases.combine_seconds, 0.0);
  EXPECT_GE(job.phases.shuffle_seconds, 0.0);
  EXPECT_GE(job.phases.reduce_seconds, 0.0);
  // The phase segments are contiguous slices of the job's wall time, so
  // they sum to the wall time up to the output-concatenation tail and
  // timer-read noise.
  EXPECT_LE(job.phases.Total(), job.wall_seconds + 1e-9);
  EXPECT_NEAR(job.phases.Total(), job.wall_seconds,
              0.1 * job.wall_seconds + 1e-3);
}

TEST(EngineStats, NoCombinerLeavesCombinePhaseZero) {
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  WordCount(&engine, RandomWords(1000, 91));
  const JobStats& job = engine.pipeline().jobs[0];
  EXPECT_EQ(job.phases.combine_seconds, 0.0);
  EXPECT_GE(job.phases.map_seconds, 0.0);
}

TEST(EngineStats, SkewSummariesMatchPerTaskCounts) {
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  WordCount(&engine, RandomWords(10000, 92));
  const JobStats& job = engine.pipeline().jobs[0];
  TaskSkew map_skew = job.MapTaskSkew();
  EXPECT_EQ(map_skew.tasks,
            static_cast<int64_t>(job.map_task_records.size()));
  int64_t total = 0;
  for (int64_t r : job.map_task_records) {
    total += r;
    EXPECT_GE(r, map_skew.min_records);
    EXPECT_LE(r, map_skew.max_records);
  }
  EXPECT_EQ(total, job.map_input_records);
  EXPECT_GE(map_skew.p50_records, map_skew.min_records);
  EXPECT_LE(map_skew.p50_records, map_skew.max_records);

  TaskSkew reduce_skew = job.ReducePartitionSkew();
  EXPECT_EQ(reduce_skew.tasks,
            static_cast<int64_t>(job.reduce_partition_records.size()));
}

// ---------------------------------------------------------------------------
// Determinism across thread counts: the counters describe the dataflow, not
// the execution schedule.

TEST(EngineStats, CountersIdenticalAcrossThreadCounts) {
  std::vector<int64_t> words = RandomWords(20000, 93);
  std::vector<JobStats> observed;
  for (int threads : {1, 4}) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.num_threads = threads;
    Engine engine(config);
    WordCount(&engine, words);
    observed.push_back(engine.pipeline().jobs[0]);
  }
  const JobStats& a = observed[0];
  const JobStats& b = observed[1];
  EXPECT_EQ(a.map_input_records, b.map_input_records);
  EXPECT_EQ(a.map_output_records, b.map_output_records);
  EXPECT_EQ(a.map_output_bytes, b.map_output_bytes);
  EXPECT_EQ(a.pre_combine_records, b.pre_combine_records);
  EXPECT_EQ(a.reduce_input_groups, b.reduce_input_groups);
  EXPECT_EQ(a.reduce_output_records, b.reduce_output_records);
  EXPECT_EQ(a.spilled_records, b.spilled_records);
  EXPECT_EQ(a.map_task_records, b.map_task_records);
  EXPECT_EQ(a.reduce_partition_records, b.reduce_partition_records);
  EXPECT_EQ(a.reduce_partition_bytes, b.reduce_partition_bytes);
  EXPECT_EQ(a.failure, b.failure);
}

// ---------------------------------------------------------------------------
// Failure-path accounting (the post-mortem numbers of the paper's o.o.m.
// deaths).

TEST(EngineStats, OomJobKeepsSpillAndVolumeCounters) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = SpillDir("oom");
  config.spill_threshold_records = 64;
  config.total_shuffle_memory_bytes = 64 * 1024;
  Engine engine(config);
  std::vector<int64_t> words(100000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "overflow", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());

  ASSERT_EQ(engine.pipeline().NumJobs(), 1);
  const JobStats& job = engine.pipeline().jobs[0];
  EXPECT_TRUE(job.failed());
  EXPECT_EQ(job.failure, "oom");
  // The shuffle volumes the job materialized before dying are recorded...
  EXPECT_GT(job.map_output_records, 0);
  EXPECT_GT(job.map_output_bytes, 0u);
  EXPECT_GT(job.spilled_records, 0);
  EXPECT_EQ(job.spilled_bytes,
            static_cast<uint64_t>(job.spilled_records) *
                (ShuffleEmitter<int64_t, int64_t>::kRecordBytes));
  // ...the partition vectors report their true size (zero-filled: the job
  // never reached the shuffle phase)...
  EXPECT_EQ(static_cast<int>(job.reduce_partition_records.size()),
            config.EffectiveReduceTasks());
  // ...and the spill files are still cleaned up, with the budget released.
  EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);
  EXPECT_EQ(engine.memory().used(), 0u);
  EXPECT_EQ(engine.pipeline().NumFailedJobs(), 1);
  EXPECT_GT(engine.pipeline().TotalSpilledRecords(), 0);
}

TEST(EngineStats, AbortedJobRecordsFailureKindAndSpills) {
  // Find a failure seed whose sampled failures abort the job.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.num_machines = 8;
    config.spill_directory = SpillDir("aborted");
    config.spill_threshold_records = 16;
    config.task_failure_probability = 0.4;
    config.max_task_attempts = 1;
    config.failure_seed = seed;
    Engine engine(config);
    std::vector<int64_t> words(5000, 1);
    auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
        "abort", static_cast<int64_t>(words.size()),
        [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
          em->Emit(words[static_cast<size_t>(i)], 1);
        },
        [](const int64_t& w, std::vector<int64_t>& vs,
           OutputEmitter<int64_t, int64_t>* out) {
          out->Emit(w, static_cast<int64_t>(vs.size()));
        });
    if (result.ok()) continue;  // this seed did not abort; try the next
    ASSERT_TRUE(result.status().IsAborted());
    const JobStats& job = engine.pipeline().jobs[0];
    EXPECT_TRUE(job.failed());
    EXPECT_EQ(job.failure, "aborted");
    // Surviving tasks' spills were counted before cleanup.
    EXPECT_GT(job.spilled_records, 0);
    EXPECT_EQ(SpillFilesIn(config.spill_directory), 0);
    EXPECT_EQ(engine.memory().used(), 0u);
    return;
  }
  FAIL() << "no failure seed in [1, 50] aborted the job";
}

TEST(EngineStats, MapTaskRecordsCountReaderInvocations) {
  // Success case: per-task counts equal the records handed to the reader.
  {
    ClusterConfig config = ClusterConfig::ForTesting();
    Engine engine(config);
    std::atomic<int64_t> reader_calls{0};
    auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
        "count-reads", 12345,
        [&reader_calls](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
          reader_calls.fetch_add(1, std::memory_order_relaxed);
          em->Emit(i % 10, 1);
        },
        [](const int64_t& w, std::vector<int64_t>& vs,
           OutputEmitter<int64_t, int64_t>* out) {
          out->Emit(w, static_cast<int64_t>(vs.size()));
        });
    ASSERT_OK(result.status());
    int64_t counted = 0;
    for (int64_t r : engine.pipeline().jobs[0].map_task_records) {
      counted += r;
    }
    EXPECT_EQ(counted, reader_calls.load());
    EXPECT_EQ(counted, 12345);
  }
  // Early-abort case: a task killed mid-chunk by the budget must not claim
  // its whole chunk.
  {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.num_threads = 1;  // deterministic kill point
    config.total_shuffle_memory_bytes = 64 * 1024;
    Engine engine(config);
    std::atomic<int64_t> reader_calls{0};
    const int64_t n = 1000000;
    auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
        "count-reads-oom", n,
        [&reader_calls](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
          reader_calls.fetch_add(1, std::memory_order_relaxed);
          em->Emit(i, 1);
        },
        [](const int64_t& w, std::vector<int64_t>& vs,
           OutputEmitter<int64_t, int64_t>* out) {
          out->Emit(w, static_cast<int64_t>(vs.size()));
        });
    ASSERT_FALSE(result.ok());
    int64_t counted = 0;
    for (int64_t r : engine.pipeline().jobs[0].map_task_records) {
      counted += r;
    }
    EXPECT_EQ(counted, reader_calls.load());
    EXPECT_LT(counted, n);  // the job died before reading everything
  }
}

TEST(EngineStats, PipelineSinceExcludesPlansWithoutJobIds) {
  // Regression: a plan whose nodes recorded no job ids (every node failed
  // before its first job, or a pure-assembly plan) used to be vacuously
  // "in range" and show up in every later iteration's PipelineSince()
  // slice. It must not appear in any watermarked slice.
  Engine engine(ClusterConfig::ForTesting());

  PlanStats before;
  before.plan_id = 0;
  before.name = "with-early-jobs";
  before.nodes.emplace_back();
  before.nodes[0].label = "n0";

  // One real job below the watermark, attributed to `before`.
  auto run_one = [&engine]() {
    auto r = engine.Run<int64_t, int64_t, int64_t, int64_t>(
        "since-job", 10,
        [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
          em->Emit(i % 2, 1);
        },
        [](const int64_t& k, std::vector<int64_t>& vs,
           OutputEmitter<int64_t, int64_t>* out) {
          out->Emit(k, static_cast<int64_t>(vs.size()));
        });
    ASSERT_OK(r.status());
  };
  run_one();
  before.nodes[0].job_ids = {engine.pipeline().jobs.back().job_id};
  engine.RecordPlan(before);

  PlanStats empty;
  empty.plan_id = 1;
  empty.name = "no-jobs-anywhere";
  empty.nodes.emplace_back();
  empty.nodes[0].label = "failed-before-first-job";
  empty.nodes[0].status = "failed";
  engine.RecordPlan(empty);

  const int64_t watermark = engine.NextJobId();
  run_one();
  PlanStats after;
  after.plan_id = 2;
  after.name = "with-late-jobs";
  after.nodes.emplace_back();
  after.nodes[0].label = "n0";
  after.nodes[0].job_ids = {engine.pipeline().jobs.back().job_id};
  engine.RecordPlan(after);

  PipelineStats slice = engine.PipelineSince(watermark);
  ASSERT_EQ(slice.jobs.size(), 1u);
  EXPECT_GE(slice.jobs[0].job_id, watermark);
  ASSERT_EQ(slice.plans.size(), 1u);
  EXPECT_EQ(slice.plans[0].name, "with-late-jobs");

  // Even a slice of everything excludes the job-less plan: it belongs to no
  // iteration window.
  PipelineStats all = engine.PipelineSince(0);
  EXPECT_EQ(all.jobs.size(), 2u);
  ASSERT_EQ(all.plans.size(), 2u);
  EXPECT_EQ(all.plans[0].name, "with-early-jobs");
  EXPECT_EQ(all.plans[1].name, "with-late-jobs");
}

// ---------------------------------------------------------------------------
// S1 regression: concurrent Run() calls on one spilling engine must not
// collide on spill filenames.

TEST(EngineStats, ConcurrentRunsWithSpillingProduceCorrectOutputs) {
  std::vector<int64_t> words_a = RandomWords(20000, 94, 64);
  std::vector<int64_t> words_b = RandomWords(20000, 95, 64);
  ClusterConfig plain = ClusterConfig::ForTesting();
  Engine reference(plain);
  std::map<int64_t, int64_t> want_a = WordCount(&reference, words_a, "ref-a");
  std::map<int64_t, int64_t> want_b = WordCount(&reference, words_b, "ref-b");

  ClusterConfig spilling = plain;
  spilling.spill_directory = SpillDir("volume");
  spilling.spill_threshold_records = 32;  // force many spill files
  for (int round = 0; round < 4; ++round) {
    Engine engine(spilling);
    std::map<int64_t, int64_t> got_a;
    std::map<int64_t, int64_t> got_b;
    std::thread ta([&] { got_a = WordCount(&engine, words_a, "conc-a"); });
    std::thread tb([&] { got_b = WordCount(&engine, words_b, "conc-b"); });
    ta.join();
    tb.join();
    EXPECT_EQ(got_a, want_a) << "round " << round;
    EXPECT_EQ(got_b, want_b) << "round " << round;
    EXPECT_EQ(engine.pipeline().NumJobs(), 2);
    for (const JobStats& job : engine.pipeline().jobs) {
      EXPECT_GT(job.spilled_records, 0) << job.name;
    }
    EXPECT_EQ(SpillFilesIn(spilling.spill_directory), 0);
    EXPECT_EQ(engine.memory().used(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Driver-level tracing.

TEST(EngineStats, ParafacTraceRecordsEveryIteration) {
  Rng rng(96);
  SparseTensor x = haten2::testing::RandomSparseTensor({12, 10, 8}, 200, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  DecompositionTrace trace;
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  options.trace = &trace;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(model.status());
  ASSERT_EQ(static_cast<int>(trace.iterations.size()), model->iterations);
  size_t traced_jobs = 0;
  for (size_t i = 0; i < trace.iterations.size(); ++i) {
    const IterationStats& it = trace.iterations[i];
    EXPECT_EQ(it.iteration, static_cast<int>(i) + 1);
    EXPECT_GE(it.wall_seconds, 0.0);
    EXPECT_TRUE(it.has_fit);
    EXPECT_EQ(it.lambda.size(), 3u);
    EXPECT_GT(it.pipeline.NumJobs(), 0);
    traced_jobs += it.pipeline.jobs.size();
  }
  // Every engine job belongs to exactly one traced iteration.
  EXPECT_EQ(traced_jobs, engine.pipeline().jobs.size());
  EXPECT_DOUBLE_EQ(trace.iterations.back().fit, model->fit);
}

TEST(EngineStats, FailedIterationIsStillTraced) {
  Rng rng(97);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({30, 30, 30}, 2000, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  config.total_shuffle_memory_bytes = 32 * 1024;  // guaranteed o.o.m.
  Engine engine(config);
  DecompositionTrace trace;
  Haten2Options options;
  options.max_iterations = 3;
  options.trace = &trace;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_FALSE(model.ok());
  EXPECT_TRUE(model.status().IsResourceExhausted());
  ASSERT_EQ(trace.iterations.size(), 1u);  // died in the first iteration
  const IterationStats& it = trace.iterations[0];
  EXPECT_FALSE(it.has_fit);
  EXPECT_GT(it.pipeline.NumJobs(), 0);  // the jobs that ran are recorded
  EXPECT_EQ(it.pipeline.NumFailedJobs(), 1);
  EXPECT_EQ(it.pipeline.jobs.back().failure, "oom");
}

// ---------------------------------------------------------------------------
// JSON export.

TEST(EngineStats, StatsReportJsonIsValidAndComplete) {
  Rng rng(98);
  SparseTensor x = haten2::testing::RandomSparseTensor({12, 10, 8}, 200, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  DecompositionTrace trace;
  Haten2Options options;
  options.max_iterations = 2;
  options.tolerance = 0.0;
  options.trace = &trace;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(model.status());

  StatsReport report;
  report.tool = "engine_stats_test";
  report.method = "parafac";
  report.variant = "dri";
  report.dataset = "random";
  report.wall_seconds = 1.5;
  report.has_fit = true;
  report.fit = model->fit;
  report.iterations_run = model->iterations;
  report.cluster = &config;
  report.trace = &trace;
  report.pipeline = &engine.pipeline();
  std::string json = StatsReportToJson(report);

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* key :
       {"\"schema\":\"haten2-stats-v9\"", "\"status\":\"ok\"",
        "\"cluster\"", "\"iterations\"", "\"pipeline\"", "\"phases\"",
        "\"map_seconds\"", "\"shuffle_seconds\"", "\"reduce_seconds\"",
        "\"spill\"", "\"fit\"", "\"lambda\"", "\"simulated_seconds\"",
        "\"max_intermediate_records\"", "\"tasks\"", "\"partitions\"",
        "\"job_id\"", "\"plan_id\"", "\"plans\"", "\"scheduled_concurrency\"",
        "\"critical_path_seconds\"", "\"invariant_cache_hits\"",
        "\"max_concurrent_jobs\"", "\"node_retries\"",
        "\"node_backoff_seconds\"", "\"max_node_attempts\"",
        "\"raw_bytes\"", "\"compressed_bytes\"", "\"compression_ratio\"",
        "\"total_spilled_raw_bytes\"", "\"total_spilled_compressed_bytes\"",
        "\"spill_compression\"",
        // stats-v5: speculation + heterogeneous-cluster additions.
        "\"critical_path_with_backoff_seconds\"", "\"speculation\"",
        "\"speculated\"", "\"won\"", "\"wasted_seconds\"",
        "\"speculated_tasks\"", "\"speculation_won\"",
        "\"speculation_wasted_seconds\"", "\"speculative_execution\"",
        "\"speculation_slowstart\"", "\"straggler_jitter\"",
        "\"straggler_jitter_seed\"", "\"machine_profiles\"",
        // stats-v6: subprocess-backend additions.
        "\"backend\"", "\"num_workers\"",
        // stats-v7: contraction-strategy additions.
        "\"contraction\"", "\"incore_memory_mb\"",
        "\"incore_nodes\"", "\"dataflow_nodes\"",
        // stats-v8: sketched-Tucker additions (cluster knobs; the
        // per-iteration "sketch" object only appears for sketched runs and
        // is covered in sketched_tucker_test.cc).
        "\"tucker_sketch\"", "\"sketch_size\"",
        "\"exact_polish_sweeps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(EngineStats, JobJsonEscapesHostileNames) {
  JobStats job;
  job.name = "we\"ird\\job\nname\ttab\x01" "end";
  JsonWriter w;
  JobStatsToJson(job, /*cost=*/nullptr, &w);
  std::string json = w.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\\\"ird"), std::string::npos);
  EXPECT_NE(json.find("\\\\job"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(EngineStats, JsonWriterNonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginObject()
      .Key("nan")
      .Value(std::numeric_limits<double>::quiet_NaN())
      .Key("inf")
      .Value(std::numeric_limits<double>::infinity())
      .Key("ok")
      .Value(2.5)
      .EndObject();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"inf\":null,\"ok\":2.5}");
  EXPECT_TRUE(JsonChecker(w.str()).Valid());
}

TEST(EngineStats, WriteStatsJsonFileRoundTrips) {
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  WordCount(&engine, RandomWords(1000, 99));
  StatsReport report;
  report.tool = "engine_stats_test";
  report.status = "ok";
  report.pipeline = &engine.pipeline();
  std::string path =
      std::string(::testing::TempDir()) + "/haten2_stats_report.json";
  ASSERT_OK(WriteStatsJsonFile(report, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_TRUE(JsonChecker(content).Valid()) << content;
  EXPECT_NE(content.find("haten2-stats-v9"), std::string::npos);
}

}  // namespace
}  // namespace haten2
