// Tests for nonnegative Tucker (NTD): nonnegativity invariants, monotone
// fit on nonnegative data, approximate recovery of a planted nonnegative
// Tucker tensor, and validation.

#include "core/nonnegative_tucker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace haten2 {
namespace {

// An exactly nonnegative multilinear-rank-(2,2,2) tensor.
SparseTensor NonnegativeTuckerTensor(Rng* rng) {
  Result<DenseTensor> core = DenseTensor::Create({2, 2, 2});
  HATEN2_CHECK(core.ok());
  for (double& v : core->data()) v = rng->Uniform(0.2, 1.5);
  DenseMatrix a = DenseMatrix::RandomUniform(9, 2, rng);
  DenseMatrix b = DenseMatrix::RandomUniform(8, 2, rng);
  DenseMatrix c = DenseMatrix::RandomUniform(7, 2, rng);
  Result<DenseTensor> dense = ReconstructTucker(*core, {&a, &b, &c});
  HATEN2_CHECK(dense.ok());
  return dense->ToSparse();
}

TEST(NonnegativeTucker, FactorsAndCoreStayNonnegative) {
  Rng rng(801);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({12, 10, 9}, 150, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 8;
  Result<TuckerModel> model =
      Haten2NonnegativeTuckerAls(&engine, x, {3, 3, 3}, options);
  ASSERT_OK(model.status());
  for (const DenseMatrix& f : model->factors) {
    for (double v : f.data()) EXPECT_GE(v, 0.0);
  }
  for (double g : model->core.data()) EXPECT_GE(g, 0.0);
  EXPECT_GT(model->fit, 0.0);
}

TEST(NonnegativeTucker, FitImprovesOnStructuredData) {
  Rng rng(802);
  SparseTensor x = NonnegativeTuckerTensor(&rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 40;
  options.tolerance = 0.0;
  Result<TuckerModel> model =
      Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 2}, options);
  ASSERT_OK(model.status());
  // Multiplicative updates converge slowly but must fit a genuinely
  // nonnegative low-rank tensor well.
  EXPECT_GT(model->fit, 0.95);
  // Reconstruction error agrees with the reported fit.
  Result<DenseTensor> recon =
      ReconstructTucker(model->core, model->FactorPtrs());
  ASSERT_OK(recon.status());
  DenseTensor dense = DenseTensor::FromSparse(x);
  double resid_sq = 0.0;
  for (size_t i = 0; i < dense.data().size(); ++i) {
    double d = dense.data()[i] - recon->data()[i];
    resid_sq += d * d;
  }
  double fit_check = 1.0 - std::sqrt(resid_sq / x.SumSquares());
  EXPECT_NEAR(model->fit, fit_check, 1e-6);
}

TEST(NonnegativeTucker, AllVariantsAgree) {
  Rng rng(803);
  SparseTensor x = haten2::testing::RandomSparseTensor({8, 7, 6}, 60, &rng);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  std::vector<double> fits;
  for (Variant v : {Variant::kDnn, Variant::kDrn, Variant::kDri}) {
    Engine engine(ClusterConfig::ForTesting());
    options.variant = v;
    Result<TuckerModel> model =
        Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 2}, options);
    ASSERT_OK(model.status());
    fits.push_back(model->fit);
  }
  EXPECT_NEAR(fits[0], fits[1], 1e-9);
  EXPECT_NEAR(fits[1], fits[2], 1e-9);
}

TEST(NonnegativeTucker, Validation) {
  Rng rng(804);
  SparseTensor x = haten2::testing::RandomSparseTensor({5, 5, 5}, 20, &rng);
  Engine engine(ClusterConfig::ForTesting());
  EXPECT_TRUE(Haten2NonnegativeTuckerAls(nullptr, x, {2, 2, 2})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Haten2NonnegativeTuckerAls(&engine, x, {2, 2})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 9})
                  .status()
                  .IsInvalidArgument());
  // Negative entries are rejected.
  Result<SparseTensor> neg = SparseTensor::Create3(3, 3, 3);
  ASSERT_OK(neg.status());
  ASSERT_OK(neg->Append({0, 0, 0}, -1.0));
  neg->Canonicalize();
  EXPECT_TRUE(Haten2NonnegativeTuckerAls(&engine, *neg, {1, 1, 1})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace haten2
