// Tests for the block-compressed spill format: varint primitives, block
// round-trips, corrupted-block rejection, compression effectiveness on
// clustered keys, and end-to-end bit-identity of decompositions with
// compression on vs off.

#include "mapreduce/spill_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/parafac.h"
#include "core/tucker.h"
#include "mapreduce/engine.h"
#include "test_util.h"

namespace haten2 {
namespace {

TEST(SpillCodecVarint, RoundTripsBoundaryValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            129,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            1ull << 63,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t want : cases) {
    std::string buf;
    AppendVarint(want, &buf);
    ASSERT_GE(buf.size(), 1u);
    ASSERT_LE(buf.size(), 10u);
    uint64_t got = 0;
    EXPECT_EQ(DecodeVarint(buf.data(), buf.size(), &got), buf.size())
        << "value " << want;
    EXPECT_EQ(got, want);
  }
}

TEST(SpillCodecVarint, DecodeConsumesOnlyOneVarint) {
  std::string buf;
  AppendVarint(300, &buf);
  size_t first = buf.size();
  AppendVarint(7, &buf);
  uint64_t got = 0;
  EXPECT_EQ(DecodeVarint(buf.data(), buf.size(), &got), first);
  EXPECT_EQ(got, 300u);
}

TEST(SpillCodecVarint, RejectsTruncatedInput) {
  std::string buf;
  AppendVarint(std::numeric_limits<uint64_t>::max(), &buf);
  uint64_t got = 0;
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_EQ(DecodeVarint(buf.data(), cut, &got), 0u) << "cut at " << cut;
  }
  EXPECT_EQ(DecodeVarint(nullptr, 0, &got), 0u);
}

TEST(SpillCodecVarint, RejectsOverlongEncodings) {
  // Ten continuation bytes: an eleventh byte would be needed, which no
  // 64-bit value produces.
  std::string overlong(10, static_cast<char>(0x80));
  uint64_t got = 0;
  EXPECT_EQ(DecodeVarint(overlong.data(), overlong.size(), &got), 0u);
  // A 10th byte with any bit beyond the 64-bit capacity set is invalid.
  std::string toobig(9, static_cast<char>(0x80));
  toobig.push_back(0x02);
  EXPECT_EQ(DecodeVarint(toobig.data(), toobig.size(), &got), 0u);
}

// --- block round-trips -----------------------------------------------------

using Record = std::pair<int64_t, double>;

std::string RecordBytes(const std::vector<Record>& records) {
  std::string raw(records.size() * sizeof(Record), '\0');
  if (!records.empty()) {
    std::memcpy(raw.data(), records.data(), raw.size());
  }
  return raw;
}

/// Encodes `records` as one block, then parses the header and decodes the
/// payload back, returning the reconstructed record structs.
std::vector<Record> RoundTrip(const std::vector<Record>& records) {
  std::string encoded;
  size_t appended = EncodeSpillBlock(RecordBytes(records).data(),
                                     records.size(), sizeof(Record),
                                     sizeof(int64_t), &encoded);
  EXPECT_EQ(appended, encoded.size());
  EXPECT_GE(encoded.size(), kSpillBlockHeaderBytes);

  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "test");
  EXPECT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->record_count, records.size());
  EXPECT_EQ(header->raw_bytes, records.size() * sizeof(Record));
  EXPECT_EQ(header->payload_bytes, encoded.size() - kSpillBlockHeaderBytes);

  std::string decoded;
  Status status = DecodeSpillBlockPayload(
      *header, encoded.data() + kSpillBlockHeaderBytes,
      encoded.size() - kSpillBlockHeaderBytes, sizeof(Record),
      sizeof(int64_t), "test", &decoded);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded.size(), records.size() * sizeof(Record));

  std::vector<Record> out(records.size());
  if (!out.empty()) {
    std::memcpy(static_cast<void*>(out.data()), decoded.data(),
                decoded.size());
  }
  return out;
}

TEST(SpillCodecBlock, RoundTripsEmptyRun) {
  std::vector<Record> records;
  EXPECT_EQ(RoundTrip(records), records);
}

TEST(SpillCodecBlock, RoundTripsSingleRecord) {
  std::vector<Record> records = {{42, 3.25}};
  EXPECT_EQ(RoundTrip(records), records);
}

TEST(SpillCodecBlock, RoundTripsSortedKeys) {
  std::vector<Record> records;
  for (int64_t k = 0; k < 500; ++k) {
    records.push_back({k / 3, static_cast<double>(k) * 0.5});
  }
  EXPECT_EQ(RoundTrip(records), records);
}

TEST(SpillCodecBlock, RoundTripsRandomKeysInEmissionOrder) {
  // The codec sorts internally for small deltas, but the stored permutation
  // restores the exact emission order — decode is byte-identical to the
  // input, not merely equivalent up to reordering.
  Rng rng(77);
  std::vector<Record> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back({static_cast<int64_t>(rng.UniformInt(uint64_t{50})),
                       static_cast<double>(i)});
  }
  EXPECT_EQ(RoundTrip(records), records);
}

TEST(SpillCodecBlock, RoundTripsNegativeAndExtremeKeys) {
  // Negative int64 keys have huge unsigned prefixes; deltas still round-trip
  // via unsigned wraparound arithmetic.
  std::vector<Record> records = {{std::numeric_limits<int64_t>::min(), 1.0},
                                 {-1, 2.0},
                                 {0, 3.0},
                                 {std::numeric_limits<int64_t>::max(), 4.0}};
  EXPECT_EQ(RoundTrip(records), records);
}

TEST(SpillCodecBlock, RejectsNonBijectivePermutation) {
  // Encode two identical keys, then clobber the second permutation entry to
  // duplicate the first: the decoder must refuse rather than silently drop
  // and duplicate records.
  std::vector<Record> records = {{5, 1.0}, {5, 2.0}};
  std::string encoded;
  EncodeSpillBlock(RecordBytes(records).data(), records.size(),
                   sizeof(Record), sizeof(int64_t), &encoded);
  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "f");
  ASSERT_TRUE(header.ok());
  // Permutation of a pre-sorted run is the identity: bytes 0x00 0x01 right
  // after the header. Duplicate index 0.
  encoded[kSpillBlockHeaderBytes + 1] = '\0';
  std::string decoded;
  Status status = DecodeSpillBlockPayload(
      *header, encoded.data() + kSpillBlockHeaderBytes,
      encoded.size() - kSpillBlockHeaderBytes, sizeof(Record),
      sizeof(int64_t), "f", &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("permutation"), std::string::npos)
      << status.ToString();
}

TEST(SpillCodecBlock, CompressesClusteredKeys) {
  // Keys drawn from a small range: deltas fit in 1-2 varint bytes vs the
  // 8 raw key bytes, so the encoded block is measurably smaller.
  Rng rng(171);
  std::vector<Record> records;
  for (int i = 0; i < 4096; ++i) {
    records.push_back({static_cast<int64_t>(rng.UniformInt(uint64_t{1000})),
                       1.0});
  }
  std::string encoded;
  EncodeSpillBlock(RecordBytes(records).data(), records.size(),
                   sizeof(Record), sizeof(int64_t), &encoded);
  EXPECT_LT(encoded.size(), records.size() * sizeof(Record));
}

// --- corrupted-block rejection ---------------------------------------------

std::string EncodeFixture(std::vector<Record>* records) {
  records->clear();
  for (int64_t k = 0; k < 64; ++k) records->push_back({k, 2.0 * k});
  std::string encoded;
  EncodeSpillBlock(RecordBytes(*records).data(), records->size(),
                   sizeof(Record), sizeof(int64_t), &encoded);
  return encoded;
}

TEST(SpillCodecBlock, RejectsShortHeader) {
  std::vector<Record> records;
  std::string encoded = EncodeFixture(&records);
  auto header = ParseSpillBlockHeader(encoded.data(),
                                      kSpillBlockHeaderBytes - 1, "f @ 0");
  ASSERT_FALSE(header.ok());
  EXPECT_TRUE(header.status().IsIOError());
  EXPECT_NE(header.status().message().find("f @ 0"), std::string::npos);
}

TEST(SpillCodecBlock, RejectsBadMagic) {
  std::vector<Record> records;
  std::string encoded = EncodeFixture(&records);
  encoded[0] ^= 0x5A;
  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "f");
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("magic"), std::string::npos);
}

TEST(SpillCodecBlock, RejectsUnknownCodecId) {
  std::vector<Record> records;
  std::string encoded = EncodeFixture(&records);
  encoded[4] = 0x7F;  // codec id field
  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "f");
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("codec"), std::string::npos);
}

TEST(SpillCodecBlock, RejectsRawByteCountMismatch) {
  std::vector<Record> records;
  std::string encoded = EncodeFixture(&records);
  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "f");
  ASSERT_TRUE(header.ok());
  header->raw_bytes += 1;
  std::string decoded;
  Status status = DecodeSpillBlockPayload(
      *header, encoded.data() + kSpillBlockHeaderBytes,
      encoded.size() - kSpillBlockHeaderBytes, sizeof(Record),
      sizeof(int64_t), "f", &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError());
}

TEST(SpillCodecBlock, RejectsTruncatedPayload) {
  std::vector<Record> records;
  std::string encoded = EncodeFixture(&records);
  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "f");
  ASSERT_TRUE(header.ok());
  std::string decoded;
  Status status = DecodeSpillBlockPayload(
      *header, encoded.data() + kSpillBlockHeaderBytes,
      encoded.size() - kSpillBlockHeaderBytes - 5, sizeof(Record),
      sizeof(int64_t), "f", &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError());
}

TEST(SpillCodecBlock, RejectsGarbageVarint) {
  std::vector<Record> records;
  std::string encoded = EncodeFixture(&records);
  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "f");
  ASSERT_TRUE(header.ok());
  // Overwrite the whole payload with continuation bytes: the first varint
  // never terminates.
  std::string payload(encoded.size() - kSpillBlockHeaderBytes,
                      static_cast<char>(0x80));
  std::string decoded;
  Status status = DecodeSpillBlockPayload(*header, payload.data(),
                                          payload.size(), sizeof(Record),
                                          sizeof(int64_t), "f", &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("varint"), std::string::npos);
}

TEST(SpillCodecBlock, RejectsTrailingGarbage) {
  std::vector<Record> records;
  std::string encoded = EncodeFixture(&records);
  auto header = ParseSpillBlockHeader(encoded.data(), encoded.size(), "f");
  ASSERT_TRUE(header.ok());
  std::string payload(encoded.begin() + kSpillBlockHeaderBytes,
                      encoded.end());
  payload.push_back('\0');  // extra byte the header doesn't account for
  std::string decoded;
  Status status = DecodeSpillBlockPayload(*header, payload.data(),
                                          payload.size(), sizeof(Record),
                                          sizeof(int64_t), "f", &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
}

// --- end-to-end bit-identity -----------------------------------------------

std::string CodecSpillDir() {
  std::string dir =
      std::string(::testing::TempDir()) + "/haten2_codec_spills";
  std::filesystem::create_directories(dir);
  return dir;
}

ClusterConfig SpillingConfig(SpillCompression codec) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = CodecSpillDir();
  config.spill_threshold_records = 32;
  config.spill_compression = codec;
  return config;
}

TEST(SpillCodec, ParafacBitIdenticalWithCompression) {
  Rng rng(5150);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({15, 12, 10}, 300, &rng);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;

  Engine reference(SpillingConfig(SpillCompression::kNone));
  Result<KruskalModel> want = Haten2ParafacAls(&reference, x, 3, options);
  ASSERT_OK(want.status());

  Engine engine(SpillingConfig(SpillCompression::kDeltaVarint));
  Result<KruskalModel> got = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }

  // Compression actually engaged and shrank the spill runs.
  uint64_t raw = engine.pipeline().TotalSpilledRawBytes();
  uint64_t compressed = engine.pipeline().TotalSpilledCompressedBytes();
  EXPECT_GT(raw, 0u);
  EXPECT_LT(compressed, raw);
  // The uncompressed engine reports equal raw and on-disk widths.
  EXPECT_EQ(reference.pipeline().TotalSpilledCompressedBytes(),
            reference.pipeline().TotalSpilledRawBytes());
}

TEST(SpillCodec, TuckerBitIdenticalWithCompression) {
  Rng rng(5151);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({12, 10, 8}, 250, &rng);
  Haten2Options options;
  options.max_iterations = 2;
  options.tolerance = 0.0;

  Engine reference(SpillingConfig(SpillCompression::kNone));
  Result<TuckerModel> want =
      Haten2TuckerAls(&reference, x, {3, 3, 2}, options);
  ASSERT_OK(want.status());

  Engine engine(SpillingConfig(SpillCompression::kDeltaVarint));
  Result<TuckerModel> got = Haten2TuckerAls(&engine, x, {3, 3, 2}, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  EXPECT_DOUBLE_EQ(got->core.MaxAbsDiff(want->core), 0.0);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }
}

TEST(SpillCodec, ParseSpillCompressionNames) {
  auto none = ParseSpillCompression("none");
  ASSERT_OK(none.status());
  EXPECT_EQ(*none, SpillCompression::kNone);
  auto delta = ParseSpillCompression("delta_varint");
  ASSERT_OK(delta.status());
  EXPECT_EQ(*delta, SpillCompression::kDeltaVarint);
  EXPECT_FALSE(ParseSpillCompression("gzip").ok());
  EXPECT_EQ(SpillCompressionName(SpillCompression::kNone), "none");
  EXPECT_EQ(SpillCompressionName(SpillCompression::kDeltaVarint),
            "delta_varint");
}

}  // namespace
}  // namespace haten2
