#ifndef HATEN2_TESTS_TEST_UTIL_H_
#define HATEN2_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <vector>

#include "tensor/dense_matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/logging.h"
#include "util/random.h"

namespace haten2 {
namespace testing {

/// Builds a random sparse tensor with the given dims and approximately
/// `nnz` distinct nonzero coordinates, values Uniform(0.5, 1.5).
inline SparseTensor RandomSparseTensor(const std::vector<int64_t>& dims,
                                       int64_t nnz, Rng* rng) {
  Result<SparseTensor> r = SparseTensor::Create(dims);
  HATEN2_CHECK(r.ok()) << r.status().ToString();
  SparseTensor t = std::move(r).value();
  t.Reserve(nnz);
  std::vector<int64_t> idx(dims.size());
  for (int64_t e = 0; e < nnz; ++e) {
    for (size_t m = 0; m < dims.size(); ++m) {
      idx[m] = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(dims[m])));
    }
    t.AppendUnchecked(idx.data(), rng->Uniform(0.5, 1.5));
  }
  t.Canonicalize();
  return t;
}

#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const auto _s = (expr);                                          \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                            \
  } while (false)

#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const auto _s = (expr);                                          \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                            \
  } while (false)

}  // namespace testing
}  // namespace haten2

#endif  // HATEN2_TESTS_TEST_UTIL_H_
