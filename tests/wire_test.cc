// Tests for the coordinator<->worker wire protocol: frame round-trips,
// CRC-32, and the corruption paths — truncated frame, bad magic, CRC
// mismatch, oversized length prefix, unknown type, version mismatch, and
// read timeout. Every failure must surface as IOError naming the peer and
// the byte offset, never a crash or a hang.

#include "distributed/wire.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

namespace haten2 {
namespace distributed {
namespace {

// Byte offsets of header fields inside an encoded frame (see wire.h):
// magic u32 | version u16 | type u16 | worker i32 | job i64 | a i64 |
// b i64 | payload_len u32 | crc u32.
constexpr size_t kVersionOffset = 4;
constexpr size_t kTypeOffset = 6;
constexpr size_t kPayloadLenOffset = 36;

struct ChannelPair {
  std::unique_ptr<WireChannel> coordinator;  // reads what the worker sends
  std::unique_ptr<WireChannel> worker;
};

ChannelPair MakePair() {
  int a = -1, b = -1;
  Status s = MakeSocketPair(&a, &b);
  EXPECT_TRUE(s.ok()) << s.ToString();
  ChannelPair pair;
  pair.coordinator = std::make_unique<WireChannel>(a, "worker 3");
  pair.worker = std::make_unique<WireChannel>(b, "coordinator");
  return pair;
}

WireFrame TestFrame() {
  WireFrame frame;
  frame.type = FrameType::kMapRun;
  frame.worker = 3;
  frame.job = 42;
  frame.a = 7;
  frame.b = 11;
  frame.payload = "spill-codec block stand-in \x00\x01\x02 payload";
  return frame;
}

// Sends raw (possibly corrupted) bytes through the worker end's socket.
void SendRaw(const WireChannel& from, const std::string& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t w = ::send(from.fd(), bytes.data() + done, bytes.size() - done,
                       MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    done += static_cast<size_t>(w);
  }
}

TEST(DistributedWireTest, Crc32MatchesKnownVector) {
  // The standard CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(DistributedWireTest, FrameRoundTripsThroughSocketPair) {
  ChannelPair pair = MakePair();
  const WireFrame sent = TestFrame();
  Status ws = pair.worker->WriteFrame(sent);
  ASSERT_TRUE(ws.ok()) << ws.ToString();

  WireFrame got;
  Status rs = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(rs.ok()) << rs.ToString();
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.worker, sent.worker);
  EXPECT_EQ(got.job, sent.job);
  EXPECT_EQ(got.a, sent.a);
  EXPECT_EQ(got.b, sent.b);
  EXPECT_EQ(got.payload, sent.payload);

  EXPECT_EQ(pair.worker->bytes_sent(),
            kWireHeaderBytes + sent.payload.size());
  EXPECT_EQ(pair.coordinator->bytes_received(),
            kWireHeaderBytes + sent.payload.size());
}

TEST(DistributedWireTest, EmptyPayloadRoundTrips) {
  ChannelPair pair = MakePair();
  WireFrame sent;
  sent.type = FrameType::kRunsDone;
  sent.worker = 0;
  ASSERT_TRUE(pair.worker->WriteFrame(sent).ok());
  WireFrame got;
  ASSERT_TRUE(pair.coordinator->ReadFrame(5.0, &got).ok());
  EXPECT_EQ(got.type, FrameType::kRunsDone);
  EXPECT_TRUE(got.payload.empty());
}

TEST(DistributedWireTest, TruncatedFrameNamesWorkerAndOffset) {
  ChannelPair pair = MakePair();
  std::string bytes;
  EncodeFrameBytes(TestFrame(), &bytes);
  // Send the header plus a sliver of payload, then close mid-frame.
  SendRaw(*pair.worker, bytes.substr(0, kWireHeaderBytes + 5));
  pair.worker->Close();

  WireFrame got;
  Status s = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("truncated frame from"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("byte offset"), std::string::npos)
      << s.ToString();
}

TEST(DistributedWireTest, CleanCloseBetweenFramesIsDistinguished) {
  ChannelPair pair = MakePair();
  pair.worker->Close();
  WireFrame got;
  Status s = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("connection closed by"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
}

TEST(DistributedWireTest, BadMagicNamesWorkerAndOffset) {
  ChannelPair pair = MakePair();
  std::string bytes;
  EncodeFrameBytes(TestFrame(), &bytes);
  bytes[0] = static_cast<char>(bytes[0] ^ 0x5A);
  SendRaw(*pair.worker, bytes);

  WireFrame got;
  Status s = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("bad magic"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("byte offset"), std::string::npos)
      << s.ToString();
}

TEST(DistributedWireTest, VersionMismatchRejected) {
  ChannelPair pair = MakePair();
  std::string bytes;
  EncodeFrameBytes(TestFrame(), &bytes);
  const uint16_t bogus = kWireVersion + 7;
  std::memcpy(&bytes[kVersionOffset], &bogus, sizeof(bogus));
  SendRaw(*pair.worker, bytes);

  WireFrame got;
  Status s = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("unsupported protocol version"),
            std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
}

TEST(DistributedWireTest, UnknownFrameTypeRejected) {
  ChannelPair pair = MakePair();
  std::string bytes;
  EncodeFrameBytes(TestFrame(), &bytes);
  const uint16_t bogus = 999;
  std::memcpy(&bytes[kTypeOffset], &bogus, sizeof(bogus));
  SendRaw(*pair.worker, bytes);

  WireFrame got;
  Status s = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("unknown frame type"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
}

TEST(DistributedWireTest, PayloadCrcMismatchNamesWorkerAndOffset) {
  ChannelPair pair = MakePair();
  std::string bytes;
  EncodeFrameBytes(TestFrame(), &bytes);
  // Flip one payload byte; the header (and its CRC field) stay intact.
  bytes[kWireHeaderBytes + 3] =
      static_cast<char>(bytes[kWireHeaderBytes + 3] ^ 0x01);
  SendRaw(*pair.worker, bytes);

  WireFrame got;
  Status s = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("CRC mismatch"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("byte offset"), std::string::npos)
      << s.ToString();
}

TEST(DistributedWireTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  ChannelPair pair = MakePair();
  std::string bytes;
  EncodeFrameBytes(TestFrame(), &bytes);
  const uint32_t huge = kMaxWirePayloadBytes + 1;
  std::memcpy(&bytes[kPayloadLenOffset], &huge, sizeof(huge));
  SendRaw(*pair.worker, bytes);

  WireFrame got;
  Status s = pair.coordinator->ReadFrame(5.0, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("oversized payload length"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
}

TEST(DistributedWireTest, ReadTimesOutInsteadOfHanging) {
  ChannelPair pair = MakePair();
  WireFrame got;
  Status s = pair.coordinator->ReadFrame(0.05, &got);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("timed out"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("worker 3"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("byte offset"), std::string::npos)
      << s.ToString();
}

TEST(DistributedWireTest, WriteToClosedPeerReportsIOError) {
  ChannelPair pair = MakePair();
  pair.coordinator->Close();
  // The first write may land in the socket buffer; keep writing until the
  // broken pipe surfaces. MSG_NOSIGNAL means we get EPIPE, not SIGPIPE.
  Status s = Status::OK();
  for (int i = 0; i < 64 && s.ok(); ++i) {
    s = pair.worker->WriteFrame(TestFrame());
  }
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("coordinator"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace distributed
}  // namespace haten2
