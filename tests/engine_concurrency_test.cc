// Multi-threaded Engine::Run stress tests: concurrent jobs (issued both
// directly from external threads and through plan submission) must keep
// their spill files apart, record intact per-job statistics, and preserve
// the byte-accounting invariants the o.o.m. semantics rest on.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "mapreduce/engine.h"
#include "mapreduce/plan.h"
#include "mapreduce/scheduler.h"
#include "test_util.h"

namespace haten2 {
namespace {

using Record = std::pair<int64_t, int64_t>;

std::string FreshSpillDir(const std::string& tag) {
  std::string dir =
      std::string(::testing::TempDir()) + "/haten2_conc_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

int64_t SpillFilesIn(const std::string& dir) {
  int64_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".spill") ++n;
  }
  return n;
}

/// Word-count over `i % modulus`; the exact result and record counts are
/// known in closed form.
Status RunCount(Engine* engine, const std::string& name, int64_t records,
                int64_t modulus,
                std::map<int64_t, int64_t>* histogram = nullptr) {
  auto result = engine->Run<int64_t, int64_t, int64_t, int64_t>(
      name, records,
      [modulus](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(i % modulus, 1);
      },
      [](const int64_t& k, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(k, sum);
      });
  if (!result.ok()) return result.status();
  if (histogram != nullptr) {
    for (auto& [k, v] : *result) (*histogram)[k] += v;
  }
  return Status::OK();
}

TEST(EngineConcurrency, ParallelDirectRunsKeepStatsAndSpillsApart) {
  const std::string dir = FreshSpillDir("direct");
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = dir;
  config.spill_threshold_records = 64;  // force heavy spilling
  Engine engine(config);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 6;
  constexpr int64_t kRecords = 4000;
  constexpr int64_t kModulus = 17;
  std::vector<std::map<int64_t, int64_t>> histograms(kThreads);
  std::vector<Status> statuses(kThreads, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        Status s = RunCount(&engine, "stress", kRecords, kModulus,
                            &histograms[static_cast<size_t>(t)]);
        if (!s.ok()) {
          statuses[static_cast<size_t>(t)] = s;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const Status& s : statuses) ASSERT_OK(s);

  // Every job got the right answer: each thread's accumulated histogram is
  // kJobsPerThread times the single-job histogram.
  for (const auto& histogram : histograms) {
    int64_t total = 0;
    for (const auto& [word, count] : histogram) {
      EXPECT_EQ(count, kJobsPerThread * (kRecords / kModulus +
                                         (word < kRecords % kModulus)));
      total += count;
    }
    EXPECT_EQ(total, kJobsPerThread * kRecords);
  }

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.NumJobs(), kThreads * kJobsPerThread);
  EXPECT_EQ(pipeline.NumFailedJobs(), 0);

  // Per-job stats are intact (no cross-job bleed), job ids unique — the
  // uniqueness is what keys concurrent jobs' spill files apart.
  std::set<int64_t> ids;
  for (const JobStats& job : pipeline.jobs) {
    ids.insert(job.job_id);
    EXPECT_EQ(job.map_input_records, kRecords);
    EXPECT_EQ(job.map_output_records, kRecords);
    EXPECT_GT(job.spilled_records, 0);
    // Byte accounting: bytes are records times the serialized record width,
    // and what the reducers received equals what the mappers shuffled.
    EXPECT_EQ(job.map_output_bytes,
              static_cast<uint64_t>(job.map_output_records) * sizeof(Record));
    EXPECT_EQ(job.spilled_bytes,
              static_cast<uint64_t>(job.spilled_records) * sizeof(Record));
    int64_t received = 0;
    uint64_t received_bytes = 0;
    for (int64_t r : job.reduce_partition_records) received += r;
    for (uint64_t b : job.reduce_partition_bytes) received_bytes += b;
    EXPECT_EQ(received, job.map_output_records);
    EXPECT_EQ(received_bytes, job.map_output_bytes);
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads * kJobsPerThread));

  // All spill files were drained and removed, and the budget was released.
  EXPECT_EQ(SpillFilesIn(dir), 0);
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(EngineConcurrency, PlanSubmissionStressKeepsPerNodeAttribution) {
  const std::string dir = FreshSpillDir("plan");
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = dir;
  config.spill_threshold_records = 64;
  config.max_concurrent_jobs = 4;
  Engine engine(config);

  constexpr int kNodes = 12;
  constexpr int64_t kRecords = 3000;
  Plan plan("stress-plan");
  for (int i = 0; i < kNodes; ++i) {
    plan.AddJob("count", {}, [&engine] {
      return RunCount(&engine, "plan-job", kRecords, 13);
    });
  }
  ASSERT_OK(PlanScheduler(&engine).Execute(plan));

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.NumJobs(), kNodes);
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanStats& stats = pipeline.plans[0];
  EXPECT_EQ(stats.concurrency_limit, 4);
  EXPECT_GT(stats.max_observed_concurrency, 1);

  // Every node issued exactly one job; collectively they own every job in
  // the log exactly once, each tagged with the plan.
  std::set<int64_t> node_job_ids;
  for (const PlanNodeStats& node : stats.nodes) {
    EXPECT_EQ(node.status, "ok");
    ASSERT_EQ(node.job_ids.size(), 1u);
    node_job_ids.insert(node.job_ids[0]);
  }
  EXPECT_EQ(node_job_ids.size(), static_cast<size_t>(kNodes));
  for (const JobStats& job : pipeline.jobs) {
    EXPECT_EQ(job.plan_id, stats.plan_id);
    EXPECT_EQ(node_job_ids.count(job.job_id), 1u);
    EXPECT_EQ(job.map_output_records, kRecords);
    EXPECT_GT(job.spilled_records, 0);
  }
  EXPECT_EQ(SpillFilesIn(dir), 0);
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(EngineConcurrency, ClearPipelineIsSafeWhileJobsRun) {
  Engine engine(ClusterConfig::ForTesting());
  std::atomic<bool> stop{false};
  std::thread runner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_OK(RunCount(&engine, "churn", 500, 7));
    }
  });
  // Snapshots and clears race the runner; under TSan this is the regression
  // test for the unlocked ClearPipeline data race.
  for (int i = 0; i < 50; ++i) {
    PipelineStats snapshot = engine.PipelineSnapshot();
    for (const JobStats& job : snapshot.jobs) {
      EXPECT_EQ(job.map_input_records, 500);
    }
    engine.ClearPipeline();
  }
  stop.store(true, std::memory_order_relaxed);
  runner.join();
}

}  // namespace
}  // namespace haten2
