// Unit tests for SparseTensor: construction, canonicalization, accessors,
// slicing-by-collapse, binarization and validation.

#include "tensor/sparse_tensor.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

TEST(SparseTensorCreate, ValidatesDims) {
  EXPECT_TRUE(SparseTensor::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(SparseTensor::Create({3, 0, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(SparseTensor::Create({-1}).status().IsInvalidArgument());
  Result<SparseTensor> t = SparseTensor::Create({4, 5, 6});
  ASSERT_OK(t.status());
  EXPECT_EQ(t->order(), 3);
  EXPECT_EQ(t->dim(0), 4);
  EXPECT_EQ(t->dim(1), 5);
  EXPECT_EQ(t->dim(2), 6);
  EXPECT_EQ(t->nnz(), 0);
  EXPECT_TRUE(t->canonical());
}

TEST(SparseTensorAppend, BoundsChecked) {
  Result<SparseTensor> t = SparseTensor::Create3(3, 3, 3);
  ASSERT_OK(t.status());
  EXPECT_OK(t->Append({0, 1, 2}, 1.0));
  EXPECT_TRUE(t->Append({3, 0, 0}, 1.0).IsOutOfRange());
  EXPECT_TRUE(t->Append({0, -1, 0}, 1.0).IsOutOfRange());
  EXPECT_TRUE(t->Append({0, 0}, 1.0).IsInvalidArgument());
  EXPECT_EQ(t->nnz(), 1);
}

TEST(SparseTensorCanonicalize, SortsMergesAndDropsZeros) {
  Result<SparseTensor> t = SparseTensor::Create3(4, 4, 4);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({2, 1, 0}, 3.0));
  ASSERT_OK(t->Append({0, 0, 0}, 1.0));
  ASSERT_OK(t->Append({2, 1, 0}, -1.0));
  ASSERT_OK(t->Append({1, 1, 1}, 2.0));
  ASSERT_OK(t->Append({1, 1, 1}, -2.0));  // cancels to zero
  ASSERT_OK(t->Append({3, 3, 3}, 0.0));   // explicit zero
  EXPECT_FALSE(t->canonical());
  t->Canonicalize();
  EXPECT_TRUE(t->canonical());
  ASSERT_EQ(t->nnz(), 2);
  // Sorted lexicographically.
  EXPECT_EQ(t->index(0, 0), 0);
  EXPECT_DOUBLE_EQ(t->value(0), 1.0);
  EXPECT_EQ(t->index(1, 0), 2);
  EXPECT_DOUBLE_EQ(t->value(1), 2.0);  // 3.0 + (-1.0)
}

TEST(SparseTensorGet, BinarySearchAfterCanonicalize) {
  Rng rng(3);
  SparseTensor t = testing::RandomSparseTensor({10, 10, 10}, 50, &rng);
  for (int64_t e = 0; e < t.nnz(); ++e) {
    std::vector<int64_t> idx = {t.index(e, 0), t.index(e, 1), t.index(e, 2)};
    EXPECT_DOUBLE_EQ(t.Get(idx), t.value(e));
  }
  EXPECT_DOUBLE_EQ(t.Get({9, 9, 9}) + 1.0,
                   t.Get({9, 9, 9}) + 1.0);  // no crash on any probe
}

TEST(SparseTensorGet, AbsentCoordinateIsZero) {
  Result<SparseTensor> t = SparseTensor::Create3(5, 5, 5);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({1, 2, 3}, 7.0));
  t->Canonicalize();
  EXPECT_DOUBLE_EQ(t->Get({1, 2, 3}), 7.0);
  EXPECT_DOUBLE_EQ(t->Get({1, 2, 4}), 0.0);
  EXPECT_DOUBLE_EQ(t->Get({0, 0, 0}), 0.0);
}

TEST(SparseTensorStats, NormsSumsDensity) {
  Result<SparseTensor> t = SparseTensor::Create3(10, 10, 10);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({0, 0, 0}, 3.0));
  ASSERT_OK(t->Append({1, 1, 1}, 4.0));
  t->Canonicalize();
  EXPECT_DOUBLE_EQ(t->SumSquares(), 25.0);
  EXPECT_DOUBLE_EQ(t->FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(t->Sum(), 7.0);
  EXPECT_DOUBLE_EQ(t->Density(), 2.0 / 1000.0);
  EXPECT_EQ(t->NumCells(), 1000);
}

TEST(SparseTensorBinarized, AllValuesBecomeOne) {
  Rng rng(4);
  SparseTensor t = testing::RandomSparseTensor({8, 8, 8}, 30, &rng);
  SparseTensor b = t.Binarized();
  ASSERT_EQ(b.nnz(), t.nnz());
  for (int64_t e = 0; e < b.nnz(); ++e) {
    EXPECT_DOUBLE_EQ(b.value(e), 1.0);
    for (int m = 0; m < 3; ++m) EXPECT_EQ(b.index(e, m), t.index(e, m));
  }
}

TEST(SparseTensorCollapse, SumsAcrossMode) {
  Result<SparseTensor> t = SparseTensor::Create3(3, 4, 5);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({0, 1, 2}, 1.0));
  ASSERT_OK(t->Append({0, 3, 2}, 2.0));  // same (i, k) after collapsing j
  ASSERT_OK(t->Append({2, 0, 0}, 5.0));
  t->Canonicalize();
  Result<SparseTensor> c = t->CollapseMode(1);
  ASSERT_OK(c.status());
  EXPECT_EQ(c->order(), 2);
  EXPECT_EQ(c->dims(), (std::vector<int64_t>{3, 5}));
  EXPECT_DOUBLE_EQ(c->Get({0, 2}), 3.0);
  EXPECT_DOUBLE_EQ(c->Get({2, 0}), 5.0);
  EXPECT_EQ(c->nnz(), 2);
}

TEST(SparseTensorCollapse, RejectsBadMode) {
  Result<SparseTensor> t = SparseTensor::Create3(3, 3, 3);
  ASSERT_OK(t.status());
  EXPECT_TRUE(t->CollapseMode(3).status().IsInvalidArgument());
  EXPECT_TRUE(t->CollapseMode(-1).status().IsInvalidArgument());
  Result<SparseTensor> v = SparseTensor::Create({5});
  ASSERT_OK(v.status());
  EXPECT_TRUE(v->CollapseMode(0).status().IsFailedPrecondition());
}

TEST(SparseTensorMisc, DebugStringAndValidateAndIdentical) {
  Rng rng(5);
  SparseTensor t = testing::RandomSparseTensor({7, 6, 5}, 20, &rng);
  EXPECT_OK(t.Validate());
  EXPECT_NE(t.DebugString().find("3-way 7x6x5"), std::string::npos);
  SparseTensor copy = t;
  EXPECT_TRUE(copy.IdenticalTo(t));
  copy.set_value(0, copy.value(0) + 1.0);
  EXPECT_FALSE(copy.IdenticalTo(t));
  EXPECT_GT(t.ApproxBytes(), 0u);
}

TEST(SparseTensorNumCells, SaturatesInsteadOfOverflowing) {
  Result<SparseTensor> t =
      SparseTensor::Create({1000000000, 1000000000, 1000000000});
  ASSERT_OK(t.status());
  EXPECT_EQ(t->NumCells(), std::numeric_limits<int64_t>::max());
  EXPECT_GE(t->Density(), 0.0);
}

}  // namespace
}  // namespace haten2
