// Tests for the contraction-strategy layer: strategy selection via
// ClusterConfig::contraction, bit-identity of all four ALS drivers between
// the dataflow and in-core paths on superdiagonal tensors, the v7 stats
// surface (per-node strategy, incore/dataflow node counters), and the
// ContractCache content-fingerprint regression (in-place tensor rebuilds
// must invalidate, not alias).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/contract.h"
#include "core/missing_values.h"
#include "core/nonnegative_tucker.h"
#include "core/parafac.h"
#include "core/tucker.h"
#include "core/variant.h"
#include "mapreduce/engine.h"
#include "mapreduce/stats_json.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

// Every fiber and slice of a superdiagonal tensor holds exactly one nonzero,
// so the in-core kernels' accumulation-order contract guarantees
// bit-identical contraction values to the dataflow merges (see
// linalg/sparse_kernels.h). With SliceBlocks' canonical ascending row
// insertion, every downstream float sum is then bit-identical too.
SparseTensor SuperdiagonalTensor(int64_t n, int order, Rng* rng) {
  std::vector<int64_t> dims(static_cast<size_t>(order), n);
  Result<SparseTensor> r = SparseTensor::Create(dims);
  HATEN2_CHECK(r.ok()) << r.status().ToString();
  SparseTensor t = std::move(r).value();
  std::vector<int64_t> idx(static_cast<size_t>(order));
  for (int64_t i = 0; i < n; ++i) {
    for (auto& c : idx) c = i;
    t.AppendUnchecked(idx.data(), rng->Uniform(0.5, 1.5));
  }
  t.Canonicalize();
  return t;
}

ClusterConfig ConfigWithStrategy(const std::string& strategy) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.contraction = strategy;
  return config;
}

// ---------------------------------------------------------------------------
// Strategy selection.
// ---------------------------------------------------------------------------

TEST(ContractionSelection, ForcedStrategiesAreRecordedInPipeline) {
  Rng rng(31);
  SparseTensor x = SuperdiagonalTensor(8, 3, &rng);
  std::vector<DenseMatrix> owned;
  std::vector<const DenseMatrix*> factors;
  for (int m = 0; m < 3; ++m) {
    owned.push_back(DenseMatrix::RandomNormal(8, 2, &rng));
  }
  for (auto& f : owned) factors.push_back(&f);

  Engine dataflow(ConfigWithStrategy("dataflow"));
  ASSERT_OK(MultiModeContract(&dataflow, x, factors, 0, MergeKind::kPairwise,
                              Variant::kDri)
                .status());
  EXPECT_GT(dataflow.pipeline().DataflowNodes(), 0);
  EXPECT_EQ(dataflow.pipeline().IncoreNodes(), 0);

  Engine incore(ConfigWithStrategy("incore"));
  ASSERT_OK(MultiModeContract(&incore, x, factors, 0, MergeKind::kPairwise,
                              Variant::kDri)
                .status());
  EXPECT_EQ(incore.pipeline().IncoreNodes(), 1);
  EXPECT_EQ(incore.pipeline().DataflowNodes(), 0);
  // The in-core path runs no MapReduce jobs at all.
  EXPECT_EQ(incore.pipeline().jobs.size(), 0u);
}

TEST(ContractionSelection, AutoFollowsTheMemoryBudget) {
  Rng rng(32);
  SparseTensor x = SuperdiagonalTensor(8, 3, &rng);
  std::vector<DenseMatrix> owned;
  std::vector<const DenseMatrix*> factors;
  for (int m = 0; m < 3; ++m) {
    owned.push_back(DenseMatrix::RandomNormal(8, 2, &rng));
  }
  for (auto& f : owned) factors.push_back(&f);

  // 8 nonzeros fit any sane budget: auto must take the in-core path.
  Engine roomy(ConfigWithStrategy("auto"));
  ASSERT_OK(MultiModeContract(&roomy, x, factors, 0, MergeKind::kPairwise,
                              Variant::kDri)
                .status());
  EXPECT_EQ(roomy.pipeline().IncoreNodes(), 1);
  EXPECT_EQ(roomy.pipeline().DataflowNodes(), 0);

  // An (artificially) exhausted budget must fall back to dataflow. The
  // estimate includes a fixed overhead of a few KiB, so 1 MB with a tiny
  // tensor still fits — stress via nnz instead of shrinking the budget
  // below its validated floor.
  ClusterConfig tight = ConfigWithStrategy("auto");
  tight.incore_memory_mb = 1;
  Engine tight_engine(tight);
  SparseTensor big = RandomSparseTensor({64, 64, 64}, 40000, &rng);
  std::vector<DenseMatrix> big_owned;
  std::vector<const DenseMatrix*> big_factors;
  for (int m = 0; m < 3; ++m) {
    big_owned.push_back(DenseMatrix::RandomNormal(64, 2, &rng));
  }
  for (auto& f : big_owned) big_factors.push_back(&f);
  ASSERT_OK(MultiModeContract(&tight_engine, big, big_factors, 0,
                              MergeKind::kPairwise, Variant::kDri)
                .status());
  EXPECT_EQ(tight_engine.pipeline().IncoreNodes(), 0);
  EXPECT_GT(tight_engine.pipeline().DataflowNodes(), 0);
}

TEST(ContractionSelection, InCoreMatchesDataflowValuesOnRandomTensors) {
  // On general tensors the two paths agree to rounding (the bit-identity
  // contract only covers singleton fibers); pin them together within 1e-9.
  Rng rng(33);
  SparseTensor x = RandomSparseTensor({9, 7, 8}, 60, &rng);
  std::vector<DenseMatrix> owned;
  std::vector<const DenseMatrix*> factors;
  for (int m = 0; m < 3; ++m) {
    owned.push_back(DenseMatrix::RandomNormal(x.dim(m), 3, &rng));
  }
  for (auto& f : owned) factors.push_back(&f);

  for (MergeKind kind : {MergeKind::kPairwise, MergeKind::kCross}) {
    for (int free_mode = 0; free_mode < 3; ++free_mode) {
      Engine dataflow(ConfigWithStrategy("dataflow"));
      Engine incore(ConfigWithStrategy("incore"));
      Result<SliceBlocks> want = MultiModeContract(
          &dataflow, x, factors, free_mode, kind, Variant::kDri);
      Result<SliceBlocks> got = MultiModeContract(&incore, x, factors,
                                                  free_mode, kind,
                                                  Variant::kDri);
      ASSERT_OK(want.status());
      ASSERT_OK(got.status());
      EXPECT_LT(got->ToDenseMatrix().MaxAbsDiff(want->ToDenseMatrix()), 1e-9)
          << "kind " << static_cast<int>(kind) << " mode " << free_mode;
    }
  }
}

// ---------------------------------------------------------------------------
// Driver bit-identity: dataflow vs incore vs auto, fixed seeds.
// ---------------------------------------------------------------------------

Haten2Options FixedSeedOptions() {
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  options.seed = 4711;
  return options;
}

TEST(ContractionBitIdentity, ParafacAls) {
  Rng rng(8101);
  SparseTensor x = SuperdiagonalTensor(12, 3, &rng);
  Haten2Options options = FixedSeedOptions();

  Engine reference(ConfigWithStrategy("dataflow"));
  Result<KruskalModel> want = Haten2ParafacAls(&reference, x, 3, options);
  ASSERT_OK(want.status());

  for (const char* strategy : {"incore", "auto"}) {
    Engine engine(ConfigWithStrategy(strategy));
    Result<KruskalModel> got = Haten2ParafacAls(&engine, x, 3, options);
    ASSERT_OK(got.status());
    EXPECT_EQ(got->lambda, want->lambda) << strategy;
    EXPECT_EQ(got->fit_history, want->fit_history) << strategy;
    EXPECT_DOUBLE_EQ(got->fit, want->fit) << strategy;
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0)
          << strategy << " mode " << m;
    }
    EXPECT_GT(engine.pipeline().IncoreNodes(), 0) << strategy;
  }
}

TEST(ContractionBitIdentity, TuckerAls) {
  Rng rng(8102);
  SparseTensor x = SuperdiagonalTensor(10, 3, &rng);
  Haten2Options options = FixedSeedOptions();
  options.max_iterations = 2;

  Engine reference(ConfigWithStrategy("dataflow"));
  Result<TuckerModel> want =
      Haten2TuckerAls(&reference, x, {3, 3, 2}, options);
  ASSERT_OK(want.status());

  for (const char* strategy : {"incore", "auto"}) {
    Engine engine(ConfigWithStrategy(strategy));
    Result<TuckerModel> got = Haten2TuckerAls(&engine, x, {3, 3, 2}, options);
    ASSERT_OK(got.status());
    EXPECT_DOUBLE_EQ(got->fit, want->fit) << strategy;
    EXPECT_DOUBLE_EQ(got->core.MaxAbsDiff(want->core), 0.0) << strategy;
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0)
          << strategy << " mode " << m;
    }
    EXPECT_GT(engine.pipeline().IncoreNodes(), 0) << strategy;
  }
}

TEST(ContractionBitIdentity, NonnegativeTuckerAls) {
  Rng rng(8103);
  SparseTensor x = SuperdiagonalTensor(9, 3, &rng);
  Haten2Options options = FixedSeedOptions();
  options.max_iterations = 2;

  Engine reference(ConfigWithStrategy("dataflow"));
  Result<TuckerModel> want =
      Haten2NonnegativeTuckerAls(&reference, x, {2, 2, 2}, options);
  ASSERT_OK(want.status());

  for (const char* strategy : {"incore", "auto"}) {
    Engine engine(ConfigWithStrategy(strategy));
    Result<TuckerModel> got =
        Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 2}, options);
    ASSERT_OK(got.status());
    EXPECT_DOUBLE_EQ(got->fit, want->fit) << strategy;
    EXPECT_DOUBLE_EQ(got->core.MaxAbsDiff(want->core), 0.0) << strategy;
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0)
          << strategy << " mode " << m;
    }
    EXPECT_GT(engine.pipeline().IncoreNodes(), 0) << strategy;
  }
}

TEST(ContractionBitIdentity, ParafacMissingValues) {
  Rng rng(8104);
  SparseTensor x = SuperdiagonalTensor(8, 3, &rng);
  // Observe exactly the superdiagonal, so the EM residual stays
  // superdiagonal (one nonzero per fiber) across iterations.
  Result<SparseTensor> mask_r = SparseTensor::Create(x.dims());
  ASSERT_OK(mask_r.status());
  SparseTensor mask = std::move(mask_r).value();
  for (int64_t e = 0; e < x.nnz(); ++e) {
    int64_t idx[3] = {x.index(e, 0), x.index(e, 1), x.index(e, 2)};
    mask.AppendUnchecked(idx, 1.0);
  }
  mask.Canonicalize();

  MissingValueOptions options;
  options.em_iterations = 2;
  options.em_tolerance = 0.0;
  options.base.max_iterations = 1;
  options.base.tolerance = 0.0;
  options.base.seed = 4711;

  Engine reference(ConfigWithStrategy("dataflow"));
  Result<MissingValueModel> want =
      Haten2ParafacMissing(&reference, x, mask, 2, options);
  ASSERT_OK(want.status());

  for (const char* strategy : {"incore", "auto"}) {
    Engine engine(ConfigWithStrategy(strategy));
    Result<MissingValueModel> got =
        Haten2ParafacMissing(&engine, x, mask, 2, options);
    ASSERT_OK(got.status());
    EXPECT_DOUBLE_EQ(got->observed_fit, want->observed_fit) << strategy;
    EXPECT_EQ(got->observed_fit_history, want->observed_fit_history)
        << strategy;
    EXPECT_EQ(got->model.lambda, want->model.lambda) << strategy;
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_DOUBLE_EQ(
          got->model.factors[m].MaxAbsDiff(want->model.factors[m]), 0.0)
          << strategy << " mode " << m;
    }
    EXPECT_GT(engine.pipeline().IncoreNodes(), 0) << strategy;
  }
}

// ---------------------------------------------------------------------------
// haten2-stats-v9 surface.
// ---------------------------------------------------------------------------

TEST(ContractionStats, V7RecordsStrategyAndTimings) {
  Rng rng(8105);
  SparseTensor x = SuperdiagonalTensor(8, 3, &rng);
  Haten2Options options = FixedSeedOptions();
  options.max_iterations = 1;

  Engine engine(ConfigWithStrategy("incore"));
  ASSERT_OK(Haten2ParafacAls(&engine, x, 2, options).status());

  const PipelineStats& pipeline = engine.pipeline();
  EXPECT_GT(pipeline.IncoreNodes(), 0);
  EXPECT_EQ(pipeline.DataflowNodes(), 0);

  JsonWriter w;
  PipelineStatsToJson(pipeline, /*cost=*/nullptr, &w);
  std::string json = w.str();
  EXPECT_NE(json.find("\"incore_nodes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dataflow_nodes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"contraction_strategy\":\"incore\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"layout_build_seconds\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"evaluate_seconds\""), std::string::npos) << json;

  // The dataflow path records its strategy but no layout timings.
  Engine dataflow(ConfigWithStrategy("dataflow"));
  ASSERT_OK(Haten2ParafacAls(&dataflow, x, 2, options).status());
  JsonWriter w2;
  PipelineStatsToJson(dataflow.pipeline(), /*cost=*/nullptr, &w2);
  std::string json2 = w2.str();
  EXPECT_NE(json2.find("\"contraction_strategy\":\"dataflow\""),
            std::string::npos)
      << json2;
  EXPECT_EQ(json2.find("\"layout_build_seconds\""), std::string::npos)
      << json2;
}

// ---------------------------------------------------------------------------
// ContractCache fingerprint keying (the aliasing-hazard regression).
// ---------------------------------------------------------------------------

TEST(ContractCacheFingerprint, InPlaceRebuildInvalidatesRecords) {
  Rng rng(8106);
  SparseTensor x = RandomSparseTensor({6, 5, 4}, 20, &rng);

  ContractCache cache;
  auto first = cache.Records(/*engine=*/nullptr, x);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
  auto again = cache.Records(/*engine=*/nullptr, x);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(again.get(), first.get());

  // Rebuild the tensor *in place*: same object, same address, same nnz,
  // different content. The old address+nnz key aliased this to a hit and
  // served stale records; the fingerprint must miss and re-decode.
  double old_value = x.value(0);
  x.set_value(0, old_value + 1.0);
  auto rebuilt = cache.Records(/*engine=*/nullptr, x);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_NE(rebuilt.get(), first.get());
  EXPECT_DOUBLE_EQ((*rebuilt)[0].value, old_value + 1.0);
}

TEST(ContractCacheFingerprint, LayoutCacheHitsPerFreeModeAndInvalidates) {
  Rng rng(8107);
  SparseTensor x = RandomSparseTensor({6, 5, 4}, 20, &rng);

  ContractCache cache;
  Result<std::shared_ptr<const CsfLayout>> l0 = cache.Layout(x, 0);
  ASSERT_OK(l0.status());
  EXPECT_EQ(cache.layout_misses(), 1);
  Result<std::shared_ptr<const CsfLayout>> l0_again = cache.Layout(x, 0);
  ASSERT_OK(l0_again.status());
  EXPECT_EQ(cache.layout_hits(), 1);
  EXPECT_EQ(l0_again->get(), l0->get());

  // A different free mode is a distinct layout: miss, not alias.
  Result<std::shared_ptr<const CsfLayout>> l1 = cache.Layout(x, 1);
  ASSERT_OK(l1.status());
  EXPECT_EQ(cache.layout_misses(), 2);
  EXPECT_NE(l1->get(), l0->get());

  // In-place rebuild drops *all* cached layouts (and records).
  x.set_value(0, x.value(0) * 2.0);
  Result<std::shared_ptr<const CsfLayout>> l0_rebuilt = cache.Layout(x, 0);
  ASSERT_OK(l0_rebuilt.status());
  EXPECT_EQ(cache.layout_misses(), 3);
  EXPECT_NE(l0_rebuilt->get(), l0->get());

  EXPECT_TRUE(cache.Layout(x, kMaxMrOrder).status().IsInvalidArgument());
}

TEST(ContractCacheFingerprint, DistinctTensorsDoNotAlias) {
  Rng rng(8108);
  SparseTensor a = RandomSparseTensor({6, 5, 4}, 20, &rng);
  SparseTensor b = RandomSparseTensor({6, 5, 4}, 20, &rng);

  ContractCache cache;
  auto ra = cache.Records(/*engine=*/nullptr, a);
  auto rb = cache.Records(/*engine=*/nullptr, b);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_NE(ra.get(), rb.get());
}

}  // namespace
}  // namespace haten2
