// Tests for the HaTen2 bottleneck operation (MultiModeContract): every
// variant, for both merge kinds, must agree with the direct in-memory
// reference computation — the content of Lemmas 1 and 2.

#include "core/contract.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/variant.h"
#include "linalg/linalg.h"
#include "mapreduce/engine.h"
#include "tensor/dense_tensor.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

constexpr double kTol = 1e-9;

// Reference Y ₍free₎ for the Tucker contraction via dense ops.
DenseMatrix ReferenceCross(const SparseTensor& x,
                           const std::vector<const DenseMatrix*>& factors,
                           int free_mode) {
  SparseTensor cur = x;
  for (int m = 0; m < x.order(); ++m) {
    if (m == free_mode) continue;
    Result<SparseTensor> r = TtmTransposed(cur, *factors[m], m);
    HATEN2_CHECK(r.ok()) << r.status().ToString();
    cur = std::move(r).value();
  }
  return DenseTensor::FromSparse(cur).Unfold(free_mode);
}

// Reference MTTKRP for the PARAFAC contraction.
DenseMatrix ReferencePairwise(const SparseTensor& x,
                              const std::vector<const DenseMatrix*>& factors,
                              int free_mode) {
  Result<DenseMatrix> r = Mttkrp(x, factors, free_mode);
  HATEN2_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

struct Case {
  std::vector<int64_t> dims;
  std::vector<int64_t> cols;  // factor columns per mode (cross)
  int64_t nnz;
  int free_mode;
};

class ContractVariantTest
    : public ::testing::TestWithParam<std::tuple<Variant, int>> {};

Case CaseByIndex(int i) {
  switch (i) {
    case 0:
      return {{7, 5, 6}, {2, 3, 4}, 30, 0};
    case 1:
      return {{4, 9, 5}, {3, 2, 2}, 25, 1};
    case 2:
      return {{5, 6, 7}, {2, 2, 3}, 40, 2};
    case 3:
      return {{6, 8}, {3, 2}, 12, 0};  // order-2
    case 4:
      return {{4, 5, 3, 6}, {2, 2, 2, 2}, 35, 1};  // order-4
    case 5:
      return {{4, 3, 4, 3, 4}, {2, 2, 2, 2, 2}, 30, 2};  // order-5
    default:
      return {{3, 3, 3}, {2, 2, 2}, 9, 0};
  }
}

TEST_P(ContractVariantTest, CrossMatchesDirectComputation) {
  auto [variant, case_idx] = GetParam();
  Case c = CaseByIndex(case_idx);
  Rng rng(1234 + case_idx);
  SparseTensor x = RandomSparseTensor(c.dims, c.nnz, &rng);

  std::vector<DenseMatrix> owned;
  for (size_t m = 0; m < c.dims.size(); ++m) {
    owned.push_back(DenseMatrix::RandomNormal(c.dims[m], c.cols[m], &rng));
  }
  std::vector<const DenseMatrix*> factors;
  for (auto& f : owned) factors.push_back(&f);

  Engine engine(ClusterConfig::ForTesting());
  Result<SliceBlocks> y = MultiModeContract(&engine, x, factors, c.free_mode,
                                            MergeKind::kCross, variant);
  ASSERT_OK(y.status());
  DenseMatrix got = y->ToDenseMatrix();
  DenseMatrix want = ReferenceCross(x, factors, c.free_mode);
  ASSERT_TRUE(got.SameShape(want))
      << got.rows() << "x" << got.cols() << " vs " << want.rows() << "x"
      << want.cols();
  EXPECT_LT(got.MaxAbsDiff(want), kTol);
}

TEST_P(ContractVariantTest, PairwiseMatchesMttkrp) {
  auto [variant, case_idx] = GetParam();
  Case c = CaseByIndex(case_idx);
  Rng rng(987 + case_idx);
  SparseTensor x = RandomSparseTensor(c.dims, c.nnz, &rng);

  const int64_t rank = 3;
  std::vector<DenseMatrix> owned;
  for (size_t m = 0; m < c.dims.size(); ++m) {
    owned.push_back(DenseMatrix::RandomNormal(c.dims[m], rank, &rng));
  }
  std::vector<const DenseMatrix*> factors;
  for (auto& f : owned) factors.push_back(&f);

  Engine engine(ClusterConfig::ForTesting());
  Result<SliceBlocks> y = MultiModeContract(&engine, x, factors, c.free_mode,
                                            MergeKind::kPairwise, variant);
  ASSERT_OK(y.status());
  DenseMatrix got = y->ToDenseMatrix();
  DenseMatrix want = ReferencePairwise(x, factors, c.free_mode);
  ASSERT_TRUE(got.SameShape(want));
  EXPECT_LT(got.MaxAbsDiff(want), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllCases, ContractVariantTest,
    ::testing::Combine(::testing::Values(Variant::kNaive, Variant::kDnn,
                                         Variant::kDrn, Variant::kDri),
                       ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<std::tuple<Variant, int>>& info) {
      return std::string(VariantName(std::get<0>(info.param)).substr(7)) +
             "_case" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Job-count accounting: the number of MapReduce jobs per evaluation must
// match Tables III and IV.
// ---------------------------------------------------------------------------

TEST(ContractJobCounts, TuckerMatchesTableIII) {
  Rng rng(5);
  const int64_t q = 3;
  const int64_t r = 4;
  SparseTensor x = RandomSparseTensor({6, 5, 4}, 20, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(5, q, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(4, r, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};

  struct Want {
    Variant v;
    int64_t jobs;
  };
  const Want wants[] = {
      {Variant::kNaive, q + r},
      {Variant::kDnn, q + r + 2},
      {Variant::kDrn, q + r + 1},
      {Variant::kDri, 2},
  };
  for (const Want& w : wants) {
    Engine engine(ClusterConfig::ForTesting());
    ASSERT_OK(MultiModeContract(&engine, x, factors, 0, MergeKind::kCross,
                                w.v)
                  .status());
    EXPECT_EQ(engine.pipeline().NumJobs(), w.jobs)
        << VariantName(w.v);
    PredictedCost predicted = PredictTuckerCost(w.v, x.nnz(), 6, 5, 4, q, r);
    EXPECT_EQ(predicted.total_jobs, w.jobs) << VariantName(w.v);
  }
}

TEST(ContractJobCounts, ParafacMatchesTableIV) {
  Rng rng(6);
  const int64_t rank = 3;
  SparseTensor x = RandomSparseTensor({6, 5, 4}, 20, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(5, rank, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(4, rank, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};

  struct Want {
    Variant v;
    int64_t jobs;
  };
  const Want wants[] = {
      {Variant::kNaive, 2 * rank},
      {Variant::kDnn, 4 * rank},
      {Variant::kDrn, 2 * rank + 1},
      {Variant::kDri, 2},
  };
  for (const Want& w : wants) {
    Engine engine(ClusterConfig::ForTesting());
    ASSERT_OK(MultiModeContract(&engine, x, factors, 0, MergeKind::kPairwise,
                                w.v)
                  .status());
    EXPECT_EQ(engine.pipeline().NumJobs(), w.jobs) << VariantName(w.v);
    PredictedCost predicted = PredictParafacCost(w.v, x.nnz(), 6, 5, 4, rank);
    EXPECT_EQ(predicted.total_jobs, w.jobs) << VariantName(w.v);
  }
}

// ---------------------------------------------------------------------------
// o.o.m. behaviour: a tiny shuffle budget must kill the naive variant (whose
// broadcast explodes) while DRI still finishes.
// ---------------------------------------------------------------------------

TEST(ContractMemory, NaiveExplodesDriSurvives) {
  Rng rng(7);
  SparseTensor x = RandomSparseTensor({40, 40, 40}, 100, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(40, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(40, 3, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};

  ClusterConfig config = ClusterConfig::ForTesting();
  // Enough for nnz·(Q+R) Hadamard records but far below the naive
  // broadcast's 40·40·40-record explosion.
  config.total_shuffle_memory_bytes = 256 * 1024;

  {
    Engine engine(config);
    Result<SliceBlocks> y = MultiModeContract(
        &engine, x, factors, 0, MergeKind::kCross, Variant::kNaive);
    ASSERT_FALSE(y.ok());
    EXPECT_TRUE(y.status().IsResourceExhausted()) << y.status().ToString();
  }
  {
    Engine engine(config);
    Result<SliceBlocks> y = MultiModeContract(
        &engine, x, factors, 0, MergeKind::kCross, Variant::kDri);
    ASSERT_OK(y.status());
  }
}

// ---------------------------------------------------------------------------
// Input validation.
// ---------------------------------------------------------------------------

TEST(ContractValidation, RejectsBadArguments) {
  Rng rng(8);
  SparseTensor x = RandomSparseTensor({4, 4, 4}, 10, &rng);
  DenseMatrix f = DenseMatrix::RandomNormal(4, 2, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &f, &f};
  Engine engine(ClusterConfig::ForTesting());

  EXPECT_TRUE(MultiModeContract(nullptr, x, factors, 0, MergeKind::kCross,
                                Variant::kDri)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MultiModeContract(&engine, x, factors, 3, MergeKind::kCross,
                                Variant::kDri)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MultiModeContract(&engine, x, {&f, &f}, 0, MergeKind::kCross,
                                Variant::kDri)
                  .status()
                  .IsInvalidArgument());
  // Null factor for a contracted mode.
  EXPECT_TRUE(MultiModeContract(&engine, x, {&f, nullptr, &f}, 0,
                                MergeKind::kCross, Variant::kDri)
                  .status()
                  .IsInvalidArgument());
  // Wrong row count.
  DenseMatrix bad = DenseMatrix::RandomNormal(5, 2, &rng);
  EXPECT_TRUE(MultiModeContract(&engine, x, {nullptr, &bad, &f}, 0,
                                MergeKind::kCross, Variant::kDri)
                  .status()
                  .IsInvalidArgument());
  // Pairwise rank mismatch.
  DenseMatrix r3 = DenseMatrix::RandomNormal(4, 3, &rng);
  EXPECT_TRUE(MultiModeContract(&engine, x, {nullptr, &f, &r3}, 0,
                                MergeKind::kPairwise, Variant::kDri)
                  .status()
                  .IsInvalidArgument());
  // Non-canonical tensor.
  Result<SparseTensor> nc = SparseTensor::Create3(4, 4, 4);
  ASSERT_OK(nc.status());
  ASSERT_OK(nc->Append({0, 0, 0}, 1.0));
  EXPECT_TRUE(MultiModeContract(&engine, *nc, factors, 0, MergeKind::kCross,
                                Variant::kDri)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace haten2
