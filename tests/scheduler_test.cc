// Tests for the dataflow plan layer: Plan construction (DAG-by-construction
// and builder poisoning), PlanScheduler ordering and failure propagation,
// plan statistics (observed concurrency, critical path vs total work), and
// the iteration-invariant input-scan cache counters.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/contract.h"
#include "mapreduce/engine.h"
#include "mapreduce/plan.h"
#include "mapreduce/scheduler.h"
#include "test_util.h"

namespace haten2 {
namespace {

using haten2::testing::RandomSparseTensor;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Appends `index` to `order` under `mu` and returns OK.
std::function<Status()> Recording(std::mutex* mu, std::vector<int>* order,
                                  int index, int sleep_ms = 0) {
  return [mu, order, index, sleep_ms]() -> Status {
    if (sleep_ms > 0) SleepMs(sleep_ms);
    std::lock_guard<std::mutex> lock(*mu);
    order->push_back(index);
    return Status::OK();
  };
}

TEST(Plan, AddJobReturnsIndicesAndKeepsNodes) {
  Plan plan("p");
  EXPECT_TRUE(plan.empty());
  int a = plan.AddJob("a", {}, [] { return Status::OK(); });
  int b = plan.AddJob("b", {a}, [] { return Status::OK(); });
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(plan.size(), 2);
  EXPECT_OK(plan.build_status());
  EXPECT_EQ(plan.nodes()[1].deps, std::vector<int>{0});
}

TEST(Plan, ForwardDependencyPoisonsBuild) {
  Plan plan("bad");
  int a = plan.AddJob("a", {1}, [] { return Status::OK(); });  // forward
  EXPECT_EQ(a, -1);
  EXPECT_FALSE(plan.build_status().ok());

  Engine engine(ClusterConfig::ForTesting());
  PlanScheduler scheduler(&engine);
  Status status = scheduler.Execute(plan);
  EXPECT_FALSE(status.ok());
  // Nothing ran and nothing was recorded.
  EXPECT_EQ(engine.PipelineSnapshot().plans.size(), 0u);
}

TEST(Plan, NegativeDependencyPoisonsBuild) {
  Plan plan("bad");
  plan.AddJob("a", {}, [] { return Status::OK(); });
  int b = plan.AddJob("b", {-1}, [] { return Status::OK(); });
  EXPECT_EQ(b, -1);
  EXPECT_FALSE(plan.build_status().ok());
}

TEST(Plan, AddProducerMovesValueIntoSlot) {
  Plan plan("producer");
  std::vector<int> slot;
  int a = plan.AddProducer<std::vector<int>>(
      "make", {}, []() -> Result<std::vector<int>> {
        return std::vector<int>{1, 2, 3};
      },
      &slot);
  plan.AddJob("check", {a}, [&slot]() -> Status {
    return slot.size() == 3 ? Status::OK()
                            : Status::Internal("slot not filled");
  });
  Engine engine(ClusterConfig::ForTesting());
  EXPECT_OK(PlanScheduler(&engine).Execute(plan));
  EXPECT_EQ(slot, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, EmptyPlanIsOkAndRecordsNothing) {
  Engine engine(ClusterConfig::ForTesting());
  Plan plan("empty");
  EXPECT_OK(PlanScheduler(&engine).Execute(plan));
  EXPECT_EQ(engine.PipelineSnapshot().plans.size(), 0u);
}

TEST(Scheduler, SerialCapExecutesInNodeIndexOrder) {
  Engine engine(ClusterConfig::ForTesting());
  std::mutex mu;
  std::vector<int> order;
  Plan plan("serial");
  // Independent nodes: only the cap-1 rule forces index order.
  for (int i = 0; i < 5; ++i) {
    plan.AddJob("n", {}, Recording(&mu, &order, i));
  }
  PlanScheduler scheduler(&engine, /*max_concurrent=*/1);
  ASSERT_OK(scheduler.Execute(plan));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanStats& stats = pipeline.plans[0];
  EXPECT_EQ(stats.name, "serial");
  EXPECT_EQ(stats.concurrency_limit, 1);
  EXPECT_EQ(stats.max_observed_concurrency, 1);
  for (const PlanNodeStats& node : stats.nodes) {
    EXPECT_EQ(node.status, "ok");
  }
}

TEST(Scheduler, ConcurrentRespectsDependencies) {
  Engine engine(ClusterConfig::ForTesting());
  std::mutex mu;
  std::vector<int> order;
  // Diamond: 0 -> {1, 2} -> 3. Whatever the interleaving of 1 and 2, node 0
  // runs first and node 3 last.
  Plan plan("diamond");
  int a = plan.AddJob("src", {}, Recording(&mu, &order, 0));
  int b = plan.AddJob("left", {a}, Recording(&mu, &order, 1, /*sleep=*/5));
  int c = plan.AddJob("right", {a}, Recording(&mu, &order, 2, /*sleep=*/5));
  plan.AddJob("sink", {b, c}, Recording(&mu, &order, 3));
  PlanScheduler scheduler(&engine, /*max_concurrent=*/4);
  ASSERT_OK(scheduler.Execute(plan));
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(Scheduler, ObservedConcurrencyAndCriticalPath) {
  Engine engine(ClusterConfig::ForTesting());
  std::mutex mu;
  std::vector<int> order;
  // Two independent 40 ms nodes plus a join: with cap 2 both run at once,
  // so the critical path (one branch + join) is strictly shorter than the
  // serialized node-seconds total.
  Plan plan("fork-join");
  int a = plan.AddJob("a", {}, Recording(&mu, &order, 0, /*sleep=*/40));
  int b = plan.AddJob("b", {}, Recording(&mu, &order, 1, /*sleep=*/40));
  plan.AddJob("join", {a, b}, Recording(&mu, &order, 2, /*sleep=*/10));
  PlanScheduler scheduler(&engine, /*max_concurrent=*/2);
  ASSERT_OK(scheduler.Execute(plan));

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanStats& stats = pipeline.plans[0];
  EXPECT_EQ(stats.concurrency_limit, 2);
  EXPECT_EQ(stats.max_observed_concurrency, 2);
  EXPECT_GT(stats.total_node_seconds, 0.0);
  EXPECT_LT(stats.critical_path_seconds, stats.total_node_seconds);
  // No node retried, so the backoff-inclusive path equals the pure one.
  EXPECT_EQ(stats.total_node_retries, 0);
  EXPECT_EQ(stats.critical_path_with_backoff_seconds,
            stats.critical_path_seconds);
  // Pipeline-level aggregates see the same numbers.
  EXPECT_EQ(pipeline.MaxScheduledConcurrency(), 2);
  EXPECT_LT(pipeline.TotalCriticalPathSeconds(),
            pipeline.TotalPlanNodeSeconds());
  EXPECT_EQ(pipeline.TotalCriticalPathWithBackoffSeconds(),
            pipeline.TotalCriticalPathSeconds());
}

TEST(Scheduler, CriticalPathWithBackoffChargesRetriedNodes) {
  // A node that fails transiently once serves one simulated backoff wait
  // before succeeding. The pure critical path reports only executor time
  // (what the scheduler actually slept); the backoff-inclusive variant adds
  // the wait, reconciling with CostModel::SimulatePipeline's serial charge.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.max_node_attempts = 3;
  config.node_backoff_base_seconds = 5.0;
  config.node_backoff_cap_seconds = 60.0;
  Engine engine(config);
  Plan plan("retrying");
  int tries = 0;
  plan.AddJob("flaky", {}, [&tries]() -> Status {
    return (++tries < 2) ? Status::IOError("transient") : Status::OK();
  });
  ASSERT_OK(PlanScheduler(&engine).Execute(plan));
  EXPECT_EQ(tries, 2);

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanStats& stats = pipeline.plans[0];
  EXPECT_EQ(stats.total_node_retries, 1);
  EXPECT_EQ(stats.total_backoff_seconds, 5.0);
  EXPECT_EQ(stats.critical_path_with_backoff_seconds,
            stats.critical_path_seconds + 5.0);
  EXPECT_EQ(pipeline.TotalCriticalPathWithBackoffSeconds(),
            pipeline.TotalCriticalPathSeconds() + 5.0);
}

TEST(Scheduler, SerialFailureSkipsEverythingAfter) {
  Engine engine(ClusterConfig::ForTesting());
  std::mutex mu;
  std::vector<int> order;
  Plan plan("failing");
  plan.AddJob("ok", {}, Recording(&mu, &order, 0));
  plan.AddJob("boom", {}, [] { return Status::Internal("boom"); });
  plan.AddJob("dependent", {1}, Recording(&mu, &order, 2));
  plan.AddJob("independent", {}, Recording(&mu, &order, 3));
  Status status = PlanScheduler(&engine, 1).Execute(plan);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("boom"), std::string::npos);
  // Nothing after the failure started, dependent or not.
  EXPECT_EQ(order, std::vector<int>{0});

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanStats& stats = pipeline.plans[0];
  EXPECT_TRUE(stats.failed());
  EXPECT_EQ(stats.nodes[0].status, "ok");
  EXPECT_EQ(stats.nodes[1].status, "failed");
  EXPECT_EQ(stats.nodes[2].status, "skipped");
  EXPECT_EQ(stats.nodes[3].status, "skipped");
}

TEST(Scheduler, ConcurrentFailureLetsRunningNodesFinish) {
  Engine engine(ClusterConfig::ForTesting());
  std::mutex mu;
  std::vector<int> order;
  Plan plan("failing-concurrent");
  // Node 0 is mid-flight when node 1 fails; it must still complete "ok".
  plan.AddJob("slow", {}, Recording(&mu, &order, 0, /*sleep=*/30));
  plan.AddJob("boom", {}, [] { return Status::Internal("boom"); });
  plan.AddJob("after-slow", {0}, Recording(&mu, &order, 2));
  Status status = PlanScheduler(&engine, 2).Execute(plan);
  EXPECT_FALSE(status.ok());

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanStats& stats = pipeline.plans[0];
  EXPECT_EQ(stats.nodes[0].status, "ok");
  EXPECT_EQ(stats.nodes[1].status, "failed");
  EXPECT_EQ(stats.nodes[2].status, "skipped");
  EXPECT_EQ(order, std::vector<int>{0});
}

TEST(Scheduler, EngineJobsAreTaggedWithPlanAndNode) {
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  auto run_job = [&engine](const std::string& name) -> Status {
    return engine
        .Run<int64_t, int64_t, int64_t, int64_t>(
            name, 100,
            [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
              em->Emit(i % 7, 1);
            },
            [](const int64_t& k, std::vector<int64_t>& vs,
               OutputEmitter<int64_t, int64_t>* out) {
              int64_t sum = 0;
              for (int64_t v : vs) sum += v;
              out->Emit(k, sum);
            })
        .status();
  };
  Plan plan("two-jobs");
  plan.AddJob("left", {}, [&] { return run_job("left"); });
  plan.AddJob("right", {}, [&] { return run_job("right"); });
  ASSERT_OK(PlanScheduler(&engine, 2).Execute(plan));

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanStats& stats = pipeline.plans[0];
  ASSERT_EQ(pipeline.jobs.size(), 2u);
  for (const JobStats& job : pipeline.jobs) {
    EXPECT_EQ(job.plan_id, stats.plan_id);
  }
  // Each node owns exactly the job it issued.
  ASSERT_EQ(stats.nodes[0].job_ids.size(), 1u);
  ASSERT_EQ(stats.nodes[1].job_ids.size(), 1u);
  EXPECT_NE(stats.nodes[0].job_ids[0], stats.nodes[1].job_ids[0]);
  // A job run outside any plan stays untagged.
  ASSERT_OK(run_job("direct"));
  pipeline = engine.PipelineSnapshot();
  EXPECT_EQ(pipeline.jobs.back().plan_id, -1);
}

TEST(Scheduler, PipelineSinceFiltersByJobIdWatermark) {
  Engine engine(ClusterConfig::ForTesting());
  auto run_job = [&engine](const std::string& name) -> Status {
    return engine
        .Run<int64_t, int64_t, int64_t, int64_t>(
            name, 10,
            [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
              em->Emit(i, 1);
            },
            [](const int64_t& k, std::vector<int64_t>& vs,
               OutputEmitter<int64_t, int64_t>* out) { out->Emit(k, 1); })
        .status();
  };
  ASSERT_OK(run_job("before"));
  const int64_t watermark = engine.NextJobId();
  ASSERT_OK(run_job("after"));
  PipelineStats since = engine.PipelineSince(watermark);
  ASSERT_EQ(since.jobs.size(), 1u);
  EXPECT_EQ(since.jobs[0].name, "after");
  EXPECT_GE(since.jobs[0].job_id, watermark);
}

TEST(Scheduler, InvariantCacheCountsHitsAndMisses) {
  Rng rng(4711);
  SparseTensor x = RandomSparseTensor({12, 10, 8}, 150, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(10, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(8, 3, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  Engine engine(ClusterConfig::ForTesting());
  ContractCache cache;
  // DNN decodes the input tensor once per evaluation; the second evaluation
  // of the same tensor must reuse the decoded records.
  ASSERT_OK(MultiModeContract(&engine, x, factors, 0, MergeKind::kCross,
                              Variant::kDnn, &cache)
                .status());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
  ASSERT_OK(MultiModeContract(&engine, x, factors, 0, MergeKind::kCross,
                              Variant::kDnn, &cache)
                .status());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);

  PipelineStats pipeline = engine.PipelineSnapshot();
  EXPECT_EQ(pipeline.invariant_cache_misses, 1);
  EXPECT_EQ(pipeline.invariant_cache_hits, 1);

  // A different tensor through the same cache re-scans.
  SparseTensor y = RandomSparseTensor({12, 10, 8}, 170, &rng);
  ASSERT_OK(MultiModeContract(&engine, y, factors, 0, MergeKind::kCross,
                              Variant::kDnn, &cache)
                .status());
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(Scheduler, ContractIsIdenticalSerialAndConcurrent) {
  Rng rng(99);
  SparseTensor x = RandomSparseTensor({20, 16, 12}, 400, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(16, 4, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(12, 4, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  for (Variant v : kAllVariants) {
    for (MergeKind kind : {MergeKind::kCross, MergeKind::kPairwise}) {
      ClusterConfig serial_config = ClusterConfig::ForTesting();
      serial_config.max_concurrent_jobs = 1;
      Engine serial_engine(serial_config);
      Result<SliceBlocks> want =
          MultiModeContract(&serial_engine, x, factors, 0, kind, v);
      ASSERT_OK(want.status());

      ClusterConfig conc_config = ClusterConfig::ForTesting();
      conc_config.max_concurrent_jobs = 4;
      Engine conc_engine(conc_config);
      Result<SliceBlocks> got =
          MultiModeContract(&conc_engine, x, factors, 0, kind, v);
      ASSERT_OK(got.status());

      // Bit-identical outputs regardless of the scheduling interleaving.
      ASSERT_EQ(want->rows.size(), got->rows.size());
      for (const auto& [slice, row] : want->rows) {
        auto it = got->rows.find(slice);
        ASSERT_NE(it, got->rows.end());
        ASSERT_EQ(row.size(), it->second.size());
        for (size_t i = 0; i < row.size(); ++i) {
          EXPECT_EQ(row[i], it->second[i]);
        }
      }
      // Same jobs either way — concurrency must not change paper counts.
      EXPECT_EQ(serial_engine.PipelineSnapshot().NumJobs(),
                conc_engine.PipelineSnapshot().NumJobs());
    }
  }
}

}  // namespace
}  // namespace haten2
