// Tests for the smaller core/mapreduce pieces: variant metadata (Table II),
// cost predictions, intermediate-record types and hashing, SliceBlocks
// conversions, and pipeline stats formatting.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/contract.h"
#include "core/gigatensor.h"
#include "linalg/linalg.h"
#include "core/records.h"
#include "core/variant.h"
#include "mapreduce/stats.h"
#include "test_util.h"

namespace haten2 {
namespace {

TEST(VariantMeta, NamesAndTraits) {
  EXPECT_EQ(VariantName(Variant::kNaive), "HaTen2-Naive");
  EXPECT_EQ(VariantName(Variant::kDnn), "HaTen2-DNN");
  EXPECT_EQ(VariantName(Variant::kDrn), "HaTen2-DRN");
  EXPECT_EQ(VariantName(Variant::kDri), "HaTen2-DRI");

  // Table II: each variant adds exactly one idea over the previous.
  EXPECT_FALSE(TraitsOf(Variant::kNaive).decouples_steps);
  EXPECT_TRUE(TraitsOf(Variant::kDnn).decouples_steps);
  EXPECT_FALSE(TraitsOf(Variant::kDnn).removes_dependencies);
  EXPECT_TRUE(TraitsOf(Variant::kDrn).removes_dependencies);
  EXPECT_FALSE(TraitsOf(Variant::kDrn).integrates_jobs);
  EXPECT_TRUE(TraitsOf(Variant::kDri).integrates_jobs);
  for (Variant v : kAllVariants) {
    EXPECT_TRUE(TraitsOf(v).distributed);
  }
}

TEST(VariantMeta, CostPredictionsMatchTableFormulas) {
  const int64_t nnz = 1000;
  const int64_t i = 50;
  const int64_t j = 60;
  const int64_t k = 70;
  const int64_t q = 5;
  const int64_t r = 7;
  EXPECT_EQ(PredictTuckerCost(Variant::kNaive, nnz, i, j, k, q, r)
                .max_intermediate_records,
            nnz + i * j * k);
  EXPECT_EQ(PredictTuckerCost(Variant::kDnn, nnz, i, j, k, q, r)
                .max_intermediate_records,
            nnz * q * r);
  EXPECT_EQ(PredictTuckerCost(Variant::kDrn, nnz, i, j, k, q, r)
                .max_intermediate_records,
            nnz * (q + r));
  EXPECT_EQ(PredictTuckerCost(Variant::kDri, nnz, i, j, k, q, r).total_jobs,
            2);
  EXPECT_EQ(PredictParafacCost(Variant::kDnn, nnz, i, j, k, r)
                .max_intermediate_records,
            nnz + j);
  EXPECT_EQ(PredictParafacCost(Variant::kDrn, nnz, i, j, k, r)
                .max_intermediate_records,
            2 * nnz * r);
  EXPECT_EQ(PredictParafacCost(Variant::kNaive, nnz, i, j, k, r).total_jobs,
            2 * r);
  EXPECT_EQ(PredictParafacCost(Variant::kDnn, nnz, i, j, k, r).total_jobs,
            4 * r);
  EXPECT_EQ(PredictParafacCost(Variant::kDrn, nnz, i, j, k, r).total_jobs,
            2 * r + 1);
  EXPECT_EQ(PredictParafacCost(Variant::kDri, nnz, i, j, k, r).total_jobs,
            2);
}

TEST(CoordRecord, EqualityAndHashing) {
  int64_t a_idx[3] = {1, 2, 3};
  int64_t b_idx[3] = {1, 2, 4};
  Coord a = Coord::FromIndex(a_idx, 3);
  Coord a2 = Coord::FromIndex(a_idx, 3);
  Coord b = Coord::FromIndex(b_idx, 3);
  EXPECT_EQ(a, a2);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(ShuffleHash<Coord>()(a), ShuffleHash<Coord>()(a2));
  EXPECT_NE(ShuffleHash<Coord>()(a), ShuffleHash<Coord>()(b));
  // Unused trailing slots are -1, so order-2 and order-3 coords with the
  // same prefix differ.
  Coord short_coord = Coord::FromIndex(a_idx, 2);
  EXPECT_FALSE(a == short_coord);
}

TEST(ShuffleHashing, SpreadsSequentialKeys) {
  // The identity hash would map sequential tensor indices to few reducers;
  // Mix64 must spread them.
  const int partitions = 16;
  std::vector<int> histogram(partitions, 0);
  for (int64_t i = 0; i < 16000; ++i) {
    ++histogram[static_cast<size_t>(ShuffleHash<int64_t>()(i) % partitions)];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 500);
    EXPECT_LT(count, 1500);
  }
  // Pair/tuple/string hashing all work and discriminate.
  using P = std::pair<int32_t, int64_t>;
  EXPECT_NE(ShuffleHash<P>()({0, 5}), ShuffleHash<P>()({1, 5}));
  using T = std::tuple<int64_t, int64_t, int64_t>;
  EXPECT_NE(ShuffleHash<T>()({1, 2, 3}), ShuffleHash<T>()({3, 2, 1}));
  EXPECT_NE(ShuffleHash<std::string>()("abc"),
            ShuffleHash<std::string>()("abd"));
}

TEST(SliceBlocksType, DenseConversionAndGram) {
  SliceBlocks blocks;
  blocks.free_dim = 4;
  blocks.block_dims = {2, 3};
  EXPECT_EQ(blocks.BlockSize(), 6);
  blocks.rows[1] = {1, 0, 0, 0, 0, 0};
  blocks.rows[3] = {0, 2, 0, 0, 0, 1};
  DenseMatrix dense = blocks.ToDenseMatrix();
  EXPECT_EQ(dense.rows(), 4);
  EXPECT_EQ(dense.cols(), 6);
  EXPECT_DOUBLE_EQ(dense(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(dense(3, 1), 2.0);
  EXPECT_DOUBLE_EQ(dense(0, 0), 0.0);  // absent slice = zero row
  DenseMatrix gram = blocks.GramOfRows();
  DenseMatrix want = Gram(dense);
  EXPECT_LT(gram.MaxAbsDiff(want), 1e-12);
}

TEST(PipelineStatsType, AggregationAndFormatting) {
  PipelineStats stats;
  JobStats a;
  a.name = "first";
  a.map_output_records = 100;
  a.map_output_bytes = 1600;
  a.wall_seconds = 0.5;
  JobStats b;
  b.name = "second";
  b.map_output_records = 300;
  b.map_output_bytes = 4800;
  b.wall_seconds = 0.25;
  stats.jobs = {a, b};
  EXPECT_EQ(stats.NumJobs(), 2);
  EXPECT_EQ(stats.MaxIntermediateRecords(), 300);
  EXPECT_EQ(stats.MaxIntermediateBytes(), 4800u);
  EXPECT_EQ(stats.TotalIntermediateRecords(), 400);
  EXPECT_DOUBLE_EQ(stats.TotalWallSeconds(), 0.75);
  std::string text = stats.ToString();
  EXPECT_NE(text.find("first"), std::string::npos);
  EXPECT_NE(text.find("second"), std::string::npos);
  PipelineStats more;
  more.jobs = {a};
  stats.Append(more);
  EXPECT_EQ(stats.NumJobs(), 3);
  stats.Clear();
  EXPECT_EQ(stats.NumJobs(), 0);
}

// Gram accumulated from blocks must match the dense-path Gram on real data
// for all variants (a redundancy the Tucker driver relies on).
TEST(SliceBlocksType, GramMatchesDenseOnRealContraction) {
  Rng rng(401);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({10, 9, 8}, 60, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(9, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(8, 2, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  Engine engine(ClusterConfig::ForTesting());
  Result<SliceBlocks> y = MultiModeContract(&engine, x, factors, 0,
                                            MergeKind::kCross,
                                            Variant::kDri);
  ASSERT_OK(y.status());
  DenseMatrix dense = y->ToDenseMatrix();
  EXPECT_LT(y->GramOfRows().MaxAbsDiff(Gram(dense)), 1e-10);
}

TEST(GigaTensorAlias, RunsDrnRegardlessOfRequestedVariant) {
  Rng rng(402);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({10, 9, 8}, 80, &rng);
  Haten2Options options;
  options.max_iterations = 1;
  options.compute_fit = false;
  options.variant = Variant::kDri;  // must be overridden to kDrn

  Engine engine(ClusterConfig::ForTesting());
  ASSERT_OK(GigaTensorParafacAls(&engine, x, 3, options).status());
  // One iteration = 3 MTTKRPs, each 2R+1 = 7 jobs under DRN.
  EXPECT_EQ(engine.pipeline().NumJobs(), 3 * (2 * 3 + 1));

  // And the factors agree with an explicit DRN run.
  Engine drn_engine(ClusterConfig::ForTesting());
  options.variant = Variant::kDrn;
  Result<KruskalModel> drn = Haten2ParafacAls(&drn_engine, x, 3, options);
  Engine giga_engine(ClusterConfig::ForTesting());
  Result<KruskalModel> giga = GigaTensorParafacAls(&giga_engine, x, 3,
                                                   options);
  ASSERT_OK(drn.status());
  ASSERT_OK(giga.status());
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(giga->factors[m].MaxAbsDiff(drn->factors[m]), 0.0);
  }
}

}  // namespace
}  // namespace haten2
