// Tests for corners not covered elsewhere: DenseTensor::Fold error paths,
// engine combiner via RunOnPairs, FlagParser boolean spellings, Engine with
// order-2 tensors through the full drivers, and SliceBlocks on an empty
// contraction result.

#include <gtest/gtest.h>

#include "core/contract.h"
#include "core/parafac.h"
#include "core/tucker.h"
#include "tensor/dense_tensor.h"
#include "test_util.h"
#include "util/flags.h"

namespace haten2 {
namespace {

TEST(FoldErrors, RejectsBadShapes) {
  Rng rng(831);
  DenseMatrix mat = DenseMatrix::RandomNormal(3, 8, &rng);
  // 3 x 8 folds into {3, 4, 2} at mode 0...
  ASSERT_OK(DenseTensor::Fold(mat, 0, {3, 4, 2}).status());
  // ...but not into mismatched dims or modes.
  EXPECT_TRUE(DenseTensor::Fold(mat, 0, {4, 4, 2}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DenseTensor::Fold(mat, 3, {3, 4, 2}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DenseTensor::Fold(mat, 0, {3, 0, 2}).status()
                  .IsInvalidArgument());
}

TEST(EngineRunOnPairs, CombinerComposesWithPairInput) {
  std::vector<std::pair<int64_t, int64_t>> input;
  for (int i = 0; i < 500; ++i) input.emplace_back(i % 3, 1);
  Engine engine(ClusterConfig::ForTesting());
  auto result = engine.RunOnPairs<int64_t, int64_t, int64_t, int64_t>(
      "pairs-combine", input,
      [](const int64_t& k, const int64_t& v,
         ShuffleEmitter<int64_t, int64_t>* em) { em->Emit(k, v); },
      [](const int64_t& k, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(k, sum);
      },
      [](const int64_t& a, const int64_t& b) { return a + b; });
  ASSERT_OK(result.status());
  int64_t total = 0;
  for (auto& [k, v] : *result) total += v;
  EXPECT_EQ(total, 500);
  EXPECT_LT(engine.pipeline().jobs[0].map_output_records, 500);
}

TEST(FlagParserSpellings, BooleanForms) {
  const char* argv[] = {"prog", "--a=true", "--b=false", "--c=1", "--d=0",
                        "--e"};
  FlagParser flags(6, argv);
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", false));
}

TEST(OrderTwoDrivers, ParafacAndTuckerOnMatrices) {
  // Order-2 tensors are matrices; PARAFAC degenerates to an SVD-like
  // factorization and Tucker to a two-sided projection. Both drivers must
  // handle them through the full MapReduce path.
  Rng rng(832);
  SparseTensor x = haten2::testing::RandomSparseTensor({20, 15}, 60, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 5;
  Result<KruskalModel> cp = Haten2ParafacAls(&engine, x, 2, options);
  ASSERT_OK(cp.status());
  EXPECT_EQ(cp->factors.size(), 2u);
  Result<TuckerModel> tk = Haten2TuckerAls(&engine, x, {2, 2}, options);
  ASSERT_OK(tk.status());
  EXPECT_EQ(tk->core.order(), 2);
  EXPECT_GT(tk->fit, 0.0);
}

TEST(SliceBlocksEmpty, AllZeroFactorsYieldEmptyRows) {
  // Factors of zeros produce no Hadamard records at all; the contraction
  // still succeeds with an empty (all-zero) result.
  Rng rng(833);
  SparseTensor x = haten2::testing::RandomSparseTensor({6, 5, 4}, 20, &rng);
  DenseMatrix zero_b(5, 2);
  DenseMatrix zero_c(4, 2);
  std::vector<const DenseMatrix*> factors = {nullptr, &zero_b, &zero_c};
  Engine engine(ClusterConfig::ForTesting());
  Result<SliceBlocks> y = MultiModeContract(&engine, x, factors, 0,
                                            MergeKind::kCross,
                                            Variant::kDri);
  ASSERT_OK(y.status());
  EXPECT_TRUE(y->rows.empty());
  DenseMatrix dense = y->ToDenseMatrix();
  EXPECT_DOUBLE_EQ(dense.FrobeniusNorm(), 0.0);
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  auto fails = []() -> Status {
    HATEN2_RETURN_IF_ERROR(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto succeeds = []() -> Status {
    HATEN2_RETURN_IF_ERROR(Status::OK());
    return Status::OK();
  };
  EXPECT_OK(succeeds());
}

}  // namespace
}  // namespace haten2
