// Tests for the subprocess Engine backend: direct jobs and all four ALS
// drivers must be bit-identical to the in-process backend at fixed seeds,
// output types outside the wire codec's reach must fail cleanly with
// kUnimplemented, and a worker killed mid-job must surface as kAborted
// ("worker_lost"), feed the plan-level node retry, and still converge
// bit-identically — with the restart/retry counters visible in the
// haten2-stats-v9 JSON export.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/missing_values.h"
#include "core/nonnegative_tucker.h"
#include "core/parafac.h"
#include "core/tucker.h"
#include "distributed/distributed_engine.h"
#include "mapreduce/engine.h"
#include "mapreduce/plan.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/stats_json.h"
#include "test_util.h"

namespace haten2 {
namespace {

using distributed::WithSubprocessBackend;
using distributed::WorkerStats;

std::string BackendSpillDir() {
  std::string dir =
      std::string(::testing::TempDir()) + "/haten2_backend_spills";
  std::filesystem::create_directories(dir);
  return dir;
}

ClusterConfig BaseConfig() {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.spill_directory = BackendSpillDir();
  return config;
}

// A small deterministic job: keys 0..6, values summed per key.
template <typename EngineT>
Result<std::vector<std::pair<int64_t, double>>> RunSumJob(EngineT* engine) {
  return engine->template Run<int64_t, double, int64_t, double>(
      "backend-sum", 200,
      [](int64_t i, ShuffleEmitter<int64_t, double>* em) {
        em->Emit(i % 7, static_cast<double>(i) * 0.5);
        em->Emit((i * 3) % 7, 1.0);
      },
      [](const int64_t& key, std::vector<double>& values,
         OutputEmitter<int64_t, double>* out) {
        double sum = 0.0;
        for (double v : values) sum += v;
        out->Emit(key, sum);
      });
}

TEST(DistributedBackendTest, SimpleJobMatchesInprocess) {
  Engine reference(BaseConfig());
  auto want = RunSumJob(&reference);
  ASSERT_OK(want.status());

  Engine engine(WithSubprocessBackend(BaseConfig(), 2));
  auto got = RunSumJob(&engine);
  ASSERT_OK(got.status());
  EXPECT_EQ(*got, *want);

  // The gang actually ran and moved bytes.
  const std::vector<WorkerStats> workers = engine.WorkerStatsSnapshot();
  ASSERT_EQ(workers.size(), 2u);
  uint64_t total_sent = 0;
  for (const WorkerStats& w : workers) total_sent += w.wire_bytes_sent;
  EXPECT_GT(total_sent, 0u);
}

TEST(DistributedBackendTest, CombinerJobMatchesInprocessWithStatsParity) {
  auto run = [](Engine* engine) {
    return engine->Run<int64_t, double, int64_t, double>(
        "backend-combine", 500,
        [](int64_t i, ShuffleEmitter<int64_t, double>* em) {
          em->Emit(i % 11, 1.0);
        },
        [](const int64_t& key, std::vector<double>& values,
           OutputEmitter<int64_t, double>* out) {
          double sum = 0.0;
          for (double v : values) sum += v;
          out->Emit(key, sum);
        },
        [](const double& a, const double& b) { return a + b; });
  };
  Engine reference(BaseConfig());
  auto want = run(&reference);
  ASSERT_OK(want.status());
  Engine engine(WithSubprocessBackend(BaseConfig(), 3));
  auto got = run(&engine);
  ASSERT_OK(got.status());
  EXPECT_EQ(*got, *want);

  // Counter parity: both backends saw the same records through the same
  // emitters and combiners.
  const JobStats& a = reference.pipeline().jobs.back();
  const JobStats& b = engine.pipeline().jobs.back();
  EXPECT_EQ(b.map_input_records, a.map_input_records);
  EXPECT_EQ(b.pre_combine_records, a.pre_combine_records);
  EXPECT_EQ(b.map_output_records, a.map_output_records);
  EXPECT_EQ(b.map_output_bytes, a.map_output_bytes);
  EXPECT_EQ(b.reduce_output_records, a.reduce_output_records);
}

TEST(DistributedBackendTest, SpillingJobMatchesInprocess) {
  auto config = [] {
    ClusterConfig c = BaseConfig();
    c.spill_threshold_records = 16;  // force spill runs through the codec
    return c;
  };
  auto run = [](Engine* engine) {
    return engine->Run<int64_t, int64_t, int64_t, int64_t>(
        "backend-spill", 600,
        [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
          em->Emit(i % 29, i);
        },
        [](const int64_t& key, std::vector<int64_t>& values,
           OutputEmitter<int64_t, int64_t>* out) {
          int64_t sum = key;
          for (int64_t v : values) sum += v;
          out->Emit(key, sum);
        });
  };
  Engine reference(config());
  auto want = run(&reference);
  ASSERT_OK(want.status());
  Engine engine(WithSubprocessBackend(config(), 2));
  auto got = run(&engine);
  ASSERT_OK(got.status());
  EXPECT_EQ(*got, *want);
  // Both backends actually spilled.
  EXPECT_GT(reference.pipeline().jobs.back().spilled_records, 0);
  EXPECT_EQ(engine.pipeline().jobs.back().spilled_records,
            reference.pipeline().jobs.back().spilled_records);
}

TEST(DistributedBackendTest, VectorOutputMatchesInprocess) {
  auto run = [](Engine* engine) {
    return engine->Run<int64_t, double, int64_t, std::vector<double>>(
        "backend-vector-out", 120,
        [](int64_t i, ShuffleEmitter<int64_t, double>* em) {
          em->Emit(i % 5, static_cast<double>(i));
        },
        [](const int64_t& key, std::vector<double>& values,
           OutputEmitter<int64_t, std::vector<double>>* out) {
          std::vector<double> row = {static_cast<double>(key),
                                     static_cast<double>(values.size())};
          out->Emit(key, row);
        });
  };
  Engine reference(BaseConfig());
  auto want = run(&reference);
  ASSERT_OK(want.status());
  Engine engine(WithSubprocessBackend(BaseConfig(), 2));
  auto got = run(&engine);
  ASSERT_OK(got.status());
  EXPECT_EQ(*got, *want);
}

TEST(DistributedBackendTest, NonSerializableOutputIsUnimplemented) {
  Engine engine(WithSubprocessBackend(BaseConfig(), 2));
  auto result = engine.Run<int64_t, double, int64_t, std::string>(
      "backend-string-out", 10,
      [](int64_t i, ShuffleEmitter<int64_t, double>* em) {
        em->Emit(i, 1.0);
      },
      [](const int64_t& key, std::vector<double>&,
         OutputEmitter<int64_t, std::string>* out) {
        out->Emit(key, "text");
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnimplemented())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("backend-string-out"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Four-driver bit-identity (the PR's acceptance gate).
// ---------------------------------------------------------------------------

TEST(DistributedBackendBitIdentity, ParafacAls) {
  Rng rng(7201);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({14, 11, 9}, 280, &rng);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;

  Engine reference(BaseConfig());
  Result<KruskalModel> want = Haten2ParafacAls(&reference, x, 3, options);
  ASSERT_OK(want.status());

  Engine engine(WithSubprocessBackend(BaseConfig(), 2));
  Result<KruskalModel> got = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(got.status());
  EXPECT_EQ(got->lambda, want->lambda);
  EXPECT_EQ(got->fit_history, want->fit_history);
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }
}

TEST(DistributedBackendBitIdentity, TuckerAls) {
  Rng rng(7202);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({12, 10, 8}, 240, &rng);
  Haten2Options options;
  options.max_iterations = 2;
  options.tolerance = 0.0;

  Engine reference(BaseConfig());
  Result<TuckerModel> want =
      Haten2TuckerAls(&reference, x, {3, 3, 2}, options);
  ASSERT_OK(want.status());

  Engine engine(WithSubprocessBackend(BaseConfig(), 2));
  Result<TuckerModel> got = Haten2TuckerAls(&engine, x, {3, 3, 2}, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  EXPECT_DOUBLE_EQ(got->core.MaxAbsDiff(want->core), 0.0);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }
}

TEST(DistributedBackendBitIdentity, NonnegativeTuckerAls) {
  Rng rng(7203);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({10, 9, 8}, 220, &rng);
  Haten2Options options;
  options.max_iterations = 2;
  options.tolerance = 0.0;

  Engine reference(BaseConfig());
  Result<TuckerModel> want =
      Haten2NonnegativeTuckerAls(&reference, x, {2, 2, 2}, options);
  ASSERT_OK(want.status());

  Engine engine(WithSubprocessBackend(BaseConfig(), 2));
  Result<TuckerModel> got =
      Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 2}, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  EXPECT_DOUBLE_EQ(got->core.MaxAbsDiff(want->core), 0.0);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }
}

TEST(DistributedBackendBitIdentity, ParafacMissingValues) {
  Rng rng(7204);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({9, 8, 7}, 180, &rng);
  // Observe exactly x's nonzero pattern (mask values must be 1.0).
  Result<SparseTensor> mask_r = SparseTensor::Create(x.dims());
  ASSERT_OK(mask_r.status());
  SparseTensor mask = std::move(mask_r).value();
  for (int64_t e = 0; e < x.nnz(); ++e) {
    int64_t idx[3] = {x.index(e, 0), x.index(e, 1), x.index(e, 2)};
    mask.AppendUnchecked(idx, 1.0);
  }
  mask.Canonicalize();

  MissingValueOptions options;
  options.em_iterations = 2;
  options.em_tolerance = 0.0;
  options.base.max_iterations = 1;
  options.base.tolerance = 0.0;

  Engine reference(BaseConfig());
  Result<MissingValueModel> want =
      Haten2ParafacMissing(&reference, x, mask, 2, options);
  ASSERT_OK(want.status());

  Engine engine(WithSubprocessBackend(BaseConfig(), 2));
  Result<MissingValueModel> got =
      Haten2ParafacMissing(&engine, x, mask, 2, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->observed_fit, want->observed_fit);
  EXPECT_EQ(got->observed_fit_history, want->observed_fit_history);
  EXPECT_EQ(got->model.lambda, want->model.lambda);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->model.factors[m].MaxAbsDiff(want->model.factors[m]),
                     0.0);
  }
}

// ---------------------------------------------------------------------------
// Worker death: kAborted/"worker_lost", node retry, stats-v6 counters.
// ---------------------------------------------------------------------------

TEST(DistributedBackendTest, WorkerKillSurfacesAsAbortedWorkerLost) {
  ClusterConfig config = WithSubprocessBackend(BaseConfig(), 2);
  config.inject_worker_kill_after_tasks = 1;
  Engine engine(config);
  auto result = RunSumJob(&engine);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status().ToString();
  ASSERT_FALSE(engine.pipeline().jobs.empty());
  EXPECT_EQ(engine.pipeline().jobs.back().failure, "worker_lost");
}

TEST(DistributedBackendTest, WorkerKillRecoversViaNodeRetry) {
  // Reference: clean subprocess run of the same plan.
  std::vector<std::pair<int64_t, double>> want;
  {
    Engine engine(WithSubprocessBackend(BaseConfig(), 2));
    auto r = RunSumJob(&engine);
    ASSERT_OK(r.status());
    want = *r;
  }

  ClusterConfig config = WithSubprocessBackend(BaseConfig(), 2);
  config.inject_worker_kill_after_tasks = 1;  // first gang loses a worker
  config.max_node_attempts = 3;
  Engine engine(config);

  std::vector<std::pair<int64_t, double>> got;
  Plan plan("kill-recovery");
  plan.AddJob("sum-under-retry", {}, [&engine, &got]() -> Status {
    auto r = RunSumJob(&engine);
    if (!r.ok()) return r.status();
    got = *r;  // fresh job ids per attempt; last attempt's output wins
    return Status::OK();
  });
  ASSERT_OK(PlanScheduler(&engine).Execute(plan));

  // Bit-identical to the clean run despite the mid-job worker death.
  EXPECT_EQ(got, want);

  PipelineStats pipeline = engine.PipelineSnapshot();
  // First attempt's job failed as worker_lost; the retry's job succeeded
  // under a fresh job id.
  EXPECT_GE(pipeline.NumFailedJobs(), 1);
  bool saw_worker_lost = false;
  for (const JobStats& job : pipeline.jobs) {
    if (job.failure == "worker_lost") saw_worker_lost = true;
  }
  EXPECT_TRUE(saw_worker_lost);
  ASSERT_EQ(pipeline.plans.size(), 1u);
  EXPECT_EQ(pipeline.plans[0].nodes[0].attempts, 2);
  EXPECT_EQ(pipeline.plans[0].nodes[0].status, "ok");
  EXPECT_EQ(pipeline.TotalNodeRetries(), 1);

  // The killed slot was respawned for the retry gang.
  const std::vector<WorkerStats> workers = engine.WorkerStatsSnapshot();
  int64_t restarts = 0;
  for (const WorkerStats& w : workers) restarts += w.restarts;
  EXPECT_GE(restarts, 1);

  // All of it lands in the stats-v6 JSON export.
  StatsReport report;
  report.tool = "distributed_backend_test";
  report.cluster = &config;
  report.pipeline = &pipeline;
  report.workers = &workers;
  const std::string json = StatsReportToJson(report);
  EXPECT_NE(json.find("\"haten2-stats-v9\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"backend\":\"subprocess\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"workers\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"restarts\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"worker_lost\""), std::string::npos) << json;
}

TEST(DistributedBackendTest, KillInjectionLatchesOffAfterFirstDeath) {
  // A second direct Run on the same engine (same pool) must run clean: the
  // injection is one-shot, which is what lets the node retry converge.
  ClusterConfig config = WithSubprocessBackend(BaseConfig(), 2);
  config.inject_worker_kill_after_tasks = 1;
  Engine engine(config);
  ASSERT_FALSE(RunSumJob(&engine).ok());
  auto second = RunSumJob(&engine);
  ASSERT_OK(second.status());

  Engine reference(BaseConfig());
  auto want = RunSumJob(&reference);
  ASSERT_OK(want.status());
  EXPECT_EQ(*second, *want);
}

}  // namespace
}  // namespace haten2
