// Tests for the sketched-HOOI Tucker driver: recovery vs the exact driver on
// planted tensors, bit-reproducibility at a fixed seed, config validation,
// checkpoint/resume bit-identity, and the v8 per-iteration sketch stats.

#include "core/sketched_tucker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/checkpoint.h"
#include "core/tucker.h"
#include "linalg/linalg.h"
#include "mapreduce/stats_json.h"
#include "tensor/tensor_ops.h"
#include "json_checker.h"
#include "test_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

using ::haten2::testing::JsonChecker;
using ::haten2::testing::RandomSparseTensor;

// An exact multilinear-rank (2,2,2) tensor, same construction as
// tucker_test.cc so the two drivers are exercised on the same family.
SparseTensor ExactTuckerTensor(Rng* rng) {
  Result<DenseTensor> core = DenseTensor::Create({2, 2, 2});
  HATEN2_CHECK(core.ok());
  for (double& v : core->data()) v = rng->Uniform(0.5, 2.0);
  DenseMatrix a = DenseMatrix::RandomUniform(8, 2, rng);
  DenseMatrix b = DenseMatrix::RandomUniform(7, 2, rng);
  DenseMatrix c = DenseMatrix::RandomUniform(6, 2, rng);
  Result<DenseTensor> dense = ReconstructTucker(*core, {&a, &b, &c});
  HATEN2_CHECK(dense.ok());
  return dense->ToSparse();
}

ClusterConfig SketchConfig(const std::string& kind, int64_t sketch_size = 0,
                           int polish = 2) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.tucker_sketch = kind;
  config.sketch_size = sketch_size;
  config.exact_polish_sweeps = polish;
  return config;
}

TEST(SketchedTucker, GaussianFitWithinTwoPercentOfExact) {
  Rng rng(31);
  SparseTensor x = ExactTuckerTensor(&rng);
  Haten2Options options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  options.seed = 7;

  Engine exact_engine(ClusterConfig::ForTesting());
  Result<TuckerModel> exact =
      Haten2TuckerAls(&exact_engine, x, {2, 2, 2}, options);
  ASSERT_OK(exact.status());

  Engine sketched_engine(SketchConfig("gaussian"));
  Result<TuckerModel> sketched =
      Haten2SketchedTuckerAls(&sketched_engine, x, {2, 2, 2}, options);
  ASSERT_OK(sketched.status());

  // On an exact low-multilinear-rank tensor the polish sweeps recover the
  // exact-HOOI fixed point to well inside the 2% acceptance band.
  EXPECT_GT(sketched->fit, exact->fit - 0.02);
  EXPECT_GT(sketched->fit, 0.999);
}

TEST(SketchedTucker, CountSketchRecoversPlantedTensor) {
  Rng rng(32);
  SparseTensor x = ExactTuckerTensor(&rng);
  Engine engine(SketchConfig("countsketch", /*sketch_size=*/8));
  Haten2Options options;
  options.max_iterations = 25;
  options.tolerance = 0.0;
  options.seed = 3;
  Result<TuckerModel> model =
      Haten2SketchedTuckerAls(&engine, x, {2, 2, 2}, options);
  ASSERT_OK(model.status());
  EXPECT_GT(model->fit, 0.99);
}

TEST(SketchedTucker, FactorsAreOrthonormalAndCoreShaped) {
  Rng rng(33);
  SparseTensor x = RandomSparseTensor({12, 11, 10}, 150, &rng);
  Engine engine(SketchConfig("gaussian"));
  Haten2Options options;
  options.max_iterations = 5;
  Result<TuckerModel> model =
      Haten2SketchedTuckerAls(&engine, x, {3, 4, 2}, options);
  ASSERT_OK(model.status());
  for (const DenseMatrix& f : model->factors) {
    EXPECT_TRUE(HasOrthonormalColumns(f, 1e-8));
  }
  EXPECT_EQ(model->core.dims(), (std::vector<int64_t>{3, 4, 2}));
}

TEST(SketchedTucker, BitReproducibleAtFixedSeed) {
  Rng rng(34);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 120, &rng);
  Haten2Options options;
  options.max_iterations = 6;
  options.tolerance = 0.0;
  options.seed = 99;
  Engine engine_a(SketchConfig("gaussian"));
  Engine engine_b(SketchConfig("gaussian"));
  Result<TuckerModel> a = Haten2SketchedTuckerAls(&engine_a, x, {3, 3, 3},
                                                  options);
  Result<TuckerModel> b = Haten2SketchedTuckerAls(&engine_b, x, {3, 3, 3},
                                                  options);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_DOUBLE_EQ(a->fit, b->fit);
  EXPECT_DOUBLE_EQ(a->core.MaxAbsDiff(b->core), 0.0);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(a->factors[m].MaxAbsDiff(b->factors[m]), 0.0);
  }
}

TEST(SketchedTucker, DifferentSeedsDiverge) {
  Rng rng(35);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 120, &rng);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  Engine engine(SketchConfig("gaussian"));
  options.seed = 1;
  Result<TuckerModel> a =
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, options);
  options.seed = 2;
  Result<TuckerModel> b =
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, options);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  double diff = 0.0;
  for (size_t m = 0; m < 3; ++m) {
    diff = std::max(diff, a->factors[m].MaxAbsDiff(b->factors[m]));
  }
  EXPECT_GT(diff, 0.0);
}

TEST(SketchedTucker, RunsOnTheInCoreStrategy) {
  Rng rng(41);
  SparseTensor x = ExactTuckerTensor(&rng);
  Haten2Options options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  options.seed = 7;

  ClusterConfig dataflow = SketchConfig("gaussian");
  ClusterConfig incore = SketchConfig("gaussian");
  incore.contraction = "incore";
  Engine dataflow_engine(dataflow);
  Engine incore_engine(incore);
  Result<TuckerModel> a =
      Haten2SketchedTuckerAls(&dataflow_engine, x, {2, 2, 2}, options);
  Result<TuckerModel> b =
      Haten2SketchedTuckerAls(&incore_engine, x, {2, 2, 2}, options);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  // Same math on both strategies (kSketchFused is the MTTKRP kernel
  // in-core); summation orders differ, so compare converged results rather
  // than bits.
  EXPECT_GT(b->fit, 0.999);
  EXPECT_NEAR(a->fit, b->fit, 1e-6);
}

TEST(SketchedTucker, RejectsBadConfig) {
  Rng rng(36);
  SparseTensor x = RandomSparseTensor({8, 8, 8}, 60, &rng);
  Haten2Options options;
  options.max_iterations = 2;

  // The sketched driver refuses to run as a silent exact fallback.
  Engine none_engine(ClusterConfig::ForTesting());
  EXPECT_TRUE(Haten2SketchedTuckerAls(&none_engine, x, {2, 2, 2}, options)
                  .status()
                  .IsInvalidArgument());

  // An explicit sketch width below the largest core dimension cannot feed
  // the range finder.
  Engine narrow_engine(SketchConfig("gaussian", /*sketch_size=*/2));
  EXPECT_TRUE(Haten2SketchedTuckerAls(&narrow_engine, x, {2, 4, 2}, options)
                  .status()
                  .IsInvalidArgument());

  Engine engine(SketchConfig("gaussian"));
  EXPECT_TRUE(Haten2SketchedTuckerAls(nullptr, x, {2, 2, 2}, options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Haten2SketchedTuckerAls(&engine, x, {2, 2}, options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Haten2SketchedTuckerAls(&engine, x, {2, 2, 9}, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(SketchedTucker, ResumeIsBitIdentical) {
  Rng rng(37);
  SparseTensor x = RandomSparseTensor({12, 10, 8}, 120, &rng);
  // polish=0 keeps every sweep in the sketched phase. The polish boundary
  // counts back from max_iterations, so simulating a kill by shrinking the
  // iteration budget (the pattern checkpoint_test.cc uses) would otherwise
  // move which sweeps are exact; a real kill leaves the budget unchanged
  // and resume is bit-identical for any polish count.
  Engine engine(SketchConfig("gaussian", /*sketch_size=*/0, /*polish=*/0));

  Haten2Options options;
  options.max_iterations = 8;
  options.tolerance = 0.0;
  options.seed = 17;
  Result<TuckerModel> full =
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, options);
  ASSERT_OK(full.status());

  CheckpointOptions ckpt;
  ckpt.directory =
      std::string(::testing::TempDir()) + "/resume_sketched_tucker";
  ckpt.every_n_iterations = 2;
  Haten2Options interrupted = options;
  interrupted.max_iterations = 5;  // killed mid-run after checkpoint 4
  interrupted.checkpoint = &ckpt;
  ASSERT_OK(
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, interrupted).status());

  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());
  EXPECT_EQ(latest->manifest.method, "sketched-tucker");
  EXPECT_EQ(latest->manifest.iteration, 4);

  DecompositionTrace resumed_trace;
  Haten2Options resume = options;
  resume.resume_from = &latest.value();
  resume.trace = &resumed_trace;
  Result<TuckerModel> resumed =
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, resume);
  ASSERT_OK(resumed.status());

  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  EXPECT_EQ(resumed->iterations, full->iterations);
  EXPECT_EQ(resumed->core_norm_history, full->core_norm_history);
  EXPECT_DOUBLE_EQ(resumed->core.MaxAbsDiff(full->core), 0.0);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(resumed->factors[m].MaxAbsDiff(full->factors[m]), 0.0);
  }
  ASSERT_FALSE(resumed_trace.iterations.empty());
  EXPECT_EQ(resumed_trace.iterations.front().iteration, 5);
  EXPECT_EQ(resumed_trace.iterations.back().iteration, 8);
}

TEST(SketchedTucker, ResumeRejectsExactTuckerCheckpoint) {
  Rng rng(38);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Haten2Options options;
  options.max_iterations = 4;
  options.tolerance = 0.0;

  // Write an exact-Tucker checkpoint...
  Engine exact_engine(ClusterConfig::ForTesting());
  CheckpointOptions ckpt;
  ckpt.directory =
      std::string(::testing::TempDir()) + "/sketched_rejects_exact";
  ckpt.every_n_iterations = 2;
  Haten2Options exact_options = options;
  exact_options.checkpoint = &ckpt;
  ASSERT_OK(
      Haten2TuckerAls(&exact_engine, x, {3, 3, 3}, exact_options).status());
  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());

  // ...and refuse to resume it under the sketched method: the iterate
  // sequences are different algorithms.
  Engine engine(SketchConfig("gaussian"));
  Haten2Options resume = options;
  resume.resume_from = &latest.value();
  Result<TuckerModel> resumed =
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, resume);
  EXPECT_TRUE(resumed.status().IsFailedPrecondition())
      << resumed.status().ToString();
}

TEST(SketchedTucker, TraceRecordsSketchDimsAndPolishPhases) {
  Rng rng(39);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Engine engine(SketchConfig("gaussian", /*sketch_size=*/7, /*polish=*/2));
  DecompositionTrace trace;
  Haten2Options options;
  options.max_iterations = 6;
  options.tolerance = 0.0;
  options.trace = &trace;
  Result<TuckerModel> model =
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, options);
  ASSERT_OK(model.status());

  ASSERT_EQ(trace.iterations.size(), 6u);
  for (const IterationStats& it : trace.iterations) {
    EXPECT_TRUE(it.has_sketch);
    const bool polish = it.iteration > 4;  // last 2 of 6 sweeps
    EXPECT_EQ(it.sketch_polish, polish) << "iteration " << it.iteration;
    EXPECT_EQ(it.sketch_dims, polish ? 0 : 7) << "iteration " << it.iteration;
  }

  // Sketched sweeps run Sketch[...] plan nodes tagged with the "sketch"
  // strategy. They execute no engine jobs, so like in-core nodes they are
  // absent from the per-iteration job-watermark slices and show up in the
  // engine-wide pipeline log.
  bool saw_sketch_node = false;
  for (const PlanStats& plan : engine.pipeline().plans) {
    for (const PlanNodeStats& node : plan.nodes) {
      if (node.label.find("Sketch[gaussian") != std::string::npos) {
        saw_sketch_node = true;
        EXPECT_EQ(node.contraction_strategy, "sketch");
      }
    }
  }
  EXPECT_TRUE(saw_sketch_node);
}

TEST(SketchedTucker, StatsJsonCarriesV8SketchObject) {
  Rng rng(40);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  ClusterConfig config = SketchConfig("gaussian");
  Engine engine(config);
  DecompositionTrace trace;
  Haten2Options options;
  options.max_iterations = 4;
  options.tolerance = 0.0;
  options.trace = &trace;
  Result<TuckerModel> model =
      Haten2SketchedTuckerAls(&engine, x, {3, 3, 3}, options);
  ASSERT_OK(model.status());

  StatsReport report;
  report.tool = "sketched_tucker_test";
  report.method = "sketched-tucker";
  report.variant = "dri";
  report.dataset = "random";
  report.has_fit = true;
  report.fit = model->fit;
  report.iterations_run = model->iterations;
  report.cluster = &config;
  report.trace = &trace;
  report.pipeline = &engine.pipeline();
  std::string json = StatsReportToJson(report);

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* key :
       {"\"schema\":\"haten2-stats-v9\"", "\"sketch\"", "\"seconds\"",
        "\"dims\"", "\"polish\"", "\"tucker_sketch\":\"gaussian\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace haten2
