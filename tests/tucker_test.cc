// Tests for the HaTen2-Tucker driver: orthonormality, ||G|| monotonicity,
// exact recovery of low-multilinear-rank tensors, variant equivalence and
// agreement with the MET baseline.

#include "core/tucker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/toolbox.h"
#include "linalg/linalg.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

// An exact multilinear-rank (2,2,2) tensor.
SparseTensor ExactTuckerTensor(Rng* rng) {
  Result<DenseTensor> core = DenseTensor::Create({2, 2, 2});
  HATEN2_CHECK(core.ok());
  for (double& v : core->data()) v = rng->Uniform(0.5, 2.0);
  DenseMatrix a = DenseMatrix::RandomUniform(8, 2, rng);
  DenseMatrix b = DenseMatrix::RandomUniform(7, 2, rng);
  DenseMatrix c = DenseMatrix::RandomUniform(6, 2, rng);
  Result<DenseTensor> dense = ReconstructTucker(*core, {&a, &b, &c});
  HATEN2_CHECK(dense.ok());
  return dense->ToSparse();
}

TEST(Haten2Tucker, RecoversExactLowRankTensor) {
  Rng rng(21);
  SparseTensor x = ExactTuckerTensor(&rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 30;
  options.tolerance = 1e-13;
  Result<TuckerModel> model = Haten2TuckerAls(&engine, x, {2, 2, 2}, options);
  ASSERT_OK(model.status());
  EXPECT_GT(model->fit, 0.9999);
  // Reconstruction must match the input entrywise.
  Result<DenseTensor> recon =
      ReconstructTucker(model->core, model->FactorPtrs());
  ASSERT_OK(recon.status());
  DenseTensor original = DenseTensor::FromSparse(x);
  EXPECT_LT(recon->MaxAbsDiff(original), 1e-6);
}

TEST(Haten2Tucker, FactorsAreOrthonormal) {
  Rng rng(22);
  SparseTensor x = RandomSparseTensor({12, 11, 10}, 150, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 5;
  Result<TuckerModel> model = Haten2TuckerAls(&engine, x, {3, 4, 2}, options);
  ASSERT_OK(model.status());
  for (const DenseMatrix& f : model->factors) {
    EXPECT_TRUE(HasOrthonormalColumns(f, 1e-8));
  }
  EXPECT_EQ(model->core.dims(), (std::vector<int64_t>{3, 4, 2}));
}

TEST(Haten2Tucker, CoreNormIsNonDecreasing) {
  Rng rng(23);
  SparseTensor x = RandomSparseTensor({10, 10, 10}, 120, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 8;
  options.tolerance = 0.0;
  Result<TuckerModel> model = Haten2TuckerAls(&engine, x, {3, 3, 3}, options);
  ASSERT_OK(model.status());
  ASSERT_GE(model->core_norm_history.size(), 2u);
  for (size_t i = 1; i < model->core_norm_history.size(); ++i) {
    EXPECT_GE(model->core_norm_history[i],
              model->core_norm_history[i - 1] - 1e-9)
        << "||G|| decreased at iteration " << i;
  }
}

TEST(Haten2Tucker, AllVariantsProduceTheSameModel) {
  Rng rng(24);
  SparseTensor x = RandomSparseTensor({8, 7, 6}, 60, &rng);
  Haten2Options options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  std::vector<TuckerModel> models;
  for (Variant v : kAllVariants) {
    Engine engine(ClusterConfig::ForTesting());
    options.variant = v;
    Result<TuckerModel> m = Haten2TuckerAls(&engine, x, {2, 3, 2}, options);
    ASSERT_OK(m.status());
    models.push_back(std::move(m).value());
  }
  for (size_t v = 1; v < models.size(); ++v) {
    EXPECT_NEAR(models[v].fit, models[0].fit, 1e-8) << "variant " << v;
    EXPECT_LT(models[v].core.MaxAbsDiff(models[0].core), 1e-7)
        << "variant " << v;
  }
}

TEST(Haten2Tucker, MatchesMetBaselineFit) {
  Rng rng(25);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Haten2Options mr_options;
  mr_options.max_iterations = 6;
  mr_options.tolerance = 0.0;
  mr_options.seed = 5;
  BaselineOptions tb_options;
  tb_options.max_iterations = 6;
  tb_options.tolerance = 0.0;
  tb_options.seed = 5;

  Engine engine(ClusterConfig::ForTesting());
  Result<TuckerModel> mr = Haten2TuckerAls(&engine, x, {3, 3, 3}, mr_options);
  Result<TuckerModel> tb = ToolboxTuckerAls(x, {3, 3, 3}, tb_options);
  ASSERT_OK(mr.status());
  ASSERT_OK(tb.status());
  // Same initialization and the same HOOI math => identical fits; factors
  // can differ by column sign/rotation, so compare the invariant quantities.
  EXPECT_NEAR(mr->fit, tb->fit, 1e-8);
  EXPECT_NEAR(mr->core.FrobeniusNorm(), tb->core.FrobeniusNorm(), 1e-7);
}

TEST(Haten2Tucker, FourWayTensor) {
  Rng rng(26);
  SparseTensor x = RandomSparseTensor({6, 5, 4, 5}, 50, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 3;
  Result<TuckerModel> model =
      Haten2TuckerAls(&engine, x, {2, 2, 2, 2}, options);
  ASSERT_OK(model.status());
  EXPECT_EQ(model->factors.size(), 4u);
  EXPECT_EQ(model->core.order(), 4);
  for (const DenseMatrix& f : model->factors) {
    EXPECT_TRUE(HasOrthonormalColumns(f, 1e-8));
  }
}

TEST(Haten2Tucker, DegenerateCoreSizeOne) {
  Rng rng(27);
  SparseTensor x = RandomSparseTensor({8, 8, 8}, 60, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Result<TuckerModel> model = Haten2TuckerAls(&engine, x, {1, 1, 1});
  ASSERT_OK(model.status());
  EXPECT_EQ(model->core.size(), 1);
  EXPECT_GT(std::fabs(model->core.data()[0]), 0.0);
}

TEST(Haten2Tucker, RejectsBadInput) {
  Rng rng(28);
  SparseTensor x = RandomSparseTensor({5, 5, 5}, 20, &rng);
  Engine engine(ClusterConfig::ForTesting());
  EXPECT_TRUE(
      Haten2TuckerAls(nullptr, x, {2, 2, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(
      Haten2TuckerAls(&engine, x, {2, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(
      Haten2TuckerAls(&engine, x, {2, 2, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(
      Haten2TuckerAls(&engine, x, {2, 2, 9}).status().IsInvalidArgument());
}

TEST(Haten2Tucker, PropagatesOom) {
  Rng rng(29);
  SparseTensor x = RandomSparseTensor({30, 30, 30}, 400, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  config.total_shuffle_memory_bytes = 4 * 1024;
  Engine engine(config);
  Result<TuckerModel> model = Haten2TuckerAls(&engine, x, {3, 3, 3});
  ASSERT_FALSE(model.ok());
  EXPECT_TRUE(model.status().IsResourceExhausted());
}

}  // namespace
}  // namespace haten2
