// Tests for the tensor text format: round-trips, header handling, dimension
// inference, and malformed-input errors.

#include "tensor/tensor_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TensorIo, RoundTripsThroughFile) {
  Rng rng(81);
  SparseTensor t = haten2::testing::RandomSparseTensor({12, 9, 7}, 40, &rng);
  std::string path = TempPath("roundtrip.tns");
  ASSERT_OK(WriteTensorText(t, path));
  Result<SparseTensor> back = ReadTensorText(path);
  ASSERT_OK(back.status());
  EXPECT_TRUE(back->IdenticalTo(t));
  std::remove(path.c_str());
}

TEST(TensorIo, RoundTripsThroughString) {
  Rng rng(82);
  SparseTensor t =
      haten2::testing::RandomSparseTensor({5, 5, 5, 5}, 20, &rng);
  Result<SparseTensor> back = ParseTensorText(FormatTensorText(t));
  ASSERT_OK(back.status());
  EXPECT_TRUE(back->IdenticalTo(t));
}

TEST(TensorIo, PreservesExactDoubleValues) {
  Result<SparseTensor> t = SparseTensor::Create3(2, 2, 2);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({0, 1, 0}, 0.1 + 0.2));  // 0.30000000000000004
  ASSERT_OK(t->Append({1, 0, 1}, 1e-300));
  t->Canonicalize();
  Result<SparseTensor> back = ParseTensorText(FormatTensorText(*t));
  ASSERT_OK(back.status());
  EXPECT_TRUE(back->IdenticalTo(*t));
}

TEST(TensorIo, InfersDimsWithoutHeader) {
  std::string text =
      "0 0 0 1.5\n"
      "2 4 1 2.5\n"
      "# a comment line\n"
      "1 2 3 -1.0\n";
  Result<SparseTensor> t = ParseTensorText(text);
  ASSERT_OK(t.status());
  EXPECT_EQ(t->dims(), (std::vector<int64_t>{3, 5, 4}));
  EXPECT_EQ(t->nnz(), 3);
  EXPECT_DOUBLE_EQ(t->Get({2, 4, 1}), 2.5);
}

TEST(TensorIo, HeaderFixesDimsLargerThanData) {
  std::string text =
      "# haten2 tensor order=3 dims=100x200x300\n"
      "0 0 0 1\n";
  Result<SparseTensor> t = ParseTensorText(text);
  ASSERT_OK(t.status());
  EXPECT_EQ(t->dims(), (std::vector<int64_t>{100, 200, 300}));
}

TEST(TensorIo, MergesDuplicateRecords) {
  std::string text =
      "1 1 1 2.0\n"
      "1 1 1 3.0\n";
  Result<SparseTensor> t = ParseTensorText(text);
  ASSERT_OK(t.status());
  EXPECT_EQ(t->nnz(), 1);
  EXPECT_DOUBLE_EQ(t->Get({1, 1, 1}), 5.0);
}

TEST(TensorIo, RejectsMalformedInput) {
  EXPECT_TRUE(ParseTensorText("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTensorText("# only comments\n").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseTensorText("1\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTensorText("1 2 x 3.0\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTensorText("1 2 3 zzz\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTensorText("-1 2 3 1.0\n").status().IsInvalidArgument());
  // Mixed arity.
  EXPECT_TRUE(ParseTensorText("1 2 3 1.0\n1 2 1.0\n").status()
                  .IsInvalidArgument());
  // Out-of-header-bounds record.
  std::string text =
      "# haten2 tensor order=3 dims=2x2x2\n"
      "5 0 0 1.0\n";
  EXPECT_TRUE(ParseTensorText(text).status().IsOutOfRange());
}

TEST(TensorIo, MissingFileIsIOError) {
  Result<SparseTensor> r = ReadTensorText("/nonexistent/path/t.tns");
  EXPECT_TRUE(r.status().IsIOError());
  Result<SparseTensor> t = SparseTensor::Create3(2, 2, 2);
  ASSERT_OK(t.status());
  EXPECT_TRUE(WriteTensorText(*t, "/nonexistent/path/t.tns").IsIOError());
}

TEST(TensorIo, OneBasedFrosttStyleFiles) {
  // FROSTT files: 1-based coordinates, no header.
  std::string text =
      "1 1 1 2.5\n"
      "3 2 4 1.0\n";
  TensorTextOptions options;
  options.index_base = 1;
  Result<SparseTensor> t = ParseTensorText(text, options);
  ASSERT_OK(t.status());
  EXPECT_EQ(t->dims(), (std::vector<int64_t>{3, 2, 4}));
  EXPECT_DOUBLE_EQ(t->Get({0, 0, 0}), 2.5);
  EXPECT_DOUBLE_EQ(t->Get({2, 1, 3}), 1.0);
  // A 0 index in a 1-based file is an error.
  EXPECT_TRUE(ParseTensorText("0 1 1 1.0\n", options)
                  .status()
                  .IsInvalidArgument());
  // Default parsing is unchanged (0-based).
  Result<SparseTensor> zero_based = ParseTensorText(text);
  ASSERT_OK(zero_based.status());
  EXPECT_EQ(zero_based->dims(), (std::vector<int64_t>{4, 3, 5}));
}

TEST(TensorIo, FuzzedGarbageNeverCrashes) {
  // Random byte soup must produce an error or a valid tensor — never a
  // crash or an invalid object.
  Rng rng(881);
  const char alphabet[] = "0123456789 .-exX#\n\t abcdef";
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    int64_t len = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{200}));
    for (int64_t i = 0; i < len; ++i) {
      garbage += alphabet[rng.UniformInt(
          uint64_t{sizeof(alphabet) - 1})];
    }
    Result<SparseTensor> r = ParseTensorText(garbage);
    if (r.ok()) {
      EXPECT_OK(r->Validate());
    }
  }
}

TEST(TensorIo, EmptyTensorWithHeaderRoundTrips) {
  Result<SparseTensor> t = SparseTensor::Create3(4, 5, 6);
  ASSERT_OK(t.status());
  Result<SparseTensor> back = ParseTensorText(FormatTensorText(*t));
  ASSERT_OK(back.status());
  EXPECT_EQ(back->dims(), t->dims());
  EXPECT_EQ(back->nnz(), 0);
}

}  // namespace
}  // namespace haten2
