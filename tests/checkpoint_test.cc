// Fault-tolerance tests: atomic iteration checkpoints (manifest round trip,
// corruption rejection, keep-last-K retention), kill-and-resume bit-identity
// for all four ALS drivers, and plan-level retry/backoff in the scheduler.

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/missing_values.h"
#include "core/nonnegative_tucker.h"
#include "core/parafac.h"
#include "core/tucker.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/plan.h"
#include "mapreduce/scheduler.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace haten2 {
namespace {

namespace fs = std::filesystem;
using haten2::testing::RandomSparseTensor;

/// A per-test temp directory, wiped before use.
std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

KruskalModel SmallKruskal() {
  Rng rng(7);
  KruskalModel m;
  m.lambda = {2.0, 0.5};
  m.factors.push_back(DenseMatrix::RandomUniform(4, 2, &rng));
  m.factors.push_back(DenseMatrix::RandomUniform(3, 2, &rng));
  m.fit_history = {0.25, 0.5};
  return m;
}

// ---------------------------------------------------------------------------
// Checkpoint layer unit tests
// ---------------------------------------------------------------------------

TEST(Checkpoint, WriteLoadRoundTripsManifestAndModel) {
  CheckpointOptions options;
  options.directory = FreshDir("ckpt_roundtrip");
  CheckpointWriter writer(options);

  KruskalModel model = SmallKruskal();
  CheckpointManifest manifest;
  manifest.method = "parafac";
  manifest.model_kind = "kruskal";
  manifest.fingerprint = 0xdeadbeefULL;
  manifest.iteration = 2;
  manifest.metric = 0.5;
  manifest.fit_history = model.fit_history;
  ASSERT_OK(writer.Write(manifest, &model, nullptr));

  Result<LoadedCheckpoint> loaded =
      LoadLatestCheckpoint(options.directory);
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->manifest.method, "parafac");
  EXPECT_EQ(loaded->manifest.model_kind, "kruskal");
  EXPECT_EQ(loaded->manifest.fingerprint, 0xdeadbeefULL);
  EXPECT_EQ(loaded->manifest.iteration, 2);
  EXPECT_DOUBLE_EQ(loaded->manifest.metric, 0.5);
  EXPECT_EQ(loaded->manifest.fit_history, model.fit_history);
  // %.17g text round trip is bit-exact.
  ASSERT_EQ(loaded->kruskal.factors.size(), 2u);
  for (size_t m = 0; m < 2; ++m) {
    EXPECT_DOUBLE_EQ(
        loaded->kruskal.factors[m].MaxAbsDiff(model.factors[m]), 0.0);
  }
  EXPECT_EQ(loaded->kruskal.lambda, model.lambda);
}

TEST(Checkpoint, MissingDirectoryAndEmptyDirectoryAreNotFound) {
  std::string dir = FreshDir("ckpt_missing");
  EXPECT_TRUE(LoadLatestCheckpoint(dir).status().IsNotFound());
  fs::create_directories(dir);
  EXPECT_TRUE(LoadLatestCheckpoint(dir).status().IsNotFound());
  Result<std::vector<std::string>> list = ListCheckpoints(dir);
  ASSERT_OK(list.status());
  EXPECT_TRUE(list->empty());
}

TEST(Checkpoint, TruncatedManifestIsRejectedWithClearStatus) {
  CheckpointOptions options;
  options.directory = FreshDir("ckpt_truncated");
  CheckpointWriter writer(options);
  KruskalModel model = SmallKruskal();
  CheckpointManifest manifest;
  manifest.method = "parafac";
  manifest.model_kind = "kruskal";
  manifest.iteration = 2;
  ASSERT_OK(writer.Write(manifest, &model, nullptr));

  // Tear off the manifest's trailing "end" marker, simulating a torn copy.
  std::string manifest_path =
      options.directory + "/" + CheckpointDirName(2) + "/MANIFEST";
  std::ifstream in(manifest_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  ASSERT_NE(content.find("end\n"), std::string::npos);
  content.resize(content.find("end\n"));
  std::ofstream(manifest_path, std::ios::trunc) << content;

  Status status = ReadCheckpointManifest(options.directory + "/" +
                                         CheckpointDirName(2))
                      .status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("truncated"), std::string::npos)
      << status.ToString();
}

TEST(Checkpoint, DiscoverySkipsTornTmpAndFallsBackToValidCheckpoint) {
  // The staleness regression (ISSUE 10): a crash mid-write used to leave
  // `iter_N.tmp` debris and end-marker-less manifests that discovery
  // happily picked as "newest", so resume loaded garbage newer than the
  // last good checkpoint. Discovery must skip both and fall back.
  CheckpointOptions options;
  options.directory = FreshDir("ckpt_torn_tmp");
  options.keep_last = 10;
  CheckpointWriter writer(options);
  KruskalModel model = SmallKruskal();
  CheckpointManifest manifest;
  manifest.method = "parafac";
  manifest.model_kind = "kruskal";
  manifest.iteration = 2;
  manifest.metric = 0.5;
  ASSERT_OK(writer.Write(manifest, &model, nullptr));

  // A newer checkpoint whose manifest lost its end marker (torn copy).
  manifest.iteration = 4;
  ASSERT_OK(writer.Write(manifest, &model, nullptr));
  std::string torn = options.directory + "/" + CheckpointDirName(4);
  std::ifstream in(torn + "/MANIFEST");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  ASSERT_NE(content.find("end\n"), std::string::npos);
  content.resize(content.find("end\n"));
  std::ofstream(torn + "/MANIFEST", std::ios::trunc) << content;

  // Orphaned staging directory from a writer killed before the rename —
  // newer still, and shaped like a checkpoint inside.
  std::string orphan = options.directory + "/" + CheckpointDirName(6) + ".tmp";
  fs::create_directories(orphan);
  std::ofstream(orphan + "/MANIFEST") << "garbage";

  // Listing never surfaces staging directories.
  Result<std::vector<std::string>> list = ListCheckpoints(options.directory);
  ASSERT_OK(list.status());
  ASSERT_EQ(list->size(), 2u);
  for (const std::string& dir : *list) {
    EXPECT_EQ(dir.find(".tmp"), std::string::npos) << dir;
  }

  // Loading walks past the torn iter_4 to the committed iter_2.
  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(options.directory);
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->manifest.iteration, 2);
  EXPECT_DOUBLE_EQ(loaded->kruskal.factors[0].MaxAbsDiff(model.factors[0]),
                   0.0);

  // When *every* candidate is broken, the newest candidate's error is
  // surfaced instead of a silent cold start.
  std::string good = options.directory + "/" + CheckpointDirName(2);
  std::ofstream(good + "/MANIFEST", std::ios::trunc) << "garbage";
  Result<LoadedCheckpoint> none = LoadLatestCheckpoint(options.directory);
  EXPECT_FALSE(none.ok());
  EXPECT_FALSE(none.status().IsNotFound()) << none.status().ToString();
}

TEST(Checkpoint, CorruptManifestsAreRejected) {
  std::string dir = FreshDir("ckpt_corrupt");
  std::string ckpt = dir + "/" + CheckpointDirName(1);
  fs::create_directories(ckpt);

  auto write_manifest = [&](const std::string& text) {
    std::ofstream(ckpt + "/MANIFEST", std::ios::trunc) << text;
  };

  // Wrong magic.
  write_manifest("not-a-checkpoint\nend\n");
  EXPECT_TRUE(ReadCheckpointManifest(ckpt).status().IsInvalidArgument());
  // Unknown field.
  write_manifest(
      "haten2-checkpoint-v1\nmethod parafac\nmodel kruskal\n"
      "iteration 1\nbogus_field 3\nend\n");
  EXPECT_TRUE(ReadCheckpointManifest(ckpt).status().IsInvalidArgument());
  // Garbage iteration counter.
  write_manifest(
      "haten2-checkpoint-v1\nmethod parafac\nmodel kruskal\n"
      "iteration banana\nend\n");
  EXPECT_TRUE(ReadCheckpointManifest(ckpt).status().IsInvalidArgument());
  // Unknown model kind.
  write_manifest(
      "haten2-checkpoint-v1\nmethod parafac\nmodel pencil\n"
      "iteration 1\nend\n");
  EXPECT_TRUE(ReadCheckpointManifest(ckpt).status().IsInvalidArgument());
  // Missing required fields.
  write_manifest("haten2-checkpoint-v1\nmodel kruskal\nend\n");
  EXPECT_TRUE(ReadCheckpointManifest(ckpt).status().IsInvalidArgument());
  // Missing manifest entirely.
  fs::remove(ckpt + "/MANIFEST");
  EXPECT_TRUE(ReadCheckpointManifest(ckpt).status().IsNotFound());
}

TEST(Checkpoint, KeepLastPrunesOldestCheckpoints) {
  CheckpointOptions options;
  options.directory = FreshDir("ckpt_retention");
  options.keep_last = 2;
  CheckpointWriter writer(options);
  KruskalModel model = SmallKruskal();
  for (int iter : {2, 4, 6, 8}) {
    CheckpointManifest manifest;
    manifest.method = "parafac";
    manifest.model_kind = "kruskal";
    manifest.iteration = iter;
    ASSERT_OK(writer.Write(manifest, &model, nullptr));
  }
  Result<std::vector<std::string>> list = ListCheckpoints(options.directory);
  ASSERT_OK(list.status());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_NE((*list)[0].find(CheckpointDirName(6)), std::string::npos);
  EXPECT_NE((*list)[1].find(CheckpointDirName(8)), std::string::npos);
  // The newest checkpoint is the one a resume loads.
  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(options.directory);
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->manifest.iteration, 8);
}

TEST(Checkpoint, ValidateForResumeNamesTheMismatch) {
  CheckpointManifest manifest;
  manifest.method = "parafac";
  manifest.model_kind = "kruskal";
  manifest.fingerprint = 42;

  EXPECT_OK(ValidateCheckpointForResume(manifest, "parafac", "kruskal", 42));
  Status wrong_kind =
      ValidateCheckpointForResume(manifest, "parafac", "tucker", 42);
  EXPECT_TRUE(wrong_kind.IsFailedPrecondition());
  Status wrong_method =
      ValidateCheckpointForResume(manifest, "tucker", "kruskal", 42);
  EXPECT_TRUE(wrong_method.IsFailedPrecondition());
  Status wrong_fingerprint =
      ValidateCheckpointForResume(manifest, "parafac", "kruskal", 43);
  EXPECT_TRUE(wrong_fingerprint.IsFailedPrecondition());
  EXPECT_NE(wrong_fingerprint.ToString().find("fingerprint"),
            std::string::npos);
}

TEST(Checkpoint, FingerprintSeparatesRunConfigurations) {
  Rng rng(11);
  SparseTensor x = RandomSparseTensor({6, 5, 4}, 40, &rng);
  SparseTensor y = RandomSparseTensor({6, 5, 5}, 40, &rng);
  uint64_t base =
      CheckpointFingerprint("parafac", Variant::kDri, 17, 1e-6, {3}, x);
  EXPECT_EQ(base,
            CheckpointFingerprint("parafac", Variant::kDri, 17, 1e-6, {3}, x));
  EXPECT_NE(base,
            CheckpointFingerprint("tucker", Variant::kDri, 17, 1e-6, {3}, x));
  EXPECT_NE(base,
            CheckpointFingerprint("parafac", Variant::kDrn, 17, 1e-6, {3}, x));
  EXPECT_NE(base,
            CheckpointFingerprint("parafac", Variant::kDri, 18, 1e-6, {3}, x));
  EXPECT_NE(base,
            CheckpointFingerprint("parafac", Variant::kDri, 17, 1e-7, {3}, x));
  EXPECT_NE(base,
            CheckpointFingerprint("parafac", Variant::kDri, 17, 1e-6, {4}, x));
  EXPECT_NE(base,
            CheckpointFingerprint("parafac", Variant::kDri, 17, 1e-6, {3}, y));
}

// ---------------------------------------------------------------------------
// Kill-and-resume bit-identity, one test per driver.
//
// Shape shared by all four: a straight run of N iterations is the reference;
// an "interrupted" run stops after fewer iterations having committed
// periodic checkpoints; a resumed run restores the newest checkpoint and
// runs to N. Factors, metric histories, and iteration numbering must be
// BIT-identical to the straight run — resume continues the sequence, it
// does not restart it.
// ---------------------------------------------------------------------------

TEST(CheckpointResume, ParafacResumeIsBitIdentical) {
  Rng rng(911);
  SparseTensor x = RandomSparseTensor({12, 10, 8}, 120, &rng);
  Engine engine(ClusterConfig::ForTesting());

  Haten2Options options;
  options.max_iterations = 8;
  options.tolerance = 0.0;
  Result<KruskalModel> full = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(full.status());

  CheckpointOptions ckpt;
  ckpt.directory = FreshDir("resume_parafac");
  ckpt.every_n_iterations = 2;
  Haten2Options interrupted = options;
  interrupted.max_iterations = 5;  // killed mid-run after checkpoint 4
  interrupted.checkpoint = &ckpt;
  ASSERT_OK(Haten2ParafacAls(&engine, x, 3, interrupted).status());

  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());
  EXPECT_EQ(latest->manifest.iteration, 4);
  EXPECT_EQ(latest->manifest.fit_history.size(), 4u);

  DecompositionTrace resumed_trace;
  Haten2Options resume = options;
  resume.resume_from = &latest.value();
  resume.trace = &resumed_trace;
  Result<KruskalModel> resumed = Haten2ParafacAls(&engine, x, 3, resume);
  ASSERT_OK(resumed.status());

  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  EXPECT_EQ(resumed->iterations, full->iterations);
  // The fit history continues from the manifest instead of duplicating the
  // checkpointed prefix: 8 entries total, identical to the straight run.
  EXPECT_EQ(resumed->fit_history, full->fit_history);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(resumed->factors[m].MaxAbsDiff(full->factors[m]), 0.0);
  }
  // The resumed trace picks up the iteration numbering mid-run.
  ASSERT_EQ(resumed_trace.iterations.size(), 4u);
  EXPECT_EQ(resumed_trace.iterations.front().iteration, 5);
  EXPECT_EQ(resumed_trace.iterations.back().iteration, 8);
}

TEST(CheckpointResume, NonnegativeParafacResumeIsBitIdentical) {
  Rng rng(912);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Engine engine(ClusterConfig::ForTesting());

  Haten2Options options;
  options.max_iterations = 6;
  options.tolerance = 0.0;
  options.nonnegative = true;
  Result<KruskalModel> full = Haten2ParafacAls(&engine, x, 2, options);
  ASSERT_OK(full.status());

  CheckpointOptions ckpt;
  ckpt.directory = FreshDir("resume_parafac_nn");
  ckpt.every_n_iterations = 3;
  Haten2Options interrupted = options;
  interrupted.max_iterations = 4;
  interrupted.checkpoint = &ckpt;
  ASSERT_OK(Haten2ParafacAls(&engine, x, 2, interrupted).status());

  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());
  EXPECT_EQ(latest->manifest.method, "parafac-nn");
  EXPECT_EQ(latest->manifest.iteration, 3);

  Haten2Options resume = options;
  resume.resume_from = &latest.value();
  Result<KruskalModel> resumed = Haten2ParafacAls(&engine, x, 2, resume);
  ASSERT_OK(resumed.status());
  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  EXPECT_EQ(resumed->fit_history, full->fit_history);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(resumed->factors[m].MaxAbsDiff(full->factors[m]), 0.0);
  }
}

TEST(CheckpointResume, TuckerResumeIsBitIdentical) {
  Rng rng(913);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Engine engine(ClusterConfig::ForTesting());

  Haten2Options options;
  options.max_iterations = 6;
  options.tolerance = 0.0;
  Result<TuckerModel> full = Haten2TuckerAls(&engine, x, {3, 3, 3}, options);
  ASSERT_OK(full.status());

  CheckpointOptions ckpt;
  ckpt.directory = FreshDir("resume_tucker");
  ckpt.every_n_iterations = 2;
  Haten2Options interrupted = options;
  interrupted.max_iterations = 3;
  interrupted.checkpoint = &ckpt;
  ASSERT_OK(Haten2TuckerAls(&engine, x, {3, 3, 3}, interrupted).status());

  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());
  EXPECT_EQ(latest->manifest.model_kind, "tucker");
  EXPECT_EQ(latest->manifest.iteration, 2);
  EXPECT_EQ(latest->manifest.core_norm_history.size(), 2u);

  Haten2Options resume = options;
  resume.resume_from = &latest.value();
  Result<TuckerModel> resumed = Haten2TuckerAls(&engine, x, {3, 3, 3}, resume);
  ASSERT_OK(resumed.status());
  // Unlike the generic warm start (which defensively re-orthonormalizes and
  // is only close to 1e-9), the resume path restores factors verbatim, so
  // the trajectory is exactly bitwise.
  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  EXPECT_EQ(resumed->core_norm_history, full->core_norm_history);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(resumed->factors[m].MaxAbsDiff(full->factors[m]), 0.0);
  }
  EXPECT_DOUBLE_EQ(resumed->core.MaxAbsDiff(full->core), 0.0);
}

TEST(CheckpointResume, NonnegativeTuckerResumeIsBitIdentical) {
  Rng rng(914);
  SparseTensor x = RandomSparseTensor({9, 8, 7}, 90, &rng);
  Engine engine(ClusterConfig::ForTesting());

  Haten2Options options;
  options.max_iterations = 6;
  options.tolerance = 0.0;
  Result<TuckerModel> full =
      Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 2}, options);
  ASSERT_OK(full.status());

  CheckpointOptions ckpt;
  ckpt.directory = FreshDir("resume_tucker_nn");
  ckpt.every_n_iterations = 2;
  Haten2Options interrupted = options;
  interrupted.max_iterations = 5;  // checkpoints land at iterations 2 and 4
  interrupted.checkpoint = &ckpt;
  ASSERT_OK(Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 2}, interrupted)
                .status());

  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());
  EXPECT_EQ(latest->manifest.method, "tucker-nn");
  EXPECT_EQ(latest->manifest.iteration, 4);

  Haten2Options resume = options;
  resume.resume_from = &latest.value();
  Result<TuckerModel> resumed =
      Haten2NonnegativeTuckerAls(&engine, x, {2, 2, 2}, resume);
  ASSERT_OK(resumed.status());
  // The multiplicative updates rescale the core too; restoring it makes the
  // resumed trajectory exactly bitwise.
  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  EXPECT_EQ(resumed->core_norm_history, full->core_norm_history);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(resumed->factors[m].MaxAbsDiff(full->factors[m]), 0.0);
  }
  EXPECT_DOUBLE_EQ(resumed->core.MaxAbsDiff(full->core), 0.0);
}

TEST(CheckpointResume, MissingValuesResumeIsBitIdentical) {
  // Exact rank-2 tensor observed on a random half of the cells (the
  // missing-value driver's fixture shape).
  Rng rng(915);
  std::vector<double> lambda = {3.0, 1.5};
  DenseMatrix a = DenseMatrix::RandomUniform(8, 2, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(7, 2, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(6, 2, &rng);
  Result<DenseTensor> dense = ReconstructKruskal(lambda, {&a, &b, &c});
  ASSERT_OK(dense.status());
  SparseTensor full_tensor = dense->ToSparse();
  Result<SparseTensor> mask_r = SparseTensor::Create({8, 7, 6});
  Result<SparseTensor> data_r = SparseTensor::Create({8, 7, 6});
  ASSERT_OK(mask_r.status());
  ASSERT_OK(data_r.status());
  SparseTensor mask = std::move(mask_r).value();
  SparseTensor data = std::move(data_r).value();
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      for (int64_t k = 0; k < 6; ++k) {
        if (!rng.Bernoulli(0.5)) continue;
        int64_t idx[3] = {i, j, k};
        mask.AppendUnchecked(idx, 1.0);
        double v = full_tensor.Get({i, j, k});
        if (v != 0.0) data.AppendUnchecked(idx, v);
      }
    }
  }
  mask.Canonicalize();
  data.Canonicalize();

  Engine engine(ClusterConfig::ForTesting());
  MissingValueOptions options;
  options.em_iterations = 6;
  options.em_tolerance = 0.0;
  options.base.seed = 9;
  Result<MissingValueModel> full =
      Haten2ParafacMissing(&engine, data, mask, 2, options);
  ASSERT_OK(full.status());

  CheckpointOptions ckpt;
  ckpt.directory = FreshDir("resume_missing");
  ckpt.every_n_iterations = 2;
  MissingValueOptions interrupted = options;
  interrupted.em_iterations = 3;
  interrupted.base.checkpoint = &ckpt;
  ASSERT_OK(
      Haten2ParafacMissing(&engine, data, mask, 2, interrupted).status());

  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());
  EXPECT_EQ(latest->manifest.method, "parafac-em");
  EXPECT_EQ(latest->manifest.iteration, 2);

  MissingValueOptions resume = options;
  resume.base.resume_from = &latest.value();
  Result<MissingValueModel> resumed =
      Haten2ParafacMissing(&engine, data, mask, 2, resume);
  ASSERT_OK(resumed.status());
  EXPECT_DOUBLE_EQ(resumed->observed_fit, full->observed_fit);
  EXPECT_EQ(resumed->observed_fit_history, full->observed_fit_history);
  EXPECT_EQ(resumed->em_iterations, full->em_iterations);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(
        resumed->model.factors[m].MaxAbsDiff(full->model.factors[m]), 0.0);
  }
}

TEST(CheckpointResume, ResumeRefusesForeignCheckpoint) {
  Rng rng(916);
  SparseTensor x = RandomSparseTensor({8, 7, 6}, 60, &rng);
  Engine engine(ClusterConfig::ForTesting());

  CheckpointOptions ckpt;
  ckpt.directory = FreshDir("resume_foreign");
  ckpt.every_n_iterations = 2;
  Haten2Options options;
  options.max_iterations = 4;
  options.tolerance = 0.0;
  options.checkpoint = &ckpt;
  ASSERT_OK(Haten2ParafacAls(&engine, x, 2, options).status());
  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());

  // Same checkpoint, different seed → different run → refused.
  Haten2Options wrong_seed = options;
  wrong_seed.checkpoint = nullptr;
  wrong_seed.seed = options.seed + 1;
  wrong_seed.resume_from = &latest.value();
  EXPECT_TRUE(Haten2ParafacAls(&engine, x, 2, wrong_seed)
                  .status()
                  .IsFailedPrecondition());
  // A kruskal checkpoint cannot resume a Tucker run.
  Haten2Options wrong_method = options;
  wrong_method.checkpoint = nullptr;
  wrong_method.resume_from = &latest.value();
  EXPECT_TRUE(Haten2TuckerAls(&engine, x, {2, 2, 2}, wrong_method)
                  .status()
                  .IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Kill-and-resume through the failure-injection hooks: a run that dies
// mid-flight from an injected crash (max_task_attempts=1 turns any injected
// task failure into a fatal kAborted job) resumes from its newest
// checkpoint and lands exactly on the uninterrupted trajectory.
// ---------------------------------------------------------------------------

TEST(CheckpointResume, InjectedKillThenResumeMatchesUninterruptedRun) {
  Rng rng(917);
  SparseTensor x = RandomSparseTensor({12, 10, 8}, 120, &rng);

  Haten2Options options;
  options.max_iterations = 8;
  options.tolerance = 0.0;

  // Reference: uninterrupted run on a healthy cluster.
  Engine healthy(ClusterConfig::ForTesting());
  Result<KruskalModel> full = Haten2ParafacAls(&healthy, x, 3, options);
  ASSERT_OK(full.status());

  // Victim: every injected task failure is fatal. The probability is tuned
  // (deterministic Mix64 injection, stable across platforms) so the run
  // survives past the first checkpoint and dies before completing.
  ClusterConfig flaky = ClusterConfig::ForTesting();
  flaky.task_failure_probability = 0.004;
  flaky.max_task_attempts = 1;
  Engine victim(flaky);
  CheckpointOptions ckpt;
  ckpt.directory = FreshDir("resume_injected_kill");
  ckpt.every_n_iterations = 1;
  Haten2Options doomed = options;
  doomed.checkpoint = &ckpt;
  Status death = Haten2ParafacAls(&victim, x, 3, doomed).status();
  ASSERT_TRUE(death.IsAborted()) << death.ToString();

  // The kill left committed checkpoints behind; resume on a healthy
  // cluster continues the exact trajectory. Completed iterations were
  // bit-identical despite the injection (a job either dies or its output
  // is invariant), so the resumed result equals the uninterrupted one.
  Result<LoadedCheckpoint> latest = LoadLatestCheckpoint(ckpt.directory);
  ASSERT_OK(latest.status());
  EXPECT_GE(latest->manifest.iteration, 1);
  EXPECT_LT(latest->manifest.iteration, 8);

  Engine recovered(ClusterConfig::ForTesting());
  Haten2Options resume = options;
  resume.resume_from = &latest.value();
  Result<KruskalModel> resumed = Haten2ParafacAls(&recovered, x, 3, resume);
  ASSERT_OK(resumed.status());
  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  EXPECT_EQ(resumed->fit_history, full->fit_history);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(resumed->factors[m].MaxAbsDiff(full->factors[m]), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Plan-level retry/backoff in the scheduler.
// ---------------------------------------------------------------------------

TEST(SchedulerRecovery, TransientFailureIsRetriedWithBackoff) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.max_node_attempts = 3;
  Engine engine(config);

  int calls = 0;
  Plan plan("flaky");
  plan.AddJob("sometimes", {}, [&calls]() -> Status {
    return ++calls < 2 ? Status::Aborted("injected") : Status::OK();
  });
  ASSERT_OK(PlanScheduler(&engine).Execute(plan));
  EXPECT_EQ(calls, 2);

  PipelineStats pipeline = engine.PipelineSnapshot();
  ASSERT_EQ(pipeline.plans.size(), 1u);
  const PlanNodeStats& node = pipeline.plans[0].nodes[0];
  EXPECT_EQ(node.status, "ok");
  EXPECT_EQ(node.attempts, 2);
  EXPECT_DOUBLE_EQ(node.backoff_seconds, config.node_backoff_base_seconds);
  EXPECT_EQ(pipeline.plans[0].total_node_retries, 1);
  EXPECT_DOUBLE_EQ(pipeline.plans[0].total_backoff_seconds,
                   config.node_backoff_base_seconds);
  EXPECT_EQ(pipeline.TotalNodeRetries(), 1);
  // Simulated time charges the backoff (the real run never slept it).
  EXPECT_GE(CostModel(config).SimulatePipeline(pipeline),
            config.node_backoff_base_seconds);
}

TEST(SchedulerRecovery, PermanentFailureFailsFast) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.max_node_attempts = 5;
  Engine engine(config);

  int calls = 0;
  Plan plan("broken");
  plan.AddJob("bad-input", {}, [&calls]() -> Status {
    ++calls;
    return Status::InvalidArgument("permanently wrong");
  });
  Status status = PlanScheduler(&engine).Execute(plan);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(calls, 1);  // no retry for a permanent status
  PipelineStats pipeline = engine.PipelineSnapshot();
  EXPECT_EQ(pipeline.plans[0].nodes[0].attempts, 1);
  EXPECT_DOUBLE_EQ(pipeline.plans[0].nodes[0].backoff_seconds, 0.0);
}

TEST(SchedulerRecovery, ExhaustedAttemptsFailWithCappedBackoff) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.max_node_attempts = 4;
  config.node_backoff_base_seconds = 4.0;
  config.node_backoff_multiplier = 2.0;
  config.node_backoff_cap_seconds = 6.0;
  Engine engine(config);

  int calls = 0;
  Plan plan("hopeless");
  plan.AddJob("always-dies", {}, [&calls]() -> Status {
    ++calls;
    return Status::IOError("injected");
  });
  Status status = PlanScheduler(&engine).Execute(plan);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(calls, 4);
  PipelineStats pipeline = engine.PipelineSnapshot();
  const PlanNodeStats& node = pipeline.plans[0].nodes[0];
  EXPECT_EQ(node.status, "failed");
  EXPECT_EQ(node.attempts, 4);
  // Backoffs 4, then 8→capped 6, then 16→capped 6.
  EXPECT_DOUBLE_EQ(node.backoff_seconds, 4.0 + 6.0 + 6.0);
}

TEST(SchedulerRecovery, OomIsRetriedOnlyWhenEnabled) {
  for (bool retry_oom : {false, true}) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.max_node_attempts = 2;
    config.retry_oom_nodes = retry_oom;
    Engine engine(config);
    int calls = 0;
    Plan plan("oom");
    plan.AddJob("oom", {}, [&calls]() -> Status {
      ++calls;
      return Status::ResourceExhausted("o.o.m.");
    });
    Status status = PlanScheduler(&engine).Execute(plan);
    EXPECT_TRUE(status.IsResourceExhausted());
    EXPECT_EQ(calls, retry_oom ? 2 : 1);
  }
}

TEST(SchedulerRecovery, ConcurrentPathAlsoRetries) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.max_node_attempts = 3;
  Engine engine(config);

  int calls = 0;
  Plan plan("flaky-concurrent");
  plan.AddJob("a", {}, [] { return Status::OK(); });
  plan.AddJob("sometimes", {}, [&calls]() -> Status {
    return ++calls < 3 ? Status::Aborted("injected") : Status::OK();
  });
  ASSERT_OK(PlanScheduler(&engine, /*max_concurrent=*/2).Execute(plan));
  EXPECT_EQ(calls, 3);
  PipelineStats pipeline = engine.PipelineSnapshot();
  const PlanStats& stats = pipeline.plans[0];
  EXPECT_EQ(stats.nodes[1].attempts, 3);
  EXPECT_EQ(stats.total_node_retries, 2);
}

TEST(SchedulerRecovery, InjectedJobAbortsAreRetriedAndRunConverges) {
  // End to end: deterministic task-failure injection with a single task
  // attempt makes some engine jobs abort; node-level retries re-run them
  // under fresh job ids (fresh injection pattern) until they pass. The
  // decomposition completes, and the v3 retry counters surface the rescue.
  Rng rng(918);
  SparseTensor x = RandomSparseTensor({12, 10, 8}, 120, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  config.task_failure_probability = 0.004;
  config.max_task_attempts = 1;
  config.max_node_attempts = 6;
  Engine engine(config);

  Haten2Options options;
  options.max_iterations = 8;
  options.tolerance = 0.0;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(model.status());

  PipelineStats pipeline = engine.PipelineSnapshot();
  EXPECT_GT(pipeline.TotalNodeRetries(), 0);
  EXPECT_GT(pipeline.TotalNodeBackoffSeconds(), 0.0);
  EXPECT_GT(pipeline.NumFailedJobs(), 0);  // the aborted attempts stay logged
  // Retried attempts re-run the same computation: the result matches a run
  // on a healthy cluster bit for bit.
  Engine healthy(ClusterConfig::ForTesting());
  Result<KruskalModel> reference = Haten2ParafacAls(&healthy, x, 3, options);
  ASSERT_OK(reference.status());
  EXPECT_DOUBLE_EQ(model->fit, reference->fit);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(model->factors[m].MaxAbsDiff(reference->factors[m]),
                     0.0);
  }
  // Simulated cluster time charges the backoff on top of the job costs.
  CostModel cost(config);
  double with_backoff = cost.SimulatePipeline(pipeline);
  PipelineStats no_backoff = pipeline;
  for (PlanStats& p : no_backoff.plans) p.total_backoff_seconds = 0.0;
  EXPECT_DOUBLE_EQ(with_backoff - cost.SimulatePipeline(no_backoff),
                   pipeline.TotalNodeBackoffSeconds());
}

}  // namespace
}  // namespace haten2
