// Tests for the ParCube comparison method: sampling internals, sub-tensor
// extraction, and end-to-end approximate recovery of planted structure.

#include "baseline/parcube.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

TEST(ParCubeMarginals, SliceMasses) {
  Result<SparseTensor> t = SparseTensor::Create3(3, 4, 2);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({0, 1, 0}, 2.0));
  ASSERT_OK(t->Append({0, 3, 1}, -3.0));
  ASSERT_OK(t->Append({2, 1, 1}, 1.0));
  t->Canonicalize();
  std::vector<std::vector<double>> marginals = ComputeMarginals(*t);
  ASSERT_EQ(marginals.size(), 3u);
  EXPECT_EQ(marginals[0], (std::vector<double>{5.0, 0.0, 1.0}));
  EXPECT_EQ(marginals[1], (std::vector<double>{0.0, 3.0, 0.0, 3.0}));
  EXPECT_EQ(marginals[2], (std::vector<double>{2.0, 4.0}));
}

TEST(ParCubeBiasedSample, IncludesAnchorsAndRespectsCount) {
  Rng rng(811);
  std::vector<double> weights = {0.0, 5.0, 1.0, 0.0, 10.0, 2.0, 0.5, 0.0};
  std::vector<int64_t> anchors = {4, 1};
  std::vector<int64_t> sample = BiasedSample(weights, 5, anchors, &rng);
  EXPECT_EQ(sample.size(), 5u);
  std::unordered_set<int64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 5u);  // distinct
  EXPECT_TRUE(set.count(4) > 0);
  EXPECT_TRUE(set.count(1) > 0);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  // count > n clamps.
  std::vector<int64_t> all = BiasedSample(weights, 100, {}, &rng);
  EXPECT_EQ(all.size(), weights.size());
}

TEST(ParCubeBiasedSample, PrefersHeavyIndices) {
  Rng rng(812);
  std::vector<double> weights(100, 0.01);
  weights[7] = 100.0;
  weights[42] = 100.0;
  int hits_7 = 0;
  int hits_42 = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int64_t> sample = BiasedSample(weights, 5, {}, &rng);
    std::unordered_set<int64_t> set(sample.begin(), sample.end());
    hits_7 += set.count(7) > 0 ? 1 : 0;
    hits_42 += set.count(42) > 0 ? 1 : 0;
  }
  EXPECT_GT(hits_7, 190);
  EXPECT_GT(hits_42, 190);
}

TEST(ParCubeExtract, RemapsAndFilters) {
  Result<SparseTensor> t = SparseTensor::Create3(5, 5, 5);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({0, 0, 0}, 1.0));
  ASSERT_OK(t->Append({2, 3, 4}, 2.0));
  ASSERT_OK(t->Append({4, 4, 4}, 3.0));
  t->Canonicalize();
  std::vector<std::vector<int64_t>> kept = {{2, 4}, {3, 4}, {4}};
  Result<SparseTensor> sub = ExtractSubTensor(*t, kept);
  ASSERT_OK(sub.status());
  EXPECT_EQ(sub->dims(), (std::vector<int64_t>{2, 2, 1}));
  EXPECT_EQ(sub->nnz(), 2);
  EXPECT_DOUBLE_EQ(sub->Get({0, 0, 0}), 2.0);  // (2,3,4) -> (0,0,0)
  EXPECT_DOUBLE_EQ(sub->Get({1, 1, 0}), 3.0);  // (4,4,4) -> (1,1,0)

  EXPECT_TRUE(ExtractSubTensor(*t, {{0}, {0}}).status().IsInvalidArgument());
  EXPECT_TRUE(ExtractSubTensor(*t, {{0}, {}, {0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExtractSubTensor(*t, {{0}, {9}, {0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(ParCubeEndToEnd, FullSamplingMatchesPlainNonnegativeAls) {
  LowRankTensorSpec spec;
  spec.dims = {40, 35, 30};
  spec.rank = 2;
  spec.block_size = 8;
  spec.nnz_per_component = 300;
  spec.seed = 4;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  ASSERT_OK(planted.status());

  ParCubeOptions options;
  options.sample_fraction = 1.0;  // keep everything: exact sub-problem
  options.num_samples = 1;
  options.max_iterations = 25;
  options.seed = 9;
  Result<KruskalModel> parcube =
      ParCubeParafac(planted->tensor, 2, options);
  ASSERT_OK(parcube.status());

  BaselineOptions als;
  als.max_iterations = 25;
  als.nonnegative = true;
  als.seed = options.seed + 31u * 0;  // ParCube's per-sample seed
  Result<KruskalModel> direct =
      ToolboxParafacAls(planted->tensor, 2, als);
  ASSERT_OK(direct.status());
  EXPECT_NEAR(parcube->fit, direct->fit, 1e-6);
}

TEST(ParCubeEndToEnd, ApproximatesPlantedStructureFromSamples) {
  LowRankTensorSpec spec;
  spec.dims = {80, 70, 60};
  spec.rank = 3;
  spec.block_size = 12;
  spec.nnz_per_component = 800;
  spec.seed = 6;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  ASSERT_OK(planted.status());

  ParCubeOptions options;
  options.sample_fraction = 0.5;
  options.num_samples = 6;
  options.max_iterations = 30;
  options.seed = 12;
  Result<KruskalModel> model = ParCubeParafac(planted->tensor, 3, options);
  ASSERT_OK(model.status());
  EXPECT_EQ(model->factors.size(), 3u);
  EXPECT_EQ(model->rank(), 3);
  // Approximate: positive fit, well below exact but clearly above zero.
  EXPECT_GT(model->fit, 0.05);
  // Nonnegative pipeline end to end.
  for (const DenseMatrix& f : model->factors) {
    for (double v : f.data()) EXPECT_GE(v, 0.0);
  }
}

TEST(ParCubeEndToEnd, Validation) {
  Rng rng(813);
  SparseTensor x = haten2::testing::RandomSparseTensor({6, 6, 6}, 20, &rng);
  EXPECT_TRUE(ParCubeParafac(x, 0).status().IsInvalidArgument());
  ParCubeOptions bad;
  bad.sample_fraction = 0.0;
  EXPECT_TRUE(ParCubeParafac(x, 2, bad).status().IsInvalidArgument());
  bad = ParCubeOptions();
  bad.num_samples = 0;
  EXPECT_TRUE(ParCubeParafac(x, 2, bad).status().IsInvalidArgument());
  Result<SparseTensor> empty = SparseTensor::Create3(3, 3, 3);
  ASSERT_OK(empty.status());
  EXPECT_TRUE(ParCubeParafac(*empty, 2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace haten2
