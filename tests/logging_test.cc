// Tests for the logging facility: level filtering and CHECK semantics.

#include "util/logging.h"

#include <gtest/gtest.h>

namespace haten2 {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  LogLevel original = GetMinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output assertion
  // possible portably — this exercises the disabled path).
  HATEN2_LOG_DEBUG << "dropped";
  HATEN2_LOG_INFO << "dropped";
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  HATEN2_CHECK(1 + 1 == 2) << "never printed";
  HATEN2_CHECK_OK(Status::OK());
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ HATEN2_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ HATEN2_CHECK_OK(Status::Internal("bad")); },
               "Status not OK");
}

}  // namespace
}  // namespace haten2
