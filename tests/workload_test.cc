// Tests for the workload generators: determinism, planted structure, the
// paper's preprocessing pipeline, and the discovery helpers.

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_util.h"
#include "workload/knowledge_base.h"
#include "workload/network_logs.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

TEST(RandomTensorGen, RespectsSpecAndIsDeterministic) {
  RandomTensorSpec spec;
  spec.dims = {50, 40, 30};
  spec.nnz = 500;
  spec.seed = 9;
  Result<SparseTensor> a = GenerateRandomTensor(spec);
  Result<SparseTensor> b = GenerateRandomTensor(spec);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_TRUE(a->IdenticalTo(*b));
  EXPECT_EQ(a->dims(), spec.dims);
  // Collisions can only shrink the count, and only slightly at this density.
  EXPECT_LE(a->nnz(), 500);
  EXPECT_GT(a->nnz(), 480);
  EXPECT_OK(a->Validate());
  // Duplicate coordinate draws merge by summing, so a few entries can exceed
  // max_value; every entry is at least min_value and bounded by a small
  // multiple of max_value.
  for (int64_t e = 0; e < a->nnz(); ++e) {
    EXPECT_GE(a->value(e), spec.min_value);
    EXPECT_LE(a->value(e), 4 * spec.max_value);
  }

  spec.seed = 10;
  Result<SparseTensor> c = GenerateRandomTensor(spec);
  ASSERT_OK(c.status());
  EXPECT_FALSE(c->IdenticalTo(*a));
}

TEST(RandomTensorGen, DensityDriven) {
  Result<SparseTensor> t = GenerateRandomCubicTensor(30, 1e-3, 1);
  ASSERT_OK(t.status());
  EXPECT_EQ(t->dims(), (std::vector<int64_t>{30, 30, 30}));
  EXPECT_NEAR(static_cast<double>(t->nnz()), 27.0, 6.0);
  EXPECT_TRUE(GenerateRandomCubicTensor(0, 0.1, 1).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateRandomCubicTensor(10, 1.5, 1).status()
                  .IsInvalidArgument());
}

TEST(LowRankGen, PlantsBlocks) {
  LowRankTensorSpec spec;
  spec.dims = {40, 30, 20};
  spec.rank = 2;
  spec.block_size = 6;
  spec.nnz_per_component = 100;
  spec.noise_nnz = 50;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  ASSERT_OK(planted.status());
  EXPECT_EQ(planted->memberships.size(), 2u);
  for (const auto& per_mode : planted->memberships) {
    ASSERT_EQ(per_mode.size(), 3u);
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_EQ(per_mode[m].size(), 6u);
      for (int64_t i : per_mode[m]) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, spec.dims[m]);
      }
    }
  }
  // Structure entries live inside the planted blocks.
  int64_t inside = 0;
  for (int64_t e = 0; e < planted->tensor.nnz(); ++e) {
    for (const auto& per_mode : planted->memberships) {
      bool in_block = true;
      for (size_t m = 0; m < 3; ++m) {
        const auto& block = per_mode[m];
        if (!std::binary_search(block.begin(), block.end(),
                                planted->tensor.index(e, static_cast<int>(m)))) {
          in_block = false;
          break;
        }
      }
      if (in_block) {
        ++inside;
        break;
      }
    }
  }
  EXPECT_GT(inside, planted->tensor.nnz() / 2);
}

TEST(LowRankGen, Validation) {
  LowRankTensorSpec spec;
  spec.dims = {4, 4, 4};
  spec.block_size = 8;  // larger than dims
  EXPECT_TRUE(GenerateLowRankTensor(spec).status().IsInvalidArgument());
  spec.block_size = 2;
  spec.rank = 0;
  EXPECT_TRUE(GenerateLowRankTensor(spec).status().IsInvalidArgument());
}

TEST(KnowledgeBaseGen, PlantsConcepts) {
  KnowledgeBaseSpec spec;
  spec.num_subjects = 200;
  spec.num_objects = 200;
  spec.num_relations = 30;
  spec.num_concepts = 3;
  spec.subjects_per_concept = 15;
  spec.objects_per_concept = 15;
  spec.relations_per_concept = 3;
  spec.facts_per_concept = 300;
  spec.noise_facts = 100;
  Result<KnowledgeBase> kb = GenerateKnowledgeBase(spec);
  ASSERT_OK(kb.status());
  EXPECT_EQ(kb->concepts.size(), 3u);
  EXPECT_EQ(kb->tensor.dims(), (std::vector<int64_t>{200, 200, 30}));
  EXPECT_GT(kb->tensor.nnz(), 300);
  EXPECT_OK(kb->tensor.Validate());

  // share_groups: concept 1 reuses concept 0's object group.
  EXPECT_EQ(kb->concepts[1].objects, kb->concepts[0].objects);
  EXPECT_NE(kb->concepts[2].objects, kb->concepts[0].objects);

  // Subject groups are disjoint.
  std::unordered_set<int64_t> seen;
  for (const auto& c : kb->concepts) {
    for (int64_t s : c.subjects) {
      EXPECT_TRUE(seen.insert(s).second) << "subject " << s << " reused";
    }
  }

  // Names reflect planted membership.
  int64_t planted_subject = kb->concepts[0].subjects[0];
  EXPECT_NE(kb->SubjectName(planted_subject).find("c0:"), std::string::npos);
}

TEST(KnowledgeBaseGen, Validation) {
  KnowledgeBaseSpec spec;
  spec.num_concepts = 0;
  EXPECT_TRUE(GenerateKnowledgeBase(spec).status().IsInvalidArgument());
  spec = KnowledgeBaseSpec();
  spec.num_subjects = 10;
  spec.subjects_per_concept = 20;
  EXPECT_TRUE(GenerateKnowledgeBase(spec).status().IsInvalidArgument());
}

TEST(Preprocess, DropsScarceAndFrequentRelationsAndReweights) {
  Result<SparseTensor> t = SparseTensor::Create3(10, 10, 5);
  ASSERT_OK(t.status());
  // Relation 0: 6 facts (survives, most frequent among survivors).
  for (int i = 0; i < 6; ++i) ASSERT_OK(t->Append({i, i, 0}, 1.0));
  // Relation 1: 3 facts (survives).
  for (int i = 0; i < 3; ++i) ASSERT_OK(t->Append({i, i + 1, 1}, 1.0));
  // Relation 2: 1 fact (too scarce, dropped).
  ASSERT_OK(t->Append({0, 5, 2}, 1.0));
  // Relation 3: 20 facts (too frequent at fraction > 0.5, dropped).
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(t->Append({i, 0, 3}, 1.0));
    ASSERT_OK(t->Append({i, 1, 3}, 1.0));
  }
  t->Canonicalize();

  PreprocessOptions opts;
  opts.min_relation_count = 2;
  opts.max_relation_fraction = 0.5;
  Result<SparseTensor> cleaned = PreprocessKnowledgeTensor(*t, opts);
  ASSERT_OK(cleaned.status());
  // Only relations 0 and 1 remain.
  for (int64_t e = 0; e < cleaned->nnz(); ++e) {
    int64_t rel = cleaned->index(e, 2);
    EXPECT_TRUE(rel == 0 || rel == 1);
  }
  EXPECT_EQ(cleaned->nnz(), 9);
  // alpha = 6: relation 0 entries get 1 + log(6/6) = 1; relation 1 entries
  // get 1 + log(6/3) = 1 + log 2.
  EXPECT_DOUBLE_EQ(cleaned->Get({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(cleaned->Get({0, 1, 1}), 1.0 + std::log(2.0));
}

TEST(Preprocess, Validation) {
  Result<SparseTensor> t = SparseTensor::Create3(4, 4, 4);
  ASSERT_OK(t.status());
  ASSERT_OK(t->Append({0, 0, 0}, 1.0));
  t->Canonicalize();
  PreprocessOptions opts;
  opts.relation_mode = 7;
  EXPECT_TRUE(PreprocessKnowledgeTensor(*t, opts).status()
                  .IsInvalidArgument());
  opts = PreprocessOptions();
  opts.max_relation_fraction = 0.0;
  EXPECT_TRUE(PreprocessKnowledgeTensor(*t, opts).status()
                  .IsInvalidArgument());
  // All relations dropped -> FailedPrecondition.
  opts = PreprocessOptions();
  opts.min_relation_count = 100;
  EXPECT_TRUE(PreprocessKnowledgeTensor(*t, opts).status()
                  .IsFailedPrecondition());
}

TEST(DiscoveryHelpers, TopKAndRecovery) {
  DenseMatrix f = DenseMatrix::FromRows({
      {0.9, 0.0},
      {0.8, 0.1},
      {0.1, 0.7},
      {0.0, 0.9},
      {0.2, 0.1},
  });
  std::vector<std::vector<int64_t>> topk = TopKPerColumn(f, 2);
  ASSERT_EQ(topk.size(), 2u);
  EXPECT_EQ((std::unordered_set<int64_t>(topk[0].begin(), topk[0].end())),
            (std::unordered_set<int64_t>{0, 1}));
  EXPECT_EQ((std::unordered_set<int64_t>(topk[1].begin(), topk[1].end())),
            (std::unordered_set<int64_t>{2, 3}));

  std::vector<std::vector<int64_t>> planted = {{0, 1}, {2, 3}};
  EXPECT_DOUBLE_EQ(RecoveryScore(topk, planted), 1.0);
  std::vector<std::vector<int64_t>> wrong = {{4}, {4}};
  EXPECT_DOUBLE_EQ(RecoveryScore(wrong, planted), 0.0);
  EXPECT_DOUBLE_EQ(RecoveryScore(topk, {}), 1.0);
}

TEST(DiscoveryHelpers, TopCoreEntries) {
  Result<DenseTensor> core = DenseTensor::Create({2, 2, 2});
  ASSERT_OK(core.status());
  core->at({1, 0, 1}) = -5.0;
  core->at({0, 1, 0}) = 3.0;
  core->at({1, 1, 1}) = 1.0;
  std::vector<CoreEntry> top = TopCoreEntries(*core, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, (std::vector<int64_t>{1, 0, 1}));
  EXPECT_DOUBLE_EQ(top[0].value, -5.0);
  EXPECT_EQ(top[1].index, (std::vector<int64_t>{0, 1, 0}));
}

TEST(NetworkLogGen, PlantsServicesAndScan) {
  NetworkLogSpec spec;
  spec.num_sources = 100;
  spec.num_targets = 80;
  spec.num_ports = 50;
  spec.num_timestamps = 10;
  spec.num_services = 2;
  spec.clients_per_service = 10;
  spec.servers_per_service = 5;
  spec.flows_per_service = 500;
  spec.scan_ports = 20;
  spec.scan_window = 2;
  Result<NetworkLogs> logs = GenerateNetworkLogs(spec);
  ASSERT_OK(logs.status());
  EXPECT_EQ(logs->tensor.order(), 4);
  EXPECT_EQ(logs->services.size(), 2u);
  EXPECT_EQ(logs->scan_ports.size(), 20u);
  EXPECT_EQ(logs->scan_times.size(), 2u);
  EXPECT_OK(logs->tensor.Validate());
  // Every scan cell exists in the tensor.
  for (int64_t p : logs->scan_ports) {
    for (int64_t t : logs->scan_times) {
      EXPECT_GT(logs->tensor.Get(
                    {logs->scanner_source, logs->scan_target, p, t}),
                0.0);
    }
  }
  // 3-way variant.
  spec.include_time_mode = false;
  Result<NetworkLogs> flat = GenerateNetworkLogs(spec);
  ASSERT_OK(flat.status());
  EXPECT_EQ(flat->tensor.order(), 3);
}

TEST(NetworkLogGen, Validation) {
  NetworkLogSpec spec;
  spec.scan_ports = 10000;
  EXPECT_TRUE(GenerateNetworkLogs(spec).status().IsInvalidArgument());
  spec = NetworkLogSpec();
  spec.num_services = 0;
  EXPECT_TRUE(GenerateNetworkLogs(spec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace haten2
