// Tests for the seeded sketch operators (linalg/sketch.h): determinism at a
// fixed seed, shape and validation errors, and the structural properties of
// the Gaussian and CountSketch families.

#include "linalg/sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/linalg.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

TEST(SketchKind, ParseAndNameRoundTrip) {
  Result<SketchKind> g = ParseSketchKind("gaussian");
  ASSERT_OK(g.status());
  EXPECT_EQ(*g, SketchKind::kGaussian);
  EXPECT_STREQ(SketchKindName(*g), "gaussian");

  Result<SketchKind> c = ParseSketchKind("countsketch");
  ASSERT_OK(c.status());
  EXPECT_EQ(*c, SketchKind::kCountSketch);
  EXPECT_STREQ(SketchKindName(*c), "countsketch");

  EXPECT_TRUE(ParseSketchKind("none").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSketchKind("srht").status().IsInvalidArgument());
}

TEST(SketchOperator, ShapesMatchRequest) {
  for (SketchKind kind : {SketchKind::kGaussian, SketchKind::kCountSketch}) {
    Result<DenseMatrix> omega = SketchOperator(kind, 7, 12, 42);
    ASSERT_OK(omega.status());
    EXPECT_EQ(omega->rows(), 7);
    EXPECT_EQ(omega->cols(), 12);
  }
}

TEST(SketchOperator, RejectsBadShapes) {
  for (SketchKind kind : {SketchKind::kGaussian, SketchKind::kCountSketch}) {
    EXPECT_TRUE(SketchOperator(kind, 0, 4, 1).status().IsInvalidArgument());
    EXPECT_TRUE(SketchOperator(kind, -3, 4, 1).status().IsInvalidArgument());
    EXPECT_TRUE(SketchOperator(kind, 5, 0, 1).status().IsInvalidArgument());
    EXPECT_TRUE(SketchOperator(kind, 5, -1, 1).status().IsInvalidArgument());
  }
}

TEST(SketchOperator, BitIdenticalAtFixedSeedDifferentAcrossSeeds) {
  for (SketchKind kind : {SketchKind::kGaussian, SketchKind::kCountSketch}) {
    Result<DenseMatrix> a = SketchOperator(kind, 9, 6, 1234);
    Result<DenseMatrix> b = SketchOperator(kind, 9, 6, 1234);
    Result<DenseMatrix> c = SketchOperator(kind, 9, 6, 1235);
    ASSERT_OK(a.status());
    ASSERT_OK(b.status());
    ASSERT_OK(c.status());
    bool identical = true;
    bool differs_from_c = false;
    for (int64_t i = 0; i < a->rows(); ++i) {
      for (int64_t j = 0; j < a->cols(); ++j) {
        identical = identical && (*a)(i, j) == (*b)(i, j);
        differs_from_c = differs_from_c || (*a)(i, j) != (*c)(i, j);
      }
    }
    EXPECT_TRUE(identical) << SketchKindName(kind);
    EXPECT_TRUE(differs_from_c) << SketchKindName(kind);
  }
}

TEST(SketchOperator, CountSketchHasOneSignedEntryPerRow) {
  Result<DenseMatrix> omega =
      SketchOperator(SketchKind::kCountSketch, 40, 8, 7);
  ASSERT_OK(omega.status());
  for (int64_t q = 0; q < omega->rows(); ++q) {
    int nonzeros = 0;
    for (int64_t j = 0; j < omega->cols(); ++j) {
      double v = (*omega)(q, j);
      if (v != 0.0) {
        ++nonzeros;
        EXPECT_EQ(std::fabs(v), 1.0);
      }
    }
    EXPECT_EQ(nonzeros, 1) << "row " << q;
  }
}

TEST(SketchOperator, GaussianPreservesNormsInExpectation) {
  // E||xΩ||² = ||x||² for N(0, 1/s) entries; with s = 64 columns the
  // relative deviation concentrates well inside ±40%.
  Result<DenseMatrix> omega =
      SketchOperator(SketchKind::kGaussian, 16, 64, 99);
  ASSERT_OK(omega.status());
  Rng rng(5);
  DenseMatrix x = DenseMatrix::RandomNormal(1, 16, &rng);
  Result<DenseMatrix> y = MatMul(x, *omega);
  ASSERT_OK(y.status());
  double x_sq = 0.0, y_sq = 0.0;
  for (int64_t j = 0; j < x.cols(); ++j) x_sq += x(0, j) * x(0, j);
  for (int64_t j = 0; j < y->cols(); ++j) y_sq += (*y)(0, j) * (*y)(0, j);
  EXPECT_GT(y_sq, 0.6 * x_sq);
  EXPECT_LT(y_sq, 1.4 * x_sq);
}

TEST(ApplySketch, MatchesMaterializedOperator) {
  Rng rng(11);
  DenseMatrix a = DenseMatrix::RandomNormal(13, 5, &rng);
  for (SketchKind kind : {SketchKind::kGaussian, SketchKind::kCountSketch}) {
    Result<DenseMatrix> direct = ApplySketch(a, kind, 9, 321);
    Result<DenseMatrix> omega = SketchOperator(kind, 5, 9, 321);
    ASSERT_OK(direct.status());
    ASSERT_OK(omega.status());
    Result<DenseMatrix> expected = MatMul(a, *omega);
    ASSERT_OK(expected.status());
    EXPECT_EQ(direct->rows(), 13);
    EXPECT_EQ(direct->cols(), 9);
    for (int64_t i = 0; i < direct->rows(); ++i) {
      for (int64_t j = 0; j < direct->cols(); ++j) {
        EXPECT_EQ((*direct)(i, j), (*expected)(i, j));
      }
    }
  }
}

TEST(ApplySketch, RejectsBadSketchSize) {
  Rng rng(12);
  DenseMatrix a = DenseMatrix::RandomNormal(4, 3, &rng);
  EXPECT_TRUE(ApplySketch(a, SketchKind::kGaussian, 0, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ApplySketch(a, SketchKind::kCountSketch, -2, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(SketchSeedForMode, ModesDrawIndependentSeeds) {
  EXPECT_NE(SketchSeedForMode(17, 0), SketchSeedForMode(17, 1));
  EXPECT_NE(SketchSeedForMode(17, 0), SketchSeedForMode(18, 0));
  EXPECT_EQ(SketchSeedForMode(17, 2), SketchSeedForMode(17, 2));
}

}  // namespace
}  // namespace haten2
