// Failure-injection tests: the engine's Hadoop-style task retries must
// leave job output invariant, surface in the counters and the cost model,
// and abort the job when a task exhausts its attempts — and the
// decomposition drivers must ride through task failures unchanged.

#include <gtest/gtest.h>

#include <map>

#include "core/parafac.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/engine.h"
#include "test_util.h"

namespace haten2 {
namespace {

std::map<int64_t, int64_t> WordCount(Engine* engine,
                                     const std::vector<int64_t>& words) {
  auto result = engine->Run<int64_t, int64_t, int64_t, int64_t>(
      "wc", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(w, sum);
      });
  HATEN2_CHECK(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> histogram;
  for (auto& [w, c] : *result) histogram[w] = c;
  return histogram;
}

TEST(FailureInjection, OutputInvariantUnderRetries) {
  std::vector<int64_t> words;
  Rng rng(601);
  for (int i = 0; i < 3000; ++i) {
    words.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{50})));
  }
  ClusterConfig clean = ClusterConfig::ForTesting();
  Engine reference(clean);
  std::map<int64_t, int64_t> want = WordCount(&reference, words);

  ClusterConfig flaky = clean;
  flaky.task_failure_probability = 0.3;
  flaky.max_task_attempts = 20;  // retries always eventually succeed
  Engine engine(flaky);
  std::map<int64_t, int64_t> got = WordCount(&engine, words);
  EXPECT_EQ(got, want);
}

TEST(FailureInjection, RetriesAreCountedAndDeterministic) {
  std::vector<int64_t> words(2000, 1);
  ClusterConfig flaky = ClusterConfig::ForTesting();
  flaky.num_machines = 16;  // more map tasks -> more attempts sampled
  flaky.task_failure_probability = 0.4;
  flaky.max_task_attempts = 50;
  flaky.failure_seed = 77;

  Engine a(flaky);
  WordCount(&a, words);
  int64_t retries_a = a.pipeline().jobs[0].map_task_retries;
  EXPECT_GT(retries_a, 0);  // w.h.p. with 16 tasks at p=0.4

  Engine b(flaky);
  WordCount(&b, words);
  EXPECT_EQ(b.pipeline().jobs[0].map_task_retries, retries_a);

  flaky.failure_seed = 78;
  Engine c(flaky);
  WordCount(&c, words);
  // Different seed, different (very likely) retry pattern; at minimum the
  // run still succeeds with identical output counts.
  EXPECT_EQ(c.pipeline().jobs[0].reduce_output_records, 1);
}

TEST(FailureInjection, ExhaustedAttemptsAbortTheJob) {
  std::vector<int64_t> words(100, 1);
  ClusterConfig doomed = ClusterConfig::ForTesting();
  doomed.task_failure_probability = 1.0;  // every attempt fails
  doomed.max_task_attempts = 3;
  Engine engine(doomed);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "doomed", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status().ToString();
  // Memory fully released even on the abort path.
  EXPECT_EQ(engine.memory().used(), 0u);
}

TEST(FailureInjection, RetriesInflateSimulatedMapTime) {
  std::vector<int64_t> words(100000, 1);
  ClusterConfig config = ClusterConfig::ForTesting();
  config.num_machines = 8;

  Engine clean(config);
  WordCount(&clean, words);

  config.task_failure_probability = 0.5;
  config.max_task_attempts = 50;
  Engine flaky(config);
  WordCount(&flaky, words);

  CostModel model(config);
  double t_clean = model.SimulatePipeline(clean.pipeline());
  double t_flaky = model.SimulatePipeline(flaky.pipeline());
  EXPECT_GT(t_flaky, t_clean);
}

TEST(FailureInjection, DecompositionSurvivesFlakyCluster) {
  Rng rng(602);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({12, 10, 8}, 120, &rng);

  ClusterConfig clean = ClusterConfig::ForTesting();
  Engine reference(clean);
  Haten2Options options;
  options.max_iterations = 4;
  options.tolerance = 0.0;
  Result<KruskalModel> want = Haten2ParafacAls(&reference, x, 3, options);
  ASSERT_OK(want.status());

  ClusterConfig flaky = clean;
  flaky.task_failure_probability = 0.25;
  flaky.max_task_attempts = 30;
  Engine engine(flaky);
  Result<KruskalModel> got = Haten2ParafacAls(&engine, x, 3, options);
  ASSERT_OK(got.status());
  EXPECT_DOUBLE_EQ(got->fit, want->fit);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(got->factors[m].MaxAbsDiff(want->factors[m]), 0.0);
  }
}

}  // namespace
}  // namespace haten2
