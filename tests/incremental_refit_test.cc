// The incremental half of the refit loop (ISSUE 10): PatchCsfLayout's
// array-identity contract against fresh builds, ContractCache::ApplyDelta
// dirty-slice accounting (including the every-slice-dirty degenerate), the
// full-content-fingerprint regression for same-nnz in-place edits, the
// full-vs-incremental bit-identity of IncrementalRefitSession, and
// checkpoint warm starts that skip torn checkpoints.

#include "core/incremental_refit.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/contract.h"
#include "linalg/sparse_kernels.h"
#include "mapreduce/engine.h"
#include "tensor/delta_log.h"
#include "tensor/sparse_tensor.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

namespace fs = std::filesystem;
using haten2::testing::RandomSparseTensor;

std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

/// Field-by-field equality of two layouts — the "array-identical" contract
/// PatchCsfLayout documents, which is what makes incremental refits
/// bit-identical to full ones.
void ExpectLayoutsIdentical(const CsfLayout& a, const CsfLayout& b) {
  EXPECT_EQ(a.free_mode, b.free_mode);
  EXPECT_EQ(a.num_streams, b.num_streams);
  EXPECT_EQ(a.cmodes, b.cmodes);
  EXPECT_EQ(a.slice_ids, b.slice_ids);
  EXPECT_EQ(a.slice_fiber_begin, b.slice_fiber_begin);
  EXPECT_EQ(a.fiber_entry_begin, b.fiber_entry_begin);
  EXPECT_EQ(a.fiber_coords, b.fiber_coords);
  EXPECT_EQ(a.entry_inner, b.entry_inner);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    // Exact comparison: patched values must be the same bits.
    EXPECT_EQ(a.values[i], b.values[i]) << "value index " << i;
  }
}

/// A delta confined to a couple of slices per mode.
SparseTensor SliceLocalDelta(const std::vector<int64_t>& dims) {
  Result<SparseTensor> d = SparseTensor::Create(dims);
  HATEN2_CHECK(d.ok());
  HATEN2_CHECK(d->Append({1, 2, 0}, 0.75).ok());
  HATEN2_CHECK(d->Append({1, 0, 3}, -1.25).ok());
  HATEN2_CHECK(d->Append({3, 2, 3}, 2.5).ok());
  d->Canonicalize();
  return std::move(d).value();
}

// ---------------------------------------------------------------------------
// PatchCsfLayout: kernel-level array identity.
// ---------------------------------------------------------------------------

TEST(PatchCsfLayout, ArrayIdenticalToFreshBuildAfterSliceLocalEdit) {
  Rng rng(9001);
  SparseTensor base = RandomSparseTensor({8, 7, 6}, 60, &rng);
  SparseTensor delta = SliceLocalDelta(base.dims());
  SparseTensor merged = base;
  ASSERT_OK(MergeDelta(&merged, delta));

  for (int m = 0; m < 3; ++m) {
    Result<CsfLayout> old_layout = BuildCsfLayout(base, m);
    ASSERT_OK(old_layout.status());
    std::vector<int64_t> dirty;
    for (int64_t e = 0; e < delta.nnz(); ++e) {
      dirty.push_back(delta.IndexPtr(e)[m]);
    }
    CsfPatchCounters counters;
    Result<CsfLayout> patched =
        PatchCsfLayout(*old_layout, merged, dirty, &counters);
    ASSERT_TRUE(patched.ok())
        << "free mode " << m << ": " << patched.status().ToString();
    Result<CsfLayout> fresh = BuildCsfLayout(merged, m);
    ASSERT_OK(fresh.status());
    ExpectLayoutsIdentical(*patched, *fresh);
    // The delta touched at most 3 slices per mode, so most slices of an
    // 8/7/6-wide mode must have been salvaged verbatim.
    EXPECT_GT(counters.slices_reused, 0) << "free mode " << m;
    EXPECT_LE(counters.slices_rebuilt, 3) << "free mode " << m;
  }
}

TEST(PatchCsfLayout, UnderDeclaredDirtySetIsRejectedNotSilentlyWrong) {
  Rng rng(9002);
  SparseTensor base = RandomSparseTensor({6, 6, 6}, 40, &rng);
  SparseTensor delta = SliceLocalDelta(base.dims());
  SparseTensor merged = base;
  ASSERT_OK(MergeDelta(&merged, delta));

  Result<CsfLayout> old_layout = BuildCsfLayout(base, 0);
  ASSERT_OK(old_layout.status());
  // Claim nothing changed: the patch's nnz reconciliation must notice the
  // mismatch and refuse rather than emit a layout that drops the new
  // entries.
  Result<CsfLayout> patched =
      PatchCsfLayout(*old_layout, merged, /*dirty_slices=*/{}, nullptr);
  EXPECT_FALSE(patched.ok());
}

// ---------------------------------------------------------------------------
// ContractCache::ApplyDelta: dirty-slice invalidation and accounting.
// ---------------------------------------------------------------------------

TEST(ContractCacheDelta, PatchesCachedLayoutsAndKeepsThemHot) {
  Rng rng(9003);
  SparseTensor base = RandomSparseTensor({8, 7, 6}, 60, &rng);
  SparseTensor delta = SliceLocalDelta(base.dims());
  SparseTensor merged = base;
  ASSERT_OK(MergeDelta(&merged, delta));

  ContractCache cache;
  for (int m = 0; m < 3; ++m) ASSERT_OK(cache.Layout(base, m).status());
  ASSERT_EQ(cache.layout_misses(), 3);

  ASSERT_OK(cache.ApplyDelta(merged, delta));
  EXPECT_EQ(cache.delta_patches(), 1);
  EXPECT_GT(cache.dirty_slices(), 0);
  EXPECT_EQ(cache.layout_full_invalidations(), 0);
  EXPECT_GT(cache.layout_slices_reused(), 0);

  // The patched slots key to the merged tensor: every mode is a hit, and
  // each served layout is array-identical to a fresh build.
  for (int m = 0; m < 3; ++m) {
    Result<std::shared_ptr<const CsfLayout>> served = cache.Layout(merged, m);
    ASSERT_OK(served.status());
    Result<CsfLayout> fresh = BuildCsfLayout(merged, m);
    ASSERT_OK(fresh.status());
    ExpectLayoutsIdentical(**served, *fresh);
  }
  EXPECT_EQ(cache.layout_hits(), 3);
  EXPECT_EQ(cache.layout_misses(), 3);
}

TEST(ContractCacheDelta, EverySliceDirtyCollapsesToFullInvalidation) {
  Rng rng(9004);
  SparseTensor base = RandomSparseTensor({4, 4, 4}, 30, &rng);
  // A superdiagonal delta touches every slice of every mode.
  Result<SparseTensor> d = SparseTensor::Create(base.dims());
  ASSERT_TRUE(d.ok());
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_OK(d->Append({i, i, i}, 1.0 + static_cast<double>(i)));
  }
  d->Canonicalize();
  SparseTensor merged = base;
  ASSERT_OK(MergeDelta(&merged, *d));

  ContractCache cache;
  for (int m = 0; m < 3; ++m) ASSERT_OK(cache.Layout(base, m).status());
  ASSERT_OK(cache.ApplyDelta(merged, *d));
  // Patching would rebuild every slice anyway, so each cached slot must
  // collapse to a plain invalidation and the next lookup is an honest miss.
  EXPECT_EQ(cache.layout_full_invalidations(), 3);
  ASSERT_OK(cache.Layout(merged, 0).status());
  EXPECT_EQ(cache.layout_misses(), 4);
  EXPECT_EQ(cache.layout_hits(), 0);
}

TEST(ContractCacheDelta, ApplyDeltaOnEmptyCacheJustKeysTheMergedTensor) {
  Rng rng(9005);
  SparseTensor base = RandomSparseTensor({5, 5, 5}, 20, &rng);
  SparseTensor delta = SliceLocalDelta(base.dims());
  SparseTensor merged = base;
  ASSERT_OK(MergeDelta(&merged, delta));

  ContractCache cache;
  ASSERT_OK(cache.ApplyDelta(merged, delta));
  // The cache now keys the merged tensor: the first Layout call misses
  // (nothing was cached to patch), the second hits.
  ASSERT_OK(cache.Layout(merged, 0).status());
  ASSERT_OK(cache.Layout(merged, 0).status());
  EXPECT_EQ(cache.layout_misses(), 1);
  EXPECT_EQ(cache.layout_hits(), 1);
}

// ---------------------------------------------------------------------------
// Fingerprint regression (ISSUE 10 satellite): the sampled fingerprint
// missed same-nnz edits at positions off its sample grid and served stale
// contractions. Full-content hashing must catch an edit *anywhere*.
// ---------------------------------------------------------------------------

TEST(ContractCacheFingerprint, SameNnzEditOffTheOldSampleGridInvalidates) {
  Rng rng(9006);
  // nnz well past the old 64-entry sample budget, so a stride sampler
  // skipped most entries.
  SparseTensor x = RandomSparseTensor({16, 16, 16}, 400, &rng);
  const int64_t nnz = x.nnz();
  ASSERT_GT(nnz, 128);

  ContractCache cache;
  auto records = cache.Records(/*engine=*/nullptr, x);
  ASSERT_OK(cache.Layout(x, 0).status());
  ASSERT_EQ(cache.misses(), 1);

  // Mutate a single value at an odd interior index — exactly the kind of
  // position an every-other-entry sampler never visited.
  const int64_t victim = nnz / 2 + 1;
  x.set_value(victim, x.value(victim) + 0.5);

  auto rebuilt = cache.Records(/*engine=*/nullptr, x);
  EXPECT_EQ(cache.misses(), 2) << "stale records served after in-place edit";
  EXPECT_NE(rebuilt.get(), records.get());
  EXPECT_DOUBLE_EQ((*rebuilt)[static_cast<size_t>(victim)].value,
                   x.value(victim));
  // The cached layout was dropped too: the next Layout call is a miss.
  ASSERT_OK(cache.Layout(x, 0).status());
  EXPECT_EQ(cache.layout_misses(), 2);
}

// ---------------------------------------------------------------------------
// IncrementalRefitSession: full vs incremental bit-identity.
// ---------------------------------------------------------------------------

IncrementalRefitOptions RefitOptions(bool incremental) {
  IncrementalRefitOptions options;
  options.rank = 4;
  options.incremental = incremental;
  options.als.max_iterations = 5;
  options.als.seed = 12345;
  return options;
}

Engine InCoreEngine() {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.contraction = "incore";  // the layout cache is what is under test
  HATEN2_CHECK(config.Validate().ok());
  return Engine(config);
}

void ExpectModelsBitIdentical(const KruskalModel& a, const KruskalModel& b) {
  ASSERT_EQ(a.factors.size(), b.factors.size());
  for (size_t m = 0; m < a.factors.size(); ++m) {
    EXPECT_EQ(a.factors[m].MaxAbsDiff(b.factors[m]), 0.0) << "mode " << m;
  }
  ASSERT_EQ(a.lambda.size(), b.lambda.size());
  for (size_t r = 0; r < a.lambda.size(); ++r) {
    EXPECT_EQ(a.lambda[r], b.lambda[r]) << "lambda " << r;
  }
}

TEST(IncrementalRefit, FullAndIncrementalRefitsAreBitIdentical) {
  Rng rng(9007);
  SparseTensor base = RandomSparseTensor({10, 9, 8}, 120, &rng);
  Result<DeltaLog> log = DeltaLog::Create(base.dims());
  ASSERT_TRUE(log.ok());
  ASSERT_OK(log->Append({2, 3, 1}, 1.5));
  ASSERT_OK(log->Append({2, 0, 1}, -0.5));
  ASSERT_OK(log->SealEpoch().status());
  ASSERT_OK(log->Append({7, 8, 6}, 2.25));
  ASSERT_OK(log->Append({7, 3, 6}, 0.75));
  ASSERT_OK(log->SealEpoch().status());

  Engine full_engine = InCoreEngine();
  IncrementalRefitSession full(&full_engine, base, RefitOptions(false));
  ASSERT_OK(full.FitBase());
  Engine incr_engine = InCoreEngine();
  IncrementalRefitSession incr(&incr_engine, base, RefitOptions(true));
  ASSERT_OK(incr.FitBase());

  for (int64_t e = 0; e < log->num_epochs(); ++e) {
    ASSERT_OK(full.RefitWithDelta(log->epoch(e)));
    ASSERT_OK(incr.RefitWithDelta(log->epoch(e)));
    // The contract: incremental changes cost, never the iterates.
    ExpectModelsBitIdentical(full.model(), incr.model());
  }
  EXPECT_EQ(full.counters().epochs, 2);
  EXPECT_EQ(incr.counters().epochs, 2);
  EXPECT_EQ(full.counters().delta_nnz, 4);
  // The incremental session actually exercised the patch path.
  EXPECT_EQ(incr.cache().delta_patches(), 2);
  EXPECT_GT(incr.cache().layout_slices_reused(), 0);
  EXPECT_EQ(incr.cache().layout_full_invalidations(), 0);
  // The full-refit baseline rebuilt from scratch every epoch.
  EXPECT_EQ(full.cache().delta_patches(), 0);
}

TEST(IncrementalRefit, DeltaTouchingEverySliceStaysBitIdentical) {
  Rng rng(9008);
  SparseTensor base = RandomSparseTensor({5, 5, 5}, 40, &rng);
  // Superdiagonal epoch: every slice of every mode goes dirty, so the
  // incremental path degenerates to full invalidation — and must still
  // produce the same factors.
  Result<SparseTensor> d = SparseTensor::Create(base.dims());
  ASSERT_TRUE(d.ok());
  for (int64_t i = 0; i < 5; ++i) ASSERT_OK(d->Append({i, i, i}, 0.5));
  d->Canonicalize();

  Engine full_engine = InCoreEngine();
  IncrementalRefitSession full(&full_engine, base, RefitOptions(false));
  ASSERT_OK(full.FitBase());
  Engine incr_engine = InCoreEngine();
  IncrementalRefitSession incr(&incr_engine, base, RefitOptions(true));
  ASSERT_OK(incr.FitBase());

  ASSERT_OK(full.RefitWithDelta(*d));
  ASSERT_OK(incr.RefitWithDelta(*d));
  ExpectModelsBitIdentical(full.model(), incr.model());
  EXPECT_EQ(incr.cache().layout_full_invalidations(), 3);
}

// ---------------------------------------------------------------------------
// Checkpoint warm starts (ISSUE 10 satellite: discovery skips torn debris).
// ---------------------------------------------------------------------------

TEST(IncrementalRefit, WarmStartSkipsTornCheckpointAndOrphanedTmp) {
  std::string dir = FreshDir("refit_warm_start");
  Rng rng(9009);
  SparseTensor base = RandomSparseTensor({6, 5, 4}, 30, &rng);

  // A valid kruskal checkpoint at iteration 2 whose factors match the
  // session's shape and rank.
  KruskalModel good;
  good.lambda = {1.0, 1.0, 1.0, 1.0};
  good.factors.push_back(DenseMatrix::RandomUniform(6, 4, &rng));
  good.factors.push_back(DenseMatrix::RandomUniform(5, 4, &rng));
  good.factors.push_back(DenseMatrix::RandomUniform(4, 4, &rng));
  CheckpointOptions ckpt;
  ckpt.directory = dir;
  ckpt.keep_last = 10;
  CheckpointWriter writer(ckpt);
  CheckpointManifest manifest;
  manifest.method = "parafac";
  manifest.model_kind = "kruskal";
  manifest.iteration = 2;
  ASSERT_OK(writer.Write(manifest, &good, nullptr));

  // A *newer* checkpoint torn mid-copy: manifest missing its end marker.
  manifest.iteration = 4;
  ASSERT_OK(writer.Write(manifest, &good, nullptr));
  std::string torn_manifest = dir + "/" + CheckpointDirName(4) + "/MANIFEST";
  std::ifstream in(torn_manifest);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  ASSERT_NE(content.find("end\n"), std::string::npos);
  content.resize(content.find("end\n"));
  std::ofstream(torn_manifest, std::ios::trunc) << content;
  // Orphaned staging debris from a crashed writer, newer still.
  fs::create_directories(dir + "/" + CheckpointDirName(6) + ".tmp");

  Engine engine = InCoreEngine();
  IncrementalRefitSession session(&engine, base, RefitOptions(true));
  ASSERT_OK(session.WarmStartFromCheckpointDir(dir));
  // Discovery fell back past the torn iter_4 (and ignored the .tmp) to the
  // committed iter_2 model.
  ASSERT_TRUE(session.has_model());
  ASSERT_EQ(session.model().factors.size(), 3u);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(session.model().factors[m].MaxAbsDiff(good.factors[m]), 0.0);
  }
  // And the warm start feeds a working refit.
  ASSERT_OK(session.FitBase());
  EXPECT_TRUE(session.has_model());
}

TEST(IncrementalRefit, WarmStartFromEmptyDirIsNotFound) {
  std::string dir = FreshDir("refit_warm_start_empty");
  Engine engine = InCoreEngine();
  Rng rng(9010);
  IncrementalRefitSession session(
      &engine, RandomSparseTensor({4, 4, 4}, 10, &rng), RefitOptions(true));
  Status status = session.WarmStartFromCheckpointDir(dir);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
  EXPECT_FALSE(session.has_model());
}

TEST(IncrementalRefit, WarmStartRefusesTuckerCheckpoint) {
  std::string dir = FreshDir("refit_warm_start_tucker");
  Rng rng(9011);
  TuckerModel tucker;
  tucker.factors.push_back(DenseMatrix::RandomUniform(4, 2, &rng));
  tucker.factors.push_back(DenseMatrix::RandomUniform(4, 2, &rng));
  Result<DenseTensor> core = DenseTensor::Create({2, 2});
  ASSERT_OK(core.status());
  tucker.core = std::move(core).value();
  tucker.core.at({0, 0}) = 1.0;
  CheckpointOptions ckpt;
  ckpt.directory = dir;
  CheckpointWriter writer(ckpt);
  CheckpointManifest manifest;
  manifest.method = "tucker";
  manifest.model_kind = "tucker";
  manifest.iteration = 1;
  ASSERT_OK(writer.Write(manifest, nullptr, &tucker));

  Engine engine = InCoreEngine();
  IncrementalRefitSession session(
      &engine, RandomSparseTensor({4, 4, 4}, 10, &rng), RefitOptions(true));
  Status status = session.WarmStartFromCheckpointDir(dir);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

}  // namespace
}  // namespace haten2
