// Tests for the missing-value PARAFAC extension (EM-ALS over the
// distributed bottleneck op): validation, monotone observed fit, and
// completion of a low-rank tensor from partial observations.

#include "core/missing_values.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace haten2 {
namespace {

// Exact rank-2 tensor, an observation mask covering a random fraction of
// cells, and the data restricted to the mask.
struct CompletionFixture {
  SparseTensor full;      // dense-as-sparse ground truth
  SparseTensor observed;  // binary mask
  SparseTensor data;      // full restricted to the mask
};

CompletionFixture MakeFixture(double observe_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> lambda = {3.0, 1.5};
  DenseMatrix a = DenseMatrix::RandomUniform(10, 2, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(9, 2, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(8, 2, &rng);
  Result<DenseTensor> dense = ReconstructKruskal(lambda, {&a, &b, &c});
  HATEN2_CHECK(dense.ok());

  CompletionFixture fx;
  fx.full = dense->ToSparse();
  Result<SparseTensor> mask = SparseTensor::Create({10, 9, 8});
  Result<SparseTensor> data = SparseTensor::Create({10, 9, 8});
  HATEN2_CHECK(mask.ok() && data.ok());
  fx.observed = std::move(mask).value();
  fx.data = std::move(data).value();
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 9; ++j) {
      for (int64_t k = 0; k < 8; ++k) {
        if (!rng.Bernoulli(observe_fraction)) continue;
        int64_t idx[3] = {i, j, k};
        fx.observed.AppendUnchecked(idx, 1.0);
        double v = fx.full.Get({i, j, k});
        if (v != 0.0) fx.data.AppendUnchecked(idx, v);
      }
    }
  }
  fx.observed.Canonicalize();
  fx.data.Canonicalize();
  return fx;
}

TEST(MissingValues, CompletesLowRankTensorFromHalfTheCells) {
  CompletionFixture fx = MakeFixture(0.5, 301);
  Engine engine(ClusterConfig::ForTesting());
  MissingValueOptions options;
  options.em_iterations = 200;
  options.em_tolerance = 1e-12;
  options.base.seed = 9;
  Result<MissingValueModel> result =
      Haten2ParafacMissing(&engine, fx.data, fx.observed, 2, options);
  ASSERT_OK(result.status());
  EXPECT_GT(result->observed_fit, 0.99);

  // The real test of completion: accuracy on the *unobserved* cells.
  double resid_sq = 0.0;
  double total_sq = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 9; ++j) {
      for (int64_t k = 0; k < 8; ++k) {
        if (fx.observed.Get({i, j, k}) != 0.0) continue;
        double truth = fx.full.Get({i, j, k});
        double predicted = 0.0;
        for (int64_t r = 0; r < 2; ++r) {
          predicted += result->model.lambda[static_cast<size_t>(r)] *
                       result->model.factors[0](i, r) *
                       result->model.factors[1](j, r) *
                       result->model.factors[2](k, r);
        }
        resid_sq += (truth - predicted) * (truth - predicted);
        total_sq += truth * truth;
      }
    }
  }
  ASSERT_GT(total_sq, 0.0);
  EXPECT_LT(std::sqrt(resid_sq / total_sq), 0.15);
}

TEST(MissingValues, ObservedFitImprovesMonotonically) {
  CompletionFixture fx = MakeFixture(0.4, 302);
  Engine engine(ClusterConfig::ForTesting());
  MissingValueOptions options;
  options.em_iterations = 15;
  options.em_tolerance = 0.0;
  Result<MissingValueModel> result =
      Haten2ParafacMissing(&engine, fx.data, fx.observed, 2, options);
  ASSERT_OK(result.status());
  ASSERT_GE(result->observed_fit_history.size(), 3u);
  for (size_t i = 1; i < result->observed_fit_history.size(); ++i) {
    EXPECT_GE(result->observed_fit_history[i],
              result->observed_fit_history[i - 1] - 1e-8)
        << "EM iteration " << i;
  }
}

TEST(MissingValues, FullyObservedMatchesPlainParafacFit) {
  // With the full mask, EM-ALS solves the same problem as plain PARAFAC.
  Rng rng(303);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({8, 7, 6}, 200, &rng);
  Result<SparseTensor> mask = SparseTensor::Create({8, 7, 6});
  ASSERT_OK(mask.status());
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      for (int64_t k = 0; k < 6; ++k) {
        int64_t idx[3] = {i, j, k};
        mask->AppendUnchecked(idx, 1.0);
      }
    }
  }
  mask->Canonicalize();

  Engine engine(ClusterConfig::ForTesting());
  MissingValueOptions options;
  options.em_iterations = 15;
  options.base.seed = 5;
  Result<MissingValueModel> em =
      Haten2ParafacMissing(&engine, x, *mask, 3, options);
  ASSERT_OK(em.status());

  Haten2Options plain;
  plain.max_iterations = 15;
  plain.seed = 5;
  Result<KruskalModel> direct = Haten2ParafacAls(&engine, x, 3, plain);
  ASSERT_OK(direct.status());
  EXPECT_NEAR(em->observed_fit, direct->fit, 0.02);
}

TEST(MissingValues, Validation) {
  Rng rng(304);
  SparseTensor x = haten2::testing::RandomSparseTensor({5, 5, 5}, 20, &rng);
  SparseTensor mask = x.Binarized();
  Engine engine(ClusterConfig::ForTesting());

  EXPECT_TRUE(Haten2ParafacMissing(nullptr, x, mask, 2).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Haten2ParafacMissing(&engine, x, mask, 0).status()
                  .IsInvalidArgument());
  // Mask with a non-binary value.
  SparseTensor bad_mask = x;  // values aren't 1.0
  EXPECT_TRUE(Haten2ParafacMissing(&engine, x, bad_mask, 2).status()
                  .IsInvalidArgument());
  // Mask with wrong dims.
  SparseTensor small =
      haten2::testing::RandomSparseTensor({4, 4, 4}, 8, &rng).Binarized();
  EXPECT_TRUE(Haten2ParafacMissing(&engine, x, small, 2).status()
                  .IsInvalidArgument());
  // Data outside the mask.
  Result<SparseTensor> partial_mask = SparseTensor::Create({5, 5, 5});
  ASSERT_OK(partial_mask.status());
  int64_t idx[3] = {0, 0, 0};
  partial_mask->AppendUnchecked(idx, 1.0);
  partial_mask->Canonicalize();
  if (x.nnz() > 1) {
    EXPECT_TRUE(
        Haten2ParafacMissing(&engine, x, *partial_mask, 2).status()
            .IsInvalidArgument());
  }
  // ObservedFit validates too.
  KruskalModel dummy;
  dummy.lambda = {1.0};
  dummy.factors.assign(3, DenseMatrix(5, 1));
  EXPECT_TRUE(ObservedFit(x, bad_mask, dummy).status().IsInvalidArgument());
  EXPECT_OK(ObservedFit(x, mask, dummy).status());
}

}  // namespace
}  // namespace haten2
