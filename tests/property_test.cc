// Randomized property sweeps (parameterized over seeds): the algebraic
// identities of the paper must hold on arbitrary random sparse tensors, not
// just the hand-picked shapes of the unit tests.

#include <gtest/gtest.h>

#include <cmath>

#include "core/contract.h"
#include "core/tucker.h"
#include "linalg/linalg.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

class SeededPropertyTest : public ::testing::TestWithParam<int> {};

// Lemma 1: CrossMerge(T', T'') == X ×₂ Bᵀ ×₃ Cᵀ, via the DRI path against
// the sequential sparse computation, on random shapes.
TEST_P(SeededPropertyTest, Lemma1CrossMergeEquivalence) {
  int seed = GetParam();
  Rng rng(9000 + seed);
  std::vector<int64_t> dims = {
      4 + static_cast<int64_t>(rng.UniformInt(uint64_t{8})),
      4 + static_cast<int64_t>(rng.UniformInt(uint64_t{8})),
      4 + static_cast<int64_t>(rng.UniformInt(uint64_t{8}))};
  int64_t nnz = 10 + static_cast<int64_t>(rng.UniformInt(uint64_t{60}));
  SparseTensor x = RandomSparseTensor(dims, nnz, &rng);
  int64_t q = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{4}));
  int64_t r = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{4}));
  DenseMatrix b = DenseMatrix::RandomNormal(dims[1], q, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(dims[2], r, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};

  Engine engine(ClusterConfig::ForTesting());
  Result<SliceBlocks> merged = MultiModeContract(
      &engine, x, factors, 0, MergeKind::kCross, Variant::kDri);
  ASSERT_OK(merged.status());

  Result<SparseTensor> t = TtmTransposed(x, b, 1);
  ASSERT_OK(t.status());
  Result<SparseTensor> y = TtmTransposed(*t, c, 2);
  ASSERT_OK(y.status());
  DenseMatrix want = DenseTensor::FromSparse(*y).Unfold(0);
  EXPECT_LT(merged->ToDenseMatrix().MaxAbsDiff(want), 1e-9) << "seed "
                                                            << seed;
}

// Lemma 2: PairwiseMerge(F', T'') == X₍₁₎ (C ⊙ B) on random shapes.
TEST_P(SeededPropertyTest, Lemma2PairwiseMergeEquivalence) {
  int seed = GetParam();
  Rng rng(9100 + seed);
  std::vector<int64_t> dims = {
      4 + static_cast<int64_t>(rng.UniformInt(uint64_t{8})),
      4 + static_cast<int64_t>(rng.UniformInt(uint64_t{8})),
      4 + static_cast<int64_t>(rng.UniformInt(uint64_t{8}))};
  int64_t nnz = 10 + static_cast<int64_t>(rng.UniformInt(uint64_t{60}));
  SparseTensor x = RandomSparseTensor(dims, nnz, &rng);
  int64_t rank = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{5}));
  DenseMatrix a = DenseMatrix::RandomNormal(dims[0], rank, &rng);
  DenseMatrix b = DenseMatrix::RandomNormal(dims[1], rank, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(dims[2], rank, &rng);
  std::vector<const DenseMatrix*> factors = {&a, &b, &c};

  Engine engine(ClusterConfig::ForTesting());
  Result<SliceBlocks> merged = MultiModeContract(
      &engine, x, factors, 0, MergeKind::kPairwise, Variant::kDri);
  ASSERT_OK(merged.status());

  DenseMatrix x1 = DenseTensor::FromSparse(x).Unfold(0);
  Result<DenseMatrix> kr = KhatriRao(c, b);
  ASSERT_OK(kr.status());
  Result<DenseMatrix> want = MatMul(x1, *kr);
  ASSERT_OK(want.status());
  EXPECT_LT(merged->ToDenseMatrix().MaxAbsDiff(*want), 1e-9) << "seed "
                                                             << seed;
}

// Collapse/Hadamard identity: Collapse(X ∗̄₂ v)₂ == X ×̄₂ v (the DNN
// decoupling of Section III-B2) on random tensors.
TEST_P(SeededPropertyTest, DecouplingIdentity) {
  int seed = GetParam();
  Rng rng(9200 + seed);
  SparseTensor x = RandomSparseTensor({6, 7, 5}, 40, &rng);
  std::vector<double> v(7);
  for (double& e : v) e = rng.Normal();
  Result<SparseTensor> hadamard = NModeVectorHadamard(x, v, 1);
  ASSERT_OK(hadamard.status());
  Result<SparseTensor> collapsed = hadamard->CollapseMode(1);
  ASSERT_OK(collapsed.status());
  Result<SparseTensor> direct = Ttv(x, v, 1);
  ASSERT_OK(direct.status());
  // Same cells up to float noise.
  EXPECT_EQ(collapsed->nnz(), direct->nnz()) << "seed " << seed;
  for (int64_t e = 0; e < direct->nnz(); ++e) {
    std::vector<int64_t> idx = {direct->index(e, 0), direct->index(e, 1)};
    EXPECT_NEAR(collapsed->Get(idx), direct->value(e), 1e-12);
  }
}

// Tucker invariant on random tensors: ||X||² = ||G||² + ||X - recon||²
// (orthonormal factors), verified through the full MR driver.
TEST_P(SeededPropertyTest, TuckerEnergySplit) {
  int seed = GetParam();
  Rng rng(9300 + seed);
  SparseTensor x = RandomSparseTensor({8, 7, 6}, 60, &rng);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 3;
  options.seed = static_cast<uint64_t>(seed);
  Result<TuckerModel> model = Haten2TuckerAls(&engine, x, {2, 2, 2},
                                              options);
  ASSERT_OK(model.status());
  Result<DenseTensor> recon =
      ReconstructTucker(model->core, model->FactorPtrs());
  ASSERT_OK(recon.status());
  DenseTensor dense = DenseTensor::FromSparse(x);
  double resid_sq = 0.0;
  for (size_t i = 0; i < dense.data().size(); ++i) {
    double d = dense.data()[i] - recon->data()[i];
    resid_sq += d * d;
  }
  double core_sq = 0.0;
  for (double g : model->core.data()) core_sq += g * g;
  EXPECT_NEAR(x.SumSquares(), core_sq + resid_sq,
              1e-8 * std::max(1.0, x.SumSquares()))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace haten2
