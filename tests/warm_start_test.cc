// Warm-start / checkpoint-resume tests: resuming a run from its own
// checkpoint must continue the exact same iterate sequence, including
// through an on-disk round trip.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/parafac.h"
#include "core/tucker.h"
#include "tensor/model_io.h"
#include "test_util.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

TEST(WarmStart, ParafacResumeEqualsStraightRun) {
  Rng rng(901);
  SparseTensor x = RandomSparseTensor({12, 10, 8}, 120, &rng);
  Engine engine(ClusterConfig::ForTesting());

  Haten2Options straight;
  straight.max_iterations = 6;
  straight.tolerance = 0.0;
  Result<KruskalModel> full = Haten2ParafacAls(&engine, x, 3, straight);
  ASSERT_OK(full.status());

  Haten2Options first_half = straight;
  first_half.max_iterations = 3;
  Result<KruskalModel> half = Haten2ParafacAls(&engine, x, 3, first_half);
  ASSERT_OK(half.status());

  Haten2Options second_half = straight;
  second_half.max_iterations = 3;
  second_half.initial_kruskal = &half.value();
  Result<KruskalModel> resumed =
      Haten2ParafacAls(&engine, x, 3, second_half);
  ASSERT_OK(resumed.status());

  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(resumed->factors[m].MaxAbsDiff(full->factors[m]), 0.0);
  }
}

TEST(WarmStart, ParafacResumeThroughDiskCheckpoint) {
  Rng rng(902);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Engine engine(ClusterConfig::ForTesting());

  Haten2Options options;
  options.max_iterations = 4;
  options.tolerance = 0.0;
  Result<KruskalModel> full =
      [&] {
        Haten2Options o = options;
        o.max_iterations = 8;
        return Haten2ParafacAls(&engine, x, 2, o);
      }();
  ASSERT_OK(full.status());

  Result<KruskalModel> half = Haten2ParafacAls(&engine, x, 2, options);
  ASSERT_OK(half.status());
  std::string prefix = std::string(::testing::TempDir()) + "/ckpt";
  ASSERT_OK(SaveKruskalModel(*half, prefix));
  Result<KruskalModel> loaded = LoadKruskalModel(prefix, 3);
  ASSERT_OK(loaded.status());

  Haten2Options resume = options;
  resume.initial_kruskal = &loaded.value();
  Result<KruskalModel> resumed = Haten2ParafacAls(&engine, x, 2, resume);
  ASSERT_OK(resumed.status());
  // The text checkpoint is exact (%.17g), so the resumed run is bitwise on
  // the same trajectory.
  EXPECT_DOUBLE_EQ(resumed->fit, full->fit);
  for (int m = 0; m < 3; ++m) {
    std::remove((prefix + ".mode" + std::to_string(m) + ".txt").c_str());
  }
  std::remove((prefix + ".lambda.txt").c_str());
}

TEST(WarmStart, TuckerResumeEqualsStraightRun) {
  Rng rng(903);
  SparseTensor x = RandomSparseTensor({10, 9, 8}, 100, &rng);
  Engine engine(ClusterConfig::ForTesting());

  Haten2Options straight;
  straight.max_iterations = 6;
  straight.tolerance = 0.0;
  Result<TuckerModel> full =
      Haten2TuckerAls(&engine, x, {3, 3, 3}, straight);
  ASSERT_OK(full.status());

  Haten2Options first_half = straight;
  first_half.max_iterations = 3;
  Result<TuckerModel> half =
      Haten2TuckerAls(&engine, x, {3, 3, 3}, first_half);
  ASSERT_OK(half.status());

  Haten2Options second_half = straight;
  second_half.max_iterations = 3;
  second_half.initial_tucker = &half.value();
  Result<TuckerModel> resumed =
      Haten2TuckerAls(&engine, x, {3, 3, 3}, second_half);
  ASSERT_OK(resumed.status());
  // HOOI's next iterate depends on the factors only up to the QR the warm
  // start applies; the fits must agree tightly.
  EXPECT_NEAR(resumed->fit, full->fit, 1e-9);
}

TEST(WarmStart, RejectsMismatchedWarmStarts) {
  Rng rng(904);
  SparseTensor x = RandomSparseTensor({8, 7, 6}, 50, &rng);
  Engine engine(ClusterConfig::ForTesting());

  KruskalModel wrong_rank;
  wrong_rank.lambda = {1.0};
  wrong_rank.factors.assign(3, DenseMatrix(8, 1));
  Haten2Options options;
  options.initial_kruskal = &wrong_rank;
  EXPECT_TRUE(
      Haten2ParafacAls(&engine, x, 2, options).status().IsInvalidArgument());

  KruskalModel wrong_rows;
  wrong_rows.lambda = {1.0, 1.0};
  wrong_rows.factors.assign(3, DenseMatrix(5, 2));
  options.initial_kruskal = &wrong_rows;
  EXPECT_TRUE(
      Haten2ParafacAls(&engine, x, 2, options).status().IsInvalidArgument());

  TuckerModel wrong_shape;
  wrong_shape.factors.assign(3, DenseMatrix(8, 2));
  Haten2Options tucker_options;
  tucker_options.initial_tucker = &wrong_shape;
  EXPECT_TRUE(Haten2TuckerAls(&engine, x, {2, 2, 2}, tucker_options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace haten2
