// Tests for link prediction: held-out facts from planted structure must
// surface in the top predictions, and the API must respect observedness,
// ordering and validation.

#include "core/link_prediction.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/parafac.h"
#include "test_util.h"
#include "util/string_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

struct HoldoutFixture {
  SparseTensor train;                           // tensor minus held-out cells
  std::vector<std::vector<int64_t>> held_out;   // removed coordinates
};

// Plants dense low-rank blocks, then removes `holdout` block cells from the
// training tensor.
HoldoutFixture MakeFixture(int holdout, uint64_t seed) {
  LowRankTensorSpec spec;
  spec.dims = {50, 45, 40};
  spec.rank = 2;
  spec.block_size = 8;
  spec.nnz_per_component = 2000;  // ~dense blocks (8^3 = 512 cells)
  spec.seed = seed;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  HATEN2_CHECK(planted.ok());

  HoldoutFixture fx;
  Result<SparseTensor> train = SparseTensor::Create(spec.dims);
  HATEN2_CHECK(train.ok());
  fx.train = std::move(train).value();
  Rng rng(seed + 1);
  std::unordered_set<int64_t> drop;
  while (static_cast<int>(drop.size()) < holdout) {
    drop.insert(static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(planted->tensor.nnz()))));
  }
  for (int64_t e = 0; e < planted->tensor.nnz(); ++e) {
    if (drop.count(e) > 0) {
      fx.held_out.push_back({planted->tensor.index(e, 0),
                             planted->tensor.index(e, 1),
                             planted->tensor.index(e, 2)});
    } else {
      fx.train.AppendUnchecked(planted->tensor.IndexPtr(e),
                               planted->tensor.value(e));
    }
  }
  fx.train.Canonicalize();
  return fx;
}

TEST(LinkPrediction, RecoversHeldOutFactsFromPlantedBlocks) {
  HoldoutFixture fx = MakeFixture(/*holdout=*/15, 7);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 30;
  options.nonnegative = true;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, fx.train, 2,
                                                options);
  ASSERT_OK(model.status());

  LinkPredictionOptions lp;
  lp.beam = 10;
  Result<std::vector<PredictedEntry>> predicted =
      PredictTopEntries(*model, fx.train, 200, lp);
  ASSERT_OK(predicted.status());
  ASSERT_FALSE(predicted->empty());

  std::unordered_set<std::string> held;
  for (const auto& idx : fx.held_out) {
    held.insert(StrFormat("%lld/%lld/%lld", (long long)idx[0],
                          (long long)idx[1], (long long)idx[2]));
  }
  int hits = 0;
  for (const PredictedEntry& p : *predicted) {
    std::string key =
        StrFormat("%lld/%lld/%lld", (long long)p.index[0],
                  (long long)p.index[1], (long long)p.index[2]);
    if (held.count(key) > 0) ++hits;
    // No predicted cell may be observed.
    EXPECT_DOUBLE_EQ(fx.train.Get(p.index), 0.0);
  }
  // Held-out cells live inside the planted blocks where the model puts its
  // mass; a substantial fraction must surface among 200 predictions (random
  // guessing over 90K cells would find ~0).
  EXPECT_GE(hits, 5) << "recovered " << hits << " of "
                     << fx.held_out.size();
}

TEST(LinkPrediction, ResultsAreSortedAndBounded) {
  HoldoutFixture fx = MakeFixture(5, 11);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 10;
  options.nonnegative = true;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, fx.train, 2,
                                                options);
  ASSERT_OK(model.status());
  Result<std::vector<PredictedEntry>> predicted =
      PredictTopEntries(*model, fx.train, 25);
  ASSERT_OK(predicted.status());
  EXPECT_LE(predicted->size(), 25u);
  for (size_t i = 1; i < predicted->size(); ++i) {
    EXPECT_GE((*predicted)[i - 1].score, (*predicted)[i].score);
  }
  // Distinct coordinates.
  std::unordered_set<std::string> keys;
  for (const PredictedEntry& p : *predicted) {
    keys.insert(StrFormat("%lld/%lld/%lld", (long long)p.index[0],
                          (long long)p.index[1], (long long)p.index[2]));
  }
  EXPECT_EQ(keys.size(), predicted->size());
}

TEST(LinkPrediction, StatsCountCandidateFunnel) {
  HoldoutFixture fx = MakeFixture(5, 13);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 10;
  options.nonnegative = true;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, fx.train, 2,
                                                options);
  ASSERT_OK(model.status());

  LinkPredictionOptions lp;
  lp.beam = 6;
  LinkPredictionStats stats;
  Result<std::vector<PredictedEntry>> predicted =
      PredictTopEntries(*model, fx.train, 20, lp, &stats);
  ASSERT_OK(predicted.status());
  // Funnel: rank * beam^order enumerated >= unique >= unobserved-scored.
  EXPECT_EQ(stats.candidates_enumerated, 2 * 6 * 6 * 6);
  EXPECT_GE(stats.candidates_enumerated, stats.candidates_deduped);
  EXPECT_GE(stats.candidates_deduped, stats.candidates_scored);
  EXPECT_GT(stats.candidates_scored, 0);
  EXPECT_LE(static_cast<int64_t>(predicted->size()),
            stats.candidates_scored);
}

TEST(LinkPrediction, PrecomputedBeamsMatchDirectCall) {
  HoldoutFixture fx = MakeFixture(5, 17);
  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 10;
  options.nonnegative = true;
  Result<KruskalModel> model = Haten2ParafacAls(&engine, fx.train, 2,
                                                options);
  ASSERT_OK(model.status());

  LinkPredictionOptions lp;
  lp.beam = 8;
  Result<CandidateBeams> beams = ComputeCandidateBeams(*model, lp);
  ASSERT_OK(beams.status());
  EXPECT_TRUE(beams->Matches(lp));
  ASSERT_EQ(beams->rows.size(), 2u);  // one beam set per component

  Result<std::vector<PredictedEntry>> direct =
      PredictTopEntries(*model, fx.train, 30, lp);
  ASSERT_OK(direct.status());
  Result<std::vector<PredictedEntry>> via_beams =
      PredictTopEntries(*model, *beams, fx.train, 30, lp);
  ASSERT_OK(via_beams.status());

  ASSERT_EQ(via_beams->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*via_beams)[i].index, (*direct)[i].index) << "entry " << i;
    EXPECT_EQ((*via_beams)[i].score, (*direct)[i].score) << "entry " << i;
  }

  // Mismatched beams are rejected instead of silently producing a
  // different candidate set.
  LinkPredictionOptions other;
  other.beam = 5;
  EXPECT_TRUE(PredictTopEntries(*model, *beams, fx.train, 30, other)
                  .status()
                  .IsInvalidArgument());
}

TEST(LinkPrediction, Validation) {
  Rng rng(12);
  SparseTensor x = haten2::testing::RandomSparseTensor({6, 6, 6}, 20, &rng);
  KruskalModel model;
  model.lambda = {1.0};
  model.factors.assign(3, DenseMatrix(6, 1));
  EXPECT_TRUE(PredictTopEntries(model, x, 0).status().IsInvalidArgument());
  LinkPredictionOptions bad;
  bad.beam = 0;
  EXPECT_TRUE(
      PredictTopEntries(model, x, 5, bad).status().IsInvalidArgument());
  KruskalModel wrong;
  wrong.lambda = {1.0};
  wrong.factors.assign(2, DenseMatrix(6, 1));
  EXPECT_TRUE(PredictTopEntries(wrong, x, 5).status().IsInvalidArgument());
  KruskalModel wrong_rows;
  wrong_rows.lambda = {1.0};
  wrong_rows.factors.assign(3, DenseMatrix(5, 1));
  EXPECT_TRUE(
      PredictTopEntries(wrong_rows, x, 5).status().IsInvalidArgument());
  // Non-canonical observed tensor.
  Result<SparseTensor> nc = SparseTensor::Create3(6, 6, 6);
  ASSERT_OK(nc.status());
  ASSERT_OK(nc->Append({0, 0, 0}, 1.0));
  EXPECT_TRUE(
      PredictTopEntries(model, *nc, 5).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace haten2
