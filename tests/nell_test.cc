// Tests for the NELL-style workload generator and its recovery scorer.

#include "workload/nell.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_util.h"

namespace haten2 {
namespace {

NellSpec SmallSpec() {
  NellSpec spec;
  spec.num_categories = 4;
  spec.entities_per_category = 30;
  spec.num_contexts = 20;
  spec.num_patterns = 3;
  spec.contexts_per_pattern = 3;
  spec.facts_per_pattern = 400;
  spec.noise_facts = 100;
  spec.seed = 5;
  return spec;
}

TEST(NellGen, ShapeAndDeterminism) {
  Result<NellData> a = GenerateNell(SmallSpec());
  Result<NellData> b = GenerateNell(SmallSpec());
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_TRUE(a->tensor.IdenticalTo(b->tensor));
  EXPECT_EQ(a->tensor.dims(), (std::vector<int64_t>{120, 120, 20}));
  EXPECT_EQ(a->patterns.size(), 3u);
  EXPECT_OK(a->tensor.Validate());
}

TEST(NellGen, PatternsAreWellFormed) {
  Result<NellData> data = GenerateNell(SmallSpec());
  ASSERT_OK(data.status());
  std::unordered_set<int64_t> all_contexts;
  std::unordered_set<int> pairs;
  for (const auto& p : data->patterns) {
    EXPECT_NE(p.subject_category, p.object_category);
    EXPECT_TRUE(pairs.insert(p.subject_category * 1000 + p.object_category)
                    .second)
        << "duplicate category pair";
    EXPECT_EQ(p.contexts.size(), 3u);
    for (int64_t c : p.contexts) {
      EXPECT_TRUE(all_contexts.insert(c).second)
          << "context " << c << " reused across patterns";
      EXPECT_FALSE(data->ContextName(c).empty());
      EXPECT_NE(data->ContextName(c).find("p"), std::string::npos);
    }
  }
}

TEST(NellGen, CategoryHelpers) {
  Result<NellData> data = GenerateNell(SmallSpec());
  ASSERT_OK(data.status());
  EXPECT_EQ(data->CategoryOf(0), 0);
  EXPECT_EQ(data->CategoryOf(29), 0);
  EXPECT_EQ(data->CategoryOf(30), 1);
  EXPECT_EQ(data->CategoryBegin(2), 60);
  EXPECT_EQ(data->CategoryEnd(2), 90);
  // Entity names carry the category.
  EXPECT_EQ(data->EntityName(0), "city:0");
  EXPECT_EQ(data->EntityName(31), "country:1");
}

TEST(NellGen, PatternFactsRespectCategories) {
  Result<NellData> data = GenerateNell(SmallSpec());
  ASSERT_OK(data.status());
  // Count facts whose (category pair, context) matches some pattern; with
  // 1200 pattern facts vs 100 noise facts, most entries must match.
  int64_t matching = 0;
  for (int64_t e = 0; e < data->tensor.nnz(); ++e) {
    int cat1 = data->CategoryOf(data->tensor.index(e, 0));
    int cat2 = data->CategoryOf(data->tensor.index(e, 1));
    int64_t ctx = data->tensor.index(e, 2);
    for (const auto& p : data->patterns) {
      if (p.subject_category == cat1 && p.object_category == cat2 &&
          std::binary_search(p.contexts.begin(), p.contexts.end(), ctx)) {
        ++matching;
        break;
      }
    }
  }
  EXPECT_GT(matching, data->tensor.nnz() * 7 / 10);
}

TEST(NellGen, Validation) {
  NellSpec spec = SmallSpec();
  spec.num_categories = 1;
  EXPECT_TRUE(GenerateNell(spec).status().IsInvalidArgument());
  spec = SmallSpec();
  spec.contexts_per_pattern = 10;  // 3 * 10 > 20 contexts
  EXPECT_TRUE(GenerateNell(spec).status().IsInvalidArgument());
  spec = SmallSpec();
  spec.entities_per_category = 0;
  EXPECT_TRUE(GenerateNell(spec).status().IsInvalidArgument());
}

TEST(NellRecoveryScore, PerfectAndImperfectAnswers) {
  Result<NellData> data = GenerateNell(SmallSpec());
  ASSERT_OK(data.status());
  // Construct an oracle answer: one component per pattern.
  std::vector<std::vector<int64_t>> np1;
  std::vector<std::vector<int64_t>> np2;
  std::vector<std::vector<int64_t>> ctx;
  for (const auto& p : data->patterns) {
    np1.push_back({data->CategoryBegin(p.subject_category),
                   data->CategoryBegin(p.subject_category) + 1});
    np2.push_back({data->CategoryBegin(p.object_category),
                   data->CategoryBegin(p.object_category) + 1});
    ctx.push_back(p.contexts);
  }
  NellRecovery perfect = ScoreNellRecovery(*data, np1, np2, ctx);
  EXPECT_DOUBLE_EQ(perfect.patterns_recovered, 1.0);
  for (int c : perfect.component_of_pattern) EXPECT_GE(c, 0);

  // Garbage answer: everything from the wrong category/context.
  std::vector<std::vector<int64_t>> junk(
      data->patterns.size(), {data->CategoryEnd(3) - 1});
  std::vector<std::vector<int64_t>> junk_ctx(data->patterns.size(),
                                             {int64_t{19}});
  NellRecovery bad = ScoreNellRecovery(*data, junk, junk, junk_ctx);
  EXPECT_LT(bad.patterns_recovered, 1.0);
}

}  // namespace
}  // namespace haten2
