// Tests for the CostModel's event-driven slot simulation: bit-exact
// equivalence with the legacy greedy-LPT Makespan on uniform clusters,
// scheduling properties, the per-attempt retry accounting (CPU per attempt,
// spill disk once), deterministic jitter, and speculative execution.

#include "mapreduce/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <vector>

#include "mapreduce/engine.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

std::vector<TaskWork> CpuTasks(const std::vector<double>& costs) {
  std::vector<TaskWork> tasks;
  tasks.reserve(costs.size());
  for (double c : costs) tasks.push_back(TaskWork{c, 0.0, 1});
  return tasks;
}

// ---------------------------------------------------------------------------
// Uniform cluster: the slot simulation IS the legacy LPT schedule.
// ---------------------------------------------------------------------------

TEST(CostModelSim, MatchesLptBitExactlyOnUniformClusters) {
  Rng rng(7);
  for (int machines : {1, 3, 7, 40}) {
    for (int slots : {1, 4}) {
      for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> costs;
        int n = static_cast<int>(rng.UniformInt(int64_t{0}, int64_t{200}));
        for (int i = 0; i < n; ++i) costs.push_back(rng.Uniform(0.0, 50.0));

        ClusterConfig config;
        config.num_machines = machines;
        double sim = CostModel(config)
                         .SimulateTaskPhase(CpuTasks(costs), slots, 0)
                         .seconds;
        // Bit-identical, not approximately equal: uniform profiles with
        // speculation off must reproduce the pre-simulator numbers exactly.
        EXPECT_EQ(sim, CostModel::Makespan(costs, machines * slots))
            << machines << " machines x " << slots << " slots, " << n
            << " tasks";
      }
    }
  }
}

TEST(CostModelSim, SimulateJobMatchesLegacyFormulaOnUniformCluster) {
  // A job with spilled map tasks and loaded reduce partitions, no retries:
  // the simulation must equal the historical closed-form model bit-for-bit.
  JobStats job;
  job.map_output_bytes = 1 << 26;
  job.map_task_records = {100000, 250000, 50000, 900000, 1};
  job.map_task_spilled_bytes = {1u << 20, 0, 3u << 20, 1u << 19, 0};
  job.reduce_partition_records = {400000, 100, 800000};
  job.reduce_partition_bytes = {1u << 22, 1u << 10, 1u << 23};

  ClusterConfig config;  // paper defaults: 40 machines, 4+4 slots
  std::vector<double> map_costs;
  for (size_t t = 0; t < job.map_task_records.size(); ++t) {
    map_costs.push_back(
        static_cast<double>(job.map_task_records[t]) *
            config.map_seconds_per_record +
        static_cast<double>(job.map_task_spilled_bytes[t]) /
            config.disk_bytes_per_second);
  }
  std::vector<double> reduce_costs;
  for (size_t p = 0; p < job.reduce_partition_records.size(); ++p) {
    reduce_costs.push_back(
        static_cast<double>(job.reduce_partition_records[p]) *
            config.reduce_seconds_per_record +
        static_cast<double>(job.reduce_partition_bytes[p]) /
            config.disk_bytes_per_second);
  }
  double legacy =
      config.job_startup_seconds +
      CostModel::Makespan(map_costs, config.TotalMapSlots()) +
      static_cast<double>(job.map_output_bytes) /
          (config.network_bytes_per_second *
           static_cast<double>(config.num_machines)) +
      CostModel::Makespan(reduce_costs, config.TotalReduceSlots());
  EXPECT_EQ(CostModel(config).SimulateJob(job), legacy);
}

// ---------------------------------------------------------------------------
// Scheduling properties.
// ---------------------------------------------------------------------------

TEST(CostModelProperty, MakespanBounds) {
  Rng rng(21);
  ClusterConfig config;
  config.num_machines = 5;
  CostModel model(config);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> costs;
    int n = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{100}));
    for (int i = 0; i < n; ++i) costs.push_back(rng.Uniform(0.0, 10.0));
    int slots = 5 * 3;
    double sim = model.SimulateTaskPhase(CpuTasks(costs), 3, 0).seconds;
    double max_task = *std::max_element(costs.begin(), costs.end());
    double total = std::accumulate(costs.begin(), costs.end(), 0.0);
    EXPECT_GE(sim, max_task - 1e-12);          // no task splits
    EXPECT_GE(sim, total / slots - 1e-9);      // perfect balance at best
    EXPECT_LE(sim, total + 1e-9);              // never worse than serial
  }
}

TEST(CostModelProperty, UniformTasksScheduleExactly) {
  // N identical tasks of cost c on S slots finish in ceil(N/S) waves.
  ClusterConfig config;
  config.num_machines = 4;
  CostModel model(config);
  const double c = 2.5;
  for (int n : {1, 4, 8, 9, 23}) {
    std::vector<double> costs(static_cast<size_t>(n), c);
    double sim = model.SimulateTaskPhase(CpuTasks(costs), 2, 0).seconds;
    double waves = static_cast<double>((n + 7) / 8);  // S = 4 machines x 2
    EXPECT_DOUBLE_EQ(sim, waves * c) << n << " tasks";
  }
}

TEST(CostModelProperty, SlowerMachinesStretchTheSchedule) {
  ClusterConfig uniform;
  uniform.num_machines = 4;
  ClusterConfig hetero = uniform;
  hetero.machine_profiles = ParseMachineProfiles("1.0x3,0.25").value();
  std::vector<double> costs(16, 1.0);
  double t_uniform =
      CostModel(uniform).SimulateTaskPhase(CpuTasks(costs), 1, 0).seconds;
  EXPECT_DOUBLE_EQ(t_uniform, 4.0);  // 16 tasks / 4 slots, unit cost
  double t_hetero =
      CostModel(hetero).SimulateTaskPhase(CpuTasks(costs), 1, 0).seconds;
  EXPECT_GT(t_hetero, t_uniform);
  // The quarter-speed machine finishes its first task at t=4, exactly when
  // the fast machines finish their fourth. The dispatcher has no
  // clairvoyance (like a real JobTracker serving heartbeats): the slow
  // slot's completion is served first, tasks are still pending, so it is
  // handed another 4 s task and strands the schedule at t=8 while the fast
  // machines idle from t=5.
  EXPECT_DOUBLE_EQ(t_hetero, 8.0);
  // Speculation is precisely the cure for that stranding: the re-stranded
  // task gets a backup on a fast slot freed in the same instant, and the
  // backup wins (4 s on the slow machine vs 1 s on a fast one).
  hetero.speculative_execution = true;
  PhaseSim spec = CostModel(hetero).SimulateTaskPhase(CpuTasks(costs), 1, 0);
  EXPECT_DOUBLE_EQ(spec.seconds, 5.0);
  EXPECT_EQ(spec.speculation.speculated, 1);
  EXPECT_EQ(spec.speculation.won, 1);
  // The killed primary ran from t=4 to t=5 on the slow machine.
  EXPECT_DOUBLE_EQ(spec.speculation.wasted_seconds, 1.0);
}

// ---------------------------------------------------------------------------
// Retry accounting: re-execution CPU per attempt, spill disk once.
// ---------------------------------------------------------------------------

TEST(CostModelRetry, ChargesCpuPerAttemptButSpillDiskOnce) {
  ClusterConfig config;
  config.num_machines = 1;
  config.map_slots_per_machine = 1;
  config.job_startup_seconds = 0.0;
  // One map task: 1.0 s of CPU (1M records at 1 us) and 1.0 s of spill disk
  // (200 MB at 200 MB/s).
  JobStats job;
  job.map_task_records = {1000000};
  job.map_task_spilled_bytes = {200000000};
  job.map_task_attempts = {3};
  double sim = CostModel(config).SimulateJob(job);
  // 3 attempts x 1.0 s CPU + 1.0 s disk — not (1.0 + 1.0) * 3: the failed
  // attempts never reached the spill path.
  EXPECT_DOUBLE_EQ(sim, 4.0);
}

TEST(CostModelRetry, SpillDiskCostInvariantUnderAttemptCount) {
  // Pure-disk tasks (zero records): however many times failure injection
  // would have re-run them, the simulated cost must not move at all.
  ClusterConfig config;
  JobStats job;
  job.map_task_records = {0, 0, 0};
  job.map_task_spilled_bytes = {1u << 24, 1u << 22, 1u << 26};
  job.map_task_attempts = {1, 1, 1};
  double once = CostModel(config).SimulateJob(job);
  job.map_task_attempts = {4, 2, 3};
  EXPECT_EQ(CostModel(config).SimulateJob(job), once);
}

TEST(CostModelRetry, SpillDiskCostInvariantUnderFailureProbability) {
  // End-to-end: the same spilling workload run with and without failure
  // injection yields identical simulated disk cost. Simulating with zero
  // per-record CPU isolates the disk term: retries may only ever move CPU.
  std::string spill_dir =
      std::string(::testing::TempDir()) + "/haten2_cost_model_spills";
  std::filesystem::create_directories(spill_dir);
  auto run = [&](double failure_prob) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.spill_directory = spill_dir;
    config.spill_threshold_records = 16;
    config.task_failure_probability = failure_prob;
    config.max_task_attempts = 10;  // keep the flaky run from aborting
    Engine engine(config);
    auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
        "spilling", 4096,
        [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
          em->Emit(i % 64, i);
        },
        [](const int64_t& k, std::vector<int64_t>& vs,
           OutputEmitter<int64_t, int64_t>* out) {
          out->Emit(k, static_cast<int64_t>(vs.size()));
        });
    EXPECT_OK(result.status());
    return engine.pipeline().jobs[0];
  };
  JobStats clean = run(0.0);
  JobStats flaky = run(0.5);
  ASSERT_GT(flaky.map_task_retries, 0) << "injection never fired";
  ASSERT_GT(clean.spilled_bytes, 0u) << "nothing spilled";

  ClusterConfig sim_config;
  sim_config.map_seconds_per_record = 0.0;
  sim_config.reduce_seconds_per_record = 0.0;
  CostModel model(sim_config);
  EXPECT_EQ(model.SimulateJob(clean), model.SimulateJob(flaky));
  // With CPU costs on, the flaky run is strictly slower (re-executed CPU).
  ClusterConfig cpu_config;
  EXPECT_GT(CostModel(cpu_config).SimulateJob(flaky),
            CostModel(cpu_config).SimulateJob(clean));
}

// ---------------------------------------------------------------------------
// Jitter determinism.
// ---------------------------------------------------------------------------

TEST(CostModelDeterminism, SameJitterSeedReproducesBitIdenticalSchedules) {
  ClusterConfig config;
  config.num_machines = 8;
  config.machine_profiles = ParseMachineProfiles("1.0x6,0.5x2").value();
  config.straggler_jitter = 0.5;
  config.straggler_jitter_seed = 42;
  config.speculative_execution = true;
  Rng rng(3);
  std::vector<double> costs;
  for (int i = 0; i < 64; ++i) costs.push_back(rng.Uniform(1.0, 9.0));

  PhaseSim a = CostModel(config).SimulateTaskPhase(CpuTasks(costs), 2, 17);
  PhaseSim b = CostModel(config).SimulateTaskPhase(CpuTasks(costs), 2, 17);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.speculation.speculated, b.speculation.speculated);
  EXPECT_EQ(a.speculation.won, b.speculation.won);
  EXPECT_EQ(a.speculation.wasted_seconds, b.speculation.wasted_seconds);

  config.straggler_jitter_seed = 43;
  PhaseSim c = CostModel(config).SimulateTaskPhase(CpuTasks(costs), 2, 17);
  EXPECT_NE(a.seconds, c.seconds) << "different seed, same schedule";
}

TEST(CostModelDeterminism, ZeroJitterIsExact) {
  // jitter = 0 multiplies durations by exactly 1.0 — no drift at all.
  ClusterConfig plain;
  plain.num_machines = 3;
  ClusterConfig seeded = plain;
  seeded.straggler_jitter = 0.0;
  seeded.straggler_jitter_seed = 999;  // ignored when jitter is off
  std::vector<double> costs = {5.0, 3.0, 2.0, 2.0, 1.0};
  EXPECT_EQ(
      CostModel(plain).SimulateTaskPhase(CpuTasks(costs), 1, 5).seconds,
      CostModel(seeded).SimulateTaskPhase(CpuTasks(costs), 1, 5).seconds);
}

// ---------------------------------------------------------------------------
// Speculative execution.
// ---------------------------------------------------------------------------

// Two machines, one slot each: a fast reference machine and a 10x-slow
// straggler host. Task costs {4, 3, 3, 3}: the longest task takes the fast
// slot, one of the 3s lands on the slow machine (30 s). Once the fast slot
// drains the queue (t = 10, median finished duration 3), the straggler's
// remaining 20 s exceeds 1.5 x 3, so a backup launches on the fast slot and
// wins at t = 13; the 13 s the doomed primary ran are the waste.
TEST(SpeculationTest, BackupWinsAndCutsTheMakespan) {
  ClusterConfig config;
  config.num_machines = 2;
  config.map_slots_per_machine = 1;
  config.machine_profiles = {{1.0, 1.0}, {0.1, 1.0}};
  config.speculation_slowstart = 1.5;
  std::vector<TaskWork> tasks = CpuTasks({4.0, 3.0, 3.0, 3.0});

  config.speculative_execution = false;
  PhaseSim off = CostModel(config).SimulateTaskPhase(tasks, 1, 0);
  EXPECT_DOUBLE_EQ(off.seconds, 30.0);
  EXPECT_EQ(off.speculation.speculated, 0);

  config.speculative_execution = true;
  PhaseSim on = CostModel(config).SimulateTaskPhase(tasks, 1, 0);
  EXPECT_DOUBLE_EQ(on.seconds, 13.0);
  EXPECT_EQ(on.speculation.speculated, 1);
  EXPECT_EQ(on.speculation.won, 1);
  EXPECT_DOUBLE_EQ(on.speculation.wasted_seconds, 13.0);
}

// Half-speed machine hosts the short tasks; the long task (20 s) runs on
// the fast slot. At t = 8 the slow slot is idle, the median finished
// duration is 4, and the long task still has 12 s left — a backup launches
// on the slow machine (40 s there) and loses to the primary at t = 20. The
// makespan is unchanged; the 12 s of backup time are counted as waste.
TEST(SpeculationTest, LosingBackupWastesTimeButNeverHurtsTheMakespan) {
  ClusterConfig config;
  config.num_machines = 2;
  config.map_slots_per_machine = 1;
  config.machine_profiles = {{0.5, 1.0}, {1.0, 1.0}};
  config.speculation_slowstart = 1.5;
  config.speculative_execution = true;
  std::vector<TaskWork> tasks = CpuTasks({20.0, 2.0, 2.0});
  PhaseSim sim = CostModel(config).SimulateTaskPhase(tasks, 1, 0);
  EXPECT_DOUBLE_EQ(sim.seconds, 20.0);
  EXPECT_EQ(sim.speculation.speculated, 1);
  EXPECT_EQ(sim.speculation.won, 0);
  EXPECT_DOUBLE_EQ(sim.speculation.wasted_seconds, 12.0);
}

TEST(SpeculationTest, NeverIncreasesTheMakespan) {
  // Backups only ever occupy otherwise-idle slots, so across random
  // workloads, profiles, and jitter, speculation can only help.
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    ClusterConfig config;
    config.num_machines = static_cast<int>(rng.UniformInt(int64_t{2}, 8));
    config.machine_profiles =
        ParseMachineProfiles("1.0x3,0.25").value();
    config.straggler_jitter = rng.Uniform(0.0, 1.0);
    config.straggler_jitter_seed = rng.UniformInt(uint64_t{1} << 32);
    config.speculation_slowstart = rng.Uniform(1.0, 3.0);
    std::vector<double> costs;
    int n = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{60}));
    for (int i = 0; i < n; ++i) costs.push_back(rng.Uniform(0.5, 20.0));

    config.speculative_execution = false;
    double off = CostModel(config).SimulateTaskPhase(CpuTasks(costs), 2, 9)
                     .seconds;
    config.speculative_execution = true;
    double on = CostModel(config).SimulateTaskPhase(CpuTasks(costs), 2, 9)
                    .seconds;
    EXPECT_LE(on, off) << "trial " << trial;
  }
}

TEST(SpeculationTest, UniformClusterWithoutJitterSpawnsNoBackups) {
  // Every slot is equal and durations are exact, so no running task can
  // exceed the slowstart threshold of 1.5 x the median by construction of
  // LPT order — speculation stays silent and the makespan is the LPT one.
  ClusterConfig config;
  config.num_machines = 4;
  config.speculative_execution = true;
  std::vector<double> costs = {3.0, 3.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0};
  PhaseSim sim = CostModel(config).SimulateTaskPhase(CpuTasks(costs), 1, 0);
  EXPECT_EQ(sim.seconds, CostModel::Makespan(costs, 4));
  EXPECT_EQ(sim.speculation.speculated, 0);
}

TEST(SpeculationTest, CountersFlowThroughJobAndPipeline) {
  ClusterConfig config;
  config.num_machines = 2;
  config.map_slots_per_machine = 1;
  config.reduce_slots_per_machine = 1;
  config.job_startup_seconds = 0.0;
  config.machine_profiles = {{1.0, 1.0}, {0.1, 1.0}};
  config.speculative_execution = true;
  // The exact backup-wins scenario, expressed as map-task records (1M
  // records = 1 s) so it flows through SimulateJobDetailed.
  JobStats job;
  job.map_task_records = {4000000, 3000000, 3000000, 3000000};
  JobSim sim = CostModel(config).SimulateJobDetailed(job);
  EXPECT_DOUBLE_EQ(sim.seconds, 13.0);
  EXPECT_EQ(sim.speculation.speculated, 1);
  EXPECT_EQ(sim.speculation.won, 1);

  PipelineStats pipeline;
  pipeline.jobs.push_back(job);
  pipeline.jobs.push_back(job);
  PipelineSim total = CostModel(config).SimulatePipelineDetailed(pipeline);
  EXPECT_DOUBLE_EQ(total.seconds, 26.0);
  EXPECT_EQ(total.speculation.speculated, 2);
  EXPECT_EQ(total.speculation.won, 2);
  EXPECT_DOUBLE_EQ(total.speculation.wasted_seconds, 26.0);
}

}  // namespace
}  // namespace haten2
