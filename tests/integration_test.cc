// End-to-end integration tests spanning modules: file I/O -> preprocessing
// -> distributed decomposition -> discovery, agreement between the
// MapReduce path and the single-machine baseline on realistic workloads,
// and the figure-level behaviours (o.o.m. ordering, cost-model scale-up) at
// test scale.

#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/toolbox.h"
#include "core/parafac.h"
#include "core/tucker.h"
#include "mapreduce/cost_model.h"
#include "tensor/tensor_io.h"
#include "test_util.h"
#include "workload/knowledge_base.h"
#include "workload/network_logs.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

TEST(Integration, FileToDecompositionPipeline) {
  // Write a tensor to disk, read it back, decompose: the full user flow.
  Rng rng(201);
  SparseTensor original =
      haten2::testing::RandomSparseTensor({30, 25, 20}, 300, &rng);
  std::string path = std::string(::testing::TempDir()) + "/integ.tns";
  ASSERT_OK(WriteTensorText(original, path));
  Result<SparseTensor> loaded = ReadTensorText(path);
  ASSERT_OK(loaded.status());
  ASSERT_TRUE(loaded->IdenticalTo(original));

  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 5;
  Result<KruskalModel> from_file =
      Haten2ParafacAls(&engine, *loaded, 3, options);
  Result<KruskalModel> from_memory =
      Haten2ParafacAls(&engine, original, 3, options);
  ASSERT_OK(from_file.status());
  ASSERT_OK(from_memory.status());
  EXPECT_DOUBLE_EQ(from_file->fit, from_memory->fit);
  std::remove(path.c_str());
}

TEST(Integration, KnowledgeBaseDiscoveryPipeline) {
  // Generate -> preprocess -> PARAFAC -> recover planted concepts.
  KnowledgeBaseSpec spec;
  spec.num_subjects = 400;
  spec.num_objects = 400;
  spec.num_relations = 24;
  spec.num_concepts = 3;
  spec.subjects_per_concept = 12;
  spec.objects_per_concept = 12;
  spec.relations_per_concept = 3;
  spec.facts_per_concept = 900;
  spec.noise_facts = 400;
  spec.seed = 5;
  Result<KnowledgeBase> kb = GenerateKnowledgeBase(spec);
  ASSERT_OK(kb.status());
  Result<SparseTensor> cleaned =
      PreprocessKnowledgeTensor(kb->tensor, PreprocessOptions());
  ASSERT_OK(cleaned.status());

  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 20;
  options.nonnegative = true;
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine, *cleaned, spec.num_concepts, options);
  ASSERT_OK(model.status());

  std::vector<std::vector<int64_t>> planted;
  for (const auto& c : kb->concepts) planted.push_back(c.subjects);
  double recovery = RecoveryScore(
      TopKPerColumn(model->factors[0],
                    static_cast<int>(spec.subjects_per_concept)),
      planted);
  EXPECT_GT(recovery, 0.8);
}

TEST(Integration, MrAndBaselineAgreeOnKnowledgeTensor) {
  KnowledgeBaseSpec spec;
  spec.num_subjects = 150;
  spec.num_objects = 150;
  spec.num_relations = 12;
  spec.num_concepts = 2;
  spec.subjects_per_concept = 8;
  spec.objects_per_concept = 8;
  spec.relations_per_concept = 2;
  spec.facts_per_concept = 300;
  spec.noise_facts = 100;
  Result<KnowledgeBase> kb = GenerateKnowledgeBase(spec);
  ASSERT_OK(kb.status());

  Engine engine(ClusterConfig::ForTesting());
  Haten2Options mr_options;
  mr_options.max_iterations = 6;
  mr_options.tolerance = 0.0;
  mr_options.seed = 31;
  BaselineOptions tb_options;
  tb_options.max_iterations = 6;
  tb_options.tolerance = 0.0;
  tb_options.seed = 31;

  Result<KruskalModel> mr =
      Haten2ParafacAls(&engine, kb->tensor, 2, mr_options);
  Result<KruskalModel> tb = ToolboxParafacAls(kb->tensor, 2, tb_options);
  ASSERT_OK(mr.status());
  ASSERT_OK(tb.status());
  EXPECT_NEAR(mr->fit, tb->fit, 1e-8);

  Result<TuckerModel> mr_t =
      Haten2TuckerAls(&engine, kb->tensor, {2, 2, 2}, mr_options);
  Result<TuckerModel> tb_t =
      ToolboxTuckerAls(kb->tensor, {2, 2, 2}, tb_options);
  ASSERT_OK(mr_t.status());
  ASSERT_OK(tb_t.status());
  EXPECT_NEAR(mr_t->fit, tb_t->fit, 1e-8);
}

TEST(Integration, OomOrderingAcrossVariants) {
  // A budget staircase must kill methods in the paper's order:
  // Naive first, then DNN, with DRN/DRI surviving the smallest budget that
  // admits nnz(Q+R) records.
  Rng rng(202);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({60, 60, 60}, 1500, &rng);
  Rng frng(203);
  DenseMatrix b = DenseMatrix::RandomUniform(60, 4, &frng);
  DenseMatrix c = DenseMatrix::RandomUniform(60, 4, &frng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};

  auto runs_under = [&](Variant v, uint64_t budget) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.total_shuffle_memory_bytes = budget;
    Engine engine(config);
    return MultiModeContract(&engine, x, factors, 0, MergeKind::kCross, v)
        .status();
  };

  // DRI/DRN peak at the merge job: nnz*(Q+R) = 12K records x 72 B ≈ 860 KB.
  const uint64_t small = 4ull << 20;
  EXPECT_OK(runs_under(Variant::kDri, small));
  EXPECT_OK(runs_under(Variant::kDrn, small));
  // DNN peaks at its second Collapse: ~19.4K records x 56 B ≈ 1.06 MiB.
  // A budget between the two peaks separates the variants.
  const uint64_t tighter = 960ull << 10;  // 960 KiB
  EXPECT_OK(runs_under(Variant::kDri, tighter));
  EXPECT_TRUE(runs_under(Variant::kDnn, tighter).IsResourceExhausted());
  // Naive broadcasts 60*60*60 = 216K records per job and dies everywhere.
  EXPECT_TRUE(runs_under(Variant::kNaive, small).IsResourceExhausted());
}

TEST(Integration, CostModelScaleUpOnRealPipeline) {
  // Fig. 8 shape from an actual measured pipeline: strictly more machines
  // never simulate slower, and scale-up is sub-linear.
  Rng rng(204);
  SparseTensor x =
      haten2::testing::RandomSparseTensor({200, 200, 200}, 5000, &rng);
  ClusterConfig config = ClusterConfig::ForTesting();
  Engine engine(config);
  Haten2Options options;
  options.max_iterations = 1;
  options.compute_fit = false;
  ASSERT_OK(Haten2ParafacAls(&engine, x, 4, options).status());

  double prev = 1e300;
  double t10 = 0.0;
  double t40 = 0.0;
  for (int machines : {10, 20, 40}) {
    ClusterConfig sim;
    sim.num_machines = machines;
    double t = CostModel(sim).SimulatePipeline(engine.pipeline());
    EXPECT_LE(t, prev + 1e-9);
    if (machines == 10) t10 = t;
    if (machines == 40) t40 = t;
    prev = t;
  }
  EXPECT_GE(t10 / t40, 1.0);
  EXPECT_LT(t10 / t40, 4.0);  // sub-linear due to per-job startup
}

TEST(Integration, NetworkScanSurfacesInParafacFactors) {
  NetworkLogSpec spec;
  spec.num_sources = 120;
  spec.num_targets = 100;
  spec.num_ports = 60;
  spec.num_timestamps = 8;
  spec.num_services = 2;
  spec.clients_per_service = 12;
  spec.servers_per_service = 6;
  spec.flows_per_service = 800;
  spec.scan_ports = 30;
  spec.scan_window = 2;
  spec.scan_intensity = 4.0;
  spec.seed = 77;
  Result<NetworkLogs> logs = GenerateNetworkLogs(spec);
  ASSERT_OK(logs.status());

  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 25;
  options.nonnegative = true;
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine, logs->tensor, 4, options);
  ASSERT_OK(model.status());

  // Some component's top source must be the scanner and its top target the
  // scanned host.
  bool found = false;
  for (int64_t r = 0; r < 4; ++r) {
    int64_t top_src = 0;
    int64_t top_dst = 0;
    for (int64_t i = 1; i < model->factors[0].rows(); ++i) {
      if (model->factors[0](i, r) > model->factors[0](top_src, r)) {
        top_src = i;
      }
    }
    for (int64_t i = 1; i < model->factors[1].rows(); ++i) {
      if (model->factors[1](i, r) > model->factors[1](top_dst, r)) {
        top_dst = i;
      }
    }
    if (top_src == logs->scanner_source && top_dst == logs->scan_target) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Integration, FourWayEndToEnd) {
  // 4-way decomposition through the full MR path on the network tensor.
  NetworkLogSpec spec;
  spec.num_sources = 60;
  spec.num_targets = 50;
  spec.num_ports = 30;
  spec.num_timestamps = 6;
  spec.num_services = 2;
  spec.clients_per_service = 8;
  spec.servers_per_service = 4;
  spec.flows_per_service = 300;
  spec.scan_ports = 10;
  Result<NetworkLogs> logs = GenerateNetworkLogs(spec);
  ASSERT_OK(logs.status());

  Engine engine(ClusterConfig::ForTesting());
  Haten2Options options;
  options.max_iterations = 3;
  Result<TuckerModel> tucker =
      Haten2TuckerAls(&engine, logs->tensor, {2, 2, 2, 2}, options);
  ASSERT_OK(tucker.status());
  EXPECT_EQ(tucker->core.order(), 4);
  Result<KruskalModel> parafac =
      Haten2ParafacAls(&engine, logs->tensor, 3, options);
  ASSERT_OK(parafac.status());
  EXPECT_EQ(parafac->factors.size(), 4u);
}

}  // namespace
}  // namespace haten2
