// Tests for the in-process MapReduce engine: classic word-count semantics,
// combiners, counters, determinism across thread counts, the shuffle-memory
// budget, and the simulated-cluster cost model.

#include "mapreduce/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "mapreduce/cost_model.h"
#include "test_util.h"

namespace haten2 {
namespace {

// Canonical word-count over integer "words".
std::map<int64_t, int64_t> RunWordCount(Engine* engine,
                                        const std::vector<int64_t>& words,
                                        bool with_combiner) {
  std::function<int64_t(const int64_t&, const int64_t&)> combiner;
  if (with_combiner) {
    combiner = [](const int64_t& a, const int64_t& b) { return a + b; };
  }
  auto result = engine->Run<int64_t, int64_t, int64_t, int64_t>(
      "wordcount", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& word, std::vector<int64_t>& counts,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t total = 0;
        for (int64_t c : counts) total += c;
        out->Emit(word, total);
      },
      combiner);
  HATEN2_CHECK(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> histogram;
  for (const auto& [word, count] : *result) histogram[word] = count;
  return histogram;
}

TEST(EngineWordCount, CountsCorrectly) {
  std::vector<int64_t> words = {1, 2, 2, 3, 3, 3, 7};
  Engine engine(ClusterConfig::ForTesting());
  std::map<int64_t, int64_t> histogram =
      RunWordCount(&engine, words, /*with_combiner=*/false);
  EXPECT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[1], 1);
  EXPECT_EQ(histogram[2], 2);
  EXPECT_EQ(histogram[3], 3);
  EXPECT_EQ(histogram[7], 1);
}

TEST(EngineWordCount, EmptyInputYieldsEmptyOutput) {
  Engine engine(ClusterConfig::ForTesting());
  std::map<int64_t, int64_t> histogram = RunWordCount(&engine, {}, false);
  EXPECT_TRUE(histogram.empty());
  EXPECT_EQ(engine.pipeline().NumJobs(), 1);  // the job still ran
}

TEST(EngineCombiner, ReducesShuffledRecordsNotResults) {
  std::vector<int64_t> words(1000, 42);  // single hot key
  words.push_back(7);

  Engine plain(ClusterConfig::ForTesting());
  std::map<int64_t, int64_t> without =
      RunWordCount(&plain, words, /*with_combiner=*/false);

  Engine combined(ClusterConfig::ForTesting());
  std::map<int64_t, int64_t> with =
      RunWordCount(&combined, words, /*with_combiner=*/true);

  EXPECT_EQ(without, with);
  const JobStats& plain_stats = plain.pipeline().jobs[0];
  const JobStats& comb_stats = combined.pipeline().jobs[0];
  EXPECT_EQ(plain_stats.map_output_records, 1001);
  EXPECT_LT(comb_stats.map_output_records, 32);
  EXPECT_EQ(comb_stats.pre_combine_records, 1001);
}

TEST(EngineDeterminism, SameResultAcrossThreadCounts) {
  std::vector<int64_t> words;
  Rng rng(50);
  for (int i = 0; i < 5000; ++i) {
    words.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{100})));
  }
  std::map<int64_t, int64_t> reference;
  for (int threads : {1, 2, 4, 8}) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.num_threads = threads;
    Engine engine(config);
    std::map<int64_t, int64_t> histogram = RunWordCount(&engine, words, true);
    if (threads == 1) {
      reference = histogram;
    } else {
      EXPECT_EQ(histogram, reference) << "threads=" << threads;
    }
  }
}

TEST(EngineCounters, TrackShuffleVolumes) {
  std::vector<int64_t> words = {5, 5, 6};
  Engine engine(ClusterConfig::ForTesting());
  RunWordCount(&engine, words, false);
  const JobStats& stats = engine.pipeline().jobs[0];
  EXPECT_EQ(stats.name, "wordcount");
  EXPECT_EQ(stats.map_input_records, 3);
  EXPECT_EQ(stats.map_output_records, 3);
  EXPECT_EQ(stats.map_output_bytes, 3 * (sizeof(int64_t) + sizeof(int64_t)));
  EXPECT_EQ(stats.reduce_input_groups, 2);
  EXPECT_EQ(stats.reduce_output_records, 2);
  int64_t task_total = 0;
  for (int64_t t : stats.map_task_records) task_total += t;
  EXPECT_EQ(task_total, 3);
  int64_t partition_total = 0;
  for (int64_t p : stats.reduce_partition_records) partition_total += p;
  EXPECT_EQ(partition_total, 3);
}

TEST(EngineMemoryBudget, OverflowFailsWithResourceExhausted) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.total_shuffle_memory_bytes = 1024;  // 64 records of 16 bytes
  Engine engine(config);
  std::vector<int64_t> words(100000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "overflow", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& k, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(k, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  // Budget must be released after the failed job: a small job now succeeds.
  std::vector<int64_t> small = {1, 2, 3};
  std::map<int64_t, int64_t> histogram = RunWordCount(&engine, small, false);
  EXPECT_EQ(histogram.size(), 3u);
}

TEST(EngineMemoryBudget, ChargesAreReleasedAfterSuccess) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.total_shuffle_memory_bytes = 1 << 20;
  Engine engine(config);
  std::vector<int64_t> words(1000, 3);
  RunWordCount(&engine, words, false);
  EXPECT_EQ(engine.memory().used(), 0u);
  EXPECT_GT(engine.memory().peak(), 0u);
}

TEST(EnginePipeline, AccumulatesAndClears) {
  Engine engine(ClusterConfig::ForTesting());
  RunWordCount(&engine, {1, 2}, false);
  RunWordCount(&engine, {3}, false);
  EXPECT_EQ(engine.pipeline().NumJobs(), 2);
  EXPECT_EQ(engine.pipeline().TotalIntermediateRecords(), 3);
  EXPECT_EQ(engine.pipeline().MaxIntermediateRecords(), 2);
  EXPECT_FALSE(engine.pipeline().ToString().empty());
  engine.ClearPipeline();
  EXPECT_EQ(engine.pipeline().NumJobs(), 0);
}

TEST(EngineRunOnPairs, ClassicMapSignature) {
  std::vector<std::pair<std::string, int64_t>> input = {
      {"a", 1}, {"b", 2}, {"a", 3}};
  Engine engine(ClusterConfig::ForTesting());
  auto result = engine.RunOnPairs<int64_t, int64_t, int64_t, int64_t>(
      "pairs", input,
      [](const std::string& key, const int64_t& value,
         ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(static_cast<int64_t>(key.size()), value);
      },
      [](const int64_t& k, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        int64_t sum = 0;
        for (int64_t v : vs) sum += v;
        out->Emit(k, sum);
      });
  ASSERT_OK(result.status());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].second, 6);
}

// ---------------------------------------------------------------------------
// Cost model.
// ---------------------------------------------------------------------------

TEST(CostModelMakespan, GreedyScheduling) {
  EXPECT_DOUBLE_EQ(CostModel::Makespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(CostModel::Makespan({5.0}, 4), 5.0);
  // 4 tasks of 1.0 on 2 workers => 2.0.
  EXPECT_DOUBLE_EQ(CostModel::Makespan({1, 1, 1, 1}, 2), 2.0);
  // LPT is a 4/3-approximation, not optimal: on {3, 3, 2, 2, 2} with 2
  // workers it yields 7 (3+2+2 / 3+2) while OPT is 6 (3+3 / 2+2+2).
  EXPECT_DOUBLE_EQ(CostModel::Makespan({3, 3, 2, 2, 2}, 2), 7.0);
  // One worker: sum.
  EXPECT_DOUBLE_EQ(CostModel::Makespan({1, 2, 3}, 1), 6.0);
  EXPECT_DOUBLE_EQ(CostModel::Makespan({1, 2, 3}, 0), 6.0);  // clamped
}

JobStats SyntheticJob(int64_t records) {
  JobStats stats;
  stats.name = "synthetic";
  stats.map_input_records = records;
  stats.map_output_records = records;
  stats.map_output_bytes = static_cast<uint64_t>(records) * 16;
  // 64 map tasks, 64 partitions, evenly loaded.
  stats.map_task_records.assign(64, records / 64);
  stats.reduce_partition_records.assign(64, records / 64);
  stats.reduce_partition_bytes.assign(
      64, static_cast<uint64_t>(records) * 16 / 64);
  return stats;
}

TEST(CostModelScaling, MoreMachinesNeverSlower) {
  JobStats job = SyntheticJob(64 * 1000000);
  double prev = 1e300;
  for (int machines : {1, 2, 4, 8, 16, 32}) {
    ClusterConfig config;
    config.num_machines = machines;
    double t = CostModel(config).SimulateJob(job);
    EXPECT_LE(t, prev + 1e-9) << machines << " machines";
    prev = t;
  }
}

TEST(CostModelScaling, ScaleUpFlattensDueToStartup) {
  // The paper's Figure 8 behaviour: near-linear early, flattening later.
  JobStats job = SyntheticJob(64 * 200000);
  ClusterConfig base;
  base.num_machines = 10;
  double t10 = CostModel(base).SimulateJob(job);
  base.num_machines = 20;
  double t20 = CostModel(base).SimulateJob(job);
  base.num_machines = 40;
  double t40 = CostModel(base).SimulateJob(job);
  double speedup_20 = t10 / t20;
  double speedup_40 = t10 / t40;
  EXPECT_GT(speedup_20, 1.0);
  EXPECT_GT(speedup_40, speedup_20);
  // Sub-linear: doubling machines twice gives < 4x.
  EXPECT_LT(speedup_40, 4.0);
  // Marginal gain shrinks: 20->40 gains less than 10->20.
  EXPECT_LT(speedup_40 / speedup_20, speedup_20);
}

TEST(CostModelPipeline, SumsJobsAndChargesStartupPerJob) {
  ClusterConfig config;
  config.job_startup_seconds = 8.0;
  CostModel model(config);
  PipelineStats pipeline;
  pipeline.jobs.push_back(SyntheticJob(6400));
  pipeline.jobs.push_back(SyntheticJob(6400));
  double two = model.SimulatePipeline(pipeline);
  pipeline.jobs.push_back(SyntheticJob(6400));
  double three = model.SimulatePipeline(pipeline);
  EXPECT_GT(three, two + config.job_startup_seconds - 1e-9);
}

}  // namespace
}  // namespace haten2
