// Tests for ClusterConfig's derived quantities and defaults (the knobs
// every benchmark harness turns).

#include "mapreduce/cluster.h"

#include <gtest/gtest.h>

#include "mapreduce/engine.h"
#include "test_util.h"

namespace haten2 {
namespace {

TEST(ClusterConfigTest, DerivedSlotCounts) {
  ClusterConfig config;
  config.num_machines = 10;
  config.map_slots_per_machine = 4;
  config.reduce_slots_per_machine = 2;
  EXPECT_EQ(config.TotalMapSlots(), 40);
  EXPECT_EQ(config.TotalReduceSlots(), 20);
  EXPECT_EQ(config.EffectiveMapTasks(), 40);
  EXPECT_EQ(config.EffectiveReduceTasks(), 20);
  config.num_map_tasks = 7;
  config.num_reduce_tasks = 3;
  EXPECT_EQ(config.EffectiveMapTasks(), 7);
  EXPECT_EQ(config.EffectiveReduceTasks(), 3);
}

TEST(ClusterConfigTest, DefaultsMatchThePaperTestbed) {
  ClusterConfig config;
  EXPECT_EQ(config.num_machines, 40);
  EXPECT_EQ(config.map_slots_per_machine, 4);
  EXPECT_EQ(config.reduce_slots_per_machine, 4);
  EXPECT_GT(config.job_startup_seconds, 0.0);
  EXPECT_EQ(config.total_shuffle_memory_bytes, 0u);  // unlimited
  EXPECT_DOUBLE_EQ(config.task_failure_probability, 0.0);
  EXPECT_TRUE(config.spill_directory.empty());
}

TEST(ClusterConfigTest, ForTestingIsSmallAndFast) {
  ClusterConfig config = ClusterConfig::ForTesting();
  EXPECT_LE(config.TotalMapSlots(), 8);
  EXPECT_DOUBLE_EQ(config.job_startup_seconds, 0.0);
}

TEST(ClusterConfigTest, ExplicitTaskCountsShapeTheJob) {
  // The engine honors num_map_tasks / num_reduce_tasks exactly.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 5;
  Engine engine(config);
  std::vector<int64_t> words(1000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "shaped", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_OK(result.status());
  const JobStats& stats = engine.pipeline().jobs[0];
  EXPECT_EQ(stats.map_task_records.size(), 3u);
  EXPECT_EQ(stats.reduce_partition_records.size(), 5u);
}

TEST(ClusterConfigTest, FewerInputRecordsThanTasksShrinksTheTaskCount) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.num_map_tasks = 64;
  Engine engine(config);
  std::vector<int64_t> words = {1, 2};
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "tiny", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_OK(result.status());
  EXPECT_EQ(engine.pipeline().jobs[0].map_task_records.size(), 2u);
}

}  // namespace
}  // namespace haten2
