// Tests for ClusterConfig's derived quantities and defaults (the knobs
// every benchmark harness turns).

#include "mapreduce/cluster.h"

#include <gtest/gtest.h>

#include <limits>

#include "mapreduce/engine.h"
#include "test_util.h"

namespace haten2 {
namespace {

TEST(ClusterConfigTest, DerivedSlotCounts) {
  ClusterConfig config;
  config.num_machines = 10;
  config.map_slots_per_machine = 4;
  config.reduce_slots_per_machine = 2;
  EXPECT_EQ(config.TotalMapSlots(), 40);
  EXPECT_EQ(config.TotalReduceSlots(), 20);
  EXPECT_EQ(config.EffectiveMapTasks(), 40);
  EXPECT_EQ(config.EffectiveReduceTasks(), 20);
  config.num_map_tasks = 7;
  config.num_reduce_tasks = 3;
  EXPECT_EQ(config.EffectiveMapTasks(), 7);
  EXPECT_EQ(config.EffectiveReduceTasks(), 3);
}

TEST(ClusterConfigTest, DefaultsMatchThePaperTestbed) {
  ClusterConfig config;
  EXPECT_EQ(config.num_machines, 40);
  EXPECT_EQ(config.map_slots_per_machine, 4);
  EXPECT_EQ(config.reduce_slots_per_machine, 4);
  EXPECT_GT(config.job_startup_seconds, 0.0);
  EXPECT_EQ(config.total_shuffle_memory_bytes, 0u);  // unlimited
  EXPECT_DOUBLE_EQ(config.task_failure_probability, 0.0);
  EXPECT_TRUE(config.spill_directory.empty());
}

TEST(ClusterConfigTest, ForTestingIsSmallAndFast) {
  ClusterConfig config = ClusterConfig::ForTesting();
  EXPECT_LE(config.TotalMapSlots(), 8);
  EXPECT_DOUBLE_EQ(config.job_startup_seconds, 0.0);
}

TEST(ClusterConfigTest, ExplicitTaskCountsShapeTheJob) {
  // The engine honors num_map_tasks / num_reduce_tasks exactly.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 5;
  Engine engine(config);
  std::vector<int64_t> words(1000, 1);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "shaped", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_OK(result.status());
  const JobStats& stats = engine.pipeline().jobs[0];
  EXPECT_EQ(stats.map_task_records.size(), 3u);
  EXPECT_EQ(stats.reduce_partition_records.size(), 5u);
}

TEST(ClusterConfigTest, FewerInputRecordsThanTasksShrinksTheTaskCount) {
  ClusterConfig config = ClusterConfig::ForTesting();
  config.num_map_tasks = 64;
  Engine engine(config);
  std::vector<int64_t> words = {1, 2};
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "tiny", static_cast<int64_t>(words.size()),
      [&words](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) {
        em->Emit(words[static_cast<size_t>(i)], 1);
      },
      [](const int64_t& w, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(w, static_cast<int64_t>(vs.size()));
      });
  ASSERT_OK(result.status());
  EXPECT_EQ(engine.pipeline().jobs[0].map_task_records.size(), 2u);
}

TEST(ClusterConfigValidateTest, DefaultAndTestingConfigsAreValid) {
  EXPECT_OK(ClusterConfig().Validate());
  EXPECT_OK(ClusterConfig::ForTesting().Validate());
}

// Each rejected field produces kInvalidArgument naming the field, so the
// CLI error message tells the user which flag to fix.
TEST(ClusterConfigValidateTest, RejectsEachBadFieldByName) {
  struct Case {
    const char* field;
    void (*set)(ClusterConfig*);
  };
  const Case cases[] = {
      {"num_machines", [](ClusterConfig* c) { c->num_machines = 0; }},
      {"map_slots_per_machine",
       [](ClusterConfig* c) { c->map_slots_per_machine = 0; }},
      {"reduce_slots_per_machine",
       [](ClusterConfig* c) { c->reduce_slots_per_machine = -1; }},
      {"num_threads", [](ClusterConfig* c) { c->num_threads = 0; }},
      {"max_concurrent_jobs",
       [](ClusterConfig* c) { c->max_concurrent_jobs = 0; }},
      {"num_map_tasks", [](ClusterConfig* c) { c->num_map_tasks = -1; }},
      {"num_reduce_tasks", [](ClusterConfig* c) { c->num_reduce_tasks = -2; }},
      {"job_startup_seconds",
       [](ClusterConfig* c) { c->job_startup_seconds = -1.0; }},
      {"map_seconds_per_record",
       [](ClusterConfig* c) {
         c->map_seconds_per_record = std::numeric_limits<double>::infinity();
       }},
      {"reduce_seconds_per_record",
       [](ClusterConfig* c) { c->reduce_seconds_per_record = -1e-9; }},
      {"network_bytes_per_second",
       [](ClusterConfig* c) { c->network_bytes_per_second = 0.0; }},
      {"disk_bytes_per_second",
       [](ClusterConfig* c) { c->disk_bytes_per_second = -200e6; }},
      {"spill_threshold_records",
       [](ClusterConfig* c) { c->spill_threshold_records = 0; }},
      {"inject_spill_failure_after_bytes",
       [](ClusterConfig* c) { c->inject_spill_failure_after_bytes = -1; }},
      {"task_failure_probability",
       [](ClusterConfig* c) { c->task_failure_probability = 1.5; }},
      {"task_failure_probability",
       [](ClusterConfig* c) {
         c->task_failure_probability =
             std::numeric_limits<double>::quiet_NaN();
       }},
      {"max_task_attempts",
       [](ClusterConfig* c) { c->max_task_attempts = 0; }},
      {"max_node_attempts",
       [](ClusterConfig* c) { c->max_node_attempts = 0; }},
      {"node_backoff_base_seconds",
       [](ClusterConfig* c) { c->node_backoff_base_seconds = -4.0; }},
      {"node_backoff_multiplier",
       [](ClusterConfig* c) { c->node_backoff_multiplier = 0.5; }},
      {"node_backoff_cap_seconds",
       [](ClusterConfig* c) { c->node_backoff_cap_seconds = -1.0; }},
      {"speculation_slowstart",
       [](ClusterConfig* c) { c->speculation_slowstart = 0.0; }},
      {"straggler_jitter",
       [](ClusterConfig* c) { c->straggler_jitter = -0.1; }},
      {"machine_profiles",
       [](ClusterConfig* c) { c->machine_profiles = {{0.0, 1.0}}; }},
      {"machine_profiles",
       [](ClusterConfig* c) { c->machine_profiles = {{1.0, -1.0}}; }},
      {"backend", [](ClusterConfig* c) { c->backend = "mpi"; }},
      {"backend", [](ClusterConfig* c) { c->backend = ""; }},
      {"num_workers", [](ClusterConfig* c) { c->num_workers = -1; }},
      {"worker_io_timeout_seconds",
       [](ClusterConfig* c) { c->worker_io_timeout_seconds = 0.0; }},
      {"worker_io_timeout_seconds",
       [](ClusterConfig* c) {
         c->worker_io_timeout_seconds =
             std::numeric_limits<double>::quiet_NaN();
       }},
      {"inject_worker_kill_after_tasks",
       [](ClusterConfig* c) { c->inject_worker_kill_after_tasks = -1; }},
      {"contraction", [](ClusterConfig* c) { c->contraction = "gpu"; }},
      {"contraction", [](ClusterConfig* c) { c->contraction = ""; }},
      {"contraction", [](ClusterConfig* c) { c->contraction = "Incore"; }},
      {"incore_memory_mb",
       [](ClusterConfig* c) { c->incore_memory_mb = 0; }},
      {"incore_memory_mb",
       [](ClusterConfig* c) { c->incore_memory_mb = -512; }},
      {"tucker_sketch", [](ClusterConfig* c) { c->tucker_sketch = "srht"; }},
      {"tucker_sketch", [](ClusterConfig* c) { c->tucker_sketch = ""; }},
      {"tucker_sketch",
       [](ClusterConfig* c) { c->tucker_sketch = "Gaussian"; }},
      {"sketch_size", [](ClusterConfig* c) { c->sketch_size = -1; }},
      {"exact_polish_sweeps",
       [](ClusterConfig* c) { c->exact_polish_sweeps = -1; }},
  };
  for (const Case& c : cases) {
    ClusterConfig config;
    c.set(&config);
    Status s = config.Validate();
    EXPECT_TRUE(s.IsInvalidArgument()) << c.field << ": " << s.ToString();
    EXPECT_NE(s.ToString().find(c.field), std::string::npos)
        << "error does not name the field: " << s.ToString();
  }
}

TEST(ClusterConfigValidateTest, AcceptsBothBackends) {
  for (const char* backend : {"inprocess", "subprocess"}) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.backend = backend;
    Status s = config.Validate();
    EXPECT_TRUE(s.ok()) << backend << ": " << s.ToString();
  }
}

TEST(ClusterConfigValidateTest, AcceptsEveryContractionStrategy) {
  for (const char* strategy : {"auto", "dataflow", "incore"}) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.contraction = strategy;
    Status s = config.Validate();
    EXPECT_TRUE(s.ok()) << strategy << ": " << s.ToString();
  }
}

TEST(ClusterConfigValidateTest, AcceptsEverySketchKind) {
  for (const char* kind : {"none", "gaussian", "countsketch"}) {
    ClusterConfig config = ClusterConfig::ForTesting();
    config.tucker_sketch = kind;
    Status s = config.Validate();
    EXPECT_TRUE(s.ok()) << kind << ": " << s.ToString();
  }
}

TEST(ClusterConfigTest, ContractionDefaultsToDataflow) {
  // The default must stay "dataflow": job counts, pipeline counters, and
  // the paper's Tables III/IV reproduction all assume the MapReduce path
  // unless the caller opts in.
  EXPECT_EQ(ClusterConfig().contraction, "dataflow");
  EXPECT_EQ(ClusterConfig::ForTesting().contraction, "dataflow");
  EXPECT_GE(ClusterConfig().incore_memory_mb, 1);
}

TEST(ClusterConfigTest, EffectiveNumWorkersDerivesFromThreads) {
  ClusterConfig config;
  config.num_threads = 3;
  config.num_workers = 0;
  EXPECT_EQ(config.EffectiveNumWorkers(), 3);
  config.num_workers = 7;
  EXPECT_EQ(config.EffectiveNumWorkers(), 7);
}

TEST(ClusterConfigValidateTest, AcceptsWholeFailureProbabilityRange) {
  // The failure-injection tests legitimately run with prob 0.25 / 0.5 / 1.0.
  for (double p : {0.0, 0.25, 0.5, 1.0}) {
    ClusterConfig config;
    config.task_failure_probability = p;
    EXPECT_OK(config.Validate());
  }
}

TEST(ClusterConfigValidateTest, EngineFailsFastOnInvalidConfig) {
  // The Engine constructor cannot return a Status; the first Run() does.
  ClusterConfig config = ClusterConfig::ForTesting();
  config.network_bytes_per_second = 0.0;
  Engine engine(config);
  auto result = engine.Run<int64_t, int64_t, int64_t, int64_t>(
      "invalid", 4,
      [](int64_t i, ShuffleEmitter<int64_t, int64_t>* em) { em->Emit(i, 1); },
      [](const int64_t& k, std::vector<int64_t>& vs,
         OutputEmitter<int64_t, int64_t>* out) {
        out->Emit(k, static_cast<int64_t>(vs.size()));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().ToString().find("network_bytes_per_second"),
            std::string::npos)
      << result.status().ToString();
  // Nothing ran: the pipeline log stays empty.
  EXPECT_TRUE(engine.pipeline().jobs.empty());
}

TEST(MachineProfileTest, ParseSingleSpeed) {
  auto profiles = ParseMachineProfiles("0.5");
  ASSERT_OK(profiles.status());
  ASSERT_EQ(profiles->size(), 1u);
  EXPECT_DOUBLE_EQ((*profiles)[0].speed_factor, 0.5);
  EXPECT_DOUBLE_EQ((*profiles)[0].failure_multiplier, 1.0);
}

TEST(MachineProfileTest, ParseCountsAndFailureMultipliers) {
  auto profiles = ParseMachineProfiles("1.0x30, 0.5x10@2.0");
  ASSERT_OK(profiles.status());
  ASSERT_EQ(profiles->size(), 40u);
  EXPECT_DOUBLE_EQ((*profiles)[0].speed_factor, 1.0);
  EXPECT_DOUBLE_EQ((*profiles)[29].speed_factor, 1.0);
  EXPECT_DOUBLE_EQ((*profiles)[30].speed_factor, 0.5);
  EXPECT_DOUBLE_EQ((*profiles)[30].failure_multiplier, 2.0);
  EXPECT_DOUBLE_EQ((*profiles)[39].failure_multiplier, 2.0);
}

TEST(MachineProfileTest, EmptySpecIsUniform) {
  auto profiles = ParseMachineProfiles("");
  ASSERT_OK(profiles.status());
  EXPECT_TRUE(profiles->empty());
}

TEST(MachineProfileTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseMachineProfiles("fast").ok());
  EXPECT_FALSE(ParseMachineProfiles("1.0,,2.0").ok());
  EXPECT_FALSE(ParseMachineProfiles("0.0").ok());       // zero speed
  EXPECT_FALSE(ParseMachineProfiles("1.0x0").ok());     // zero count
  EXPECT_FALSE(ParseMachineProfiles("1.0x2@-1").ok());  // negative fail mult
}

TEST(MachineProfileTest, ProfilesApplyCyclically) {
  ClusterConfig config;
  config.machine_profiles = ParseMachineProfiles("1.0,0.5").value();
  EXPECT_DOUBLE_EQ(config.ProfileOf(0).speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(config.ProfileOf(1).speed_factor, 0.5);
  EXPECT_DOUBLE_EQ(config.ProfileOf(2).speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(config.ProfileOf(39).speed_factor, 0.5);
  // Empty list: every machine is the reference machine.
  ClusterConfig uniform;
  EXPECT_DOUBLE_EQ(uniform.ProfileOf(7).speed_factor, 1.0);
}

}  // namespace
}  // namespace haten2
