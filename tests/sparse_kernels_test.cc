// Tests for the in-core contraction kernels (linalg/sparse_kernels.h):
// layout construction invariants, edge shapes (empty tensors, single
// nonzeros, duplicate coordinates, extreme dimensions), and seeded property
// tests pinning CsfMttkrp / CsfCrossContract against a naive per-entry
// reference — the same math the dataflow path evaluates.

#include "linalg/sparse_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor_ops.h"
#include "tensor/dense_matrix.h"
#include "tensor/sparse_tensor.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

using ::haten2::testing::RandomSparseTensor;

constexpr double kTol = 1e-9;

// Naive per-entry MTTKRP reference: out[slice][r] += x * prod_s B_s(i_s, r).
std::vector<std::vector<double>> NaiveMttkrp(
    const SparseTensor& x, const CsfLayout& layout,
    const std::vector<const DenseMatrix*>& cfactors, int rank) {
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(layout.num_slices()),
      std::vector<double>(static_cast<size_t>(rank), 0.0));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    int64_t free_idx = x.index(e, layout.free_mode);
    int64_t si = -1;
    for (int64_t k = 0; k < layout.num_slices(); ++k) {
      if (layout.slice_ids[static_cast<size_t>(k)] == free_idx) si = k;
    }
    HATEN2_CHECK(si >= 0) << "nonzero slice missing from layout";
    for (int r = 0; r < rank; ++r) {
      double p = x.value(e);
      for (size_t s = 0; s < layout.cmodes.size(); ++s) {
        p *= (*cfactors[s])(x.index(e, layout.cmodes[s]), r);
      }
      rows[static_cast<size_t>(si)][static_cast<size_t>(r)] += p;
    }
  }
  return rows;
}

SparseTensor MakeTensor(const std::vector<int64_t>& dims,
                        const std::vector<std::vector<int64_t>>& coords,
                        const std::vector<double>& values,
                        bool canonicalize = true) {
  Result<SparseTensor> r = SparseTensor::Create(dims);
  HATEN2_CHECK(r.ok()) << r.status().ToString();
  SparseTensor t = std::move(r).value();
  for (size_t e = 0; e < coords.size(); ++e) {
    t.AppendUnchecked(coords[e].data(), values[e]);
  }
  if (canonicalize) t.Canonicalize();
  return t;
}

TEST(SparseKernelsLayout, EmptyTensorYieldsEmptyLayout) {
  SparseTensor x = MakeTensor({4, 5, 6}, {}, {});
  Result<CsfLayout> layout = BuildCsfLayout(x, 0);
  ASSERT_OK(layout.status());
  EXPECT_EQ(layout->num_slices(), 0);
  EXPECT_EQ(layout->num_fibers(), 0);
  EXPECT_EQ(layout->nnz(), 0);
  EXPECT_GT(layout->MemoryBytes(), 0u);  // the index arrays themselves

  // Kernels on an empty layout produce zero rows, not errors.
  DenseMatrix b(5, 3), c(6, 3);
  std::vector<const DenseMatrix*> cfactors = {&b, &c};
  std::vector<std::vector<double>> rows;
  ASSERT_OK(CsfMttkrp(*layout, cfactors, 3, &rows));
  EXPECT_TRUE(rows.empty());
  ASSERT_OK(CsfCrossContract(*layout, cfactors, {3, 3}, &rows));
  EXPECT_TRUE(rows.empty());
}

TEST(SparseKernelsLayout, SingleNonzeroLayoutAndKernels) {
  SparseTensor x = MakeTensor({4, 5, 6}, {{2, 3, 4}}, {2.5});
  Result<CsfLayout> layout = BuildCsfLayout(x, 0);
  ASSERT_OK(layout.status());
  EXPECT_EQ(layout->num_slices(), 1);
  EXPECT_EQ(layout->num_fibers(), 1);
  EXPECT_EQ(layout->nnz(), 1);
  EXPECT_EQ(layout->slice_ids[0], 2);
  EXPECT_EQ(layout->entry_inner[0], 3);   // coord on cmodes[0] == mode 1
  EXPECT_EQ(layout->fiber_coords[0], 4);  // coord on cmodes[1] == mode 2

  Rng rng(7);
  DenseMatrix b = DenseMatrix::RandomNormal(5, 2, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(6, 2, &rng);
  std::vector<const DenseMatrix*> cfactors = {&b, &c};
  std::vector<std::vector<double>> rows;
  ASSERT_OK(CsfMttkrp(*layout, cfactors, 2, &rows));
  ASSERT_EQ(rows.size(), 1u);
  for (int r = 0; r < 2; ++r) {
    // A single nonzero must be *bit*-identical to the scalar product chain
    // in ascending contracted-mode order (the accumulation-order contract).
    EXPECT_EQ(rows[0][static_cast<size_t>(r)], 2.5 * b(3, r) * c(4, r));
  }

  ASSERT_OK(CsfCrossContract(*layout, cfactors, {2, 2}, &rows));
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  // Stream 0 varies fastest: offset = q0 + 2*q1.
  for (int q1 = 0; q1 < 2; ++q1) {
    for (int q0 = 0; q0 < 2; ++q0) {
      EXPECT_EQ(rows[0][static_cast<size_t>(q0 + 2 * q1)],
                2.5 * b(3, q0) * c(4, q1));
    }
  }
}

TEST(SparseKernelsLayout, DuplicateCoordinatesShareOneFiberAndSum) {
  // Three entries at the same coordinate, appended non-canonically: the
  // layout keeps them as adjacent entries of one fiber and the kernels sum.
  SparseTensor x = MakeTensor({3, 3, 3}, {{1, 2, 0}, {1, 2, 0}, {1, 2, 0}},
                              {1.0, 2.0, 4.0}, /*canonicalize=*/false);
  Result<CsfLayout> layout = BuildCsfLayout(x, 0);
  ASSERT_OK(layout.status());
  EXPECT_EQ(layout->num_slices(), 1);
  EXPECT_EQ(layout->num_fibers(), 1);
  EXPECT_EQ(layout->nnz(), 3);

  DenseMatrix b(3, 1), c(3, 1);
  for (int64_t i = 0; i < 3; ++i) {
    b(i, 0) = 1.0;
    c(i, 0) = 1.0;
  }
  std::vector<const DenseMatrix*> cfactors = {&b, &c};
  std::vector<std::vector<double>> rows;
  ASSERT_OK(CsfMttkrp(*layout, cfactors, 1, &rows));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0], 7.0);
}

TEST(SparseKernelsLayout, ExtremeFreeDimensionStaysCompressed) {
  // A sparse free mode of extent 10^12: the layout must scale with nnz,
  // never with the dimension (only nonempty slices are materialized).
  const int64_t huge = 1000LL * 1000 * 1000 * 1000;
  SparseTensor x = MakeTensor({huge, 3, 3},
                              {{0, 1, 1}, {huge / 2, 0, 2}, {huge - 1, 2, 0}},
                              {1.0, 2.0, 3.0});
  Result<CsfLayout> layout = BuildCsfLayout(x, 0);
  ASSERT_OK(layout.status());
  EXPECT_EQ(layout->num_slices(), 3);
  EXPECT_EQ(layout->slice_ids[0], 0);
  EXPECT_EQ(layout->slice_ids[1], huge / 2);
  EXPECT_EQ(layout->slice_ids[2], huge - 1);
  EXPECT_LT(layout->MemoryBytes(), 1u << 16);

  Rng rng(11);
  DenseMatrix b = DenseMatrix::RandomNormal(3, 2, &rng);
  DenseMatrix c = DenseMatrix::RandomNormal(3, 2, &rng);
  std::vector<const DenseMatrix*> cfactors = {&b, &c};
  std::vector<std::vector<double>> rows;
  ASSERT_OK(CsfMttkrp(*layout, cfactors, 2, &rows));
  ASSERT_EQ(rows.size(), 3u);
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(rows[0][static_cast<size_t>(r)], 1.0 * b(1, r) * c(1, r));
    EXPECT_EQ(rows[1][static_cast<size_t>(r)], 2.0 * b(0, r) * c(2, r));
    EXPECT_EQ(rows[2][static_cast<size_t>(r)], 3.0 * b(2, r) * c(0, r));
  }
}

TEST(SparseKernelsLayout, RejectsBadArguments) {
  SparseTensor x = MakeTensor({3, 3, 3}, {{0, 0, 0}}, {1.0});
  EXPECT_TRUE(BuildCsfLayout(x, -1).status().IsInvalidArgument());
  EXPECT_TRUE(BuildCsfLayout(x, 3).status().IsInvalidArgument());

  Result<CsfLayout> layout = BuildCsfLayout(x, 0);
  ASSERT_OK(layout.status());
  DenseMatrix b(3, 2), c(3, 2);
  std::vector<std::vector<double>> rows;
  // Wrong factor count.
  EXPECT_TRUE(CsfMttkrp(*layout, {&b}, 2, &rows).IsInvalidArgument());
  // Null factor.
  EXPECT_TRUE(
      CsfMttkrp(*layout, {&b, nullptr}, 2, &rows).IsInvalidArgument());
  // Rank mismatch.
  EXPECT_TRUE(CsfMttkrp(*layout, {&b, &c}, 3, &rows).IsInvalidArgument());
  // Cross: block_dims disagreeing with factor columns.
  EXPECT_TRUE(CsfCrossContract(*layout, {&b, &c}, {2, 3}, &rows)
                  .IsInvalidArgument());
  // Null output.
  EXPECT_TRUE(CsfMttkrp(*layout, {&b, &c}, 2, nullptr).IsInvalidArgument());
}

// Seeded property test: on random tensors of several orders and free modes,
// both kernels match the naive reference (and, for MTTKRP, the library's
// Mttkrp) to floating-point tolerance.
TEST(SparseKernelsProperty, MttkrpMatchesReferenceOnRandomTensors) {
  struct Shape {
    std::vector<int64_t> dims;
    int64_t nnz;
  };
  const Shape shapes[] = {
      {{7, 5, 6}, 40},
      {{4, 9, 5}, 25},
      {{6, 8}, 12},          // order-2: no fiber coords at all
      {{4, 5, 3, 6}, 35},    // order-4
      {{4, 3, 4, 3, 4}, 50}, // order-5
  };
  const int rank = 4;
  for (int trial = 0; trial < 3; ++trial) {
    for (const Shape& shape : shapes) {
      Rng rng(1000 + 17 * trial +
              static_cast<uint64_t>(shape.dims.size()));
      SparseTensor x = RandomSparseTensor(shape.dims, shape.nnz, &rng);
      for (int free_mode = 0;
           free_mode < static_cast<int>(shape.dims.size()); ++free_mode) {
        Result<CsfLayout> layout = BuildCsfLayout(x, free_mode);
        ASSERT_OK(layout.status());
        ASSERT_EQ(layout->nnz(), x.nnz());

        std::vector<DenseMatrix> owned;
        std::vector<const DenseMatrix*> cfactors;
        std::vector<const DenseMatrix*> all_factors(
            shape.dims.size(), nullptr);
        for (int m = 0; m < static_cast<int>(shape.dims.size()); ++m) {
          owned.push_back(
              DenseMatrix::RandomNormal(shape.dims[static_cast<size_t>(m)],
                                        rank, &rng));
        }
        for (int m = 0; m < static_cast<int>(shape.dims.size()); ++m) {
          all_factors[static_cast<size_t>(m)] = &owned[static_cast<size_t>(m)];
          if (m != free_mode) cfactors.push_back(&owned[static_cast<size_t>(m)]);
        }

        std::vector<std::vector<double>> rows;
        ASSERT_OK(CsfMttkrp(*layout, cfactors, rank, &rows));
        ASSERT_EQ(rows.size(), static_cast<size_t>(layout->num_slices()));
        std::vector<std::vector<double>> want =
            NaiveMttkrp(x, *layout, cfactors, rank);
        for (size_t si = 0; si < rows.size(); ++si) {
          for (int r = 0; r < rank; ++r) {
            EXPECT_NEAR(rows[si][static_cast<size_t>(r)],
                        want[si][static_cast<size_t>(r)], kTol)
                << "slice " << si << " rank " << r << " free " << free_mode;
          }
        }

        // Cross-check against the library MTTKRP (densified).
        Result<DenseMatrix> lib = Mttkrp(x, all_factors, free_mode);
        ASSERT_OK(lib.status());
        for (size_t si = 0; si < rows.size(); ++si) {
          int64_t slice = layout->slice_ids[si];
          for (int r = 0; r < rank; ++r) {
            EXPECT_NEAR(rows[si][static_cast<size_t>(r)], (*lib)(slice, r),
                        kTol);
          }
        }
      }
    }
  }
}

TEST(SparseKernelsProperty, CrossContractMatchesNaiveReference) {
  Rng rng(4242);
  SparseTensor x = RandomSparseTensor({6, 5, 7}, 45, &rng);
  for (int free_mode = 0; free_mode < 3; ++free_mode) {
    Result<CsfLayout> layout = BuildCsfLayout(x, free_mode);
    ASSERT_OK(layout.status());

    std::vector<int64_t> block_dims;
    std::vector<DenseMatrix> owned;
    for (int m = 0, q = 2; m < 3; ++m) {
      if (m == free_mode) continue;
      owned.push_back(DenseMatrix::RandomNormal(x.dim(m), q, &rng));
      block_dims.push_back(q);
      ++q;  // distinct column counts exercise the odometer weights
    }
    std::vector<const DenseMatrix*> cfactors;
    for (auto& f : owned) cfactors.push_back(&f);

    std::vector<std::vector<double>> rows;
    ASSERT_OK(CsfCrossContract(*layout, cfactors, block_dims, &rows));
    ASSERT_EQ(rows.size(), static_cast<size_t>(layout->num_slices()));

    // Naive reference with Kolda offsets (stream 0 fastest).
    std::vector<std::vector<double>> want(
        rows.size(),
        std::vector<double>(
            static_cast<size_t>(block_dims[0] * block_dims[1]), 0.0));
    for (int64_t e = 0; e < x.nnz(); ++e) {
      int64_t free_idx = x.index(e, free_mode);
      size_t si = 0;
      while (layout->slice_ids[si] != free_idx) ++si;
      for (int64_t q1 = 0; q1 < block_dims[1]; ++q1) {
        for (int64_t q0 = 0; q0 < block_dims[0]; ++q0) {
          double p = x.value(e) *
                     (*cfactors[0])(x.index(e, layout->cmodes[0]), q0) *
                     (*cfactors[1])(x.index(e, layout->cmodes[1]), q1);
          want[si][static_cast<size_t>(q0 + block_dims[0] * q1)] += p;
        }
      }
    }
    for (size_t si = 0; si < rows.size(); ++si) {
      ASSERT_EQ(rows[si].size(), want[si].size());
      for (size_t j = 0; j < rows[si].size(); ++j) {
        EXPECT_NEAR(rows[si][j], want[si][j], kTol);
      }
    }
  }
}

TEST(SparseKernelsFingerprint, DistinguishesContentNotAddress) {
  SparseTensor a = MakeTensor({4, 4, 4}, {{0, 1, 2}, {3, 2, 1}}, {1.0, 2.0});
  SparseTensor b = MakeTensor({4, 4, 4}, {{0, 1, 2}, {3, 2, 1}}, {1.0, 2.0});
  // Same content, different objects: same fingerprint.
  EXPECT_EQ(TensorFingerprint(a), TensorFingerprint(b));

  // Different value bits: different fingerprint.
  SparseTensor c = MakeTensor({4, 4, 4}, {{0, 1, 2}, {3, 2, 1}}, {1.0, 2.5});
  EXPECT_NE(TensorFingerprint(a), TensorFingerprint(c));

  // Different coordinate, same nnz and shape: different fingerprint.
  SparseTensor d = MakeTensor({4, 4, 4}, {{0, 1, 2}, {3, 2, 2}}, {1.0, 2.0});
  EXPECT_NE(TensorFingerprint(a), TensorFingerprint(d));

  // Different shape, same entries: different fingerprint.
  SparseTensor e = MakeTensor({4, 4, 5}, {{0, 1, 2}, {3, 2, 1}}, {1.0, 2.0});
  EXPECT_NE(TensorFingerprint(a), TensorFingerprint(e));
}

}  // namespace
}  // namespace haten2
