// DeltaLog: append/seal semantics, merged views, the binary round-trip,
// and corruption detection — the ingest side of the refit loop.

#include "tensor/delta_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.h"
#include "test_util.h"
#include "util/random.h"

namespace haten2 {
namespace {

using testing::RandomSparseTensor;

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = (dir != nullptr && dir[0] != '\0') ? dir : "/tmp";
  return base + "/haten2_delta_log_test_" + name;
}

TEST(DeltaLog, AppendSealAndMergeSumsDuplicates) {
  Result<DeltaLog> log = DeltaLog::Create({4, 4, 4});
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_OK(log->Append({1, 2, 3}, 1.0));
  ASSERT_OK(log->Append({1, 2, 3}, 2.0));  // duplicate sums at seal
  ASSERT_OK(log->Append({0, 0, 0}, 5.0));
  EXPECT_EQ(log->open_appends(), 3);
  Result<int64_t> epoch = log->SealEpoch();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 0);
  EXPECT_EQ(log->num_epochs(), 1);
  EXPECT_EQ(log->open_appends(), 0);
  const SparseTensor& delta = log->epoch(0);
  EXPECT_EQ(delta.nnz(), 2);
  EXPECT_DOUBLE_EQ(delta.Get({1, 2, 3}), 3.0);

  Result<SparseTensor> base = SparseTensor::Create({4, 4, 4});
  ASSERT_TRUE(base.ok());
  ASSERT_OK(base->Append({1, 2, 3}, 10.0));
  base->Canonicalize();
  Result<SparseTensor> merged = log->MergedView(*base);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_DOUBLE_EQ(merged->Get({1, 2, 3}), 13.0);
  EXPECT_DOUBLE_EQ(merged->Get({0, 0, 0}), 5.0);
}

TEST(DeltaLog, DeletionByCancellationDropsTheEntry) {
  Result<DeltaLog> log = DeltaLog::Create({3, 3});
  ASSERT_TRUE(log.ok());
  ASSERT_OK(log->Append({2, 2}, 4.0));
  ASSERT_OK(log->Append({2, 2}, -4.0));
  ASSERT_OK(log->SealEpoch().status());
  // All entries cancelled: the sealed epoch is empty but still an epoch.
  EXPECT_EQ(log->num_epochs(), 1);
  EXPECT_EQ(log->epoch(0).nnz(), 0);
}

TEST(DeltaLog, SealingAnEmptyBufferIsRefused) {
  Result<DeltaLog> log = DeltaLog::Create({2, 2});
  ASSERT_TRUE(log.ok());
  Result<int64_t> sealed = log->SealEpoch();
  EXPECT_FALSE(sealed.ok());
  EXPECT_TRUE(sealed.status().IsFailedPrecondition())
      << sealed.status().ToString();
}

TEST(DeltaLog, AppendsAreBoundsChecked) {
  Result<DeltaLog> log = DeltaLog::Create({2, 2});
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(log->Append({2, 0}, 1.0).ok());  // coordinate == dim
  EXPECT_FALSE(log->Append({0, -1}, 1.0).ok());
  EXPECT_EQ(log->open_appends(), 0);
}

TEST(DeltaLog, MergeDeltaRequiresMatchingDims) {
  Result<SparseTensor> base = SparseTensor::Create({3, 3});
  Result<SparseTensor> delta = SparseTensor::Create({3, 4});
  ASSERT_TRUE(base.ok() && delta.ok());
  Status merged = MergeDelta(&*base, *delta);
  EXPECT_FALSE(merged.ok());
}

TEST(DeltaLog, FromTensorChopsIntoEpochsInStorageOrder) {
  Rng rng(7);
  SparseTensor triples = RandomSparseTensor({6, 6, 6}, 50, &rng);
  const int64_t nnz = triples.nnz();
  Result<DeltaLog> log = DeltaLogFromTensor(triples, {8, 8, 8}, 16);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->num_epochs(), (nnz + 15) / 16);
  EXPECT_EQ(log->sealed_nnz(), nnz);  // canonical input: nothing merges

  // Merging every epoch into an empty base reproduces the source tensor
  // (modulo the wider declared dims).
  Result<SparseTensor> empty = SparseTensor::Create({8, 8, 8});
  ASSERT_TRUE(empty.ok());
  Result<SparseTensor> merged = log->MergedView(*empty);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->nnz(), nnz);
  for (int64_t e = 0; e < nnz; ++e) {
    EXPECT_EQ(merged->index(e, 0), triples.index(e, 0));
    EXPECT_EQ(merged->index(e, 1), triples.index(e, 1));
    EXPECT_EQ(merged->index(e, 2), triples.index(e, 2));
    EXPECT_DOUBLE_EQ(merged->value(e), triples.value(e));
  }

  // epoch_nnz <= 0: everything in one epoch.
  Result<DeltaLog> one = DeltaLogFromTensor(triples, {8, 8, 8}, 0);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->num_epochs(), 1);
}

TEST(DeltaLog, BinaryRoundTripPreservesEpochsAndOpenBuffer) {
  Result<DeltaLog> log = DeltaLog::Create({5, 5, 5});
  ASSERT_TRUE(log.ok());
  ASSERT_OK(log->Append({0, 1, 2}, 1.5));
  ASSERT_OK(log->Append({4, 4, 4}, -2.0));
  ASSERT_OK(log->SealEpoch().status());
  ASSERT_OK(log->Append({3, 3, 3}, 7.0));
  ASSERT_OK(log->Append({3, 3, 3}, -7.0));
  ASSERT_OK(log->SealEpoch().status());  // epoch 1 is empty after cancel
  ASSERT_OK(log->Append({2, 0, 1}, 9.0));  // unsealed tail

  const std::string path = TempPath("roundtrip.bin");
  ASSERT_OK(WriteDeltaLogBinary(*log, path));
  Result<DeltaLog> read = ReadDeltaLogBinary(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->dims(), log->dims());
  ASSERT_EQ(read->num_epochs(), 2);
  EXPECT_TRUE(read->epoch(0).IdenticalTo(log->epoch(0)));
  EXPECT_TRUE(read->epoch(1).IdenticalTo(log->epoch(1)));
  EXPECT_EQ(read->open_appends(), 1);
  // The tail seals into the same delta as the original's would.
  ASSERT_OK(read->SealEpoch().status());
  EXPECT_DOUBLE_EQ(read->epoch(2).Get({2, 0, 1}), 9.0);
  std::remove(path.c_str());
}

TEST(DeltaLog, BinaryReadRejectsCorruption) {
  Result<DeltaLog> log = DeltaLog::Create({4, 4});
  ASSERT_TRUE(log.ok());
  ASSERT_OK(log->Append({1, 1}, 3.0));
  ASSERT_OK(log->SealEpoch().status());
  const std::string path = TempPath("corrupt.bin");
  ASSERT_OK(WriteDeltaLogBinary(*log, path));

  // Flip one byte in the middle of the file: the checksum must catch it.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Result<DeltaLog> read = ReadDeltaLogBinary(path);
  EXPECT_FALSE(read.ok());

  // Truncation is caught too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  Result<DeltaLog> truncated = ReadDeltaLogBinary(path);
  EXPECT_FALSE(truncated.ok());
  std::remove(path.c_str());
}

TEST(DeltaLog, MergedViewFromMidLog) {
  Result<DeltaLog> log = DeltaLog::Create({4, 4});
  ASSERT_TRUE(log.ok());
  ASSERT_OK(log->Append({0, 0}, 1.0));
  ASSERT_OK(log->SealEpoch().status());
  ASSERT_OK(log->Append({1, 1}, 2.0));
  ASSERT_OK(log->SealEpoch().status());
  Result<SparseTensor> empty = SparseTensor::Create({4, 4});
  ASSERT_TRUE(empty.ok());
  Result<SparseTensor> tail = log->MergedView(*empty, /*first_epoch=*/1);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->nnz(), 1);
  EXPECT_DOUBLE_EQ(tail->Get({1, 1}), 2.0);
}

}  // namespace
}  // namespace haten2
