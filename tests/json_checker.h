#ifndef HATEN2_TESTS_JSON_CHECKER_H_
#define HATEN2_TESTS_JSON_CHECKER_H_

#include <cctype>
#include <string>

namespace haten2 {
namespace testing {

// Minimal recursive-descent JSON syntax checker (RFC 8259 subset), so the
// tests validate the stats exports with an implementation independent of
// JsonWriter. Shared by engine_stats_test.cc and serving_test.cc.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }
  bool Literal(const char* s) {
    const char* q = p_;
    while (*s != '\0') {
      if (q == end_ || *q != *s) return false;
      ++q;
      ++s;
    }
    p_ = q;
    return true;
  }
  bool String() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (static_cast<unsigned char>(*p_) < 0x20) return false;  // raw ctrl
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        char c = *p_;
        if (c == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
              return false;
          }
        } else if (c != '"' && c != '\\' && c != '/' && c != 'b' &&
                   c != 'f' && c != 'n' && c != 'r' && c != 't') {
          return false;
        }
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
      return false;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return false;
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return false;
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    return p_ != start;
  }
  bool Value() {
    if (++depth_ > 64) return false;
    SkipWs();
    bool ok = false;
    if (p_ == end_) {
      ok = false;
    } else if (*p_ == '{') {
      ok = Object();
    } else if (*p_ == '[') {
      ok = Array();
    } else if (*p_ == '"') {
      ok = String();
    } else if (Literal("true") || Literal("false") || Literal("null")) {
      ok = true;
    } else {
      ok = Number();
    }
    --depth_;
    return ok;
  }
  bool Object() {
    ++p_;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      if (!Value()) return false;
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++p_;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }

  const char* p_;
  const char* end_;
  int depth_ = 0;
};

}  // namespace testing
}  // namespace haten2

#endif  // HATEN2_TESTS_JSON_CHECKER_H_
