// haten2_serve — model-serving front end: loads checkpoints written by
// haten2_cli --output into a ModelRegistry and answers top-k prediction,
// neighbor, and concept queries through the batched request pipeline.
//
// Usage:
//   haten2_serve <model-prefix> [flags]
//
// Flags:
//   --method=parafac|tucker       checkpoint family (default parafac)
//   --name=NAME                   registry name for the model (default
//                                 "default")
//   --tensor=PATH                 the observed tensor the model was fitted
//                                 on; required for top-k predicted-entry
//                                 queries (they score only absent cells)
//   --script=FILE                 run the queries listed in FILE (one per
//                                 line, '#' comments):
//                                   topk <k> [beam]
//                                   neighbors <mode> <row> <n>
//                                   concepts <component> <mode> <n>
//                                 and print their results
//   --clients=N                   without --script: closed-loop load
//                                 threads (default 4)
//   --duration=SECONDS            closed-loop load duration (default 2)
//   --threads=T                   pipeline worker threads (default 4)
//   --batch=B                     micro-batch size (default 16)
//   --queue=N                     bounded queue capacity (default 1024)
//   --cache-entries=N             LRU result-cache entries (default 4096)
//   --cache-shards=S              LRU shards (default 8)
//   --beam=B                      beam precomputed at install and used by
//                                 synthetic top-k queries (default 10)
//   --topk=K                      k of synthetic top-k queries (default 10)
//   --seed=S                      synthetic workload seed (default 17)
//   --stats_json=PATH             write "haten2-serving-v1" telemetry JSON
//                                 (latency percentiles per query class,
//                                 QPS, cache hit rate; with --refit_loop
//                                 also the refit staleness/cost object)
//   --refit_loop                  ingest → refit → serve drill: the
//                                 positional argument is a TENSOR file, not
//                                 a model prefix. Fits it (--rank), installs
//                                 the model, then seals --epochs synthetic
//                                 delta epochs of --epoch_nnz entries each,
//                                 refitting and hot-swapping after every
//                                 epoch while --clients closed-loop threads
//                                 keep querying; each install purges the
//                                 dead version's cache entries
//   --rank=R                      refit-loop decomposition rank (default 8)
//   --iterations=N                ALS iterations per (re)fit (default 10)
//   --epochs=E                    synthetic epochs to seal (default 3)
//   --epoch_nnz=N                 triples appended per epoch (default 200)
//   --incremental                 dirty-slice cache patching between
//                                 refits (default on; --incremental=false
//                                 rebuilds the contraction cache per epoch
//                                 — factors are bit-identical either way)
//
// Exit code 0 on success, 1 on load/query-script errors.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "mapreduce/engine.h"
#include "serving/model_registry.h"
#include "serving/query_engine.h"
#include "serving/refit_controller.h"
#include "serving/request_pipeline.h"
#include "serving/serving_stats.h"
#include "tensor/delta_log.h"
#include "tensor/tensor_binary_io.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace haten2 {
namespace {

constexpr const char* kUsage =
    "usage: haten2_serve <model-prefix>\n"
    "       [--method=parafac|tucker] [--name=NAME] [--tensor=PATH]\n"
    "       [--script=FILE | --clients=N --duration=SECONDS]\n"
    "       [--threads=T] [--batch=B] [--queue=N]\n"
    "       [--cache-entries=N] [--cache-shards=S]\n"
    "       [--beam=B] [--topk=K] [--seed=S] [--stats_json=PATH]\n"
    "       haten2_serve <tensor-file> --refit_loop [--rank=R]\n"
    "       [--iterations=N] [--epochs=E] [--epoch_nnz=N]\n"
    "       [--incremental=true|false] [--clients=N] [--stats_json=PATH]\n";

std::string FormatIndex(const std::vector<int64_t>& idx) {
  std::string out = "(";
  for (size_t m = 0; m < idx.size(); ++m) {
    if (m > 0) out += ", ";
    out += StrFormat("%lld", (long long)idx[m]);
  }
  return out + ")";
}

/// Parses one script line into a Query; empty result for blank/comment.
Result<Query> ParseScriptLine(const std::string& model_name,
                              const std::string& line, int lineno) {
  std::vector<std::string> tokens = SplitWhitespace(line);
  Query q;
  q.model = model_name;
  auto arg = [&](size_t i) -> Result<int64_t> {
    if (i >= tokens.size()) {
      return Status::InvalidArgument(
          StrFormat("script line %d: missing argument %zu", lineno, i));
    }
    return ParseInt64(tokens[i]);
  };
  if (tokens[0] == "topk") {
    q.kind = QueryKind::kTopK;
    HATEN2_ASSIGN_OR_RETURN(q.k, arg(1));
    if (tokens.size() > 2) {
      HATEN2_ASSIGN_OR_RETURN(q.beam, arg(2));
    }
  } else if (tokens[0] == "neighbors") {
    q.kind = QueryKind::kNeighbors;
    HATEN2_ASSIGN_OR_RETURN(int64_t mode, arg(1));
    q.mode = static_cast<int>(mode);
    HATEN2_ASSIGN_OR_RETURN(q.row, arg(2));
    HATEN2_ASSIGN_OR_RETURN(q.k, arg(3));
  } else if (tokens[0] == "concepts") {
    q.kind = QueryKind::kConcepts;
    HATEN2_ASSIGN_OR_RETURN(q.component, arg(1));
    HATEN2_ASSIGN_OR_RETURN(int64_t mode, arg(2));
    q.mode = static_cast<int>(mode);
    HATEN2_ASSIGN_OR_RETURN(q.k, arg(3));
  } else {
    return Status::InvalidArgument(StrFormat(
        "script line %d: unknown query '%s'", lineno, tokens[0].c_str()));
  }
  return q;
}

void PrintResult(const Query& query, const QueryResult& result,
                 bool cache_hit) {
  switch (query.kind) {
    case QueryKind::kTopK:
      std::printf("topk k=%lld beam=%lld (v%lld%s, %lld candidates "
                  "scored):\n",
                  (long long)query.k, (long long)query.beam,
                  (long long)result.model_version, cache_hit ? ", cached" : "",
                  (long long)result.prediction_stats.candidates_scored);
      for (const PredictedEntry& e : result.entries) {
        std::printf("  %s  %.6f\n", FormatIndex(e.index).c_str(), e.score);
      }
      break;
    case QueryKind::kNeighbors:
      std::printf("neighbors mode=%d row=%lld (v%lld%s):\n", query.mode,
                  (long long)query.row, (long long)result.model_version,
                  cache_hit ? ", cached" : "");
      for (const ScoredRow& r : result.rows) {
        std::printf("  row %lld  sim %.6f\n", (long long)r.row, r.score);
      }
      break;
    case QueryKind::kConcepts:
      std::printf("concepts component=%lld mode=%d (v%lld%s):\n",
                  (long long)query.component, query.mode,
                  (long long)result.model_version,
                  cache_hit ? ", cached" : "");
      for (const ScoredRow& r : result.rows) {
        std::printf("  row %lld  loading %.6f\n", (long long)r.row, r.score);
      }
      break;
  }
}

/// Runs a query script through the pipeline; returns the number of failed
/// queries.
int RunScript(const std::string& path, const std::string& model_name,
              RequestPipeline* pipeline) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open --script=%s\n", path.c_str());
    return 1;
  }
  struct Issued {
    Query query;
    std::future<RequestPipeline::Response> future;
  };
  std::vector<Issued> issued;
  std::string line;
  int lineno = 0;
  int failures = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    Result<Query> q = ParseScriptLine(model_name, line, lineno);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      ++failures;
      continue;
    }
    Query query = std::move(q).value();
    issued.push_back(Issued{query, pipeline->Submit(std::move(query))});
  }
  for (Issued& i : issued) {
    RequestPipeline::Response response = i.future.get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   response.status.ToString().c_str());
      ++failures;
      continue;
    }
    PrintResult(i.query, *response.result, response.cache_hit);
  }
  return failures;
}

struct LoadSpec {
  std::string model_name;
  bool topk_available = false;
  int order = 0;
  int64_t rank = 0;
  std::vector<int64_t> dims;  // factor row counts per mode
  int64_t topk = 10;
  int64_t beam = 10;
  double duration_seconds = 2.0;
  int clients = 4;
  uint64_t seed = 17;
};

/// Closed-loop synthetic load: each client keeps exactly one query in
/// flight. Parameters are drawn from small Zipf-skewed pools so the LRU
/// sees realistic repetition.
void RunSyntheticLoad(const LoadSpec& spec, RequestPipeline* pipeline) {
  std::atomic<uint64_t> issued{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(spec.clients));
  for (int c = 0; c < spec.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(spec.seed + static_cast<uint64_t>(c) * 7919);
      WallTimer timer;
      while (timer.ElapsedSeconds() < spec.duration_seconds) {
        Query q;
        q.model = spec.model_name;
        double roll = rng.Uniform();
        if (spec.topk_available && roll < 0.2) {
          q.kind = QueryKind::kTopK;
          q.k = spec.topk;
          q.beam = spec.beam;
        } else if (roll < 0.6) {
          q.kind = QueryKind::kNeighbors;
          q.mode = static_cast<int>(rng.UniformInt(
              static_cast<uint64_t>(spec.order)));
          int64_t dim = spec.dims[static_cast<size_t>(q.mode)];
          // Zipf-skewed anchor: hot entities repeat, so the cache can
          // help; the tail keeps it honest.
          q.row = static_cast<int64_t>(rng.Zipf(
              static_cast<uint64_t>(std::min<int64_t>(dim, 1024)), 1.1));
          q.k = 10;
        } else {
          q.kind = QueryKind::kConcepts;
          q.component = static_cast<int64_t>(
              rng.UniformInt(static_cast<uint64_t>(spec.rank)));
          q.mode = static_cast<int>(rng.UniformInt(
              static_cast<uint64_t>(spec.order)));
          q.k = 10;
        }
        RequestPipeline::Response response =
            pipeline->Submit(std::move(q)).get();
        (void)response;
        issued.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::printf("closed-loop load: %llu queries from %d clients in %.1fs\n",
              (unsigned long long)issued.load(), spec.clients,
              spec.duration_seconds);
}

/// Closed-loop load threads that run until `stop` flips — the refit-loop
/// drill's traffic, querying *while* the controller refits and hot-swaps.
class BackgroundLoad {
 public:
  BackgroundLoad(const LoadSpec& spec, RequestPipeline* pipeline) {
    clients_.reserve(static_cast<size_t>(spec.clients));
    for (int c = 0; c < spec.clients; ++c) {
      clients_.emplace_back([this, spec, pipeline, c] {
        Rng rng(spec.seed + static_cast<uint64_t>(c) * 7919);
        while (!stop_.load(std::memory_order_relaxed)) {
          Query q;
          q.model = spec.model_name;
          double roll = rng.Uniform();
          if (spec.topk_available && roll < 0.2) {
            q.kind = QueryKind::kTopK;
            q.k = spec.topk;
            q.beam = spec.beam;
          } else if (roll < 0.6) {
            q.kind = QueryKind::kNeighbors;
            q.mode = static_cast<int>(
                rng.UniformInt(static_cast<uint64_t>(spec.order)));
            int64_t dim = spec.dims[static_cast<size_t>(q.mode)];
            q.row = static_cast<int64_t>(rng.Zipf(
                static_cast<uint64_t>(std::min<int64_t>(dim, 1024)), 1.1));
            q.k = 10;
          } else {
            q.kind = QueryKind::kConcepts;
            q.component = static_cast<int64_t>(
                rng.UniformInt(static_cast<uint64_t>(spec.rank)));
            q.mode = static_cast<int>(
                rng.UniformInt(static_cast<uint64_t>(spec.order)));
            q.k = 10;
          }
          (void)pipeline->Submit(std::move(q)).get();
          issued_.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  uint64_t StopAndJoin() {
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& t : clients_) {
      if (t.joinable()) t.join();
    }
    return issued_.load(std::memory_order_relaxed);
  }

  ~BackgroundLoad() { StopAndJoin(); }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> issued_{0};
  std::vector<std::thread> clients_;
};

/// Seals `epochs` synthetic epochs of `epoch_nnz` uniform triples each into
/// a DeltaLog over `dims` (seeded, so the drill is reproducible).
Result<DeltaLog> SynthesizeDeltaLog(const std::vector<int64_t>& dims,
                                    int64_t epochs, int64_t epoch_nnz,
                                    uint64_t seed) {
  HATEN2_ASSIGN_OR_RETURN(DeltaLog log, DeltaLog::Create(dims));
  Rng rng(seed ^ 0xd17a);
  std::vector<int64_t> idx(dims.size());
  for (int64_t e = 0; e < epochs; ++e) {
    for (int64_t i = 0; i < epoch_nnz; ++i) {
      for (size_t m = 0; m < dims.size(); ++m) {
        idx[m] = static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(dims[m])));
      }
      HATEN2_RETURN_IF_ERROR(log.Append(
          idx.data(), static_cast<int>(idx.size()), rng.Uniform() + 0.5));
    }
    HATEN2_RETURN_IF_ERROR(log.SealEpoch().status());
  }
  return log;
}

struct RefitLoopSpec {
  std::string tensor_path;
  std::string model_name;
  std::string stats_json;
  int64_t rank = 8;
  int64_t iterations = 10;
  int64_t epochs = 3;
  int64_t epoch_nnz = 200;
  int64_t beam = 10;
  int64_t topk = 10;
  int clients = 4;
  size_t threads = 4;
  size_t batch = 16;
  size_t queue = 1024;
  size_t cache_entries = 4096;
  size_t cache_shards = 8;
  uint64_t seed = 17;
  bool incremental = true;
};

/// The --refit_loop drill: fit the base tensor, then seal synthetic epochs
/// and refit/hot-swap after each one while closed-loop clients keep
/// querying the registry name.
int RunRefitLoop(const RefitLoopSpec& spec) {
  Result<SparseTensor> base = ReadTensorAuto(spec.tensor_path);
  if (!base.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", spec.tensor_path.c_str(),
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %s\n", spec.tensor_path.c_str(),
              base->DebugString().c_str());

  // In-core contraction so the refits exercise the CSF layout cache — the
  // thing dirty-slice invalidation patches.
  ClusterConfig config;
  config.contraction = "incore";
  Status config_status = config.Validate();
  if (!config_status.ok()) {
    std::fprintf(stderr, "%s\n", config_status.ToString().c_str());
    return 1;
  }
  Engine engine(config);

  RegistryOptions registry_options;
  registry_options.beam_options.beam = spec.beam;
  ModelRegistry registry(registry_options);
  QueryEngine query_engine(&registry);
  ServingStats stats;
  PipelineOptions pipeline_options;
  pipeline_options.num_threads = spec.threads;
  pipeline_options.max_batch = spec.batch;
  pipeline_options.queue_capacity = spec.queue;
  pipeline_options.cache_capacity = spec.cache_entries;
  pipeline_options.cache_shards = spec.cache_shards;
  RequestPipeline pipeline(&query_engine, &stats, pipeline_options);
  // Wire the purge hook before the first install so no version's dead
  // entries ever linger (the regression this drill exists to catch).
  registry.SetInstallListener(
      [&pipeline](const std::string& name, int64_t version) {
        pipeline.PurgeModelExcept(name, version);
      });

  RefitController::Options controller_options;
  controller_options.model_name = spec.model_name;
  controller_options.refit.rank = spec.rank;
  controller_options.refit.incremental = spec.incremental;
  controller_options.refit.als.max_iterations =
      static_cast<int>(spec.iterations);
  controller_options.refit.als.seed = spec.seed;
  RefitController controller(&engine, &registry, std::move(*base),
                             controller_options);
  const std::vector<int64_t> dims = controller.session().tensor().dims();

  WallTimer timer;
  Status boot = controller.Bootstrap();
  if (!boot.ok()) {
    std::fprintf(stderr, "bootstrap fit: %s\n", boot.ToString().c_str());
    pipeline.Shutdown();
    return 1;
  }
  std::printf("bootstrap: fit %.4f installed as '%s' v%lld (%s)\n",
              controller.session().model().fit, spec.model_name.c_str(),
              (long long)controller.GetCounters().installed_version,
              HumanSeconds(timer.ElapsedSeconds()).c_str());

  Result<DeltaLog> log =
      SynthesizeDeltaLog(dims, spec.epochs, spec.epoch_nnz, spec.seed);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    pipeline.Shutdown();
    return 1;
  }

  Status loop_status = Status::OK();
  uint64_t load_queries = 0;
  {
    Result<std::shared_ptr<const ServedModel>> served =
        registry.Get(spec.model_name);
    if (!served.ok()) {
      std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
      pipeline.Shutdown();
      return 1;
    }
    LoadSpec load;
    load.model_name = spec.model_name;
    load.topk_available = (*served)->observed != nullptr;
    load.order = (*served)->order();
    load.rank = (*served)->rank();
    for (const DenseMatrix& f : (*served)->factors()) {
      load.dims.push_back(f.rows());
    }
    load.topk = spec.topk;
    load.beam = spec.beam;
    load.clients = spec.clients;
    load.seed = spec.seed;
    BackgroundLoad traffic(load, &pipeline);
    Result<int64_t> ingested = controller.CatchUp(*log);
    load_queries = traffic.StopAndJoin();
    loop_status = ingested.status();
  }
  pipeline.Shutdown();
  stats.EndWindow();
  if (!loop_status.ok()) {
    std::fprintf(stderr, "refit loop: %s\n", loop_status.ToString().c_str());
    return 1;
  }

  RefitController::Counters counters = controller.GetCounters();
  ShardedLruCache<QueryResult>::Stats cache = pipeline.CacheStats();
  std::printf(
      "refit loop (%s): %lld epochs sealed, %lld installed "
      "(max %lld behind), now serving v%lld at fit %.4f\n",
      spec.incremental ? "incremental" : "full refit",
      (long long)counters.epochs_sealed, (long long)counters.epochs_installed,
      (long long)counters.max_epochs_behind,
      (long long)counters.installed_version, counters.refit.last_fit);
  std::printf(
      "cost: merge %s + refit %s over %lld delta nnz, %lld ALS iterations; "
      "%llu queries served during the loop, %llu stale cache entries "
      "purged\n",
      HumanSeconds(counters.refit.merge_seconds).c_str(),
      HumanSeconds(counters.refit.refit_seconds).c_str(),
      (long long)counters.refit.delta_nnz,
      (long long)counters.refit.iterations,
      (unsigned long long)load_queries, (unsigned long long)cache.purges);

  if (!spec.stats_json.empty()) {
    ServingStats::CacheCounters cache_counters;
    cache_counters.hits = cache.hits;
    cache_counters.misses = cache.misses;
    cache_counters.evictions = cache.evictions;
    cache_counters.purges = cache.purges;
    cache_counters.entries = cache.entries;
    cache_counters.hit_rate = cache.HitRate();
    ServingStats::RefitTelemetry refit;
    refit.epochs_sealed = counters.epochs_sealed;
    refit.epochs_installed = counters.epochs_installed;
    refit.epochs_behind = counters.epochs_behind;
    refit.max_epochs_behind = counters.max_epochs_behind;
    refit.installed_version = counters.installed_version;
    refit.delta_nnz = counters.refit.delta_nnz;
    refit.merge_seconds = counters.refit.merge_seconds;
    refit.refit_seconds = counters.refit.refit_seconds;
    refit.refit_iterations = counters.refit.iterations;
    refit.last_fit = counters.refit.last_fit;
    std::vector<ServingStats::ModelRow> models;
    for (const std::string& n : registry.Names()) {
      Result<std::shared_ptr<const ServedModel>> m = registry.Get(n);
      if (!m.ok()) continue;
      ServingStats::ModelRow row;
      row.name = n;
      row.kind = ModelKindName((*m)->kind);
      row.version = (*m)->version;
      row.order = (*m)->order();
      row.rank = (*m)->rank();
      models.push_back(std::move(row));
    }
    Status written = WriteServingStatsJsonFile(
        stats.ToJson("haten2_serve", cache_counters, models, &refit),
        spec.stats_json);
    if (!written.ok()) {
      std::fprintf(stderr, "--stats_json: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", spec.stats_json.c_str());
  }
  return 0;
}

int RealMain(int argc, char** argv) {
  FlagParser flags(argc, argv);
  Status valid = flags.Validate(
      {"method", "name", "tensor", "script", "clients", "duration",
       "threads", "batch", "queue", "cache-entries", "cache-shards", "beam",
       "topk", "seed", "stats_json", "refit_loop", "rank", "iterations",
       "epochs", "epoch_nnz", "incremental", "help"});
  if (!valid.ok() || flags.GetBool("help", false) ||
      flags.positional().size() != 1) {
    if (!valid.ok()) std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    std::fputs(kUsage, stderr);
    return flags.GetBool("help", false) ? 0 : 1;
  }

  const std::string prefix = flags.positional()[0];
  const std::string method = flags.GetString("method", "parafac");
  const std::string name = flags.GetString("name", "default");
  const std::string tensor_path = flags.GetString("tensor", "");
  const std::string script = flags.GetString("script", "");
  const std::string stats_json = flags.GetString("stats_json", "");
  Result<int64_t> clients = flags.GetInt("clients", 4);
  Result<double> duration = flags.GetDouble("duration", 2.0);
  Result<int64_t> threads = flags.GetInt("threads", 4);
  Result<int64_t> batch = flags.GetInt("batch", 16);
  Result<int64_t> queue = flags.GetInt("queue", 1024);
  Result<int64_t> cache_entries = flags.GetInt("cache-entries", 4096);
  Result<int64_t> cache_shards = flags.GetInt("cache-shards", 8);
  Result<int64_t> beam = flags.GetInt("beam", 10);
  Result<int64_t> topk = flags.GetInt("topk", 10);
  Result<int64_t> seed = flags.GetInt("seed", 17);
  Result<int64_t> rank = flags.GetInt("rank", 8);
  Result<int64_t> iterations = flags.GetInt("iterations", 10);
  Result<int64_t> epochs = flags.GetInt("epochs", 3);
  Result<int64_t> epoch_nnz = flags.GetInt("epoch_nnz", 200);
  for (const Status& s :
       {clients.status(), duration.status(), threads.status(),
        batch.status(), queue.status(), cache_entries.status(),
        cache_shards.status(), beam.status(), topk.status(),
        seed.status(), rank.status(), iterations.status(),
        epochs.status(), epoch_nnz.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (flags.GetBool("refit_loop", false)) {
    RefitLoopSpec spec;
    spec.tensor_path = prefix;  // the positional is a tensor file here
    spec.model_name = name;
    spec.stats_json = stats_json;
    spec.rank = *rank;
    spec.iterations = *iterations;
    spec.epochs = *epochs;
    spec.epoch_nnz = *epoch_nnz;
    spec.beam = *beam;
    spec.topk = *topk;
    spec.clients = static_cast<int>(*clients);
    spec.threads = static_cast<size_t>(*threads);
    spec.batch = static_cast<size_t>(*batch);
    spec.queue = static_cast<size_t>(*queue);
    spec.cache_entries = static_cast<size_t>(*cache_entries);
    spec.cache_shards = static_cast<size_t>(*cache_shards);
    spec.seed = static_cast<uint64_t>(*seed);
    spec.incremental = flags.GetBool("incremental", true);
    return RunRefitLoop(spec);
  }
  if (method != "parafac" && method != "tucker") {
    std::fprintf(stderr, "unknown --method=%s\n%s", method.c_str(), kUsage);
    return 1;
  }

  RegistryOptions registry_options;
  registry_options.beam_options.beam = *beam;
  ModelRegistry registry(registry_options);
  WallTimer load_timer;
  Result<int64_t> version =
      method == "parafac" ? registry.LoadKruskal(name, prefix, tensor_path)
                          : registry.LoadTucker(name, prefix);
  if (!version.ok()) {
    std::fprintf(stderr, "loading %s: %s\n", prefix.c_str(),
                 version.status().ToString().c_str());
    return 1;
  }
  Result<std::shared_ptr<const ServedModel>> served = registry.Get(name);
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s model '%s' v%lld: %d modes, rank %lld (%s)\n",
              method.c_str(), name.c_str(), (long long)*version,
              (*served)->order(), (long long)(*served)->rank(),
              HumanSeconds(load_timer.ElapsedSeconds()).c_str());

  QueryEngine engine(&registry);
  ServingStats stats;
  PipelineOptions pipeline_options;
  pipeline_options.num_threads = static_cast<size_t>(*threads);
  pipeline_options.max_batch = static_cast<size_t>(*batch);
  pipeline_options.queue_capacity = static_cast<size_t>(*queue);
  pipeline_options.cache_capacity = static_cast<size_t>(*cache_entries);
  pipeline_options.cache_shards = static_cast<size_t>(*cache_shards);

  int failures = 0;
  {
    RequestPipeline pipeline(&engine, &stats, pipeline_options);
    if (!script.empty()) {
      failures = RunScript(script, name, &pipeline);
    } else {
      LoadSpec spec;
      spec.model_name = name;
      spec.topk_available =
          (*served)->kind == ModelKind::kKruskal &&
          (*served)->observed != nullptr;
      spec.order = (*served)->order();
      spec.rank = (*served)->rank();
      for (const DenseMatrix& f : (*served)->factors()) {
        spec.dims.push_back(f.rows());
      }
      spec.topk = *topk;
      spec.beam = *beam;
      spec.duration_seconds = *duration;
      spec.clients = static_cast<int>(*clients);
      spec.seed = static_cast<uint64_t>(*seed);
      RunSyntheticLoad(spec, &pipeline);
    }
    pipeline.Shutdown();
    stats.EndWindow();

    ShardedLruCache<QueryResult>::Stats cache = pipeline.CacheStats();
    std::printf("served %llu queries, %.0f qps, cache hit rate %.1f%% "
                "(%llu hits / %llu lookups)\n",
                (unsigned long long)stats.TotalQueries(), stats.Qps(),
                100.0 * cache.HitRate(), (unsigned long long)cache.hits,
                (unsigned long long)(cache.hits + cache.misses));

    if (!stats_json.empty()) {
      ServingStats::CacheCounters counters;
      counters.hits = cache.hits;
      counters.misses = cache.misses;
      counters.evictions = cache.evictions;
      counters.purges = cache.purges;
      counters.entries = cache.entries;
      counters.hit_rate = cache.HitRate();
      std::vector<ServingStats::ModelRow> models;
      for (const std::string& n : registry.Names()) {
        Result<std::shared_ptr<const ServedModel>> m = registry.Get(n);
        if (!m.ok()) continue;
        ServingStats::ModelRow row;
        row.name = n;
        row.kind = ModelKindName((*m)->kind);
        row.version = (*m)->version;
        row.order = (*m)->order();
        row.rank = (*m)->rank();
        models.push_back(std::move(row));
      }
      Status written = WriteServingStatsJsonFile(
          stats.ToJson("haten2_serve", counters, models), stats_json);
      if (!written.ok()) {
        std::fprintf(stderr, "--stats_json: %s\n",
                     written.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", stats_json.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace haten2

int main(int argc, char** argv) { return haten2::RealMain(argc, argv); }
