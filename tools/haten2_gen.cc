// haten2_gen — dataset generator companion to haten2_cli: writes the
// synthetic workloads of the paper's evaluation (Table V) as tensor text
// files.
//
// Usage:
//   haten2_gen <output-file> [flags]
//
// Flags:
//   --kind=random|lowrank|kb|network   workload family (default random)
//   --dims=IxJxK                       tensor shape (random/lowrank;
//                                      default 1000x1000x1000)
//   --nnz=N                            nonzeros (random; default 10000)
//   --density=D                        alternative to --nnz for cubic dims
//   --rank=R  --block=B                planted components (lowrank)
//   --concepts=C                       planted concepts (kb)
//   --preprocess                       apply the paper's KB preprocessing
//   --seed=S                           generator seed (default 42)
//   --binary                           write the compact binary format
//
// Examples:
//   haten2_gen random.tns --dims=100000x100000x100000 --nnz=1000000
//   haten2_gen kb.tns --kind=kb --concepts=6 --preprocess

#include <cstdio>

#include "tensor/tensor_binary_io.h"
#include "tensor/tensor_io.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "workload/knowledge_base.h"
#include "workload/network_logs.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

constexpr const char* kUsage =
    "usage: haten2_gen <output-file> [--kind=random|lowrank|kb|network]\n"
    "       [--dims=IxJxK] [--nnz=N] [--density=D] [--rank=R] [--block=B]\n"
    "       [--concepts=C] [--preprocess] [--seed=S]\n";

Result<SparseTensor> Generate(const FlagParser& flags) {
  const std::string kind = flags.GetString("kind", "random");
  HATEN2_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  HATEN2_ASSIGN_OR_RETURN(
      std::vector<int64_t> dims,
      flags.GetDims("dims", {1000, 1000, 1000}));

  if (kind == "random") {
    HATEN2_ASSIGN_OR_RETURN(double density, flags.GetDouble("density", 0.0));
    if (density > 0.0) {
      if (dims.size() != 3 || dims[0] != dims[1] || dims[1] != dims[2]) {
        return Status::InvalidArgument(
            "--density requires cubic --dims=IxIxI");
      }
      return GenerateRandomCubicTensor(dims[0], density,
                                       static_cast<uint64_t>(seed));
    }
    RandomTensorSpec spec;
    spec.dims = dims;
    HATEN2_ASSIGN_OR_RETURN(spec.nnz, flags.GetInt("nnz", 10000));
    spec.seed = static_cast<uint64_t>(seed);
    return GenerateRandomTensor(spec);
  }
  if (kind == "lowrank") {
    LowRankTensorSpec spec;
    spec.dims = dims;
    HATEN2_ASSIGN_OR_RETURN(spec.rank, flags.GetInt("rank", 3));
    HATEN2_ASSIGN_OR_RETURN(spec.block_size, flags.GetInt("block", 10));
    HATEN2_ASSIGN_OR_RETURN(spec.nnz_per_component,
                            flags.GetInt("nnz", 1000));
    spec.seed = static_cast<uint64_t>(seed);
    HATEN2_ASSIGN_OR_RETURN(PlantedTensor planted,
                            GenerateLowRankTensor(spec));
    return planted.tensor;
  }
  if (kind == "kb") {
    KnowledgeBaseSpec spec;
    HATEN2_ASSIGN_OR_RETURN(int64_t concepts, flags.GetInt("concepts", 4));
    spec.num_concepts = static_cast<int>(concepts);
    spec.seed = static_cast<uint64_t>(seed);
    HATEN2_ASSIGN_OR_RETURN(KnowledgeBase kb, GenerateKnowledgeBase(spec));
    if (flags.GetBool("preprocess", false)) {
      return PreprocessKnowledgeTensor(kb.tensor, PreprocessOptions());
    }
    return kb.tensor;
  }
  if (kind == "network") {
    NetworkLogSpec spec;
    spec.seed = static_cast<uint64_t>(seed);
    HATEN2_ASSIGN_OR_RETURN(NetworkLogs logs, GenerateNetworkLogs(spec));
    std::fprintf(stderr,
                 "planted scan: source %lld -> target %lld over %zu ports\n",
                 (long long)logs.scanner_source, (long long)logs.scan_target,
                 logs.scan_ports.size());
    return logs.tensor;
  }
  return Status::InvalidArgument("unknown --kind=" + kind);
}

int RealMain(int argc, char** argv) {
  FlagParser flags(argc, argv);
  Status valid = flags.Validate({"kind", "dims", "nnz", "density", "rank",
                                 "block", "concepts", "preprocess", "seed",
                                 "binary", "help"});
  if (!valid.ok() || flags.GetBool("help", false) ||
      flags.positional().size() != 1) {
    if (!valid.ok()) std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    std::fputs(kUsage, stderr);
    return flags.GetBool("help", false) ? 0 : 1;
  }
  Result<SparseTensor> tensor = Generate(flags);
  if (!tensor.ok()) {
    std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
    return 1;
  }
  const std::string& path = flags.positional()[0];
  Status write_status = flags.GetBool("binary", false)
                            ? WriteTensorBinary(*tensor, path)
                            : WriteTensorText(*tensor, path);
  if (Status s = write_status; !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", path.c_str(),
              tensor->DebugString().c_str());
  return 0;
}

}  // namespace
}  // namespace haten2

int main(int argc, char** argv) { return haten2::RealMain(argc, argv); }
