#!/usr/bin/env bash
# Doc-drift checker. Two gates over the user-facing documentation
# (README.md, EXPERIMENTS.md, DESIGN.md, docs/*.md):
#
#   1. Flags. Every `--flag` token mentioned in the docs must exist on
#      some tool's command line. The corpus is the union of the built
#      tools' --help output (haten2_cli, haten2_gen, haten2_serve,
#      haten2_verify) when the binaries exist under $BUILD_DIR
#      (default: build); without a build it falls back to grepping the
#      flag string literals in tools/*.cc — same surface, no toolchain
#      needed, which is what lets the CI docs job run this on a bare
#      checkout.
#   2. Stats schema version. Every full `haten2-stats-vN` token in the
#      docs must match the single version emitted by
#      src/mapreduce/stats_json.cc. (Historical deltas are written
#      "v6 -> v7" precisely so they don't trip this.)
#
# Usage: tools/check_docs.sh   (no arguments; BUILD_DIR overridable)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
DOC_FILES=(README.md EXPERIMENTS.md DESIGN.md docs/*.md)

# Flags the docs may mention that belong to the build tooling, not to
# this repository's binaries.
ALLOWED_FOREIGN_FLAGS=(
  --build            # cmake
  --test-dir         # ctest
  --output-on-failure
  --benchmark_filter # google-benchmark
  --benchmark_min_time
  --help             # accepted by every tool, listed by none
)

tools=(haten2_cli haten2_gen haten2_serve haten2_verify)
corpus=""
have_binaries=1
for t in "${tools[@]}"; do
  [[ -x "${BUILD_DIR}/tools/${t}" ]] || { have_binaries=0; break; }
done
if [[ "${have_binaries}" -eq 1 ]]; then
  source_desc="${BUILD_DIR}/tools/*( --help)"
  for t in "${tools[@]}"; do
    corpus+="$("${BUILD_DIR}/tools/${t}" --help 2>&1 || true)"$'\n'
  done
else
  source_desc="tools/*.cc (no built binaries under ${BUILD_DIR})"
  corpus="$(cat tools/*.cc)"
fi
known_flags="$(grep -oE '\-\-[a-z][a-z0-9_-]*' <<<"${corpus}" | sort -u)"

failures=0

# --- Gate 1: flags ---
for file in "${DOC_FILES[@]}"; do
  [[ -f "${file}" ]] || { echo "no such file: ${file}" >&2; exit 2; }
  while IFS= read -r flag; do
    [[ -n "${flag}" ]] || continue
    for allowed in "${ALLOWED_FOREIGN_FLAGS[@]}"; do
      [[ "${flag}" == "${allowed}" ]] && continue 2
    done
    if ! grep -qxFe "${flag}" <<<"${known_flags}"; then
      echo "${file}: documented flag ${flag} not found in ${source_desc}"
      failures=$((failures + 1))
    fi
  done < <(grep -ohE '\-\-[a-z][a-z0-9_-]*' "${file}" | sort -u)
done

# --- Gate 2: stats schema version ---
current="$(grep -ohE 'haten2-stats-v[0-9]+' src/mapreduce/stats_json.cc \
           | sort -u)"
if [[ "$(wc -l <<<"${current}")" -ne 1 ]]; then
  echo "stats_json.cc emits more than one schema version:" >&2
  echo "${current}" >&2
  exit 2
fi
for file in "${DOC_FILES[@]}"; do
  while IFS= read -r token; do
    [[ -n "${token}" ]] || continue
    if [[ "${token}" != "${current}" ]]; then
      echo "${file}: stale schema token ${token} (stats_json.cc emits ${current})"
      failures=$((failures + 1))
    fi
  done < <(grep -ohE 'haten2-stats-v[0-9]+' "${file}" | sort -u)
done

if [[ "${failures}" -gt 0 ]]; then
  echo "check_docs: ${failures} drift failure(s)" >&2
  exit 1
fi
echo "check_docs: docs match the CLI surface and ${current}"
