// haten2_verify — checks a saved decomposition against its tensor: loads a
// model checkpoint (written by haten2_cli --output or SaveKruskalModel /
// SaveTuckerModel) and the tensor file, recomputes the fit, and prints the
// strongest components. The last step of a factor-quality pipeline, and a
// quick way to compare checkpoints.
//
// Usage:
//   haten2_verify <tensor-file> <model-prefix> [--method=parafac|tucker]
//                 [--top=K]

#include <cstdio>

#include "tensor/model_io.h"
#include "tensor/tensor_binary_io.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "workload/knowledge_base.h"  // TopKPerColumn

namespace haten2 {
namespace {

constexpr const char* kUsage =
    "usage: haten2_verify <tensor-file> <model-prefix>\n"
    "       [--method=parafac|tucker] [--top=K]\n";

int RealMain(int argc, char** argv) {
  FlagParser flags(argc, argv);
  Status valid = flags.Validate({"method", "top", "help"});
  if (!valid.ok() || flags.GetBool("help", false) ||
      flags.positional().size() != 2) {
    if (!valid.ok()) std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    std::fputs(kUsage, stderr);
    return flags.GetBool("help", false) ? 0 : 1;
  }
  Result<SparseTensor> tensor = ReadTensorAuto(flags.positional()[0]);
  if (!tensor.ok()) {
    std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
    return 1;
  }
  Result<int64_t> top = flags.GetInt("top", 3);
  if (!top.ok()) {
    std::fprintf(stderr, "%s\n", top.status().ToString().c_str());
    return 1;
  }
  const std::string method = flags.GetString("method", "parafac");
  const std::string& prefix = flags.positional()[1];

  if (method == "parafac") {
    Result<KruskalModel> model = LoadKruskalModel(prefix, tensor->order());
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    for (int m = 0; m < tensor->order(); ++m) {
      if (model->factors[static_cast<size_t>(m)].rows() != tensor->dim(m)) {
        std::fprintf(stderr,
                     "model mode %d has %lld rows but the tensor mode is "
                     "%lld\n",
                     m,
                     (long long)model->factors[static_cast<size_t>(m)]
                         .rows(),
                     (long long)tensor->dim(m));
        return 1;
      }
    }
    Result<double> fit = KruskalFit(*tensor, *model);
    if (!fit.ok()) {
      std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
      return 1;
    }
    std::printf("tensor %s\nmodel  %s (PARAFAC rank %lld)\nfit    %.6f\n",
                tensor->DebugString().c_str(), prefix.c_str(),
                (long long)model->rank(), *fit);
    // Strongest components and their top indices per mode.
    std::printf("\ncomponents by weight:\n");
    for (int64_t r = 0; r < model->rank(); ++r) {
      std::printf("  r=%lld lambda=%.4f  top rows:", (long long)r,
                  model->lambda[static_cast<size_t>(r)]);
      for (int m = 0; m < tensor->order(); ++m) {
        std::vector<std::vector<int64_t>> topk = TopKPerColumn(
            model->factors[static_cast<size_t>(m)],
            static_cast<int>(*top));
        std::printf(" mode%d{", m);
        for (size_t i = 0; i < topk[static_cast<size_t>(r)].size(); ++i) {
          std::printf("%s%lld", i ? "," : "",
                      (long long)topk[static_cast<size_t>(r)][i]);
        }
        std::printf("}");
      }
      std::printf("\n");
    }
    return 0;
  }
  if (method == "tucker") {
    Result<TuckerModel> model = LoadTuckerModel(prefix, tensor->order());
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    Result<double> fit = TuckerFit(*tensor, *model);
    if (!fit.ok()) {
      std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
      return 1;
    }
    std::printf("tensor %s\nmodel  %s (Tucker core",
                tensor->DebugString().c_str(), prefix.c_str());
    for (int m = 0; m < model->core.order(); ++m) {
      std::printf("%s%lld", m ? "x" : " ", (long long)model->core.dim(m));
    }
    std::printf(")\nfit    %.6f   ||G|| %.4f\n", *fit,
                model->core.FrobeniusNorm());
    std::printf("\nstrongest core entries:\n");
    for (const CoreEntry& entry : TopCoreEntries(model->core,
                                                 static_cast<int>(*top))) {
      std::printf("  (");
      for (size_t m = 0; m < entry.index.size(); ++m) {
        std::printf("%s%lld", m ? "," : "", (long long)entry.index[m]);
      }
      std::printf(") = %.4f\n", entry.value);
    }
    return 0;
  }
  std::fprintf(stderr, "unknown --method=%s\n%s", method.c_str(), kUsage);
  return 1;
}

}  // namespace
}  // namespace haten2

int main(int argc, char** argv) { return haten2::RealMain(argc, argv); }
