// Standalone JSON syntax gate for the bench/stats exports: reads one file
// and exits 0 iff it parses under the same RFC 8259 checker the tests use
// (tests/json_checker.h), so CI can validate BENCH_*.json artifacts with
// an implementation independent of JsonWriter. Structural key assertions
// stay in the workflow; this catches the syntax class of regression.
//
// Usage: json_check <file.json>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "../tests/json_checker.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <file.json>\n", argv[0]);
    return 1;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) {
    std::fprintf(stderr, "json_check: %s is empty\n", argv[1]);
    return 1;
  }
  haten2::testing::JsonChecker checker(text);
  if (!checker.Valid()) {
    std::fprintf(stderr, "json_check: %s is not valid JSON\n", argv[1]);
    return 1;
  }
  std::printf("json_check: %s ok (%zu bytes)\n", argv[1], text.size());
  return 0;
}
