#!/usr/bin/env bash
# Checks documentation links and flag/schema doc drift, then runs the
# tier-1 test suite under sanitizers. Usage:
#
#   tools/check.sh [sanitizer...]
#
# With no arguments, runs address and undefined over the full suite, then
# thread over the concurrency-bearing subsystems: the serving tests
# (concurrent hot-swap, sharded caching, multi-threaded pipeline), the
# MapReduce engine / spill tests, the plan-scheduler and concurrent-Run
# stress tests, the cost-model / speculative-execution simulation and
# cluster-config validation suites (the slot simulation is consulted from
# worker threads via stats export), and the distributed subprocess backend
# (the coordinator forks worker gangs out of a threaded process — see the
# die_after_fork note in src/distributed/worker_pool.cc). TSan over the
# whole suite roughly
# 10x-es the run for code
# that is single-threaded by construction. Each sanitizer
# gets its own build tree (build-<sanitizer>) so the instrumented objects
# never mix with the normal build. Benchmarks and examples are skipped —
# the tests are what the sanitizers need to see.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== docs: checking markdown links ==="
tools/check_links.sh
echo "=== docs: checking flag/schema drift ==="
tools/check_docs.sh

sanitizers=("$@")
if [[ ${#sanitizers[@]} -eq 0 ]]; then
  sanitizers=(address undefined thread)
fi

for san in "${sanitizers[@]}"; do
  build_dir="build-${san}"
  echo "=== ${san}: configuring ${build_dir} ==="
  cmake -B "${build_dir}" -S . \
    -DHATEN2_SANITIZE="${san}" \
    -DHATEN2_BUILD_BENCHMARKS=OFF \
    -DHATEN2_BUILD_EXAMPLES=OFF
  echo "=== ${san}: building ==="
  cmake --build "${build_dir}" -j
  ctest_args=()
  if [[ "${san}" == "thread" ]]; then
    ctest_args=(-R '^(Serving|Engine|MapReduce|Spill|Scheduler|Plan|CostModel|Speculation|ClusterConfig|MachineProfile|Distributed|Worker)')
  fi
  echo "=== ${san}: testing ==="
  (cd "${build_dir}" && ctest --output-on-failure "${ctest_args[@]}" -j)
  # Focused re-runs of the riskiest I/O paths, kept explicit so a future
  # filter on the full pass cannot silently drop them: the spill
  # write/drain/torn-file tests (tiny spill thresholds, heavy heap churn)
  # under address, and the spill codec (varint shifts, hostile decode
  # input) under undefined.
  if [[ "${san}" == "address" ]]; then
    echo "=== ${san}: focused spill-path pass ==="
    (cd "${build_dir}" && ctest --output-on-failure -R '^Spill' -j)
  elif [[ "${san}" == "undefined" ]]; then
    echo "=== ${san}: focused spill-codec pass ==="
    (cd "${build_dir}" && ctest --output-on-failure -R '^SpillCodec' -j)
    # The in-core contraction kernels index compressed CSF streams with
    # arithmetic on attacker-ish inputs (duplicate coordinates, 10^12
    # dims, empty slices) and the fingerprint does deliberate unsigned
    # mixing; UBSan over the kernel and strategy suites is the cheapest
    # way to keep signed-overflow/shift bugs out of them.
    echo "=== ${san}: focused contraction-kernel pass ==="
    (cd "${build_dir}" && \
     ctest --output-on-failure -R '^(SparseKernels|Contraction)' -j)
  fi
done

echo "=== all sanitizer runs passed: ${sanitizers[*]} ==="
