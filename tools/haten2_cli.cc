// haten2 — command-line front end to the library, for downstream users who
// just want factors out of a tensor file.
//
// Usage:
//   haten2_cli <tensor-file> [flags]
//
// Flags:
//   --method=parafac|tucker|parafac-nn|tucker-nn
//                                        decomposition (default parafac;
//                                        *-nn = nonnegative variants)
//   --rank=R                             PARAFAC rank (default 10)
//   --core=PxQxR                         Tucker core size (default 10 per
//                                        mode)
//   --variant=dri|drn|dnn|naive          HaTen2 variant (default dri)
//   --iterations=N                       max ALS iterations (default 20)
//   --tolerance=T                        convergence tolerance (default 1e-6)
//   --seed=S                             initialization seed (default 17)
//   --machines=M                         simulated cluster size (default 40)
//   --threads=T                          execution threads (default 2)
//   --backend=inprocess|subprocess       execution backend (default
//                                        inprocess); subprocess forks
//                                        worker processes and shards jobs
//                                        over Unix-domain sockets —
//                                        bit-identical results
//   --num_workers=W                      worker processes for the
//                                        subprocess backend (default 0 =
//                                        derive from --threads)
//   --max_concurrent_jobs=J              cap on plan nodes the scheduler
//                                        runs concurrently (default 1 =
//                                        serial legacy order)
//   --tucker_sketch=none|gaussian|countsketch
//                                        randomized (sketched) Tucker HOOI
//                                        (default none = exact SVD); with a
//                                        sketch, --method=tucker projects
//                                        the contracted factors to
//                                        --sketch_size columns before the
//                                        merge jobs and range-finds on the
//                                        narrow blocks; seeded and
//                                        bit-reproducible at fixed --seed
//   --sketch_size=S                      sketch width (default 0 = largest
//                                        core dimension + 4; explicit
//                                        values must be >= the largest
//                                        core dimension)
//   --exact_polish_sweeps=P              exact HOOI sweeps appended at the
//                                        end of a sketched run to recover
//                                        accuracy (default 2)
//   --contraction=auto|dataflow|incore   contraction strategy (default
//                                        dataflow = the paper's MapReduce
//                                        pipelines; incore = DFacTo-style
//                                        in-memory kernels, no shuffle;
//                                        auto picks in-core whenever the
//                                        estimated layout fits the budget)
//   --incore_memory_mb=MB                in-core layout memory budget
//                                        consulted by --contraction=auto
//                                        (default 1024)
//   --budget-mb=B                        shuffle-memory budget (0=unlimited)
//   --spill_dir=DIR                      enable Hadoop-style sort-spill:
//                                        map tasks write partition buffers
//                                        exceeding the threshold to spill
//                                        files under DIR
//   --spill_threshold=N                  records a partition buffer holds
//                                        before it spills (default 65536)
//   --spill_compression=none|delta_varint
//                                        on-disk spill-run encoding
//                                        (default none = raw records;
//                                        delta_varint block-compresses
//                                        sorted keys, results unchanged)
//   --output=PREFIX                      write factors to PREFIX.mode<k>.txt
//                                        (and PREFIX.lambda.txt / .core.txt)
//   --checkpoint_dir=DIR                 write atomic iteration checkpoints
//                                        under DIR (factors + iteration
//                                        counter + convergence state); a
//                                        killed run resumes bit-identically
//                                        with --resume
//   --checkpoint_every=N                 checkpoint after every N-th
//                                        iteration (default 5)
//   --checkpoint_keep=K                  retain the newest K checkpoints
//                                        (default 2)
//   --resume                             (bare) resume from the newest
//                                        checkpoint in --checkpoint_dir,
//                                        continuing the exact iterate
//                                        sequence mid-run
//   --resume=PREFIX                      warm-start from a model previously
//                                        written with --output (fresh run
//                                        from those factors)
//   --task_failure_prob=P                failure injection: probability each
//                                        map-task attempt crashes
//                                        (deterministic; default 0)
//   --max_task_attempts=A                attempts per map task before the
//                                        job aborts (default 4)
//   --inject_worker_kill_after_tasks=N   subprocess backend drill: kill one
//                                        worker after N map tasks have been
//                                        assigned across the run (once;
//                                        default 0 = off)
//   --max_node_attempts=A                plan-level recovery: attempts per
//                                        plan node before the run fails
//                                        (default 1 = no node retries)
//   --machine_profiles=SPEC              heterogeneous cluster for the cost
//                                        model: comma-separated
//                                        SPEED[xCOUNT][@FAILMULT] entries
//                                        applied cyclically over the
//                                        simulated machines, e.g.
//                                        "1.0x30,0.5x10@2.0" (empty =
//                                        uniform reference machines)
//   --speculation                        enable Hadoop-style speculative
//                                        backup tasks in the cost-model
//                                        simulation (affects simulated time
//                                        only, never results)
//   --speculation_slowstart=X            launch a backup when a task's
//                                        remaining time exceeds X times the
//                                        median finished task (default 1.5)
//   --straggler_jitter=J                 max fractional per-task latency
//                                        jitter in the simulation
//                                        (default 0 = off)
//   --straggler_jitter_seed=S            seed for the deterministic jitter
//                                        draws (default 0x57a6)
//   --ingest_log=PATH                    streaming ingest (parafac
//                                        methods only):
//                                        after fitting <tensor-file> as the
//                                        base, merge PATH epoch by epoch and
//                                        refit warm-started from the
//                                        previous factors. PATH is either a
//                                        binary delta log (delta_log.h) or
//                                        any tensor file, chopped into
//                                        epochs of --epoch_nnz entries
//   --epoch_nnz=N                        entries per sealed epoch when
//                                        --ingest_log is a plain tensor
//                                        file (default 0 = one epoch)
//   --incremental                        patch the contraction cache per
//                                        epoch (dirty-slice invalidation)
//                                        instead of rebuilding it; factors
//                                        are bit-identical either way, only
//                                        the refit cost changes
//   --one-based                          read FROSTT-style 1-based indices
//   --stats                              print the MapReduce job log
//   --stats_json=PATH                    write the run's statistics (per-job
//                                        phase times, intermediate-data
//                                        records/bytes, per-iteration fit,
//                                        retry/backoff counters)
//                                        as "haten2-stats-v9" JSON; written
//                                        on failures too, so o.o.m. runs
//                                        keep their post-mortem numbers
//
// Exit code 0 on success; on o.o.m. prints the paper-style diagnosis and
// exits 2.

#include <cstdio>

#include "core/incremental_refit.h"
#include "core/nonnegative_tucker.h"
#include "core/parafac.h"
#include "core/sketched_tucker.h"
#include "core/tucker.h"
#include "tensor/delta_log.h"
#include "tensor/model_io.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/engine.h"
#include "mapreduce/stats_json.h"
#include "tensor/tensor_binary_io.h"
#include "tensor/tensor_io.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace haten2 {
namespace {

constexpr const char* kUsage =
    "usage: haten2_cli <tensor-file>\n"
    "       [--method=parafac|tucker|parafac-nn|tucker-nn]\n"
    "       [--rank=R] [--core=PxQxR] [--variant=dri|drn|dnn|naive]\n"
    "       [--iterations=N] [--tolerance=T] [--seed=S] [--machines=M]\n"
    "       [--threads=T] [--backend=inprocess|subprocess]\n"
    "       [--num_workers=W] [--max_concurrent_jobs=J] [--budget-mb=B]\n"
    "       [--contraction=auto|dataflow|incore] [--incore_memory_mb=MB]\n"
    "       [--tucker_sketch=none|gaussian|countsketch] [--sketch_size=S]\n"
    "       [--exact_polish_sweeps=P]\n"
    "       [--spill_dir=DIR] [--spill_threshold=N]\n"
    "       [--spill_compression=none|delta_varint]\n"
    "       [--output=PREFIX] [--resume[=PREFIX]] [--stats]\n"
    "       [--checkpoint_dir=DIR] [--checkpoint_every=N]\n"
    "       [--checkpoint_keep=K] [--task_failure_prob=P]\n"
    "       [--max_task_attempts=A] [--max_node_attempts=A]\n"
    "       [--inject_worker_kill_after_tasks=N]\n"
    "       [--machine_profiles=SPEED[xCOUNT][@FAILMULT],...]\n"
    "       [--speculation] [--speculation_slowstart=X]\n"
    "       [--straggler_jitter=J] [--straggler_jitter_seed=S]\n"
    "       [--ingest_log=PATH] [--epoch_nnz=N] [--incremental]\n"
    "       [--stats_json=PATH]\n";

Result<Variant> ParseVariant(const std::string& name) {
  if (name == "dri") return Variant::kDri;
  if (name == "drn") return Variant::kDrn;
  if (name == "dnn") return Variant::kDnn;
  if (name == "naive") return Variant::kNaive;
  return Status::InvalidArgument("unknown variant: " + name);
}

Status WriteFactors(const std::vector<DenseMatrix>& factors,
                    const std::string& prefix) {
  for (size_t m = 0; m < factors.size(); ++m) {
    HATEN2_RETURN_IF_ERROR(WriteMatrixText(
        factors[m], StrFormat("%s.mode%zu.txt", prefix.c_str(), m)));
  }
  return Status::OK();
}

Status WriteKruskalOutput(const KruskalModel& model,
                          const std::string& prefix) {
  HATEN2_RETURN_IF_ERROR(WriteFactors(model.factors, prefix));
  DenseMatrix lambda(static_cast<int64_t>(model.lambda.size()), 1);
  for (size_t r = 0; r < model.lambda.size(); ++r) {
    lambda(static_cast<int64_t>(r), 0) = model.lambda[r];
  }
  return WriteMatrixText(lambda, prefix + ".lambda.txt");
}

/// Loads --ingest_log: a binary delta log as-is, or any tensor file chopped
/// into epochs of `epoch_nnz` entries in storage order.
Result<DeltaLog> LoadIngestLog(const std::string& path,
                               const std::vector<int64_t>& dims,
                               int64_t epoch_nnz) {
  Result<DeltaLog> log = ReadDeltaLogBinary(path);
  if (log.ok()) {
    if (log->dims() != dims) {
      return Status::InvalidArgument(
          "--ingest_log: delta log shape does not match the base tensor");
    }
    return log;
  }
  Result<SparseTensor> triples = ReadTensorAuto(path);
  if (!triples.ok()) {
    // The binary-log parse error is the more specific of the two when the
    // file at least had the log magic; otherwise report the tensor error.
    return triples.status();
  }
  return DeltaLogFromTensor(*triples, dims, epoch_nnz);
}

int RealMain(int argc, char** argv) {
  FlagParser flags(argc, argv);
  Status valid = flags.Validate({"method", "rank", "core", "variant",
                                 "iterations", "tolerance", "seed",
                                 "machines", "threads", "backend",
                                 "num_workers",
                                 "max_concurrent_jobs", "budget-mb",
                                 "contraction", "incore_memory_mb",
                                 "tucker_sketch", "sketch_size",
                                 "exact_polish_sweeps",
                                 "spill_dir", "spill_threshold",
                                 "spill_compression",
                                 "output", "resume", "stats", "stats_json",
                                 "checkpoint_dir", "checkpoint_every",
                                 "checkpoint_keep", "task_failure_prob",
                                 "max_task_attempts", "max_node_attempts",
                                 "inject_worker_kill_after_tasks",
                                 "machine_profiles", "speculation",
                                 "speculation_slowstart", "straggler_jitter",
                                 "straggler_jitter_seed",
                                 "ingest_log", "epoch_nnz", "incremental",
                                 "one-based", "help"});
  if (!valid.ok() || flags.GetBool("help", false) ||
      flags.positional().size() != 1) {
    if (!valid.ok()) std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    std::fputs(kUsage, stderr);
    return flags.GetBool("help", false) ? 0 : 1;
  }

  const std::string path = flags.positional()[0];
  Result<SparseTensor> tensor =
      flags.GetBool("one-based", false)
          ? ReadTensorText(path, TensorTextOptions{.index_base = 1})
          : ReadTensorAuto(path);  // text or binary
  if (!tensor.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", path.c_str(),
                 tensor.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %s\n", path.c_str(),
              tensor->DebugString().c_str());

  Result<Variant> variant = ParseVariant(flags.GetString("variant", "dri"));
  Result<int64_t> rank = flags.GetInt("rank", 10);
  Result<int64_t> iterations = flags.GetInt("iterations", 20);
  Result<double> tolerance = flags.GetDouble("tolerance", 1e-6);
  Result<int64_t> seed = flags.GetInt("seed", 17);
  Result<int64_t> machines = flags.GetInt("machines", 40);
  Result<int64_t> threads = flags.GetInt("threads", 2);
  Result<int64_t> num_workers = flags.GetInt("num_workers", 0);
  Result<int64_t> max_concurrent_jobs =
      flags.GetInt("max_concurrent_jobs", 1);
  Result<int64_t> budget_mb = flags.GetInt("budget-mb", 0);
  Result<int64_t> incore_memory_mb = flags.GetInt("incore_memory_mb", 1024);
  Result<int64_t> sketch_size = flags.GetInt("sketch_size", 0);
  Result<int64_t> exact_polish_sweeps =
      flags.GetInt("exact_polish_sweeps", 2);
  Result<int64_t> spill_threshold = flags.GetInt("spill_threshold", 64 * 1024);
  Result<SpillCompression> spill_compression =
      ParseSpillCompression(flags.GetString("spill_compression", "none"));
  Result<int64_t> checkpoint_every = flags.GetInt("checkpoint_every", 5);
  Result<int64_t> checkpoint_keep = flags.GetInt("checkpoint_keep", 2);
  Result<double> task_failure_prob =
      flags.GetDouble("task_failure_prob", 0.0);
  Result<int64_t> max_task_attempts = flags.GetInt("max_task_attempts", 4);
  Result<int64_t> max_node_attempts = flags.GetInt("max_node_attempts", 1);
  Result<int64_t> inject_worker_kill =
      flags.GetInt("inject_worker_kill_after_tasks", 0);
  Result<double> speculation_slowstart =
      flags.GetDouble("speculation_slowstart", 1.5);
  Result<double> straggler_jitter = flags.GetDouble("straggler_jitter", 0.0);
  Result<int64_t> straggler_jitter_seed =
      flags.GetInt("straggler_jitter_seed", 0x57a6);
  Result<int64_t> epoch_nnz = flags.GetInt("epoch_nnz", 0);
  Result<std::vector<MachineProfile>> machine_profiles =
      ParseMachineProfiles(flags.GetString("machine_profiles", ""));
  Result<std::vector<int64_t>> core =
      flags.GetDims("core", std::vector<int64_t>(
                                static_cast<size_t>(tensor->order()), 10));
  for (const Status& s :
       {variant.status(), rank.status(), iterations.status(),
        tolerance.status(), seed.status(), machines.status(),
        threads.status(), num_workers.status(),
        max_concurrent_jobs.status(), budget_mb.status(),
        incore_memory_mb.status(), sketch_size.status(),
        exact_polish_sweeps.status(),
        spill_threshold.status(), spill_compression.status(),
        checkpoint_every.status(), checkpoint_keep.status(),
        task_failure_prob.status(), max_task_attempts.status(),
        max_node_attempts.status(), inject_worker_kill.status(),
        speculation_slowstart.status(),
        straggler_jitter.status(), straggler_jitter_seed.status(),
        epoch_nnz.status(), machine_profiles.status(), core.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  ClusterConfig config;
  config.num_machines = static_cast<int>(*machines);
  config.num_threads = static_cast<int>(*threads);
  config.backend = flags.GetString("backend", "inprocess");
  config.num_workers = static_cast<int>(*num_workers);
  config.max_concurrent_jobs = static_cast<int>(*max_concurrent_jobs);
  config.contraction = flags.GetString("contraction", "dataflow");
  config.incore_memory_mb = *incore_memory_mb;
  config.tucker_sketch = flags.GetString("tucker_sketch", "none");
  config.sketch_size = *sketch_size;
  config.exact_polish_sweeps = static_cast<int>(*exact_polish_sweeps);
  config.total_shuffle_memory_bytes =
      static_cast<uint64_t>(*budget_mb) << 20;
  config.spill_directory = flags.GetString("spill_dir", "");
  config.spill_threshold_records = *spill_threshold;
  config.spill_compression = *spill_compression;
  config.task_failure_probability = *task_failure_prob;
  config.max_task_attempts = static_cast<int>(*max_task_attempts);
  config.max_node_attempts = static_cast<int>(*max_node_attempts);
  config.inject_worker_kill_after_tasks = *inject_worker_kill;
  config.machine_profiles = *machine_profiles;
  config.speculative_execution = flags.GetBool("speculation", false);
  config.speculation_slowstart = *speculation_slowstart;
  config.straggler_jitter = *straggler_jitter;
  config.straggler_jitter_seed = static_cast<uint64_t>(*straggler_jitter_seed);
  // Reject nonsense (zero bandwidths, empty slot pools, ...) up front: an
  // invalid config would otherwise surface as Inf/NaN simulated seconds
  // silently serialized into the stats JSON.
  Status config_status = config.Validate();
  if (!config_status.ok()) {
    std::fprintf(stderr, "%s\n", config_status.ToString().c_str());
    return 1;
  }
  Engine engine(config);

  Haten2Options options;
  options.variant = *variant;
  options.max_iterations = static_cast<int>(*iterations);
  options.tolerance = *tolerance;
  options.seed = static_cast<uint64_t>(*seed);

  const std::string method = flags.GetString("method", "parafac");
  const std::string output = flags.GetString("output", "");
  const std::string resume = flags.GetString("resume", "");
  const std::string stats_json = flags.GetString("stats_json", "");
  const std::string checkpoint_dir = flags.GetString("checkpoint_dir", "");
  const std::string ingest_log = flags.GetString("ingest_log", "");
  const bool incremental = flags.GetBool("incremental", false);
  if (!ingest_log.empty() && method != "parafac" && method != "parafac-nn") {
    std::fprintf(stderr,
                 "--ingest_log needs --method=parafac or parafac-nn (the "
                 "incremental refit path is Kruskal-only)\n");
    return 1;
  }
  DecompositionTrace trace;
  if (!stats_json.empty()) options.trace = &trace;
  WallTimer timer;
  Status run_status = Status::OK();
  Status output_status = Status::OK();  // factor/core write, deferred
  bool has_fit = false;
  double fit = 0.0;
  int iterations_run = 0;
  RefitStatsReport refit_report;
  bool has_refit = false;

  CheckpointOptions checkpoint_options;
  if (!checkpoint_dir.empty()) {
    checkpoint_options.directory = checkpoint_dir;
    checkpoint_options.every_n_iterations =
        static_cast<int>(*checkpoint_every);
    checkpoint_options.keep_last = static_cast<int>(*checkpoint_keep);
    options.checkpoint = &checkpoint_options;
  }

  // Bare --resume (FlagParser reads it as "true"): continue mid-run from
  // the newest committed checkpoint. --resume=PREFIX stays the legacy
  // warm start from factors written with --output.
  KruskalModel resume_kruskal;
  TuckerModel resume_tucker;
  LoadedCheckpoint resume_checkpoint;
  // With --ingest_log, bare --resume means "warm-start the base fit from
  // the newest loadable checkpoint" (the merged tensor can't strict-resume
  // a checkpoint fingerprinted against a different shape/nnz), handled by
  // the refit session below.
  if (resume == "true" && ingest_log.empty()) {
    if (checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "bare --resume needs --checkpoint_dir=DIR to know where "
                   "the checkpoints live\n");
      return 1;
    }
    Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(checkpoint_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--resume: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    resume_checkpoint = std::move(loaded).value();
    options.resume_from = &resume_checkpoint;
    std::printf("resuming %s from checkpoint iteration %d under %s\n",
                resume_checkpoint.manifest.method.c_str(),
                resume_checkpoint.manifest.iteration, checkpoint_dir.c_str());
  } else if (!resume.empty()) {
    if (method == "parafac" || method == "parafac-nn") {
      Result<KruskalModel> loaded =
          LoadKruskalModel(resume, tensor->order());
      if (!loaded.ok()) {
        std::fprintf(stderr, "--resume: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      resume_kruskal = std::move(loaded).value();
      options.initial_kruskal = &resume_kruskal;
      std::printf("resuming from %s (rank %lld)\n", resume.c_str(),
                  (long long)resume_kruskal.rank());
    } else {
      Result<TuckerModel> loaded = LoadTuckerModel(resume, tensor->order());
      if (!loaded.ok()) {
        std::fprintf(stderr, "--resume: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      resume_tucker = std::move(loaded).value();
      options.initial_tucker = &resume_tucker;
      std::printf("resuming from %s\n", resume.c_str());
    }
  }

  if (!ingest_log.empty()) {
    options.nonnegative = method == "parafac-nn";
    Result<DeltaLog> log =
        LoadIngestLog(ingest_log, tensor->dims(), *epoch_nnz);
    if (!log.ok()) {
      std::fprintf(stderr, "--ingest_log: %s\n",
                   log.status().ToString().c_str());
      return 1;
    }
    std::printf("ingest log %s: %lld epochs, %lld stored entries\n",
                ingest_log.c_str(), (long long)log->num_epochs(),
                (long long)log->sealed_nnz());

    IncrementalRefitOptions refit_options;
    refit_options.als = options;
    refit_options.rank = *rank;
    refit_options.incremental = incremental;
    IncrementalRefitSession session(&engine, std::move(*tensor),
                                    refit_options);
    if (resume == "true") {
      if (checkpoint_dir.empty()) {
        std::fprintf(stderr,
                     "bare --resume needs --checkpoint_dir=DIR to know where "
                     "the checkpoints live\n");
        return 1;
      }
      Status warm = session.WarmStartFromCheckpointDir(checkpoint_dir);
      if (!warm.ok()) {
        std::fprintf(stderr, "--resume: %s\n", warm.ToString().c_str());
        return 1;
      }
      std::printf("warm-starting the base fit from a checkpoint under %s\n",
                  checkpoint_dir.c_str());
    }
    run_status = session.FitBase();
    for (int64_t e = 0; run_status.ok() && e < log->num_epochs(); ++e) {
      run_status = session.RefitWithDelta(log->epoch(e));
    }
    if (run_status.ok()) {
      const RefitCounters& rc = session.counters();
      has_fit = true;
      fit = session.model().fit;
      iterations_run = static_cast<int>(rc.iterations);
      has_refit = true;
      refit_report.epochs = rc.epochs;
      refit_report.delta_nnz = rc.delta_nnz;
      refit_report.merge_seconds = rc.merge_seconds;
      refit_report.refit_seconds = rc.refit_seconds;
      refit_report.refit_iterations = rc.iterations;
      refit_report.incremental = incremental;
      std::printf(
          "%s rank %lld (%s): %lld epochs ingested (%lld delta nnz), "
          "final fit %.4f, %d ALS iterations, merge %s + refit %s "
          "(%s wall)\n",
          method.c_str(), (long long)*rank,
          incremental ? "incremental" : "full refit", (long long)rc.epochs,
          (long long)rc.delta_nnz, fit, iterations_run,
          HumanSeconds(rc.merge_seconds).c_str(),
          HumanSeconds(rc.refit_seconds).c_str(),
          HumanSeconds(timer.ElapsedSeconds()).c_str());
      if (!output.empty()) {
        output_status = WriteKruskalOutput(session.model(), output);
        if (output_status.ok()) {
          std::printf("wrote %s.mode*.txt and %s.lambda.txt\n",
                      output.c_str(), output.c_str());
        }
      }
    }
  } else if (method == "parafac" || method == "parafac-nn") {
    options.nonnegative = method == "parafac-nn";
    Result<KruskalModel> model =
        Haten2ParafacAls(&engine, *tensor, *rank, options);
    run_status = model.status();
    if (model.ok()) {
      has_fit = true;
      fit = model->fit;
      iterations_run = model->iterations;
      std::printf("%s rank %lld: fit %.4f in %d iterations (%s wall)\n",
                  method.c_str(), (long long)*rank, model->fit,
                  model->iterations,
                  HumanSeconds(timer.ElapsedSeconds()).c_str());
      if (!output.empty()) {
        Status io = WriteFactors(model->factors, output);
        if (io.ok()) {
          DenseMatrix lambda(static_cast<int64_t>(model->lambda.size()), 1);
          for (size_t r = 0; r < model->lambda.size(); ++r) {
            lambda(static_cast<int64_t>(r), 0) = model->lambda[r];
          }
          io = WriteMatrixText(lambda, output + ".lambda.txt");
        }
        if (io.ok()) {
          std::printf("wrote %s.mode*.txt and %s.lambda.txt\n",
                      output.c_str(), output.c_str());
        }
        output_status = io;
      }
    }
  } else if (method == "tucker" || method == "tucker-nn") {
    const bool sketched =
        method == "tucker" && config.tucker_sketch != "none";
    if (method == "tucker-nn" && config.tucker_sketch != "none") {
      std::fprintf(stderr,
                   "--tucker_sketch applies to --method=tucker only "
                   "(nonnegative Tucker has no sketched driver)\n");
      return 1;
    }
    Result<TuckerModel> model =
        method == "tucker"
            ? (sketched
                   ? Haten2SketchedTuckerAls(&engine, *tensor, *core, options)
                   : Haten2TuckerAls(&engine, *tensor, *core, options))
            : Haten2NonnegativeTuckerAls(&engine, *tensor, *core, options);
    run_status = model.status();
    if (model.ok()) {
      has_fit = true;
      fit = model->fit;
      iterations_run = model->iterations;
      const std::string method_label =
          sketched ? StrFormat("tucker[%s-sketch]",
                               config.tucker_sketch.c_str())
                   : method;
      std::printf("%s: fit %.4f, ||G|| %.4f in %d iterations (%s "
                  "wall)\n", method_label.c_str(),
                  model->fit, model->core.FrobeniusNorm(),
                  model->iterations,
                  HumanSeconds(timer.ElapsedSeconds()).c_str());
      if (!output.empty()) {
        Status io = WriteFactors(model->factors, output);
        if (io.ok()) {
          io = WriteTensorText(model->core.ToSparse(),
                               output + ".core.txt");
        }
        if (io.ok()) {
          std::printf("wrote %s.mode*.txt and %s.core.txt\n",
                      output.c_str(), output.c_str());
        }
        output_status = io;
      }
    }
  } else {
    std::fprintf(stderr, "unknown --method=%s\n%s", method.c_str(), kUsage);
    return 1;
  }

  const PipelineStats pipeline_snapshot = engine.PipelineSnapshot();

  // The JSON export runs before the exit-code handling so failed runs
  // (the paper's o.o.m. deaths in particular) keep their post-mortem stats.
  if (!stats_json.empty()) {
    StatsReport report;
    report.tool = "haten2_cli";
    report.method = method;
    report.variant = flags.GetString("variant", "dri");
    report.dataset = path;
    if (run_status.ok()) {
      report.status = "ok";
    } else if (run_status.IsResourceExhausted()) {
      report.status = "oom";
    } else if (run_status.IsAborted()) {
      report.status = "aborted";
    } else if (run_status.IsIOError()) {
      report.status = "io_error";
    } else {
      report.status = "error";
    }
    report.wall_seconds = timer.ElapsedSeconds();
    report.has_fit = has_fit;
    report.fit = fit;
    report.iterations_run = iterations_run;
    report.cluster = &config;
    report.trace = &trace;
    report.pipeline = &pipeline_snapshot;
    const std::vector<distributed::WorkerStats> worker_stats =
        engine.WorkerStatsSnapshot();
    report.workers = &worker_stats;
    if (has_refit) report.refit = &refit_report;
    Status json_status = WriteStatsJsonFile(report, stats_json);
    if (!json_status.ok()) {
      std::fprintf(stderr, "--stats_json: %s\n",
                   json_status.ToString().c_str());
      if (run_status.ok() && output_status.ok()) return 1;
    } else {
      std::printf("wrote %s\n", stats_json.c_str());
    }
  }

  if (!run_status.ok()) {
    std::fprintf(stderr, "%s\n", run_status.ToString().c_str());
    if (run_status.IsResourceExhausted()) {
      std::fprintf(stderr,
                   "the intermediate data exceeded the cluster budget; try "
                   "--variant=dri (least intermediate data) or raise "
                   "--budget-mb\n");
      return 2;
    }
    return 1;
  }
  if (!output_status.ok()) {
    std::fprintf(stderr, "%s\n", output_status.ToString().c_str());
    return 1;
  }

  if (flags.GetBool("stats", false)) {
    std::printf("\n%s", pipeline_snapshot.ToString().c_str());
    std::printf("simulated %d-machine time: %s\n", config.num_machines,
                HumanSeconds(CostModel(config).SimulatePipeline(
                                 pipeline_snapshot))
                    .c_str());
  }
  return 0;
}

}  // namespace
}  // namespace haten2

int main(int argc, char** argv) { return haten2::RealMain(argc, argv); }
