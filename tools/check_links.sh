#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's documentation
# points at a file that exists. Usage:
#
#   tools/check_links.sh [file.md ...]
#
# With no arguments, checks the top-level *.md plus docs/*.md. External
# links (http/https/mailto) and pure #fragments are skipped; a link's
# target is resolved relative to the file that contains it, and an
# optional #fragment is stripped before the existence check.
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  files=(*.md docs/*.md)
fi

failures=0
for file in "${files[@]}"; do
  [[ -f "${file}" ]] || { echo "no such file: ${file}" >&2; exit 2; }
  dir="$(dirname "${file}")"
  # Inline links: ](target) — one per line after -o, skipping images' size
  # hints and code spans is unnecessary at this repo's markdown dialect.
  while IFS= read -r target; do
    case "${target}" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [[ -n "${path}" ]] || continue
    if [[ ! -e "${dir}/${path}" ]]; then
      echo "${file}: broken link -> ${target}"
      failures=$((failures + 1))
    fi
  done < <(grep -o ']([^)]*)' "${file}" | sed 's/^](//; s/)$//' || true)
done

if [[ "${failures}" -gt 0 ]]; then
  echo "check_links: ${failures} broken link(s)" >&2
  exit 1
fi
echo "check_links: all documentation links resolve"
