#ifndef HATEN2_SERVING_SERVING_STATS_H_
#define HATEN2_SERVING_SERVING_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json_writer.h"
#include "util/status.h"

namespace haten2 {

/// \brief Lock-free latency histogram with power-of-two microsecond
/// buckets.
///
/// Bucket b counts samples in [2^(b-1), 2^b) microseconds (bucket 0 is
/// [0, 1)). 48 buckets cover sub-microsecond to ~8.9 years, so no sample
/// is ever dropped. Percentiles are reconstructed from a snapshot of the
/// counters: the bucket containing the requested rank is located and its
/// geometric midpoint returned — ~±25% resolution, plenty for p50/p95/p99
/// dashboards while keeping Record() a single relaxed fetch_add (the
/// serving hot path records under concurrency with no locks).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(double seconds);

  /// A point-in-time copy of the counters, for consistent percentile sets.
  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t total_count = 0;
    double total_seconds = 0.0;

    /// Latency (seconds) at quantile q in [0, 1]; 0 when empty.
    double Quantile(double q) const;
    double MeanSeconds() const {
      return total_count == 0 ? 0.0
                              : total_seconds /
                                    static_cast<double>(total_count);
    }
  };
  Snapshot Take() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> total_count_{0};
  /// Sum of latencies in nanoseconds (integer, so fetch_add works
  /// pre-C++20-atomic-double everywhere).
  std::atomic<uint64_t> total_nanos_{0};
};

/// Query classes tracked by the serving layer. Keep in sync with
/// QueryKind in query_engine.h (the enum values match).
enum class ServingQueryClass : int {
  kTopK = 0,
  kNeighbors = 1,
  kConcepts = 2,
};
constexpr int kNumServingQueryClasses = 3;
const char* ServingQueryClassName(ServingQueryClass c);

/// \brief Aggregated serving telemetry: per-query-class latency
/// histograms, counts, errors, cache hits, and wall-clock for QPS.
///
/// All recording methods are thread-safe and lock-free; a ServingStats
/// outlives the pipeline threads recording into it.
class ServingStats {
 public:
  struct CacheCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t purges = 0;  ///< dead-version entries dropped on install
    int64_t entries = 0;
    double hit_rate = 0.0;
  };

  /// Records one completed query of class `c` with end-to-end latency
  /// `seconds` (submit to completion, queue wait included).
  void RecordQuery(ServingQueryClass c, double seconds, bool cache_hit,
                   bool ok);

  /// Records pipeline-level batching activity.
  void RecordBatch(size_t batch_size);

  /// Marks the start of the measured serving window (constructor does this
  /// too; call again to reset after warmup).
  void StartWindow();
  /// Freezes the window length for QPS (otherwise "now" is used).
  void EndWindow();

  ServingStats();

  /// Point-in-time latency snapshot of one query class (for harnesses and
  /// tests; ToJson uses it internally).
  LatencyHistogram::Snapshot ClassSnapshot(ServingQueryClass c) const;
  uint64_t ClassCount(ServingQueryClass c) const;
  uint64_t ClassErrors(ServingQueryClass c) const;
  uint64_t ClassCacheHits(ServingQueryClass c) const;

  uint64_t TotalQueries() const;
  double WindowSeconds() const;
  double Qps() const;

  /// Refit-loop telemetry rendered into the optional "refit" object — a
  /// plain mirror of RefitController::Counters so the stats layer does not
  /// depend on the controller (callers copy the fields across).
  struct RefitTelemetry {
    int64_t epochs_sealed = 0;
    int64_t epochs_installed = 0;
    int64_t epochs_behind = 0;      ///< model staleness right now
    int64_t max_epochs_behind = 0;
    int64_t installed_version = 0;
    int64_t delta_nnz = 0;
    double merge_seconds = 0.0;
    double refit_seconds = 0.0;
    int64_t refit_iterations = 0;
    double last_fit = 0.0;
  };

  /// Serializes the "haten2-serving-v1" schema (see docs/SERVING.md).
  /// `tool` names the emitting binary; `cache` carries the pipeline's LRU
  /// counters (pass {} when no cache is in play); `models` lists the
  /// registry contents as pre-rendered (name, description) rows. `refit`,
  /// when non-null, adds the refit-loop staleness/cost object (additive:
  /// consumers of refit-less outputs are unaffected).
  struct ModelRow {
    std::string name;
    std::string kind;
    int64_t version = 0;
    int order = 0;
    int64_t rank = 0;
  };
  std::string ToJson(const std::string& tool, const CacheCounters& cache,
                     const std::vector<ModelRow>& models,
                     const RefitTelemetry* refit = nullptr) const;

 private:
  struct PerClass {
    LatencyHistogram latency;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> cache_hits{0};
  };

  std::array<PerClass, kNumServingQueryClasses> classes_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<int64_t> window_start_nanos_{0};
  std::atomic<int64_t> window_end_nanos_{0};  // 0 = still open
};

/// Writes `json` to `path` (truncating), like WriteStatsJsonFile.
Status WriteServingStatsJsonFile(const std::string& json,
                                 const std::string& path);

}  // namespace haten2

#endif  // HATEN2_SERVING_SERVING_STATS_H_
