#include "serving/query_engine.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace haten2 {

namespace {

/// Top `n` of `scored` by descending score, ties by ascending row for
/// deterministic answers across runs and thread schedules.
std::vector<ScoredRow> TopN(std::vector<ScoredRow> scored, int64_t n) {
  int64_t keep = std::min<int64_t>(n, static_cast<int64_t>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const ScoredRow& a, const ScoredRow& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.row < b.row;
                    });
  scored.resize(static_cast<size_t>(keep));
  return scored;
}

}  // namespace

Result<QueryResult> QueryEngine::Execute(const Query& query) const {
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  HATEN2_ASSIGN_OR_RETURN(std::shared_ptr<const ServedModel> model,
                          registry_->Get(query.model));
  switch (query.kind) {
    case QueryKind::kTopK:
      return TopK(*model, query);
    case QueryKind::kNeighbors:
      return Neighbors(*model, query);
    case QueryKind::kConcepts:
      return Concepts(*model, query);
  }
  return Status::InvalidArgument("unknown query kind");
}

Result<QueryResult> QueryEngine::TopK(const ServedModel& model,
                                      const Query& query) const {
  if (model.kind != ModelKind::kKruskal) {
    return Status::FailedPrecondition(
        "top-k predicted entries require a Kruskal model");
  }
  if (model.observed == nullptr) {
    return Status::FailedPrecondition(
        "model '" + model.name +
        "' was installed without its observed tensor; top-k queries "
        "cannot exclude known entries");
  }
  LinkPredictionOptions options = model.beam_options;
  options.beam = query.beam;

  QueryResult result;
  result.kind = QueryKind::kTopK;
  result.model = model.name;
  result.model_version = model.version;
  if (model.beams.Matches(options)) {
    // Hot path: the per-version beam cache covers this query.
    HATEN2_ASSIGN_OR_RETURN(
        result.entries,
        PredictTopEntries(model.kruskal, model.beams, *model.observed,
                          query.k, options, &result.prediction_stats));
  } else {
    HATEN2_ASSIGN_OR_RETURN(
        result.entries,
        PredictTopEntries(model.kruskal, *model.observed, query.k, options,
                          &result.prediction_stats));
  }
  return result;
}

Result<QueryResult> QueryEngine::Neighbors(const ServedModel& model,
                                           const Query& query) const {
  const auto& factors = model.factors();
  if (query.mode < 0 || query.mode >= static_cast<int>(factors.size())) {
    return Status::InvalidArgument(
        StrFormat("mode %d out of range for a %d-way model", query.mode,
                  static_cast<int>(factors.size())));
  }
  const DenseMatrix& factor = factors[static_cast<size_t>(query.mode)];
  if (query.row < 0 || query.row >= factor.rows()) {
    return Status::InvalidArgument(
        StrFormat("row %lld out of range for mode %d (size %lld)",
                  (long long)query.row, query.mode,
                  (long long)factor.rows()));
  }

  // Similarity space: for Kruskal, weight each column by its lambda so
  // dominant components dominate the geometry; Tucker factors are
  // orthonormal and used as-is.
  const int64_t rank = factor.cols();
  std::vector<double> weights(static_cast<size_t>(rank), 1.0);
  if (model.kind == ModelKind::kKruskal) {
    for (int64_t r = 0; r < rank; ++r) {
      weights[static_cast<size_t>(r)] =
          model.kruskal.lambda[static_cast<size_t>(r)];
    }
  }
  auto weighted_dot = [&](int64_t i, int64_t j) {
    double dot = 0.0;
    for (int64_t r = 0; r < rank; ++r) {
      double w = weights[static_cast<size_t>(r)];
      dot += (w * factor(i, r)) * (w * factor(j, r));
    }
    return dot;
  };

  const int64_t anchor = query.row;
  const double anchor_norm = std::sqrt(weighted_dot(anchor, anchor));
  std::vector<ScoredRow> scored;
  scored.reserve(static_cast<size_t>(factor.rows()));
  for (int64_t i = 0; i < factor.rows(); ++i) {
    if (i == anchor) continue;
    double norm = std::sqrt(weighted_dot(i, i));
    double denom = anchor_norm * norm;
    double cosine = denom > 0.0 ? weighted_dot(anchor, i) / denom : 0.0;
    scored.push_back(ScoredRow{i, cosine});
  }

  QueryResult result;
  result.kind = QueryKind::kNeighbors;
  result.model = model.name;
  result.model_version = model.version;
  result.rows = TopN(std::move(scored), query.k);
  return result;
}

Result<QueryResult> QueryEngine::Concepts(const ServedModel& model,
                                          const Query& query) const {
  const auto& factors = model.factors();
  if (query.mode < 0 || query.mode >= static_cast<int>(factors.size())) {
    return Status::InvalidArgument(
        StrFormat("mode %d out of range for a %d-way model", query.mode,
                  static_cast<int>(factors.size())));
  }
  const DenseMatrix& factor = factors[static_cast<size_t>(query.mode)];
  if (query.component < 0 || query.component >= factor.cols()) {
    return Status::InvalidArgument(
        StrFormat("component %lld out of range (rank %lld)",
                  (long long)query.component, (long long)factor.cols()));
  }

  QueryResult result;
  result.kind = QueryKind::kConcepts;
  result.model = model.name;
  result.model_version = model.version;

  // Serve from the per-version beam cache when it already ranked enough
  // rows of this (component, mode); otherwise rank directly.
  const bool by_magnitude = model.beam_options.rank_rows_by_magnitude;
  const auto cached_rows =
      (model.kind == ModelKind::kKruskal &&
       query.component < static_cast<int64_t>(model.beams.rows.size()) &&
       query.k <= model.beams.beam)
          ? &model.beams.rows[static_cast<size_t>(query.component)]
                             [static_cast<size_t>(query.mode)]
          : nullptr;
  if (cached_rows != nullptr) {
    int64_t keep =
        std::min<int64_t>(query.k, static_cast<int64_t>(cached_rows->size()));
    result.rows.reserve(static_cast<size_t>(keep));
    for (int64_t i = 0; i < keep; ++i) {
      int64_t row = (*cached_rows)[static_cast<size_t>(i)];
      result.rows.push_back(ScoredRow{row, factor(row, query.component)});
    }
    return result;
  }

  std::vector<ScoredRow> scored;
  scored.reserve(static_cast<size_t>(factor.rows()));
  for (int64_t i = 0; i < factor.rows(); ++i) {
    double v = factor(i, query.component);
    scored.push_back(ScoredRow{i, by_magnitude ? std::fabs(v) : v});
  }
  scored = TopN(std::move(scored), query.k);
  // Report the raw loading, not the ranking key.
  for (ScoredRow& r : scored) r.score = factor(r.row, query.component);
  result.rows = std::move(scored);
  return result;
}

std::string QueryEngine::CacheKey(const Query& query, int64_t version) {
  return StrFormat("%s/v%lld/%d/k%lld/b%lld/m%d/r%lld/c%lld",
                   query.model.c_str(), (long long)version,
                   static_cast<int>(query.kind), (long long)query.k,
                   (long long)query.beam, query.mode, (long long)query.row,
                   (long long)query.component);
}

}  // namespace haten2
