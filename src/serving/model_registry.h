#ifndef HATEN2_SERVING_MODEL_REGISTRY_H_
#define HATEN2_SERVING_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/link_prediction.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

enum class ModelKind { kKruskal, kTucker };

const char* ModelKindName(ModelKind kind);

/// \brief One immutable, query-ready model version.
///
/// Built once at install time and never mutated afterwards: readers obtain
/// a shared_ptr<const ServedModel> and can keep answering queries from it
/// even while the registry hot-swaps the name to a newer version. Besides
/// the raw factors it holds what the query engine needs precomputed:
/// the candidate beams of the top-k path (per-mode top-loaded rows per
/// component — the expensive factor scan PredictTopEntries would otherwise
/// repeat per query) and, optionally, the observed tensor that top-k
/// predictions must exclude.
struct ServedModel {
  std::string name;
  int64_t version = 0;
  ModelKind kind = ModelKind::kKruskal;

  KruskalModel kruskal;  // valid when kind == kKruskal
  TuckerModel tucker;    // valid when kind == kTucker

  /// Observed tensor for top-k predicted-entry queries (those score only
  /// absent cells). Null when the model was installed without one; top-k
  /// queries then fail with FailedPrecondition.
  std::shared_ptr<const SparseTensor> observed;

  /// Candidate beams precomputed at install time with the registry's
  /// default options (Kruskal only). Queries with matching options serve
  /// from this; others recompute on the fly.
  CandidateBeams beams;
  LinkPredictionOptions beam_options;

  int order() const {
    return static_cast<int>(kind == ModelKind::kKruskal
                                ? kruskal.factors.size()
                                : tucker.factors.size());
  }
  int64_t rank() const {
    if (kind == ModelKind::kKruskal) return kruskal.rank();
    return tucker.factors.empty() ? 0 : tucker.factors[0].cols();
  }
  const std::vector<DenseMatrix>& factors() const {
    return kind == ModelKind::kKruskal ? kruskal.factors : tucker.factors;
  }
};

struct RegistryOptions {
  /// Beam width precomputed for top-k candidate generation at install.
  LinkPredictionOptions beam_options;
};

/// \brief Named model versions with lock-hot-swap semantics.
///
/// Writers (Install*/Load*/Remove) take the writer lock only to swap a
/// pointer in the name → model map; building the ServedModel (I/O, beam
/// precompute) happens outside the lock. Readers (Get) take the shared
/// lock just long enough to copy a shared_ptr, so queries in flight keep
/// the version they started on and a swap is never torn.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions options = {});

  /// Installs a fitted Kruskal model under `name`, replacing any previous
  /// version. `observed` may be null (top-k queries then unavailable).
  /// Returns the installed version (monotonically increasing across the
  /// registry).
  Result<int64_t> InstallKruskal(const std::string& name, KruskalModel model,
                                 std::shared_ptr<const SparseTensor> observed);

  /// Installs a fitted Tucker model under `name`.
  Result<int64_t> InstallTucker(const std::string& name, TuckerModel model);

  /// Loads a checkpoint written by SaveKruskalModel / haten2_cli --output,
  /// inferring the order from the files on disk, and installs it.
  /// `observed_path` may be empty (no top-k) — otherwise the tensor file
  /// the model was fitted on.
  Result<int64_t> LoadKruskal(const std::string& name,
                              const std::string& prefix,
                              const std::string& observed_path);

  Result<int64_t> LoadTucker(const std::string& name,
                             const std::string& prefix);

  /// The current version of `name`, or NotFound.
  Result<std::shared_ptr<const ServedModel>> Get(const std::string& name)
      const;

  /// Removes `name`; false when absent. In-flight readers keep their
  /// snapshot.
  bool Remove(const std::string& name);

  std::vector<std::string> Names() const;
  size_t size() const;

  /// Called after every successful install with the model name and the
  /// version just made current, outside the registry lock (the listener may
  /// call back into the registry). The serving layer hooks this to purge
  /// dead-version entries from the request cache — entry keys embed the
  /// version, so everything not keyed to the new version is unreachable the
  /// moment the swap lands. One listener; setting replaces. Not
  /// synchronized with concurrent installs of the *same* name: callers wire
  /// it once at startup, before serving traffic.
  using InstallListener =
      std::function<void(const std::string& name, int64_t version)>;
  void SetInstallListener(InstallListener listener) {
    install_listener_ = std::move(listener);
  }

  const RegistryOptions& options() const { return options_; }

 private:
  Result<int64_t> InstallLocked(const std::string& name,
                                std::shared_ptr<ServedModel> model);

  RegistryOptions options_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const ServedModel>> models_;
  std::atomic<int64_t> next_version_{1};
  InstallListener install_listener_;
};

}  // namespace haten2

#endif  // HATEN2_SERVING_MODEL_REGISTRY_H_
