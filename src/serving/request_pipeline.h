#ifndef HATEN2_SERVING_REQUEST_PIPELINE_H_
#define HATEN2_SERVING_REQUEST_PIPELINE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "serving/lru_cache.h"
#include "serving/query_engine.h"
#include "serving/serving_stats.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace haten2 {

struct PipelineOptions {
  /// Maximum queued (not yet dispatched) queries; Submit blocks when the
  /// queue is full, giving closed-loop clients natural backpressure.
  size_t queue_capacity = 1024;
  /// Largest micro-batch handed to one worker task.
  size_t max_batch = 16;
  /// Worker threads executing micro-batches.
  size_t num_threads = 4;
  /// Result cache: total entries and shard count (0 entries disables it).
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
};

/// \brief The serving front door: accepts queries on a bounded queue,
/// micro-batches them, fans the batches out across a ThreadPool, and
/// memoizes hot queries in a sharded LRU keyed by (query, model version).
///
/// Lifecycle: construct with a QueryEngine and a ServingStats sink, Submit
/// from any number of client threads, Shutdown (or destroy) to drain.
/// Every Submit is answered exactly once — queries still queued at
/// Shutdown are drained, queries submitted after it fail with Aborted.
class RequestPipeline {
 public:
  RequestPipeline(const QueryEngine* engine, ServingStats* stats,
                  PipelineOptions options = {});
  ~RequestPipeline();

  RequestPipeline(const RequestPipeline&) = delete;
  RequestPipeline& operator=(const RequestPipeline&) = delete;

  /// Enqueues a query; the future resolves with the result (shared, so a
  /// cache hit costs no payload copy) or the execution error. Blocks while
  /// the queue is at capacity. `cache_hit` (when non-null in the result
  /// wrapper) reports whether the answer came from the LRU.
  struct Response {
    Status status = Status::OK();
    std::shared_ptr<const QueryResult> result;  // null on error
    bool cache_hit = false;
  };
  std::future<Response> Submit(Query query);

  /// Drains the queue, waits for in-flight batches, and stops the
  /// dispatcher. Idempotent.
  void Shutdown();

  typename ShardedLruCache<QueryResult>::Stats CacheStats() const {
    return cache_.GetStats();
  }

  /// Drops every cached answer for `model` not keyed to `keep_version`
  /// and returns how many were dropped. Hooked to
  /// ModelRegistry::SetInstallListener so a hot-swap frees the dead
  /// version's shard capacity immediately instead of letting unreachable
  /// entries age out of the LRU.
  uint64_t PurgeModelExcept(const std::string& model, int64_t keep_version);

 private:
  struct Pending {
    Query query;
    std::promise<Response> promise;
    WallTimer latency;  // submit → completion, queue wait included
  };

  void DispatcherLoop();
  void ExecuteBatch(std::shared_ptr<std::deque<Pending>> batch);
  void Answer(Pending* pending);

  const QueryEngine* engine_;
  ServingStats* stats_;
  PipelineOptions options_;
  ShardedLruCache<QueryResult> cache_;
  ThreadPool pool_;

  std::mutex mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Pending> queue_;
  bool shutting_down_ = false;
  std::thread dispatcher_;
};

}  // namespace haten2

#endif  // HATEN2_SERVING_REQUEST_PIPELINE_H_
