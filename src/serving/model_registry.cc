#include "serving/model_registry.h"

#include <mutex>
#include <utility>

#include "tensor/model_io.h"
#include "tensor/tensor_io.h"

namespace haten2 {

const char* ModelKindName(ModelKind kind) {
  return kind == ModelKind::kKruskal ? "kruskal" : "tucker";
}

ModelRegistry::ModelRegistry(RegistryOptions options)
    : options_(std::move(options)) {}

Result<int64_t> ModelRegistry::InstallKruskal(
    const std::string& name, KruskalModel model,
    std::shared_ptr<const SparseTensor> observed) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (model.factors.empty()) {
    return Status::InvalidArgument("model has no factor matrices");
  }
  if (observed != nullptr) {
    if (observed->order() != static_cast<int>(model.factors.size())) {
      return Status::InvalidArgument(
          "observed tensor order does not match the model");
    }
    if (!observed->canonical()) {
      return Status::FailedPrecondition(
          "observed tensor must be canonical (call Canonicalize())");
    }
  }
  auto served = std::make_shared<ServedModel>();
  served->name = name;
  served->kind = ModelKind::kKruskal;
  served->kruskal = std::move(model);
  served->observed = std::move(observed);
  served->beam_options = options_.beam_options;
  // The beam precompute is the expensive part of a top-k query; do it here,
  // outside any lock, so installs never stall readers.
  HATEN2_ASSIGN_OR_RETURN(
      served->beams,
      ComputeCandidateBeams(served->kruskal, options_.beam_options));
  return InstallLocked(name, std::move(served));
}

Result<int64_t> ModelRegistry::InstallTucker(const std::string& name,
                                             TuckerModel model) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (model.factors.empty()) {
    return Status::InvalidArgument("model has no factor matrices");
  }
  auto served = std::make_shared<ServedModel>();
  served->name = name;
  served->kind = ModelKind::kTucker;
  served->tucker = std::move(model);
  served->beam_options = options_.beam_options;
  return InstallLocked(name, std::move(served));
}

Result<int64_t> ModelRegistry::LoadKruskal(const std::string& name,
                                           const std::string& prefix,
                                           const std::string& observed_path) {
  HATEN2_ASSIGN_OR_RETURN(KruskalModel model,
                          LoadKruskalModelAutoOrder(prefix));
  std::shared_ptr<const SparseTensor> observed;
  if (!observed_path.empty()) {
    HATEN2_ASSIGN_OR_RETURN(SparseTensor tensor,
                            ReadTensorText(observed_path));
    observed = std::make_shared<const SparseTensor>(std::move(tensor));
  }
  return InstallKruskal(name, std::move(model), std::move(observed));
}

Result<int64_t> ModelRegistry::LoadTucker(const std::string& name,
                                          const std::string& prefix) {
  HATEN2_ASSIGN_OR_RETURN(TuckerModel model, LoadTuckerModelAutoOrder(prefix));
  return InstallTucker(name, std::move(model));
}

Result<int64_t> ModelRegistry::InstallLocked(
    const std::string& name, std::shared_ptr<ServedModel> model) {
  int64_t version = next_version_.fetch_add(1, std::memory_order_relaxed);
  model->version = version;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    models_[name] = std::move(model);
  }
  // Outside the lock: the listener may query the registry (and typically
  // purges the request cache, which takes its own shard mutexes).
  if (install_listener_) install_listener_(name, version);
  return version;
}

Result<std::shared_ptr<const ServedModel>> ModelRegistry::Get(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("no model named '" + name + "' is registered");
  }
  return it->second;
}

bool ModelRegistry::Remove(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return models_.size();
}

}  // namespace haten2
