#include "serving/request_pipeline.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace haten2 {

RequestPipeline::RequestPipeline(const QueryEngine* engine,
                                 ServingStats* stats, PipelineOptions options)
    : engine_(engine),
      stats_(stats),
      options_(options),
      cache_(std::max<size_t>(1, options.cache_capacity),
             std::max<size_t>(1, options.cache_shards)),
      pool_(std::max<size_t>(1, options.num_threads)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RequestPipeline::~RequestPipeline() { Shutdown(); }

std::future<RequestPipeline::Response> RequestPipeline::Submit(Query query) {
  Pending pending;
  pending.query = std::move(query);
  std::future<Response> future = pending.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_not_full_.wait(lock, [this] {
      return shutting_down_ || queue_.size() < options_.queue_capacity;
    });
    if (shutting_down_) {
      lock.unlock();
      Response response;
      response.status =
          Status::Aborted("request pipeline is shutting down");
      pending.promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  queue_not_empty_.notify_one();
  return future;
}

void RequestPipeline::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_ && !dispatcher_.joinable()) return;
    shutting_down_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher drained the queue into the pool before exiting; wait
  // for those batches to finish answering.
  pool_.Wait();
}

uint64_t RequestPipeline::PurgeModelExcept(const std::string& model,
                                           int64_t keep_version) {
  // CacheKey starts "<model>/v<version>/..." (query_engine.cc); keep only
  // this model's entries for keep_version, leave other models alone.
  const std::string model_prefix = model + "/v";
  const std::string keep_prefix =
      model_prefix + std::to_string(keep_version) + "/";
  return cache_.PurgeWhere([&](const std::string& key) {
    return key.compare(0, model_prefix.size(), model_prefix) == 0 &&
           key.compare(0, keep_prefix.size(), keep_prefix) != 0;
  });
}

void RequestPipeline::DispatcherLoop() {
  while (true) {
    auto batch = std::make_shared<std::deque<Pending>>();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with nothing left
      // Micro-batch: take up to max_batch queries in one go. No artificial
      // wait for the batch to fill — under load the queue refills faster
      // than workers drain it, so batches grow on their own; idle traffic
      // dispatches immediately with batch size 1.
      size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch->push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    queue_not_full_.notify_all();
    if (stats_ != nullptr) stats_->RecordBatch(batch->size());
    pool_.Submit([this, batch] { ExecuteBatch(batch); });
  }
}

void RequestPipeline::ExecuteBatch(std::shared_ptr<std::deque<Pending>> batch) {
  for (Pending& pending : *batch) Answer(&pending);
}

void RequestPipeline::Answer(Pending* pending) {
  const Query& query = pending->query;
  Response response;

  // Resolve the model version first: the cache key embeds it, so a stale
  // cached answer for a swapped-out version can never be returned.
  Result<std::shared_ptr<const ServedModel>> model =
      engine_->registry()->Get(query.model);
  std::string key;
  if (model.ok() && options_.cache_capacity > 0) {
    key = QueryEngine::CacheKey(query, (*model)->version);
    if (std::shared_ptr<const QueryResult> hit = cache_.Lookup(key)) {
      response.result = std::move(hit);
      response.cache_hit = true;
    }
  }

  if (response.result == nullptr) {
    if (!model.ok()) {
      response.status = model.status();
    } else {
      Result<QueryResult> executed = engine_->Execute(query);
      if (executed.ok()) {
        auto shared = std::make_shared<const QueryResult>(
            std::move(executed).value());
        if (!key.empty()) cache_.Insert(key, shared);
        response.result = std::move(shared);
      } else {
        response.status = executed.status();
      }
    }
  }

  if (stats_ != nullptr) {
    stats_->RecordQuery(static_cast<ServingQueryClass>(query.kind),
                        pending->latency.ElapsedSeconds(),
                        response.cache_hit, response.status.ok());
  }
  pending->promise.set_value(std::move(response));
}

}  // namespace haten2
