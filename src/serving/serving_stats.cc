#include "serving/serving_stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace haten2 {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Bucket index for a latency in microseconds: 0 for [0,1), then
/// 1 + floor(log2(us)) clamped to the last bucket.
int BucketFor(double micros) {
  if (micros < 1.0) return 0;
  int b = 1;
  uint64_t us = static_cast<uint64_t>(micros);
  while (us > 1 && b < LatencyHistogram::kBuckets - 1) {
    us >>= 1;
    ++b;
  }
  return b;
}

/// Geometric midpoint of bucket b, in seconds.
double BucketMidSeconds(int b) {
  if (b == 0) return 0.5e-6;
  double lo = std::ldexp(1.0, b - 1);  // 2^(b-1) us
  return lo * std::sqrt(2.0) * 1e-6;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  int b = BucketFor(seconds * 1e6);
  counts_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Take() const {
  Snapshot s;
  for (int b = 0; b < kBuckets; ++b) {
    s.counts[static_cast<size_t>(b)] =
        counts_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    s.total_count += s.counts[static_cast<size_t>(b)];
  }
  s.total_seconds =
      static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  return s;
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (total_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample (1-based, ceil, so q=1 is the max bucket).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total_count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[static_cast<size_t>(b)];
    if (seen >= rank) return BucketMidSeconds(b);
  }
  return BucketMidSeconds(kBuckets - 1);
}

const char* ServingQueryClassName(ServingQueryClass c) {
  switch (c) {
    case ServingQueryClass::kTopK:
      return "topk";
    case ServingQueryClass::kNeighbors:
      return "neighbors";
    case ServingQueryClass::kConcepts:
      return "concepts";
  }
  return "unknown";
}

ServingStats::ServingStats() { StartWindow(); }

void ServingStats::RecordQuery(ServingQueryClass c, double seconds,
                               bool cache_hit, bool ok) {
  PerClass& pc = classes_[static_cast<size_t>(c)];
  pc.latency.Record(seconds);
  pc.count.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) pc.cache_hits.fetch_add(1, std::memory_order_relaxed);
  if (!ok) pc.errors.fetch_add(1, std::memory_order_relaxed);
}

void ServingStats::RecordBatch(size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(batch_size, std::memory_order_relaxed);
  uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (batch_size > prev &&
         !max_batch_.compare_exchange_weak(prev, batch_size,
                                           std::memory_order_relaxed)) {
  }
}

void ServingStats::StartWindow() {
  window_start_nanos_.store(NowNanos(), std::memory_order_relaxed);
  window_end_nanos_.store(0, std::memory_order_relaxed);
}

void ServingStats::EndWindow() {
  window_end_nanos_.store(NowNanos(), std::memory_order_relaxed);
}

LatencyHistogram::Snapshot ServingStats::ClassSnapshot(
    ServingQueryClass c) const {
  return classes_[static_cast<size_t>(c)].latency.Take();
}

uint64_t ServingStats::ClassCount(ServingQueryClass c) const {
  return classes_[static_cast<size_t>(c)].count.load(
      std::memory_order_relaxed);
}

uint64_t ServingStats::ClassErrors(ServingQueryClass c) const {
  return classes_[static_cast<size_t>(c)].errors.load(
      std::memory_order_relaxed);
}

uint64_t ServingStats::ClassCacheHits(ServingQueryClass c) const {
  return classes_[static_cast<size_t>(c)].cache_hits.load(
      std::memory_order_relaxed);
}

uint64_t ServingStats::TotalQueries() const {
  uint64_t total = 0;
  for (const PerClass& pc : classes_) {
    total += pc.count.load(std::memory_order_relaxed);
  }
  return total;
}

double ServingStats::WindowSeconds() const {
  int64_t start = window_start_nanos_.load(std::memory_order_relaxed);
  int64_t end = window_end_nanos_.load(std::memory_order_relaxed);
  if (end == 0) end = NowNanos();
  return static_cast<double>(end - start) * 1e-9;
}

double ServingStats::Qps() const {
  double window = WindowSeconds();
  return window <= 0.0 ? 0.0
                       : static_cast<double>(TotalQueries()) / window;
}

std::string ServingStats::ToJson(const std::string& tool,
                                 const CacheCounters& cache,
                                 const std::vector<ModelRow>& models,
                                 const RefitTelemetry* refit) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("haten2-serving-v1");
  w.Key("tool").Value(tool);
  w.Key("window_seconds").Value(WindowSeconds());
  w.Key("queries").Value(static_cast<uint64_t>(TotalQueries()));
  w.Key("qps").Value(Qps());

  w.Key("cache").BeginObject();
  w.Key("hits").Value(cache.hits);
  w.Key("misses").Value(cache.misses);
  w.Key("evictions").Value(cache.evictions);
  w.Key("purges").Value(cache.purges);
  w.Key("entries").Value(cache.entries);
  w.Key("hit_rate").Value(cache.hit_rate);
  w.EndObject();

  w.Key("batching").BeginObject();
  w.Key("batches").Value(batches_.load(std::memory_order_relaxed));
  w.Key("batched_queries")
      .Value(batched_queries_.load(std::memory_order_relaxed));
  uint64_t batches = batches_.load(std::memory_order_relaxed);
  w.Key("mean_batch_size")
      .Value(batches == 0
                 ? 0.0
                 : static_cast<double>(
                       batched_queries_.load(std::memory_order_relaxed)) /
                       static_cast<double>(batches));
  w.Key("max_batch_size").Value(max_batch_.load(std::memory_order_relaxed));
  w.EndObject();

  w.Key("classes").BeginArray();
  for (int c = 0; c < kNumServingQueryClasses; ++c) {
    const PerClass& pc = classes_[static_cast<size_t>(c)];
    uint64_t count = pc.count.load(std::memory_order_relaxed);
    LatencyHistogram::Snapshot snap = pc.latency.Take();
    w.BeginObject();
    w.Key("class").Value(
        ServingQueryClassName(static_cast<ServingQueryClass>(c)));
    w.Key("count").Value(count);
    w.Key("errors").Value(pc.errors.load(std::memory_order_relaxed));
    w.Key("cache_hits").Value(pc.cache_hits.load(std::memory_order_relaxed));
    w.Key("latency_ms").BeginObject();
    w.Key("p50").Value(snap.Quantile(0.50) * 1e3);
    w.Key("p95").Value(snap.Quantile(0.95) * 1e3);
    w.Key("p99").Value(snap.Quantile(0.99) * 1e3);
    w.Key("mean").Value(snap.MeanSeconds() * 1e3);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();

  if (refit != nullptr) {
    w.Key("refit").BeginObject();
    w.Key("epochs_sealed").Value(refit->epochs_sealed);
    w.Key("epochs_installed").Value(refit->epochs_installed);
    w.Key("epochs_behind").Value(refit->epochs_behind);
    w.Key("max_epochs_behind").Value(refit->max_epochs_behind);
    w.Key("installed_version").Value(refit->installed_version);
    w.Key("delta_nnz").Value(refit->delta_nnz);
    w.Key("merge_seconds").Value(refit->merge_seconds);
    w.Key("refit_seconds").Value(refit->refit_seconds);
    w.Key("refit_iterations").Value(refit->refit_iterations);
    w.Key("last_fit").Value(refit->last_fit);
    w.EndObject();
  }

  w.Key("models").BeginArray();
  for (const ModelRow& m : models) {
    w.BeginObject();
    w.Key("name").Value(m.name);
    w.Key("kind").Value(m.kind);
    w.Key("version").Value(m.version);
    w.Key("order").Value(m.order);
    w.Key("rank").Value(m.rank);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str();
}

Status WriteServingStatsJsonFile(const std::string& json,
                                 const std::string& path) {
  return WriteTextFile(path, json);
}

}  // namespace haten2
