#include "serving/refit_controller.h"

#include <memory>

namespace haten2 {

RefitController::RefitController(Engine* engine, ModelRegistry* registry,
                                 SparseTensor base, Options options)
    : registry_(registry),
      options_(std::move(options)),
      session_(engine, std::move(base), options_.refit) {}

Status RefitController::Bootstrap() {
  if (!options_.warm_start_checkpoint_dir.empty()) {
    Status warm =
        session_.WarmStartFromCheckpointDir(options_.warm_start_checkpoint_dir);
    // No checkpoint yet is a normal first boot; anything else (torn files
    // all the way down, wrong model kind) the operator needs to see.
    if (!warm.ok() && warm.code() != StatusCode::kNotFound) return warm;
  }
  HATEN2_RETURN_IF_ERROR(session_.FitBase());
  return InstallCurrent();
}

Status RefitController::ProcessEpoch(const SparseTensor& delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epochs_sealed_;
    int64_t behind = epochs_sealed_ - epochs_installed_;
    if (behind > max_epochs_behind_) max_epochs_behind_ = behind;
  }
  HATEN2_RETURN_IF_ERROR(session_.RefitWithDelta(delta));
  return InstallCurrent();
}

Result<int64_t> RefitController::CatchUp(const DeltaLog& log) {
  int64_t ingested = 0;
  while (next_log_epoch_ < log.num_epochs()) {
    HATEN2_RETURN_IF_ERROR(ProcessEpoch(log.epoch(next_log_epoch_)));
    ++next_log_epoch_;
    ++ingested;
  }
  return ingested;
}

Status RefitController::InstallCurrent() {
  if (!session_.has_model()) {
    return Status::FailedPrecondition(
        "refit controller has no fitted model to install");
  }
  std::shared_ptr<const SparseTensor> observed;
  if (options_.install_observed) {
    observed = std::make_shared<const SparseTensor>(session_.tensor());
  }
  HATEN2_ASSIGN_OR_RETURN(
      int64_t version,
      registry_->InstallKruskal(options_.model_name, session_.model(),
                                std::move(observed)));
  std::lock_guard<std::mutex> lock(mu_);
  installed_version_ = version;
  // Bootstrap installs without a preceding sealed epoch; don't let the
  // installed count run ahead of the sealed count.
  if (epochs_installed_ < epochs_sealed_) ++epochs_installed_;
  return Status::OK();
}

RefitController::Counters RefitController::GetCounters() const {
  Counters c;
  {
    std::lock_guard<std::mutex> lock(mu_);
    c.epochs_sealed = epochs_sealed_;
    c.epochs_installed = epochs_installed_;
    c.epochs_behind = epochs_sealed_ - epochs_installed_;
    c.max_epochs_behind = max_epochs_behind_;
    c.installed_version = installed_version_;
  }
  c.refit = session_.counters();
  return c;
}

}  // namespace haten2
