#ifndef HATEN2_SERVING_QUERY_ENGINE_H_
#define HATEN2_SERVING_QUERY_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/link_prediction.h"
#include "serving/model_registry.h"
#include "serving/serving_stats.h"
#include "util/result.h"

namespace haten2 {

/// What a query asks of a served model. Values match ServingQueryClass so
/// stats can index per-class histograms directly.
enum class QueryKind : int {
  /// Top-k predicted (absent) entries under the model — the paper's
  /// Tables VI–VIII read as an online query. Kruskal models only.
  kTopK = 0,
  /// Entities nearest to `row` of mode `mode` in factor space (cosine
  /// similarity over lambda-weighted rows for Kruskal, raw rows for
  /// Tucker).
  kNeighbors = 1,
  /// The k highest-loaded rows of mode `mode` under component
  /// `component` — a concept listing.
  kConcepts = 2,
};

struct Query {
  std::string model;
  QueryKind kind = QueryKind::kTopK;
  /// Result-set size for every kind (top-k entries, n neighbors, n rows).
  int64_t k = 10;
  /// Candidate beam width (kTopK only). Queries matching the registry's
  /// precomputed beam are served from the per-version cache.
  int64_t beam = 10;
  /// Factor mode (kNeighbors, kConcepts).
  int mode = 0;
  /// Anchor entity row (kNeighbors).
  int64_t row = 0;
  /// Component index (kConcepts).
  int64_t component = 0;
};

/// A row with its score: similarity for kNeighbors, loading for kConcepts.
struct ScoredRow {
  int64_t row = 0;
  double score = 0.0;
};

struct QueryResult {
  QueryKind kind = QueryKind::kTopK;
  std::string model;
  int64_t model_version = 0;
  /// kTopK payload.
  std::vector<PredictedEntry> entries;
  LinkPredictionStats prediction_stats;
  /// kNeighbors / kConcepts payload.
  std::vector<ScoredRow> rows;
};

/// \brief Stateless query execution against a ModelRegistry snapshot.
///
/// Execute() resolves the model name once, then answers entirely from the
/// immutable ServedModel snapshot — a concurrent hot-swap affects only
/// queries that start after it. The request pipeline layers batching and
/// caching on top; Execute() itself is safe to call from any thread.
class QueryEngine {
 public:
  explicit QueryEngine(const ModelRegistry* registry) : registry_(registry) {}

  Result<QueryResult> Execute(const Query& query) const;

  const ModelRegistry* registry() const { return registry_; }

  /// Canonical cache key for `query` against model version `version`.
  /// Embedding the version makes hot-swaps invalidate by construction.
  static std::string CacheKey(const Query& query, int64_t version);

 private:
  Result<QueryResult> TopK(const ServedModel& model, const Query& query)
      const;
  Result<QueryResult> Neighbors(const ServedModel& model, const Query& query)
      const;
  Result<QueryResult> Concepts(const ServedModel& model, const Query& query)
      const;

  const ModelRegistry* registry_;
};

}  // namespace haten2

#endif  // HATEN2_SERVING_QUERY_ENGINE_H_
