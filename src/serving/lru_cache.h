#ifndef HATEN2_SERVING_LRU_CACHE_H_
#define HATEN2_SERVING_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace haten2 {

/// \brief Sharded LRU cache for hot query results.
///
/// Keys are canonical query strings (they embed the model version, so a
/// hot-swap can never serve a stale payload — old-version keys are simply
/// never asked for again). Dead-version entries still occupy shard capacity
/// until they age out, which under a refit loop (installs every few
/// seconds) squeezes the live version's working set; PurgeWhere exists so
/// the install path can drop them eagerly. Values are shared_ptr<const V>,
/// so a hit never copies the payload and an entry can be evicted while a
/// reader still holds it.
///
/// Sharding: a key hashes to one of `shards` independent LRU lists, each
/// behind its own mutex, so concurrent lookups from the request pipeline's
/// workers contend only 1/shards of the time. Hit/miss/eviction counters
/// are lock-free atomics.
template <typename V>
class ShardedLruCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    uint64_t purges = 0;
    int64_t entries = 0;

    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// `capacity` is the total entry budget across all shards (minimum one
  /// entry per shard); `shards` must be >= 1.
  ShardedLruCache(size_t capacity, size_t shards)
      : shards_(std::max<size_t>(1, shards)) {
    HATEN2_CHECK(capacity >= 1) << "cache capacity must be >= 1";
    per_shard_capacity_ =
        std::max<size_t>(1, (capacity + shards_.size() - 1) / shards_.size());
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value and refreshes its recency, or nullptr on miss.
  std::shared_ptr<const V> Lookup(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries of the shard beyond its capacity.
  void Insert(const std::string& key, std::shared_ptr<const V> value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index[key] = shard.lru.begin();
    inserts_.fetch_add(1, std::memory_order_relaxed);
    while (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drops every entry (counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  /// Drops every entry whose key satisfies `pred` and returns how many were
  /// dropped (also accumulated into Stats::purges, separate from capacity
  /// evictions). The scan holds each shard's mutex in turn — O(entries),
  /// fine for the install path's once-per-refit call, not for hot paths.
  template <typename Pred>
  uint64_t PurgeWhere(const Pred& pred) {
    uint64_t purged = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (pred(it->key)) {
          shard.index.erase(it->key);
          it = shard.lru.erase(it);
          ++purged;
        } else {
          ++it;
        }
      }
    }
    purges_.fetch_add(purged, std::memory_order_relaxed);
    return purged;
  }

  Stats GetStats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.purges = purges_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      s.entries += static_cast<int64_t>(shard.lru.size());
    }
    return s;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t per_shard_capacity() const { return per_shard_capacity_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, typename std::list<Entry>::iterator>
        index;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t per_shard_capacity_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> purges_{0};
};

}  // namespace haten2

#endif  // HATEN2_SERVING_LRU_CACHE_H_
