#ifndef HATEN2_SERVING_REFIT_CONTROLLER_H_
#define HATEN2_SERVING_REFIT_CONTROLLER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "core/incremental_refit.h"
#include "serving/model_registry.h"
#include "tensor/delta_log.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Closes the ingest → refit → serve loop: owns an
/// IncrementalRefitSession and publishes each refit model into a
/// ModelRegistry, tracking how far serving lags behind ingest.
///
/// The controller is the single writer of the session and the registry
/// entry it manages; queries read the registry concurrently (hot-swap
/// semantics, see ModelRegistry). Counters() may be called from any
/// thread — serving stats exports poll it while a refit is in flight.
class RefitController {
 public:
  struct Options {
    /// Registry name the refit models are installed under.
    std::string model_name = "live";
    /// Session configuration (ALS options, rank, incremental vs full).
    IncrementalRefitOptions refit;
    /// When non-empty, Bootstrap() warm-starts from the newest loadable
    /// checkpoint under this directory (torn checkpoints skipped); NotFound
    /// (no checkpoint yet) falls back to a cold start.
    std::string warm_start_checkpoint_dir;
    /// Install the merged tensor as the served model's observed tensor so
    /// top-k queries exclude already-ingested cells. Costs a tensor copy
    /// per install; turn off for ingest-rate drills that never query top-k.
    bool install_observed = true;
  };

  /// Staleness and throughput accounting for the refit loop, exported into
  /// the serving stats JSON (`refit` object) and, via the CLI mapping, the
  /// haten2-stats-v9 engine schema.
  struct Counters {
    int64_t epochs_sealed = 0;     ///< epochs the controller has seen sealed
    int64_t epochs_installed = 0;  ///< refits that reached the registry
    /// Model staleness right now: sealed epochs not yet serving. Nonzero
    /// while a refit is in flight or the loop has fallen behind ingest.
    int64_t epochs_behind = 0;
    int64_t max_epochs_behind = 0;  ///< worst staleness observed
    int64_t installed_version = 0;  ///< registry version now serving (0: none)
    /// Cumulative refit cost (merge/refit seconds, iterations, delta nnz)
    /// from the underlying session.
    RefitCounters refit;
  };

  /// Takes ownership of the base tensor. Nothing is fitted or installed
  /// until Bootstrap().
  RefitController(Engine* engine, ModelRegistry* registry, SparseTensor base,
                  Options options);

  /// Fits the base tensor (warm-started from the checkpoint directory when
  /// configured) and installs the model. Call once, before ProcessEpoch.
  Status Bootstrap();

  /// Ingests one sealed epoch: merge → refit → install. The epoch counts
  /// as sealed the moment this is called, so `epochs_behind` is visible to
  /// concurrent stats readers for the duration of the refit.
  Status ProcessEpoch(const SparseTensor& delta);

  /// Processes every sealed epoch of `log` the controller has not ingested
  /// yet, in order. Returns the number ingested. Epochs sealed into the
  /// log after this returns are picked up by the next call.
  Result<int64_t> CatchUp(const DeltaLog& log);

  Counters GetCounters() const;

  /// The underlying session (merged tensor, model, contract cache) — the
  /// controller stays the single writer; use from the refit thread only.
  const IncrementalRefitSession& session() const { return session_; }

  const Options& options() const { return options_; }

 private:
  Status InstallCurrent();

  ModelRegistry* registry_;
  Options options_;
  IncrementalRefitSession session_;
  int64_t next_log_epoch_ = 0;  // first log epoch not yet ingested

  mutable std::mutex mu_;  // guards the counter fields below
  int64_t epochs_sealed_ = 0;
  int64_t epochs_installed_ = 0;
  int64_t max_epochs_behind_ = 0;
  int64_t installed_version_ = 0;
};

}  // namespace haten2

#endif  // HATEN2_SERVING_REFIT_CONTROLLER_H_
