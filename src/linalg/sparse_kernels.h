#ifndef HATEN2_LINALG_SPARSE_KERNELS_H_
#define HATEN2_LINALG_SPARSE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"
#include "util/status.h"

namespace haten2 {

// In-core sparse contraction kernels (DFacTo-style). The IMHP dataflow
// shuffles one record per (nonzero, rank-cell); when the tensor fits in a
// worker's memory the same contraction collapses to two sparse
// matrix-vector style passes over a compressed slice-major layout. These
// kernels implement that fast path; `src/core/incore_contraction.cc` wraps
// them behind the ContractionStrategy interface.
//
// Accumulation-order contract: every kernel forms each entry's contribution
// as ((x · b_{c0}) · b_{c1}) · b_{c2}..., multiplying contracted-mode factor
// cells in ascending mode order — exactly the association the dataflow
// merge uses. Slices or fibers holding a single nonzero therefore produce
// bit-identical cells to the dataflow path; multi-entry sums agree to
// rounding (the dataflow reducer's hash-map iteration order is not
// reproducible either way).

/// Compressed slice-major layout of one (tensor, free mode) pair — "CSF-lite".
///
/// Entries are grouped first by their free-mode index ("slices", the output
/// rows), then by their coordinates on all contracted modes except the first
/// ("fibers"), leaving the first contracted mode as the innermost SpMV
/// stream. Only nonempty slices are stored; `slice_ids` maps the compressed
/// slice position back to the free-mode index.
struct CsfLayout {
  int free_mode = 0;
  int num_streams = 0;     // number of contracted modes S = order - 1
  std::vector<int> cmodes; // contracted modes, ascending, size S

  std::vector<int64_t> slice_ids;         // nonempty free-mode indices, ascending
  std::vector<int64_t> slice_fiber_begin; // size slices+1, fiber ranges
  std::vector<int64_t> fiber_entry_begin; // size fibers+1, entry ranges
  std::vector<int64_t> fiber_coords;      // fibers * (S-1): coords on cmodes[1..]
  std::vector<int64_t> entry_inner;       // per entry: coord on cmodes[0]
  std::vector<double> values;             // per entry: tensor value

  int64_t num_slices() const { return static_cast<int64_t>(slice_ids.size()); }
  int64_t num_fibers() const {
    return static_cast<int64_t>(fiber_entry_begin.empty()
                                    ? 0
                                    : fiber_entry_begin.size() - 1);
  }
  int64_t nnz() const { return static_cast<int64_t>(values.size()); }

  /// Actual heap footprint of the layout's arrays in bytes.
  uint64_t MemoryBytes() const;
};

/// Builds the compressed layout of `x` for contraction over every mode
/// except `free_mode`. Requires order >= 2 and canonical entry order is not
/// required (duplicate coordinates simply occupy adjacent entries of one
/// fiber and are summed by the kernels).
Result<CsfLayout> BuildCsfLayout(const SparseTensor& x, int free_mode);

/// MTTKRP over the layout (kPairwise): for each stored slice i,
///   out[i][r] = sum over entries in slice i of
///               x(e) * prod_s cfactors[s](coord_s(e), r).
/// `cfactors[s]` is the factor for mode `layout.cmodes[s]`; all must share
/// `rank` columns. `rows` is resized to layout.num_slices(), each row of
/// length `rank`, in `slice_ids` order. Evaluated as DFacTo's two passes:
/// an inner SpMV over the first contracted mode per fiber, then outer
/// scaling in ascending mode order — cache-blocked over rank.
Status CsfMttkrp(const CsfLayout& layout,
                 const std::vector<const DenseMatrix*>& cfactors, int rank,
                 std::vector<std::vector<double>>* rows);

/// Cross contraction over the layout (kCross): for each stored slice i the
/// output row is the dense block over all rank combinations,
///   out[i][q0 + w1*q1 + ...] = sum over entries of
///       x(e) * cfactors[0](i0, q0) * cfactors[1](i1, q1) * ...
/// with stream 0 varying fastest (w1 = block_dims[0], Kolda ordering — the
/// same weights the dataflow merge uses). `block_dims[s]` must equal
/// `cfactors[s]->cols()`. `rows` is resized to layout.num_slices(), each row
/// of length prod(block_dims).
Status CsfCrossContract(const CsfLayout& layout,
                        const std::vector<const DenseMatrix*>& cfactors,
                        const std::vector<int64_t>& block_dims,
                        std::vector<std::vector<double>>* rows);

/// Per-layout accounting of what PatchCsfLayout salvaged: clean slices
/// whose segments were copied verbatim vs dirty slices rebuilt from the
/// new tensor's entries.
struct CsfPatchCounters {
  int64_t slices_reused = 0;
  int64_t slices_rebuilt = 0;
};

/// Incrementally rebuilds a cached layout after a slice-local edit of the
/// tensor it was built from. `new_x` is the canonical post-edit tensor;
/// `dirty_slices` lists every free-mode index whose slice may differ
/// between the old tensor and `new_x` (duplicates/unsorted input are
/// tolerated). Segments of clean slices are copied verbatim — the layout's
/// arrays are purely positional, so a slice's fibers and entries relocate
/// without change — and dirty slices are rebuilt from `new_x`'s entries in
/// layout order. The result is array-identical to
/// `BuildCsfLayout(new_x, old_layout.free_mode)`: on canonical tensors the
/// build comparator is fully determined by coordinates, so per-slice order
/// cannot depend on the rest of the tensor. Returns kInternal if the edit
/// was not confined to `dirty_slices` (detected via an nnz mismatch).
Result<CsfLayout> PatchCsfLayout(const CsfLayout& old_layout,
                                 const SparseTensor& new_x,
                                 const std::vector<int64_t>& dirty_slices,
                                 CsfPatchCounters* counters = nullptr);

/// Content fingerprint of a tensor: mixes order, dims, nnz and every
/// (coordinate, value) entry. Used by ContractCache so a tensor rebuilt in
/// place (same address, same nnz, different content) is not mistaken for
/// the cached one. Full-content by design: an earlier sampled variant
/// collided on same-nnz edits at unsampled positions, exactly the shape of
/// an epoch-delta merge.
uint64_t TensorFingerprint(const SparseTensor& x);

}  // namespace haten2

#endif  // HATEN2_LINALG_SPARSE_KERNELS_H_
