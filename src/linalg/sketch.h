#ifndef HATEN2_LINALG_SKETCH_H_
#define HATEN2_LINALG_SKETCH_H_

#include <cstdint>
#include <string>

#include "tensor/dense_matrix.h"
#include "util/result.h"

namespace haten2 {

// Seeded random projection ("sketch") operators for the randomized Tucker
// range finder (core/sketched_tucker.h). A sketch compresses the Q-column
// space of a factor matrix down to `sketch_size` columns before the
// contraction runs, so the bottleneck op shuffles and reduces s-wide blocks
// instead of ПQ-wide ones.
//
// Every entry of a sketch operator is a pure function of (seed, row, column)
// through the splitmix64 finalizer — no stateful generator, no global RNG.
// Two calls with the same (kind, shape, seed) produce bit-identical
// matrices on any platform and in any call order, the same discipline the
// engine's failure injection and straggler jitter follow. That is what
// makes sketched runs resumable: a checkpoint restart re-derives the exact
// operators instead of having to persist them.

/// The two projection families of the randomized-Tucker literature.
enum class SketchKind {
  /// Dense i.i.d. N(0, 1/s) entries (Johnson–Lindenstrauss). Strongest
  /// accuracy per sketch column; O(Q·s) operator entries.
  kGaussian = 0,
  /// One ±1 per input row, in a uniformly chosen output column
  /// (Charikar–Chen–Farach-Colton). Sparse and cheaper to apply; slightly
  /// looser per-column accuracy.
  kCountSketch = 1,
};

/// "gaussian" / "countsketch" (the --tucker_sketch spellings).
const char* SketchKindName(SketchKind kind);

/// Inverse of SketchKindName. "none" and unknown names are
/// kInvalidArgument — callers gate the none case before parsing.
Result<SketchKind> ParseSketchKind(const std::string& name);

/// Materializes the sketch operator Ω ∈ R^{in_dim × sketch_size}.
/// Deterministic in (kind, in_dim, sketch_size, seed). Both dims must be
/// >= 1. The operators here are tiny (in_dim = a core dimension), so
/// materializing is cheaper than streaming the implicit entries.
Result<DenseMatrix> SketchOperator(SketchKind kind, int64_t in_dim,
                                   int64_t sketch_size, uint64_t seed);

/// Applies the sketch to a factor: returns A·Ω (a.rows() × sketch_size)
/// with Ω = SketchOperator(kind, a.cols(), sketch_size, seed). This is the
/// payload of the per-mode "Sketch[...]" plan nodes.
Result<DenseMatrix> ApplySketch(const DenseMatrix& a, SketchKind kind,
                                int64_t sketch_size, uint64_t seed);

/// The per-mode operator seed: mixes the run seed with the mode index so
/// each mode draws an independent operator while the whole family stays a
/// pure function of the run's --seed.
uint64_t SketchSeedForMode(uint64_t run_seed, int mode);

}  // namespace haten2

#endif  // HATEN2_LINALG_SKETCH_H_
