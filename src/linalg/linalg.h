#ifndef HATEN2_LINALG_LINALG_H_
#define HATEN2_LINALG_LINALG_H_

#include <vector>

#include "tensor/dense_matrix.h"
#include "util/result.h"

namespace haten2 {

// Dense linear-algebra kernels for the small matrices of the ALS algorithms
// (R x R Grams, I x R factors with small R). Everything is written for
// clarity and numerical robustness at these shapes — not for BLAS-scale
// performance, which the decompositions never need (R <= ~100 in the paper).

/// C = A · B. Shapes must be compatible.
Result<DenseMatrix> MatMul(const DenseMatrix& a, const DenseMatrix& b);

/// C = Aᵀ · B (avoids materializing the transpose).
Result<DenseMatrix> MatMulTransA(const DenseMatrix& a, const DenseMatrix& b);

/// Gram matrix AᵀA (cols(A) x cols(A)), symmetric by construction.
DenseMatrix Gram(const DenseMatrix& a);

/// Thin Householder QR of an m x n matrix with m >= n:
/// a = q · r with q m x n having orthonormal columns and r n x n upper
/// triangular.
struct QrResult {
  DenseMatrix q;
  DenseMatrix r;
};
Result<QrResult> QrDecompose(const DenseMatrix& a);

/// Symmetric eigendecomposition via the cyclic Jacobi method.
/// Returns eigenvalues in descending order with matching eigenvector columns.
struct EigResult {
  std::vector<double> eigenvalues;  // descending
  DenseMatrix eigenvectors;         // column j pairs with eigenvalues[j]
};
Result<EigResult> SymmetricEigen(const DenseMatrix& a,
                                 int max_sweeps = 64,
                                 double tol = 1e-12);

/// Thin singular value decomposition a = u · diag(s) · vᵀ.
/// For m >= n computed from the eigendecomposition of aᵀa (the Gram trick;
/// the only regime the decompositions use is very tall-thin or small square).
struct SvdResult {
  DenseMatrix u;                 // m x k
  std::vector<double> singular;  // descending, length k
  DenseMatrix v;                 // n x k
};
Result<SvdResult> Svd(const DenseMatrix& a);

/// Moore-Penrose pseudo-inverse via SVD with relative tolerance on singular
/// values (rank-deficient inputs are handled, which ALS requires: Gram
/// matrices of correlated factors go singular routinely).
Result<DenseMatrix> PseudoInverse(const DenseMatrix& a, double rtol = 1e-12);

/// `count` leading left singular vectors of a (columns of u). This is the
/// "P leading left singular vectors of Y_(1)" step of Tucker-ALS (Algorithm
/// 2, lines 4/6/8); computed with the Gram trick so only a
/// cols(a) x cols(a) eigenproblem is solved.
Result<DenseMatrix> LeadingLeftSingularVectors(const DenseMatrix& a,
                                               int64_t count);

/// Normalizes each column of m to unit 2-norm, storing the norms in *norms.
/// Zero columns get norm 0 and are left as zeros (ALS treats the component
/// as dead). This is the "normalize columns storing norms in λ" step of
/// PARAFAC-ALS.
void NormalizeColumns(DenseMatrix* m, std::vector<double>* norms);

/// Solves x · a = b for x given a square a (i.e. x = b · a⁻¹) using the
/// pseudo-inverse; the shape used by factor updates M · (gram)†.
Result<DenseMatrix> SolveRightPinv(const DenseMatrix& b, const DenseMatrix& a);

/// Relative reconstruction error ||a - b||_F / ||a||_F.
Result<double> RelativeError(const DenseMatrix& a, const DenseMatrix& b);

/// True when aᵀa is within `tol` of the identity (orthonormal columns).
bool HasOrthonormalColumns(const DenseMatrix& a, double tol = 1e-8);

}  // namespace haten2

#endif  // HATEN2_LINALG_LINALG_H_
