#include "linalg/sparse_kernels.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "util/string_util.h"

namespace haten2 {
namespace {

// Rank-blocking width for the MTTKRP inner loops: a 64-wide double buffer is
// 512 bytes, comfortably inside L1, and the fixed trip count lets the
// compiler unroll and vectorize the j-loops.
constexpr int kRankBlock = 64;

uint64_t Mix64(uint64_t h) {
  // splitmix64 finalizer.
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

Status ValidateKernelArgs(const CsfLayout& layout,
                          const std::vector<const DenseMatrix*>& cfactors) {
  if (layout.num_streams <= 0 ||
      static_cast<int>(layout.cmodes.size()) != layout.num_streams) {
    return Status::InvalidArgument("sparse_kernels: malformed layout");
  }
  if (static_cast<int>(cfactors.size()) != layout.num_streams) {
    return Status::InvalidArgument(
        StrFormat("sparse_kernels: expected %d contracted factors, got %zu",
                  layout.num_streams, cfactors.size()));
  }
  for (const DenseMatrix* f : cfactors) {
    if (f == nullptr) {
      return Status::InvalidArgument(
          "sparse_kernels: null contracted factor");
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t CsfLayout::MemoryBytes() const {
  uint64_t bytes = sizeof(CsfLayout);
  bytes += cmodes.capacity() * sizeof(int);
  bytes += slice_ids.capacity() * sizeof(int64_t);
  bytes += slice_fiber_begin.capacity() * sizeof(int64_t);
  bytes += fiber_entry_begin.capacity() * sizeof(int64_t);
  bytes += fiber_coords.capacity() * sizeof(int64_t);
  bytes += entry_inner.capacity() * sizeof(int64_t);
  bytes += values.capacity() * sizeof(double);
  return bytes;
}

Result<CsfLayout> BuildCsfLayout(const SparseTensor& x, int free_mode) {
  const int order = x.order();
  if (order < 2) {
    return Status::InvalidArgument(
        "BuildCsfLayout: tensor order must be >= 2");
  }
  if (free_mode < 0 || free_mode >= order) {
    return Status::InvalidArgument(
        StrFormat("BuildCsfLayout: free_mode %d out of range for %d-way",
                  free_mode, order));
  }

  CsfLayout layout;
  layout.free_mode = free_mode;
  layout.num_streams = order - 1;
  layout.cmodes.reserve(static_cast<size_t>(order - 1));
  for (int m = 0; m < order; ++m) {
    if (m != free_mode) layout.cmodes.push_back(m);
  }
  const int s = layout.num_streams;
  const int64_t nnz = x.nnz();

  // Sort permutation: slice (free coord) major, then outer fiber coords
  // cmodes[1..], then the innermost stream cmodes[0]. std::sort is fine —
  // layouts are built once and cached; stability is irrelevant because
  // the comparison covers the full coordinate tuple.
  std::vector<int64_t> perm(static_cast<size_t>(nnz));
  std::iota(perm.begin(), perm.end(), int64_t{0});
  const std::vector<int>& cmodes = layout.cmodes;
  std::sort(perm.begin(), perm.end(), [&](int64_t a, int64_t b) {
    const int64_t* ca = x.IndexPtr(a);
    const int64_t* cb = x.IndexPtr(b);
    if (ca[free_mode] != cb[free_mode]) {
      return ca[free_mode] < cb[free_mode];
    }
    for (int k = 1; k < s; ++k) {
      const int m = cmodes[static_cast<size_t>(k)];
      if (ca[m] != cb[m]) return ca[m] < cb[m];
    }
    const int m0 = cmodes[0];
    if (ca[m0] != cb[m0]) return ca[m0] < cb[m0];
    return a < b;  // duplicates keep append order
  });

  layout.entry_inner.reserve(static_cast<size_t>(nnz));
  layout.values.reserve(static_cast<size_t>(nnz));
  const int m0 = cmodes.empty() ? 0 : cmodes[0];
  for (int64_t p = 0; p < nnz; ++p) {
    const int64_t e = perm[static_cast<size_t>(p)];
    const int64_t* c = x.IndexPtr(e);
    const bool new_slice =
        p == 0 || c[free_mode] !=
                      x.IndexPtr(perm[static_cast<size_t>(p - 1)])[free_mode];
    bool new_fiber = new_slice;
    if (!new_fiber) {
      const int64_t* prev = x.IndexPtr(perm[static_cast<size_t>(p - 1)]);
      for (int k = 1; k < s; ++k) {
        const int m = cmodes[static_cast<size_t>(k)];
        if (c[m] != prev[m]) {
          new_fiber = true;
          break;
        }
      }
    }
    if (new_slice) {
      layout.slice_ids.push_back(c[free_mode]);
      layout.slice_fiber_begin.push_back(
          static_cast<int64_t>(layout.fiber_entry_begin.size()));
    }
    if (new_fiber) {
      layout.fiber_entry_begin.push_back(p);
      for (int k = 1; k < s; ++k) {
        layout.fiber_coords.push_back(c[cmodes[static_cast<size_t>(k)]]);
      }
    }
    layout.entry_inner.push_back(c[m0]);
    layout.values.push_back(x.value(e));
  }
  layout.fiber_entry_begin.push_back(nnz);
  layout.slice_fiber_begin.push_back(
      static_cast<int64_t>(layout.fiber_entry_begin.size()) - 1);
  return layout;
}

Result<CsfLayout> PatchCsfLayout(const CsfLayout& old_layout,
                                 const SparseTensor& new_x,
                                 const std::vector<int64_t>& dirty_slices,
                                 CsfPatchCounters* counters) {
  const int order = new_x.order();
  if (order < 2) {
    return Status::InvalidArgument(
        "PatchCsfLayout: tensor order must be >= 2");
  }
  if (old_layout.free_mode < 0 || old_layout.free_mode >= order ||
      old_layout.num_streams != order - 1 ||
      static_cast<int>(old_layout.cmodes.size()) != old_layout.num_streams) {
    return Status::InvalidArgument(
        "PatchCsfLayout: layout does not match the tensor's order");
  }
  const int free_mode = old_layout.free_mode;
  const int s = old_layout.num_streams;
  const std::vector<int>& cmodes = old_layout.cmodes;
  const int m0 = cmodes[0];

  std::vector<int64_t> dirty(dirty_slices);
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  const auto is_dirty = [&](int64_t id) {
    return std::binary_search(dirty.begin(), dirty.end(), id);
  };

  // Bucket the new tensor's dirty-slice entries by slice id and sort each
  // bucket exactly as BuildCsfLayout orders entries within a slice: outer
  // fiber coords cmodes[1..], then the innermost stream cmodes[0]. The
  // entry-index tiebreak matches the build comparator's; on a canonical
  // tensor coordinates are unique so it never decides the order.
  std::unordered_map<int64_t, std::vector<int64_t>> buckets;
  for (int64_t e = 0; e < new_x.nnz(); ++e) {
    const int64_t id = new_x.IndexPtr(e)[free_mode];
    if (is_dirty(id)) buckets[id].push_back(e);
  }
  const auto layout_less = [&](int64_t a, int64_t b) {
    const int64_t* ca = new_x.IndexPtr(a);
    const int64_t* cb = new_x.IndexPtr(b);
    for (int k = 1; k < s; ++k) {
      const int m = cmodes[static_cast<size_t>(k)];
      if (ca[m] != cb[m]) return ca[m] < cb[m];
    }
    if (ca[m0] != cb[m0]) return ca[m0] < cb[m0];
    return a < b;
  };
  for (auto& [id, entries] : buckets) {
    std::sort(entries.begin(), entries.end(), layout_less);
  }

  CsfLayout out;
  out.free_mode = free_mode;
  out.num_streams = s;
  out.cmodes = cmodes;

  CsfPatchCounters local;
  const auto begin_slice = [&](int64_t id) {
    out.slice_ids.push_back(id);
    out.slice_fiber_begin.push_back(
        static_cast<int64_t>(out.fiber_entry_begin.size()));
  };
  // Clean slice: the positional arrays make its fibers and entries
  // relocatable, so splice the old segment verbatim.
  const auto copy_old_slice = [&](int64_t oi) {
    begin_slice(old_layout.slice_ids[static_cast<size_t>(oi)]);
    const int64_t fb = old_layout.slice_fiber_begin[static_cast<size_t>(oi)];
    const int64_t fe =
        old_layout.slice_fiber_begin[static_cast<size_t>(oi) + 1];
    const int64_t eb = old_layout.fiber_entry_begin[static_cast<size_t>(fb)];
    const int64_t ee = old_layout.fiber_entry_begin[static_cast<size_t>(fe)];
    // Rebase each fiber's entry offset from the old layout's coordinates
    // to the spliced position: fibers keep their *relative* begins within
    // the slice, shifted to where the slice now starts.
    const int64_t base = static_cast<int64_t>(out.entry_inner.size());
    for (int64_t f = fb; f < fe; ++f) {
      out.fiber_entry_begin.push_back(
          base + old_layout.fiber_entry_begin[static_cast<size_t>(f)] - eb);
      for (int k = 0; k < s - 1; ++k) {
        out.fiber_coords.push_back(
            old_layout.fiber_coords[static_cast<size_t>(f * (s - 1) + k)]);
      }
    }
    out.entry_inner.insert(out.entry_inner.end(),
                           old_layout.entry_inner.begin() + eb,
                           old_layout.entry_inner.begin() + ee);
    out.values.insert(out.values.end(), old_layout.values.begin() + eb,
                      old_layout.values.begin() + ee);
    ++local.slices_reused;
  };
  // Dirty slice: rebuild from the new tensor's (sorted) entries. A slice
  // whose entries all cancelled simply vanishes, like any empty slice.
  const auto rebuild_slice = [&](int64_t id) {
    const auto it = buckets.find(id);
    if (it == buckets.end() || it->second.empty()) return;
    begin_slice(id);
    const std::vector<int64_t>& entries = it->second;
    const int64_t* prev = nullptr;
    for (int64_t e : entries) {
      const int64_t* c = new_x.IndexPtr(e);
      bool new_fiber = prev == nullptr;
      for (int k = 1; !new_fiber && k < s; ++k) {
        const int m = cmodes[static_cast<size_t>(k)];
        if (c[m] != prev[m]) new_fiber = true;
      }
      if (new_fiber) {
        out.fiber_entry_begin.push_back(
            static_cast<int64_t>(out.entry_inner.size()));
        for (int k = 1; k < s; ++k) {
          out.fiber_coords.push_back(c[cmodes[static_cast<size_t>(k)]]);
        }
      }
      out.entry_inner.push_back(c[m0]);
      out.values.push_back(new_x.value(e));
      prev = c;
    }
    ++local.slices_rebuilt;
  };

  // Merge ascending over the union of the old layout's slice ids and the
  // dirty set: clean old slices are copied, dirty ids (present in the old
  // layout or newly nonempty) are rebuilt.
  const int64_t old_slices = old_layout.num_slices();
  int64_t oi = 0;
  size_t di = 0;
  while (oi < old_slices || di < dirty.size()) {
    const int64_t old_id = oi < old_slices
                               ? old_layout.slice_ids[static_cast<size_t>(oi)]
                               : 0;
    if (di >= dirty.size() || (oi < old_slices && old_id < dirty[di])) {
      copy_old_slice(oi++);
      continue;
    }
    const int64_t dirty_id = dirty[di++];
    if (oi < old_slices && old_id == dirty_id) ++oi;
    rebuild_slice(dirty_id);
  }
  out.fiber_entry_begin.push_back(out.nnz());
  out.slice_fiber_begin.push_back(
      static_cast<int64_t>(out.fiber_entry_begin.size()) - 1);

  if (out.nnz() != new_x.nnz()) {
    return Status::Internal(StrFormat(
        "PatchCsfLayout: patched layout has %lld entries but the tensor has "
        "%lld — the edit was not confined to the declared dirty slices",
        static_cast<long long>(out.nnz()),
        static_cast<long long>(new_x.nnz())));
  }
  if (counters != nullptr) *counters = local;
  return out;
}

Status CsfMttkrp(const CsfLayout& layout,
                 const std::vector<const DenseMatrix*>& cfactors, int rank,
                 std::vector<std::vector<double>>* rows) {
  Status st = ValidateKernelArgs(layout, cfactors);
  if (!st.ok()) return st;
  if (rank <= 0) {
    return Status::InvalidArgument("CsfMttkrp: rank must be positive");
  }
  for (const DenseMatrix* f : cfactors) {
    if (f->cols() != rank) {
      return Status::InvalidArgument(
          StrFormat("CsfMttkrp: factor has %lld columns, expected rank %d",
                    static_cast<long long>(f->cols()), rank));
    }
  }
  if (rows == nullptr) {
    return Status::InvalidArgument("CsfMttkrp: null output");
  }

  const int s = layout.num_streams;
  const int64_t num_slices = layout.num_slices();
  rows->assign(static_cast<size_t>(num_slices),
               std::vector<double>(static_cast<size_t>(rank), 0.0));

  double t[kRankBlock];
  for (int r0 = 0; r0 < rank; r0 += kRankBlock) {
    const int rb = std::min(kRankBlock, rank - r0);
    for (int64_t si = 0; si < num_slices; ++si) {
      double* row = (*rows)[static_cast<size_t>(si)].data() + r0;
      const int64_t fb = layout.slice_fiber_begin[static_cast<size_t>(si)];
      const int64_t fe = layout.slice_fiber_begin[static_cast<size_t>(si) + 1];
      for (int64_t f = fb; f < fe; ++f) {
        // Pass 1 (SpMV): inner product over the first contracted mode.
        std::memset(t, 0, sizeof(double) * static_cast<size_t>(rb));
        const int64_t eb = layout.fiber_entry_begin[static_cast<size_t>(f)];
        const int64_t ee = layout.fiber_entry_begin[static_cast<size_t>(f) + 1];
        for (int64_t e = eb; e < ee; ++e) {
          const double v = layout.values[static_cast<size_t>(e)];
          const double* a0 =
              cfactors[0]->RowPtr(layout.entry_inner[static_cast<size_t>(e)]) +
              r0;
          for (int j = 0; j < rb; ++j) t[j] += v * a0[j];
        }
        // Pass 2: scale by the outer contracted factors, ascending mode
        // order (matches the dataflow merge's product association).
        const int64_t* oc =
            layout.fiber_coords.data() + f * (s - 1);
        for (int k = 1; k < s; ++k) {
          const double* ak = cfactors[static_cast<size_t>(k)]->RowPtr(
                                 oc[k - 1]) +
                             r0;
          for (int j = 0; j < rb; ++j) t[j] *= ak[j];
        }
        for (int j = 0; j < rb; ++j) row[j] += t[j];
      }
    }
  }
  return Status::OK();
}

Status CsfCrossContract(const CsfLayout& layout,
                        const std::vector<const DenseMatrix*>& cfactors,
                        const std::vector<int64_t>& block_dims,
                        std::vector<std::vector<double>>* rows) {
  Status st = ValidateKernelArgs(layout, cfactors);
  if (!st.ok()) return st;
  if (static_cast<int>(block_dims.size()) != layout.num_streams) {
    return Status::InvalidArgument(
        "CsfCrossContract: block_dims arity mismatch");
  }
  int64_t block = 1;
  for (size_t k = 0; k < block_dims.size(); ++k) {
    if (block_dims[k] <= 0 || cfactors[k]->cols() != block_dims[k]) {
      return Status::InvalidArgument(
          "CsfCrossContract: block_dims must match factor columns");
    }
    block *= block_dims[k];
  }
  if (rows == nullptr) {
    return Status::InvalidArgument("CsfCrossContract: null output");
  }

  const int s = layout.num_streams;
  const int64_t num_slices = layout.num_slices();
  const int64_t r0dim = block_dims[0];
  rows->assign(static_cast<size_t>(num_slices),
               std::vector<double>(static_cast<size_t>(block), 0.0));

  std::vector<double> t(static_cast<size_t>(r0dim));
  std::vector<int64_t> q(static_cast<size_t>(s), 0);
  for (int64_t si = 0; si < num_slices; ++si) {
    double* row = (*rows)[static_cast<size_t>(si)].data();
    const int64_t fb = layout.slice_fiber_begin[static_cast<size_t>(si)];
    const int64_t fe = layout.slice_fiber_begin[static_cast<size_t>(si) + 1];
    for (int64_t f = fb; f < fe; ++f) {
      // Inner pass: accumulate the stream-0 rank profile of the fiber.
      std::fill(t.begin(), t.end(), 0.0);
      const int64_t eb = layout.fiber_entry_begin[static_cast<size_t>(f)];
      const int64_t ee = layout.fiber_entry_begin[static_cast<size_t>(f) + 1];
      for (int64_t e = eb; e < ee; ++e) {
        const double v = layout.values[static_cast<size_t>(e)];
        const double* a0 =
            cfactors[0]->RowPtr(layout.entry_inner[static_cast<size_t>(e)]);
        for (int64_t j = 0; j < r0dim; ++j) t[static_cast<size_t>(j)] += v * a0[j];
      }
      // Outer pass: odometer over the remaining streams, stream 0 fastest
      // in the flattened block (the dataflow BlockWeights ordering). The
      // per-cell chain multiplies ascending so singleton fibers reproduce
      // the dataflow bits exactly.
      const int64_t* oc = layout.fiber_coords.data() + f * (s - 1);
      std::fill(q.begin(), q.end(), 0);
      for (;;) {
        int64_t offset = 0;
        int64_t weight = r0dim;
        for (int k = 1; k < s; ++k) {
          offset += q[static_cast<size_t>(k)] * weight;
          weight *= block_dims[static_cast<size_t>(k)];
        }
        for (int64_t j = 0; j < r0dim; ++j) {
          double p = t[static_cast<size_t>(j)];
          if (p == 0.0) continue;
          for (int k = 1; k < s; ++k) {
            p *= (*cfactors[static_cast<size_t>(k)])(oc[k - 1],
                                                     q[static_cast<size_t>(k)]);
          }
          row[offset + j] += p;
        }
        int k = 1;
        while (k < s) {
          if (++q[static_cast<size_t>(k)] < block_dims[static_cast<size_t>(k)]) {
            break;
          }
          q[static_cast<size_t>(k)] = 0;
          ++k;
        }
        if (k >= s) break;
      }
    }
  }
  return Status::OK();
}

uint64_t TensorFingerprint(const SparseTensor& x) {
  uint64_t h = 0x686174656e320000ULL;  // "haten2" tag
  h = HashCombine(h, static_cast<uint64_t>(x.order()));
  for (int64_t d : x.dims()) h = HashCombine(h, static_cast<uint64_t>(d));
  const int64_t nnz = x.nnz();
  h = HashCombine(h, static_cast<uint64_t>(nnz));
  // Hash every entry's full coordinate tuple and raw value bits. This must
  // be full-content: the cache guards against in-place rebuilds, and an
  // epoch-delta merge routinely changes a handful of values at arbitrary
  // positions without moving nnz, which an evenly-sampled hash misses. The
  // O(nnz) pass is noise next to the O(nnz·rank) contraction a hit saves.
  const int order = x.order();
  for (int64_t e = 0; e < nnz; ++e) {
    const int64_t* c = x.IndexPtr(e);
    for (int m = 0; m < order; ++m) {
      h = HashCombine(h, static_cast<uint64_t>(c[m]));
    }
    uint64_t bits;
    const double v = x.value(e);
    std::memcpy(&bits, &v, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

}  // namespace haten2
