#include "linalg/sketch.h"

#include <cmath>

#include "linalg/linalg.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

/// splitmix64 finalizer (same constants as mapreduce/hash.h; duplicated so
/// linalg stays independent of the engine layer).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in (0, 1]: the top 53 bits as a double, nudged off zero so
/// the Box–Muller log never sees 0.
double ToUnitOpen(uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

/// Per-entry hash: one well-mixed word per (seed, flattened index, salt).
uint64_t EntryHash(uint64_t seed, uint64_t index, uint64_t salt) {
  return Mix64(seed ^ Mix64(index * 1000003ULL + salt));
}

constexpr uint64_t kGaussianSalt = 0x5ce7c401ULL;
constexpr uint64_t kCountSketchBucketSalt = 0x5ce7c402ULL;
constexpr uint64_t kCountSketchSignSalt = 0x5ce7c403ULL;
constexpr uint64_t kModeSeedSalt = 0x5ce7c404ULL;

}  // namespace

const char* SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kGaussian:
      return "gaussian";
    case SketchKind::kCountSketch:
      return "countsketch";
  }
  return "unknown";
}

Result<SketchKind> ParseSketchKind(const std::string& name) {
  if (name == "gaussian") return SketchKind::kGaussian;
  if (name == "countsketch") return SketchKind::kCountSketch;
  return Status::InvalidArgument(
      StrFormat("unknown sketch kind \"%s\" (want gaussian or countsketch)",
                name.c_str()));
}

Result<DenseMatrix> SketchOperator(SketchKind kind, int64_t in_dim,
                                   int64_t sketch_size, uint64_t seed) {
  if (in_dim < 1) {
    return Status::InvalidArgument(
        StrFormat("sketch input dimension must be >= 1, got %lld",
                  (long long)in_dim));
  }
  if (sketch_size < 1) {
    return Status::InvalidArgument(StrFormat(
        "sketch_size must be >= 1, got %lld", (long long)sketch_size));
  }
  DenseMatrix omega(in_dim, sketch_size);
  if (kind == SketchKind::kGaussian) {
    // N(0, 1/s) entries via Box–Muller on two counter-hashed uniforms, so
    // the sketch E[ΩΩᵀ] = I/s · s = I preserves norms in expectation.
    const double scale = 1.0 / std::sqrt(static_cast<double>(sketch_size));
    for (int64_t q = 0; q < in_dim; ++q) {
      for (int64_t j = 0; j < sketch_size; ++j) {
        const uint64_t index =
            static_cast<uint64_t>(q) * static_cast<uint64_t>(sketch_size) +
            static_cast<uint64_t>(j);
        const double u1 = ToUnitOpen(EntryHash(seed, 2 * index, kGaussianSalt));
        const double u2 =
            ToUnitOpen(EntryHash(seed, 2 * index + 1, kGaussianSalt));
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(2.0 * M_PI * u2);
        omega(q, j) = z * scale;
      }
    }
  } else {
    // CountSketch: row q carries a single ±1 in bucket h(q).
    for (int64_t q = 0; q < in_dim; ++q) {
      const uint64_t uq = static_cast<uint64_t>(q);
      const int64_t bucket = static_cast<int64_t>(
          EntryHash(seed, uq, kCountSketchBucketSalt) %
          static_cast<uint64_t>(sketch_size));
      const double sign =
          (EntryHash(seed, uq, kCountSketchSignSalt) & 1ULL) ? 1.0 : -1.0;
      omega(q, bucket) = sign;
    }
  }
  return omega;
}

Result<DenseMatrix> ApplySketch(const DenseMatrix& a, SketchKind kind,
                                int64_t sketch_size, uint64_t seed) {
  HATEN2_ASSIGN_OR_RETURN(
      DenseMatrix omega, SketchOperator(kind, a.cols(), sketch_size, seed));
  return MatMul(a, omega);
}

uint64_t SketchSeedForMode(uint64_t run_seed, int mode) {
  return Mix64(run_seed ^ Mix64(static_cast<uint64_t>(mode) * 1000003ULL +
                                kModeSeedSalt));
}

}  // namespace haten2
