#include "linalg/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

Status CheckMulShapes(const DenseMatrix& b, int64_t inner_a,
                      const char* what) {
  if (inner_a != b.rows()) {
    return Status::InvalidArgument(
        StrFormat("%s: inner dimensions %lld and %lld do not match", what,
                  (long long)inner_a, (long long)b.rows()));
  }
  return Status::OK();
}

}  // namespace

Result<DenseMatrix> MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  HATEN2_RETURN_IF_ERROR(CheckMulShapes(b, a.cols(), "MatMul"));
  DenseMatrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (int64_t k = 0; k < a.cols(); ++k) {
      double av = arow[k];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int64_t j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Result<DenseMatrix> MatMulTransA(const DenseMatrix& a, const DenseMatrix& b) {
  HATEN2_RETURN_IF_ERROR(CheckMulShapes(b, a.rows(), "MatMulTransA"));
  DenseMatrix c(a.cols(), b.cols());
  for (int64_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.RowPtr(k);
    const double* brow = b.RowPtr(k);
    for (int64_t i = 0; i < a.cols(); ++i) {
      double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.RowPtr(i);
      for (int64_t j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

DenseMatrix Gram(const DenseMatrix& a) {
  DenseMatrix g(a.cols(), a.cols());
  for (int64_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.RowPtr(k);
    for (int64_t i = 0; i < a.cols(); ++i) {
      double av = arow[i];
      if (av == 0.0) continue;
      double* grow = g.RowPtr(i);
      for (int64_t j = i; j < a.cols(); ++j) grow[j] += av * arow[j];
    }
  }
  // Mirror the upper triangle.
  for (int64_t i = 0; i < a.cols(); ++i) {
    for (int64_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Result<QrResult> QrDecompose(const DenseMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument(
        "QrDecompose requires rows >= cols (thin QR)");
  }
  if (n == 0) {
    return Status::InvalidArgument("QrDecompose on an empty matrix");
  }
  // Work on a copy; accumulate Householder vectors in-place below the
  // diagonal, R on and above it.
  DenseMatrix work = a;
  std::vector<double> betas(static_cast<size_t>(n), 0.0);
  std::vector<double> v0s(static_cast<size_t>(n), 0.0);
  for (int64_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (int64_t i = k; i < m; ++i) norm += work(i, k) * work(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      betas[static_cast<size_t>(k)] = 0.0;
      continue;
    }
    double alpha = work(k, k) >= 0 ? -norm : norm;
    double v0 = work(k, k) - alpha;
    // v = (v0, work(k+1..m-1, k)); beta = 2 / (vᵀv)
    double vtv = v0 * v0;
    for (int64_t i = k + 1; i < m; ++i) vtv += work(i, k) * work(i, k);
    if (vtv == 0.0) {
      betas[static_cast<size_t>(k)] = 0.0;
      work(k, k) = alpha;
      continue;
    }
    double beta = 2.0 / vtv;
    // Apply H = I - beta v vᵀ to the trailing columns.
    for (int64_t j = k + 1; j < n; ++j) {
      double dot = v0 * work(k, j);
      for (int64_t i = k + 1; i < m; ++i) dot += work(i, k) * work(i, j);
      dot *= beta;
      work(k, j) -= dot * v0;
      for (int64_t i = k + 1; i < m; ++i) work(i, j) -= dot * work(i, k);
    }
    work(k, k) = alpha;
    // Rows k+1..m-1 of column k already hold the tail of v; v0 and beta are
    // kept in side arrays for the Q accumulation below.
    betas[static_cast<size_t>(k)] = beta;
    v0s[static_cast<size_t>(k)] = v0;
  }
  // Build Q by applying the Householder reflectors to the first n columns of
  // the identity, in reverse order.
  DenseMatrix q(m, n);
  for (int64_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (int64_t k = n - 1; k >= 0; --k) {
    double beta = betas[static_cast<size_t>(k)];
    if (beta == 0.0) continue;
    double v0 = v0s[static_cast<size_t>(k)];
    for (int64_t j = 0; j < n; ++j) {
      double dot = v0 * q(k, j);
      for (int64_t i = k + 1; i < m; ++i) dot += work(i, k) * q(i, j);
      dot *= beta;
      q(k, j) -= dot * v0;
      for (int64_t i = k + 1; i < m; ++i) q(i, j) -= dot * work(i, k);
    }
  }
  DenseMatrix r(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) r(i, j) = work(i, j);
  }
  return QrResult{std::move(q), std::move(r)};
}

Result<EigResult> SymmetricEigen(const DenseMatrix& a, int max_sweeps,
                                 double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const int64_t n = a.rows();
  if (n == 0) {
    return Status::InvalidArgument("SymmetricEigen on an empty matrix");
  }
  // Symmetry check (cheap and catches caller bugs early).
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double scale = std::max({std::fabs(a(i, j)), std::fabs(a(j, i)), 1.0});
      if (std::fabs(a(i, j) - a(j, i)) > 1e-8 * scale) {
        return Status::InvalidArgument(
            "SymmetricEigen: matrix is not symmetric");
      }
    }
  }
  DenseMatrix w = a;
  DenseMatrix v = DenseMatrix::Identity(n);
  double frob = w.FrobeniusNorm();
  if (frob == 0.0) frob = 1.0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) off += w(i, j) * w(i, j);
    }
    if (std::sqrt(2.0 * off) <= tol * frob) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = w(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        double app = w(p, p);
        double aqq = w(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Rotate rows/columns p and q of w.
        for (int64_t k = 0; k < n; ++k) {
          double wkp = w(k, p);
          double wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double wpk = w(p, k);
          double wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v(k, p);
          double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  // Sort eigenpairs by descending eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) diag[static_cast<size_t>(i)] = w(i, i);
  std::sort(order.begin(), order.end(), [&diag](int64_t x, int64_t y) {
    return diag[static_cast<size_t>(x)] > diag[static_cast<size_t>(y)];
  });
  EigResult out;
  out.eigenvalues.resize(static_cast<size_t>(n));
  out.eigenvectors = DenseMatrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    int64_t src = order[static_cast<size_t>(j)];
    out.eigenvalues[static_cast<size_t>(j)] = diag[static_cast<size_t>(src)];
    for (int64_t i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, src);
  }
  return out;
}

Result<SvdResult> Svd(const DenseMatrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("Svd on an empty matrix");
  }
  if (a.rows() < a.cols()) {
    // Recurse on the transpose and swap factors.
    HATEN2_ASSIGN_OR_RETURN(SvdResult t, Svd(a.Transposed()));
    return SvdResult{std::move(t.v), std::move(t.singular), std::move(t.u)};
  }
  const int64_t n = a.cols();
  DenseMatrix gram = Gram(a);
  HATEN2_ASSIGN_OR_RETURN(EigResult eig, SymmetricEigen(gram));
  SvdResult out;
  out.singular.resize(static_cast<size_t>(n));
  out.v = DenseMatrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    double ev = std::max(eig.eigenvalues[static_cast<size_t>(j)], 0.0);
    out.singular[static_cast<size_t>(j)] = std::sqrt(ev);
    for (int64_t i = 0; i < n; ++i) {
      out.v(i, j) = eig.eigenvectors(i, j);
    }
  }
  // u_j = a v_j / s_j for significant singular values; zero otherwise.
  double smax = out.singular.empty() ? 0.0 : out.singular[0];
  double cutoff = smax * 1e-13;
  out.u = DenseMatrix(a.rows(), n);
  for (int64_t j = 0; j < n; ++j) {
    double s = out.singular[static_cast<size_t>(j)];
    if (s <= cutoff) continue;
    for (int64_t i = 0; i < a.rows(); ++i) {
      double dot = 0.0;
      const double* arow = a.RowPtr(i);
      for (int64_t k = 0; k < n; ++k) dot += arow[k] * out.v(k, j);
      out.u(i, j) = dot / s;
    }
  }
  return out;
}

Result<DenseMatrix> PseudoInverse(const DenseMatrix& a, double rtol) {
  HATEN2_ASSIGN_OR_RETURN(SvdResult svd, Svd(a));
  double smax = 0.0;
  for (double s : svd.singular) smax = std::max(smax, s);
  double cutoff = smax * rtol;
  // pinv = V diag(1/s) Uᵀ, dropping singular values below the cutoff.
  DenseMatrix pinv(a.cols(), a.rows());
  const int64_t k = static_cast<int64_t>(svd.singular.size());
  for (int64_t j = 0; j < k; ++j) {
    double s = svd.singular[static_cast<size_t>(j)];
    if (s <= cutoff || s == 0.0) continue;
    double inv = 1.0 / s;
    for (int64_t r = 0; r < a.cols(); ++r) {
      double vr = svd.v(r, j) * inv;
      if (vr == 0.0) continue;
      double* prow = pinv.RowPtr(r);
      for (int64_t c = 0; c < a.rows(); ++c) {
        prow[c] += vr * svd.u(c, j);
      }
    }
  }
  return pinv;
}

Result<DenseMatrix> LeadingLeftSingularVectors(const DenseMatrix& a,
                                               int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument("count must be positive");
  }
  if (count > a.rows()) {
    return Status::InvalidArgument(StrFormat(
        "cannot extract %lld orthonormal columns from %lld-row matrix",
        (long long)count, (long long)a.rows()));
  }
  HATEN2_ASSIGN_OR_RETURN(SvdResult svd, Svd(a));
  double smax = svd.singular.empty() ? 0.0 : svd.singular[0];
  // The Gram trick loses half the precision: eigenvalues of aᵀa carry
  // ~1e-16 relative noise, i.e. ~1e-8 in singular-value space. A tighter
  // cutoff would admit junk directions u = a·v/s with near-null v.
  double cutoff = smax * 1e-7;
  DenseMatrix out(a.rows(), count);
  int64_t have = std::min<int64_t>(count,
                                   static_cast<int64_t>(svd.singular.size()));
  int64_t valid = 0;
  for (int64_t j = 0; j < have; ++j) {
    if (svd.singular[static_cast<size_t>(j)] <= cutoff) break;
    // Re-normalize: u from the Gram trick can drift off unit length for
    // small singular values.
    double norm = 0.0;
    for (int64_t i = 0; i < a.rows(); ++i) norm += svd.u(i, j) * svd.u(i, j);
    norm = std::sqrt(norm);
    if (norm < 0.5 || norm > 2.0) break;  // numerically unreliable direction
    for (int64_t i = 0; i < a.rows(); ++i) out(i, j) = svd.u(i, j) / norm;
    ++valid;
  }
  // Rank-deficient input: complete the basis with orthonormalized canonical
  // vectors so the factor matrix stays orthonormal (dead Tucker components).
  int64_t next_basis = 0;
  for (int64_t j = valid; j < count; ++j) {
    bool placed = false;
    while (next_basis < a.rows() && !placed) {
      std::vector<double> cand(static_cast<size_t>(a.rows()), 0.0);
      cand[static_cast<size_t>(next_basis)] = 1.0;
      ++next_basis;
      // Gram-Schmidt against columns 0..j-1.
      for (int64_t c = 0; c < j; ++c) {
        double dot = 0.0;
        for (int64_t i = 0; i < a.rows(); ++i) {
          dot += cand[static_cast<size_t>(i)] * out(i, c);
        }
        for (int64_t i = 0; i < a.rows(); ++i) {
          cand[static_cast<size_t>(i)] -= dot * out(i, c);
        }
      }
      double norm = 0.0;
      for (double v : cand) norm += v * v;
      norm = std::sqrt(norm);
      if (norm > 1e-8) {
        for (int64_t i = 0; i < a.rows(); ++i) {
          out(i, j) = cand[static_cast<size_t>(i)] / norm;
        }
        placed = true;
      }
    }
    if (!placed) {
      return Status::Internal(
          "failed to complete an orthonormal basis (should be impossible "
          "for count <= rows)");
    }
  }
  return out;
}

void NormalizeColumns(DenseMatrix* m, std::vector<double>* norms) {
  norms->assign(static_cast<size_t>(m->cols()), 0.0);
  for (int64_t j = 0; j < m->cols(); ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < m->rows(); ++i) s += (*m)(i, j) * (*m)(i, j);
    s = std::sqrt(s);
    (*norms)[static_cast<size_t>(j)] = s;
    if (s > 0.0) {
      for (int64_t i = 0; i < m->rows(); ++i) (*m)(i, j) /= s;
    }
  }
}

Result<DenseMatrix> SolveRightPinv(const DenseMatrix& b,
                                   const DenseMatrix& a) {
  HATEN2_ASSIGN_OR_RETURN(DenseMatrix pinv, PseudoInverse(a));
  return MatMul(b, pinv);
}

Result<double> RelativeError(const DenseMatrix& a, const DenseMatrix& b) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("RelativeError shape mismatch");
  }
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    double d = a.data()[i] - b.data()[i];
    num += d * d;
    den += a.data()[i] * a.data()[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : 1.0;
  return std::sqrt(num / den);
}

bool HasOrthonormalColumns(const DenseMatrix& a, double tol) {
  DenseMatrix g = Gram(a);
  for (int64_t i = 0; i < g.rows(); ++i) {
    for (int64_t j = 0; j < g.cols(); ++j) {
      double want = (i == j) ? 1.0 : 0.0;
      if (std::fabs(g(i, j) - want) > tol) return false;
    }
  }
  return true;
}

}  // namespace haten2
