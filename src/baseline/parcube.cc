#include "baseline/parcube.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "linalg/linalg.h"
#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

/// Local index of `global` within the sorted `kept` list.
int64_t LocalIndex(const std::vector<int64_t>& kept, int64_t global) {
  auto it = std::lower_bound(kept.begin(), kept.end(), global);
  return static_cast<int64_t>(it - kept.begin());
}

/// Cosine similarity between a reference component and a sample component
/// evaluated on the anchor rows, summed over modes.
double AnchorSimilarity(
    const KruskalModel& reference, const KruskalModel& sample,
    const std::vector<std::vector<int64_t>>& anchors,
    const std::vector<std::vector<int64_t>>& ref_kept,
    const std::vector<std::vector<int64_t>>& sample_kept, int64_t ref_col,
    int64_t sample_col) {
  double total = 0.0;
  for (size_t m = 0; m < anchors.size(); ++m) {
    double dot = 0.0;
    double ref_sq = 0.0;
    double sample_sq = 0.0;
    for (int64_t anchor : anchors[m]) {
      double rv = reference.factors[m](LocalIndex(ref_kept[m], anchor),
                                       ref_col);
      double sv = sample.factors[m](LocalIndex(sample_kept[m], anchor),
                                    sample_col);
      dot += rv * sv;
      ref_sq += rv * rv;
      sample_sq += sv * sv;
    }
    if (ref_sq > 0.0 && sample_sq > 0.0) {
      total += dot / std::sqrt(ref_sq * sample_sq);
    }
  }
  return total;
}

}  // namespace

std::vector<std::vector<double>> ComputeMarginals(const SparseTensor& x) {
  std::vector<std::vector<double>> marginals(
      static_cast<size_t>(x.order()));
  for (int m = 0; m < x.order(); ++m) {
    marginals[static_cast<size_t>(m)].assign(
        static_cast<size_t>(x.dim(m)), 0.0);
  }
  for (int64_t e = 0; e < x.nnz(); ++e) {
    double mass = std::fabs(x.value(e));
    for (int m = 0; m < x.order(); ++m) {
      marginals[static_cast<size_t>(m)][static_cast<size_t>(
          x.index(e, m))] += mass;
    }
  }
  return marginals;
}

std::vector<int64_t> BiasedSample(const std::vector<double>& weights,
                                  int64_t count,
                                  const std::vector<int64_t>& anchors,
                                  Rng* rng) {
  const int64_t n = static_cast<int64_t>(weights.size());
  count = std::min(count, n);
  std::vector<bool> taken(weights.size(), false);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t a : anchors) {
    if (a >= 0 && a < n && !taken[static_cast<size_t>(a)]) {
      taken[static_cast<size_t>(a)] = true;
      out.push_back(a);
    }
  }
  // Weighted sampling without replacement via exponential keys
  // (Efraimidis-Spirakis): smallest -ln(u)/w first. Zero-weight indices get
  // effectively infinite keys, i.e. a uniform tail.
  std::vector<std::pair<double, int64_t>> keys;
  keys.reserve(weights.size());
  for (int64_t i = 0; i < n; ++i) {
    if (taken[static_cast<size_t>(i)]) continue;
    double u = std::max(rng->Uniform(), 1e-300);
    double w = weights[static_cast<size_t>(i)];
    double key = w > 0.0 ? -std::log(u) / w : 1e300 + u;
    keys.emplace_back(key, i);
  }
  std::sort(keys.begin(), keys.end());
  for (size_t k = 0;
       k < keys.size() && static_cast<int64_t>(out.size()) < count; ++k) {
    out.push_back(keys[k].second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<SparseTensor> ExtractSubTensor(
    const SparseTensor& x, const std::vector<std::vector<int64_t>>& kept) {
  if (static_cast<int>(kept.size()) != x.order()) {
    return Status::InvalidArgument("need one kept-index list per mode");
  }
  std::vector<std::unordered_map<int64_t, int64_t>> remap(
      static_cast<size_t>(x.order()));
  std::vector<int64_t> dims(static_cast<size_t>(x.order()));
  for (int m = 0; m < x.order(); ++m) {
    const std::vector<int64_t>& list = kept[static_cast<size_t>(m)];
    if (list.empty()) {
      return Status::InvalidArgument("kept-index list may not be empty");
    }
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] < 0 || list[i] >= x.dim(m)) {
        return Status::InvalidArgument("kept index out of range");
      }
      remap[static_cast<size_t>(m)][list[i]] = static_cast<int64_t>(i);
    }
    dims[static_cast<size_t>(m)] = static_cast<int64_t>(list.size());
  }
  HATEN2_ASSIGN_OR_RETURN(SparseTensor sub, SparseTensor::Create(dims));
  std::vector<int64_t> idx(static_cast<size_t>(x.order()));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    bool inside = true;
    for (int m = 0; m < x.order() && inside; ++m) {
      auto it = remap[static_cast<size_t>(m)].find(x.index(e, m));
      if (it == remap[static_cast<size_t>(m)].end()) {
        inside = false;
      } else {
        idx[static_cast<size_t>(m)] = it->second;
      }
    }
    if (inside) sub.AppendUnchecked(idx.data(), x.value(e));
  }
  sub.Canonicalize();
  return sub;
}

Result<KruskalModel> ParCubeParafac(const SparseTensor& x, int64_t rank,
                                    const ParCubeOptions& options) {
  if (rank <= 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  if (x.order() < 2) {
    return Status::InvalidArgument("need a tensor of order >= 2");
  }
  if (x.nnz() == 0) {
    return Status::InvalidArgument("cannot decompose an all-zero tensor");
  }
  if (options.sample_fraction <= 0.0 || options.sample_fraction > 1.0 ||
      options.anchor_fraction <= 0.0 || options.anchor_fraction > 1.0) {
    return Status::InvalidArgument(
        "sample_fraction and anchor_fraction must be in (0, 1]");
  }
  if (options.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  const int order = x.order();

  std::vector<std::vector<double>> marginals = ComputeMarginals(x);

  // Anchors: the highest-mass indices of each mode, shared by every sample.
  std::vector<std::vector<int64_t>> anchors(static_cast<size_t>(order));
  std::vector<int64_t> sample_counts(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) {
    int64_t count = std::max<int64_t>(
        rank, static_cast<int64_t>(std::ceil(
                  options.sample_fraction * static_cast<double>(x.dim(m)))));
    count = std::min(count, x.dim(m));
    sample_counts[static_cast<size_t>(m)] = count;
    int64_t anchor_count = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(options.anchor_fraction *
                                          static_cast<double>(count))));
    std::vector<std::pair<double, int64_t>> by_mass;
    for (int64_t i = 0; i < x.dim(m); ++i) {
      by_mass.emplace_back(-marginals[static_cast<size_t>(m)]
                                     [static_cast<size_t>(i)],
                           i);
    }
    std::sort(by_mass.begin(), by_mass.end());
    for (int64_t a = 0; a < std::min(anchor_count, x.dim(m)); ++a) {
      anchors[static_cast<size_t>(m)].push_back(
          by_mass[static_cast<size_t>(a)].second);
    }
    std::sort(anchors[static_cast<size_t>(m)].begin(),
              anchors[static_cast<size_t>(m)].end());
  }

  // Per-sample sub-decompositions (a cluster would run these in parallel).
  struct SampleResult {
    std::vector<std::vector<int64_t>> kept;
    KruskalModel model;
  };
  std::vector<SampleResult> samples;
  for (int s = 0; s < options.num_samples; ++s) {
    Rng rng(options.seed + static_cast<uint64_t>(s) * 7919u);
    SampleResult sample;
    sample.kept.resize(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      sample.kept[static_cast<size_t>(m)] = BiasedSample(
          marginals[static_cast<size_t>(m)],
          sample_counts[static_cast<size_t>(m)],
          anchors[static_cast<size_t>(m)], &rng);
    }
    HATEN2_ASSIGN_OR_RETURN(SparseTensor sub,
                            ExtractSubTensor(x, sample.kept));
    if (sub.nnz() == 0) continue;  // degenerate draw; skip
    BaselineOptions als;
    als.max_iterations = options.max_iterations;
    als.tolerance = options.tolerance;
    als.seed = options.seed + 31u * static_cast<uint64_t>(s);
    als.nonnegative = true;  // sign-unambiguous components for merging
    Result<KruskalModel> model = ToolboxParafacAls(sub, rank, als);
    if (!model.ok()) continue;
    sample.model = std::move(model).value();
    samples.push_back(std::move(sample));
  }
  if (samples.empty()) {
    return Status::Internal(
        "every ParCube sample was degenerate; increase sample_fraction");
  }

  // Merge into full-size factors: match components to the first sample's on
  // the anchor rows, rescale, scatter, average.
  const SampleResult& reference = samples[0];
  std::vector<DenseMatrix> sums;
  std::vector<DenseMatrix> counts;
  for (int m = 0; m < order; ++m) {
    sums.emplace_back(x.dim(m), rank);
    counts.emplace_back(x.dim(m), rank);
  }
  std::vector<double> lambda_sum(static_cast<size_t>(rank), 0.0);
  std::vector<double> lambda_count(static_cast<size_t>(rank), 0.0);

  for (const SampleResult& sample : samples) {
    // Greedy matching by total anchor cosine similarity.
    std::vector<int64_t> match(static_cast<size_t>(rank), -1);
    std::vector<bool> used(static_cast<size_t>(rank), false);
    for (int64_t sc = 0; sc < rank; ++sc) {
      double best = -1.0;
      int64_t best_ref = -1;
      for (int64_t rc = 0; rc < rank; ++rc) {
        if (used[static_cast<size_t>(rc)]) continue;
        double sim = AnchorSimilarity(reference.model, sample.model,
                                      anchors, reference.kept, sample.kept,
                                      rc, sc);
        if (sim > best) {
          best = sim;
          best_ref = rc;
        }
      }
      match[static_cast<size_t>(sc)] = best_ref;
      if (best_ref >= 0) used[static_cast<size_t>(best_ref)] = true;
    }

    for (int64_t sc = 0; sc < rank; ++sc) {
      int64_t slot = match[static_cast<size_t>(sc)];
      if (slot < 0) continue;
      // Rescale each mode's column so its anchor norm equals the
      // reference's; track the total scale to keep the model value intact.
      double lambda_scale = 1.0;
      std::vector<double> column_scale(static_cast<size_t>(order), 1.0);
      for (int m = 0; m < order; ++m) {
        double ref_sq = 0.0;
        double sample_sq = 0.0;
        for (int64_t anchor : anchors[static_cast<size_t>(m)]) {
          double rv = reference.model.factors[static_cast<size_t>(m)](
              LocalIndex(reference.kept[static_cast<size_t>(m)], anchor),
              slot);
          double sv = sample.model.factors[static_cast<size_t>(m)](
              LocalIndex(sample.kept[static_cast<size_t>(m)], anchor), sc);
          ref_sq += rv * rv;
          sample_sq += sv * sv;
        }
        if (ref_sq > 0.0 && sample_sq > 0.0) {
          double scale = std::sqrt(ref_sq / sample_sq);
          column_scale[static_cast<size_t>(m)] = scale;
          lambda_scale /= scale;
        }
      }
      for (int m = 0; m < order; ++m) {
        const std::vector<int64_t>& kept =
            sample.kept[static_cast<size_t>(m)];
        const DenseMatrix& f =
            sample.model.factors[static_cast<size_t>(m)];
        for (size_t l = 0; l < kept.size(); ++l) {
          sums[static_cast<size_t>(m)](kept[l], slot) +=
              f(static_cast<int64_t>(l), sc) *
              column_scale[static_cast<size_t>(m)];
          counts[static_cast<size_t>(m)](kept[l], slot) += 1.0;
        }
      }
      lambda_sum[static_cast<size_t>(slot)] +=
          sample.model.lambda[static_cast<size_t>(sc)] * lambda_scale;
      lambda_count[static_cast<size_t>(slot)] += 1.0;
    }
  }

  KruskalModel merged;
  merged.factors.reserve(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) {
    DenseMatrix f(x.dim(m), rank);
    for (int64_t i = 0; i < x.dim(m); ++i) {
      for (int64_t r = 0; r < rank; ++r) {
        double c = counts[static_cast<size_t>(m)](i, r);
        f(i, r) = c > 0.0 ? sums[static_cast<size_t>(m)](i, r) / c : 0.0;
      }
    }
    merged.factors.push_back(std::move(f));
  }
  merged.lambda.assign(static_cast<size_t>(rank), 0.0);
  for (int64_t r = 0; r < rank; ++r) {
    merged.lambda[static_cast<size_t>(r)] =
        lambda_count[static_cast<size_t>(r)] > 0.0
            ? lambda_sum[static_cast<size_t>(r)] /
                  lambda_count[static_cast<size_t>(r)]
            : 0.0;
  }
  // Canonical form: unit-norm columns, norms folded into lambda.
  for (int m = 0; m < order; ++m) {
    std::vector<double> norms;
    NormalizeColumns(&merged.factors[static_cast<size_t>(m)], &norms);
    for (int64_t r = 0; r < rank; ++r) {
      merged.lambda[static_cast<size_t>(r)] *= norms[static_cast<size_t>(r)];
    }
  }
  HATEN2_ASSIGN_OR_RETURN(merged.fit, KruskalFit(x, merged));
  merged.iterations = options.max_iterations;
  return merged;
}

}  // namespace haten2
