#ifndef HATEN2_BASELINE_PARCUBE_H_
#define HATEN2_BASELINE_PARCUBE_H_

#include <cstdint>
#include <vector>

#include "baseline/toolbox.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief ParCube (Papalexakis, Faloutsos & Sidiropoulos, ECML-PKDD 2012) —
/// the sampling-based approximate PARAFAC the paper cites as related work
/// [17]. Implemented as a comparison method: it trades exactness for
/// embarrassing parallelism, the opposite end of the design space from
/// HaTen2's exact distributed evaluation.
///
/// The algorithm:
///   1. Compute per-mode *marginals* (mass of each slice); indices with
///      more mass are more informative.
///   2. Draw `num_samples` sub-tensors: each keeps a biased sample of the
///      indices of every mode. A fixed fraction of the sample — the
///      *anchors*, the highest-mass indices — is shared by all samples, so
///      their factors can be aligned afterwards.
///   3. Run (nonnegative) PARAFAC-ALS independently on each sub-tensor —
///      these runs are what a cluster would execute in parallel.
///   4. Merge: match every sample's components to the first sample's by
///      cosine similarity on the anchor rows, rescale to the reference's
///      anchor norms, and scatter the sampled rows into the full-size
///      factors (averaging rows seen by several samples).
///
/// The result is approximate: rows never sampled by any sub-tensor stay
/// zero, and the merge inherits per-sample noise — the accuracy/time
/// trade-off the extra_parcube_comparison harness measures against exact
/// HaTen2 PARAFAC.
struct ParCubeOptions {
  /// Fraction of each mode's indices kept per sample (0, 1].
  double sample_fraction = 0.4;
  /// Number of independently decomposed sub-tensors.
  int num_samples = 4;
  /// Fraction of the per-sample indices reserved for the shared anchors.
  double anchor_fraction = 0.5;
  /// Inner single-machine ALS settings (nonnegative updates are used
  /// regardless, as in the original algorithm, to make components
  /// sign-unambiguous for merging).
  int max_iterations = 25;
  double tolerance = 1e-6;
  uint64_t seed = 42;
};

Result<KruskalModel> ParCubeParafac(const SparseTensor& x, int64_t rank,
                                    const ParCubeOptions& options = {});

// --- Exposed internals (tested separately) ---

/// Per-mode slice masses: marginals[m][i] = Σ |X(..., i at mode m, ...)|.
std::vector<std::vector<double>> ComputeMarginals(const SparseTensor& x);

/// Weight-biased sample without replacement of `count` indices from
/// [0, weights.size()), always including `anchors` first. Returns sorted
/// indices.
std::vector<int64_t> BiasedSample(const std::vector<double>& weights,
                                  int64_t count,
                                  const std::vector<int64_t>& anchors,
                                  Rng* rng);

/// Extracts the sub-tensor of `x` restricted to `kept[m]` (sorted index
/// lists per mode), relabeling indices to 0..|kept[m]|-1.
Result<SparseTensor> ExtractSubTensor(
    const SparseTensor& x, const std::vector<std::vector<int64_t>>& kept);

}  // namespace haten2

#endif  // HATEN2_BASELINE_PARCUBE_H_
