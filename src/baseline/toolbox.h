#ifndef HATEN2_BASELINE_TOOLBOX_H_
#define HATEN2_BASELINE_TOOLBOX_H_

#include <vector>

#include "tensor/dense_matrix.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/memory_tracker.h"
#include "util/result.h"

namespace haten2 {

/// Single-machine baseline equivalent to the Matlab Tensor Toolbox (the
/// paper's comparison target, including the MET — Memory-Efficient Tucker —
/// variant of Kolda & Sun that the Toolbox adopted).
///
/// Every materialized quantity is charged against `BaselineOptions::memory`
/// (modeling the single machine's RAM); exceeding the budget aborts the
/// decomposition with kResourceExhausted, which the benchmark harnesses
/// report as "o.o.m." exactly where the Toolbox dies in Figures 1 and 7.

struct BaselineOptions {
  /// Maximum ALS (outer) iterations.
  int max_iterations = 20;

  /// Convergence threshold on the change of fit (PARAFAC) or ||G||/||X||
  /// (Tucker) between iterations.
  double tolerance = 1e-6;

  /// Seed for factor initialization.
  uint64_t seed = 17;

  /// Single-machine memory budget; nullptr disables enforcement.
  MemoryTracker* memory = nullptr;

  /// PARAFAC only: Lee-Seung multiplicative updates instead of the
  /// unconstrained least-squares update; factors stay entrywise >= 0.
  bool nonnegative = false;

  /// Tucker only: use the MET strategy (project straight into the dense
  /// I_n x prod(J) unfolding, never materializing sparse intermediates).
  /// When false, uses the naive sequential sparse TTM chain, which explodes
  /// with nnz(X)·Q intermediate entries (Lemma 3) — the pre-MET Toolbox.
  bool use_met = true;
};

/// PARAFAC-ALS (Algorithm 1 of the paper, generalized to N-way) on a single
/// machine.
Result<KruskalModel> ToolboxParafacAls(const SparseTensor& x, int64_t rank,
                                       const BaselineOptions& options = {});

/// Tucker-ALS / HOOI (Algorithm 2, generalized to N-way) on a single
/// machine. `core_dims` must have one entry per mode with
/// core_dims[m] <= dim(m).
Result<TuckerModel> ToolboxTuckerAls(const SparseTensor& x,
                                     std::vector<int64_t> core_dims,
                                     const BaselineOptions& options = {});

// --- Building blocks (exposed for tests and for the cost comparisons) ---

/// MET-style projected unfolding: Y_(skip_mode) where
/// Y = X ×_{m != skip_mode} A_mᵀ, returned dense (I_skip x prod_{m} J_m).
/// Charges the dense output against `memory`.
Result<DenseMatrix> MetProjectedUnfolding(
    const SparseTensor& x, const std::vector<const DenseMatrix*>& factors,
    int skip_mode, MemoryTracker* memory);

/// Naive sequential TTM chain X ×_m A_mᵀ for all m != skip_mode, keeping
/// sparse intermediates and charging each one; returns the final tensor.
Result<SparseTensor> NaiveTtmChain(
    const SparseTensor& x, const std::vector<const DenseMatrix*>& factors,
    int skip_mode, MemoryTracker* memory);

/// MTTKRP with memory accounting for the dense output.
Result<DenseMatrix> ToolboxMttkrp(
    const SparseTensor& x, const std::vector<const DenseMatrix*>& factors,
    int mode, MemoryTracker* memory);

}  // namespace haten2

#endif  // HATEN2_BASELINE_TOOLBOX_H_
