#include "baseline/toolbox.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "linalg/linalg.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

constexpr uint64_t kDoubleBytes = sizeof(double);

Status CheckDecompositionInput(const SparseTensor& x) {
  if (x.order() < 2) {
    return Status::InvalidArgument(
        "decompositions require a tensor of order >= 2");
  }
  if (x.nnz() == 0) {
    return Status::InvalidArgument("cannot decompose an all-zero tensor");
  }
  return Status::OK();
}

/// Densifies an order-2 sparse tensor into a matrix, charging `memory`.
Result<DenseMatrix> DensifyMatrix(const SparseTensor& unfolded,
                                  MemoryTracker* memory) {
  ScopedCharge charge(
      memory, static_cast<uint64_t>(unfolded.dim(0)) *
                  static_cast<uint64_t>(unfolded.dim(1)) * kDoubleBytes);
  if (!charge.ok()) return charge.status();
  DenseMatrix out(unfolded.dim(0), unfolded.dim(1));
  for (int64_t e = 0; e < unfolded.nnz(); ++e) {
    out(unfolded.index(e, 0), unfolded.index(e, 1)) += unfolded.value(e);
  }
  return out;
}

/// Recursively accumulates one tensor entry's contribution into the
/// projected unfolding (see MetProjectedUnfolding).
void AccumulateEntry(const int64_t* idx, const std::vector<int>& modes,
                     const std::vector<const DenseMatrix*>& factors,
                     const std::vector<int64_t>& weights, size_t level,
                     double partial, int64_t col, int64_t row,
                     DenseMatrix* out) {
  if (level == modes.size()) {
    (*out)(row, col) += partial;
    return;
  }
  int m = modes[level];
  const DenseMatrix& f = *factors[static_cast<size_t>(m)];
  const double* frow = f.RowPtr(idx[m]);
  for (int64_t j = 0; j < f.cols(); ++j) {
    if (frow[j] == 0.0) continue;
    AccumulateEntry(idx, modes, factors, weights, level + 1,
                    partial * frow[j],
                    col + j * weights[static_cast<size_t>(m)], row, out);
  }
}

}  // namespace

Result<DenseMatrix> MetProjectedUnfolding(
    const SparseTensor& x, const std::vector<const DenseMatrix*>& factors,
    int skip_mode, MemoryTracker* memory) {
  if (static_cast<int>(factors.size()) != x.order()) {
    return Status::InvalidArgument("need one factor per mode");
  }
  if (skip_mode < 0 || skip_mode >= x.order()) {
    return Status::InvalidArgument("skip_mode out of range");
  }
  std::vector<int> modes;
  std::vector<int64_t> weights(static_cast<size_t>(x.order()), 0);
  int64_t cols = 1;
  for (int m = 0; m < x.order(); ++m) {
    if (m == skip_mode) continue;
    const DenseMatrix* f = factors[static_cast<size_t>(m)];
    if (f == nullptr) return Status::InvalidArgument("null factor matrix");
    if (f->rows() != x.dim(m)) {
      return Status::InvalidArgument(
          StrFormat("factor %d rows %lld != mode size %lld", m,
                    (long long)f->rows(), (long long)x.dim(m)));
    }
    modes.push_back(m);
    weights[static_cast<size_t>(m)] = cols;
    cols *= f->cols();
  }
  const int64_t rows = x.dim(skip_mode);
  ScopedCharge charge(memory, static_cast<uint64_t>(rows) *
                                  static_cast<uint64_t>(cols) * kDoubleBytes);
  if (!charge.ok()) return charge.status();
  DenseMatrix out(rows, cols);
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    AccumulateEntry(idx, modes, factors, weights, 0, x.value(e), 0,
                    idx[skip_mode], &out);
  }
  return out;
}

Result<SparseTensor> NaiveTtmChain(
    const SparseTensor& x, const std::vector<const DenseMatrix*>& factors,
    int skip_mode, MemoryTracker* memory) {
  if (static_cast<int>(factors.size()) != x.order()) {
    return Status::InvalidArgument("need one factor per mode");
  }
  if (skip_mode < 0 || skip_mode >= x.order()) {
    return Status::InvalidArgument("skip_mode out of range");
  }
  SparseTensor current = x;
  uint64_t current_charge = 0;  // x itself is charged by the caller
  Status failure = Status::OK();
  for (int m = 0; m < x.order(); ++m) {
    if (m == skip_mode) continue;
    // Charge the upcoming intermediate before materializing it (Lemma 3:
    // ≈ nnz(current)·J entries). Previous intermediate stays live during
    // the multiply, as in a real execution.
    const DenseMatrix* f = factors[static_cast<size_t>(m)];
    if (f == nullptr) {
      failure = Status::InvalidArgument("null factor matrix");
      break;
    }
    uint64_t next_bytes =
        static_cast<uint64_t>(current.nnz()) *
        static_cast<uint64_t>(f->cols()) *
        (static_cast<uint64_t>(x.order()) * sizeof(int64_t) + kDoubleBytes);
    if (memory != nullptr) {
      Status s = memory->Charge(next_bytes);
      if (!s.ok()) {
        failure = s;
        break;
      }
    }
    Result<SparseTensor> next = TtmTransposed(current, *f, m);
    if (!next.ok()) {
      if (memory != nullptr) memory->Release(next_bytes);
      failure = next.status();
      break;
    }
    if (memory != nullptr && current_charge > 0) {
      memory->Release(current_charge);
    }
    current = std::move(next).value();
    current_charge = next_bytes;
  }
  if (memory != nullptr && current_charge > 0) {
    memory->Release(current_charge);
  }
  if (!failure.ok()) return failure;
  return current;
}

Result<DenseMatrix> ToolboxMttkrp(
    const SparseTensor& x, const std::vector<const DenseMatrix*>& factors,
    int mode, MemoryTracker* memory) {
  if (mode < 0 || mode >= x.order()) {
    return Status::InvalidArgument("mode out of range");
  }
  int64_t rank = factors.empty() || factors[0] == nullptr
                     ? 0
                     : factors[0]->cols();
  ScopedCharge charge(memory, static_cast<uint64_t>(x.dim(mode)) *
                                  static_cast<uint64_t>(rank) * kDoubleBytes);
  if (!charge.ok()) return charge.status();
  return Mttkrp(x, factors, mode);
}

Result<KruskalModel> ToolboxParafacAls(const SparseTensor& x, int64_t rank,
                                       const BaselineOptions& options) {
  HATEN2_RETURN_IF_ERROR(CheckDecompositionInput(x));
  if (rank <= 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  const int order = x.order();
  // The single machine holds the tensor plus all factor matrices for the
  // whole run.
  uint64_t resident = x.ApproxBytes();
  for (int m = 0; m < order; ++m) {
    resident += static_cast<uint64_t>(x.dim(m)) *
                static_cast<uint64_t>(rank) * kDoubleBytes;
  }
  ScopedCharge resident_charge(options.memory, resident);
  if (!resident_charge.ok()) return resident_charge.status();

  Rng rng(options.seed);
  KruskalModel model;
  model.lambda.assign(static_cast<size_t>(rank), 1.0);
  model.factors.reserve(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) {
    model.factors.push_back(DenseMatrix::RandomUniform(x.dim(m), rank, &rng));
  }

  // Cache Gram matrices; refresh the updated mode's after each update.
  std::vector<DenseMatrix> grams;
  grams.reserve(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) grams.push_back(Gram(model.factors[m]));

  double prev_fit = -1.0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    for (int n = 0; n < order; ++n) {
      HATEN2_ASSIGN_OR_RETURN(
          DenseMatrix mkr,
          ToolboxMttkrp(x, model.FactorPtrs(), n, options.memory));
      // V = *_{m != n} A_mᵀA_m  (R x R).
      DenseMatrix v(rank, rank);
      v.Fill(1.0);
      for (int m = 0; m < order; ++m) {
        if (m == n) continue;
        for (int64_t r = 0; r < rank; ++r) {
          for (int64_t s = 0; s < rank; ++s) {
            v(r, s) *= grams[static_cast<size_t>(m)](r, s);
          }
        }
      }
      DenseMatrix updated;
      if (options.nonnegative) {
        DenseMatrix& a = model.factors[static_cast<size_t>(n)];
        HATEN2_ASSIGN_OR_RETURN(DenseMatrix av, MatMul(a, v));
        updated = a;
        for (int64_t i = 0; i < a.rows(); ++i) {
          for (int64_t r = 0; r < rank; ++r) {
            updated(i, r) = std::max(
                a(i, r) * (mkr(i, r) / std::max(av(i, r), 1e-12)), 0.0);
          }
        }
      } else {
        HATEN2_ASSIGN_OR_RETURN(updated, SolveRightPinv(mkr, v));
      }
      NormalizeColumns(&updated, &model.lambda);
      model.factors[static_cast<size_t>(n)] = std::move(updated);
      grams[static_cast<size_t>(n)] =
          Gram(model.factors[static_cast<size_t>(n)]);
    }
    model.iterations = iter;
    HATEN2_ASSIGN_OR_RETURN(double fit, KruskalFit(x, model));
    model.fit = fit;
    model.fit_history.push_back(fit);
    if (prev_fit >= 0.0 && std::fabs(fit - prev_fit) < options.tolerance) {
      break;
    }
    prev_fit = fit;
  }
  return model;
}

Result<TuckerModel> ToolboxTuckerAls(const SparseTensor& x,
                                     std::vector<int64_t> core_dims,
                                     const BaselineOptions& options) {
  HATEN2_RETURN_IF_ERROR(CheckDecompositionInput(x));
  const int order = x.order();
  if (static_cast<int>(core_dims.size()) != order) {
    return Status::InvalidArgument("core_dims must have one entry per mode");
  }
  uint64_t resident = x.ApproxBytes();
  int64_t core_cells = 1;
  for (int m = 0; m < order; ++m) {
    int64_t j = core_dims[static_cast<size_t>(m)];
    if (j <= 0 || j > x.dim(m)) {
      return Status::InvalidArgument(StrFormat(
          "core dimension %lld invalid for mode %d of size %lld",
          (long long)j, m, (long long)x.dim(m)));
    }
    resident += static_cast<uint64_t>(x.dim(m)) * static_cast<uint64_t>(j) *
                kDoubleBytes;
    core_cells *= j;
  }
  resident += static_cast<uint64_t>(core_cells) * kDoubleBytes;
  ScopedCharge resident_charge(options.memory, resident);
  if (!resident_charge.ok()) return resident_charge.status();

  Rng rng(options.seed);
  TuckerModel model;
  model.factors.reserve(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) {
    // Orthonormal random initialization (Algorithm 2 line 1 initializes all
    // factors but the first; initializing all keeps the code uniform and the
    // first is overwritten before use).
    DenseMatrix random = DenseMatrix::RandomNormal(
        x.dim(m), core_dims[static_cast<size_t>(m)], &rng);
    HATEN2_ASSIGN_OR_RETURN(QrResult qr, QrDecompose(random));
    model.factors.push_back(std::move(qr.q));
  }

  const double x_norm = x.FrobeniusNorm();
  double prev_core_norm = -1.0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    DenseMatrix last_unfolding;
    for (int n = 0; n < order; ++n) {
      DenseMatrix y_n;
      if (options.use_met) {
        HATEN2_ASSIGN_OR_RETURN(
            y_n, MetProjectedUnfolding(x, model.FactorPtrs(), n,
                                       options.memory));
      } else {
        HATEN2_ASSIGN_OR_RETURN(
            SparseTensor chained,
            NaiveTtmChain(x, model.FactorPtrs(), n, options.memory));
        HATEN2_ASSIGN_OR_RETURN(SparseTensor unfolded,
                                SparseUnfold(chained, n));
        HATEN2_ASSIGN_OR_RETURN(y_n, DensifyMatrix(unfolded, options.memory));
      }
      HATEN2_ASSIGN_OR_RETURN(
          DenseMatrix factor,
          LeadingLeftSingularVectors(y_n,
                                     core_dims[static_cast<size_t>(n)]));
      model.factors[static_cast<size_t>(n)] = std::move(factor);
      if (n == order - 1) last_unfolding = std::move(y_n);
    }
    // G_(N-1) = A_{N-1}ᵀ · Y_(N-1); fold back into the core tensor.
    HATEN2_ASSIGN_OR_RETURN(
        DenseMatrix core_unfolded,
        MatMulTransA(model.factors[static_cast<size_t>(order - 1)],
                     last_unfolding));
    HATEN2_ASSIGN_OR_RETURN(
        model.core, DenseTensor::Fold(core_unfolded, order - 1, core_dims));
    model.iterations = iter;
    double core_norm = model.core.FrobeniusNorm();
    model.core_norm_history.push_back(core_norm);
    if (prev_core_norm >= 0.0 &&
        std::fabs(core_norm - prev_core_norm) <= options.tolerance * x_norm) {
      break;
    }
    prev_core_norm = core_norm;
  }
  HATEN2_ASSIGN_OR_RETURN(model.fit, TuckerFit(x, model));
  return model;
}

}  // namespace haten2
