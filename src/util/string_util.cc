#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace haten2 {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // C++11 guarantees contiguous storage; +1 for the terminating NUL that
    // vsnprintf writes past the reported length.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(s.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: " + buf);
  }
  return v;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", (unsigned long long)bytes);
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

std::string HumanCount(uint64_t count) {
  if (count >= 1000000000ULL) {
    return StrFormat("%.1fB", static_cast<double>(count) / 1e9);
  }
  if (count >= 1000000ULL) {
    return StrFormat("%.1fM", static_cast<double>(count) / 1e6);
  }
  if (count >= 1000ULL) {
    return StrFormat("%.1fK", static_cast<double>(count) / 1e3);
  }
  return StrFormat("%llu", (unsigned long long)count);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f s", seconds);
  return StrFormat("%.1f min", seconds / 60.0);
}

}  // namespace haten2
