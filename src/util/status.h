#ifndef HATEN2_UTIL_STATUS_H_
#define HATEN2_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace haten2 {

/// \brief Canonical error codes used throughout the library.
///
/// The library does not use exceptions (see DESIGN.md); every fallible
/// operation returns a Status (or a Result<T>, see result.h). The codes follow
/// the usual canonical-space conventions: kOk means success, every other code
/// carries a human-readable message describing the failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,  ///< Out of (budgeted) memory: reported as "o.o.m.".
  kFailedPrecondition = 5,
  kAborted = 6,
  kOutOfRange = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kIOError = 10,
};

/// \brief Returns the canonical name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// \brief A lightweight success-or-error value.
///
/// Status is cheap to construct in the success case (no allocation) and
/// carries a code plus message otherwise. Typical use:
///
/// \code
///   Status s = tensor.Validate();
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// Human-readable representation, e.g. "InvalidArgument: rank must be > 0".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status from the current function.
#define HATEN2_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::haten2::Status _haten2_status_tmp = (expr);      \
    if (!_haten2_status_tmp.ok()) {                    \
      return _haten2_status_tmp;                       \
    }                                                  \
  } while (false)

}  // namespace haten2

#endif  // HATEN2_UTIL_STATUS_H_
