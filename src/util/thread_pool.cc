#include "util/thread_pool.h"

#include <atomic>

namespace haten2 {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || threads_.size() == 1) {
    // Run inline: avoids queueing overhead and, more importantly, keeps
    // single-threaded pools usable from within a pool task (no deadlock).
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Scoped completion state: the caller waits for its own shards only, so
  // concurrent ParallelFor calls from different external threads never wait
  // on each other's work (Wait() would block until the whole pool drains).
  struct Scope {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  };
  std::atomic<size_t> next{0};
  const size_t shards = std::min(n, threads_.size());
  Scope scope{{}, {}, shards};
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn, &scope] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
      std::unique_lock<std::mutex> lock(scope.mu);
      if (--scope.remaining == 0) scope.done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(scope.mu);
  scope.done.wait(lock, [&scope] { return scope.remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace haten2
