#ifndef HATEN2_UTIL_FLAGS_H_
#define HATEN2_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace haten2 {

/// \brief Minimal command-line parser for the CLI tool and harnesses.
///
/// Recognizes `--name=value` and bare `--name` (value "true"); everything
/// else is a positional argument. Unknown flags are an error when queried
/// via Validate(), keeping typos loud.
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const;

  /// Typed getters with defaults; parse failures return error Status.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  Result<int64_t> GetInt(const std::string& name,
                         int64_t default_value) const;
  Result<double> GetDouble(const std::string& name,
                           double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Parses "AxBxC" into a dimension list.
  Result<std::vector<int64_t>> GetDims(const std::string& name,
                                       std::vector<int64_t> default_value)
      const;

  /// Returns an error naming any flag not in `known` (catches typos).
  Status Validate(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace haten2

#endif  // HATEN2_UTIL_FLAGS_H_
