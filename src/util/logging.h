#ifndef HATEN2_UTIL_LOGGING_H_
#define HATEN2_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

#include "util/status.h"

namespace haten2 {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Process-wide minimum level below which log lines are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

namespace internal {

/// Stream-style log sink; emits its accumulated message on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace haten2

#define HATEN2_LOG_DEBUG                                              \
  ::haten2::internal::LogMessage(::haten2::LogLevel::kDebug, __FILE__, \
                                 __LINE__)
#define HATEN2_LOG_INFO                                              \
  ::haten2::internal::LogMessage(::haten2::LogLevel::kInfo, __FILE__, \
                                 __LINE__)
#define HATEN2_LOG_WARNING                                              \
  ::haten2::internal::LogMessage(::haten2::LogLevel::kWarning, __FILE__, \
                                 __LINE__)
#define HATEN2_LOG_ERROR                                              \
  ::haten2::internal::LogMessage(::haten2::LogLevel::kError, __FILE__, \
                                 __LINE__)
#define HATEN2_LOG_FATAL                                              \
  ::haten2::internal::LogMessage(::haten2::LogLevel::kFatal, __FILE__, \
                                 __LINE__)

/// Unconditional invariant check; aborts with a message when violated.
/// Used for programmer errors (not for data-dependent failures, which return
/// Status).
#define HATEN2_CHECK(cond)                                    \
  if (!(cond))                                                \
  HATEN2_LOG_FATAL << "Check failed: " #cond " "

#define HATEN2_CHECK_OK(expr)                                       \
  do {                                                              \
    const ::haten2::Status _haten2_check_status = (expr);           \
    if (!_haten2_check_status.ok()) {                               \
      HATEN2_LOG_FATAL << "Status not OK: "                         \
                       << _haten2_check_status.ToString();          \
    }                                                               \
  } while (false)

#endif  // HATEN2_UTIL_LOGGING_H_
