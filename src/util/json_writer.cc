#include "util/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace haten2 {

void JsonWriter::Prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!container_has_elements_.empty()) {
    if (container_has_elements_.back()) out_.push_back(',');
    container_has_elements_.back() = true;
  }
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\b':
        out_ += "\\b";
        break;
      case '\f':
        out_ += "\\f";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(static_cast<char>(c));
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  Prefix();
  out_.push_back('{');
  container_has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!container_has_elements_.empty() && !after_key_);
  container_has_elements_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prefix();
  out_.push_back('[');
  container_has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!container_has_elements_.empty() && !after_key_);
  container_has_elements_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  assert(!after_key_);
  Prefix();
  AppendEscaped(name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  Prefix();
  AppendEscaped(s);
  return *this;
}

JsonWriter& JsonWriter::Value(bool b) {
  Prefix();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  if (!std::isfinite(v)) return Null();
  Prefix();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Prefix();
  out_ += "null";
  return *this;
}

Status WriteTextFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace haten2
