#ifndef HATEN2_UTIL_MEMORY_TRACKER_H_
#define HATEN2_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "util/status.h"

namespace haten2 {

/// \brief Accounts bytes of live intermediate data against a budget.
///
/// The paper's central failure mode is the *intermediate data explosion*:
/// naive implementations materialize more shuffle data than the cluster can
/// hold and die with out-of-memory. We reproduce that behaviour by charging
/// the byte size of every materialized intermediate (shuffle buffers in the
/// MapReduce engine, densified temporaries in the Tensor-Toolbox baseline)
/// against a MemoryTracker; when the budget is exceeded the operation fails
/// with kResourceExhausted, which benchmark harnesses report as "o.o.m.".
///
/// Thread-safe; Charge/Release may be called concurrently from task threads.
class MemoryTracker {
 public:
  /// Creates a tracker with the given budget. kUnlimited disables enforcement
  /// (peak usage is still recorded).
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  explicit MemoryTracker(uint64_t budget_bytes = kUnlimited)
      : budget_(budget_bytes) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Attempts to charge `bytes`; on over-budget leaves usage unchanged and
  /// returns kResourceExhausted.
  Status Charge(uint64_t bytes);

  /// Releases a previous charge. Charging and releasing must balance.
  void Release(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t budget() const { return budget_; }

  /// Resets usage and peak to zero (budget is retained).
  void Reset();

 private:
  const uint64_t budget_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

/// \brief RAII charge against a MemoryTracker.
///
/// On construction attempts the charge; callers must check ok() before
/// relying on the guarded allocation. Releases on destruction when charged.
class ScopedCharge {
 public:
  ScopedCharge(MemoryTracker* tracker, uint64_t bytes)
      : tracker_(tracker), bytes_(bytes), status_(Status::OK()) {
    if (tracker_ != nullptr) {
      status_ = tracker_->Charge(bytes_);
      charged_ = status_.ok();
    }
  }

  ~ScopedCharge() {
    if (charged_) tracker_->Release(bytes_);
  }

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  MemoryTracker* tracker_;
  uint64_t bytes_;
  Status status_;
  bool charged_ = false;
};

}  // namespace haten2

#endif  // HATEN2_UTIL_MEMORY_TRACKER_H_
