#include "util/flags.h"

#include "util/string_util.h"

namespace haten2 {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      flags_[body] = "true";
    } else {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

Result<int64_t> FlagParser::GetInt(const std::string& name,
                                   int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  Result<int64_t> v = ParseInt64(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument(
        StrFormat("flag --%s: %s", name.c_str(),
                  v.status().message().c_str()));
  }
  return v;
}

Result<double> FlagParser::GetDouble(const std::string& name,
                                     double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  Result<double> v = ParseDouble(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument(
        StrFormat("flag --%s: %s", name.c_str(),
                  v.status().message().c_str()));
  }
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

Result<std::vector<int64_t>> FlagParser::GetDims(
    const std::string& name, std::vector<int64_t> default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  std::vector<int64_t> dims;
  for (const std::string& part : Split(it->second, 'x')) {
    Result<int64_t> v = ParseInt64(part);
    if (!v.ok() || *v <= 0) {
      return Status::InvalidArgument(StrFormat(
          "flag --%s: '%s' is not a dimension list like 10x10x10",
          name.c_str(), it->second.c_str()));
    }
    dims.push_back(*v);
  }
  return dims;
}

Status FlagParser::Validate(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  return Status::OK();
}

}  // namespace haten2
