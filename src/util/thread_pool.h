#ifndef HATEN2_UTIL_THREAD_POOL_H_
#define HATEN2_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace haten2 {

/// \brief A fixed-size worker pool.
///
/// The MapReduce engine uses one pool per Engine to execute map and reduce
/// tasks. Tasks are plain std::function<void()>; callers coordinate results
/// through their own synchronization (the engine uses per-task output slots,
/// so tasks never contend on shared state).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// fn must be safe to invoke concurrently for distinct i.
  ///
  /// Waiting is scoped to this call: the caller blocks only until its own
  /// shard tasks finish, not until the whole pool drains. That makes
  /// ParallelFor safe and efficient to invoke from several external threads
  /// at once (the plan scheduler runs independent MapReduce jobs
  /// concurrently, and each job issues its own ParallelFor phases) — their
  /// shards interleave through the shared queue without cross-waiting.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace haten2

#endif  // HATEN2_UTIL_THREAD_POOL_H_
