#ifndef HATEN2_UTIL_TIMER_H_
#define HATEN2_UTIL_TIMER_H_

#include <chrono>

namespace haten2 {

/// \brief Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates elapsed time into a double on destruction. Useful for
/// attributing time to phases inside a larger computation.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += timer_.ElapsedSeconds();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace haten2

#endif  // HATEN2_UTIL_TIMER_H_
