#include "util/memory_tracker.h"

#include "util/string_util.h"

namespace haten2 {

Status MemoryTracker::Charge(uint64_t bytes) {
  uint64_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
  uint64_t now = prev + bytes;
  if (budget_ != kUnlimited && now > budget_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrFormat("o.o.m.: requested %s on top of %s exceeds budget %s",
                  HumanBytes(bytes).c_str(), HumanBytes(prev).c_str(),
                  HumanBytes(budget_).c_str()));
  }
  // Racy max update; the tiny undercount window is acceptable for reporting.
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryTracker::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::Reset() {
  used_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

}  // namespace haten2
