#ifndef HATEN2_UTIL_RESULT_H_
#define HATEN2_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace haten2 {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// The moral equivalent of absl::StatusOr / arrow::Result. Constructing a
/// Result from an OK status is a programming error (there would be no value);
/// it is converted to an Internal error so misuse is observable rather than
/// undefined.
///
/// \code
///   Result<SparseTensor> r = SparseTensor::FromFile(path);
///   if (!r.ok()) return r.status();
///   SparseTensor t = std::move(r).value();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when holding an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value into `lhs`. `lhs` may be a declaration
/// (`HATEN2_ASSIGN_OR_RETURN(SparseTensor t, MakeTensor())`) or an existing
/// variable. Expands to multiple statements, so it cannot be used as the
/// single statement of an unbraced if/else.
#define HATEN2_ASSIGN_OR_RETURN(lhs, rexpr) \
  HATEN2_ASSIGN_OR_RETURN_IMPL_(            \
      HATEN2_RESULT_CONCAT_(_haten2_result_tmp_, __LINE__), lhs, rexpr)

#define HATEN2_RESULT_CONCAT_INNER_(a, b) a##b
#define HATEN2_RESULT_CONCAT_(a, b) HATEN2_RESULT_CONCAT_INNER_(a, b)
#define HATEN2_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

}  // namespace haten2

#endif  // HATEN2_UTIL_RESULT_H_
