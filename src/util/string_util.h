#ifndef HATEN2_UTIL_STRING_UTIL_H_
#define HATEN2_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace haten2 {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// Parses a signed 64-bit integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// Renders a byte count as a human-readable string, e.g. "1.5 GB".
std::string HumanBytes(uint64_t bytes);

/// Renders a count with K/M/B suffixes, e.g. "26M".
std::string HumanCount(uint64_t count);

/// Renders seconds with an adaptive unit, e.g. "12.3 ms" or "4.5 s".
std::string HumanSeconds(double seconds);

}  // namespace haten2

#endif  // HATEN2_UTIL_STRING_UTIL_H_
