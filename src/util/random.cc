#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace haten2 {

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n == 0) return 0;
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = sum;
    }
    for (uint64_t k = 0; k < n; ++k) zipf_cdf_[k] /= sum;
  }
  double u = Uniform();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

}  // namespace haten2
