#ifndef HATEN2_UTIL_RANDOM_H_
#define HATEN2_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace haten2 {

/// \brief Deterministic random number generator used across the library.
///
/// All stochastic components (tensor generators, factor initialization,
/// sampling) take an Rng or a seed so experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal sample.
  double Normal() { return normal_(engine_); }

  /// Normal sample with the given mean and stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples from a Zipf distribution over {0, ..., n-1} with exponent s,
  /// by inverse-CDF over precomputed weights. Intended for modest n
  /// (entity-popularity modeling in workload generators).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};

  // Cached Zipf CDF for the last (n, s) pair; regenerating the table per call
  // would make bulk sampling quadratic.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace haten2

#endif  // HATEN2_UTIL_RANDOM_H_
