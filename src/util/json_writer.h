#ifndef HATEN2_UTIL_JSON_WRITER_H_
#define HATEN2_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace haten2 {

/// \brief Minimal streaming JSON writer — no third-party dependencies.
///
/// Emits compact, valid JSON. Commas and the ':' after keys are inserted
/// automatically; the caller is responsible for balanced Begin/End nesting
/// (checked with assertions in debug builds). Doubles are written with
/// enough digits to round-trip; non-finite doubles become null (JSON has no
/// NaN/Inf). Strings are escaped per RFC 8259.
///
/// \code
///   JsonWriter w;
///   w.BeginObject().Key("jobs").BeginArray();
///   w.BeginObject().Key("name").Value("wc").Key("wall").Value(0.5);
///   w.EndObject().EndArray().EndObject();
///   // w.str() == R"({"jobs":[{"name":"wc","wall":0.5}]})"
/// \endcode
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value (or
  /// Begin...). `name` is escaped.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(bool b);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(double v);
  JsonWriter& Null();

  /// The document so far. Valid JSON once nesting is balanced.
  const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma when this is not the first element of the
  /// enclosing array/object (and no key was just written).
  void Prefix();
  void AppendEscaped(std::string_view s);

  std::string out_;
  std::vector<bool> container_has_elements_;
  bool after_key_ = false;
};

/// Writes `content` to `path`, truncating any existing file.
Status WriteTextFile(const std::string& path, std::string_view content);

}  // namespace haten2

#endif  // HATEN2_UTIL_JSON_WRITER_H_
