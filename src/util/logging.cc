#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace haten2 {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& OutputMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    // Keep only the basename to reduce noise.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace haten2
