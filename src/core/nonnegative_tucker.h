#ifndef HATEN2_CORE_NONNEGATIVE_TUCKER_H_
#define HATEN2_CORE_NONNEGATIVE_TUCKER_H_

#include <vector>

#include "core/parafac.h"  // Haten2Options
#include "mapreduce/engine.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Nonnegative Tucker decomposition (NTD) — completing the paper's
/// "nonnegative tensor decompositions" future-work direction for the Tucker
/// family (the PARAFAC side is Haten2Options::nonnegative).
///
/// Solves X ≈ G ×₁ A⁽¹⁾ ... ×ₙ A⁽ᴺ⁾ with every factor entry and core entry
/// >= 0, by Lee-Seung-style multiplicative updates:
///
///   A⁽ⁿ⁾ ← A⁽ⁿ⁾ ∘ [Y₍ₙ₎ G₍ₙ₎ᵀ] / [A⁽ⁿ⁾ G₍ₙ₎ (⊗_{m≠n} A⁽ᵐ⁾ᵀA⁽ᵐ⁾) G₍ₙ₎ᵀ]
///   G    ← G    ∘ [X ×ₘ A⁽ᵐ⁾ᵀ ∀m] / [G ×ₘ (A⁽ᵐ⁾ᵀA⁽ᵐ⁾) ∀m]
///
/// where Y = X ×_{m≠n} A⁽ᵐ⁾ᵀ is the same distributed bottleneck operation
/// (MultiModeContract, MergeKind::kCross) that powers orthogonal Tucker —
/// so NTD inherits every HaTen2 variant and its cost profile. Requires a
/// tensor with nonnegative entries.
///
/// Unlike HOOI's factors, NTD factors are not orthonormal, so the returned
/// TuckerModel's fit is computed from the explicit residual
/// ||X - G ×ₘ A⁽ᵐ⁾||, evaluated in O(nnz·|G|) without densifying X.
Result<TuckerModel> Haten2NonnegativeTuckerAls(
    Engine* engine, const SparseTensor& x, std::vector<int64_t> core_dims,
    const Haten2Options& options = {});

}  // namespace haten2

#endif  // HATEN2_CORE_NONNEGATIVE_TUCKER_H_
