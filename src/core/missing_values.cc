#include "core/missing_values.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/als_harness.h"
#include "core/records.h"
#include "linalg/linalg.h"
#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

/// Model value at one coordinate: sum_r lambda_r prod_m A_m(i_m, r).
double ModelValueAt(const KruskalModel& model, const int64_t* idx,
                    int order) {
  double total = 0.0;
  const int64_t rank = model.rank();
  for (int64_t r = 0; r < rank; ++r) {
    double p = model.lambda[static_cast<size_t>(r)];
    for (int m = 0; m < order; ++m) {
      p *= model.factors[static_cast<size_t>(m)](idx[m], r);
    }
    total += p;
  }
  return total;
}

Status ValidateMask(const SparseTensor& x, const SparseTensor& observed) {
  if (observed.dims() != x.dims()) {
    return Status::InvalidArgument("mask dims must match the data tensor");
  }
  if (!observed.canonical() || !x.canonical()) {
    return Status::FailedPrecondition(
        "data and mask must be canonical (call Canonicalize())");
  }
  for (int64_t e = 0; e < observed.nnz(); ++e) {
    if (observed.value(e) != 1.0) {
      return Status::InvalidArgument(
          "mask values must be exactly 1.0 (binary observation mask)");
    }
  }
  std::vector<int64_t> idx(static_cast<size_t>(x.order()));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    for (int m = 0; m < x.order(); ++m) {
      idx[static_cast<size_t>(m)] = x.index(e, m);
    }
    if (observed.Get(idx) != 1.0) {
      return Status::InvalidArgument(
          "every nonzero of x must be inside the observation mask");
    }
  }
  return Status::OK();
}

/// Residual at observed cells: D(c) = x(c) - model(c) for c in the mask
/// (x(c) = 0 for observed-but-zero cells).
Result<SparseTensor> ObservedResidual(const SparseTensor& x,
                                      const SparseTensor& observed,
                                      const KruskalModel& model) {
  HATEN2_ASSIGN_OR_RETURN(SparseTensor d, SparseTensor::Create(x.dims()));
  d.Reserve(observed.nnz());
  std::vector<int64_t> idx(static_cast<size_t>(x.order()));
  for (int64_t e = 0; e < observed.nnz(); ++e) {
    const int64_t* ptr = observed.IndexPtr(e);
    for (int m = 0; m < x.order(); ++m) {
      idx[static_cast<size_t>(m)] = ptr[m];
    }
    double value = x.Get(idx) - ModelValueAt(model, ptr, x.order());
    if (value != 0.0) d.AppendUnchecked(ptr, value);
  }
  d.Canonicalize();
  return d;
}

}  // namespace

Result<double> ObservedFit(const SparseTensor& x,
                           const SparseTensor& observed,
                           const KruskalModel& model) {
  HATEN2_RETURN_IF_ERROR(ValidateMask(x, observed));
  double resid_sq = 0.0;
  double data_sq = 0.0;
  std::vector<int64_t> idx(static_cast<size_t>(x.order()));
  for (int64_t e = 0; e < observed.nnz(); ++e) {
    const int64_t* ptr = observed.IndexPtr(e);
    for (int m = 0; m < x.order(); ++m) {
      idx[static_cast<size_t>(m)] = ptr[m];
    }
    double data = x.Get(idx);
    double diff = data - ModelValueAt(model, ptr, x.order());
    resid_sq += diff * diff;
    data_sq += data * data;
  }
  if (data_sq == 0.0) {
    return Status::InvalidArgument("no observed data mass");
  }
  return 1.0 - std::sqrt(resid_sq / data_sq);
}

Result<MissingValueModel> Haten2ParafacMissing(
    Engine* engine, const SparseTensor& x, const SparseTensor& observed,
    int64_t rank, const MissingValueOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (rank <= 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  if (x.order() < 2 || x.order() > kMaxMrOrder) {
    return Status::InvalidArgument(
        StrFormat("supported orders are 2..%d", kMaxMrOrder));
  }
  if (x.nnz() == 0 || observed.nnz() == 0) {
    return Status::InvalidArgument(
        "data and observation mask must be nonempty");
  }
  HATEN2_RETURN_IF_ERROR(ValidateMask(x, observed));

  const int order = x.order();
  // The EM iterates depend on the observation mask as well as the tensor, so
  // the mask's size rides along in the rank/core slot of the fingerprint.
  const uint64_t fingerprint = CheckpointFingerprint(
      "parafac-em", options.base.variant, options.base.seed,
      options.em_tolerance, {rank, observed.nnz()}, x);

  Rng rng(options.base.seed);
  MissingValueModel out;
  int start_iteration = 0;
  bool has_resume_metric = false;
  double resume_metric = 0.0;
  if (options.base.resume_from != nullptr) {
    const LoadedCheckpoint& ckpt = *options.base.resume_from;
    HATEN2_RETURN_IF_ERROR(ValidateCheckpointForResume(
        ckpt.manifest, "parafac-em", "kruskal", fingerprint));
    if (static_cast<int>(ckpt.kruskal.factors.size()) != order ||
        ckpt.kruskal.rank() != rank) {
      return Status::InvalidArgument(
          "checkpoint model does not match the tensor order or rank");
    }
    for (int m = 0; m < order; ++m) {
      if (ckpt.kruskal.factors[static_cast<size_t>(m)].rows() != x.dim(m)) {
        return Status::InvalidArgument(
            StrFormat("checkpoint factor %d rows do not match mode size", m));
      }
    }
    out.model.lambda = ckpt.kruskal.lambda;
    out.model.factors = ckpt.kruskal.factors;
    out.observed_fit_history = ckpt.manifest.fit_history;
    out.em_iterations = ckpt.manifest.iteration;
    if (!out.observed_fit_history.empty()) {
      out.observed_fit = out.observed_fit_history.back();
    }
    start_iteration = ckpt.manifest.iteration;
    has_resume_metric = true;
    resume_metric = ckpt.manifest.metric;
  } else {
    out.model.lambda.assign(static_cast<size_t>(rank), 1.0);
    for (int m = 0; m < order; ++m) {
      out.model.factors.push_back(
          DenseMatrix::RandomUniform(x.dim(m), rank, &rng));
    }
  }

  AlsHarness::Options harness_options;
  harness_options.max_iterations = options.em_iterations;
  harness_options.tolerance = options.em_tolerance;
  harness_options.trace = options.base.trace;
  harness_options.start_iteration = start_iteration;
  harness_options.has_resume_metric = has_resume_metric;
  harness_options.resume_metric = resume_metric;
  harness_options.external_cache = options.base.contract_cache;
  std::optional<CheckpointWriter> checkpoint_writer;
  if (options.base.checkpoint != nullptr) {
    checkpoint_writer.emplace(*options.base.checkpoint);
    harness_options.checkpoint_every =
        options.base.checkpoint->every_n_iterations;
    harness_options.checkpoint_fn = [&](int iteration, double prev_metric) {
      CheckpointManifest m;
      m.method = "parafac-em";
      m.model_kind = "kruskal";
      m.fingerprint = fingerprint;
      m.iteration = iteration;
      m.metric = prev_metric;
      m.fit_history = out.observed_fit_history;
      return checkpoint_writer->Write(m, &out.model, nullptr);
    };
  }
  AlsHarness harness(engine, harness_options);
  Status loop_status = harness.Run(
      [&](int em, AlsIterationOutcome* outcome) -> Status {
    // E-step: freeze the model; residual D makes X̂ = M_old + D match x on
    // the mask and the model off it.
    KruskalModel frozen = out.model;
    HATEN2_ASSIGN_OR_RETURN(SparseTensor residual,
                            ObservedResidual(x, observed, frozen));

    // M-step: one ALS sweep on X̂. MTTKRP(X̂, n) = MTTKRP_MR(D, n) +
    // A_old diag(λ_old) * (∗_{m≠n} A_m_oldᵀ A_m_cur) by multilinearity.
    for (int n = 0; n < order; ++n) {
      DenseMatrix mttkrp(x.dim(n), rank);
      if (residual.nnz() > 0) {
        HATEN2_ASSIGN_OR_RETURN(
            SliceBlocks y,
            MultiModeContract(engine, residual, out.model.FactorPtrs(), n,
                              MergeKind::kPairwise, options.base.variant));
        mttkrp = y.ToDenseMatrix();
      }
      // Closed-form MTTKRP of the frozen model tensor.
      DenseMatrix cross(rank, rank);
      cross.Fill(1.0);
      for (int m = 0; m < order; ++m) {
        if (m == n) continue;
        HATEN2_ASSIGN_OR_RETURN(
            DenseMatrix g,
            MatMulTransA(frozen.factors[static_cast<size_t>(m)],
                         out.model.factors[static_cast<size_t>(m)]));
        for (int64_t s = 0; s < rank; ++s) {
          for (int64_t r = 0; r < rank; ++r) cross(s, r) *= g(s, r);
        }
      }
      for (int64_t i = 0; i < x.dim(n); ++i) {
        for (int64_t r = 0; r < rank; ++r) {
          double add = 0.0;
          for (int64_t s = 0; s < rank; ++s) {
            add += frozen.factors[static_cast<size_t>(n)](i, s) *
                   frozen.lambda[static_cast<size_t>(s)] * cross(s, r);
          }
          mttkrp(i, r) += add;
        }
      }

      DenseMatrix v(rank, rank);
      v.Fill(1.0);
      for (int m = 0; m < order; ++m) {
        if (m == n) continue;
        DenseMatrix g = Gram(out.model.factors[static_cast<size_t>(m)]);
        for (int64_t s = 0; s < rank; ++s) {
          for (int64_t r = 0; r < rank; ++r) v(s, r) *= g(s, r);
        }
      }
      HATEN2_ASSIGN_OR_RETURN(DenseMatrix updated,
                              SolveRightPinv(mttkrp, v));
      NormalizeColumns(&updated, &out.model.lambda);
      out.model.factors[static_cast<size_t>(n)] = std::move(updated);
    }

    out.em_iterations = em;
    HATEN2_ASSIGN_OR_RETURN(double fit, ObservedFit(x, observed, out.model));
    out.observed_fit = fit;
    out.observed_fit_history.push_back(fit);
    outcome->has_fit = true;
    outcome->fit = fit;
    outcome->has_metric = true;
    outcome->metric = fit;
    outcome->lambda = out.model.lambda;
    return Status::OK();
      });
  if (!loop_status.ok()) return loop_status;
  out.model.fit = out.observed_fit;
  out.model.iterations = out.em_iterations;
  return out;
}

}  // namespace haten2
