#include "core/incremental_refit.h"

#include <chrono>

#include "core/checkpoint.h"
#include "tensor/delta_log.h"

namespace haten2 {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

IncrementalRefitSession::IncrementalRefitSession(
    Engine* engine, SparseTensor base, IncrementalRefitOptions options)
    : engine_(engine), tensor_(std::move(base)), options_(std::move(options)) {
  if (!tensor_.canonical()) tensor_.Canonicalize();
}

void IncrementalRefitSession::WarmStartFromModel(KruskalModel model) {
  model_ = std::move(model);
  has_model_ = true;
}

Status IncrementalRefitSession::WarmStartFromCheckpointDir(
    const std::string& directory) {
  HATEN2_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                          LoadLatestCheckpoint(directory));
  if (loaded.manifest.model_kind != "kruskal") {
    return Status::FailedPrecondition(
        "incremental refit warm-starts need a kruskal checkpoint, found " +
        loaded.manifest.model_kind);
  }
  // Deliberately no fingerprint validation: the session's tensor has grown
  // past the checkpointed one, so this is a warm start (fresh run from the
  // checkpointed factors), not a strict resume.
  WarmStartFromModel(std::move(loaded.kruskal));
  return Status::OK();
}

Status IncrementalRefitSession::Refit() {
  Haten2Options als = options_.als;
  als.contract_cache = &cache_;
  if (has_model_) als.initial_kruskal = &model_;
  // Iteration/fit accounting needs a trace; fall back to a local one when
  // the caller did not ask for observability.
  DecompositionTrace local_trace;
  DecompositionTrace* trace =
      als.trace != nullptr ? als.trace : &local_trace;
  const size_t trace_start = trace->iterations.size();
  als.trace = trace;

  const auto start = std::chrono::steady_clock::now();
  HATEN2_ASSIGN_OR_RETURN(
      KruskalModel refit,
      Haten2ParafacAls(engine_, tensor_, options_.rank, als));
  counters_.refit_seconds += SecondsSince(start);
  counters_.iterations +=
      static_cast<int64_t>(trace->iterations.size() - trace_start);
  for (size_t i = trace->iterations.size(); i > trace_start; --i) {
    const IterationStats& it = trace->iterations[i - 1];
    if (it.has_fit) {
      counters_.last_fit = it.fit;
      break;
    }
  }
  model_ = std::move(refit);
  has_model_ = true;
  return Status::OK();
}

Status IncrementalRefitSession::FitBase() { return Refit(); }

Status IncrementalRefitSession::RefitWithDelta(const SparseTensor& delta) {
  const auto start = std::chrono::steady_clock::now();
  HATEN2_RETURN_IF_ERROR(MergeDelta(&tensor_, delta));
  if (options_.incremental) {
    // Patch the persistent cache relative to the pre-merge tensor it keys:
    // only slices the delta touches are invalidated or rebuilt.
    HATEN2_RETURN_IF_ERROR(cache_.ApplyDelta(tensor_, delta));
  } else {
    // Full-refit baseline: throw the derived forms away wholesale.
    cache_ = ContractCache();
  }
  counters_.merge_seconds += SecondsSince(start);
  counters_.delta_nnz += delta.nnz();
  HATEN2_RETURN_IF_ERROR(Refit());
  ++counters_.epochs;
  return Status::OK();
}

}  // namespace haten2
