#ifndef HATEN2_CORE_GIGATENSOR_H_
#define HATEN2_CORE_GIGATENSOR_H_

#include "core/parafac.h"

namespace haten2 {

/// \brief GigaTensor (Kang, Papalexakis, Harpale & Faloutsos, KDD 2012) —
/// the first distributed PARAFAC, which the paper positions as its direct
/// predecessor: "GigaTensor is similar to HATEN2-PARAFAC-DRN in this paper"
/// (Section V-C). This wrapper runs exactly that configuration, so the
/// historical baseline is available by name: per-column Hadamard jobs whose
/// results a single PairwiseMerge joins — 2R+1 jobs per MTTKRP with
/// 2·nnz(X)·R peak intermediate data (Table IV's DRN row), versus HaTen2's
/// integrated 2 jobs.
///
/// `options.variant` is ignored (forced to kDrn).
inline Result<KruskalModel> GigaTensorParafacAls(
    Engine* engine, const SparseTensor& x, int64_t rank,
    Haten2Options options = {}) {
  options.variant = Variant::kDrn;
  return Haten2ParafacAls(engine, x, rank, options);
}

}  // namespace haten2

#endif  // HATEN2_CORE_GIGATENSOR_H_
