#include "core/incore_contraction.h"

#include <memory>
#include <utility>
#include <vector>

#include "linalg/sparse_kernels.h"
#include "mapreduce/plan.h"
#include "mapreduce/scheduler.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace haten2 {

Result<SliceBlocks> InCoreContraction::Contract(
    const ContractionContext& ctx) const {
  Plan plan("contract-incore");
  auto timing = std::make_shared<ContractionTiming>();
  SliceBlocks blocks;
  int node = plan.AddProducer<SliceBlocks>(
      StrFormat("InCoreContract[m%d]", ctx.free_mode), {},
      [&ctx, timing]() -> Result<SliceBlocks> {
        // Layout acquisition: served from the per-decomposition cache when
        // present (iteration-invariant, like the dataflow record scan),
        // rebuilt for tensors that change between calls.
        WallTimer build_timer;
        std::shared_ptr<const CsfLayout> layout;
        if (ctx.cache != nullptr) {
          HATEN2_ASSIGN_OR_RETURN(layout,
                                  ctx.cache->Layout(*ctx.x, ctx.free_mode));
        } else {
          HATEN2_ASSIGN_OR_RETURN(CsfLayout built,
                                  BuildCsfLayout(*ctx.x, ctx.free_mode));
          layout = std::make_shared<const CsfLayout>(std::move(built));
        }
        timing->layout_build_seconds = build_timer.ElapsedSeconds();

        WallTimer eval_timer;
        std::vector<std::vector<double>> rows;
        if (ctx.kind != MergeKind::kCross) {
          const int rank = static_cast<int>(ctx.block_dims[0]);
          HATEN2_RETURN_IF_ERROR(
              CsfMttkrp(*layout, ctx.cfactors, rank, &rows));
        } else {
          HATEN2_RETURN_IF_ERROR(
              CsfCrossContract(*layout, ctx.cfactors, ctx.block_dims, &rows));
        }
        timing->evaluate_seconds = eval_timer.ElapsedSeconds();

        SliceBlocks out;
        out.free_dim = ctx.x->dim(ctx.free_mode);
        if (ctx.kind != MergeKind::kCross) {
          out.block_dims = {ctx.block_dims.empty() ? 0 : ctx.block_dims[0]};
        } else {
          out.block_dims = ctx.block_dims;
        }
        // No reserve: the rows map must share the dataflow path's rehash
        // history (insertions ascending, default growth) so its iteration
        // order — which downstream float sums depend on — matches.
        for (int64_t si = 0; si < layout->num_slices(); ++si) {
          // The kernels emit only nnz-touched slices, matching the dataflow
          // merges; all-zero rows stay absent.
          out.rows.emplace(layout->slice_ids[static_cast<size_t>(si)],
                           std::move(rows[static_cast<size_t>(si)]));
        }
        return out;
      },
      &blocks);
  plan.AnnotateContraction(node, "incore", timing);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  return blocks;
}

}  // namespace haten2
