#ifndef HATEN2_CORE_LINK_PREDICTION_H_
#define HATEN2_CORE_LINK_PREDICTION_H_

#include <cstdint>
#include <vector>

#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Link prediction from a fitted PARAFAC model: the natural
/// application of the paper's knowledge-base results — a strong score for
/// an *absent* (subject, object, relation) cell is a predicted fact.
///
/// Scoring every cell is infeasible (the paper's tensors have 10¹⁵+ cells),
/// so candidates are generated the way the concepts are read off in Tables
/// VI-VIII: for each component, take the `beam` highest-loaded indices of
/// every mode and enumerate their cross product (beam^N cells per
/// component — the region where a rank-one component can place mass), then
/// score each candidate under the full model, drop the ones already
/// observed, and return the global top k.
struct PredictedEntry {
  std::vector<int64_t> index;
  double score;
};

struct LinkPredictionOptions {
  /// Highest-loaded rows per mode per component considered as candidates.
  int64_t beam = 10;
  /// Use |loading| when ranking rows (set false for nonnegative models,
  /// where signs are meaningful and all-positive).
  bool rank_rows_by_magnitude = true;
};

/// Top-`k` predicted entries under `model` that are absent from `observed`
/// (which must be canonical and match the model's shape). Results are
/// sorted by descending score.
Result<std::vector<PredictedEntry>> PredictTopEntries(
    const KruskalModel& model, const SparseTensor& observed, int64_t k,
    const LinkPredictionOptions& options = {});

}  // namespace haten2

#endif  // HATEN2_CORE_LINK_PREDICTION_H_
