#ifndef HATEN2_CORE_LINK_PREDICTION_H_
#define HATEN2_CORE_LINK_PREDICTION_H_

#include <cstdint>
#include <vector>

#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Link prediction from a fitted PARAFAC model: the natural
/// application of the paper's knowledge-base results — a strong score for
/// an *absent* (subject, object, relation) cell is a predicted fact.
///
/// Scoring every cell is infeasible (the paper's tensors have 10¹⁵+ cells),
/// so candidates are generated the way the concepts are read off in Tables
/// VI-VIII: for each component, take the `beam` highest-loaded indices of
/// every mode and enumerate their cross product (beam^N cells per
/// component — the region where a rank-one component can place mass). The
/// per-component cross products overlap heavily, so candidates are
/// deduplicated across components before scoring; each unique unobserved
/// cell is then scored under the full model and the global top k returned.
struct PredictedEntry {
  std::vector<int64_t> index;
  double score;
};

struct LinkPredictionOptions {
  /// Highest-loaded rows per mode per component considered as candidates.
  int64_t beam = 10;
  /// Use |loading| when ranking rows (set false for nonnegative models,
  /// where signs are meaningful and all-positive).
  bool rank_rows_by_magnitude = true;
};

/// Candidate-generation counters, for serving stats and diagnostics.
struct LinkPredictionStats {
  /// Cells enumerated over all per-component beam cross products
  /// (Σ_r beam^N, before any dedup).
  int64_t candidates_enumerated = 0;
  /// Unique cells after cross-component dedup.
  int64_t candidates_deduped = 0;
  /// Unique cells actually scored (deduped minus already-observed cells).
  int64_t candidates_scored = 0;
};

/// The per-mode top-loaded rows of every component — the candidate beams of
/// PredictTopEntries. Computing them scans every factor once per component
/// (O(N·R·I)); serving keeps them cached per model version so repeated
/// queries skip the scan. rows[r][m] holds the top `beam` (or all, when a
/// mode is smaller) row indices of mode m under component r, best first.
struct CandidateBeams {
  int64_t beam = 0;
  bool rank_rows_by_magnitude = true;
  std::vector<std::vector<std::vector<int64_t>>> rows;

  /// True when these beams were computed with the given options.
  bool Matches(const LinkPredictionOptions& options) const {
    return beam == options.beam &&
           rank_rows_by_magnitude == options.rank_rows_by_magnitude;
  }
};

/// Precomputes the candidate beams of `model` under `options`.
Result<CandidateBeams> ComputeCandidateBeams(
    const KruskalModel& model, const LinkPredictionOptions& options = {});

/// Top-`k` predicted entries under `model` that are absent from `observed`
/// (which must be canonical and match the model's shape). Results are
/// sorted by descending score. When `stats` is non-null the candidate
/// counters are written to it (on success).
Result<std::vector<PredictedEntry>> PredictTopEntries(
    const KruskalModel& model, const SparseTensor& observed, int64_t k,
    const LinkPredictionOptions& options = {},
    LinkPredictionStats* stats = nullptr);

/// Same, but with the candidate beams precomputed by ComputeCandidateBeams
/// (they must match `options` and the model they were computed from).
/// Produces byte-identical results to the overload above — serving relies
/// on this to answer from its per-version beam cache.
Result<std::vector<PredictedEntry>> PredictTopEntries(
    const KruskalModel& model, const CandidateBeams& beams,
    const SparseTensor& observed, int64_t k,
    const LinkPredictionOptions& options = {},
    LinkPredictionStats* stats = nullptr);

}  // namespace haten2

#endif  // HATEN2_CORE_LINK_PREDICTION_H_
