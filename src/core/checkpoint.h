#ifndef HATEN2_CORE_CHECKPOINT_H_
#define HATEN2_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/variant.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Durable ALS-iteration checkpoints (fault tolerance).
///
/// A long decomposition that dies between iterations — process kill, o.o.m.,
/// an aborted engine job — loses only the iterations since the last
/// checkpoint, not the whole run. A checkpoint is one directory
///
///   <directory>/iter_<NNNNNN>/
///     MANIFEST            versioned text manifest (see below)
///     model.mode<k>.txt   factor matrices      (model_io.h text formats,
///     model.lambda.txt    PARAFAC weights       %.17g — doubles round-trip
///     model.core.txt      Tucker core           bit-exactly)
///
/// holding *everything* the ALS loop needs to continue the exact iterate
/// sequence: the factor matrices (plus λ or the core), the iteration
/// counter, the fit / core-norm histories, the harness's convergence state
/// (the metric the next iteration's convergence test compares against), and
/// a fingerprint of the run configuration (method, variant, seed,
/// tolerance, rank/core dims, tensor shape and nnz) so a checkpoint cannot
/// silently resume a *different* run.
///
/// **Atomicity.** A checkpoint is written into a `.tmp` staging directory
/// and committed with one std::filesystem::rename — atomic on POSIX — so a
/// crash mid-write leaves either the previous checkpoint set or the new one,
/// never a half-written directory a resume could load. Readers ignore
/// staging directories. The manifest additionally ends with an `end` marker
/// line, so a truncated manifest (torn copy, partial download) is rejected
/// with a clear Status instead of resuming from garbage.
///
/// **Retention.** After each commit the writer prunes the oldest checkpoints
/// beyond `keep_last`, bounding disk use on long runs while always keeping
/// the newest K as fallbacks.

/// \brief Where and how often to checkpoint. Passed to the drivers via
/// Haten2Options::checkpoint (not owned).
struct CheckpointOptions {
  /// Directory the iter_<N> checkpoint directories live in; created on the
  /// first write if absent.
  std::string directory;
  /// Checkpoint after every N-th completed ALS iteration (N >= 1).
  int every_n_iterations = 5;
  /// How many committed checkpoints to retain (>= 1); older ones are
  /// removed after each successful commit.
  int keep_last = 2;
};

/// \brief The run state recorded alongside the model. Field order matches
/// the on-disk manifest.
struct CheckpointManifest {
  /// Driver family: "parafac", "parafac-nn", "tucker", "tucker-nn",
  /// "parafac-em" (missing values).
  std::string method;
  /// "kruskal" or "tucker" — which model files the checkpoint carries.
  std::string model_kind;
  /// CheckpointFingerprint() of the run configuration. Resume refuses a
  /// checkpoint whose fingerprint does not match the current run.
  uint64_t fingerprint = 0;
  /// The last completed ALS iteration (1-based); resume continues at
  /// iteration + 1.
  int iteration = 0;
  /// The AlsHarness convergence state at checkpoint time: the metric the
  /// next iteration's convergence delta is compared against (-1 when no
  /// metric has been recorded yet — the harness's initial state).
  double metric = -1.0;
  /// Per-iteration fit history up to `iteration` (empty when the driver
  /// does not compute fits).
  std::vector<double> fit_history;
  /// Per-iteration ||G|| history (Tucker-family drivers; empty otherwise).
  std::vector<double> core_norm_history;
};

/// \brief A checkpoint read back from disk: the manifest plus the model of
/// manifest.model_kind (the other member is default-constructed).
struct LoadedCheckpoint {
  CheckpointManifest manifest;
  KruskalModel kruskal;
  TuckerModel tucker;
};

/// \brief Writes atomic, versioned checkpoints under options.directory and
/// enforces keep-last-K retention. One writer per decomposition run.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(CheckpointOptions options)
      : options_(std::move(options)) {}

  /// Saves one checkpoint: stage under a `.tmp` name, atomically rename to
  /// iter_<manifest.iteration>, then prune beyond keep_last. Exactly one of
  /// `kruskal` / `tucker` must be non-null and must match
  /// manifest.model_kind.
  Status Write(const CheckpointManifest& manifest,
               const KruskalModel* kruskal, const TuckerModel* tucker);

  const CheckpointOptions& options() const { return options_; }

 private:
  CheckpointOptions options_;
};

/// Subdirectory name of the checkpoint for `iteration` ("iter_000042").
std::string CheckpointDirName(int iteration);

/// Committed checkpoint directories under `directory`, sorted by iteration
/// ascending. Staging (`.tmp`) and unrelated entries are skipped. An empty
/// or missing directory yields an empty list.
Result<std::vector<std::string>> ListCheckpoints(const std::string& directory);

/// Parses `<checkpoint_dir>/MANIFEST`. A missing file is NotFound; a
/// truncated or malformed manifest is InvalidArgument naming the defect.
Result<CheckpointManifest> ReadCheckpointManifest(
    const std::string& checkpoint_dir);

/// Loads one committed checkpoint directory (manifest + model files).
Result<LoadedCheckpoint> LoadCheckpoint(const std::string& checkpoint_dir);

/// Loads the newest *loadable* committed checkpoint under `directory`:
/// candidates are tried newest-first and ones that fail to load (torn
/// manifest without the `end` marker, half-written model files, orphaned
/// `*.tmp` debris that slipped past naming) are skipped with a warning —
/// an older committed checkpoint beats starting over. NotFound when no
/// candidate exists; the newest candidate's load error when all are broken.
Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& directory);

/// Shared driver-side resume gate: the checkpoint must carry the expected
/// model kind and method and the exact fingerprint of the current run;
/// anything else is kFailedPrecondition with a message naming the mismatch.
Status ValidateCheckpointForResume(const CheckpointManifest& manifest,
                                   const std::string& method,
                                   const std::string& model_kind,
                                   uint64_t fingerprint);

/// \brief Fingerprint of everything that must match for a checkpoint to
/// continue the same iterate sequence: method, variant, seed, tolerance,
/// rank / core dims, and the input tensor's shape and nnz. Deliberately
/// excludes max_iterations (extending a finished run is legitimate) and
/// cluster/scheduling knobs (they never change the iterates).
uint64_t CheckpointFingerprint(const std::string& method, Variant variant,
                               uint64_t seed, double tolerance,
                               const std::vector<int64_t>& rank_or_core,
                               const SparseTensor& x);

}  // namespace haten2

#endif  // HATEN2_CORE_CHECKPOINT_H_
