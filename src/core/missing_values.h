#ifndef HATEN2_CORE_MISSING_VALUES_H_
#define HATEN2_CORE_MISSING_VALUES_H_

#include "core/parafac.h"
#include "mapreduce/engine.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief PARAFAC with missing values — the first of the paper's stated
/// future directions (Section VI: "extending our framework to other
/// settings such as tensor decompositions with missing values").
///
/// The observed cells are given as a sparse tensor `x` plus a same-shaped
/// binary mask `observed` (1 where the cell was measured; cells outside the
/// mask are *unknown*, not zero). The solver is EM-ALS: each outer step
/// imputes the unobserved cells from the current model — which only ever
/// touches the observed pattern plus the model, keeping everything
/// sparse-shaped — and runs one ALS sweep of the standard HaTen2-PARAFAC
/// machinery on the completed tensor:
///
///   X̂ = x * observed + M(θ) * (1 - observed)   (restricted to the union
///                                               pattern actually needed)
///
/// Because the ALS sweep is the unmodified distributed bottleneck op, the
/// extension inherits every variant and all the cost behaviour of the base
/// method.
struct MissingValueOptions {
  Haten2Options base;
  /// Outer EM iterations (each runs base.max_iterations ALS sweeps, usually
  /// 1).
  int em_iterations = 10;
  /// Stop when the fit over *observed* cells changes less than this.
  double em_tolerance = 1e-7;
};

/// Result carries the model plus the fit restricted to observed cells.
struct MissingValueModel {
  KruskalModel model;
  double observed_fit = 0.0;
  int em_iterations = 0;
  std::vector<double> observed_fit_history;
};

/// Requirements: `observed` is canonical, same dims as `x`, its values are
/// exactly 1.0, and every nonzero of `x` lies inside the mask.
Result<MissingValueModel> Haten2ParafacMissing(
    Engine* engine, const SparseTensor& x, const SparseTensor& observed,
    int64_t rank, const MissingValueOptions& options = {});

/// Fit of a Kruskal model evaluated only on the observed cells:
/// 1 - ||P_obs(X - M)|| / ||P_obs(X)||.
Result<double> ObservedFit(const SparseTensor& x,
                           const SparseTensor& observed,
                           const KruskalModel& model);

}  // namespace haten2

#endif  // HATEN2_CORE_MISSING_VALUES_H_
