#ifndef HATEN2_CORE_ALS_HARNESS_H_
#define HATEN2_CORE_ALS_HARNESS_H_

#include <functional>
#include <vector>

#include "core/contract.h"
#include "mapreduce/engine.h"
#include "mapreduce/stats.h"
#include "util/status.h"

namespace haten2 {

/// \brief What one ALS (outer) iteration reports back to the harness: the
/// model-quality numbers for the trace, and the scalar the convergence test
/// compares across iterations. A body that fails mid-iteration leaves the
/// fields it never reached unset — exactly what the trace should record.
struct AlsIterationOutcome {
  bool has_fit = false;
  double fit = 0.0;
  bool has_core_norm = false;
  double core_norm = 0.0;
  /// PARAFAC λ after the iteration (left empty by Tucker bodies).
  std::vector<double> lambda;

  /// Sketched-Tucker sweep annotations (core/sketched_tucker.cc; left unset
  /// by every other driver). sketch_seconds is the driver-side time spent
  /// building the projected factors and running the randomized range
  /// finder; sketch_dims is the sketch width s (0 on polish sweeps);
  /// sketch_polish marks the exact-polish sweeps appended at the end.
  bool has_sketch = false;
  double sketch_seconds = 0.0;
  int64_t sketch_dims = 0;
  bool sketch_polish = false;

  /// Convergence metric for this iteration (fit for PARAFAC, ||G|| for
  /// Tucker). When unset the harness skips the convergence test and the
  /// loop runs to max_iterations — matching drivers whose metric is
  /// optional (PARAFAC with compute_fit off).
  bool has_metric = false;
  double metric = 0.0;
};

/// \brief The outer-iteration loop shared by every decomposition driver:
/// runs the per-iteration body up to max_iterations times, captures one
/// IterationStats per iteration into the trace, and stops when the metric
/// converges.
///
/// The harness owns the two pieces the drivers used to hand-roll:
///
///   - **Job attribution by id.** Before each iteration it takes the
///     engine's NextJobId() watermark and afterwards snapshots
///     PipelineSince(watermark) — jobs (and plans) belong to the iteration
///     whose id range they fall in, which stays correct when a PlanScheduler
///     completes jobs out of submission order. (The legacy drivers sliced
///     pipeline().jobs by position, which only works for serial execution.)
///   - **Convergence gating.** The test fires only from the second metric
///     on (`prev >= 0` gate, so e.g. a negative PARAFAC fit never
///     converges), comparing |metric − prev| against
///     tolerance × tolerance_scale, strictly or inclusively per
///     converge_on_equal. These reproduce the legacy drivers' semantics
///     bit-for-bit; do not "simplify" them.
///
/// A failed iteration is traced with the jobs that ran before the failure
/// (the paper's o.o.m. post-mortems keep their numbers), then its status is
/// returned.
///
/// The harness also owns the per-decomposition ContractCache: bodies pass
/// cache() to MultiModeContract for contractions of the iteration-invariant
/// input tensor (and nullptr for tensors rebuilt each iteration, like the
/// EM residual).
class AlsHarness {
 public:
  struct Options {
    int max_iterations = 20;
    double tolerance = 1e-6;
    /// The metric delta is compared against tolerance * tolerance_scale
    /// (Tucker scales by ||X||; everyone else leaves it 1).
    double tolerance_scale = 1.0;
    /// false: converge when |Δ| <  bound (PARAFAC-style strict test);
    /// true:  converge when |Δ| <= bound (Tucker's inclusive test).
    bool converge_on_equal = false;
    /// Optional per-iteration trace sink (Haten2Options::trace). Not owned.
    DecompositionTrace* trace = nullptr;

    /// Resume (checkpoint restart): the loop runs iterations
    /// [start_iteration + 1, max_iterations], so a resumed run and an
    /// uninterrupted one number their iterations — and their trace entries
    /// and history appends — identically. 0 = a fresh run.
    int start_iteration = 0;
    /// Restored convergence state: the metric recorded by the checkpoint
    /// (the harness's prev-metric at checkpoint time). With
    /// has_resume_metric false the test starts cold, exactly like a fresh
    /// run. Restoring it makes the first resumed iteration's convergence
    /// test compare against the pre-interruption metric — bit-identical to
    /// never having stopped.
    bool has_resume_metric = false;
    double resume_metric = 0.0;

    /// Periodic checkpointing: after every `checkpoint_every`-th completed
    /// iteration (and only when the iteration did not converge — a
    /// converged run returns its final model, there is nothing left to
    /// protect), the harness calls `checkpoint_fn(iteration, prev_metric)`
    /// where prev_metric is the convergence state a resume must restore.
    /// A checkpoint failure fails the run: the caller asked for
    /// durability, silently losing it would defeat the point. 0 disables.
    int checkpoint_every = 0;
    std::function<Status(int iteration, double prev_metric)> checkpoint_fn;

    /// Optional caller-owned ContractCache (Haten2Options::contract_cache).
    /// When set, cache() returns it instead of the harness-private cache,
    /// so derived forms of the input tensor survive across decompositions —
    /// the incremental-refit path keeps one cache alive across epochs and
    /// patches it per delta instead of rebuilding layouts from scratch.
    /// Not owned; must outlive the harness.
    ContractCache* external_cache = nullptr;
  };

  /// The iteration body: runs one full ALS sweep (iteration numbers start
  /// at 1), fills `outcome`, returns the first failure.
  using IterationBody =
      std::function<Status(int iteration, AlsIterationOutcome* outcome)>;

  AlsHarness(Engine* engine, Options options)
      : engine_(engine), options_(options) {}

  AlsHarness(const AlsHarness&) = delete;
  AlsHarness& operator=(const AlsHarness&) = delete;

  /// Runs the loop. Returns OK when it converged or exhausted
  /// max_iterations, otherwise the first iteration failure.
  Status Run(const IterationBody& body);

  /// Input-scan cache for the decomposition's invariant tensor: the
  /// caller-provided Options::external_cache when set, else a private
  /// per-decomposition cache.
  ContractCache* cache() {
    return options_.external_cache != nullptr ? options_.external_cache
                                              : &cache_;
  }

 private:
  Engine* engine_;
  Options options_;
  ContractCache cache_;
};

}  // namespace haten2

#endif  // HATEN2_CORE_ALS_HARNESS_H_
