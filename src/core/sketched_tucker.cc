#include "core/sketched_tucker.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/als_harness.h"
#include "core/checkpoint.h"
#include "core/records.h"
#include "core/tucker.h"
#include "linalg/linalg.h"
#include "linalg/sketch.h"
#include "mapreduce/plan.h"
#include "mapreduce/scheduler.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace haten2 {

Result<TuckerModel> Haten2SketchedTuckerAls(Engine* engine,
                                            const SparseTensor& x,
                                            std::vector<int64_t> core_dims,
                                            const Haten2Options& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (x.order() < 2 || x.order() > kMaxMrOrder) {
    return Status::InvalidArgument(
        StrFormat("sketched Tucker supports orders 2..%d, got %d",
                  kMaxMrOrder, x.order()));
  }
  if (x.nnz() == 0) {
    return Status::InvalidArgument("cannot decompose an all-zero tensor");
  }
  const int order = x.order();
  if (static_cast<int>(core_dims.size()) != order) {
    return Status::InvalidArgument("core_dims must have one entry per mode");
  }
  int64_t max_core = 0;
  for (int m = 0; m < order; ++m) {
    if (core_dims[static_cast<size_t>(m)] <= 0 ||
        core_dims[static_cast<size_t>(m)] > x.dim(m)) {
      return Status::InvalidArgument(StrFormat(
          "core dimension %lld invalid for mode %d of size %lld",
          (long long)core_dims[static_cast<size_t>(m)], m,
          (long long)x.dim(m)));
    }
    max_core = std::max(max_core, core_dims[static_cast<size_t>(m)]);
  }

  const ClusterConfig& config = engine->config();
  if (config.tucker_sketch == "none") {
    return Status::InvalidArgument(
        "Haten2SketchedTuckerAls needs ClusterConfig::tucker_sketch of "
        "\"gaussian\" or \"countsketch\" (exact runs go through "
        "Haten2TuckerAls)");
  }
  HATEN2_ASSIGN_OR_RETURN(SketchKind kind,
                          ParseSketchKind(config.tucker_sketch));
  // Auto sketch width: the largest core dimension plus a small
  // oversampling margin (the randomized-SVD literature's p ≈ 4..10).
  const int64_t sketch_size =
      config.sketch_size > 0 ? config.sketch_size : max_core + 4;
  if (sketch_size < max_core) {
    return Status::InvalidArgument(StrFormat(
        "sketch_size %lld is smaller than the largest core dimension %lld; "
        "the range finder cannot extract more directions than the sketch "
        "keeps",
        (long long)sketch_size, (long long)max_core));
  }
  const int polish =
      std::min(config.exact_polish_sweeps, options.max_iterations);

  // The sketch configuration changes the iterate sequence, so it belongs in
  // the resume fingerprint even though the manifest's method stays the
  // plain family name.
  const uint64_t fingerprint = CheckpointFingerprint(
      StrFormat("sketched-tucker/%s/s%lld/p%d", SketchKindName(kind),
                (long long)sketch_size, polish),
      options.variant, options.seed, options.tolerance, core_dims, x);

  Rng rng(options.seed);
  TuckerModel model;
  int start_iteration = 0;
  bool has_resume_metric = false;
  double resume_metric = 0.0;
  if (options.resume_from != nullptr) {
    const LoadedCheckpoint& ckpt = *options.resume_from;
    HATEN2_RETURN_IF_ERROR(ValidateCheckpointForResume(
        ckpt.manifest, "sketched-tucker", "tucker", fingerprint));
    if (static_cast<int>(ckpt.tucker.factors.size()) != order) {
      return Status::InvalidArgument(
          "checkpoint model does not match the tensor order");
    }
    for (int m = 0; m < order; ++m) {
      const DenseMatrix& f = ckpt.tucker.factors[static_cast<size_t>(m)];
      if (f.rows() != x.dim(m) ||
          f.cols() != core_dims[static_cast<size_t>(m)]) {
        return Status::InvalidArgument(
            StrFormat("checkpoint factor %d shape does not match", m));
      }
    }
    // Verbatim restore — no defensive QR — for the same bit-identity
    // reasons as the exact driver (see tucker.cc).
    model.factors = ckpt.tucker.factors;
    model.core = ckpt.tucker.core;
    model.core_norm_history = ckpt.manifest.core_norm_history;
    model.iterations = ckpt.manifest.iteration;
    start_iteration = ckpt.manifest.iteration;
    has_resume_metric = true;
    resume_metric = ckpt.manifest.metric;
  } else if (options.initial_tucker != nullptr) {
    const TuckerModel& init = *options.initial_tucker;
    if (static_cast<int>(init.factors.size()) != order) {
      return Status::InvalidArgument(
          "warm-start model does not match the tensor order");
    }
    model.factors.reserve(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      const DenseMatrix& f = init.factors[static_cast<size_t>(m)];
      if (f.rows() != x.dim(m) ||
          f.cols() != core_dims[static_cast<size_t>(m)]) {
        return Status::InvalidArgument(
            StrFormat("warm-start factor %d shape does not match", m));
      }
      HATEN2_ASSIGN_OR_RETURN(QrResult qr, QrDecompose(f));
      model.factors.push_back(std::move(qr.q));
    }
  } else {
    // Same initialization draw as the exact driver: at a fixed seed the
    // sketched and exact runs start from identical factors, which is what
    // makes the fig1 fit-vs-speed ablation a controlled comparison.
    model.factors.reserve(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      DenseMatrix random = DenseMatrix::RandomNormal(
          x.dim(m), core_dims[static_cast<size_t>(m)], &rng);
      HATEN2_ASSIGN_OR_RETURN(QrResult qr, QrDecompose(random));
      model.factors.push_back(std::move(qr.q));
    }
  }

  const double x_norm = x.FrobeniusNorm();
  AlsHarness::Options harness_options;
  harness_options.max_iterations = options.max_iterations;
  harness_options.tolerance = options.tolerance;
  harness_options.tolerance_scale = x_norm;
  harness_options.converge_on_equal = true;
  harness_options.trace = options.trace;
  harness_options.start_iteration = start_iteration;
  harness_options.has_resume_metric = has_resume_metric;
  harness_options.resume_metric = resume_metric;
  harness_options.external_cache = options.contract_cache;
  std::optional<CheckpointWriter> checkpoint_writer;
  if (options.checkpoint != nullptr) {
    checkpoint_writer.emplace(*options.checkpoint);
    harness_options.checkpoint_every = options.checkpoint->every_n_iterations;
    harness_options.checkpoint_fn = [&](int iteration, double prev_metric) {
      CheckpointManifest m;
      m.method = "sketched-tucker";
      m.model_kind = "tucker";
      m.fingerprint = fingerprint;
      m.iteration = iteration;
      m.metric = prev_metric;
      m.core_norm_history = model.core_norm_history;
      return checkpoint_writer->Write(m, nullptr, &model);
    };
  }
  AlsHarness harness(engine, harness_options);
  Status loop_status = harness.Run(
      [&](int iter, AlsIterationOutcome* outcome) -> Status {
        const bool polish_sweep = iter > options.max_iterations - polish;
        double sketch_seconds = 0.0;
        SliceBlocks last_y;
        for (int n = 0; n < order; ++n) {
          // The last mode is exact on every sweep: its CrossMerge blocks
          // serve both the factor update and the core, so the sweep's
          // metric is always the true ||G||.
          const bool exact_mode = polish_sweep || n == order - 1;
          if (exact_mode) {
            HATEN2_ASSIGN_OR_RETURN(
                SliceBlocks y,
                MultiModeContract(engine, x, model.FactorPtrs(), n,
                                  MergeKind::kCross, options.variant,
                                  harness.cache()));
            HATEN2_ASSIGN_OR_RETURN(
                DenseMatrix factor,
                TuckerLeadingFactor(y, core_dims[static_cast<size_t>(n)]));
            model.factors[static_cast<size_t>(n)] = std::move(factor);
            if (n == order - 1) last_y = std::move(y);
            continue;
          }
          // Sketched update: project every contracted factor to s columns
          // (independent plan nodes), contract through the fused broadcast
          // merge over the sketched Khatri–Rao structure, then range-find
          // on the s-wide blocks.
          WallTimer sketch_timer;
          Plan plan(StrFormat("sketch-m%d", n));
          std::vector<DenseMatrix> sketched(static_cast<size_t>(order));
          for (int m = 0; m < order; ++m) {
            if (m == n) continue;
            const DenseMatrix* factor_m =
                &model.factors[static_cast<size_t>(m)];
            const uint64_t omega_seed = SketchSeedForMode(options.seed, m);
            int node = plan.AddProducer<DenseMatrix>(
                StrFormat("Sketch[%s,m%d]", SketchKindName(kind), m), {},
                [factor_m, kind, sketch_size,
                 omega_seed]() -> Result<DenseMatrix> {
                  return ApplySketch(*factor_m, kind, sketch_size,
                                     omega_seed);
                },
                &sketched[static_cast<size_t>(m)]);
            plan.AnnotateContraction(node, "sketch");
          }
          PlanScheduler scheduler(engine);
          HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
          sketch_seconds += sketch_timer.ElapsedSeconds();
          std::vector<const DenseMatrix*> sketched_ptrs(
              static_cast<size_t>(order), nullptr);
          for (int m = 0; m < order; ++m) {
            if (m != n) sketched_ptrs[static_cast<size_t>(m)] =
                &sketched[static_cast<size_t>(m)];
          }
          HATEN2_ASSIGN_OR_RETURN(
              SliceBlocks z,
              MultiModeContract(engine, x, sketched_ptrs, n,
                                MergeKind::kSketchFused, options.variant,
                                harness.cache()));
          WallTimer range_timer;
          HATEN2_ASSIGN_OR_RETURN(
              DenseMatrix factor,
              TuckerLeadingFactor(z, core_dims[static_cast<size_t>(n)]));
          sketch_seconds += range_timer.ElapsedSeconds();
          model.factors[static_cast<size_t>(n)] = std::move(factor);
        }
        const int last = order - 1;
        HATEN2_ASSIGN_OR_RETURN(
            model.core,
            TuckerCoreFromBlocks(last_y,
                                 model.factors[static_cast<size_t>(last)],
                                 core_dims, last));
        model.iterations = iter;
        const double core_norm = model.core.FrobeniusNorm();
        model.core_norm_history.push_back(core_norm);
        outcome->has_core_norm = true;
        outcome->core_norm = core_norm;
        // Sketched sweeps always run their budget: the projection noise
        // makes early ||G|| deltas untrustworthy, and converging before the
        // polish phase would skip the accuracy-recovery sweeps entirely.
        outcome->has_metric = polish_sweep;
        outcome->metric = core_norm;
        outcome->has_sketch = true;
        outcome->sketch_seconds = sketch_seconds;
        outcome->sketch_dims = polish_sweep ? 0 : sketch_size;
        outcome->sketch_polish = polish_sweep;
        return Status::OK();
      });
  if (!loop_status.ok()) return loop_status;
  HATEN2_ASSIGN_OR_RETURN(model.fit, TuckerFit(x, model));
  return model;
}

}  // namespace haten2
