#include "core/parafac.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/als_harness.h"
#include "core/records.h"
#include "linalg/linalg.h"
#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

constexpr double kNonnegativeEps = 1e-12;

/// Shared by the warm-start and checkpoint-resume paths: the given model
/// must fit the tensor's order, the requested rank, and every mode size.
Status CheckKruskalShape(const KruskalModel& init, const SparseTensor& x,
                         int64_t rank, const char* what) {
  const int order = x.order();
  if (static_cast<int>(init.factors.size()) != order || init.rank() != rank ||
      static_cast<int64_t>(init.lambda.size()) != rank) {
    return Status::InvalidArgument(
        std::string(what) + " model does not match the tensor order or rank");
  }
  for (int m = 0; m < order; ++m) {
    if (init.factors[static_cast<size_t>(m)].rows() != x.dim(m)) {
      return Status::InvalidArgument(StrFormat(
          "%s factor %d rows do not match mode size", what, m));
    }
  }
  return Status::OK();
}

}  // namespace

Result<KruskalModel> Haten2ParafacAls(Engine* engine, const SparseTensor& x,
                                      int64_t rank,
                                      const Haten2Options& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (rank <= 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  if (x.order() < 2 || x.order() > kMaxMrOrder) {
    return Status::InvalidArgument(
        StrFormat("HaTen2-PARAFAC supports orders 2..%d, got %d", kMaxMrOrder,
                  x.order()));
  }
  if (x.nnz() == 0) {
    return Status::InvalidArgument("cannot decompose an all-zero tensor");
  }
  const int order = x.order();

  const std::string ckpt_method =
      options.nonnegative ? "parafac-nn" : "parafac";
  const uint64_t fingerprint =
      CheckpointFingerprint(ckpt_method, options.variant, options.seed,
                            options.tolerance, {rank}, x);

  Rng rng(options.seed);
  KruskalModel model;
  int start_iteration = 0;
  bool has_resume_metric = false;
  double resume_metric = 0.0;
  if (options.resume_from != nullptr) {
    const LoadedCheckpoint& ckpt = *options.resume_from;
    HATEN2_RETURN_IF_ERROR(ValidateCheckpointForResume(
        ckpt.manifest, ckpt_method, "kruskal", fingerprint));
    HATEN2_RETURN_IF_ERROR(
        CheckKruskalShape(ckpt.kruskal, x, rank, "checkpoint"));
    model.lambda = ckpt.kruskal.lambda;
    model.factors = ckpt.kruskal.factors;
    // Continue — not restart — the histories and iteration numbering, so a
    // resumed trace appends after the checkpointed entries instead of
    // duplicating them.
    model.fit_history = ckpt.manifest.fit_history;
    model.iterations = ckpt.manifest.iteration;
    if (!model.fit_history.empty()) model.fit = model.fit_history.back();
    start_iteration = ckpt.manifest.iteration;
    has_resume_metric = true;
    resume_metric = ckpt.manifest.metric;
  } else if (options.initial_kruskal != nullptr) {
    const KruskalModel& init = *options.initial_kruskal;
    HATEN2_RETURN_IF_ERROR(CheckKruskalShape(init, x, rank, "warm-start"));
    model.lambda = init.lambda;
    model.factors = init.factors;
  } else {
    model.lambda.assign(static_cast<size_t>(rank), 1.0);
    model.factors.reserve(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      model.factors.push_back(
          DenseMatrix::RandomUniform(x.dim(m), rank, &rng));
    }
  }

  std::vector<DenseMatrix> grams;
  grams.reserve(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) grams.push_back(Gram(model.factors[m]));

  AlsHarness::Options harness_options;
  harness_options.max_iterations = options.max_iterations;
  harness_options.tolerance = options.tolerance;
  harness_options.trace = options.trace;
  harness_options.start_iteration = start_iteration;
  harness_options.has_resume_metric = has_resume_metric;
  harness_options.resume_metric = resume_metric;
  harness_options.external_cache = options.contract_cache;
  std::optional<CheckpointWriter> checkpoint_writer;
  if (options.checkpoint != nullptr) {
    checkpoint_writer.emplace(*options.checkpoint);
    harness_options.checkpoint_every = options.checkpoint->every_n_iterations;
    harness_options.checkpoint_fn = [&](int iteration, double prev_metric) {
      CheckpointManifest m;
      m.method = ckpt_method;
      m.model_kind = "kruskal";
      m.fingerprint = fingerprint;
      m.iteration = iteration;
      m.metric = prev_metric;
      m.fit_history = model.fit_history;
      return checkpoint_writer->Write(m, &model, nullptr);
    };
  }
  AlsHarness harness(engine, harness_options);
  Status loop_status = harness.Run(
      [&](int iter, AlsIterationOutcome* outcome) -> Status {
      for (int n = 0; n < order; ++n) {
        HATEN2_ASSIGN_OR_RETURN(
            SliceBlocks y,
            MultiModeContract(engine, x, model.FactorPtrs(), n,
                              MergeKind::kPairwise, options.variant,
                              harness.cache()));
        DenseMatrix mttkrp = y.ToDenseMatrix();  // I_n x R

        // V = ∗_{m != n} A_mᵀ A_m.
        DenseMatrix v(rank, rank);
        v.Fill(1.0);
        for (int m = 0; m < order; ++m) {
          if (m == n) continue;
          for (int64_t r = 0; r < rank; ++r) {
            for (int64_t s = 0; s < rank; ++s) {
              v(r, s) *= grams[static_cast<size_t>(m)](r, s);
            }
          }
        }

        DenseMatrix updated;
        if (options.nonnegative) {
          // Lee-Seung multiplicative update:
          // A ← A ∘ MTTKRP / (A·V), keeping entries nonnegative.
          DenseMatrix& a = model.factors[static_cast<size_t>(n)];
          HATEN2_ASSIGN_OR_RETURN(DenseMatrix av, MatMul(a, v));
          updated = a;
          for (int64_t i = 0; i < a.rows(); ++i) {
            for (int64_t r = 0; r < rank; ++r) {
              double denom = av(i, r);
              double num = mttkrp(i, r);
              updated(i, r) =
                  a(i, r) * (num / std::max(denom, kNonnegativeEps));
              if (updated(i, r) < 0.0) updated(i, r) = 0.0;
            }
          }
        } else {
          HATEN2_ASSIGN_OR_RETURN(updated, SolveRightPinv(mttkrp, v));
        }
        NormalizeColumns(&updated, &model.lambda);
        model.factors[static_cast<size_t>(n)] = std::move(updated);
        grams[static_cast<size_t>(n)] =
            Gram(model.factors[static_cast<size_t>(n)]);
      }
      model.iterations = iter;
      if (options.compute_fit) {
        HATEN2_ASSIGN_OR_RETURN(double fit, KruskalFit(x, model));
        model.fit = fit;
        model.fit_history.push_back(fit);
        outcome->has_fit = true;
        outcome->fit = fit;
        outcome->has_metric = true;
        outcome->metric = fit;
      }
      outcome->lambda = model.lambda;
      return Status::OK();
      });
  if (!loop_status.ok()) return loop_status;
  return model;
}

}  // namespace haten2
