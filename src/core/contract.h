#ifndef HATEN2_CORE_CONTRACT_H_
#define HATEN2_CORE_CONTRACT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/records.h"
#include "core/variant.h"
#include "linalg/sparse_kernels.h"
#include "mapreduce/engine.h"
#include "tensor/dense_matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// Decodes every nonzero of `x` into coordinate records — the input scan the
/// DNN and Naive variants perform before their first job.
std::vector<TensorRecord> TensorToRecords(const SparseTensor& x);

/// \brief Caches iteration-invariant derived forms of an input tensor: the
/// decoded coordinate records (the DNN/Naive input scan) and the compressed
/// per-free-mode CSF-lite layouts the in-core kernels consume.
///
/// An ALS driver evaluates the bottleneck op against the *same* tensor once
/// per mode per iteration; decoding X into TensorRecords (or compressing it
/// into a CsfLayout for a given free mode) is identical every time, so the
/// harness keeps one ContractCache per decomposition and each derived form
/// is built once instead of order × iterations times. Record lookups are
/// accounted in the engine's pipeline log (invariant_cache_hits / misses);
/// layout lookups in the local layout_hits() / layout_misses() counters.
///
/// The cache keys on a full-content fingerprint of the tensor (shape, nnz,
/// every coordinate and value bit — see TensorFingerprint), not on its
/// address: a tensor rebuilt in place with different contents invalidates
/// every cached form instead of aliasing stale data. Tensors that genuinely
/// change every evaluation — e.g. the EM residual in missing_values.cc —
/// should still bypass the cache (pass nullptr to MultiModeContract): the
/// fingerprint makes them correct but each call would pay a rebuild anyway.
/// Not thread-safe; call from the driver thread during plan construction,
/// never from inside plan nodes.
class ContractCache {
 public:
  /// Returns the decoded records of `x`, decoding only on the first call
  /// for this tensor content. `engine` (may be null) receives the hit/miss
  /// count.
  std::shared_ptr<const std::vector<TensorRecord>> Records(
      Engine* engine, const SparseTensor& x);

  /// Returns the CSF-lite layout of `x` sliced on `free_mode`, building it
  /// only on the first call for this (tensor content, free mode) pair.
  Result<std::shared_ptr<const CsfLayout>> Layout(const SparseTensor& x,
                                                  int free_mode);

  /// Re-keys the cache from the previously cached tensor to `new_x` — the
  /// canonical merge of that tensor with the epoch `delta` — invalidating
  /// only the dirty slices instead of dropping every cached form. For each
  /// cached layout the per-mode dirty-slice set is the delta's coordinates
  /// on that mode; clean slices' segments are reused via PatchCsfLayout,
  /// so the patched layout is array-identical to a fresh build against
  /// `new_x`. When the delta touches every slice of a mode the slot
  /// collapses to a full invalidation (counted separately). The decoded
  /// records are dropped — rebuilding them is the same O(nnz) pass a patch
  /// would be, and the next Records() call accounts an honest miss.
  ///
  /// Precondition: the cache currently keys the pre-merge tensor (or is
  /// empty, in which case this just keys to `new_x`). Patching a layout
  /// built from any other tensor is undefined — the determinism tests pin
  /// the merge → patch pairing.
  Status ApplyDelta(const SparseTensor& new_x, const SparseTensor& delta);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t layout_hits() const { return layout_hits_; }
  int64_t layout_misses() const { return layout_misses_; }
  int64_t delta_patches() const { return delta_patches_; }
  int64_t dirty_slices() const { return dirty_slices_; }
  int64_t layout_slices_reused() const { return layout_slices_reused_; }
  int64_t layout_slices_rebuilt() const { return layout_slices_rebuilt_; }
  int64_t layout_full_invalidations() const {
    return layout_full_invalidations_;
  }

 private:
  /// True iff `x` matches the cached fingerprint. On mismatch, drops every
  /// cached form and re-keys to `x`.
  bool MatchesOrReset(const SparseTensor& x);

  bool has_key_ = false;
  uint64_t fingerprint_ = 0;
  std::shared_ptr<const std::vector<TensorRecord>> records_;
  std::array<std::shared_ptr<const CsfLayout>, kMaxMrOrder> layouts_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t layout_hits_ = 0;
  int64_t layout_misses_ = 0;
  int64_t delta_patches_ = 0;
  int64_t dirty_slices_ = 0;
  int64_t layout_slices_reused_ = 0;
  int64_t layout_slices_rebuilt_ = 0;
  int64_t layout_full_invalidations_ = 0;
};

/// Which merge finalizes the contraction (Figure 4): CrossMerge produces the
/// full cross product of factor columns (Tucker's X ×₂Bᵀ×₃Cᵀ, Definition 3);
/// PairwiseMerge pairs equal columns (PARAFAC's X₍₁₎(C ⊙ B) / MTTKRP,
/// Definition 4). kSketchFused computes the same pairwise math as one
/// integrated broadcast job: every contracted factor is narrow enough to
/// hold in map-task memory (they are s-wide sketches, which is the point),
/// so the mapper emits the already-multiplied partial x·Π_m S_m(i_m, j) and
/// the shuffle carries nnz·s records instead of join cells plus
/// nnz·Σ-widths. On the in-core strategy kSketchFused and kPairwise are the
/// same kernel.
enum class MergeKind {
  kCross = 0,
  kPairwise = 1,
  kSketchFused = 2,
};

/// \brief Result of one bottleneck-op evaluation Y: one dense block per
/// *nonempty* index of the free mode (row i of Y₍ₙ₎).
///
/// For kCross the block is the row of Y₍free₎ ∈ R^{I_free × ΠQ_s}, laid out
/// in Kolda column order (first contracted mode varies fastest). For
/// kPairwise the block is the length-R row of the MTTKRP result. Absent rows
/// are all-zero (the free-mode slice of X was empty), matching the sparsity
/// the paper exploits: only nnz-touched slices materialize.
struct SliceBlocks {
  int64_t free_dim = 0;
  /// Column counts of the contracted factors, in ascending mode order.
  /// For kPairwise this has a single entry R.
  std::vector<int64_t> block_dims;
  std::unordered_map<int64_t, std::vector<double>> rows;

  int64_t BlockSize() const {
    int64_t n = 1;
    for (int64_t d : block_dims) n *= d;
    return n;
  }

  /// Densifies to the full free_dim x BlockSize() matrix (Y₍free₎).
  DenseMatrix ToDenseMatrix() const;

  /// Accumulates the small Gram matrix Y₍free₎ᵀ Y₍free₎ (BlockSize² entries)
  /// without densifying.
  DenseMatrix GramOfRows() const;
};

/// \brief Evaluates the bottleneck operation of the decompositions with the
/// selected HaTen2 variant, through a ContractionStrategy chosen by
/// ClusterConfig::contraction.
///
/// Contracts every mode of `x` except `free_mode` with the corresponding
/// factor matrix (factors[m] ∈ R^{I_m × Q_m}; factors[free_mode] is
/// ignored and may be null):
///   - kind == kCross:     Y = X ×_{m≠n} A_mᵀ        (Tucker, Lemma 1)
///   - kind == kPairwise:  Y = X₍ₙ₎ (⊙_{m≠n} A_m)    (PARAFAC, Lemma 2)
///
/// With contraction == "dataflow" (the default) the evaluation runs through
/// DataflowContraction: the jobs executed (and hence the engine's pipeline
/// counters) follow the paper exactly — Tables III/IV per-variant job counts
/// and intermediate-data sizes are reproduced by construction. On an
/// exceeded shuffle-memory budget returns kResourceExhausted ("o.o.m.").
/// With "incore" it runs through InCoreContraction's shuffle-free kernels;
/// "auto" picks in-core when CostModel::EstimateInCoreLayoutBytes fits the
/// incore_memory_mb budget, dataflow otherwise. The selected strategy is
/// recorded per plan node in haten2-stats-v9.
///
/// Note on CrossMerge/PairwiseMerge keying: the paper's MAP prose keys on
/// (i, rQ+q) but its REDUCE consumes the whole slice X_i:: and Table III
/// charges only nnz(X)(Q+R) intermediate records, so the implementation keys
/// the merge jobs by the free-mode index i alone — the only keying
/// consistent with the stated costs (see DESIGN.md).
///
/// The evaluation is expressed as a dataflow Plan (mapreduce/plan.h) and
/// submitted through a PlanScheduler, so with
/// ClusterConfig::max_concurrent_jobs > 1 independent jobs (DRN's per-column
/// Hadamard jobs, DNN/Naive per-column chains) overlap. Job names, job
/// counts, and every numeric output are identical at any concurrency level:
/// per-node output slots are concatenated in fixed node order before any
/// float summation (see docs/INTERNALS.md, "Dataflow plan layer").
///
/// `cache` (optional) serves the DNN/Naive input scan and the in-core
/// layouts from a per-decomposition ContractCache instead of rebuilding
/// them; pass nullptr for tensors that change between calls.
Result<SliceBlocks> MultiModeContract(
    Engine* engine, const SparseTensor& x,
    const std::vector<const DenseMatrix*>& factors, int free_mode,
    MergeKind kind, Variant variant, ContractCache* cache = nullptr);

}  // namespace haten2

#endif  // HATEN2_CORE_CONTRACT_H_
