#include "core/nonnegative_tucker.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/als_harness.h"
#include "core/records.h"
#include "linalg/linalg.h"
#include "tensor/tensor_ops.h"
#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

constexpr double kEps = 1e-12;

/// ⊗_{m != skip, descending} grams[m]: with Kronecker's second operand
/// varying fastest, the descending order makes the *first* non-skip mode
/// vary fastest in the column index — matching DenseTensor::Unfold and
/// SliceBlocks.
DenseMatrix KronGramsExcept(const std::vector<DenseMatrix>& grams,
                            int skip) {
  DenseMatrix acc = DenseMatrix::Identity(1);
  for (int m = static_cast<int>(grams.size()) - 1; m >= 0; --m) {
    if (m == skip) continue;
    acc = Kronecker(acc, grams[static_cast<size_t>(m)]);
  }
  return acc;
}

/// H = G ×₁ gram₁ ... ×ₙ gramₙ (all modes), dense.
Result<DenseTensor> CoreTimesAllGrams(const DenseTensor& core,
                                      const std::vector<DenseMatrix>& grams) {
  DenseTensor current = core;
  for (int m = 0; m < core.order(); ++m) {
    DenseMatrix unfolded = current.Unfold(m);
    HATEN2_ASSIGN_OR_RETURN(DenseMatrix product,
                            MatMul(grams[static_cast<size_t>(m)], unfolded));
    HATEN2_ASSIGN_OR_RETURN(current,
                            DenseTensor::Fold(product, m, current.dims()));
  }
  return current;
}

/// <X, G ×ₘ A⁽ᵐ⁾> plus ||X||² / fit bookkeeping: evaluates the model at
/// every nonzero of X, O(nnz · |G|).
double InnerProductWithModel(const SparseTensor& x, const DenseTensor& core,
                             const std::vector<DenseMatrix>& factors) {
  double total = 0.0;
  const int order = x.order();
  std::vector<int64_t> cidx(static_cast<size_t>(order), 0);
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    double recon = 0.0;
    std::fill(cidx.begin(), cidx.end(), 0);
    for (int64_t lin = 0; lin < core.size(); ++lin) {
      double p = core.data()[static_cast<size_t>(lin)];
      if (p != 0.0) {
        for (int m = 0; m < order; ++m) {
          p *= factors[static_cast<size_t>(m)](idx[m], cidx[static_cast<size_t>(m)]);
        }
        recon += p;
      }
      for (size_t m = cidx.size(); m-- > 0;) {
        if (++cidx[m] < core.dim(static_cast<int>(m))) break;
        cidx[m] = 0;
      }
    }
    total += x.value(e) * recon;
  }
  return total;
}

}  // namespace

Result<TuckerModel> Haten2NonnegativeTuckerAls(
    Engine* engine, const SparseTensor& x, std::vector<int64_t> core_dims,
    const Haten2Options& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (x.order() < 2 || x.order() > kMaxMrOrder) {
    return Status::InvalidArgument(
        StrFormat("supported orders are 2..%d", kMaxMrOrder));
  }
  if (x.nnz() == 0) {
    return Status::InvalidArgument("cannot decompose an all-zero tensor");
  }
  const int order = x.order();
  if (static_cast<int>(core_dims.size()) != order) {
    return Status::InvalidArgument("core_dims must have one entry per mode");
  }
  for (int m = 0; m < order; ++m) {
    if (core_dims[static_cast<size_t>(m)] <= 0 ||
        core_dims[static_cast<size_t>(m)] > x.dim(m)) {
      return Status::InvalidArgument("core dimension out of range");
    }
  }
  for (int64_t e = 0; e < x.nnz(); ++e) {
    if (x.value(e) < 0.0) {
      return Status::InvalidArgument(
          "nonnegative Tucker requires a nonnegative tensor");
    }
  }

  const uint64_t fingerprint =
      CheckpointFingerprint("tucker-nn", options.variant, options.seed,
                            options.tolerance, core_dims, x);

  Rng rng(options.seed);
  TuckerModel model;
  int start_iteration = 0;
  bool has_resume_metric = false;
  double resume_metric = 0.0;
  if (options.resume_from != nullptr) {
    const LoadedCheckpoint& ckpt = *options.resume_from;
    HATEN2_RETURN_IF_ERROR(ValidateCheckpointForResume(
        ckpt.manifest, "tucker-nn", "tucker", fingerprint));
    if (static_cast<int>(ckpt.tucker.factors.size()) != order ||
        ckpt.tucker.core.dims() != core_dims) {
      return Status::InvalidArgument(
          "checkpoint model does not match the tensor order or core dims");
    }
    for (int m = 0; m < order; ++m) {
      const DenseMatrix& f = ckpt.tucker.factors[static_cast<size_t>(m)];
      if (f.rows() != x.dim(m) ||
          f.cols() != core_dims[static_cast<size_t>(m)]) {
        return Status::InvalidArgument(
            StrFormat("checkpoint factor %d shape does not match", m));
      }
    }
    // The multiplicative updates rescale the *core* as well as the factors,
    // so resuming must restore both — factors alone would restart from a
    // different point in the iterate sequence.
    model.core = ckpt.tucker.core;
    model.factors = ckpt.tucker.factors;
    model.core_norm_history = ckpt.manifest.core_norm_history;
    model.iterations = ckpt.manifest.iteration;
    start_iteration = ckpt.manifest.iteration;
    has_resume_metric = true;
    resume_metric = ckpt.manifest.metric;
    if (ckpt.manifest.metric >= 0.0) model.fit = ckpt.manifest.metric;
  } else {
    HATEN2_ASSIGN_OR_RETURN(model.core, DenseTensor::Create(core_dims));
    for (double& g : model.core.data()) g = rng.Uniform(0.1, 1.0);
    model.factors.reserve(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      model.factors.push_back(DenseMatrix::RandomUniform(
          x.dim(m), core_dims[static_cast<size_t>(m)], &rng));
    }
  }

  std::vector<DenseMatrix> grams;
  grams.reserve(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) grams.push_back(Gram(model.factors[m]));

  const double x_sq = x.SumSquares();
  AlsHarness::Options harness_options;
  harness_options.max_iterations = options.max_iterations;
  harness_options.tolerance = options.tolerance;
  harness_options.trace = options.trace;
  harness_options.start_iteration = start_iteration;
  harness_options.has_resume_metric = has_resume_metric;
  harness_options.resume_metric = resume_metric;
  harness_options.external_cache = options.contract_cache;
  std::optional<CheckpointWriter> checkpoint_writer;
  if (options.checkpoint != nullptr) {
    checkpoint_writer.emplace(*options.checkpoint);
    harness_options.checkpoint_every = options.checkpoint->every_n_iterations;
    harness_options.checkpoint_fn = [&](int iteration, double prev_metric) {
      CheckpointManifest m;
      m.method = "tucker-nn";
      m.model_kind = "tucker";
      m.fingerprint = fingerprint;
      m.iteration = iteration;
      m.metric = prev_metric;
      m.core_norm_history = model.core_norm_history;
      return checkpoint_writer->Write(m, nullptr, &model);
    };
  }
  AlsHarness harness(engine, harness_options);
  Status loop_status = harness.Run(
      [&](int iter, AlsIterationOutcome* outcome) -> Status {
    // ---- Factor updates ----
    for (int n = 0; n < order; ++n) {
      HATEN2_ASSIGN_OR_RETURN(
          SliceBlocks y,
          MultiModeContract(engine, x, model.FactorPtrs(), n,
                            MergeKind::kCross, options.variant,
                            harness.cache()));
      DenseMatrix g_n = model.core.Unfold(n);  // J_n x ПJ_other
      const int64_t jn = g_n.rows();
      // Numerator: Y₍ₙ₎ G₍ₙ₎ᵀ, accumulated over nonempty slices only.
      DenseMatrix numerator(x.dim(n), jn);
      for (const auto& [slice, row] : y.rows) {
        for (int64_t p = 0; p < jn; ++p) {
          double dot = 0.0;
          const double* grow = g_n.RowPtr(p);
          for (size_t c = 0; c < row.size(); ++c) {
            dot += row[c] * grow[c];
          }
          numerator(slice, p) = dot;
        }
      }
      // Denominator: A⁽ⁿ⁾ · [G₍ₙ₎ (⊗ grams) G₍ₙ₎ᵀ].
      DenseMatrix kron = KronGramsExcept(grams, n);
      HATEN2_ASSIGN_OR_RETURN(DenseMatrix gk, MatMul(g_n, kron));
      HATEN2_ASSIGN_OR_RETURN(DenseMatrix b, MatMul(gk, g_n.Transposed()));
      DenseMatrix& a = model.factors[static_cast<size_t>(n)];
      HATEN2_ASSIGN_OR_RETURN(DenseMatrix denominator, MatMul(a, b));
      for (int64_t i = 0; i < a.rows(); ++i) {
        for (int64_t p = 0; p < jn; ++p) {
          double ratio = numerator(i, p) /
                         std::max(denominator(i, p), kEps);
          a(i, p) = std::max(a(i, p) * ratio, 0.0);
        }
      }
      grams[static_cast<size_t>(n)] = Gram(a);
    }

    // ---- Core update ----
    // Numerator: P = X ×ₘ A⁽ᵐ⁾ᵀ for every mode, via the distributed
    // contraction over all modes but the last plus one dense projection.
    HATEN2_ASSIGN_OR_RETURN(
        SliceBlocks y_last,
        MultiModeContract(engine, x, model.FactorPtrs(), order - 1,
                          MergeKind::kCross, options.variant,
                          harness.cache()));
    const DenseMatrix& a_last = model.factors[static_cast<size_t>(order - 1)];
    DenseMatrix p_unfolded(core_dims[static_cast<size_t>(order - 1)],
                           y_last.BlockSize());
    for (const auto& [slice, row] : y_last.rows) {
      for (int64_t p = 0; p < p_unfolded.rows(); ++p) {
        double w = a_last(slice, p);
        if (w == 0.0) continue;
        double* prow = p_unfolded.RowPtr(p);
        for (size_t c = 0; c < row.size(); ++c) prow[c] += w * row[c];
      }
    }
    HATEN2_ASSIGN_OR_RETURN(
        DenseTensor numerator,
        DenseTensor::Fold(p_unfolded, order - 1, core_dims));
    HATEN2_ASSIGN_OR_RETURN(DenseTensor denominator,
                            CoreTimesAllGrams(model.core, grams));
    for (int64_t lin = 0; lin < model.core.size(); ++lin) {
      double ratio =
          numerator.data()[static_cast<size_t>(lin)] /
          std::max(denominator.data()[static_cast<size_t>(lin)], kEps);
      double updated = model.core.data()[static_cast<size_t>(lin)] * ratio;
      model.core.data()[static_cast<size_t>(lin)] = std::max(updated, 0.0);
    }

    // ---- Fit: explicit residual (factors are not orthonormal) ----
    model.iterations = iter;
    double inner = InnerProductWithModel(x, model.core, model.factors);
    HATEN2_ASSIGN_OR_RETURN(DenseTensor h,
                            CoreTimesAllGrams(model.core, grams));
    double model_sq = 0.0;
    for (int64_t lin = 0; lin < model.core.size(); ++lin) {
      model_sq += model.core.data()[static_cast<size_t>(lin)] *
                  h.data()[static_cast<size_t>(lin)];
    }
    double resid_sq = std::max(x_sq - 2.0 * inner + model_sq, 0.0);
    model.fit = 1.0 - std::sqrt(resid_sq / x_sq);
    model.core_norm_history.push_back(model.core.FrobeniusNorm());
    outcome->has_fit = true;
    outcome->fit = model.fit;
    outcome->has_core_norm = true;
    outcome->core_norm = model.core_norm_history.back();
    outcome->has_metric = true;
    outcome->metric = model.fit;
    return Status::OK();
      });
  if (!loop_status.ok()) return loop_status;
  return model;
}

}  // namespace haten2
