#include "core/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "mapreduce/hash.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

struct IndexVectorHash {
  size_t operator()(const std::vector<int64_t>& v) const {
    uint64_t seed = 0x11bb11bbULL;
    for (int64_t x : v) seed = HashCombine(seed, static_cast<uint64_t>(x));
    return static_cast<size_t>(seed);
  }
};

/// Model value at a coordinate.
double Score(const KruskalModel& model, const std::vector<int64_t>& idx) {
  double total = 0.0;
  for (int64_t r = 0; r < model.rank(); ++r) {
    double p = model.lambda[static_cast<size_t>(r)];
    for (size_t m = 0; m < model.factors.size(); ++m) {
      p *= model.factors[m](idx[m], r);
    }
    total += p;
  }
  return total;
}

/// Top `beam` row indices of column r of `factor`.
std::vector<int64_t> TopRows(const DenseMatrix& factor, int64_t r,
                             int64_t beam, bool by_magnitude) {
  std::vector<std::pair<double, int64_t>> scored;
  scored.reserve(static_cast<size_t>(factor.rows()));
  for (int64_t i = 0; i < factor.rows(); ++i) {
    double v = factor(i, r);
    scored.emplace_back(by_magnitude ? std::fabs(v) : v, i);
  }
  int64_t keep = std::min(beam, factor.rows());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(keep));
  for (int64_t i = 0; i < keep; ++i) {
    rows.push_back(scored[static_cast<size_t>(i)].second);
  }
  return rows;
}

Status ValidateModelAgainst(const KruskalModel& model,
                            const SparseTensor& observed) {
  const int order = observed.order();
  if (static_cast<int>(model.factors.size()) != order) {
    return Status::InvalidArgument(
        "model order does not match the observed tensor");
  }
  for (int m = 0; m < order; ++m) {
    if (model.factors[static_cast<size_t>(m)].rows() != observed.dim(m)) {
      return Status::InvalidArgument(
          StrFormat("model mode %d does not match the tensor dims", m));
    }
  }
  if (!observed.canonical()) {
    return Status::FailedPrecondition(
        "observed tensor must be canonical (call Canonicalize())");
  }
  return Status::OK();
}

}  // namespace

Result<CandidateBeams> ComputeCandidateBeams(
    const KruskalModel& model, const LinkPredictionOptions& options) {
  if (options.beam <= 0) {
    return Status::InvalidArgument("beam must be positive");
  }
  if (model.factors.empty()) {
    return Status::InvalidArgument("model has no factor matrices");
  }
  CandidateBeams beams;
  beams.beam = options.beam;
  beams.rank_rows_by_magnitude = options.rank_rows_by_magnitude;
  beams.rows.resize(static_cast<size_t>(model.rank()));
  for (int64_t r = 0; r < model.rank(); ++r) {
    auto& per_mode = beams.rows[static_cast<size_t>(r)];
    per_mode.reserve(model.factors.size());
    for (const DenseMatrix& factor : model.factors) {
      per_mode.push_back(TopRows(factor, r, options.beam,
                                 options.rank_rows_by_magnitude));
    }
  }
  return beams;
}

Result<std::vector<PredictedEntry>> PredictTopEntries(
    const KruskalModel& model, const SparseTensor& observed, int64_t k,
    const LinkPredictionOptions& options, LinkPredictionStats* stats) {
  HATEN2_ASSIGN_OR_RETURN(CandidateBeams beams,
                          ComputeCandidateBeams(model, options));
  return PredictTopEntries(model, beams, observed, k, options, stats);
}

Result<std::vector<PredictedEntry>> PredictTopEntries(
    const KruskalModel& model, const CandidateBeams& beams,
    const SparseTensor& observed, int64_t k,
    const LinkPredictionOptions& options, LinkPredictionStats* stats) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.beam <= 0) {
    return Status::InvalidArgument("beam must be positive");
  }
  if (!beams.Matches(options)) {
    return Status::InvalidArgument(
        "precomputed beams do not match the query options");
  }
  if (static_cast<int64_t>(beams.rows.size()) != model.rank()) {
    return Status::InvalidArgument(
        "precomputed beams do not match the model rank");
  }
  HATEN2_RETURN_IF_ERROR(ValidateModelAgainst(model, observed));
  const int order = observed.order();

  LinkPredictionStats counters;

  // Phase 1: enumerate the per-component cross products and deduplicate
  // across components, preserving first-seen order. The overlap between
  // components is typically large (they concentrate on the same hub
  // entities), so dedup before scoring avoids rescoring shared cells.
  std::unordered_set<std::vector<int64_t>, IndexVectorHash> seen;
  std::vector<std::vector<int64_t>> unique_candidates;
  std::vector<int64_t> idx(static_cast<size_t>(order));
  for (int64_t r = 0; r < model.rank(); ++r) {
    const auto& per_mode = beams.rows[static_cast<size_t>(r)];
    if (static_cast<int>(per_mode.size()) != order) {
      return Status::InvalidArgument(
          "precomputed beams do not match the tensor order");
    }
    for (int m = 0; m < order; ++m) {
      if (per_mode[static_cast<size_t>(m)].empty()) {
        return Status::InvalidArgument("precomputed beams have an empty mode");
      }
    }
    // Odometer over the cross product of the per-mode beams.
    std::vector<size_t> pos(static_cast<size_t>(order), 0);
    while (true) {
      for (int m = 0; m < order; ++m) {
        idx[static_cast<size_t>(m)] =
            per_mode[static_cast<size_t>(m)][pos[static_cast<size_t>(m)]];
      }
      ++counters.candidates_enumerated;
      if (seen.insert(idx).second) {
        unique_candidates.push_back(idx);
      }
      int m = 0;
      while (m < order) {
        if (++pos[static_cast<size_t>(m)] <
            per_mode[static_cast<size_t>(m)].size()) {
          break;
        }
        pos[static_cast<size_t>(m)] = 0;
        ++m;
      }
      if (m == order) break;
    }
  }
  counters.candidates_deduped =
      static_cast<int64_t>(unique_candidates.size());

  // Phase 2: score each unique unobserved cell, keeping the top k in a
  // min-heap.
  auto cmp = [](const PredictedEntry& a, const PredictedEntry& b) {
    return a.score > b.score;
  };
  std::priority_queue<PredictedEntry, std::vector<PredictedEntry>,
                      decltype(cmp)>
      heap(cmp);
  for (const std::vector<int64_t>& candidate : unique_candidates) {
    if (observed.Get(candidate) != 0.0) continue;
    ++counters.candidates_scored;
    double score = Score(model, candidate);
    if (static_cast<int64_t>(heap.size()) < k) {
      heap.push(PredictedEntry{candidate, score});
    } else if (score > heap.top().score) {
      heap.pop();
      heap.push(PredictedEntry{candidate, score});
    }
  }

  std::vector<PredictedEntry> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());  // descending score
  if (stats != nullptr) *stats = counters;
  return out;
}

}  // namespace haten2
