#include "core/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "mapreduce/hash.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

struct IndexVectorHash {
  size_t operator()(const std::vector<int64_t>& v) const {
    uint64_t seed = 0x11bb11bbULL;
    for (int64_t x : v) seed = HashCombine(seed, static_cast<uint64_t>(x));
    return static_cast<size_t>(seed);
  }
};

/// Model value at a coordinate.
double Score(const KruskalModel& model, const std::vector<int64_t>& idx) {
  double total = 0.0;
  for (int64_t r = 0; r < model.rank(); ++r) {
    double p = model.lambda[static_cast<size_t>(r)];
    for (size_t m = 0; m < model.factors.size(); ++m) {
      p *= model.factors[m](idx[m], r);
    }
    total += p;
  }
  return total;
}

/// Top `beam` row indices of column r of `factor`.
std::vector<int64_t> TopRows(const DenseMatrix& factor, int64_t r,
                             int64_t beam, bool by_magnitude) {
  std::vector<std::pair<double, int64_t>> scored;
  scored.reserve(static_cast<size_t>(factor.rows()));
  for (int64_t i = 0; i < factor.rows(); ++i) {
    double v = factor(i, r);
    scored.emplace_back(by_magnitude ? std::fabs(v) : v, i);
  }
  int64_t keep = std::min(beam, factor.rows());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(keep));
  for (int64_t i = 0; i < keep; ++i) {
    rows.push_back(scored[static_cast<size_t>(i)].second);
  }
  return rows;
}

}  // namespace

Result<std::vector<PredictedEntry>> PredictTopEntries(
    const KruskalModel& model, const SparseTensor& observed, int64_t k,
    const LinkPredictionOptions& options) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.beam <= 0) {
    return Status::InvalidArgument("beam must be positive");
  }
  const int order = observed.order();
  if (static_cast<int>(model.factors.size()) != order) {
    return Status::InvalidArgument(
        "model order does not match the observed tensor");
  }
  for (int m = 0; m < order; ++m) {
    if (model.factors[static_cast<size_t>(m)].rows() != observed.dim(m)) {
      return Status::InvalidArgument(
          StrFormat("model mode %d does not match the tensor dims", m));
    }
  }
  if (!observed.canonical()) {
    return Status::FailedPrecondition(
        "observed tensor must be canonical (call Canonicalize())");
  }

  std::unordered_set<std::vector<int64_t>, IndexVectorHash> seen;
  // Min-heap of the current top-k by score.
  auto cmp = [](const PredictedEntry& a, const PredictedEntry& b) {
    return a.score > b.score;
  };
  std::priority_queue<PredictedEntry, std::vector<PredictedEntry>,
                      decltype(cmp)>
      heap(cmp);

  std::vector<int64_t> idx(static_cast<size_t>(order));
  for (int64_t r = 0; r < model.rank(); ++r) {
    std::vector<std::vector<int64_t>> beams;
    beams.reserve(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      beams.push_back(TopRows(model.factors[static_cast<size_t>(m)], r,
                              options.beam,
                              options.rank_rows_by_magnitude));
    }
    // Odometer over the cross product of the per-mode beams.
    std::vector<size_t> pos(static_cast<size_t>(order), 0);
    while (true) {
      for (int m = 0; m < order; ++m) {
        idx[static_cast<size_t>(m)] =
            beams[static_cast<size_t>(m)][pos[static_cast<size_t>(m)]];
      }
      if (seen.insert(idx).second && observed.Get(idx) == 0.0) {
        double score = Score(model, idx);
        if (static_cast<int64_t>(heap.size()) < k) {
          heap.push(PredictedEntry{idx, score});
        } else if (score > heap.top().score) {
          heap.pop();
          heap.push(PredictedEntry{idx, score});
        }
      }
      int m = 0;
      while (m < order) {
        if (++pos[static_cast<size_t>(m)] <
            beams[static_cast<size_t>(m)].size()) {
          break;
        }
        pos[static_cast<size_t>(m)] = 0;
        ++m;
      }
      if (m == order) break;
    }
  }

  std::vector<PredictedEntry> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());  // descending score
  return out;
}

}  // namespace haten2
