#ifndef HATEN2_CORE_INCORE_CONTRACTION_H_
#define HATEN2_CORE_INCORE_CONTRACTION_H_

#include "core/contraction_strategy.h"

namespace haten2 {

/// \brief DFacTo-style in-core contraction: builds a compressed slice-major
/// layout of the tensor (linalg/sparse_kernels.h, CSF-lite) and evaluates
///  - kPairwise as two SpMV-shaped passes per rank block (CsfMttkrp), and
///  - kCross as a blocked slice-wise chain (CsfCrossContract),
/// with no shuffle and no intermediate records. The layout is served from
/// ctx.cache when present (one build per (tensor, free mode) per
/// decomposition), rebuilt otherwise.
///
/// The evaluation is a single plan node named "InCoreContract[m<free>]",
/// annotated "incore" with a ContractionTiming carrying the layout-build and
/// kernel-evaluate wall times (surfaced per node in haten2-stats-v9).
///
/// Numerics: each entry's contribution is formed in ascending contracted-mode
/// order — the same association the dataflow merges use — so tensors whose
/// fibers are singletons (e.g. superdiagonal test tensors) reproduce the
/// dataflow output bit-for-bit; general tensors agree to rounding. The
/// variant knob does not change the math here, only the dataflow job shapes,
/// so it is ignored.
class InCoreContraction : public ContractionStrategy {
 public:
  const char* name() const override { return "incore"; }
  Result<SliceBlocks> Contract(const ContractionContext& ctx) const override;
};

}  // namespace haten2

#endif  // HATEN2_CORE_INCORE_CONTRACTION_H_
