#ifndef HATEN2_CORE_INCREMENTAL_REFIT_H_
#define HATEN2_CORE_INCREMENTAL_REFIT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "core/contract.h"
#include "core/parafac.h"
#include "mapreduce/engine.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// Cumulative cost accounting of an ingest session, serialized into the
/// stats export's `refit` object (haten2-stats-v9).
struct RefitCounters {
  int64_t epochs = 0;        ///< RefitWithDelta calls completed
  int64_t delta_nnz = 0;     ///< stored delta entries merged, summed
  double merge_seconds = 0.0;
  double refit_seconds = 0.0;
  int64_t iterations = 0;    ///< ALS iterations across all refits
  double last_fit = 0.0;     ///< fit of the most recent refit (when computed)
};

/// How the session refits after each epoch merge.
struct IncrementalRefitOptions {
  /// ALS configuration for every refit. The session overrides
  /// `initial_kruskal` (warm start) and `contract_cache` per refit;
  /// checkpoint/resume_from apply to each refit individually and are
  /// normally left unset here.
  Haten2Options als;
  int64_t rank = 10;
  /// true: patch the session's persistent ContractCache with each delta
  /// (dirty-slice invalidation) and warm-start from the previous model.
  /// false: "full refit" — fresh cache, but still warm-started, so the two
  /// modes produce bit-identical factors and differ only in cost.
  bool incremental = true;
};

/// \brief One continuously-growing decomposition: owns the merged tensor,
/// the persistent ContractCache, and the current model; each epoch delta is
/// merged in and the model refit warm-started from the previous factors.
///
/// The incremental mode's bit-for-bit contract: a refit over the merged
/// tensor with a patched cache runs the exact same kernels over the exact
/// same layouts as a refit over the merged tensor with a fresh cache
/// (PatchCsfLayout output is array-identical to a fresh build), so
/// `incremental = true` and `incremental = false` produce identical factor
/// matrices at equal seeds/warm starts — incremental only changes *cost*.
/// The determinism tests pin this.
class IncrementalRefitSession {
 public:
  /// Takes ownership of the base tensor (canonicalized if needed).
  IncrementalRefitSession(Engine* engine, SparseTensor base,
                          IncrementalRefitOptions options);

  /// Warm-starts the next refit from `model` (e.g. the base decomposition,
  /// or a checkpointed one). The model must match the tensor's shape and
  /// options.rank; mismatches surface as driver errors on the next refit.
  void WarmStartFromModel(KruskalModel model);

  /// Warm-starts from the newest loadable checkpoint under `directory`
  /// (core/checkpoint.h discovery rules, torn checkpoints skipped). The
  /// checkpoint must carry a kruskal model.
  Status WarmStartFromCheckpointDir(const std::string& directory);

  /// Fits the current tensor from scratch or from the warm start — the
  /// session's bootstrap — and stores the model. Does not count as an epoch.
  Status FitBase();

  /// Ingest one epoch: merges `delta` into the tensor, invalidates the
  /// cache (dirty slices when incremental, fresh cache otherwise), refits
  /// warm-started from the current model, and replaces it.
  Status RefitWithDelta(const SparseTensor& delta);

  const SparseTensor& tensor() const { return tensor_; }
  bool has_model() const { return has_model_; }
  const KruskalModel& model() const { return model_; }
  const RefitCounters& counters() const { return counters_; }
  const ContractCache& cache() const { return cache_; }
  const IncrementalRefitOptions& options() const { return options_; }

 private:
  Status Refit();

  Engine* engine_;
  SparseTensor tensor_;
  IncrementalRefitOptions options_;
  ContractCache cache_;
  KruskalModel model_;
  bool has_model_ = false;
  RefitCounters counters_;
};

}  // namespace haten2

#endif  // HATEN2_CORE_INCREMENTAL_REFIT_H_
