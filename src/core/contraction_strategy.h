#ifndef HATEN2_CORE_CONTRACTION_STRATEGY_H_
#define HATEN2_CORE_CONTRACTION_STRATEGY_H_

#include <vector>

#include "core/contract.h"
#include "core/variant.h"
#include "mapreduce/engine.h"
#include "tensor/dense_matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Validated, shared state of one bottleneck-op evaluation, built by
/// MultiModeContract and handed to the selected ContractionStrategy.
///
/// All invariants hold by the time a strategy sees this: the tensor is
/// canonical with order in [2, kMaxMrOrder], `cfactors` are non-null with
/// rows matching their mode's extent, and for kPairwise all column counts
/// are equal. `cmodes` / `cfactors` / `block_dims` are parallel arrays over
/// the contracted modes in ascending mode order.
struct ContractionContext {
  Engine* engine = nullptr;
  const SparseTensor* x = nullptr;
  int free_mode = 0;
  MergeKind kind = MergeKind::kCross;
  Variant variant = Variant::kDri;
  std::vector<int> cmodes;                   // contracted modes, ascending
  std::vector<const DenseMatrix*> cfactors;  // parallel to cmodes
  std::vector<int64_t> block_dims;           // cfactors[s]->cols()
  /// Per-decomposition cache of iteration-invariant derived forms of `x`
  /// (decoded records for the dataflow DNN/Naive scan, compressed layouts
  /// for the in-core kernels); null when the caller's tensor changes
  /// between evaluations.
  ContractCache* cache = nullptr;

  int num_streams() const { return static_cast<int>(cmodes.size()); }
};

/// \brief How one contraction evaluation executes. Implementations are
/// stateless (a single const instance serves every call): `Contract` builds
/// a dataflow Plan, tags its nodes with the strategy name via
/// Plan::AnnotateContraction (so stats_json records the per-node choice),
/// and runs it through a PlanScheduler on ctx.engine.
///
/// Two implementations exist:
///  - DataflowContraction (core/dataflow_contraction.h): the paper's
///    MapReduce job pipelines, variant-faithful job counts.
///  - InCoreContraction (core/incore_contraction.h): DFacTo-style kernels
///    over a compressed slice-major layout, one plan node, no shuffle.
/// ClusterConfig::contraction selects between them per plan node (the
/// `auto` policy consults CostModel::EstimateInCoreLayoutBytes).
class ContractionStrategy {
 public:
  virtual ~ContractionStrategy() = default;

  /// Strategy tag recorded in PlanNodeStats ("dataflow" / "incore").
  virtual const char* name() const = 0;

  /// Evaluates the contraction described by `ctx`.
  virtual Result<SliceBlocks> Contract(const ContractionContext& ctx) const = 0;
};

}  // namespace haten2

#endif  // HATEN2_CORE_CONTRACTION_STRATEGY_H_
