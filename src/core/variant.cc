#include "core/variant.h"

namespace haten2 {

std::string_view VariantName(Variant v) {
  switch (v) {
    case Variant::kNaive:
      return "HaTen2-Naive";
    case Variant::kDnn:
      return "HaTen2-DNN";
    case Variant::kDrn:
      return "HaTen2-DRN";
    case Variant::kDri:
      return "HaTen2-DRI";
  }
  return "HaTen2-?";
}

VariantTraits TraitsOf(Variant v) {
  switch (v) {
    case Variant::kNaive:
      return {true, false, false, false};
    case Variant::kDnn:
      return {true, true, false, false};
    case Variant::kDrn:
      return {true, true, true, false};
    case Variant::kDri:
      return {true, true, true, true};
  }
  return {false, false, false, false};
}

PredictedCost PredictTuckerCost(Variant v, int64_t nnz, int64_t i, int64_t j,
                                int64_t k, int64_t q, int64_t r) {
  switch (v) {
    case Variant::kNaive:
      // b_q is copied to all I·K fibers: nnz(X) + IJK total; Q + R jobs.
      return {nnz + i * j * k, q + r};
    case Variant::kDnn:
      // The second product works on T = X ×₂ Bᵀ with nnz(T) ≈ nnz(X)·Q
      // (Lemma 3), whose Hadamard stage shuffles nnz(X)·Q·R records.
      return {nnz * q * r, q + r + 2};
    case Variant::kDrn:
      // T' and T'' are computed independently from the sparse X.
      return {nnz * (q + r), q + r + 1};
    case Variant::kDri:
      return {nnz * (q + r), 2};
  }
  return {0, 0};
}

PredictedCost PredictParafacCost(Variant v, int64_t nnz, int64_t i, int64_t j,
                                 int64_t k, int64_t r) {
  switch (v) {
    case Variant::kNaive:
      return {nnz + i * j * k, 2 * r};
    case Variant::kDnn:
      // Per-rank sequential Hadamard+Collapse chains; each job's shuffle is
      // bounded by nnz(X) tensor records plus one factor column (J values).
      return {nnz + j, 4 * r};
    case Variant::kDrn:
      // The merge job receives both T' and T'' (nnz(X)·R records each).
      return {2 * nnz * r, 2 * r + 1};
    case Variant::kDri:
      return {2 * nnz * r, 2};
  }
  return {0, 0};
}

}  // namespace haten2
