#ifndef HATEN2_CORE_TUCKER_H_
#define HATEN2_CORE_TUCKER_H_

#include <vector>

#include "core/contract.h"
#include "core/parafac.h"  // Haten2Options
#include "mapreduce/engine.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief HaTen2-Tucker (Algorithm 2 driven by the MapReduce bottleneck op).
///
/// Each mode update evaluates Y ← X ×_{m≠n} A⁽ᵐ⁾ᵀ through MultiModeContract
/// with MergeKind::kCross and the configured variant. The P leading left
/// singular vectors of Y₍ₙ₎ are extracted with the Gram trick: only the
/// small ΠJ x ΠJ matrix Y₍ₙ₎ᵀY₍ₙ₎ is eigendecomposed (accumulated
/// streaming over the sparse slice blocks), never an I_n x I_n matrix.
/// `options.nonnegative` is ignored (Tucker factors are orthonormal).
///
/// Returns kResourceExhausted when the variant's intermediate data exceeds
/// the engine's shuffle-memory budget ("o.o.m.").
Result<TuckerModel> Haten2TuckerAls(Engine* engine, const SparseTensor& x,
                                    std::vector<int64_t> core_dims,
                                    const Haten2Options& options = {});

/// \brief The HOOI per-mode factor update shared by the exact and sketched
/// drivers: `count` leading left singular vectors of the implicit matrix
/// whose rows are y's slice blocks, via the eigendecomposition of the small
/// BlockSize² Gram matrix Y₍ₙ₎ᵀY₍ₙ₎. Deficient directions are completed
/// with orthonormalized canonical basis vectors (dead components). For the
/// sketched driver y is the s-wide projected contraction, so the same code
/// is the randomized range finder — the Gram shrinks from ΠQ² to s².
Result<DenseMatrix> TuckerLeadingFactor(const SliceBlocks& y, int64_t count);

/// \brief The core update shared by the Tucker-family drivers:
/// G₍last₎ = A⁽ˡᵃˢᵗ⁾ᵀ·Y₍last₎ accumulated over the sparse slice blocks of
/// the last mode's *cross* contraction, then folded to core_dims. `a_last`
/// must be the freshly updated last-mode factor.
Result<DenseTensor> TuckerCoreFromBlocks(const SliceBlocks& last_y,
                                         const DenseMatrix& a_last,
                                         const std::vector<int64_t>& core_dims,
                                         int last_mode);

}  // namespace haten2

#endif  // HATEN2_CORE_TUCKER_H_
