#ifndef HATEN2_CORE_SKETCHED_TUCKER_H_
#define HATEN2_CORE_SKETCHED_TUCKER_H_

#include <vector>

#include "core/parafac.h"  // Haten2Options
#include "mapreduce/engine.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Sketched HaTen2-Tucker: randomized HOOI with per-mode projections
/// (PAPERS.md: "Parallel Randomized Tucker Decomposition Algorithms" and
/// the mode-parallel randomized (H-)Tucker paper).
///
/// The exact driver pays, per mode per sweep, a CrossMerge contraction with
/// ΠQ-wide blocks plus the eigendecomposition of a ΠQ × ΠQ Gram matrix.
/// The sketched sweep replaces both for every mode but the last:
///
///   1. Sketch — per contracted mode m, a "Sketch[kind,m]" plan node
///      computes S⁽ᵐ⁾ = A⁽ᵐ⁾·Ω⁽ᵐ⁾ with Ω⁽ᵐ⁾ ∈ R^{Q_m × s} drawn once per
///      run from linalg/sketch.h (Gaussian or CountSketch; seeded,
///      bit-reproducible). The nodes are independent, so a concurrent
///      scheduler overlaps them.
///   2. Contract — Z = X₍ₙ₎ (⊙_{m≠n} S⁽ᵐ⁾) through MultiModeContract with
///      MergeKind::kSketchFused: the sketched factors are s-wide, small
///      enough to broadcast into map-task memory, so one integrated job
///      emits the already-multiplied partials and the shuffle carries
///      nnz·s records instead of the exact path's join cells plus
///      nnz·ΣQ partials — on whichever ContractionStrategy (dataflow or
///      in-core) ClusterConfig::contraction selects.
///   3. Range-find — A⁽ⁿ⁾ = `Q_n` leading left singular vectors of Z via
///      TuckerLeadingFactor: the same Gram-trick SVD as the exact driver,
///      but on an s × s Gram instead of ΠQ × ΠQ.
///
/// The *last* mode of every sweep stays exact (CrossMerge + full SVD): its
/// Y blocks double as the core update G₍ₗₐₛₜ₎ = AᵀY₍ₗₐₛₜ₎, so each sweep
/// still produces the true core and ||G|| without an extra contraction.
/// The final ClusterConfig::exact_polish_sweeps iterations run the exact
/// update for every mode, recovering the accuracy the projections gave up.
/// Sketched sweeps always run to their sweep budget (the sketch noise makes
/// early ||G|| deltas untrustworthy); the convergence test is live only
/// during polish sweeps.
///
/// Configuration comes from the engine's ClusterConfig: `tucker_sketch`
/// must be "gaussian" or "countsketch" (a "none" config is
/// kInvalidArgument — callers route exact runs to Haten2TuckerAls), s is
/// `sketch_size` (0 = largest core dim + 4, and explicit values must be >=
/// the largest core dim). Checkpoint/resume ride the AlsHarness unchanged:
/// manifests carry method "sketched-tucker" and a fingerprint that folds in
/// the sketch kind, width and polish count, so a checkpoint cannot resume
/// under a different sketch configuration. At a fixed --seed the whole run
/// — operators, iterates, resumes — is bit-reproducible. One caveat the
/// fingerprint cannot see: the polish boundary counts back from
/// `max_iterations`, so a resume must keep the original iteration budget
/// for the sweep schedule (and hence the iterates) to match.
Result<TuckerModel> Haten2SketchedTuckerAls(Engine* engine,
                                            const SparseTensor& x,
                                            std::vector<int64_t> core_dims,
                                            const Haten2Options& options = {});

}  // namespace haten2

#endif  // HATEN2_CORE_SKETCHED_TUCKER_H_
