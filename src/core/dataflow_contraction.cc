#include "core/dataflow_contraction.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>

#include "core/records.h"
#include "mapreduce/plan.h"
#include "mapreduce/scheduler.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

/// Tags every node of a finished contraction plan with the strategy name
/// before it is scheduled, so PlanNodeStats / stats_json attribute the work.
void AnnotateDataflow(Plan* plan) {
  for (int i = 0; i < plan->size(); ++i) {
    plan->AnnotateContraction(i, "dataflow");
  }
}


/// Value shuffled by the IMHP / DRN-Hadamard / DNN-Hadamard jobs: either a
/// tensor entry (kind 0) or a factor matrix/vector cell (kind 1).
struct JoinValue {
  Coord coord;   // tensor entry coordinate (kind 0 only)
  double value;  // entry value or factor cell value
  int32_t col;   // factor column (kind 1 only; -1 for vector cells)
  uint8_t kind;
};

/// Value shuffled by the Naive broadcast TTV jobs.
struct NaiveValue {
  int64_t j;  // index along the contracted mode
  double value;
  uint8_t kind;  // 0 = tensor entry, 1 = broadcast vector element
};

struct CoordStdHash {
  size_t operator()(const Coord& c) const {
    return static_cast<size_t>(ShuffleHash<Coord>()(c));
  }
};

SliceBlocks MakeEmptyBlocks(const ContractionContext& ctx) {
  SliceBlocks out;
  out.free_dim = ctx.x->dim(ctx.free_mode);
  if (ctx.kind == MergeKind::kCross) {
    out.block_dims = ctx.block_dims;
  } else {
    out.block_dims = {ctx.block_dims.empty() ? 0 : ctx.block_dims[0]};
  }
  return out;
}

/// Kolda-order weights for the contracted modes: stream 0 varies fastest.
std::vector<int64_t> BlockWeights(const ContractionContext& ctx) {
  std::vector<int64_t> w(ctx.block_dims.size(), 1);
  for (size_t s = 1; s < ctx.block_dims.size(); ++s) {
    w[s] = w[s - 1] * ctx.block_dims[s - 1];
  }
  return w;
}

// ---------------------------------------------------------------------------
// DRI: one IMHP job producing every Hadamard stream, then one merge job.
// ---------------------------------------------------------------------------

using KeyedHadamard = std::pair<int64_t, HadamardRecord>;

Result<std::vector<KeyedHadamard>> RunImhpJob(const ContractionContext& ctx) {
  const SparseTensor& x = *ctx.x;
  const int64_t nnz = x.nnz();
  // Matrix cells are part of the job input, one record per (stream, row,
  // column), exactly as the paper's IMHP map reads <j, q, B(j,q)> records.
  std::vector<int64_t> matrix_begin(ctx.cmodes.size() + 1, nnz);
  for (size_t s = 0; s < ctx.cmodes.size(); ++s) {
    matrix_begin[s + 1] =
        matrix_begin[s] +
        x.dim(ctx.cmodes[s]) * ctx.cfactors[s]->cols();
  }
  const int64_t domain = matrix_begin.back();
  const int free_mode = ctx.free_mode;

  using KMid = std::pair<int32_t, int64_t>;  // (stream, index along mode)
  auto reader = [&](int64_t i, ShuffleEmitter<KMid, JoinValue>* em) {
    if (i < nnz) {
      JoinValue v;
      v.coord = Coord::FromIndex(x.IndexPtr(i), x.order());
      v.value = x.value(i);
      v.col = -1;
      v.kind = 0;
      for (int s = 0; s < ctx.num_streams(); ++s) {
        int64_t along = v.coord.c[static_cast<size_t>(ctx.cmodes[s])];
        em->Emit(KMid(s, along), v);
      }
      return;
    }
    // Factor matrix cell.
    int s = 0;
    while (i >= matrix_begin[static_cast<size_t>(s) + 1]) ++s;
    int64_t cell = i - matrix_begin[static_cast<size_t>(s)];
    const DenseMatrix& f = *ctx.cfactors[static_cast<size_t>(s)];
    int64_t row = cell / f.cols();
    int64_t col = cell % f.cols();
    JoinValue v;
    v.coord.c.fill(-1);
    v.value = f(row, col);
    v.col = static_cast<int32_t>(col);
    v.kind = 1;
    em->Emit(KMid(s, row), v);
  };

  auto reducer = [&](const KMid& key, std::vector<JoinValue>& values,
                     OutputEmitter<int64_t, HadamardRecord>* out) {
    const int s = key.first;
    const int64_t q_count = ctx.cfactors[static_cast<size_t>(s)]->cols();
    std::vector<double> row(static_cast<size_t>(q_count), 0.0);
    for (const JoinValue& v : values) {
      if (v.kind == 1) row[static_cast<size_t>(v.col)] = v.value;
    }
    for (const JoinValue& v : values) {
      if (v.kind != 0) continue;
      // Stream 0 carries the tensor values; the other streams carry
      // bin(X)-scaled factor values (Lemmas 1 and 2).
      double base = (s == 0) ? v.value : 1.0;
      for (int64_t q = 0; q < q_count; ++q) {
        double scaled = base * row[static_cast<size_t>(q)];
        if (scaled == 0.0) continue;
        HadamardRecord rec;
        rec.coord = v.coord;
        rec.stream = s;
        rec.col = static_cast<int32_t>(q);
        rec.value = scaled;
        out->Emit(v.coord.c[static_cast<size_t>(free_mode)], rec);
      }
    }
  };

  return ctx.engine->Run<KMid, JoinValue, int64_t, HadamardRecord>(
      "IMHP", domain, reader, reducer);
}

// ---------------------------------------------------------------------------
// DRN: one Hadamard job per (stream, column), then one merge job.
// ---------------------------------------------------------------------------

Result<std::vector<KeyedHadamard>> RunDrnHadamardJob(const ContractionContext& ctx, int s,
                                                     int64_t q) {
  const SparseTensor& x = *ctx.x;
  const int64_t nnz = x.nnz();
  const int mode = ctx.cmodes[static_cast<size_t>(s)];
  const DenseMatrix& f = *ctx.cfactors[static_cast<size_t>(s)];
  const int64_t domain = nnz + x.dim(mode);
  auto reader = [&, s, mode, q](int64_t i,
                                ShuffleEmitter<int64_t, JoinValue>* em) {
    if (i < nnz) {
      JoinValue v;
      v.coord = Coord::FromIndex(x.IndexPtr(i), x.order());
      v.value = x.value(i);
      v.col = -1;
      v.kind = 0;
      em->Emit(v.coord.c[static_cast<size_t>(mode)], v);
      return;
    }
    int64_t row = i - nnz;
    JoinValue v;
    v.coord.c.fill(-1);
    v.value = f(row, q);
    v.col = static_cast<int32_t>(q);
    v.kind = 1;
    em->Emit(row, v);
  };
  auto reducer = [&, s, q](const int64_t& /*key*/,
                           std::vector<JoinValue>& values,
                           OutputEmitter<int64_t, HadamardRecord>* out) {
    double cell = 0.0;
    for (const JoinValue& v : values) {
      if (v.kind == 1) cell = v.value;
    }
    if (cell == 0.0) return;
    for (const JoinValue& v : values) {
      if (v.kind != 0) continue;
      double base = (s == 0) ? v.value : 1.0;
      double scaled = base * cell;
      if (scaled == 0.0) continue;
      HadamardRecord rec;
      rec.coord = v.coord;
      rec.stream = s;
      rec.col = static_cast<int32_t>(q);
      rec.value = scaled;
      out->Emit(v.coord.c[static_cast<size_t>(ctx.free_mode)], rec);
    }
  };
  std::string job_name = StrFormat("Hadamard[m%d,c%lld]", mode, (long long)q);
  return ctx.engine->Run<int64_t, JoinValue, int64_t, HadamardRecord>(
      job_name, domain, reader, reducer);
}

// ---------------------------------------------------------------------------
// Merge job shared by DRN and DRI: CrossMerge or PairwiseMerge keyed by the
// free-mode index (see the header note on keying).
// ---------------------------------------------------------------------------

Result<SliceBlocks> RunMergeJob(const ContractionContext& ctx,
                                const std::vector<KeyedHadamard>& input) {
  const int num_streams = ctx.num_streams();
  SliceBlocks blocks = MakeEmptyBlocks(ctx);
  const int64_t block_size = blocks.BlockSize();
  const std::vector<int64_t> weights = BlockWeights(ctx);

  auto reader = [&input](int64_t i,
                         ShuffleEmitter<int64_t, HadamardRecord>* em) {
    const KeyedHadamard& rec = input[static_cast<size_t>(i)];
    em->Emit(rec.first, rec.second);
  };

  auto reducer = [&](const int64_t& /*slice*/,
                     std::vector<HadamardRecord>& values,
                     OutputEmitter<int64_t, std::vector<double>>* out) {
    // Join the streams on the original tensor coordinate.
    struct PerCoord {
      std::array<std::vector<double>, kMaxMrOrder - 1> stream_vals;
    };
    std::unordered_map<Coord, PerCoord, CoordStdHash> joins;
    joins.reserve(values.size() / std::max(1, num_streams));
    for (const HadamardRecord& rec : values) {
      PerCoord& pc = joins[rec.coord];
      auto& vals = pc.stream_vals[static_cast<size_t>(rec.stream)];
      if (vals.empty()) {
        vals.assign(
            static_cast<size_t>(ctx.block_dims[static_cast<size_t>(
                rec.stream)]),
            0.0);
      }
      vals[static_cast<size_t>(rec.col)] += rec.value;
    }
    std::vector<double> block(static_cast<size_t>(block_size), 0.0);
    for (auto& [coord, pc] : joins) {
      // A coordinate missing any stream contributes nothing (its factor row
      // was entirely zero).
      bool complete = true;
      for (int s = 0; s < num_streams; ++s) {
        if (pc.stream_vals[static_cast<size_t>(s)].empty()) {
          complete = false;
          break;
        }
      }
      if (!complete) continue;
      if (ctx.kind == MergeKind::kPairwise) {
        for (int64_t r = 0; r < block_size; ++r) {
          double p = 1.0;
          for (int s = 0; s < num_streams; ++s) {
            p *= pc.stream_vals[static_cast<size_t>(s)]
                              [static_cast<size_t>(r)];
          }
          block[static_cast<size_t>(r)] += p;
        }
      } else {
        // Cross product of all streams' columns (odometer walk).
        std::vector<int64_t> q(static_cast<size_t>(num_streams), 0);
        while (true) {
          double p = 1.0;
          int64_t off = 0;
          for (int s = 0; s < num_streams; ++s) {
            p *= pc.stream_vals[static_cast<size_t>(s)]
                              [static_cast<size_t>(q[static_cast<size_t>(
                                  s)])];
            off += q[static_cast<size_t>(s)] * weights[static_cast<size_t>(s)];
          }
          if (p != 0.0) block[static_cast<size_t>(off)] += p;
          int s = 0;
          while (s < num_streams) {
            if (++q[static_cast<size_t>(s)] <
                ctx.block_dims[static_cast<size_t>(s)]) {
              break;
            }
            q[static_cast<size_t>(s)] = 0;
            ++s;
          }
          if (s == num_streams) break;
        }
      }
    }
    // Re-use the slice id stored in any record's coordinate.
    if (!values.empty()) {
      int64_t slice = values.front()
                          .coord.c[static_cast<size_t>(ctx.free_mode)];
      out->Emit(slice, std::move(block));
    }
  };

  const char* name =
      ctx.kind == MergeKind::kCross ? "CrossMerge" : "PairwiseMerge";
  HATEN2_ASSIGN_OR_RETURN(
      auto out,
      (ctx.engine->Run<int64_t, HadamardRecord, int64_t,
                       std::vector<double>>(
          name, static_cast<int64_t>(input.size()), reader, reducer)));
  // Canonical row-insertion order: every strategy inserts SliceBlocks rows
  // in ascending slice order, so the map's iteration order (which downstream
  // float sums like GramOfRows depend on) is strategy-independent.
  std::sort(out.begin(), out.end(),
            [](const std::pair<int64_t, std::vector<double>>& a,
               const std::pair<int64_t, std::vector<double>>& b) {
              return a.first < b.first;
            });
  for (auto& [slice, block] : out) {
    blocks.rows[slice] = std::move(block);
  }
  return blocks;
}

// ---------------------------------------------------------------------------
// DNN: decoupled Hadamard + Collapse, chained per stream (Algorithms 5, 6).
// ---------------------------------------------------------------------------

/// One n-mode vector Hadamard product job over in-flight tensor records:
/// scales every record by factor column `q` of `f` along `mode`.
Result<std::vector<HadamardRecord>> RunDnnHadamardJob(
    const ContractionContext& ctx, const std::vector<TensorRecord>& records, int mode,
    const DenseMatrix& f, int64_t q, int64_t mode_dim) {
  const int64_t n = static_cast<int64_t>(records.size());
  const int64_t domain = n + mode_dim;
  auto reader = [&](int64_t i, ShuffleEmitter<int64_t, JoinValue>* em) {
    if (i < n) {
      const TensorRecord& rec = records[static_cast<size_t>(i)];
      JoinValue v;
      v.coord = rec.coord;
      v.value = rec.value;
      v.col = -1;
      v.kind = 0;
      em->Emit(rec.coord.c[static_cast<size_t>(mode)], v);
      return;
    }
    int64_t row = i - n;
    JoinValue v;
    v.coord.c.fill(-1);
    v.value = f(row, q);
    v.col = static_cast<int32_t>(q);
    v.kind = 1;
    em->Emit(row, v);
  };
  auto reducer = [&, q](const int64_t& /*key*/,
                        std::vector<JoinValue>& values,
                        OutputEmitter<int64_t, HadamardRecord>* out) {
    double cell = 0.0;
    for (const JoinValue& v : values) {
      if (v.kind == 1) cell = v.value;
    }
    if (cell == 0.0) return;
    for (const JoinValue& v : values) {
      if (v.kind != 0) continue;
      double scaled = v.value * cell;
      if (scaled == 0.0) continue;
      HadamardRecord rec;
      rec.coord = v.coord;
      rec.stream = 0;
      rec.col = static_cast<int32_t>(q);
      rec.value = scaled;
      out->Emit(0, rec);
    }
  };
  std::string job_name = StrFormat("DNN-Hadamard[m%d,c%lld]", mode,
                                   (long long)q);
  HATEN2_ASSIGN_OR_RETURN(
      auto out, (ctx.engine->Run<int64_t, JoinValue, int64_t, HadamardRecord>(
                    job_name, domain, reader, reducer)));
  std::vector<HadamardRecord> result;
  result.reserve(out.size());
  for (auto& [k, rec] : out) result.push_back(rec);
  return result;
}

/// Collapse job: sums Hadamard records into cells; the collapsed mode's
/// coordinate is replaced by `replace_with_col ? record.col : 0`.
Result<std::vector<TensorRecord>> RunDnnCollapseJob(
    const ContractionContext& ctx, const std::vector<HadamardRecord>& records, int mode,
    bool replace_with_col) {
  auto reader = [&](int64_t i, ShuffleEmitter<Coord, double>* em) {
    const HadamardRecord& rec = records[static_cast<size_t>(i)];
    Coord key = rec.coord;
    key.c[static_cast<size_t>(mode)] =
        replace_with_col ? static_cast<int64_t>(rec.col) : 0;
    em->Emit(key, rec.value);
  };
  auto reducer = [](const Coord& key, std::vector<double>& values,
                    OutputEmitter<Coord, double>* out) {
    double sum = 0.0;
    for (double v : values) sum += v;
    if (sum != 0.0) out->Emit(key, sum);
  };
  std::string job_name = StrFormat("Collapse[m%d]", mode);
  HATEN2_ASSIGN_OR_RETURN(
      auto out,
      (ctx.engine->Run<Coord, double, Coord, double>(
          job_name, static_cast<int64_t>(records.size()), reader, reducer)));
  std::vector<TensorRecord> result;
  result.reserve(out.size());
  for (auto& [coord, value] : out) {
    result.push_back(TensorRecord{coord, value});
  }
  return result;
}

/// Pre-inserts one zero row per slice touched by `record_sets`, in ascending
/// slice order. Accumulation afterwards lands in existing rows, so the
/// accumulation float order is unchanged while the map's insertion order —
/// and hence its iteration order, which downstream float sums like
/// GramOfRows depend on — is canonical and strategy-independent.
void PreinsertRowsAscending(
    const ContractionContext& ctx,
    const std::vector<const std::vector<TensorRecord>*>& record_sets,
    int64_t block_size, SliceBlocks* blocks) {
  std::vector<int64_t> slices;
  for (const auto* records : record_sets) {
    for (const TensorRecord& rec : *records) {
      slices.push_back(rec.coord.c[static_cast<size_t>(ctx.free_mode)]);
    }
  }
  std::sort(slices.begin(), slices.end());
  slices.erase(std::unique(slices.begin(), slices.end()), slices.end());
  for (int64_t slice : slices) {
    blocks->rows.emplace(
        slice, std::vector<double>(static_cast<size_t>(block_size), 0.0));
  }
}

/// Assembles Y from the final cross-variant records: coordinates at
/// contracted modes hold factor-column indices. Record order is the merge
/// order, so identical inputs give bit-identical float sums.
SliceBlocks AssembleCrossBlocks(const ContractionContext& ctx,
                                const std::vector<TensorRecord>& records) {
  SliceBlocks blocks = MakeEmptyBlocks(ctx);
  const std::vector<int64_t> weights = BlockWeights(ctx);
  const int64_t block_size = blocks.BlockSize();
  PreinsertRowsAscending(ctx, {&records}, block_size, &blocks);
  for (const TensorRecord& rec : records) {
    int64_t off = 0;
    for (int s = 0; s < ctx.num_streams(); ++s) {
      off += rec.coord.c[static_cast<size_t>(ctx.cmodes[static_cast<size_t>(
                 s)])] *
             weights[static_cast<size_t>(s)];
    }
    int64_t slice = rec.coord.c[static_cast<size_t>(ctx.free_mode)];
    auto [it, inserted] = blocks.rows.try_emplace(slice);
    if (inserted) it->second.assign(static_cast<size_t>(block_size), 0.0);
    it->second[static_cast<size_t>(off)] += rec.value;
  }
  return blocks;
}

/// Accumulates one pairwise chain's final records into column `r` of the
/// blocks. Called in ascending-r order so blocks.rows insertion order (and
/// hence downstream map-iteration float sums) match the serial evaluation.
void AccumulatePairwiseColumn(const ContractionContext& ctx, int64_t rank, int64_t r,
                              const std::vector<TensorRecord>& records,
                              SliceBlocks* blocks) {
  for (const TensorRecord& rec : records) {
    int64_t slice = rec.coord.c[static_cast<size_t>(ctx.free_mode)];
    auto [it, inserted] = blocks->rows.try_emplace(slice);
    if (inserted) it->second.assign(static_cast<size_t>(rank), 0.0);
    it->second[static_cast<size_t>(r)] += rec.value;
  }
}

Result<SliceBlocks> RunDnnCross(const ContractionContext& ctx,
                                const std::vector<TensorRecord>& base) {
  // Per stream: one Hadamard node per factor column (independent of each
  // other, all reading the previous stream's collapsed records), then one
  // Collapse node concatenating the per-column outputs in column order —
  // the fixed concatenation keeps the collapse job's input (and so every
  // downstream float sum) identical at any concurrency level.
  Plan plan("contract-dnn-cross");
  struct StreamState {
    std::vector<std::vector<HadamardRecord>> parts;
    std::vector<TensorRecord> collapsed;
  };
  std::vector<StreamState> st(static_cast<size_t>(ctx.num_streams()));
  int prev_collapse = -1;
  for (int s = 0; s < ctx.num_streams(); ++s) {
    const int mode = ctx.cmodes[static_cast<size_t>(s)];
    const DenseMatrix& f = *ctx.cfactors[static_cast<size_t>(s)];
    const std::vector<TensorRecord>* input =
        s == 0 ? &base : &st[static_cast<size_t>(s) - 1].collapsed;
    st[static_cast<size_t>(s)].parts.resize(static_cast<size_t>(f.cols()));
    std::vector<int> hnodes;
    for (int64_t q = 0; q < f.cols(); ++q) {
      std::vector<int> deps;
      if (prev_collapse >= 0) deps.push_back(prev_collapse);
      hnodes.push_back(plan.AddProducer<std::vector<HadamardRecord>>(
          StrFormat("DNN-Hadamard[m%d,c%lld]", mode, (long long)q),
          std::move(deps),
          [&ctx, input, mode, &f, q] {
            return RunDnnHadamardJob(ctx, *input, mode, f, q,
                                     ctx.x->dim(mode));
          },
          &st[static_cast<size_t>(s)].parts[static_cast<size_t>(q)]));
    }
    prev_collapse = plan.AddProducer<std::vector<TensorRecord>>(
        StrFormat("Collapse[m%d]", mode), hnodes,
        [&ctx, &st, s, mode]() -> Result<std::vector<TensorRecord>> {
          StreamState& state = st[static_cast<size_t>(s)];
          std::vector<HadamardRecord> scaled;
          size_t total = 0;
          for (const auto& p : state.parts) total += p.size();
          scaled.reserve(total);
          for (const auto& p : state.parts) {
            scaled.insert(scaled.end(), p.begin(), p.end());
          }
          return RunDnnCollapseJob(ctx, scaled, mode,
                                   /*replace_with_col=*/true);
        },
        &st[static_cast<size_t>(s)].collapsed);
  }
  AnnotateDataflow(&plan);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  return AssembleCrossBlocks(ctx, st.back().collapsed);
}

Result<SliceBlocks> RunDnnPairwise(const ContractionContext& ctx,
                                   const std::vector<TensorRecord>& base) {
  SliceBlocks blocks = MakeEmptyBlocks(ctx);
  const int64_t rank = blocks.block_dims[0];
  // One Hadamard→Collapse chain per rank column; chains share no data, so
  // the scheduler overlaps them. Accumulation into the blocks happens after
  // the plan, in ascending-r order (see AccumulatePairwiseColumn).
  Plan plan("contract-dnn-pairwise");
  struct Chain {
    std::vector<std::vector<HadamardRecord>> scaled;   // per stream
    std::vector<std::vector<TensorRecord>> collapsed;  // per stream
  };
  std::vector<Chain> chains(static_cast<size_t>(rank));
  for (int64_t r = 0; r < rank; ++r) {
    Chain& ch = chains[static_cast<size_t>(r)];
    ch.scaled.resize(static_cast<size_t>(ctx.num_streams()));
    ch.collapsed.resize(static_cast<size_t>(ctx.num_streams()));
    int prev = -1;
    for (int s = 0; s < ctx.num_streams(); ++s) {
      const int mode = ctx.cmodes[static_cast<size_t>(s)];
      const DenseMatrix& f = *ctx.cfactors[static_cast<size_t>(s)];
      const std::vector<TensorRecord>* input =
          s == 0 ? &base : &ch.collapsed[static_cast<size_t>(s) - 1];
      std::vector<int> hdeps;
      if (prev >= 0) hdeps.push_back(prev);
      int h = plan.AddProducer<std::vector<HadamardRecord>>(
          StrFormat("DNN-Hadamard[m%d,c%lld]", mode, (long long)r),
          std::move(hdeps),
          [&ctx, input, mode, &f, r] {
            return RunDnnHadamardJob(ctx, *input, mode, f, r,
                                     ctx.x->dim(mode));
          },
          &ch.scaled[static_cast<size_t>(s)]);
      prev = plan.AddProducer<std::vector<TensorRecord>>(
          StrFormat("Collapse[m%d]", mode), {h},
          [&ctx, &ch, s, mode] {
            return RunDnnCollapseJob(ctx, ch.scaled[static_cast<size_t>(s)],
                                     mode, /*replace_with_col=*/false);
          },
          &ch.collapsed[static_cast<size_t>(s)]);
    }
  }
  AnnotateDataflow(&plan);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  std::vector<const std::vector<TensorRecord>*> finals;
  for (const Chain& ch : chains) finals.push_back(&ch.collapsed.back());
  PreinsertRowsAscending(ctx, finals, rank, &blocks);
  for (int64_t r = 0; r < rank; ++r) {
    AccumulatePairwiseColumn(ctx, rank, r,
                             chains[static_cast<size_t>(r)].collapsed.back(),
                             &blocks);
  }
  return blocks;
}

// ---------------------------------------------------------------------------
// Naive: per-column broadcast TTV jobs (Algorithms 3, 4). The factor column
// is copied to every fiber of the current tensor — the nnz(X) + IJK
// intermediate-data explosion the paper starts from.
// ---------------------------------------------------------------------------

Result<std::vector<TensorRecord>> RunNaiveTtvJob(
    const ContractionContext& ctx, const std::vector<TensorRecord>& records,
    const std::vector<int64_t>& cur_dims, int mode, const DenseMatrix& f,
    int64_t q, int64_t replace_value) {
  const int order = ctx.x->order();
  const int64_t n = static_cast<int64_t>(records.size());
  // All fibers along `mode` of the *full* tensor grid, nonzero or not.
  int64_t num_fibers = 1;
  std::vector<int64_t> fiber_weights(static_cast<size_t>(order), 0);
  for (int m = 0; m < order; ++m) {
    if (m == mode) continue;
    fiber_weights[static_cast<size_t>(m)] = num_fibers;
    num_fibers *= cur_dims[static_cast<size_t>(m)];
  }
  const int64_t domain = n + num_fibers;
  const int64_t mode_dim = ctx.x->dim(mode);

  auto reader = [&](int64_t i, ShuffleEmitter<Coord, NaiveValue>* em) {
    if (i < n) {
      const TensorRecord& rec = records[static_cast<size_t>(i)];
      Coord key = rec.coord;
      key.c[static_cast<size_t>(mode)] = -1;
      em->Emit(key,
               NaiveValue{rec.coord.c[static_cast<size_t>(mode)], rec.value,
                          0});
      return;
    }
    // Broadcast the whole factor column to this fiber.
    int64_t fiber = i - n;
    Coord key;
    key.c.fill(-1);
    for (int m = 0; m < order; ++m) {
      if (m == mode) continue;
      key.c[static_cast<size_t>(m)] =
          (fiber / fiber_weights[static_cast<size_t>(m)]) %
          cur_dims[static_cast<size_t>(m)];
    }
    for (int64_t j = 0; j < mode_dim; ++j) {
      em->Emit(key, NaiveValue{j, f(j, q), 1});
    }
  };

  auto reducer = [&](const Coord& key, std::vector<NaiveValue>& values,
                     OutputEmitter<int64_t, TensorRecord>* out) {
    std::unordered_map<int64_t, double> vec;
    for (const NaiveValue& v : values) {
      if (v.kind == 1 && v.value != 0.0) vec.emplace(v.j, v.value);
    }
    double sum = 0.0;
    for (const NaiveValue& v : values) {
      if (v.kind != 0) continue;
      auto it = vec.find(v.j);
      if (it != vec.end()) sum += v.value * it->second;
    }
    if (sum != 0.0) {
      Coord coord = key;
      coord.c[static_cast<size_t>(mode)] = replace_value;
      out->Emit(0, TensorRecord{coord, sum});
    }
  };

  std::string job_name =
      StrFormat("Naive-TTV[m%d,c%lld]", mode, (long long)q);
  HATEN2_ASSIGN_OR_RETURN(
      auto out, (ctx.engine->Run<Coord, NaiveValue, int64_t, TensorRecord>(
                    job_name, domain, reader, reducer)));
  std::vector<TensorRecord> result;
  result.reserve(out.size());
  for (auto& [k, rec] : out) result.push_back(rec);
  return result;
}

Result<SliceBlocks> RunNaiveCross(const ContractionContext& ctx,
                                  const std::vector<TensorRecord>& base) {
  // Per stream: independent per-column TTV nodes over the previous stream's
  // records, then a pure concatenation node (no engine job) fixing the
  // record order the next stream reads.
  Plan plan("contract-naive-cross");
  struct StreamState {
    std::vector<std::vector<TensorRecord>> parts;  // per column
    std::vector<TensorRecord> current;             // concatenated
  };
  std::vector<StreamState> st(static_cast<size_t>(ctx.num_streams()));
  // Dimensions of the in-flight tensor before contracting each stream
  // (earlier contractions replaced their mode's extent with the factor's
  // column count). Known at build time: the sequence is data-independent.
  std::vector<std::vector<int64_t>> dims_before(
      static_cast<size_t>(ctx.num_streams()));
  {
    std::vector<int64_t> dims = ctx.x->dims();
    for (int s = 0; s < ctx.num_streams(); ++s) {
      dims_before[static_cast<size_t>(s)] = dims;
      dims[static_cast<size_t>(ctx.cmodes[static_cast<size_t>(s)])] =
          ctx.cfactors[static_cast<size_t>(s)]->cols();
    }
  }
  int prev_concat = -1;
  for (int s = 0; s < ctx.num_streams(); ++s) {
    const int mode = ctx.cmodes[static_cast<size_t>(s)];
    const DenseMatrix& f = *ctx.cfactors[static_cast<size_t>(s)];
    const std::vector<TensorRecord>* input =
        s == 0 ? &base : &st[static_cast<size_t>(s) - 1].current;
    st[static_cast<size_t>(s)].parts.resize(static_cast<size_t>(f.cols()));
    std::vector<int> ttv_nodes;
    for (int64_t q = 0; q < f.cols(); ++q) {
      std::vector<int> deps;
      if (prev_concat >= 0) deps.push_back(prev_concat);
      ttv_nodes.push_back(plan.AddProducer<std::vector<TensorRecord>>(
          StrFormat("Naive-TTV[m%d,c%lld]", mode, (long long)q),
          std::move(deps),
          [&ctx, input, &dims = dims_before[static_cast<size_t>(s)], mode, &f,
           q] {
            return RunNaiveTtvJob(ctx, *input, dims, mode, f, q,
                                  /*replace_value=*/q);
          },
          &st[static_cast<size_t>(s)].parts[static_cast<size_t>(q)]));
    }
    prev_concat = plan.AddJob(
        StrFormat("concat[m%d]", mode), ttv_nodes, [&st, s]() -> Status {
          StreamState& state = st[static_cast<size_t>(s)];
          size_t total = 0;
          for (const auto& p : state.parts) total += p.size();
          state.current.reserve(total);
          for (const auto& p : state.parts) {
            state.current.insert(state.current.end(), p.begin(), p.end());
          }
          return Status::OK();
        });
  }
  AnnotateDataflow(&plan);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  return AssembleCrossBlocks(ctx, st.back().current);
}

Result<SliceBlocks> RunNaivePairwise(const ContractionContext& ctx,
                                     const std::vector<TensorRecord>& base) {
  SliceBlocks blocks = MakeEmptyBlocks(ctx);
  const int64_t rank = blocks.block_dims[0];
  // One TTV chain per rank column, independent across columns; blocks are
  // accumulated after the plan in ascending-r order.
  Plan plan("contract-naive-pairwise");
  struct Chain {
    std::vector<std::vector<TensorRecord>> current;  // per stream
  };
  std::vector<Chain> chains(static_cast<size_t>(rank));
  std::vector<std::vector<int64_t>> dims_before(
      static_cast<size_t>(ctx.num_streams()));
  {
    std::vector<int64_t> dims = ctx.x->dims();
    for (int s = 0; s < ctx.num_streams(); ++s) {
      dims_before[static_cast<size_t>(s)] = dims;
      dims[static_cast<size_t>(ctx.cmodes[static_cast<size_t>(s)])] = 1;
    }
  }
  for (int64_t r = 0; r < rank; ++r) {
    Chain& ch = chains[static_cast<size_t>(r)];
    ch.current.resize(static_cast<size_t>(ctx.num_streams()));
    int prev = -1;
    for (int s = 0; s < ctx.num_streams(); ++s) {
      const int mode = ctx.cmodes[static_cast<size_t>(s)];
      const DenseMatrix& f = *ctx.cfactors[static_cast<size_t>(s)];
      const std::vector<TensorRecord>* input =
          s == 0 ? &base : &ch.current[static_cast<size_t>(s) - 1];
      std::vector<int> deps;
      if (prev >= 0) deps.push_back(prev);
      prev = plan.AddProducer<std::vector<TensorRecord>>(
          StrFormat("Naive-TTV[m%d,c%lld]", mode, (long long)r),
          std::move(deps),
          [&ctx, input, &dims = dims_before[static_cast<size_t>(s)], mode,
           &f, r] {
            return RunNaiveTtvJob(ctx, *input, dims, mode, f, r,
                                  /*replace_value=*/0);
          },
          &ch.current[static_cast<size_t>(s)]);
    }
  }
  AnnotateDataflow(&plan);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  std::vector<const std::vector<TensorRecord>*> finals;
  for (const Chain& ch : chains) finals.push_back(&ch.current.back());
  PreinsertRowsAscending(ctx, finals, rank, &blocks);
  for (int64_t r = 0; r < rank; ++r) {
    AccumulatePairwiseColumn(ctx, rank, r,
                             chains[static_cast<size_t>(r)].current.back(),
                             &blocks);
  }
  return blocks;
}

const char* MergeName(MergeKind kind) {
  return kind == MergeKind::kCross ? "CrossMerge" : "PairwiseMerge";
}

// ---------------------------------------------------------------------------
// Fused sketched merge: one integrated broadcast job. The contracted factors
// are s-wide sketches, small enough (I_m × s doubles) for every map task to
// hold, so the join the IMHP job exists for disappears: the mapper reads a
// tensor entry, multiplies the matching sketched-factor rows in place, and
// emits one already-merged partial per sketch column. Shuffle volume is
// nnz·s records against IMHP+PairwiseMerge's join cells + nnz·(N-1)·s; the
// factor cells are still charged as job input (the broadcast has to be
// read), mirroring how IMHP counts its matrix cells.
// ---------------------------------------------------------------------------

Result<SliceBlocks> RunSketchFused(const ContractionContext& ctx) {
  const SparseTensor& x = *ctx.x;
  const int64_t nnz = x.nnz();
  const int64_t width = ctx.block_dims.empty() ? 0 : ctx.block_dims[0];
  // Broadcast factor cells are part of the job input domain, like the
  // IMHP job's matrix cells: reading them is charged, shuffling them is not.
  int64_t cells = 0;
  for (size_t s = 0; s < ctx.cmodes.size(); ++s) {
    cells += x.dim(ctx.cmodes[s]) * ctx.cfactors[s]->cols();
  }
  const int64_t domain = nnz + cells;
  const int free_mode = ctx.free_mode;

  auto reader = [&](int64_t i, ShuffleEmitter<int64_t, HadamardRecord>* em) {
    if (i >= nnz) return;  // broadcast cell: read, nothing to shuffle
    Coord coord = Coord::FromIndex(x.IndexPtr(i), x.order());
    const double base = x.value(i);
    for (int64_t j = 0; j < width; ++j) {
      double v = base;
      for (size_t s = 0; s < ctx.cmodes.size(); ++s) {
        v *= (*ctx.cfactors[s])(
            coord.c[static_cast<size_t>(ctx.cmodes[s])], j);
      }
      if (v == 0.0) continue;
      HadamardRecord rec;
      rec.coord = coord;
      rec.stream = 0;
      rec.col = static_cast<int32_t>(j);
      rec.value = v;
      em->Emit(coord.c[static_cast<size_t>(free_mode)], rec);
    }
  };

  auto reducer = [&](const int64_t& slice,
                     std::vector<HadamardRecord>& values,
                     OutputEmitter<int64_t, std::vector<double>>* out) {
    std::vector<double> block(static_cast<size_t>(width), 0.0);
    for (const HadamardRecord& rec : values) {
      block[static_cast<size_t>(rec.col)] += rec.value;
    }
    out->Emit(slice, std::move(block));
  };

  HATEN2_ASSIGN_OR_RETURN(
      auto out,
      (ctx.engine->Run<int64_t, HadamardRecord, int64_t,
                       std::vector<double>>("SketchFusedMerge", domain,
                                            reader, reducer)));
  SliceBlocks blocks = MakeEmptyBlocks(ctx);
  // Ascending-slice insertion, as in RunMergeJob: downstream float sums
  // depend on the rows map's iteration order.
  std::sort(out.begin(), out.end(),
            [](const std::pair<int64_t, std::vector<double>>& a,
               const std::pair<int64_t, std::vector<double>>& b) {
              return a.first < b.first;
            });
  for (auto& [slice, block] : out) {
    blocks.rows[slice] = std::move(block);
  }
  return blocks;
}

Result<SliceBlocks> RunSketchFusedPlan(const ContractionContext& ctx) {
  Plan plan("contract-sketch-fused");
  SliceBlocks blocks;
  plan.AddProducer<SliceBlocks>(
      "SketchFusedMerge", {}, [&ctx] { return RunSketchFused(ctx); },
      &blocks);
  AnnotateDataflow(&plan);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  return blocks;
}

// ---------------------------------------------------------------------------
// Plan builders for the two-phase variants (DRI, DRN).
// ---------------------------------------------------------------------------

Result<SliceBlocks> RunDri(const ContractionContext& ctx) {
  Plan plan("contract-dri");
  std::vector<KeyedHadamard> scaled;
  SliceBlocks blocks;
  int imhp = plan.AddProducer<std::vector<KeyedHadamard>>(
      "IMHP", {}, [&ctx] { return RunImhpJob(ctx); }, &scaled);
  plan.AddProducer<SliceBlocks>(
      MergeName(ctx.kind), {imhp},
      [&ctx, &scaled] { return RunMergeJob(ctx, scaled); }, &blocks);
  AnnotateDataflow(&plan);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  return blocks;
}

Result<SliceBlocks> RunDrn(const ContractionContext& ctx) {
  Plan plan("contract-drn");
  // One output slot per (stream, column) job: the merge node concatenates
  // them in (s, q) order, so the merge job's input order — and with it every
  // downstream float summation — is independent of which Hadamard node
  // finished first.
  size_t total_jobs = 0;
  for (int s = 0; s < ctx.num_streams(); ++s) {
    total_jobs += static_cast<size_t>(ctx.cfactors[static_cast<size_t>(s)]
                                          ->cols());
  }
  std::vector<std::vector<KeyedHadamard>> parts(total_jobs);
  std::vector<int> hadamard_nodes;
  hadamard_nodes.reserve(total_jobs);
  size_t slot = 0;
  for (int s = 0; s < ctx.num_streams(); ++s) {
    const int mode = ctx.cmodes[static_cast<size_t>(s)];
    for (int64_t q = 0; q < ctx.cfactors[static_cast<size_t>(s)]->cols();
         ++q, ++slot) {
      hadamard_nodes.push_back(plan.AddProducer<std::vector<KeyedHadamard>>(
          StrFormat("Hadamard[m%d,c%lld]", mode, (long long)q), {},
          [&ctx, s, q] { return RunDrnHadamardJob(ctx, s, q); },
          &parts[slot]));
    }
  }
  SliceBlocks blocks;
  plan.AddProducer<SliceBlocks>(
      MergeName(ctx.kind), hadamard_nodes,
      [&ctx, &parts]() -> Result<SliceBlocks> {
        std::vector<KeyedHadamard> collected;
        size_t total = 0;
        for (const auto& p : parts) total += p.size();
        collected.reserve(total);
        for (const auto& p : parts) {
          collected.insert(collected.end(), p.begin(), p.end());
        }
        return RunMergeJob(ctx, collected);
      },
      &blocks);
  AnnotateDataflow(&plan);
  PlanScheduler scheduler(ctx.engine);
  HATEN2_RETURN_IF_ERROR(scheduler.Execute(plan));
  return blocks;
}

}  // namespace

Result<SliceBlocks> DataflowContraction::Contract(
    const ContractionContext& ctx) const {
  // The DNN/Naive variants start from the decoded coordinate records of x —
  // an input scan that is invariant across ALS iterations, so a
  // per-decomposition ContractCache serves it without re-decoding.
  std::shared_ptr<const std::vector<TensorRecord>> base;
  if (ctx.variant == Variant::kDnn || ctx.variant == Variant::kNaive) {
    if (ctx.cache != nullptr) {
      base = ctx.cache->Records(ctx.engine, *ctx.x);
    } else {
      base = std::make_shared<const std::vector<TensorRecord>>(
          TensorToRecords(*ctx.x));
    }
  }

  // The fused sketched merge presupposes the integrated (DRI) design — a
  // single job that joins map-side and merges in its reduce. The variant
  // knob distinguishes how the *join* is staged, and kSketchFused has no
  // join to stage, so every variant takes the same fused job.
  if (ctx.kind == MergeKind::kSketchFused) return RunSketchFusedPlan(ctx);

  switch (ctx.variant) {
    case Variant::kDri:
      return RunDri(ctx);
    case Variant::kDrn:
      return RunDrn(ctx);
    case Variant::kDnn:
      return ctx.kind == MergeKind::kCross ? RunDnnCross(ctx, *base)
                                           : RunDnnPairwise(ctx, *base);
    case Variant::kNaive:
      return ctx.kind == MergeKind::kCross ? RunNaiveCross(ctx, *base)
                                           : RunNaivePairwise(ctx, *base);
  }
  return Status::InvalidArgument("unknown variant");
}

}  // namespace haten2
