#ifndef HATEN2_CORE_DATAFLOW_CONTRACTION_H_
#define HATEN2_CORE_DATAFLOW_CONTRACTION_H_

#include "core/contraction_strategy.h"

namespace haten2 {

/// \brief The paper's contraction path: every evaluation is a dataflow Plan
/// of MapReduce jobs whose shapes and counts follow the selected HaTen2
/// variant exactly (Tables III/IV hold by construction).
///
///  - kDri: one IMHP job producing every Hadamard stream, then one merge.
///  - kDrn: one Hadamard job per (stream, column), then one merge.
///  - kDnn: decoupled Hadamard + Collapse chains (per column for pairwise).
///  - kNaive: per-column broadcast TTV chains.
///
/// This is a pure code motion of the pre-strategy implementation — output is
/// bit-identical and the existing driver tests enforce it. The DNN/Naive
/// input scan is served from ctx.cache when present.
class DataflowContraction : public ContractionStrategy {
 public:
  const char* name() const override { return "dataflow"; }
  Result<SliceBlocks> Contract(const ContractionContext& ctx) const override;
};

}  // namespace haten2

#endif  // HATEN2_CORE_DATAFLOW_CONTRACTION_H_
