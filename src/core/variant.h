#ifndef HATEN2_CORE_VARIANT_H_
#define HATEN2_CORE_VARIANT_H_

#include <string>
#include <string_view>
#include <vector>

namespace haten2 {

/// The four HaTen2 algorithm variants the paper evaluates (Table II), in
/// increasing order of sophistication. Each adds one idea:
///   kNaive - per-column n-mode vector products with vector broadcast (MET
///            transcribed onto MapReduce);
///   kDnn   - Decouples the vector product into Hadamard + Collapse;
///   kDrn   - additionally Removes the dependency between the sequential
///            products via CrossMerge / PairwiseMerge;
///   kDri   - additionally Integrates all Hadamard jobs into a single IMHP
///            job (the recommended method, a.k.a. just "HaTen2").
enum class Variant {
  kNaive = 0,
  kDnn = 1,
  kDrn = 2,
  kDri = 3,
};

inline constexpr Variant kAllVariants[] = {Variant::kNaive, Variant::kDnn,
                                           Variant::kDrn, Variant::kDri};

std::string_view VariantName(Variant v);

/// Table II row: which of the three ideas the variant incorporates.
struct VariantTraits {
  bool distributed;
  bool decouples_steps;        // Section III-B2
  bool removes_dependencies;   // Section III-B3
  bool integrates_jobs;        // Section III-B4
};
VariantTraits TraitsOf(Variant v);

/// Predicted costs (Tables III and IV) for one bottleneck-op evaluation.
struct PredictedCost {
  int64_t max_intermediate_records;
  int64_t total_jobs;
};

/// Table III: Tucker, computing X ×₂ Bᵀ ×₃ Cᵀ with core sizes q, r.
PredictedCost PredictTuckerCost(Variant v, int64_t nnz, int64_t i, int64_t j,
                                int64_t k, int64_t q, int64_t r);

/// Table IV: PARAFAC, computing X₍₁₎ (C ⊙ B) with rank r.
PredictedCost PredictParafacCost(Variant v, int64_t nnz, int64_t i, int64_t j,
                                 int64_t k, int64_t r);

}  // namespace haten2

#endif  // HATEN2_CORE_VARIANT_H_
