#include "core/contract.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/dataflow_contraction.h"
#include "core/incore_contraction.h"
#include "core/records.h"
#include "mapreduce/cost_model.h"
#include "util/string_util.h"

namespace haten2 {

std::vector<TensorRecord> TensorToRecords(const SparseTensor& x) {
  std::vector<TensorRecord> records;
  records.reserve(static_cast<size_t>(x.nnz()));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    records.push_back(
        TensorRecord{Coord::FromIndex(x.IndexPtr(e), x.order()), x.value(e)});
  }
  return records;
}

bool ContractCache::MatchesOrReset(const SparseTensor& x) {
  const uint64_t fp = TensorFingerprint(x);
  if (has_key_ && fp == fingerprint_) return true;
  // New (or rebuilt-in-place) tensor: every cached form is stale.
  records_.reset();
  for (auto& slot : layouts_) slot.reset();
  has_key_ = true;
  fingerprint_ = fp;
  return false;
}

std::shared_ptr<const std::vector<TensorRecord>> ContractCache::Records(
    Engine* engine, const SparseTensor& x) {
  const bool key_match = MatchesOrReset(x);
  const bool hit = key_match && records_ != nullptr;
  if (hit) {
    ++hits_;
  } else {
    records_ = std::make_shared<const std::vector<TensorRecord>>(
        TensorToRecords(x));
    ++misses_;
  }
  if (engine != nullptr) engine->NoteInvariantCache(hit);
  return records_;
}

Status ContractCache::ApplyDelta(const SparseTensor& new_x,
                                 const SparseTensor& delta) {
  if (!new_x.canonical()) {
    return Status::FailedPrecondition(
        "ContractCache::ApplyDelta: merged tensor must be canonical");
  }
  if (delta.order() != new_x.order()) {
    return Status::InvalidArgument(
        StrFormat("ContractCache::ApplyDelta: delta order %d != tensor "
                  "order %d",
                  delta.order(), new_x.order()));
  }
  ++delta_patches_;
  records_.reset();
  if (!has_key_) {
    for (auto& slot : layouts_) slot.reset();
    has_key_ = true;
    fingerprint_ = TensorFingerprint(new_x);
    return Status::OK();
  }
  const int order = new_x.order();
  for (int m = 0; m < order && m < kMaxMrOrder; ++m) {
    auto& slot = layouts_[static_cast<size_t>(m)];
    if (slot == nullptr) continue;
    std::vector<int64_t> dirty;
    dirty.reserve(static_cast<size_t>(delta.nnz()));
    for (int64_t e = 0; e < delta.nnz(); ++e) {
      dirty.push_back(delta.IndexPtr(e)[m]);
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    dirty_slices_ += static_cast<int64_t>(dirty.size());
    if (static_cast<int64_t>(dirty.size()) >= new_x.dim(m)) {
      // Degenerate delta: every slice of this mode is dirty, so patching
      // degrades to a full rebuild — collapse to a plain invalidation and
      // let the next Layout() call rebuild (an honest layout miss).
      slot.reset();
      ++layout_full_invalidations_;
      continue;
    }
    CsfPatchCounters pc;
    HATEN2_ASSIGN_OR_RETURN(CsfLayout patched,
                            PatchCsfLayout(*slot, new_x, dirty, &pc));
    slot = std::make_shared<const CsfLayout>(std::move(patched));
    layout_slices_reused_ += pc.slices_reused;
    layout_slices_rebuilt_ += pc.slices_rebuilt;
  }
  fingerprint_ = TensorFingerprint(new_x);
  return Status::OK();
}

Result<std::shared_ptr<const CsfLayout>> ContractCache::Layout(
    const SparseTensor& x, int free_mode) {
  if (free_mode < 0 || free_mode >= kMaxMrOrder) {
    return Status::InvalidArgument(
        StrFormat("ContractCache::Layout: free_mode %d out of range",
                  free_mode));
  }
  const bool key_match = MatchesOrReset(x);
  auto& slot = layouts_[static_cast<size_t>(free_mode)];
  if (key_match && slot != nullptr) {
    ++layout_hits_;
    return slot;
  }
  HATEN2_ASSIGN_OR_RETURN(CsfLayout built, BuildCsfLayout(x, free_mode));
  slot = std::make_shared<const CsfLayout>(std::move(built));
  ++layout_misses_;
  return slot;
}

DenseMatrix SliceBlocks::ToDenseMatrix() const {
  DenseMatrix out(free_dim, BlockSize());
  for (const auto& [slice, block] : rows) {
    double* row = out.RowPtr(slice);
    for (size_t j = 0; j < block.size(); ++j) row[j] = block[j];
  }
  return out;
}

DenseMatrix SliceBlocks::GramOfRows() const {
  const int64_t n = BlockSize();
  DenseMatrix gram(n, n);
  for (const auto& [slice, block] : rows) {
    for (int64_t a = 0; a < n; ++a) {
      double va = block[static_cast<size_t>(a)];
      if (va == 0.0) continue;
      double* grow = gram.RowPtr(a);
      for (int64_t b = a; b < n; ++b) {
        grow[b] += va * block[static_cast<size_t>(b)];
      }
    }
  }
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = 0; b < a; ++b) gram(a, b) = gram(b, a);
  }
  return gram;
}

Result<SliceBlocks> MultiModeContract(
    Engine* engine, const SparseTensor& x,
    const std::vector<const DenseMatrix*>& factors, int free_mode,
    MergeKind kind, Variant variant, ContractCache* cache) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (x.order() < 2 || x.order() > kMaxMrOrder) {
    return Status::InvalidArgument(StrFormat(
        "the MapReduce path supports orders 2..%d, got %d (use the baseline "
        "library for higher orders)",
        kMaxMrOrder, x.order()));
  }
  if (!x.canonical()) {
    return Status::FailedPrecondition(
        "input tensor must be canonical (call Canonicalize())");
  }
  if (free_mode < 0 || free_mode >= x.order()) {
    return Status::InvalidArgument("free_mode out of range");
  }
  if (static_cast<int>(factors.size()) != x.order()) {
    return Status::InvalidArgument("need one factor slot per mode");
  }

  ContractionContext ctx;
  ctx.engine = engine;
  ctx.x = &x;
  ctx.free_mode = free_mode;
  ctx.kind = kind;
  ctx.variant = variant;
  ctx.cache = cache;
  for (int m = 0; m < x.order(); ++m) {
    if (m == free_mode) continue;
    const DenseMatrix* f = factors[static_cast<size_t>(m)];
    if (f == nullptr) {
      return Status::InvalidArgument(
          StrFormat("factor for contracted mode %d is null", m));
    }
    if (f->rows() != x.dim(m)) {
      return Status::InvalidArgument(
          StrFormat("factor %d has %lld rows, mode size is %lld", m,
                    (long long)f->rows(), (long long)x.dim(m)));
    }
    if (f->cols() <= 0) {
      return Status::InvalidArgument("factor matrices must have >= 1 column");
    }
    ctx.cmodes.push_back(m);
    ctx.cfactors.push_back(f);
    ctx.block_dims.push_back(f->cols());
  }
  if (kind == MergeKind::kPairwise || kind == MergeKind::kSketchFused) {
    for (size_t s = 1; s < ctx.block_dims.size(); ++s) {
      if (ctx.block_dims[s] != ctx.block_dims[0]) {
        return Status::InvalidArgument(
            "pairwise-style merges require all factors to share the same "
            "rank");
      }
    }
  }

  // Strategy selection (ClusterConfig::contraction, validated upstream).
  // Both implementations are stateless, so a single const instance of each
  // serves every evaluation.
  static const DataflowContraction kDataflow;
  static const InCoreContraction kInCore;
  const ClusterConfig& config = engine->config();
  const ContractionStrategy* strategy = &kDataflow;
  if (config.contraction == "incore") {
    strategy = &kInCore;
  } else if (config.contraction == "auto") {
    const uint64_t budget = static_cast<uint64_t>(config.incore_memory_mb)
                            << 20;
    if (CostModel::EstimateInCoreLayoutBytes(x.nnz(), ctx.num_streams()) <=
        budget) {
      strategy = &kInCore;
    }
  }
  return strategy->Contract(ctx);
}

}  // namespace haten2
