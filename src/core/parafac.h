#ifndef HATEN2_CORE_PARAFAC_H_
#define HATEN2_CORE_PARAFAC_H_

#include "core/checkpoint.h"
#include "core/contract.h"
#include "core/variant.h"
#include "mapreduce/engine.h"
#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// Options shared by the HaTen2 decomposition drivers.
struct Haten2Options {
  /// Which HaTen2 variant evaluates the bottleneck operations.
  Variant variant = Variant::kDri;

  /// Maximum ALS (outer) iterations (T in Algorithm 1).
  int max_iterations = 20;

  /// Convergence threshold: PARAFAC stops when the fit changes by less than
  /// this between iterations; Tucker when ||G|| / ||X|| does.
  double tolerance = 1e-6;

  /// Seed for factor initialization.
  uint64_t seed = 17;

  /// Extension (paper Section VI, future work): nonnegative PARAFAC via
  /// Lee-Seung multiplicative updates instead of the unconstrained
  /// least-squares update. Factors stay entrywise >= 0.
  bool nonnegative = false;

  /// Compute the fit after every iteration (costs one O(nnz·R) pass).
  bool compute_fit = true;

  /// Optional warm starts (checkpoint/resume): when non-null, the matching
  /// driver initializes from this model instead of randomly. The model must
  /// match the tensor's shape and the requested rank/core size. Resuming a
  /// run from its own checkpoint continues the exact same iterate sequence
  /// (ALS state is fully captured by the factors). Not owned.
  const KruskalModel* initial_kruskal = nullptr;
  const TuckerModel* initial_tucker = nullptr;

  /// Optional fault tolerance (core/checkpoint.h). With `checkpoint` set,
  /// the driver writes an atomic checkpoint (factors + λ/core + iteration
  /// counter + fit history + convergence state + config fingerprint) every
  /// checkpoint->every_n_iterations iterations. With `resume_from` set, the
  /// driver restores that state and continues the exact iterate sequence —
  /// iteration numbering, histories, traces, and the convergence test all
  /// pick up where the checkpoint left off (unlike the initial_* warm
  /// starts above, which begin a fresh run from the given factors). The
  /// checkpoint's fingerprint must match the current run (method, variant,
  /// seed, tolerance, rank/core dims, tensor shape+nnz) or the driver
  /// refuses with kFailedPrecondition. Not owned.
  const CheckpointOptions* checkpoint = nullptr;
  const LoadedCheckpoint* resume_from = nullptr;

  /// Optional per-iteration observability: when non-null, the driver
  /// appends one IterationStats per ALS iteration (fit / λ / ||G||, wall
  /// time, and the engine jobs the iteration ran). An iteration that dies
  /// mid-flight (o.o.m.) is still recorded with the jobs that completed,
  /// so post-mortems of the paper's failure cases keep their numbers.
  /// Serialized by stats_json.h. Not owned.
  DecompositionTrace* trace = nullptr;

  /// Optional caller-owned ContractCache shared across decompositions
  /// (incremental refit keeps one per ingest session and patches it with
  /// each epoch delta — see ContractCache::ApplyDelta). When null the
  /// harness uses a private per-decomposition cache. Not owned.
  ContractCache* contract_cache = nullptr;
};

/// \brief HaTen2-PARAFAC (Algorithm 1 driven by the MapReduce bottleneck op).
///
/// Each factor update evaluates Y ← X₍ₙ₎ (⊙_{m≠n} A⁽ᵐ⁾) through
/// MultiModeContract with MergeKind::kPairwise and the configured variant,
/// then solves the small least-squares system
/// A⁽ⁿ⁾ ← Y · (∗_{m≠n} A⁽ᵐ⁾ᵀA⁽ᵐ⁾)† on the driver (the paper does the same:
/// only the MTTKRP is distributed). Supports 3- and 4-way tensors (the
/// MapReduce path's order limit).
///
/// Returns kResourceExhausted when the variant's intermediate data exceeds
/// the engine's shuffle-memory budget ("o.o.m.").
Result<KruskalModel> Haten2ParafacAls(Engine* engine, const SparseTensor& x,
                                      int64_t rank,
                                      const Haten2Options& options = {});

}  // namespace haten2

#endif  // HATEN2_CORE_PARAFAC_H_
