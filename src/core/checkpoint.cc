#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mapreduce/hash.h"
#include "tensor/model_io.h"
#include "util/json_writer.h"  // WriteTextFile
#include "util/string_util.h"

namespace haten2 {

namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestMagic = "haten2-checkpoint-v1";
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kModelPrefix = "model";

std::string FormatHistory(const char* key, const std::vector<double>& h) {
  std::string line = key;
  for (double v : h) line += StrFormat(" %.17g", v);
  line += "\n";
  return line;
}

Status ParseHistory(std::istringstream* rest, std::vector<double>* out) {
  std::string token;
  while (*rest >> token) {
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("non-numeric history entry: " + token);
    }
    out->push_back(v);
  }
  return Status::OK();
}

/// iter_<NNNNNN> → iteration, or -1 for names that are not checkpoints.
/// `*.tmp` names are rejected explicitly (not just by the digits rule):
/// they are staging directories mid-write or orphans of a crash, never
/// committed checkpoints, regardless of what tooling dropped them there.
int ParseCheckpointDirName(const std::string& name) {
  constexpr std::string_view kPrefix = "iter_";
  constexpr std::string_view kTmpSuffix = ".tmp";
  if (name.size() >= kTmpSuffix.size() &&
      name.compare(name.size() - kTmpSuffix.size(), kTmpSuffix.size(),
                   kTmpSuffix) == 0) {
    return -1;
  }
  if (name.size() <= kPrefix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0) {
    return -1;
  }
  int iter = 0;
  for (size_t i = kPrefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    iter = iter * 10 + (name[i] - '0');
  }
  return iter;
}

}  // namespace

std::string CheckpointDirName(int iteration) {
  return StrFormat("iter_%06d", iteration);
}

uint64_t CheckpointFingerprint(const std::string& method, Variant variant,
                               uint64_t seed, double tolerance,
                               const std::vector<int64_t>& rank_or_core,
                               const SparseTensor& x) {
  uint64_t h = 0x48615465ull;  // "HaTe"
  auto mix = [&h](uint64_t v) { h = Mix64(h ^ Mix64(v)); };
  for (char c : method) mix(static_cast<uint64_t>(c));
  mix(static_cast<uint64_t>(variant));
  mix(seed);
  uint64_t tol_bits;
  static_assert(sizeof(tol_bits) == sizeof(tolerance));
  std::memcpy(&tol_bits, &tolerance, sizeof(tol_bits));
  mix(tol_bits);
  for (int64_t r : rank_or_core) mix(static_cast<uint64_t>(r));
  mix(static_cast<uint64_t>(x.order()));
  for (int m = 0; m < x.order(); ++m) mix(static_cast<uint64_t>(x.dim(m)));
  mix(static_cast<uint64_t>(x.nnz()));
  return h;
}

Status CheckpointWriter::Write(const CheckpointManifest& manifest,
                               const KruskalModel* kruskal,
                               const TuckerModel* tucker) {
  if (options_.directory.empty()) {
    return Status::InvalidArgument("checkpoint directory must be set");
  }
  if (options_.every_n_iterations < 1 || options_.keep_last < 1) {
    return Status::InvalidArgument(
        "checkpoint every_n_iterations and keep_last must be >= 1");
  }
  if ((kruskal != nullptr) == (tucker != nullptr)) {
    return Status::InvalidArgument(
        "exactly one of the Kruskal / Tucker models must be provided");
  }
  if ((kruskal != nullptr && manifest.model_kind != "kruskal") ||
      (tucker != nullptr && manifest.model_kind != "tucker")) {
    return Status::InvalidArgument(
        "manifest model kind does not match the provided model");
  }
  if (manifest.iteration < 1) {
    return Status::InvalidArgument("checkpoint iteration must be >= 1");
  }

  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    return Status::IOError("creating checkpoint directory " +
                           options_.directory + ": " + ec.message());
  }

  const fs::path root(options_.directory);
  const fs::path final_dir = root / CheckpointDirName(manifest.iteration);
  const fs::path staging =
      root / ("." + CheckpointDirName(manifest.iteration) + ".tmp");

  // A leftover staging directory from a previous crash is dead weight.
  fs::remove_all(staging, ec);
  fs::create_directories(staging, ec);
  if (ec) {
    return Status::IOError("creating checkpoint staging directory: " +
                           ec.message());
  }

  const std::string prefix = (staging / kModelPrefix).string();
  Status model_status =
      kruskal != nullptr ? SaveKruskalModel(*kruskal, prefix)
                         : SaveTuckerModel(*tucker, prefix);
  if (!model_status.ok()) {
    fs::remove_all(staging, ec);
    return model_status;
  }

  std::string text = kManifestMagic;
  text += "\n";
  text += "method " + manifest.method + "\n";
  text += "model " + manifest.model_kind + "\n";
  text += StrFormat("fingerprint %llu\n",
                    (unsigned long long)manifest.fingerprint);
  text += StrFormat("iteration %d\n", manifest.iteration);
  text += StrFormat("metric %.17g\n", manifest.metric);
  text += FormatHistory("fit_history", manifest.fit_history);
  text += FormatHistory("core_norm_history", manifest.core_norm_history);
  text += "end\n";
  Status manifest_status =
      WriteTextFile((staging / kManifestName).string(), text);
  if (!manifest_status.ok()) {
    fs::remove_all(staging, ec);
    return manifest_status;
  }

  // Commit point: one atomic rename. Replace an existing checkpoint of the
  // same iteration (a re-run over a stale directory) rather than failing.
  fs::remove_all(final_dir, ec);
  fs::rename(staging, final_dir, ec);
  if (ec) {
    std::error_code cleanup;
    fs::remove_all(staging, cleanup);
    return Status::IOError("committing checkpoint " + final_dir.string() +
                           ": " + ec.message());
  }

  // Retention: prune committed checkpoints beyond keep_last (best effort —
  // a prune failure must not fail the run; the commit already happened).
  Result<std::vector<std::string>> existing =
      ListCheckpoints(options_.directory);
  if (existing.ok() &&
      existing->size() > static_cast<size_t>(options_.keep_last)) {
    const size_t excess = existing->size() -
                          static_cast<size_t>(options_.keep_last);
    for (size_t i = 0; i < excess; ++i) {
      fs::remove_all((*existing)[i], ec);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListCheckpoints(
    const std::string& directory) {
  std::vector<std::pair<int, std::string>> found;
  std::error_code ec;
  fs::directory_iterator it(directory, ec);
  if (ec) return std::vector<std::string>{};  // missing dir = no checkpoints
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec)) continue;
    int iter = ParseCheckpointDirName(entry.path().filename().string());
    if (iter >= 0) found.emplace_back(iter, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [iter, path] : found) out.push_back(std::move(path));
  return out;
}

Result<CheckpointManifest> ReadCheckpointManifest(
    const std::string& checkpoint_dir) {
  const std::string path =
      (fs::path(checkpoint_dir) / kManifestName).string();
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("checkpoint manifest not found: " + path);
  }
  auto corrupt = [&path](const std::string& why) {
    return Status::InvalidArgument("corrupt checkpoint manifest " + path +
                                   ": " + why);
  };

  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return corrupt("missing '" + std::string(kManifestMagic) +
                   "' header line");
  }
  CheckpointManifest manifest;
  bool saw_end = false;
  bool saw_iteration = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "method") {
      fields >> manifest.method;
    } else if (key == "model") {
      fields >> manifest.model_kind;
    } else if (key == "fingerprint") {
      unsigned long long fp = 0;
      if (!(fields >> fp)) return corrupt("unreadable fingerprint");
      manifest.fingerprint = fp;
    } else if (key == "iteration") {
      if (!(fields >> manifest.iteration) || manifest.iteration < 1) {
        return corrupt("unreadable iteration counter");
      }
      saw_iteration = true;
    } else if (key == "metric") {
      if (!(fields >> manifest.metric)) return corrupt("unreadable metric");
    } else if (key == "fit_history") {
      HATEN2_RETURN_IF_ERROR(ParseHistory(&fields, &manifest.fit_history));
    } else if (key == "core_norm_history") {
      HATEN2_RETURN_IF_ERROR(
          ParseHistory(&fields, &manifest.core_norm_history));
    } else {
      return corrupt("unknown field '" + key + "'");
    }
  }
  if (!saw_end) {
    return corrupt("truncated (missing 'end' marker — the checkpoint was "
                   "not committed atomically)");
  }
  if (manifest.method.empty() || !saw_iteration) {
    return corrupt("missing required fields (method, iteration)");
  }
  if (manifest.model_kind != "kruskal" && manifest.model_kind != "tucker") {
    return corrupt("unknown model kind '" + manifest.model_kind + "'");
  }
  return manifest;
}

Result<LoadedCheckpoint> LoadCheckpoint(const std::string& checkpoint_dir) {
  LoadedCheckpoint loaded;
  HATEN2_ASSIGN_OR_RETURN(loaded.manifest,
                          ReadCheckpointManifest(checkpoint_dir));
  const std::string prefix =
      (fs::path(checkpoint_dir) / kModelPrefix).string();
  if (loaded.manifest.model_kind == "kruskal") {
    HATEN2_ASSIGN_OR_RETURN(loaded.kruskal,
                            LoadKruskalModelAutoOrder(prefix));
  } else {
    HATEN2_ASSIGN_OR_RETURN(loaded.tucker, LoadTuckerModelAutoOrder(prefix));
  }
  return loaded;
}

Status ValidateCheckpointForResume(const CheckpointManifest& manifest,
                                   const std::string& method,
                                   const std::string& model_kind,
                                   uint64_t fingerprint) {
  if (manifest.model_kind != model_kind) {
    return Status::FailedPrecondition(
        "checkpoint carries a " + manifest.model_kind +
        " model, this driver needs " + model_kind);
  }
  if (manifest.method != method) {
    return Status::FailedPrecondition(
        "checkpoint was written by method '" + manifest.method +
        "', refusing to resume method '" + method + "'");
  }
  if (manifest.fingerprint != fingerprint) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint fingerprint %llu does not match this run's %llu — the "
        "method, variant, seed, tolerance, rank/core dims, or input tensor "
        "differ from the checkpointed run",
        (unsigned long long)manifest.fingerprint,
        (unsigned long long)fingerprint));
  }
  return Status::OK();
}

Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& directory) {
  HATEN2_ASSIGN_OR_RETURN(std::vector<std::string> checkpoints,
                          ListCheckpoints(directory));
  if (checkpoints.empty()) {
    return Status::NotFound("no committed checkpoints under '" + directory +
                            "'");
  }
  // Walk newest → oldest, skipping checkpoints that fail to load: a torn
  // manifest (missing 'end' marker) or half-written model files mean that
  // *that* checkpoint is dead, not that resume is impossible — an older
  // committed checkpoint is strictly better than starting over. Only when
  // every candidate is broken does the newest one's error surface.
  Status newest_error = Status::OK();
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    Result<LoadedCheckpoint> loaded = LoadCheckpoint(*it);
    if (loaded.ok()) return loaded;
    if (newest_error.ok()) newest_error = loaded.status();
    std::fprintf(stderr,
                 "haten2: skipping unloadable checkpoint %s: %s\n",
                 it->c_str(), loaded.status().message().c_str());
  }
  return newest_error;
}

}  // namespace haten2
