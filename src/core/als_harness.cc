#include "core/als_harness.h"

#include <cmath>
#include <utility>

#include "util/timer.h"

namespace haten2 {

Status AlsHarness::Run(const IterationBody& body) {
  // -1.0 is the legacy cold-start sentinel; a resumed run restores the
  // exact prev-metric double recorded at checkpoint time, so the first
  // resumed convergence test is bit-identical to the uninterrupted one.
  double prev_metric =
      options_.has_resume_metric ? options_.resume_metric : -1.0;
  for (int iter = options_.start_iteration + 1;
       iter <= options_.max_iterations; ++iter) {
    const int64_t first_job_id = engine_->NextJobId();
    WallTimer iter_timer;
    AlsIterationOutcome outcome;
    Status iter_status = body(iter, &outcome);
    if (options_.trace != nullptr) {
      IterationStats it;
      it.iteration = iter;
      it.wall_seconds = iter_timer.ElapsedSeconds();
      it.has_fit = outcome.has_fit;
      it.fit = outcome.fit;
      it.has_core_norm = outcome.has_core_norm;
      it.core_norm = outcome.core_norm;
      it.lambda = std::move(outcome.lambda);
      it.has_sketch = outcome.has_sketch;
      it.sketch_seconds = outcome.sketch_seconds;
      it.sketch_dims = outcome.sketch_dims;
      it.sketch_polish = outcome.sketch_polish;
      it.pipeline = engine_->PipelineSince(first_job_id);
      options_.trace->iterations.push_back(std::move(it));
    }
    if (!iter_status.ok()) return iter_status;
    bool converged = false;
    if (outcome.has_metric) {
      const double bound = options_.tolerance * options_.tolerance_scale;
      if (prev_metric >= 0.0) {
        const double delta = std::fabs(outcome.metric - prev_metric);
        converged =
            options_.converge_on_equal ? delta <= bound : delta < bound;
      }
      if (!converged) prev_metric = outcome.metric;
    }
    if (converged) break;
    if (options_.checkpoint_every > 0 && options_.checkpoint_fn &&
        iter % options_.checkpoint_every == 0 &&
        iter < options_.max_iterations) {
      HATEN2_RETURN_IF_ERROR(options_.checkpoint_fn(iter, prev_metric));
    }
  }
  return Status::OK();
}

}  // namespace haten2
