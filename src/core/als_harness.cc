#include "core/als_harness.h"

#include <cmath>
#include <utility>

#include "util/timer.h"

namespace haten2 {

Status AlsHarness::Run(const IterationBody& body) {
  double prev_metric = -1.0;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    const int64_t first_job_id = engine_->NextJobId();
    WallTimer iter_timer;
    AlsIterationOutcome outcome;
    Status iter_status = body(iter, &outcome);
    if (options_.trace != nullptr) {
      IterationStats it;
      it.iteration = iter;
      it.wall_seconds = iter_timer.ElapsedSeconds();
      it.has_fit = outcome.has_fit;
      it.fit = outcome.fit;
      it.has_core_norm = outcome.has_core_norm;
      it.core_norm = outcome.core_norm;
      it.lambda = std::move(outcome.lambda);
      it.pipeline = engine_->PipelineSince(first_job_id);
      options_.trace->iterations.push_back(std::move(it));
    }
    if (!iter_status.ok()) return iter_status;
    if (outcome.has_metric) {
      const double bound = options_.tolerance * options_.tolerance_scale;
      if (prev_metric >= 0.0) {
        const double delta = std::fabs(outcome.metric - prev_metric);
        if (options_.converge_on_equal ? delta <= bound : delta < bound) {
          break;
        }
      }
      prev_metric = outcome.metric;
    }
  }
  return Status::OK();
}

}  // namespace haten2
