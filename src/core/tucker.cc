#include "core/tucker.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/als_harness.h"
#include "core/records.h"
#include "linalg/linalg.h"
#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

/// Extracts `count` leading left singular vectors of the implicit matrix
/// whose rows are y's slice blocks, via the eigendecomposition of the small
/// Gram matrix Y₍ₙ₎ᵀY₍ₙ₎. Deficient directions are completed with
/// orthonormalized canonical basis vectors (dead components).
Result<DenseMatrix> TuckerLeadingFactor(const SliceBlocks& y, int64_t count) {
  const int64_t block = y.BlockSize();
  if (count > y.free_dim) {
    return Status::InvalidArgument(
        "core dimension exceeds the tensor mode size");
  }
  DenseMatrix gram = y.GramOfRows();
  HATEN2_ASSIGN_OR_RETURN(EigResult eig, SymmetricEigen(gram));
  double smax_sq = eig.eigenvalues.empty()
                       ? 0.0
                       : std::max(eig.eigenvalues[0], 0.0);
  // Eigenvalues of the Gram matrix carry ~1e-16 relative noise, so only
  // directions above ~1e-7 in singular-value space (1e-14 in eigenvalue
  // space) are numerically trustworthy.
  double cutoff_sq = smax_sq * 1e-14;

  DenseMatrix a(y.free_dim, count);
  int64_t valid = 0;
  for (int64_t p = 0; p < std::min(count, block); ++p) {
    double ev = std::max(eig.eigenvalues[static_cast<size_t>(p)], 0.0);
    if (ev <= cutoff_sq || ev == 0.0) break;
    double inv_s = 1.0 / std::sqrt(ev);
    double norm_sq = 0.0;
    for (const auto& [slice, row] : y.rows) {
      double dot = 0.0;
      for (int64_t c = 0; c < block; ++c) {
        dot += row[static_cast<size_t>(c)] * eig.eigenvectors(c, p);
      }
      double value = dot * inv_s;
      a(slice, p) = value;
      norm_sq += value * value;
    }
    // Guard against numerically unreliable directions; re-normalize drift.
    double norm = std::sqrt(norm_sq);
    if (norm < 0.5 || norm > 2.0) {
      for (const auto& [slice, row] : y.rows) a(slice, p) = 0.0;
      break;
    }
    for (const auto& [slice, row] : y.rows) a(slice, p) /= norm;
    ++valid;
  }
  // Complete any deficient columns to keep A orthonormal.
  int64_t next_basis = 0;
  for (int64_t p = valid; p < count; ++p) {
    bool placed = false;
    while (next_basis < y.free_dim && !placed) {
      std::vector<double> cand(static_cast<size_t>(y.free_dim), 0.0);
      cand[static_cast<size_t>(next_basis)] = 1.0;
      ++next_basis;
      for (int64_t c = 0; c < p; ++c) {
        double dot = 0.0;
        for (int64_t i = 0; i < y.free_dim; ++i) {
          dot += cand[static_cast<size_t>(i)] * a(i, c);
        }
        for (int64_t i = 0; i < y.free_dim; ++i) {
          cand[static_cast<size_t>(i)] -= dot * a(i, c);
        }
      }
      double norm = 0.0;
      for (double v : cand) norm += v * v;
      norm = std::sqrt(norm);
      if (norm > 1e-8) {
        for (int64_t i = 0; i < y.free_dim; ++i) {
          a(i, p) = cand[static_cast<size_t>(i)] / norm;
        }
        placed = true;
      }
    }
    if (!placed) {
      return Status::Internal("failed to complete an orthonormal basis");
    }
  }
  return a;
}

Result<DenseTensor> TuckerCoreFromBlocks(const SliceBlocks& last_y,
                                         const DenseMatrix& a_last,
                                         const std::vector<int64_t>& core_dims,
                                         int last_mode) {
  DenseMatrix core_unfolded(core_dims[static_cast<size_t>(last_mode)],
                            last_y.BlockSize());
  for (const auto& [slice, row] : last_y.rows) {
    for (int64_t p = 0; p < core_unfolded.rows(); ++p) {
      double w = a_last(slice, p);
      if (w == 0.0) continue;
      double* crow = core_unfolded.RowPtr(p);
      for (int64_t c = 0; c < core_unfolded.cols(); ++c) {
        crow[c] += w * row[static_cast<size_t>(c)];
      }
    }
  }
  return DenseTensor::Fold(core_unfolded, last_mode, core_dims);
}

Result<TuckerModel> Haten2TuckerAls(Engine* engine, const SparseTensor& x,
                                    std::vector<int64_t> core_dims,
                                    const Haten2Options& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (x.order() < 2 || x.order() > kMaxMrOrder) {
    return Status::InvalidArgument(
        StrFormat("HaTen2-Tucker supports orders 2..%d, got %d", kMaxMrOrder,
                  x.order()));
  }
  if (x.nnz() == 0) {
    return Status::InvalidArgument("cannot decompose an all-zero tensor");
  }
  const int order = x.order();
  if (static_cast<int>(core_dims.size()) != order) {
    return Status::InvalidArgument("core_dims must have one entry per mode");
  }
  for (int m = 0; m < order; ++m) {
    if (core_dims[static_cast<size_t>(m)] <= 0 ||
        core_dims[static_cast<size_t>(m)] > x.dim(m)) {
      return Status::InvalidArgument(StrFormat(
          "core dimension %lld invalid for mode %d of size %lld",
          (long long)core_dims[static_cast<size_t>(m)], m,
          (long long)x.dim(m)));
    }
  }

  const uint64_t fingerprint =
      CheckpointFingerprint("tucker", options.variant, options.seed,
                            options.tolerance, core_dims, x);

  Rng rng(options.seed);
  TuckerModel model;
  int start_iteration = 0;
  bool has_resume_metric = false;
  double resume_metric = 0.0;
  if (options.resume_from != nullptr) {
    const LoadedCheckpoint& ckpt = *options.resume_from;
    HATEN2_RETURN_IF_ERROR(ValidateCheckpointForResume(
        ckpt.manifest, "tucker", "tucker", fingerprint));
    if (static_cast<int>(ckpt.tucker.factors.size()) != order) {
      return Status::InvalidArgument(
          "checkpoint model does not match the tensor order");
    }
    for (int m = 0; m < order; ++m) {
      const DenseMatrix& f = ckpt.tucker.factors[static_cast<size_t>(m)];
      if (f.rows() != x.dim(m) ||
          f.cols() != core_dims[static_cast<size_t>(m)]) {
        return Status::InvalidArgument(
            StrFormat("checkpoint factor %d shape does not match", m));
      }
    }
    // Restore the factors verbatim — no defensive QR here. The checkpoint's
    // text format round-trips doubles exactly, and re-orthonormalizing
    // already-orthonormal factors would perturb them in the last ulp,
    // breaking the resumed run's bit-identity with the uninterrupted one.
    model.factors = ckpt.tucker.factors;
    model.core = ckpt.tucker.core;
    model.core_norm_history = ckpt.manifest.core_norm_history;
    model.iterations = ckpt.manifest.iteration;
    start_iteration = ckpt.manifest.iteration;
    has_resume_metric = true;
    resume_metric = ckpt.manifest.metric;
  } else if (options.initial_tucker != nullptr) {
    const TuckerModel& init = *options.initial_tucker;
    if (static_cast<int>(init.factors.size()) != order) {
      return Status::InvalidArgument(
          "warm-start model does not match the tensor order");
    }
    model.factors.reserve(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      const DenseMatrix& f = init.factors[static_cast<size_t>(m)];
      if (f.rows() != x.dim(m) ||
          f.cols() != core_dims[static_cast<size_t>(m)]) {
        return Status::InvalidArgument(StrFormat(
            "warm-start factor %d shape does not match", m));
      }
      // Re-orthonormalize defensively: checkpoints round-trip exactly, but
      // hand-built warm starts may not have orthonormal columns, which the
      // ||G||-based fit requires.
      HATEN2_ASSIGN_OR_RETURN(QrResult qr, QrDecompose(f));
      model.factors.push_back(std::move(qr.q));
    }
  } else {
    model.factors.reserve(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      DenseMatrix random = DenseMatrix::RandomNormal(
          x.dim(m), core_dims[static_cast<size_t>(m)], &rng);
      HATEN2_ASSIGN_OR_RETURN(QrResult qr, QrDecompose(random));
      model.factors.push_back(std::move(qr.q));
    }
  }

  const double x_norm = x.FrobeniusNorm();
  AlsHarness::Options harness_options;
  harness_options.max_iterations = options.max_iterations;
  harness_options.tolerance = options.tolerance;
  harness_options.tolerance_scale = x_norm;
  harness_options.converge_on_equal = true;
  harness_options.trace = options.trace;
  harness_options.start_iteration = start_iteration;
  harness_options.has_resume_metric = has_resume_metric;
  harness_options.resume_metric = resume_metric;
  harness_options.external_cache = options.contract_cache;
  std::optional<CheckpointWriter> checkpoint_writer;
  if (options.checkpoint != nullptr) {
    checkpoint_writer.emplace(*options.checkpoint);
    harness_options.checkpoint_every = options.checkpoint->every_n_iterations;
    harness_options.checkpoint_fn = [&](int iteration, double prev_metric) {
      CheckpointManifest m;
      m.method = "tucker";
      m.model_kind = "tucker";
      m.fingerprint = fingerprint;
      m.iteration = iteration;
      m.metric = prev_metric;
      m.core_norm_history = model.core_norm_history;
      return checkpoint_writer->Write(m, nullptr, &model);
    };
  }
  AlsHarness harness(engine, harness_options);
  Status loop_status = harness.Run(
      [&](int iter, AlsIterationOutcome* outcome) -> Status {
      SliceBlocks last_y;
      for (int n = 0; n < order; ++n) {
        HATEN2_ASSIGN_OR_RETURN(
            SliceBlocks y,
            MultiModeContract(engine, x, model.FactorPtrs(), n,
                              MergeKind::kCross, options.variant,
                              harness.cache()));
        HATEN2_ASSIGN_OR_RETURN(
            DenseMatrix factor,
            TuckerLeadingFactor(y, core_dims[static_cast<size_t>(n)]));
        model.factors[static_cast<size_t>(n)] = std::move(factor);
        if (n == order - 1) last_y = std::move(y);
      }
      // Core: G = Y ×_{N-1} A⁽ᴺ⁻¹⁾ᵀ, i.e. G₍ₙ₎ = AᵀY₍ₙ₎ accumulated over
      // the sparse slice blocks, then folded.
      const int last = order - 1;
      HATEN2_ASSIGN_OR_RETURN(
          model.core,
          TuckerCoreFromBlocks(last_y,
                               model.factors[static_cast<size_t>(last)],
                               core_dims, last));
      model.iterations = iter;
      const double core_norm = model.core.FrobeniusNorm();
      model.core_norm_history.push_back(core_norm);
      outcome->has_core_norm = true;
      outcome->core_norm = core_norm;
      outcome->has_metric = true;
      outcome->metric = core_norm;
      return Status::OK();
      });
  if (!loop_status.ok()) return loop_status;
  HATEN2_ASSIGN_OR_RETURN(model.fit, TuckerFit(x, model));
  return model;
}

}  // namespace haten2
