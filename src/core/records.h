#ifndef HATEN2_CORE_RECORDS_H_
#define HATEN2_CORE_RECORDS_H_

#include <array>
#include <cstdint>

#include "mapreduce/hash.h"

namespace haten2 {

/// Maximum tensor order supported by the distributed (MapReduce) code paths.
/// Covers the paper's 3-way evaluation, its motivating 4-way example
/// (source-ip, target-ip, port, timestamp), and higher-order use up to
/// 6-way. Intermediate records carry a fixed-size coordinate of this width,
/// so raising the limit costs shuffle bytes for every order; the
/// single-machine baseline has no limit at all.
inline constexpr int kMaxMrOrder = 6;

/// Fixed-size coordinate tuple for intermediate records. Unused trailing
/// slots are set to -1 so equality/hashing are order-independent.
struct Coord {
  std::array<int64_t, kMaxMrOrder> c;

  static Coord FromIndex(const int64_t* idx, int order) {
    Coord out;
    out.c.fill(-1);
    for (int m = 0; m < order; ++m) out.c[static_cast<size_t>(m)] = idx[m];
    return out;
  }

  friend bool operator==(const Coord& a, const Coord& b) = default;
};

template <>
struct ShuffleHash<Coord> {
  uint64_t operator()(const Coord& v) const {
    uint64_t seed = 0x7a7e17a7ULL;
    for (int64_t x : v.c) {
      seed = HashCombine(seed, static_cast<uint64_t>(x));
    }
    return seed;
  }
};

/// Output record of an n-mode (vector or matrix) Hadamard product job:
/// one scaled tensor entry per (original coordinate, factor column).
/// `stream` tags which contracted mode produced it, so the IMHP job can emit
/// every stream into one shuffle (Section III-B4, "integrating products for
/// different factor matrices").
struct HadamardRecord {
  Coord coord;
  int32_t stream;  ///< position of the contracted mode among contracted modes
  int32_t col;     ///< factor column index (q / r)
  double value;

  friend bool operator==(const HadamardRecord& a,
                         const HadamardRecord& b) = default;
};

/// Plain (coordinate, value) record used between the chained jobs of the
/// Naive and DNN variants.
struct TensorRecord {
  Coord coord;
  double value;

  friend bool operator==(const TensorRecord& a,
                         const TensorRecord& b) = default;
};

}  // namespace haten2

#endif  // HATEN2_CORE_RECORDS_H_
