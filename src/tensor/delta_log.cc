#include "tensor/delta_log.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/string_util.h"

namespace haten2 {

namespace {

constexpr char kMagic[8] = {'H', 'A', 'T', 'E', 'N', '2', 'D', '\0'};
constexpr uint32_t kVersion = 1;
constexpr int64_t kMaxReasonableNnz = int64_t{1} << 40;
constexpr int32_t kMaxReasonableOrder = 64;
constexpr int64_t kMaxReasonableEpochs = int64_t{1} << 32;

/// Same XOR-fold as tensor_binary_io — cheap corruption detection.
uint64_t Checksum(const char* data, size_t len) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  size_t full = len / 8;
  for (size_t i = 0; i < full; ++i) {
    uint64_t word;
    std::memcpy(&word, data + i * 8, 8);
    acc ^= word + (acc << 7) + (acc >> 3);
  }
  for (size_t i = full * 8; i < len; ++i) {
    acc ^= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
           << ((i % 8) * 8);
  }
  return acc;
}

template <typename T>
void Put(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool Get(std::istream& in, T* value) {
  char buf[sizeof(T)];
  in.read(buf, sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) return false;
  std::memcpy(value, buf, sizeof(T));
  return true;
}

void PutEntries(std::string* out, const SparseTensor& t) {
  Put<int64_t>(out, t.nnz());
  for (int64_t e = 0; e < t.nnz(); ++e) {
    for (int m = 0; m < t.order(); ++m) Put<int64_t>(out, t.index(e, m));
    Put<double>(out, t.value(e));
  }
}

Status GetEntries(std::istream& in, const std::string& path,
                  SparseTensor* t) {
  int64_t nnz = 0;
  if (!Get(in, &nnz) || nnz < 0 || nnz > kMaxReasonableNnz) {
    return Status::InvalidArgument(path + ": implausible delta nnz");
  }
  t->Reserve(nnz);
  std::vector<int64_t> idx(static_cast<size_t>(t->order()));
  for (int64_t e = 0; e < nnz; ++e) {
    for (int m = 0; m < t->order(); ++m) {
      if (!Get(in, &idx[static_cast<size_t>(m)])) {
        return Status::InvalidArgument(path + ": truncated delta entries");
      }
    }
    double value;
    if (!Get(in, &value)) {
      return Status::InvalidArgument(path + ": truncated delta entries");
    }
    HATEN2_RETURN_IF_ERROR(t->Append(idx.data(), t->order(), value));
  }
  return Status::OK();
}

}  // namespace

DeltaLog::DeltaLog(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  open_ = SparseTensor::Create(dims_).value();
}

Result<DeltaLog> DeltaLog::Create(std::vector<int64_t> dims) {
  // Reuse SparseTensor's shape validation: a log is valid iff an empty
  // tensor of that shape is.
  HATEN2_RETURN_IF_ERROR(SparseTensor::Create(dims).status());
  return DeltaLog(std::move(dims));
}

Status DeltaLog::Append(const int64_t* idx, int idx_len, double value) {
  return open_.Append(idx, idx_len, value);
}

Status DeltaLog::Append(std::initializer_list<int64_t> idx, double value) {
  return open_.Append(idx, value);
}

Result<int64_t> DeltaLog::SealEpoch() {
  if (open_.nnz() == 0) {
    return Status::FailedPrecondition(
        "DeltaLog::SealEpoch: refusing to seal an empty epoch (nothing was "
        "appended)");
  }
  open_.Canonicalize();
  epochs_.push_back(std::move(open_));
  open_ = SparseTensor::Create(dims_).value();
  return static_cast<int64_t>(epochs_.size()) - 1;
}

int64_t DeltaLog::sealed_nnz() const {
  int64_t total = 0;
  for (const SparseTensor& e : epochs_) total += e.nnz();
  return total;
}

Result<SparseTensor> DeltaLog::MergedView(const SparseTensor& base,
                                          int64_t first_epoch) const {
  if (first_epoch < 0 || first_epoch > num_epochs()) {
    return Status::InvalidArgument(
        StrFormat("DeltaLog::MergedView: first_epoch %lld out of [0, %lld]",
                  static_cast<long long>(first_epoch),
                  static_cast<long long>(num_epochs())));
  }
  SparseTensor merged = base;
  for (int64_t i = first_epoch; i < num_epochs(); ++i) {
    HATEN2_RETURN_IF_ERROR(MergeDelta(&merged, epoch(i)));
  }
  merged.Canonicalize();
  return merged;
}

Status MergeDelta(SparseTensor* base, const SparseTensor& delta) {
  if (base == nullptr) {
    return Status::InvalidArgument("MergeDelta: base must not be null");
  }
  if (base->dims() != delta.dims()) {
    return Status::InvalidArgument(
        StrFormat("MergeDelta: delta shape %s does not match base %s",
                  delta.DebugString().c_str(), base->DebugString().c_str()));
  }
  base->Reserve(base->nnz() + delta.nnz());
  for (int64_t e = 0; e < delta.nnz(); ++e) {
    base->AppendUnchecked(delta.IndexPtr(e), delta.value(e));
  }
  base->Canonicalize();
  return Status::OK();
}

Result<DeltaLog> DeltaLogFromTensor(const SparseTensor& triples,
                                    const std::vector<int64_t>& dims,
                                    int64_t epoch_nnz) {
  if (static_cast<int>(dims.size()) != triples.order()) {
    return Status::InvalidArgument(
        StrFormat("DeltaLogFromTensor: target shape has %zu modes, triples "
                  "have %d",
                  dims.size(), triples.order()));
  }
  HATEN2_ASSIGN_OR_RETURN(DeltaLog log, DeltaLog::Create(dims));
  for (int64_t e = 0; e < triples.nnz(); ++e) {
    HATEN2_RETURN_IF_ERROR(
        log.Append(triples.IndexPtr(e), triples.order(), triples.value(e)));
    if (epoch_nnz > 0 && log.open_appends() >= epoch_nnz) {
      HATEN2_RETURN_IF_ERROR(log.SealEpoch().status());
    }
  }
  if (log.open_appends() > 0) {
    HATEN2_RETURN_IF_ERROR(log.SealEpoch().status());
  }
  return log;
}

Status WriteDeltaLogBinary(const DeltaLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  Put<uint32_t>(&header, kVersion);
  Put<int32_t>(&header, log.order());
  for (int64_t d : log.dims()) Put<int64_t>(&header, d);
  Put<int64_t>(&header, log.num_epochs());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::string body;
  for (int64_t i = 0; i < log.num_epochs(); ++i) {
    PutEntries(&body, log.epoch(i));
  }
  // The unsealed tail rides along so in-flight appends survive a restart.
  PutEntries(&body, log.open_);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  uint64_t checksum = Checksum(body.data(), body.size());
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<DeltaLog> ReadDeltaLogBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a haten2 delta log");
  }
  uint32_t version = 0;
  int32_t order = 0;
  if (!Get(in, &version) || !Get(in, &order)) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(StrFormat(
        "%s: unsupported delta-log version %u", path.c_str(), version));
  }
  if (order < 1 || order > kMaxReasonableOrder) {
    return Status::InvalidArgument(
        StrFormat("%s: implausible order %d", path.c_str(), order));
  }
  std::vector<int64_t> dims(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) {
    if (!Get(in, &dims[static_cast<size_t>(m)])) {
      return Status::InvalidArgument(path + ": truncated header");
    }
  }
  int64_t num_epochs = 0;
  if (!Get(in, &num_epochs) || num_epochs < 0 ||
      num_epochs > kMaxReasonableEpochs) {
    return Status::InvalidArgument(path + ": implausible epoch count");
  }

  // The body is checksummed as a whole, so slurp it (everything between the
  // header and the trailing 8 checksum bytes), verify, then re-parse.
  std::string body;
  {
    std::string rest((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (rest.size() < sizeof(uint64_t)) {
      return Status::InvalidArgument(path + ": truncated body");
    }
    uint64_t stored_checksum = 0;
    std::memcpy(&stored_checksum, rest.data() + rest.size() - 8, 8);
    body.assign(rest.data(), rest.size() - 8);
    if (stored_checksum != Checksum(body.data(), body.size())) {
      return Status::InvalidArgument(path + ": checksum mismatch");
    }
  }

  HATEN2_ASSIGN_OR_RETURN(DeltaLog log, DeltaLog::Create(dims));
  std::istringstream body_in(body, std::ios::binary);
  for (int64_t i = 0; i < num_epochs; ++i) {
    HATEN2_ASSIGN_OR_RETURN(SparseTensor epoch, SparseTensor::Create(dims));
    HATEN2_RETURN_IF_ERROR(GetEntries(body_in, path, &epoch));
    // Sealed epochs were canonical when written; restore the invariant
    // (idempotent) rather than trust the file.
    epoch.Canonicalize();
    log.epochs_.push_back(std::move(epoch));
  }
  // The unsealed tail keeps its append order — it has not been sealed yet.
  HATEN2_RETURN_IF_ERROR(GetEntries(body_in, path, &log.open_));
  return log;
}

}  // namespace haten2
