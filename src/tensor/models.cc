#include "tensor/models.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"

namespace haten2 {

Result<double> KruskalFit(const SparseTensor& x, const KruskalModel& model) {
  double x_sq = x.SumSquares();
  if (x_sq == 0.0) {
    return Status::InvalidArgument("fit undefined for an all-zero tensor");
  }
  std::vector<const DenseMatrix*> factors = model.FactorPtrs();
  HATEN2_ASSIGN_OR_RETURN(double inner,
                          InnerProductKruskal(x, model.lambda, factors));
  HATEN2_ASSIGN_OR_RETURN(double model_sq,
                          KruskalNormSquared(model.lambda, factors));
  double resid_sq = x_sq - 2.0 * inner + model_sq;
  // Guard tiny negative values from floating-point cancellation.
  resid_sq = std::max(resid_sq, 0.0);
  return 1.0 - std::sqrt(resid_sq / x_sq);
}

Result<double> TuckerFit(const SparseTensor& x, const TuckerModel& model) {
  double x_sq = x.SumSquares();
  if (x_sq == 0.0) {
    return Status::InvalidArgument("fit undefined for an all-zero tensor");
  }
  if (static_cast<int>(model.factors.size()) != x.order()) {
    return Status::InvalidArgument("model order does not match tensor");
  }
  double core_sq = 0.0;
  for (double v : model.core.data()) core_sq += v * v;
  double resid_sq = std::max(x_sq - core_sq, 0.0);
  return 1.0 - std::sqrt(resid_sq / x_sq);
}

}  // namespace haten2
