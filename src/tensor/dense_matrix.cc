#include "tensor/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace haten2 {

DenseMatrix DenseMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return DenseMatrix();
  DenseMatrix m(static_cast<int64_t>(rows.size()),
                static_cast<int64_t>(rows[0].size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    HATEN2_CHECK(rows[i].size() == rows[0].size())
        << "ragged rows in DenseMatrix::FromRows";
    std::copy(rows[i].begin(), rows[i].end(),
              m.RowPtr(static_cast<int64_t>(i)));
  }
  return m;
}

DenseMatrix DenseMatrix::Identity(int64_t n) {
  DenseMatrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::RandomUniform(int64_t rows, int64_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (double& v : m.data()) v = rng->Uniform();
  return m;
}

DenseMatrix DenseMatrix::RandomNormal(int64_t rows, int64_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (double& v : m.data()) v = rng->Normal();
  return m;
}

Result<double> DenseMatrix::At(int64_t i, int64_t j) const {
  if (i < 0 || i >= rows_ || j < 0 || j >= cols_) {
    return Status::OutOfRange(
        StrFormat("index (%lld, %lld) out of range for %lldx%lld matrix",
                  (long long)i, (long long)j, (long long)rows_,
                  (long long)cols_));
  }
  return (*this)(i, j);
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

DenseMatrix& DenseMatrix::AddInPlace(const DenseMatrix& other) {
  HATEN2_CHECK(SameShape(other)) << "shape mismatch in AddInPlace";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

DenseMatrix& DenseMatrix::SubInPlace(const DenseMatrix& other) {
  HATEN2_CHECK(SameShape(other)) << "shape mismatch in SubInPlace";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

DenseMatrix& DenseMatrix::ScaleInPlace(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  HATEN2_CHECK(SameShape(other)) << "shape mismatch in MaxAbsDiff";
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::vector<double> DenseMatrix::Column(int64_t j) const {
  std::vector<double> col(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < rows_; ++i) col[i] = (*this)(i, j);
  return col;
}

void DenseMatrix::SetColumn(int64_t j, const std::vector<double>& v) {
  HATEN2_CHECK(static_cast<int64_t>(v.size()) == rows_)
      << "column length mismatch in SetColumn";
  for (int64_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

}  // namespace haten2
