#include "tensor/tensor_ops.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

Status CheckMode(const SparseTensor& x, int mode) {
  if (mode < 0 || mode >= x.order()) {
    return Status::InvalidArgument(
        StrFormat("mode %d out of range for order %d", mode, x.order()));
  }
  return Status::OK();
}

Status CheckFactors(const SparseTensor& x,
                    const std::vector<const DenseMatrix*>& factors,
                    int64_t* rank) {
  if (static_cast<int>(factors.size()) != x.order()) {
    return Status::InvalidArgument(
        StrFormat("expected %d factor matrices, got %d", x.order(),
                  static_cast<int>(factors.size())));
  }
  *rank = -1;
  for (int m = 0; m < x.order(); ++m) {
    const DenseMatrix* f = factors[static_cast<size_t>(m)];
    if (f == nullptr) {
      return Status::InvalidArgument("null factor matrix");
    }
    if (f->rows() != x.dim(m)) {
      return Status::InvalidArgument(
          StrFormat("factor %d has %lld rows, expected %lld", m,
                    (long long)f->rows(), (long long)x.dim(m)));
    }
    if (*rank == -1) {
      *rank = f->cols();
    } else if (f->cols() != *rank) {
      return Status::InvalidArgument("factor matrices disagree on rank");
    }
  }
  return Status::OK();
}

}  // namespace

Result<SparseTensor> Ttv(const SparseTensor& x, const std::vector<double>& v,
                         int mode) {
  HATEN2_RETURN_IF_ERROR(CheckMode(x, mode));
  if (static_cast<int64_t>(v.size()) != x.dim(mode)) {
    return Status::InvalidArgument(
        StrFormat("vector length %lld != mode size %lld",
                  (long long)v.size(), (long long)x.dim(mode)));
  }
  if (x.order() == 1) {
    return Status::Unimplemented(
        "Ttv on an order-1 tensor is a scalar; not representable");
  }
  std::vector<int64_t> out_dims;
  for (int m = 0; m < x.order(); ++m) {
    if (m != mode) out_dims.push_back(x.dim(m));
  }
  HATEN2_ASSIGN_OR_RETURN(SparseTensor out,
                          SparseTensor::Create(std::move(out_dims)));
  out.Reserve(x.nnz());
  std::vector<int64_t> proj(static_cast<size_t>(x.order() - 1));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    double scale = v[static_cast<size_t>(idx[mode])];
    if (scale == 0.0) continue;
    size_t w = 0;
    for (int m = 0; m < x.order(); ++m) {
      if (m != mode) proj[w++] = idx[m];
    }
    out.AppendUnchecked(proj.data(), x.value(e) * scale);
  }
  out.Canonicalize();
  return out;
}

Result<SparseTensor> Ttm(const SparseTensor& x, const DenseMatrix& u,
                         int mode) {
  HATEN2_RETURN_IF_ERROR(CheckMode(x, mode));
  if (u.cols() != x.dim(mode)) {
    return Status::InvalidArgument(
        StrFormat("matrix has %lld cols, expected mode size %lld",
                  (long long)u.cols(), (long long)x.dim(mode)));
  }
  std::vector<int64_t> out_dims = x.dims();
  out_dims[static_cast<size_t>(mode)] = u.rows();
  HATEN2_ASSIGN_OR_RETURN(SparseTensor out,
                          SparseTensor::Create(std::move(out_dims)));
  out.Reserve(x.nnz() * u.rows());
  std::vector<int64_t> idx_buf(static_cast<size_t>(x.order()));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    for (int m = 0; m < x.order(); ++m) idx_buf[static_cast<size_t>(m)] = idx[m];
    const int64_t in = idx[mode];
    for (int64_t f = 0; f < u.rows(); ++f) {
      double scaled = x.value(e) * u(f, in);
      if (scaled == 0.0) continue;
      idx_buf[static_cast<size_t>(mode)] = f;
      out.AppendUnchecked(idx_buf.data(), scaled);
    }
  }
  out.Canonicalize();
  return out;
}

Result<SparseTensor> TtmTransposed(const SparseTensor& x,
                                   const DenseMatrix& b, int mode) {
  HATEN2_RETURN_IF_ERROR(CheckMode(x, mode));
  if (b.rows() != x.dim(mode)) {
    return Status::InvalidArgument(
        StrFormat("matrix has %lld rows, expected mode size %lld",
                  (long long)b.rows(), (long long)x.dim(mode)));
  }
  std::vector<int64_t> out_dims = x.dims();
  out_dims[static_cast<size_t>(mode)] = b.cols();
  HATEN2_ASSIGN_OR_RETURN(SparseTensor out,
                          SparseTensor::Create(std::move(out_dims)));
  out.Reserve(x.nnz() * b.cols());
  std::vector<int64_t> idx_buf(static_cast<size_t>(x.order()));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    for (int m = 0; m < x.order(); ++m) idx_buf[static_cast<size_t>(m)] = idx[m];
    const int64_t in = idx[mode];
    for (int64_t f = 0; f < b.cols(); ++f) {
      double scaled = x.value(e) * b(in, f);
      if (scaled == 0.0) continue;
      idx_buf[static_cast<size_t>(mode)] = f;
      out.AppendUnchecked(idx_buf.data(), scaled);
    }
  }
  out.Canonicalize();
  return out;
}

Result<SparseTensor> NModeVectorHadamard(const SparseTensor& x,
                                         const std::vector<double>& v,
                                         int mode) {
  HATEN2_RETURN_IF_ERROR(CheckMode(x, mode));
  if (static_cast<int64_t>(v.size()) != x.dim(mode)) {
    return Status::InvalidArgument(
        StrFormat("vector length %lld != mode size %lld",
                  (long long)v.size(), (long long)x.dim(mode)));
  }
  HATEN2_ASSIGN_OR_RETURN(SparseTensor out, SparseTensor::Create(x.dims()));
  out.Reserve(x.nnz());
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    double scaled = x.value(e) * v[static_cast<size_t>(idx[mode])];
    if (scaled == 0.0) continue;
    out.AppendUnchecked(idx, scaled);
  }
  out.Canonicalize();
  return out;
}

Result<SparseTensor> NModeMatrixHadamard(const SparseTensor& x,
                                         const DenseMatrix& u, int mode) {
  HATEN2_RETURN_IF_ERROR(CheckMode(x, mode));
  if (u.cols() != x.dim(mode)) {
    return Status::InvalidArgument(
        StrFormat("matrix has %lld cols, expected mode size %lld",
                  (long long)u.cols(), (long long)x.dim(mode)));
  }
  std::vector<int64_t> out_dims = x.dims();
  out_dims.push_back(u.rows());
  HATEN2_ASSIGN_OR_RETURN(SparseTensor out,
                          SparseTensor::Create(std::move(out_dims)));
  out.Reserve(x.nnz() * u.rows());
  std::vector<int64_t> idx_buf(static_cast<size_t>(x.order() + 1));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    for (int m = 0; m < x.order(); ++m) idx_buf[static_cast<size_t>(m)] = idx[m];
    for (int64_t q = 0; q < u.rows(); ++q) {
      double scaled = x.value(e) * u(q, idx[mode]);
      if (scaled == 0.0) continue;
      idx_buf[static_cast<size_t>(x.order())] = q;
      out.AppendUnchecked(idx_buf.data(), scaled);
    }
  }
  out.Canonicalize();
  return out;
}

Result<DenseMatrix> Mttkrp(const SparseTensor& x,
                           const std::vector<const DenseMatrix*>& factors,
                           int mode) {
  HATEN2_RETURN_IF_ERROR(CheckMode(x, mode));
  int64_t rank = 0;
  HATEN2_RETURN_IF_ERROR(CheckFactors(x, factors, &rank));
  DenseMatrix out(x.dim(mode), rank);
  std::vector<double> row(static_cast<size_t>(rank));
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    std::fill(row.begin(), row.end(), x.value(e));
    for (int m = 0; m < x.order(); ++m) {
      if (m == mode) continue;
      const double* fr = factors[static_cast<size_t>(m)]->RowPtr(idx[m]);
      for (int64_t r = 0; r < rank; ++r) row[static_cast<size_t>(r)] *= fr[r];
    }
    double* orow = out.RowPtr(idx[mode]);
    for (int64_t r = 0; r < rank; ++r) orow[r] += row[static_cast<size_t>(r)];
  }
  return out;
}

Result<DenseMatrix> KhatriRao(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument(
        "Khatri-Rao operands must have the same number of columns");
  }
  DenseMatrix out(a.rows() * b.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.rows(); ++j) {
      double* orow = out.RowPtr(i * b.rows() + j);
      const double* ar = a.RowPtr(i);
      const double* br = b.RowPtr(j);
      for (int64_t r = 0; r < a.cols(); ++r) orow[r] = ar[r] * br[r];
    }
  }
  return out;
}

DenseMatrix Kronecker(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t k = 0; k < a.cols(); ++k) {
      double av = a(i, k);
      if (av == 0.0) continue;
      for (int64_t j = 0; j < b.rows(); ++j) {
        for (int64_t l = 0; l < b.cols(); ++l) {
          out(i * b.rows() + j, k * b.cols() + l) = av * b(j, l);
        }
      }
    }
  }
  return out;
}

Result<DenseMatrix> HadamardProduct(const DenseMatrix& a,
                                    const DenseMatrix& b) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument("Hadamard product shape mismatch");
  }
  DenseMatrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows() * a.cols(); ++i) {
    out.data()[static_cast<size_t>(i)] =
        a.data()[static_cast<size_t>(i)] * b.data()[static_cast<size_t>(i)];
  }
  return out;
}

Result<DenseTensor> ReconstructKruskal(
    const std::vector<double>& lambda,
    const std::vector<const DenseMatrix*>& factors) {
  if (factors.empty()) {
    return Status::InvalidArgument("need at least one factor matrix");
  }
  int64_t rank = factors[0]->cols();
  if (static_cast<int64_t>(lambda.size()) != rank) {
    return Status::InvalidArgument("lambda length must equal rank");
  }
  std::vector<int64_t> dims;
  for (const DenseMatrix* f : factors) {
    if (f == nullptr || f->cols() != rank) {
      return Status::InvalidArgument("inconsistent factor matrices");
    }
    dims.push_back(f->rows());
  }
  HATEN2_ASSIGN_OR_RETURN(DenseTensor out, DenseTensor::Create(dims));
  std::vector<int64_t> idx(dims.size(), 0);
  for (int64_t lin = 0; lin < out.size(); ++lin) {
    double sum = 0.0;
    for (int64_t r = 0; r < rank; ++r) {
      double p = lambda[static_cast<size_t>(r)];
      for (size_t m = 0; m < dims.size(); ++m) {
        p *= (*factors[m])(idx[m], r);
      }
      sum += p;
    }
    out.data()[static_cast<size_t>(lin)] = sum;
    for (size_t m = dims.size(); m-- > 0;) {
      if (++idx[m] < dims[m]) break;
      idx[m] = 0;
    }
  }
  return out;
}

Result<DenseTensor> ReconstructTucker(
    const DenseTensor& core, const std::vector<const DenseMatrix*>& factors) {
  if (static_cast<int>(factors.size()) != core.order()) {
    return Status::InvalidArgument(
        "need one factor matrix per core tensor mode");
  }
  std::vector<int64_t> dims;
  for (int m = 0; m < core.order(); ++m) {
    const DenseMatrix* f = factors[static_cast<size_t>(m)];
    if (f == nullptr || f->cols() != core.dim(m)) {
      return Status::InvalidArgument(StrFormat(
          "factor %d column count must equal core mode size %lld", m,
          (long long)core.dim(m)));
    }
    dims.push_back(f->rows());
  }
  HATEN2_ASSIGN_OR_RETURN(DenseTensor out, DenseTensor::Create(dims));
  std::vector<int64_t> idx(dims.size(), 0);
  std::vector<int64_t> cidx(dims.size(), 0);
  for (int64_t lin = 0; lin < out.size(); ++lin) {
    double sum = 0.0;
    std::fill(cidx.begin(), cidx.end(), 0);
    for (int64_t clin = 0; clin < core.size(); ++clin) {
      double p = core.data()[static_cast<size_t>(clin)];
      if (p != 0.0) {
        for (size_t m = 0; m < dims.size(); ++m) {
          p *= (*factors[m])(idx[m], cidx[m]);
        }
        sum += p;
      }
      for (size_t m = dims.size(); m-- > 0;) {
        if (++cidx[m] < core.dim(static_cast<int>(m))) break;
        cidx[m] = 0;
      }
    }
    out.data()[static_cast<size_t>(lin)] = sum;
    for (size_t m = dims.size(); m-- > 0;) {
      if (++idx[m] < dims[m]) break;
      idx[m] = 0;
    }
  }
  return out;
}

Result<double> InnerProductKruskal(
    const SparseTensor& x, const std::vector<double>& lambda,
    const std::vector<const DenseMatrix*>& factors) {
  int64_t rank = 0;
  HATEN2_RETURN_IF_ERROR(CheckFactors(x, factors, &rank));
  if (static_cast<int64_t>(lambda.size()) != rank) {
    return Status::InvalidArgument("lambda length must equal rank");
  }
  double total = 0.0;
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    double per_entry = 0.0;
    for (int64_t r = 0; r < rank; ++r) {
      double p = lambda[static_cast<size_t>(r)];
      for (int m = 0; m < x.order(); ++m) {
        p *= (*factors[static_cast<size_t>(m)])(idx[m], r);
      }
      per_entry += p;
    }
    total += x.value(e) * per_entry;
  }
  return total;
}

Result<double> KruskalNormSquared(
    const std::vector<double>& lambda,
    const std::vector<const DenseMatrix*>& factors) {
  if (factors.empty()) {
    return Status::InvalidArgument("need at least one factor matrix");
  }
  int64_t rank = factors[0]->cols();
  if (static_cast<int64_t>(lambda.size()) != rank) {
    return Status::InvalidArgument("lambda length must equal rank");
  }
  // Gram(r, s) = prod_m (A_m^T A_m)(r, s)
  DenseMatrix gram(rank, rank);
  gram.Fill(1.0);
  for (const DenseMatrix* f : factors) {
    if (f == nullptr || f->cols() != rank) {
      return Status::InvalidArgument("inconsistent factor matrices");
    }
    for (int64_t r = 0; r < rank; ++r) {
      for (int64_t s = 0; s < rank; ++s) {
        double dot = 0.0;
        for (int64_t i = 0; i < f->rows(); ++i) {
          dot += (*f)(i, r) * (*f)(i, s);
        }
        gram(r, s) *= dot;
      }
    }
  }
  double total = 0.0;
  for (int64_t r = 0; r < rank; ++r) {
    for (int64_t s = 0; s < rank; ++s) {
      total += lambda[static_cast<size_t>(r)] *
               lambda[static_cast<size_t>(s)] * gram(r, s);
    }
  }
  return total;
}

Result<SparseTensor> SparseUnfold(const SparseTensor& x, int mode) {
  HATEN2_RETURN_IF_ERROR(CheckMode(x, mode));
  if (x.order() < 2) {
    return Status::InvalidArgument("unfold requires order >= 2");
  }
  std::vector<int64_t> weights(static_cast<size_t>(x.order()), 0);
  int64_t cols = 1;
  for (int m = 0; m < x.order(); ++m) {
    if (m == mode) continue;
    weights[static_cast<size_t>(m)] = cols;
    cols *= x.dim(m);
  }
  HATEN2_ASSIGN_OR_RETURN(SparseTensor out,
                          SparseTensor::Create({x.dim(mode), cols}));
  out.Reserve(x.nnz());
  for (int64_t e = 0; e < x.nnz(); ++e) {
    const int64_t* idx = x.IndexPtr(e);
    int64_t col = 0;
    for (int m = 0; m < x.order(); ++m) {
      if (m != mode) col += idx[m] * weights[static_cast<size_t>(m)];
    }
    int64_t coord[2] = {idx[mode], col};
    out.AppendUnchecked(coord, x.value(e));
  }
  out.Canonicalize();
  return out;
}

}  // namespace haten2
