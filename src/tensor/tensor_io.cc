#include "tensor/tensor_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace haten2 {

namespace {

std::string HeaderLine(const SparseTensor& tensor) {
  std::string dims;
  for (int m = 0; m < tensor.order(); ++m) {
    if (m > 0) dims += "x";
    dims += StrFormat("%lld", (long long)tensor.dim(m));
  }
  return StrFormat("# haten2 tensor order=%d dims=%s", tensor.order(),
                   dims.c_str());
}

// Parses "dims=AxBxC" from a header line; returns empty on failure.
std::vector<int64_t> ParseHeaderDims(const std::string& line) {
  std::vector<int64_t> dims;
  size_t pos = line.find("dims=");
  if (pos == std::string::npos) return dims;
  std::string spec = line.substr(pos + 5);
  for (const std::string& part : Split(Trim(spec), 'x')) {
    Result<int64_t> v = ParseInt64(part);
    if (!v.ok() || *v <= 0) return {};
    dims.push_back(*v);
  }
  return dims;
}

Result<SparseTensor> ParseFromStream(std::istream& in,
                                     const TensorTextOptions& options) {
  std::vector<int64_t> dims;
  bool have_header = false;
  // Records retained when inferring dims (header absent).
  std::vector<std::vector<int64_t>> pending_indices;
  std::vector<double> pending_values;
  SparseTensor tensor;
  std::string line;
  int64_t line_no = 0;
  int order = -1;
  std::vector<int64_t> max_index;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      if (!have_header && trimmed.find("haten2 tensor") != std::string::npos) {
        dims = ParseHeaderDims(std::string(trimmed));
        if (!dims.empty()) {
          HATEN2_ASSIGN_OR_RETURN(tensor, SparseTensor::Create(dims));
          order = tensor.order();
          have_header = true;
        }
      }
      continue;
    }
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("line %lld: need at least one index and a value",
                    (long long)line_no));
    }
    int rec_order = static_cast<int>(fields.size()) - 1;
    if (order == -1) {
      order = rec_order;
      max_index.assign(static_cast<size_t>(order), -1);
    } else if (rec_order != order) {
      return Status::InvalidArgument(
          StrFormat("line %lld: record arity %d != tensor order %d",
                    (long long)line_no, rec_order, order));
    }
    std::vector<int64_t> idx(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      Result<int64_t> v = ParseInt64(fields[static_cast<size_t>(m)]);
      if (!v.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %lld: bad index '%s'", (long long)line_no,
                      fields[static_cast<size_t>(m)].c_str()));
      }
      int64_t shifted = *v - options.index_base;
      if (shifted < 0) {
        return Status::InvalidArgument(StrFormat(
            "line %lld: index below the %d-based minimum",
            (long long)line_no, options.index_base));
      }
      idx[static_cast<size_t>(m)] = shifted;
    }
    Result<double> val = ParseDouble(fields.back());
    if (!val.ok()) {
      return Status::InvalidArgument(StrFormat(
          "line %lld: bad value '%s'", (long long)line_no,
          fields.back().c_str()));
    }
    if (have_header) {
      HATEN2_RETURN_IF_ERROR(tensor.Append(idx.data(), order, *val));
    } else {
      for (int m = 0; m < order; ++m) {
        max_index[static_cast<size_t>(m)] =
            std::max(max_index[static_cast<size_t>(m)],
                     idx[static_cast<size_t>(m)]);
      }
      pending_indices.push_back(std::move(idx));
      pending_values.push_back(*val);
    }
  }

  if (!have_header) {
    if (order == -1) {
      return Status::InvalidArgument(
          "tensor file has no header and no records");
    }
    std::vector<int64_t> inferred(static_cast<size_t>(order));
    for (int m = 0; m < order; ++m) {
      inferred[static_cast<size_t>(m)] = max_index[static_cast<size_t>(m)] + 1;
    }
    HATEN2_ASSIGN_OR_RETURN(tensor, SparseTensor::Create(inferred));
    tensor.Reserve(static_cast<int64_t>(pending_values.size()));
    for (size_t e = 0; e < pending_values.size(); ++e) {
      tensor.AppendUnchecked(pending_indices[e].data(), pending_values[e]);
    }
  }
  tensor.Canonicalize();
  return tensor;
}

}  // namespace

Status WriteTensorText(const SparseTensor& tensor, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << FormatTensorText(tensor);
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<SparseTensor> ReadTensorText(const std::string& path) {
  return ReadTensorText(path, TensorTextOptions{});
}

Result<SparseTensor> ReadTensorText(const std::string& path,
                                    const TensorTextOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return ParseFromStream(in, options);
}

Result<SparseTensor> ParseTensorText(const std::string& text) {
  return ParseTensorText(text, TensorTextOptions{});
}

Result<SparseTensor> ParseTensorText(const std::string& text,
                                     const TensorTextOptions& options) {
  std::istringstream in(text);
  return ParseFromStream(in, options);
}

std::string FormatTensorText(const SparseTensor& tensor) {
  std::string out = HeaderLine(tensor);
  out += "\n";
  for (int64_t e = 0; e < tensor.nnz(); ++e) {
    for (int m = 0; m < tensor.order(); ++m) {
      out += StrFormat("%lld ", (long long)tensor.index(e, m));
    }
    out += StrFormat("%.17g\n", tensor.value(e));
  }
  return out;
}

}  // namespace haten2

namespace haten2 {

Status WriteMatrixText(const DenseMatrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << StrFormat("# haten2 matrix rows=%lld cols=%lld\n",
                   (long long)matrix.rows(), (long long)matrix.cols());
  for (int64_t i = 0; i < matrix.rows(); ++i) {
    for (int64_t j = 0; j < matrix.cols(); ++j) {
      if (j > 0) out << ' ';
      out << StrFormat("%.17g", matrix(i, j));
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<DenseMatrix> ReadMatrixText(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::string line;
  std::vector<std::vector<double>> rows;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<double> row;
    for (const std::string& field : SplitWhitespace(trimmed)) {
      Result<double> v = ParseDouble(field);
      if (!v.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %lld: bad value '%s'", (long long)line_no,
                      field.c_str()));
      }
      row.push_back(*v);
    }
    if (!rows.empty() && row.size() != rows[0].size()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: ragged row", (long long)line_no));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("matrix file has no data rows");
  }
  return DenseMatrix::FromRows(rows);
}

}  // namespace haten2
