#include "tensor/sparse_tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace haten2 {

Result<SparseTensor> SparseTensor::Create(std::vector<int64_t> dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("tensor order must be >= 1");
  }
  for (int64_t d : dims) {
    if (d <= 0) {
      return Status::InvalidArgument(
          StrFormat("every mode size must be positive, got %lld",
                    (long long)d));
    }
  }
  return SparseTensor(std::move(dims));
}

double SparseTensor::Density() const {
  int64_t cells = NumCells();
  if (cells == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(cells);
}

int64_t SparseTensor::NumCells() const {
  int64_t cells = 1;
  for (int64_t d : dims_) {
    if (d != 0 && cells > std::numeric_limits<int64_t>::max() / d) {
      return std::numeric_limits<int64_t>::max();
    }
    cells *= d;
  }
  return cells;
}

void SparseTensor::Reserve(int64_t n) {
  indices_.reserve(static_cast<size_t>(n) * dims_.size());
  values_.reserve(static_cast<size_t>(n));
}

Status SparseTensor::Append(const int64_t* idx, int idx_len, double value) {
  if (idx_len != order()) {
    return Status::InvalidArgument(
        StrFormat("expected %d indices, got %d", order(), idx_len));
  }
  for (int m = 0; m < order(); ++m) {
    if (idx[m] < 0 || idx[m] >= dims_[static_cast<size_t>(m)]) {
      return Status::OutOfRange(
          StrFormat("index %lld out of range [0, %lld) in mode %d",
                    (long long)idx[m],
                    (long long)dims_[static_cast<size_t>(m)], m));
    }
  }
  AppendUnchecked(idx, value);
  return Status::OK();
}

Status SparseTensor::Append(std::initializer_list<int64_t> idx, double value) {
  return Append(idx.begin(), static_cast<int>(idx.size()), value);
}

void SparseTensor::AppendUnchecked(const int64_t* idx, double value) {
  indices_.insert(indices_.end(), idx, idx + dims_.size());
  values_.push_back(value);
  canonical_ = false;
}

void SparseTensor::Canonicalize() {
  const size_t n = values_.size();
  const size_t ord = dims_.size();
  if (n == 0) {
    canonical_ = true;
    return;
  }
  std::vector<int64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const int64_t* idx = indices_.data();
  std::sort(perm.begin(), perm.end(), [idx, ord](int64_t a, int64_t b) {
    const int64_t* pa = idx + static_cast<size_t>(a) * ord;
    const int64_t* pb = idx + static_cast<size_t>(b) * ord;
    return std::lexicographical_compare(pa, pa + ord, pb, pb + ord);
  });

  std::vector<int64_t> new_indices;
  std::vector<double> new_values;
  new_indices.reserve(indices_.size());
  new_values.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    const int64_t* src =
        indices_.data() + static_cast<size_t>(perm[p]) * ord;
    double v = values_[static_cast<size_t>(perm[p])];
    if (!new_values.empty()) {
      const int64_t* last = new_indices.data() + new_indices.size() - ord;
      if (std::equal(src, src + ord, last)) {
        new_values.back() += v;
        continue;
      }
    }
    new_indices.insert(new_indices.end(), src, src + ord);
    new_values.push_back(v);
  }
  // Drop exact zeros produced by cancellation or explicit zero appends.
  std::vector<int64_t> final_indices;
  std::vector<double> final_values;
  final_indices.reserve(new_indices.size());
  final_values.reserve(new_values.size());
  for (size_t e = 0; e < new_values.size(); ++e) {
    if (new_values[e] == 0.0) continue;
    const int64_t* src = new_indices.data() + e * ord;
    final_indices.insert(final_indices.end(), src, src + ord);
    final_values.push_back(new_values[e]);
  }
  indices_ = std::move(final_indices);
  values_ = std::move(final_values);
  canonical_ = true;
}

SparseTensor SparseTensor::Binarized() const {
  SparseTensor out(*this);
  std::fill(out.values_.begin(), out.values_.end(), 1.0);
  return out;
}

double SparseTensor::Get(const std::vector<int64_t>& idx) const {
  HATEN2_CHECK(canonical_) << "Get requires a canonical tensor";
  HATEN2_CHECK(static_cast<int>(idx.size()) == order())
      << "Get arity mismatch";
  const size_t ord = dims_.size();
  int64_t lo = 0;
  int64_t hi = nnz();
  const int64_t* base = indices_.data();
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    const int64_t* p = base + static_cast<size_t>(mid) * ord;
    if (std::lexicographical_compare(p, p + ord, idx.data(),
                                     idx.data() + ord)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < nnz()) {
    const int64_t* p = base + static_cast<size_t>(lo) * ord;
    if (std::equal(p, p + ord, idx.data())) {
      return values_[static_cast<size_t>(lo)];
    }
  }
  return 0.0;
}

double SparseTensor::SumSquares() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return s;
}

double SparseTensor::FrobeniusNorm() const { return std::sqrt(SumSquares()); }

double SparseTensor::Sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

Result<SparseTensor> SparseTensor::CollapseMode(int mode) const {
  if (order() < 2) {
    return Status::FailedPrecondition(
        "CollapseMode requires a tensor of order >= 2");
  }
  if (mode < 0 || mode >= order()) {
    return Status::InvalidArgument(
        StrFormat("mode %d out of range for order %d", mode, order()));
  }
  std::vector<int64_t> out_dims;
  out_dims.reserve(dims_.size() - 1);
  for (int m = 0; m < order(); ++m) {
    if (m != mode) out_dims.push_back(dims_[static_cast<size_t>(m)]);
  }
  SparseTensor out(std::move(out_dims));
  out.Reserve(nnz());
  std::vector<int64_t> proj(static_cast<size_t>(order() - 1));
  for (int64_t e = 0; e < nnz(); ++e) {
    const int64_t* src = IndexPtr(e);
    size_t w = 0;
    for (int m = 0; m < order(); ++m) {
      if (m != mode) proj[w++] = src[m];
    }
    out.AppendUnchecked(proj.data(), value(e));
  }
  out.Canonicalize();
  return out;
}

Status SparseTensor::Validate() const {
  const size_t ord = dims_.size();
  if (ord == 0 && !values_.empty()) {
    return Status::Internal("0-way tensor holds entries");
  }
  if (indices_.size() != values_.size() * ord) {
    return Status::Internal("index/value array length mismatch");
  }
  for (int64_t e = 0; e < nnz(); ++e) {
    for (int m = 0; m < order(); ++m) {
      int64_t v = index(e, m);
      if (v < 0 || v >= dims_[static_cast<size_t>(m)]) {
        return Status::Internal(StrFormat(
            "entry %lld mode %d index %lld out of range", (long long)e, m,
            (long long)v));
      }
    }
  }
  return Status::OK();
}

uint64_t SparseTensor::ApproxBytes() const {
  return static_cast<uint64_t>(indices_.size()) * sizeof(int64_t) +
         static_cast<uint64_t>(values_.size()) * sizeof(double);
}

std::string SparseTensor::DebugString() const {
  std::string dims_str;
  for (size_t m = 0; m < dims_.size(); ++m) {
    if (m > 0) dims_str += "x";
    dims_str += StrFormat("%lld", (long long)dims_[m]);
  }
  return StrFormat("%d-way %s, nnz=%lld", order(), dims_str.c_str(),
                   (long long)nnz());
}

bool SparseTensor::IdenticalTo(const SparseTensor& other) const {
  return dims_ == other.dims_ && indices_ == other.indices_ &&
         values_ == other.values_;
}

}  // namespace haten2
