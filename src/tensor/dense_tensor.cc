#include "tensor/dense_tensor.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace haten2 {

DenseTensor::DenseTensor(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  strides_.resize(dims_.size());
  int64_t stride = 1;
  for (size_t m = dims_.size(); m-- > 0;) {
    strides_[m] = stride;
    stride *= dims_[m];
  }
  data_.assign(static_cast<size_t>(stride), 0.0);
}

Result<DenseTensor> DenseTensor::Create(std::vector<int64_t> dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("tensor order must be >= 1");
  }
  int64_t cells = 1;
  for (int64_t d : dims) {
    if (d <= 0) {
      return Status::InvalidArgument("every mode size must be positive");
    }
    cells *= d;
    if (cells > (int64_t{1} << 31)) {
      return Status::ResourceExhausted(
          "dense tensor too large; use SparseTensor");
    }
  }
  return DenseTensor(std::move(dims));
}

int64_t DenseTensor::Offset(const std::vector<int64_t>& idx) const {
  HATEN2_CHECK(idx.size() == dims_.size()) << "offset arity mismatch";
  return Offset(idx.data());
}

int64_t DenseTensor::Offset(const int64_t* idx) const {
  int64_t off = 0;
  for (size_t m = 0; m < dims_.size(); ++m) off += idx[m] * strides_[m];
  return off;
}

double DenseTensor::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseTensor::MaxAbsDiff(const DenseTensor& other) const {
  HATEN2_CHECK(dims_ == other.dims_) << "shape mismatch in MaxAbsDiff";
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

DenseMatrix DenseTensor::Unfold(int mode) const {
  HATEN2_CHECK(mode >= 0 && mode < order()) << "unfold mode out of range";
  const int64_t rows = dims_[static_cast<size_t>(mode)];
  const int64_t cols = size() / rows;
  DenseMatrix mat(rows, cols);
  // Kolda convention: column index j = sum_{m != mode} i_m * W_m where
  // W_m = prod_{m' < m, m' != mode} I_{m'}; i.e. the first non-unfolded mode
  // varies fastest... actually slowest: W grows with m, so later modes have
  // larger weights and the first non-unfolded mode varies fastest in j.
  std::vector<int64_t> weights(dims_.size(), 0);
  {
    int64_t w = 1;
    for (size_t m = 0; m < dims_.size(); ++m) {
      if (static_cast<int>(m) == mode) continue;
      weights[m] = w;
      w *= dims_[m];
    }
    // Reverse accumulation: Kolda's j = 1 + sum (i_k - 1) J_k with
    // J_k = prod_{m < k, m != n} I_m means earlier modes have weight 1.
    // The loop above already assigns weight 1 to the first non-mode index
    // and increasing weights afterwards, matching the convention.
  }
  std::vector<int64_t> idx(dims_.size(), 0);
  for (size_t lin = 0; lin < data_.size(); ++lin) {
    int64_t col = 0;
    for (size_t m = 0; m < dims_.size(); ++m) {
      if (static_cast<int>(m) != mode) col += idx[m] * weights[m];
    }
    mat(idx[static_cast<size_t>(mode)], col) = data_[lin];
    // Advance the multi-index (last mode fastest, matching row-major data_).
    for (size_t m = dims_.size(); m-- > 0;) {
      if (++idx[m] < dims_[m]) break;
      idx[m] = 0;
    }
  }
  return mat;
}

Result<DenseTensor> DenseTensor::Fold(const DenseMatrix& mat, int mode,
                                      std::vector<int64_t> dims) {
  HATEN2_ASSIGN_OR_RETURN(DenseTensor out, DenseTensor::Create(dims));
  if (mode < 0 || mode >= out.order()) {
    return Status::InvalidArgument("fold mode out of range");
  }
  if (mat.rows() != out.dim(mode) || mat.cols() != out.size() / out.dim(mode)) {
    return Status::InvalidArgument(StrFormat(
        "matrix shape %lldx%lld does not fold into the requested tensor",
        (long long)mat.rows(), (long long)mat.cols()));
  }
  std::vector<int64_t> weights(out.dims_.size(), 0);
  {
    int64_t w = 1;
    for (size_t m = 0; m < out.dims_.size(); ++m) {
      if (static_cast<int>(m) == mode) continue;
      weights[m] = w;
      w *= out.dims_[m];
    }
  }
  std::vector<int64_t> idx(out.dims_.size(), 0);
  for (size_t lin = 0; lin < out.data_.size(); ++lin) {
    int64_t col = 0;
    for (size_t m = 0; m < out.dims_.size(); ++m) {
      if (static_cast<int>(m) != mode) col += idx[m] * weights[m];
    }
    out.data_[lin] = mat(idx[static_cast<size_t>(mode)], col);
    for (size_t m = out.dims_.size(); m-- > 0;) {
      if (++idx[m] < out.dims_[m]) break;
      idx[m] = 0;
    }
  }
  return out;
}

DenseTensor DenseTensor::FromSparse(const SparseTensor& sparse) {
  Result<DenseTensor> r = DenseTensor::Create(sparse.dims());
  HATEN2_CHECK(r.ok()) << "FromSparse: " << r.status().ToString();
  DenseTensor out = std::move(r).value();
  for (int64_t e = 0; e < sparse.nnz(); ++e) {
    out.data_[static_cast<size_t>(out.Offset(sparse.IndexPtr(e)))] +=
        sparse.value(e);
  }
  return out;
}

SparseTensor DenseTensor::ToSparse() const {
  Result<SparseTensor> r = SparseTensor::Create(dims_);
  HATEN2_CHECK(r.ok()) << "ToSparse: " << r.status().ToString();
  SparseTensor out = std::move(r).value();
  std::vector<int64_t> idx(dims_.size(), 0);
  for (size_t lin = 0; lin < data_.size(); ++lin) {
    if (data_[lin] != 0.0) {
      out.AppendUnchecked(idx.data(), data_[lin]);
    }
    for (size_t m = dims_.size(); m-- > 0;) {
      if (++idx[m] < dims_[m]) break;
      idx[m] = 0;
    }
  }
  out.Canonicalize();
  return out;
}

}  // namespace haten2
