#ifndef HATEN2_TENSOR_TENSOR_OPS_H_
#define HATEN2_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/dense_matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

// Direct, single-machine reference implementations of the tensor algebra used
// by the paper (Table I symbols). These are the ground truth the MapReduce
// implementations in src/core/ are tested against, and the computational
// substrate of the Tensor-Toolbox baseline in src/baseline/.

/// n-mode vector product X x̄_n v: contracts mode `mode` with v (length
/// dim(mode)), producing an order-(N-1) sparse tensor.
Result<SparseTensor> Ttv(const SparseTensor& x, const std::vector<double>& v,
                         int mode);

/// n-mode matrix product X ×_n U with U ∈ R^{F × I_n}: replaces mode `mode`
/// by size F. The result is built as a sparse tensor; for a fully dense U it
/// holds ≈ nnz(X)·F entries before duplicate coordinates merge (Lemma 3).
Result<SparseTensor> Ttm(const SparseTensor& x, const DenseMatrix& u,
                         int mode);

/// Convenience: X ×_n Bᵀ where B ∈ R^{I_n × F} (the factor-matrix layout used
/// by the ALS algorithms; equals Ttm(x, B.Transposed(), mode)).
Result<SparseTensor> TtmTransposed(const SparseTensor& x,
                                   const DenseMatrix& b, int mode);

/// n-mode vector Hadamard product X ∗̄_n v (Definition 1): scales every entry
/// by v[i_n]; same shape, zeros dropped.
Result<SparseTensor> NModeVectorHadamard(const SparseTensor& x,
                                         const std::vector<double>& v,
                                         int mode);

/// n-mode matrix Hadamard product X ∗_n U (Definition 5) with U ∈ R^{Q×I_n}:
/// result has one extra trailing mode of size Q with
/// (X ∗_n U)(i_1..i_N, q) = X(i_1..i_N) · U(q, i_n).
Result<SparseTensor> NModeMatrixHadamard(const SparseTensor& x,
                                         const DenseMatrix& u, int mode);

/// Matricized-tensor-times-Khatri-Rao-product: returns
/// M = X_(mode) · (⊙_{m != mode, descending} factors[m]) ∈ R^{I_mode × R}.
/// All factor matrices must have R columns and rows matching dims.
Result<DenseMatrix> Mttkrp(const SparseTensor& x,
                           const std::vector<const DenseMatrix*>& factors,
                           int mode);

/// Khatri-Rao product A ⊙ B (column-wise Kronecker): rows(A)·rows(B) × R,
/// with (A ⊙ B)(i·rows(B)+j, r) = A(i,r)·B(j,r) — B's rows vary fastest,
/// matching the Kolda unfolding convention used by DenseTensor::Unfold.
Result<DenseMatrix> KhatriRao(const DenseMatrix& a, const DenseMatrix& b);

/// Kronecker product A ⊗ B.
DenseMatrix Kronecker(const DenseMatrix& a, const DenseMatrix& b);

/// Element-wise (Hadamard) product A * B; shapes must match.
Result<DenseMatrix> HadamardProduct(const DenseMatrix& a,
                                    const DenseMatrix& b);

/// Dense reconstruction of a Kruskal (PARAFAC) model:
/// sum_r lambda[r] · a_r ∘ b_r ∘ ... (any order >= 1). Test-scale only.
Result<DenseTensor> ReconstructKruskal(
    const std::vector<double>& lambda,
    const std::vector<const DenseMatrix*>& factors);

/// Dense reconstruction of a Tucker model G ×_1 A1 ×_2 A2 ... with
/// factors[m] ∈ R^{I_m × J_m}. Test-scale only.
Result<DenseTensor> ReconstructTucker(
    const DenseTensor& core, const std::vector<const DenseMatrix*>& factors);

/// Inner product <X, [[lambda; factors]]> computed in O(nnz · R), used for
/// the PARAFAC fit without materializing the reconstruction.
Result<double> InnerProductKruskal(
    const SparseTensor& x, const std::vector<double>& lambda,
    const std::vector<const DenseMatrix*>& factors);

/// Squared norm of a Kruskal model: sum_{r,s} λ_r λ_s ∏_m (A_mᵀA_m)_{rs}.
Result<double> KruskalNormSquared(
    const std::vector<double>& lambda,
    const std::vector<const DenseMatrix*>& factors);

/// Mode-n matricization of a sparse tensor as an order-2 sparse tensor
/// (I_mode × prod of other dims), Kolda column ordering.
Result<SparseTensor> SparseUnfold(const SparseTensor& x, int mode);

}  // namespace haten2

#endif  // HATEN2_TENSOR_TENSOR_OPS_H_
