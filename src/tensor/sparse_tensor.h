#ifndef HATEN2_TENSOR_SPARSE_TENSOR_H_
#define HATEN2_TENSOR_SPARSE_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace haten2 {

/// \brief N-way sparse tensor in coordinate (COO) format.
///
/// Storage is structure-of-arrays: a flat index array of nnz*order entries
/// (entry e occupies indices_[e*order .. e*order+order-1]) plus a value
/// array. This is the on-"disk" representation HaTen2 assumes for input
/// tensors: one (i_1, ..., i_N, value) record per nonzero.
///
/// Invariants after Canonicalize(): entries are sorted lexicographically by
/// index, duplicate coordinates are summed, and exact zeros are dropped.
/// Append does not maintain the invariant; builders call Canonicalize() once.
class SparseTensor {
 public:
  /// Creates an empty 0-way tensor; usable only as a move-assignment target.
  SparseTensor() = default;

  /// Creates an empty tensor with the given mode sizes. Every dim must be
  /// positive and the order must be >= 1.
  static Result<SparseTensor> Create(std::vector<int64_t> dims);

  /// Convenience for 3-way tensors.
  static Result<SparseTensor> Create3(int64_t i, int64_t j, int64_t k) {
    return Create({i, j, k});
  }

  SparseTensor(const SparseTensor&) = default;
  SparseTensor& operator=(const SparseTensor&) = default;
  SparseTensor(SparseTensor&&) = default;
  SparseTensor& operator=(SparseTensor&&) = default;

  int order() const { return static_cast<int>(dims_.size()); }
  const std::vector<int64_t>& dims() const { return dims_; }
  int64_t dim(int mode) const { return dims_[static_cast<size_t>(mode)]; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Fraction of cells that are nonzero.
  double Density() const;

  /// Total number of cells (product of dims), saturating at int64 max.
  int64_t NumCells() const;

  void Reserve(int64_t n);

  /// Appends a nonzero. Bounds-checked; returns InvalidArgument on a
  /// coordinate outside dims() or wrong arity.
  Status Append(const int64_t* idx, int idx_len, double value);
  Status Append(std::initializer_list<int64_t> idx, double value);

  /// Unchecked append for hot paths that already validated coordinates.
  void AppendUnchecked(const int64_t* idx, double value);

  /// Index of entry e along `mode`.
  int64_t index(int64_t e, int mode) const {
    return indices_[static_cast<size_t>(e) * dims_.size() +
                    static_cast<size_t>(mode)];
  }
  double value(int64_t e) const { return values_[static_cast<size_t>(e)]; }
  void set_value(int64_t e, double v) { values_[static_cast<size_t>(e)] = v; }

  /// Pointer to entry e's coordinate tuple (order() consecutive int64s).
  const int64_t* IndexPtr(int64_t e) const {
    return &indices_[static_cast<size_t>(e) * dims_.size()];
  }

  /// Sorts entries lexicographically, merges duplicates (summing values) and
  /// drops entries whose merged value is exactly zero.
  void Canonicalize();

  bool canonical() const { return canonical_; }

  /// Returns bin(X): same pattern, every stored value replaced by 1.0.
  SparseTensor Binarized() const;

  /// Value at a coordinate (0 when absent). Requires canonical();
  /// binary-searches the sorted entries.
  double Get(const std::vector<int64_t>& idx) const;

  /// Sum of squared values, and its square root.
  double SumSquares() const;
  double FrobeniusNorm() const;

  /// Sum of all values.
  double Sum() const;

  /// Returns a tensor with `mode` removed and entries' coordinates projected;
  /// duplicate projected coordinates are summed (the paper's Collapse).
  /// Requires order() >= 2.
  Result<SparseTensor> CollapseMode(int mode) const;

  /// Checks internal consistency (entry bounds, array lengths).
  Status Validate() const;

  /// Approximate in-memory footprint in bytes.
  uint64_t ApproxBytes() const;

  /// Short human-readable description, e.g. "3-way 100x100x100, nnz=1000".
  std::string DebugString() const;

  /// True when dims, entries and values are all exactly equal. Both sides
  /// should be canonical for a meaningful comparison.
  bool IdenticalTo(const SparseTensor& other) const;

 private:
  explicit SparseTensor(std::vector<int64_t> dims)
      : dims_(std::move(dims)) {}

  std::vector<int64_t> dims_;
  std::vector<int64_t> indices_;  // nnz * order, row-major per entry
  std::vector<double> values_;
  bool canonical_ = true;  // empty tensor is trivially canonical
};

}  // namespace haten2

#endif  // HATEN2_TENSOR_SPARSE_TENSOR_H_
