#include "tensor/model_io.h"

#include <filesystem>

#include "tensor/dense_tensor.h"
#include "tensor/tensor_io.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

std::string ModePath(const std::string& prefix, int mode) {
  return StrFormat("%s.mode%d.txt", prefix.c_str(), mode);
}

Status SaveFactors(const std::vector<DenseMatrix>& factors,
                   const std::string& prefix) {
  for (size_t m = 0; m < factors.size(); ++m) {
    HATEN2_RETURN_IF_ERROR(
        WriteMatrixText(factors[m], ModePath(prefix, static_cast<int>(m))));
  }
  return Status::OK();
}

Result<std::vector<DenseMatrix>> LoadFactors(const std::string& prefix,
                                             int order,
                                             bool require_same_rank) {
  if (order < 1) {
    return Status::InvalidArgument("order must be >= 1");
  }
  std::vector<DenseMatrix> factors;
  factors.reserve(static_cast<size_t>(order));
  int64_t rank = -1;
  for (int m = 0; m < order; ++m) {
    HATEN2_ASSIGN_OR_RETURN(DenseMatrix f, ReadMatrixText(ModePath(prefix, m)));
    if (rank == -1) {
      rank = f.cols();
    } else if (require_same_rank && f.cols() != rank) {
      // Kruskal factors share one rank; Tucker factors may have distinct
      // per-mode core sizes.
      return Status::InvalidArgument(StrFormat(
          "factor %d has %lld columns, expected %lld", m,
          (long long)f.cols(), (long long)rank));
    }
    factors.push_back(std::move(f));
  }
  return factors;
}

}  // namespace

Status SaveKruskalModel(const KruskalModel& model,
                        const std::string& prefix) {
  if (model.factors.empty()) {
    return Status::InvalidArgument("model has no factor matrices");
  }
  HATEN2_RETURN_IF_ERROR(SaveFactors(model.factors, prefix));
  DenseMatrix lambda(static_cast<int64_t>(model.lambda.size()), 1);
  for (size_t r = 0; r < model.lambda.size(); ++r) {
    lambda(static_cast<int64_t>(r), 0) = model.lambda[r];
  }
  return WriteMatrixText(lambda, prefix + ".lambda.txt");
}

Result<KruskalModel> LoadKruskalModel(const std::string& prefix, int order) {
  KruskalModel model;
  HATEN2_ASSIGN_OR_RETURN(
      model.factors, LoadFactors(prefix, order, /*require_same_rank=*/true));
  HATEN2_ASSIGN_OR_RETURN(DenseMatrix lambda,
                          ReadMatrixText(prefix + ".lambda.txt"));
  if (lambda.cols() != 1 || lambda.rows() != model.factors[0].cols()) {
    return Status::InvalidArgument(
        "lambda file shape does not match the factors' rank");
  }
  model.lambda.resize(static_cast<size_t>(lambda.rows()));
  for (int64_t r = 0; r < lambda.rows(); ++r) {
    model.lambda[static_cast<size_t>(r)] = lambda(r, 0);
  }
  return model;
}

Status SaveTuckerModel(const TuckerModel& model, const std::string& prefix) {
  if (model.factors.empty()) {
    return Status::InvalidArgument("model has no factor matrices");
  }
  if (static_cast<int>(model.factors.size()) != model.core.order()) {
    return Status::InvalidArgument(
        "factor count does not match the core tensor order");
  }
  HATEN2_RETURN_IF_ERROR(SaveFactors(model.factors, prefix));
  // The sparse text format preserves dims via its header, so even an
  // all-zero core round-trips.
  return WriteTensorText(model.core.ToSparse(), prefix + ".core.txt");
}

Result<int> ProbeModelOrder(const std::string& prefix) {
  std::error_code ec;
  int order = 0;
  while (std::filesystem::exists(ModePath(prefix, order), ec)) {
    ++order;
  }
  if (order == 0) {
    return Status::NotFound(
        StrFormat("no mode files found for model prefix '%s' (expected "
                  "%s.mode0.txt at least)",
                  prefix.c_str(), prefix.c_str()));
  }
  // A file beyond the first gap means the sequence is non-contiguous —
  // most likely a partially deleted or mixed-up checkpoint; loading
  // `order` modes would silently drop the trailing ones.
  constexpr int kGapProbe = 8;
  for (int k = order + 1; k <= order + kGapProbe; ++k) {
    if (std::filesystem::exists(ModePath(prefix, k), ec)) {
      return Status::InvalidArgument(StrFormat(
          "mode files for prefix '%s' are non-contiguous: %s exists but "
          "%s is missing",
          prefix.c_str(), ModePath(prefix, k).c_str(),
          ModePath(prefix, order).c_str()));
    }
  }
  return order;
}

Result<KruskalModel> LoadKruskalModelAutoOrder(const std::string& prefix) {
  HATEN2_ASSIGN_OR_RETURN(int order, ProbeModelOrder(prefix));
  return LoadKruskalModel(prefix, order);
}

Result<TuckerModel> LoadTuckerModelAutoOrder(const std::string& prefix) {
  HATEN2_ASSIGN_OR_RETURN(int order, ProbeModelOrder(prefix));
  return LoadTuckerModel(prefix, order);
}

Result<TuckerModel> LoadTuckerModel(const std::string& prefix, int order) {
  TuckerModel model;
  HATEN2_ASSIGN_OR_RETURN(
      model.factors, LoadFactors(prefix, order, /*require_same_rank=*/false));
  HATEN2_ASSIGN_OR_RETURN(SparseTensor core_sparse,
                          ReadTensorText(prefix + ".core.txt"));
  if (core_sparse.order() != order) {
    return Status::InvalidArgument("core tensor order mismatch");
  }
  for (int m = 0; m < order; ++m) {
    if (core_sparse.dim(m) != model.factors[static_cast<size_t>(m)].cols()) {
      return Status::InvalidArgument(StrFormat(
          "core mode %d size %lld does not match factor columns %lld", m,
          (long long)core_sparse.dim(m),
          (long long)model.factors[static_cast<size_t>(m)].cols()));
    }
  }
  model.core = DenseTensor::FromSparse(core_sparse);
  return model;
}

}  // namespace haten2
