#ifndef HATEN2_TENSOR_MODEL_IO_H_
#define HATEN2_TENSOR_MODEL_IO_H_

#include <string>

#include "tensor/models.h"
#include "util/result.h"

namespace haten2 {

/// Serialization of fitted decomposition models, so long runs can be
/// checkpointed and factors handed to downstream analyses.
///
/// A Kruskal model with N modes is saved as
///   <prefix>.lambda.txt          column vector of weights
///   <prefix>.mode<k>.txt         factor matrix of mode k (k = 0..N-1)
/// and a Tucker model as
///   <prefix>.core.txt            core tensor (sparse text format)
///   <prefix>.mode<k>.txt         factor matrices
/// using the matrix/tensor text formats of tensor_io.h.

Status SaveKruskalModel(const KruskalModel& model, const std::string& prefix);
Result<KruskalModel> LoadKruskalModel(const std::string& prefix, int order);

Status SaveTuckerModel(const TuckerModel& model, const std::string& prefix);
Result<TuckerModel> LoadTuckerModel(const std::string& prefix, int order);

/// Infers a checkpoint's mode count by probing `<prefix>.mode<k>.txt` for
/// k = 0, 1, ... until the first missing file. Returns NotFound when no
/// mode file exists at all, and InvalidArgument when the mode files are
/// non-contiguous (e.g. mode0 and mode2 present but mode1 missing), naming
/// the gap.
Result<int> ProbeModelOrder(const std::string& prefix);

/// Like LoadKruskalModel / LoadTuckerModel, with the order inferred via
/// ProbeModelOrder — callers (the serving registry, CLIs) need not
/// hard-code the tensor order of a checkpoint on disk.
Result<KruskalModel> LoadKruskalModelAutoOrder(const std::string& prefix);
Result<TuckerModel> LoadTuckerModelAutoOrder(const std::string& prefix);

}  // namespace haten2

#endif  // HATEN2_TENSOR_MODEL_IO_H_
