#include "tensor/tensor_binary_io.h"

#include <cstring>
#include <fstream>

#include "tensor/tensor_io.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

constexpr char kMagic[8] = {'H', 'A', 'T', 'E', 'N', '2', 'T', '\0'};
constexpr uint32_t kVersion = 1;
// Refuse to allocate for absurd headers (corrupted/hostile files).
constexpr int64_t kMaxReasonableNnz = int64_t{1} << 40;
constexpr int32_t kMaxReasonableOrder = 64;

/// XOR-fold of a byte range into 8 bytes — cheap corruption detection, not
/// cryptographic.
uint64_t Checksum(const char* data, size_t len) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  size_t full = len / 8;
  for (size_t i = 0; i < full; ++i) {
    uint64_t word;
    std::memcpy(&word, data + i * 8, 8);
    acc ^= word + (acc << 7) + (acc >> 3);
  }
  for (size_t i = full * 8; i < len; ++i) {
    acc ^= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
           << ((i % 8) * 8);
  }
  return acc;
}

template <typename T>
void Put(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool Get(std::istream& in, T* value) {
  char buf[sizeof(T)];
  in.read(buf, sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) return false;
  std::memcpy(value, buf, sizeof(T));
  return true;
}

}  // namespace

Status WriteTensorBinary(const SparseTensor& tensor,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  Put<uint32_t>(&header, kVersion);
  Put<int32_t>(&header, tensor.order());
  for (int m = 0; m < tensor.order(); ++m) {
    Put<int64_t>(&header, tensor.dim(m));
  }
  Put<int64_t>(&header, tensor.nnz());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::string body;
  body.reserve(static_cast<size_t>(tensor.nnz()) *
               (static_cast<size_t>(tensor.order()) * 8 + 8));
  for (int64_t e = 0; e < tensor.nnz(); ++e) {
    for (int m = 0; m < tensor.order(); ++m) {
      Put<int64_t>(&body, tensor.index(e, m));
    }
    Put<double>(&body, tensor.value(e));
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  uint64_t checksum = Checksum(body.data(), body.size());
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<SparseTensor> ReadTensorBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a haten2 binary tensor");
  }
  uint32_t version = 0;
  int32_t order = 0;
  if (!Get(in, &version) || !Get(in, &order)) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported format version %u", path.c_str(),
                  version));
  }
  if (order < 1 || order > kMaxReasonableOrder) {
    return Status::InvalidArgument(
        StrFormat("%s: implausible order %d", path.c_str(), order));
  }
  std::vector<int64_t> dims(static_cast<size_t>(order));
  for (int m = 0; m < order; ++m) {
    if (!Get(in, &dims[static_cast<size_t>(m)])) {
      return Status::InvalidArgument(path + ": truncated header");
    }
  }
  int64_t nnz = 0;
  if (!Get(in, &nnz) || nnz < 0 || nnz > kMaxReasonableNnz) {
    return Status::InvalidArgument(path + ": implausible nnz");
  }

  HATEN2_ASSIGN_OR_RETURN(SparseTensor tensor, SparseTensor::Create(dims));
  tensor.Reserve(nnz);
  const size_t entry_bytes = static_cast<size_t>(order) * 8 + 8;
  std::string body(static_cast<size_t>(nnz) * entry_bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(body.size()));
  if (in.gcount() != static_cast<std::streamsize>(body.size())) {
    return Status::InvalidArgument(path + ": truncated entries");
  }
  uint64_t stored_checksum = 0;
  if (!Get(in, &stored_checksum) ||
      stored_checksum != Checksum(body.data(), body.size())) {
    return Status::InvalidArgument(path + ": checksum mismatch");
  }

  std::vector<int64_t> idx(static_cast<size_t>(order));
  const char* cursor = body.data();
  for (int64_t e = 0; e < nnz; ++e) {
    for (int m = 0; m < order; ++m) {
      std::memcpy(&idx[static_cast<size_t>(m)], cursor, 8);
      cursor += 8;
    }
    double value;
    std::memcpy(&value, cursor, 8);
    cursor += 8;
    HATEN2_RETURN_IF_ERROR(tensor.Append(idx.data(), order, value));
  }
  tensor.Canonicalize();
  return tensor;
}

Result<SparseTensor> ReadTensorAuto(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[sizeof(kMagic)];
  probe.read(magic, sizeof(magic));
  probe.close();
  if (probe.gcount() == sizeof(magic) &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    return ReadTensorBinary(path);
  }
  return ReadTensorText(path);
}

}  // namespace haten2
