#ifndef HATEN2_TENSOR_TENSOR_IO_H_
#define HATEN2_TENSOR_TENSOR_IO_H_

#include <string>

#include "tensor/dense_matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// Text serialization of sparse tensors: a header line
/// `# haten2 tensor order=<N> dims=<d1>x<d2>x...` followed by one
/// whitespace-separated `i_1 i_2 ... i_N value` record per nonzero
/// (0-based indices). Lines starting with '#' are comments. This mirrors the
/// HDFS input format HaTen2 consumes (one coordinate record per line).

/// Writes `tensor` to `path`, overwriting any existing file.
Status WriteTensorText(const SparseTensor& tensor, const std::string& path);

/// Parsing options. `index_base` = 1 accepts FROSTT-style files whose
/// coordinates are 1-based (the common interchange format for public sparse
/// tensors); indices are shifted down to the library's 0-based convention.
struct TensorTextOptions {
  int index_base = 0;
};

/// Reads a tensor written by WriteTensorText. If the header is absent the
/// dimensions are inferred as (max index + 1) per mode and the order from the
/// first record.
Result<SparseTensor> ReadTensorText(const std::string& path);
Result<SparseTensor> ReadTensorText(const std::string& path,
                                    const TensorTextOptions& options);

/// Parses tensor text from an in-memory string (same format).
Result<SparseTensor> ParseTensorText(const std::string& text);
Result<SparseTensor> ParseTensorText(const std::string& text,
                                     const TensorTextOptions& options);

/// Serializes to an in-memory string (same format).
std::string FormatTensorText(const SparseTensor& tensor);

/// Dense-matrix text format (factor matrices): a header line
/// `# haten2 matrix rows=<R> cols=<C>` followed by one whitespace-separated
/// row of values per line.
Status WriteMatrixText(const DenseMatrix& matrix, const std::string& path);
Result<DenseMatrix> ReadMatrixText(const std::string& path);

}  // namespace haten2

#endif  // HATEN2_TENSOR_TENSOR_IO_H_
