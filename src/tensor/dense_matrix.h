#ifndef HATEN2_TENSOR_DENSE_MATRIX_H_
#define HATEN2_TENSOR_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/result.h"

namespace haten2 {

/// \brief Row-major dense matrix of doubles.
///
/// Factor matrices A, B, C of the decompositions are DenseMatrix instances
/// (I×R with small R, so dense storage is the right shape even for very
/// large tensors). Heavier kernels (gemm, QR, SVD) live in src/linalg/.
class DenseMatrix {
 public:
  /// Creates an empty 0x0 matrix.
  DenseMatrix() : rows_(0), cols_(0) {}

  /// Creates a zero-initialized rows x cols matrix.
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    HATEN2_CHECK(rows >= 0 && cols >= 0) << "negative matrix shape";
  }

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  /// Builds a matrix from nested initializer data; every row must have the
  /// same length. Intended for tests and examples.
  static DenseMatrix FromRows(
      const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static DenseMatrix Identity(int64_t n);

  /// Matrix with i.i.d. Uniform[0,1) entries (the paper's ALS initialization).
  static DenseMatrix RandomUniform(int64_t rows, int64_t cols, Rng* rng);

  /// Matrix with i.i.d. standard normal entries.
  static DenseMatrix RandomNormal(int64_t rows, int64_t cols, Rng* rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double operator()(int64_t i, int64_t j) const {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double& operator()(int64_t i, int64_t j) {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  /// Bounds-checked accessor for callers handling untrusted indices.
  Result<double> At(int64_t i, int64_t j) const;

  const double* RowPtr(int64_t i) const { return &data_[i * cols_]; }
  double* RowPtr(int64_t i) { return &data_[i * cols_]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Returns the transposed matrix.
  DenseMatrix Transposed() const;

  /// Element-wise operations (shapes must match; checked).
  DenseMatrix& AddInPlace(const DenseMatrix& other);
  DenseMatrix& SubInPlace(const DenseMatrix& other);
  DenseMatrix& ScaleInPlace(double s);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute difference against another matrix of the same shape.
  double MaxAbsDiff(const DenseMatrix& other) const;

  /// Extracts column j as a vector.
  std::vector<double> Column(int64_t j) const;

  /// Overwrites column j from a vector of length rows().
  void SetColumn(int64_t j, const std::vector<double>& v);

  bool SameShape(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

}  // namespace haten2

#endif  // HATEN2_TENSOR_DENSE_MATRIX_H_
