#ifndef HATEN2_TENSOR_DENSE_TENSOR_H_
#define HATEN2_TENSOR_DENSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Small dense N-way tensor (row-major, last mode fastest).
///
/// Used for the Tucker core tensor G (P x Q x R with small P, Q, R) and for
/// reconstructions in tests. Not intended for data-scale tensors — those are
/// SparseTensor.
class DenseTensor {
 public:
  DenseTensor() = default;

  /// Zero-initialized tensor; every dim must be positive.
  static Result<DenseTensor> Create(std::vector<int64_t> dims);

  int order() const { return static_cast<int>(dims_.size()); }
  const std::vector<int64_t>& dims() const { return dims_; }
  int64_t dim(int mode) const { return dims_[static_cast<size_t>(mode)]; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  /// Linear offset of a coordinate tuple.
  int64_t Offset(const std::vector<int64_t>& idx) const;
  int64_t Offset(const int64_t* idx) const;

  double at(const std::vector<int64_t>& idx) const {
    return data_[static_cast<size_t>(Offset(idx))];
  }
  double& at(const std::vector<int64_t>& idx) {
    return data_[static_cast<size_t>(Offset(idx))];
  }

  /// 3-way convenience accessors.
  double at3(int64_t i, int64_t j, int64_t k) const {
    return data_[static_cast<size_t>((i * dims_[1] + j) * dims_[2] + k)];
  }
  double& at3(int64_t i, int64_t j, int64_t k) {
    return data_[static_cast<size_t>((i * dims_[1] + j) * dims_[2] + k)];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double FrobeniusNorm() const;
  double MaxAbsDiff(const DenseTensor& other) const;

  /// Mode-n matricization X_(n): rows indexed by mode n, columns by the
  /// remaining modes with the paper's (Kolda) column ordering: column index
  /// j = sum_{m != n} i_m * prod_{m' < m, m' != n} I_{m'}.
  DenseMatrix Unfold(int mode) const;

  /// Inverse of Unfold: rebuilds a tensor with the given dims from its mode-n
  /// matricization.
  static Result<DenseTensor> Fold(const DenseMatrix& mat, int mode,
                                  std::vector<int64_t> dims);

  /// Converts a sparse tensor to dense (test-scale only).
  static DenseTensor FromSparse(const SparseTensor& sparse);

  /// Converts to a sparse tensor, dropping exact zeros.
  SparseTensor ToSparse() const;

 private:
  explicit DenseTensor(std::vector<int64_t> dims);

  std::vector<int64_t> dims_;
  std::vector<int64_t> strides_;
  std::vector<double> data_;
};

}  // namespace haten2

#endif  // HATEN2_TENSOR_DENSE_TENSOR_H_
